// Quickstart: a replicated key-value store in ~40 lines.
//
// Shows the library's core promise (paper Section IV-B): the service code
// and the client code are oblivious to replication and to the execution
// mode — the same KvClient calls run against classical SMR, sP-SMR or
// P-SMR by changing one enum in the deployment config.
#include <cstdio>

#include "kvstore/kv_client.h"
#include "smr/runtime.h"

using namespace psmr;

int main() {
  // 1. Describe the deployment: P-SMR, 4 worker threads per replica,
  //    2 replicas (f = 1), the paper's key-value store as the service,
  //    and the keyed C-G function derived from its C-Dep.
  smr::DeploymentConfig cfg;
  cfg.mode = smr::Mode::kPsmr;  // try kSmr or kSpsmr: nothing else changes
  cfg.mpl = 4;
  cfg.replicas = 2;
  cfg.service_factory = [] { return std::make_unique<kvstore::KvService>(); };
  cfg.cg_factory = [](std::size_t k) { return kvstore::kv_keyed_cg(k); };

  // 2. Start the whole system: Paxos rings, multicast groups, replicas.
  smr::Deployment deployment(std::move(cfg));
  deployment.start();

  // 3. Use the service: the client proxy multicasts each command to the
  //    groups its C-G chooses and returns the first replica response.
  kvstore::KvClient kv(deployment.make_client());
  kv.insert(1, 100);            // structure change: synchronous mode
  kv.insert(2, 200);
  kv.update(1, 101);            // keyed: parallel mode on one worker
  std::printf("key 1 -> %lu\n", kv.read(1).value());
  std::printf("key 2 -> %lu\n", kv.read(2).value());
  kv.erase(2);
  std::printf("key 2 present after delete? %s\n",
              kv.read(2) ? "yes" : "no");

  // 4. Replicas converged: both executed the same dependent commands in
  //    the same order and the same independent commands somewhere.
  std::printf("replica digests: %016lx %016lx (%s)\n",
              deployment.state_digest(0), deployment.state_digest(1),
              deployment.state_digest(0) == deployment.state_digest(1)
                  ? "equal"
                  : "DIVERGED");
  deployment.stop();
  return 0;
}
