// Failover demo: the fault-tolerance story end to end.
//
// Each multicast group is one Paxos sequence with 3 acceptors (tolerating
// f=1, the paper's configuration) and a coordinator.  This demo crashes an
// acceptor of one ring and then the coordinators of a worker ring and of
// the shared ring, and shows the service staying available throughout: a
// standby coordinator runs Phase 1 with a higher ballot, re-proposes
// constrained values and resumes ordering; learners catch up from the
// surviving acceptors.
#include <cstdio>

#include "kvstore/kv_client.h"
#include "smr/runtime.h"

using namespace psmr;

int main() {
  smr::DeploymentConfig cfg;
  cfg.mode = smr::Mode::kPsmr;
  cfg.mpl = 4;
  cfg.replicas = 2;
  cfg.service_factory = [] {
    return std::make_unique<kvstore::KvService>(/*initial_keys=*/128);
  };
  cfg.cg_factory = [](std::size_t k) { return kvstore::kv_keyed_cg(k); };

  smr::Deployment deployment(std::move(cfg));
  deployment.start();
  kvstore::KvClient kv(deployment.make_client());

  for (std::uint64_t i = 0; i < 20; ++i) kv.update(i, i * 10);
  std::printf("20 updates applied; key 7 -> %lu\n", kv.read(7).value());

  auto& bus = *deployment.bus();

  // 1. Crash one acceptor of worker ring 0: quorum (2 of 3) still holds.
  auto acceptor = bus.group_ring(0).acceptor_ids().front();
  deployment.network().disconnect(acceptor);
  std::printf("crashed acceptor %u of ring 0...\n", acceptor);
  kv.update(0, 4242);
  std::printf("  ring 0 still orders commands: key 0 -> %lu\n",
              kv.read(0).value());

  // 2. Crash the coordinator of worker ring 1: a standby takes over with a
  //    higher ballot.
  auto old_coord = bus.group_ring(1).coordinator();
  auto new_coord = bus.group_ring(1).fail_coordinator();
  std::printf("coordinator failover on ring 1: node %u -> node %u\n",
              old_coord, new_coord);
  for (std::uint64_t i = 0; i < 20; ++i) kv.update(i, i * 100);
  std::printf("  20 post-failover updates applied; key 7 -> %lu\n",
              kv.read(7).value());

  // 3. Crash the shared ring's coordinator too: synchronous-mode commands
  //    (inserts) keep working after the standby recovers the sequence.
  bus.shared_ring().fail_coordinator();
  std::printf("coordinator failover on the shared ring\n");
  if (kv.insert(100'000, 1) == kvstore::kKvOk) {
    std::printf("  insert through the recovered shared ring: key 100000 -> "
                "%lu\n",
                kv.read(100'000).value());
  }

  std::printf("replicas converged: %s\n",
              deployment.state_digest(0) == deployment.state_digest(1)
                  ? "yes"
                  : "NO");
  deployment.stop();
  return 0;
}
