// Bank: defining your own replicated service, C-Dep and C-G.
//
// The paper's key insight is that the *service designer* declares which
// commands depend on each other (C-Dep) and the framework derives where to
// multicast them (C-G).  This example goes beyond the built-in services by
// exercising the general form of Algorithm 1: a transfer(a, b) command
// depends on exactly the two accounts it touches, so it is multicast to the
// two groups of a and b — a *subset* barrier, not a global one.  Deposits
// and balance queries on other accounts keep executing in parallel while a
// transfer synchronizes only the two worker threads involved.
#include <cstdio>
#include <unordered_map>

#include "smr/runtime.h"
#include "util/hash.h"

using namespace psmr;

namespace {

enum BankCommand : smr::CommandId {
  kDeposit = 1,   // deposit(in: acct, amount)
  kBalance = 2,   // balance(in: acct, out: amount)
  kTransfer = 3,  // transfer(in: from, to, amount; out: ok)
};

// The replicated state machine: account balances.  Deterministic; safe for
// concurrent execution of commands on distinct accounts (distinct map
// slots) given the C-Dep below — transfers and same-account commands are
// synchronized by the framework.
class BankService : public smr::SequentialService {
 public:
  explicit BankService(std::uint64_t accounts) {
    for (std::uint64_t a = 0; a < accounts; ++a) balances_[a] = 1000;
  }

  util::Buffer execute(const smr::Command& cmd) override {
    util::Reader r(cmd.params);
    util::Writer out;
    switch (cmd.cmd) {
      case kDeposit: {
        std::uint64_t acct = r.u64();
        balances_[acct] += r.i64();
        out.i64(balances_[acct]);
        break;
      }
      case kBalance:
        out.i64(balances_[r.u64()]);
        break;
      case kTransfer: {
        std::uint64_t from = r.u64();
        std::uint64_t to = r.u64();
        std::int64_t amount = r.i64();
        if (balances_[from] >= amount) {
          balances_[from] -= amount;
          balances_[to] += amount;
          out.boolean(true);
        } else {
          out.boolean(false);
        }
        break;
      }
    }
    return out.take();
  }

  [[nodiscard]] std::uint64_t state_digest() const override {
    std::uint64_t h = 0;
    for (const auto& [acct, bal] : balances_) {
      h ^= util::mix64(acct * 31 + static_cast<std::uint64_t>(bal));
    }
    return h;
  }

 private:
  std::unordered_map<std::uint64_t, std::int64_t> balances_;
};

// Custom C-G: deposits/balances go to the owning account's group; a
// transfer goes to *both* accounts' groups (they may be the same).
class BankCg : public smr::CGFunction {
 public:
  explicit BankCg(std::size_t k) : k_(k) {}

  [[nodiscard]] multicast::GroupSet groups(
      const smr::Command& c) const override {
    util::Reader r(c.params);
    auto group_of = [&](std::uint64_t acct) {
      return multicast::GroupSet::single(
          static_cast<multicast::GroupId>(util::mix64(acct) % k_));
    };
    switch (c.cmd) {
      case kTransfer: {
        auto from = group_of(r.u64());
        auto to = group_of(r.u64());
        return from | to;  // 1- or 2-group destination set
      }
      default:
        return group_of(r.u64());
    }
  }
  [[nodiscard]] std::size_t mpl() const override { return k_; }

 private:
  std::size_t k_;
};

}  // namespace

int main() {
  static constexpr std::uint64_t kAccounts = 64;
  smr::DeploymentConfig cfg;
  cfg.mode = smr::Mode::kPsmr;
  cfg.mpl = 4;
  cfg.replicas = 2;
  cfg.service_factory = [] {
    return smr::make_batched(std::make_unique<BankService>(kAccounts));
  };
  cfg.cg_factory = [](std::size_t k) { return std::make_shared<BankCg>(k); };

  smr::Deployment deployment(std::move(cfg));
  deployment.start();
  auto client = deployment.make_client();

  auto deposit = [&](std::uint64_t acct, std::int64_t amt) {
    util::Writer w;
    w.u64(acct);
    w.i64(amt);
    auto resp = client->call(kDeposit, w.take());
    return util::Reader(*resp).i64();
  };
  auto balance = [&](std::uint64_t acct) {
    util::Writer w;
    w.u64(acct);
    auto resp = client->call(kBalance, w.take());
    return util::Reader(*resp).i64();
  };
  auto transfer = [&](std::uint64_t from, std::uint64_t to,
                      std::int64_t amt) {
    util::Writer w;
    w.u64(from);
    w.u64(to);
    w.i64(amt);
    auto resp = client->call(kTransfer, w.take());
    return util::Reader(*resp).boolean();
  };

  std::printf("account 3 after +500: %ld\n", deposit(3, 500));
  std::printf("transfer 3 -> 40 of 1200: %s\n",
              transfer(3, 40, 1200) ? "ok" : "insufficient funds");
  std::printf("balances: acct3=%ld acct40=%ld\n", balance(3), balance(40));
  std::printf("transfer 3 -> 40 of 9999: %s\n",
              transfer(3, 40, 9999) ? "ok" : "insufficient funds");

  // Conservation: total money is invariant under transfers.
  std::int64_t total = 0;
  for (std::uint64_t a = 0; a < kAccounts; ++a) total += balance(a);
  std::printf("total money: %ld (expected %lu)\n", total,
              kAccounts * 1000 + 500);
  std::printf("replicas converged: %s\n",
              deployment.state_digest(0) == deployment.state_digest(1)
                  ? "yes"
                  : "NO");
  deployment.stop();
  return 0;
}
