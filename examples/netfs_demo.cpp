// NetFS demo: the paper's replicated networked file system (Section V-B).
//
// Eight worker threads per replica, files partitioned across eight path
// ranges (eight multicast groups) plus the serialized group for structural
// commands; every request travels LZ-compressed, exactly as in the paper's
// prototype.  The demo builds a small project tree, writes and reads file
// data, lists directories, and shows both replicas converged.
#include <cstdio>

#include "netfs/fs_client.h"
#include "smr/runtime.h"

using namespace psmr;

int main() {
  smr::DeploymentConfig cfg;
  cfg.mode = smr::Mode::kPsmr;
  cfg.mpl = 8;  // the paper's NetFS uses 8 path ranges
  cfg.replicas = 2;
  cfg.service_factory = [] {
    return smr::make_batched(std::make_unique<netfs::FsService>());
  };
  cfg.cg_factory = [](std::size_t k) { return netfs::fs_cg(k); };

  smr::Deployment deployment(std::move(cfg));
  deployment.start();
  netfs::FsClient fs(deployment.make_client());

  // Structural commands: synchronous mode (every worker thread barriers).
  fs.mkdir("/src");
  fs.mkdir("/doc");
  fs.create("/src/main.cpp");
  fs.create("/src/util.cpp");
  fs.create("/doc/README");

  // Data commands: parallel mode, routed by path range.
  std::string code = "int main() { return 0; }\n";
  fs.write("/src/main.cpp", 0,
           std::span(reinterpret_cast<const std::uint8_t*>(code.data()),
                     code.size()));
  std::string text = "P-SMR networked file system demo\n";
  fs.write("/doc/README", 0,
           std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()));

  util::Buffer out;
  fs.read("/src/main.cpp", 0, 1024, out);
  std::printf("/src/main.cpp (%zu bytes): %.*s", out.size(),
              static_cast<int>(out.size()), out.data());

  std::vector<std::string> names;
  fs.readdir("/src", names);
  std::printf("/src:");
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");

  netfs::FsStat st;
  fs.lstat("/doc/README", st);
  std::printf("/doc/README size=%lu dir=%d\n", st.size, st.is_dir);

  // Descriptor table (replicated state, serialized commands).
  std::uint64_t fh = 0;
  fs.open("/doc/README", fh);
  std::printf("opened /doc/README as fh=%lu\n", fh);
  fs.release(fh);

  fs.unlink("/src/util.cpp");
  fs.readdir("/src", names);
  std::printf("/src after unlink:");
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");

  std::printf("replicas converged: %s\n",
              deployment.state_digest(0) == deployment.state_digest(1)
                  ? "yes"
                  : "NO");
  deployment.stop();
  return 0;
}
