// Shared types and wire formats for the per-group Paxos sequence ("ring").
//
// The paper's multicast library composes "multiple parallel instances of
// Paxos; each multicast group is mapped to one or more Paxos instances"
// (Section VI-A), with commands batched by the group's coordinator up to
// 8 KB and order established on batches.  A Ring here is one such sequence:
// a coordinator, a set of acceptors (3 by default, tolerating f=1), and any
// number of learners receiving the decided batch stream.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/hash.h"

namespace psmr::paxos {

/// Paxos ballot number.  Encoded as round * 2^16 + proposer index so that
/// concurrent proposers never collide.
using Ballot = std::uint64_t;

/// Position in the ring's decided sequence (consensus instance).
using Instance = std::uint64_t;

/// Identifies a ring (the multicast layer maps group ids onto ring ids 1:1).
using RingId = std::uint32_t;

constexpr Ballot make_ballot(std::uint64_t round, std::uint32_t proposer) {
  return round * 65536 + proposer;
}

/// What a decided instance carries: either a batch of opaque commands or a
/// SKIP no-op emitted by an idle coordinator so deterministic merges make
/// progress (Multi-Ring Paxos's skip mechanism, paper ref [9]).
///
/// Commands are util::Payload handles: encode() writes them once into a
/// pooled block, and decode() hands back zero-copy subviews of the decide
/// payload — every command a learner delivers shares the one block its
/// DECIDE arrived in.  The wire format (u8 skip, u32 n, n length-prefixed
/// commands, CRC32 tail) is unchanged from the Buffer-based seed.
struct Batch {
  bool skip = false;
  std::vector<util::Payload> commands;

  [[nodiscard]] std::size_t encoded_size() const {
    std::size_t n = 1 + 4 + 4;  // skip + count + crc
    for (const auto& c : commands) n += 4 + c.size();
    return n;
  }

  [[nodiscard]] util::Payload encode() const {
    util::PayloadWriter w(encoded_size());
    w.u8(skip ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(commands.size()));
    for (const auto& c : commands) w.bytes(c);
    w.u32(util::Crc32::of(w.view()));
    return w.take();
  }

  /// Decodes from a Payload; command entries are subviews sharing `data`'s
  /// block (no per-command copy).
  static std::optional<Batch> decode(const util::Payload& data) {
    if (data.size() < 4) return std::nullopt;
    auto body = data.view().first(data.size() - 4);
    util::Reader crc_r(data.view().subspan(data.size() - 4));
    if (crc_r.u32() != util::Crc32::of(body)) return std::nullopt;
    try {
      util::Reader r(body);
      Batch b;
      b.skip = r.u8() != 0;
      std::uint32_t n = r.u32();
      b.commands.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        b.commands.push_back(data.subview_of(r.bytes_view()));
      }
      return b;
    } catch (const util::DecodeError&) {
      return std::nullopt;
    }
  }
};

/// A decided instance as surfaced to learners, in instance order.
struct Decision {
  Instance instance = 0;
  Batch batch;
};

/// Tuning knobs for one ring.
struct RingConfig {
  /// Number of acceptors; quorum is a majority.  3 tolerates one failure,
  /// matching the paper's configuration (Section VI-A).
  std::size_t num_acceptors = 3;
  /// Maximum batch payload before the coordinator seals it (paper: 8 KB).
  std::size_t max_batch_bytes = 8192;
  /// Maximum commands per batch regardless of size.
  std::size_t max_batch_commands = 256;
  /// How long the coordinator waits for more commands before sealing a
  /// non-empty batch.  With adaptive_batching this is only the starting
  /// point; the effective timeout moves within [min_batch_timeout,
  /// max_batch_timeout].
  std::chrono::microseconds batch_timeout{200};
  /// Adaptive batch timeouts: the coordinator shrinks its timeout when
  /// batches seal full (high load — latency matters, batches fill anyway)
  /// and grows it when batches seal on timeout while mostly empty (sparse
  /// load — waiting longer coalesces more commands per consensus instance).
  bool adaptive_batching = false;
  /// Lower bound for the adaptive timeout.
  std::chrono::microseconds min_batch_timeout{50};
  /// Upper bound for the adaptive timeout.
  std::chrono::microseconds max_batch_timeout{4000};
  /// If nonzero, an idle coordinator decides SKIP batches at this period so
  /// merged delivery never stalls.  Zero disables skips (single-ring users).
  std::chrono::microseconds skip_interval{0};
  /// Max undecided instances in flight (pipelining).
  std::size_t pipeline_window = 64;
  /// Retransmission timeout for PREPARE/ACCEPT under message loss.
  std::chrono::microseconds rto{5000};
  /// Log truncation: number of distinct replicas whose CHECKPOINTACK must
  /// cover an instance before acceptors may discard it.  A replica acks
  /// instance i once a durable checkpoint makes every instance < i
  /// replayable from its snapshot, so with acks from *all* replicas the
  /// prefix below min(acked) can never be needed again.  0 (default)
  /// disables truncation and keeps the seed behavior: logs grow forever.
  std::size_t checkpoint_ackers = 0;
};

}  // namespace psmr::paxos
