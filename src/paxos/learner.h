// Gap-free ordered delivery of one ring's decided sequence.
//
// A LearnerLog owns a registered mailbox on the network, buffers DECIDE
// messages that arrive out of order (pipelined deciding, retransmissions,
// failover re-decides), deduplicates by instance, and hands out Decisions
// strictly in instance order.  If a gap persists — a DECIDE was dropped or
// this learner subscribed late — it fetches the missing instances from an
// acceptor (catch-up protocol).
//
// Worker threads in P-SMR call next() directly: delivery happens *inside*
// the worker with no central dispatcher, which is the core architectural
// claim of the paper (parallel delivery, Table I).
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <optional>

#include "paxos/types.h"
#include "transport/network.h"
#include "util/rng.h"

namespace psmr::paxos {

class LearnerLog {
 public:
  /// Registers a learner mailbox; the caller must also register the id with
  /// the ring so the coordinator multicasts DECIDEs here (Ring::subscribe
  /// does both).  `start` is the first instance to deliver — a recovering
  /// replica that restored a checkpoint subscribes at its snapshot position
  /// and the gap-triggered catch-up protocol replays the suffix from an
  /// acceptor.
  LearnerLog(transport::Network& net, RingId ring,
             std::vector<transport::NodeId> acceptors, Instance start = 0);

  LearnerLog(const LearnerLog&) = delete;
  LearnerLog& operator=(const LearnerLog&) = delete;

  [[nodiscard]] transport::NodeId id() const { return id_; }
  [[nodiscard]] RingId ring() const { return ring_; }

  /// Blocks until the next in-order decision is available.  Returns
  /// std::nullopt only when the network shuts down.
  std::optional<Decision> next();

  /// Bounded wait; std::nullopt on timeout or shutdown.
  std::optional<Decision> next_for(std::chrono::microseconds timeout);

  /// Non-blocking variant.  std::nullopt means "no in-order decision ready
  /// yet" *or* "closed" — poll closed() to tell the two apart.
  std::optional<Decision> try_next();

  /// Instance the next() call will return (number of decisions delivered).
  /// Safe to read from any thread (progress monitoring in tests).
  [[nodiscard]] Instance next_instance() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// True once close() ran: try_next()'s std::nullopt is then terminal
  /// shutdown, never "not decided yet".  Safe from any thread.
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Stops delivery immediately: pending and future next() calls return
  /// std::nullopt even if decided batches are still buffered.  Used at
  /// replica shutdown so worker threads quiesce at a well-defined point.
  void close() {
    closed_.store(true, std::memory_order_release);
    mailbox_->close();
  }

 private:
  void ingest(transport::Message&& msg);
  std::optional<Decision> take_ready();
  void request_catchup();

  transport::Network& net_;
  const RingId ring_;
  const std::vector<transport::NodeId> acceptors_;
  transport::NodeId id_ = transport::kNoNode;
  std::shared_ptr<transport::Mailbox> mailbox_;

  std::map<Instance, Batch> buffer_;
  std::atomic<bool> closed_{false};
  /// Written only by the consuming thread; atomic so next_instance() can be
  /// sampled from monitoring threads without a data race.
  std::atomic<Instance> next_{0};
  util::SplitMix64 rng_;
  std::chrono::steady_clock::time_point last_progress_;
  std::chrono::microseconds catchup_after_{20000};  // 20 ms of no progress
};

}  // namespace psmr::paxos
