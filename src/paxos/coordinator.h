// Paxos coordinator (proposer + batcher) for one ring.
//
// Responsibilities, mirroring the paper's multicast library (Section VI-A):
//   * collects submitted commands into batches of at most 8 KB (or a short
//     timeout) — "commands multicast to a group are batched by the group's
//     coordinator and order is established on batches of commands";
//   * runs multi-Paxos: one Phase 1 (prepare/promise) per ballot covering
//     all instances, then pipelined Phase 2 (accept/accepted) per batch;
//   * emits SKIP no-op batches when idle so that deterministic merge across
//     rings never stalls (Multi-Ring Paxos skip mechanism);
//   * retransmits on timeout and re-prepares on NACK, so the ring stays live
//     under message loss and competing coordinators stay safe.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "paxos/types.h"
#include "transport/endpoint.h"

namespace psmr::paxos {

/// Learner membership shared between the Ring (which registers subscribers)
/// and coordinators (which multicast DECIDEs to the current snapshot).
class LearnerRegistry {
 public:
  void add(transport::NodeId id) {
    std::lock_guard lock(mu_);
    ids_.push_back(id);
  }
  [[nodiscard]] std::vector<transport::NodeId> snapshot() const {
    std::lock_guard lock(mu_);
    return ids_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<transport::NodeId> ids_;
};

/// Counters exported for benches and tests.
struct CoordinatorStats {
  std::uint64_t decided_batches = 0;
  std::uint64_t decided_commands = 0;
  std::uint64_t decided_skips = 0;
};

class Coordinator : public transport::Endpoint {
 public:
  Coordinator(transport::Network& net, RingId ring, RingConfig cfg,
              std::vector<transport::NodeId> acceptors,
              std::shared_ptr<LearnerRegistry> learners,
              std::uint32_t proposer_index, std::uint64_t start_round);

  [[nodiscard]] CoordinatorStats stats() const {
    return CoordinatorStats{decided_batches_.load(), decided_commands_.load(),
                            decided_skips_.load()};
  }

 protected:
  void handle(transport::Message msg) override;
  [[nodiscard]] std::optional<std::chrono::microseconds> tick_interval()
      const override {
    return tick_;
  }
  void on_tick() override;

 private:
  enum class Phase { kPreparing, kSteady };

  void begin_prepare();
  void on_submit(util::Buffer cmd);
  void on_promise(transport::NodeId from, util::Reader& r);
  void on_accepted(transport::NodeId from, util::Reader& r);
  void on_nack(util::Reader& r);

  void seal_batch();
  void pump_proposals();
  void propose(Instance inst, util::Buffer value);
  void send_accepts(Instance inst);
  void decide(Instance inst);

  [[nodiscard]] std::size_t quorum() const {
    return acceptors_.size() / 2 + 1;
  }

  const RingId ring_;
  const RingConfig cfg_;
  const std::vector<transport::NodeId> acceptors_;
  const std::shared_ptr<LearnerRegistry> learners_;
  const std::uint32_t proposer_index_;
  const std::chrono::microseconds tick_;

  Phase phase_ = Phase::kPreparing;
  std::uint64_t round_;
  Ballot ballot_;
  Instance next_instance_ = 0;

  // Phase 1 bookkeeping.
  std::set<transport::NodeId> promises_;
  struct PromisedValue {
    Ballot ballot = 0;
    util::Buffer value;
  };
  std::map<Instance, PromisedValue> promised_values_;
  std::chrono::steady_clock::time_point prepare_sent_{};

  // Batching.
  std::vector<util::Buffer> pending_;
  std::size_t pending_bytes_ = 0;
  std::chrono::steady_clock::time_point batch_started_{};
  std::deque<util::Buffer> sealed_;

  // Phase 2 pipeline.
  struct InFlight {
    util::Buffer value;
    std::set<transport::NodeId> acks;
    std::chrono::steady_clock::time_point last_send;
  };
  std::map<Instance, InFlight> in_flight_;

  std::chrono::steady_clock::time_point last_activity_{};

  std::atomic<std::uint64_t> decided_batches_{0};
  std::atomic<std::uint64_t> decided_commands_{0};
  std::atomic<std::uint64_t> decided_skips_{0};
};

}  // namespace psmr::paxos
