// Paxos coordinator (proposer + batcher) for one ring.
//
// Responsibilities, mirroring the paper's multicast library (Section VI-A):
//   * collects submitted commands into batches of at most 8 KB (or a batch
//     timeout) — "commands multicast to a group are batched by the group's
//     coordinator and order is established on batches of commands"; with
//     RingConfig::adaptive_batching the timeout shrinks when batches seal
//     full and grows when they seal sparse, within [min, max] bounds;
//   * runs multi-Paxos: one Phase 1 (prepare/promise) per ballot covering
//     all instances, then pipelined Phase 2 (accept/accepted) per batch;
//   * emits SKIP no-op batches when idle so that deterministic merge across
//     rings never stalls (Multi-Ring Paxos skip mechanism); skips follow an
//     absolute per-interval schedule, so decide latency never throttles the
//     cadence and missed intervals are repaid as one pipelined burst;
//   * retransmits on timeout and re-prepares on NACK, so the ring stays live
//     under message loss and competing coordinators stay safe.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "paxos/types.h"
#include "transport/endpoint.h"

namespace psmr::paxos {

/// Learner membership shared between the Ring (which registers subscribers)
/// and coordinators (which multicast DECIDEs to the current snapshot).
class LearnerRegistry {
 public:
  void add(transport::NodeId id) {
    std::lock_guard lock(mu_);
    ids_.push_back(id);
  }
  [[nodiscard]] std::vector<transport::NodeId> snapshot() const {
    std::lock_guard lock(mu_);
    return ids_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<transport::NodeId> ids_;
};

/// Counters exported for benches and tests.
///
/// The batching fields let callers assert on batcher *behavior* (fill
/// levels, why batches sealed, where the adaptive timeout settled) instead
/// of eyeballing throughput: mean occupancy is sealed_commands /
/// sealed_batches, mean batch payload is sealed_bytes / sealed_batches.
struct CoordinatorStats {
  std::uint64_t decided_batches = 0;
  std::uint64_t decided_commands = 0;
  std::uint64_t decided_skips = 0;

  // Batch sealing (non-skip batches only).
  std::uint64_t sealed_batches = 0;
  std::uint64_t sealed_commands = 0;
  std::uint64_t sealed_bytes = 0;
  std::uint64_t sealed_on_bytes = 0;    // hit max_batch_bytes
  std::uint64_t sealed_on_count = 0;    // hit max_batch_commands
  std::uint64_t sealed_on_timeout = 0;  // batch timeout expired

  // Adaptive timeout trajectory.
  std::uint64_t timeout_grows = 0;
  std::uint64_t timeout_shrinks = 0;
  /// Current effective batch timeout (the adaptive sample; equals the
  /// configured batch_timeout when adaptive batching is off).
  std::uint64_t batch_timeout_us = 0;

  // Submit-side coalescing as seen by this coordinator: messages received
  // vs commands they carried (> 1 command per message means upstream
  // submitters piggybacked onto one wire submit).
  std::uint64_t submit_msgs = 0;
  std::uint64_t submit_commands = 0;

  [[nodiscard]] double mean_commands_per_batch() const {
    return sealed_batches == 0
               ? 0.0
               : static_cast<double>(sealed_commands) /
                     static_cast<double>(sealed_batches);
  }
  [[nodiscard]] double mean_bytes_per_batch() const {
    return sealed_batches == 0 ? 0.0
                               : static_cast<double>(sealed_bytes) /
                                     static_cast<double>(sealed_batches);
  }

  /// Aggregates counters across rings; batch_timeout_us keeps the maximum
  /// (a "how far did any ring stretch" sample, since summing timeouts is
  /// meaningless).
  CoordinatorStats& operator+=(const CoordinatorStats& o) {
    decided_batches += o.decided_batches;
    decided_commands += o.decided_commands;
    decided_skips += o.decided_skips;
    sealed_batches += o.sealed_batches;
    sealed_commands += o.sealed_commands;
    sealed_bytes += o.sealed_bytes;
    sealed_on_bytes += o.sealed_on_bytes;
    sealed_on_count += o.sealed_on_count;
    sealed_on_timeout += o.sealed_on_timeout;
    timeout_grows += o.timeout_grows;
    timeout_shrinks += o.timeout_shrinks;
    batch_timeout_us = std::max(batch_timeout_us, o.batch_timeout_us);
    submit_msgs += o.submit_msgs;
    submit_commands += o.submit_commands;
    return *this;
  }
};

class Coordinator : public transport::Endpoint {
 public:
  Coordinator(transport::Network& net, RingId ring, RingConfig cfg,
              std::vector<transport::NodeId> acceptors,
              std::shared_ptr<LearnerRegistry> learners,
              std::uint32_t proposer_index, std::uint64_t start_round);

  [[nodiscard]] CoordinatorStats stats() const {
    std::lock_guard lock(stats_mu_);
    return stats_;
  }

  /// Test hook: suppresses all on_tick work (batch sealing, retransmits,
  /// skip emission) for `d` from now, simulating a tick thread starved by
  /// CPU contention.  Thread-safe; message handling is unaffected, so the
  /// ring keeps deciding submitted commands while "starved" — exactly the
  /// regime that exposed the skip-cadence stall.
  void stall_ticks_for(std::chrono::microseconds d) {
    auto until = std::chrono::steady_clock::now() + d;
    stall_until_ns_.store(until.time_since_epoch().count(),
                          std::memory_order_relaxed);
  }

 protected:
  void handle(transport::Message msg) override;
  [[nodiscard]] std::optional<std::chrono::microseconds> tick_interval()
      const override {
    return tick_;
  }
  void on_tick() override;

 private:
  enum class Phase { kPreparing, kSteady };
  enum class SealReason { kBytes, kCount, kTimeout };

  void begin_prepare();
  void on_submit(util::Payload cmd);
  /// Parses a SUBMIT_MANY frame; each command enqueued is a zero-copy
  /// subview of the frame's pool block.
  void on_submit_many(const util::Payload& payload);
  void on_promise(transport::NodeId from, util::Reader& r);
  void on_accepted(transport::NodeId from, util::Reader& r);
  void on_nack(util::Reader& r);

  /// Appends one command to the open batch, sealing when a cap is hit.
  void enqueue(util::Payload cmd);
  void seal_batch(SealReason reason);
  void adapt_timeout(SealReason reason, std::size_t batch_bytes,
                     std::size_t batch_commands);
  void pump_proposals();
  void propose(Instance inst, util::Payload value);
  void send_accepts(Instance inst);
  void decide(Instance inst);

  [[nodiscard]] std::size_t quorum() const {
    return acceptors_.size() / 2 + 1;
  }

  const RingId ring_;
  const RingConfig cfg_;
  const std::vector<transport::NodeId> acceptors_;
  const std::shared_ptr<LearnerRegistry> learners_;
  const std::uint32_t proposer_index_;
  const std::chrono::microseconds tick_;

  Phase phase_ = Phase::kPreparing;
  std::uint64_t round_;
  Ballot ballot_;
  Instance next_instance_ = 0;

  // Phase 1 bookkeeping.
  std::set<transport::NodeId> promises_;
  struct PromisedValue {
    Ballot ballot = 0;
    util::Payload value;
  };
  std::map<Instance, PromisedValue> promised_values_;
  /// Highest truncation floor reported in PROMISEs.  Instances below it were
  /// checkpoint-truncated at the acceptors, so they are already delivered
  /// everywhere; a failover coordinator must never re-propose below it (it
  /// would reuse instance numbers every learner has already passed).
  Instance prepare_floor_ = 0;
  std::chrono::steady_clock::time_point prepare_sent_{};

  // Batching.  Pending commands are zero-copy subviews of the submit
  // frames they arrived in; sealing copies them once into the batch block.
  std::vector<util::Payload> pending_;
  std::size_t pending_bytes_ = 0;
  std::chrono::steady_clock::time_point batch_started_{};
  std::deque<util::Payload> sealed_;
  /// Effective batch timeout; fixed at cfg_.batch_timeout unless adaptive
  /// batching moves it within [min_batch_timeout, max_batch_timeout].
  std::chrono::microseconds batch_timeout_;

  // Phase 2 pipeline.
  struct InFlight {
    util::Payload value;
    std::set<transport::NodeId> acks;
    std::chrono::steady_clock::time_point last_send;
  };
  std::map<Instance, InFlight> in_flight_;

  /// Absolute skip schedule: the next wall-clock deadline at which an idle
  /// ring owes the merge layer a SKIP decision.  Advanced by exactly one
  /// skip_interval per emitted skip (never refreshed by the skip's own
  /// round-trip), so the cadence is one skip per interval of *wall time*
  /// regardless of decide latency, and a starved tick thread repays its
  /// backlog as a pipelined catch-up burst.  Real traffic (enqueue, non-skip
  /// decide) resets the deadline — a loaded ring advances the merge with
  /// real decisions and owes nothing.
  std::chrono::steady_clock::time_point skip_due_{};

  /// stall_ticks_for() deadline, as steady_clock ns since epoch (0 = none).
  std::atomic<std::chrono::steady_clock::rep> stall_until_ns_{0};

  // Written on the coordinator thread only; the mutex makes stats() safe to
  // call from test/bench threads.
  mutable std::mutex stats_mu_;
  CoordinatorStats stats_;
};

}  // namespace psmr::paxos
