#include "paxos/learner.h"

#include "util/log.h"

namespace psmr::paxos {

using transport::MsgType;
namespace chrono = std::chrono;

LearnerLog::LearnerLog(transport::Network& net, RingId ring,
                       std::vector<transport::NodeId> acceptors,
                       Instance start)
    : net_(net),
      ring_(ring),
      acceptors_(std::move(acceptors)),
      next_{start},
      rng_(0xa11ce + ring) {
  auto [id, box] = net.register_node();
  id_ = id;
  mailbox_ = std::move(box);
  last_progress_ = chrono::steady_clock::now();
}

std::optional<Decision> LearnerLog::next() {
  while (true) {
    if (closed_.load(std::memory_order_relaxed)) return std::nullopt;
    if (auto d = take_ready()) return d;
    auto msg = mailbox_->pop_for(catchup_after_);
    if (msg) {
      ingest(std::move(*msg));
      // Traffic alone is not progress: a merged-delivery ring carries skips
      // every few hundred microseconds, so a learner stuck behind a gap
      // (dropped DECIDE, or a recovery subscription below the live stream)
      // would wait on the silent-mailbox branch forever.  Trigger catch-up
      // on stalled *delivery*, paced like next_for().
      if (chrono::steady_clock::now() - last_progress_ > catchup_after_) {
        request_catchup();
        last_progress_ = chrono::steady_clock::now();  // pace the requests
      }
      continue;
    }
    if (mailbox_->closed() && mailbox_->empty()) return std::nullopt;
    // No traffic for a while: we may be stuck behind a gap (dropped DECIDE)
    // or have subscribed after instances were decided.  Ask an acceptor;
    // the reply is empty if nothing is missing.
    request_catchup();
  }
}

std::optional<Decision> LearnerLog::next_for(chrono::microseconds timeout) {
  auto deadline = chrono::steady_clock::now() + timeout;
  while (true) {
    if (closed_.load(std::memory_order_relaxed)) return std::nullopt;
    if (auto d = take_ready()) return d;
    auto now = chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto wait = std::min(chrono::duration_cast<chrono::microseconds>(
                             deadline - now),
                         catchup_after_);
    auto msg = mailbox_->pop_for(wait);
    if (msg) {
      ingest(std::move(*msg));
      // Same stalled-delivery trigger as next(): live skip traffic keeps
      // the mailbox busy, so a learner stuck behind a gap would otherwise
      // never reach the silent-mailbox catch-up branch below.
      if (chrono::steady_clock::now() - last_progress_ > catchup_after_) {
        request_catchup();
        last_progress_ = chrono::steady_clock::now();  // pace the requests
      }
    } else if (mailbox_->closed() && mailbox_->empty()) {
      return std::nullopt;
    } else if (chrono::steady_clock::now() - last_progress_ >
               catchup_after_) {
      request_catchup();
      last_progress_ = chrono::steady_clock::now();  // pace the requests
    }
  }
}

std::optional<Decision> LearnerLog::try_next() {
  if (closed_.load(std::memory_order_relaxed)) return std::nullopt;
  while (auto msg = mailbox_->try_pop()) ingest(std::move(*msg));
  return take_ready();
}

std::optional<Decision> LearnerLog::take_ready() {
  Instance next = next_.load(std::memory_order_relaxed);
  auto it = buffer_.find(next);
  if (it == buffer_.end()) return std::nullopt;
  Decision d;
  d.instance = next;
  d.batch = std::move(it->second);
  buffer_.erase(it);
  next_.store(next + 1, std::memory_order_relaxed);
  last_progress_ = chrono::steady_clock::now();
  return d;
}

void LearnerLog::ingest(transport::Message&& msg) {
  try {
    util::Reader r(msg.payload);
    Instance next = next_.load(std::memory_order_relaxed);
    if (msg.type == MsgType::kPaxosDecide) {
      Instance inst = r.u64();
      // Zero-copy: the decoded batch's commands share the DECIDE frame's
      // pool block all the way into the replica workers.
      auto value = msg.payload.subview_of(r.bytes_view());
      if (inst < next || buffer_.contains(inst)) return;  // duplicate
      auto batch = Batch::decode(value);
      if (!batch) {
        PSMR_ERROR("learner ring " << ring_ << ": corrupt batch at instance "
                                   << inst << ", awaiting catch-up");
        return;
      }
      buffer_.emplace(inst, std::move(*batch));
    } else if (msg.type == MsgType::kPaxosCatchupRep) {
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Instance inst = r.u64();
        auto value = msg.payload.subview_of(r.bytes_view());
        if (inst < next || buffer_.contains(inst)) continue;
        if (auto batch = Batch::decode(value)) {
          buffer_.emplace(inst, std::move(*batch));
        }
      }
    } else {
      PSMR_WARN("learner ring " << ring_ << ": unexpected msg type "
                                << msg.type);
    }
  } catch (const util::DecodeError& e) {
    PSMR_ERROR("learner ring " << ring_ << ": malformed message: "
                               << e.what());
  }
}

void LearnerLog::request_catchup() {
  if (acceptors_.empty()) return;
  Instance next = next_.load(std::memory_order_relaxed);
  Instance hi = buffer_.empty() ? next + 64 : buffer_.rbegin()->first;
  util::Writer w;
  w.u64(next);
  w.u64(hi);
  auto target = acceptors_[rng_.next_below(acceptors_.size())];
  net_.send(id_, target, MsgType::kPaxosCatchupReq, w.take());
  PSMR_DEBUG("learner ring " << ring_ << ": catch-up [" << next << ", " << hi
                             << "] from node " << target);
}

}  // namespace psmr::paxos
