// Paxos acceptor for one ring.
//
// Implements the standard single-decree acceptor per instance (promise /
// accept with a single promised ballot covering all instances, as in
// multi-Paxos), plus three extensions the rest of the stack relies on:
//   * it learns DECIDE messages and stores decided values, serving learner
//     catch-up requests (recovering from dropped DECIDEs or late joiners);
//   * PROMISE replies carry every accepted (instance, ballot, value) at or
//     above the requested instance so a new coordinator can re-propose;
//   * CHECKPOINTACK messages from replicas advance a truncation floor: once
//     every expected replica has acknowledged a checkpoint covering an
//     instance, the acceptor discards decided and accepted state below it,
//     bounding log memory on long runs (see RingConfig::checkpoint_ackers).
//
// Truncation must not break coordinator failover: a new coordinator derives
// its starting instance from the maximum accepted instance reported in
// PROMISEs, so if every accepted entry has been truncated it would restart
// at instance 0 and decide fresh values at instances every learner has
// already passed.  PROMISE therefore also carries the truncation floor and
// the coordinator never proposes below it.
#pragma once

#include <atomic>
#include <map>

#include "paxos/types.h"
#include "transport/endpoint.h"

namespace psmr::paxos {

/// Message schemas (util::Writer layouts) used between ring participants:
///   PREPARE   : ballot u64, from_instance u64
///   PROMISE   : ballot u64, low_water u64,
///               n u32, n * { instance u64, ballot u64, value bytes }
///   ACCEPT    : ballot u64, instance u64, value bytes
///   ACCEPTED  : ballot u64, instance u64
///   NACK      : promised_ballot u64
///   DECIDE    : instance u64, value bytes
///   CATCHUPREQ: from u64, to u64 (inclusive)
///   CATCHUPREP: n u32, n * { instance u64, value bytes }
///   CHECKPOINTACK: replica u64, instance u64 (checkpoint covers < instance)
class Acceptor : public transport::Endpoint {
 public:
  Acceptor(transport::Network& net, RingId ring,
           std::size_t checkpoint_ackers = 0)
      : Endpoint(net, "acceptor-ring" + std::to_string(ring)),
        checkpoint_ackers_(checkpoint_ackers) {}

  /// Test/monitoring hooks.  The atomics are safe from any thread; use them
  /// to watch log growth and truncation while the ring is live.
  [[nodiscard]] Ballot promised() const { return promised_; }
  [[nodiscard]] std::size_t decided_count() const {
    return decided_size_.load(std::memory_order_relaxed);
  }
  /// Lowest instance still retained; everything below it was truncated.
  [[nodiscard]] Instance low_water() const {
    return low_water_.load(std::memory_order_relaxed);
  }
  /// Total decided instances discarded by checkpoint truncation.
  [[nodiscard]] std::uint64_t truncated_instances() const {
    return truncated_.load(std::memory_order_relaxed);
  }

 protected:
  void handle(transport::Message msg) override;

 private:
  void on_prepare(transport::NodeId from, util::Reader& r);
  /// ACCEPT/DECIDE values are stored as zero-copy subviews of the arriving
  /// frame's pool block (the coordinator's fan-out already shares it).
  void on_accept(transport::NodeId from, const util::Payload& payload);
  void on_decide(const util::Payload& payload);
  void on_catchup(transport::NodeId from, util::Reader& r);
  void on_checkpoint_ack(util::Reader& r);

  struct AcceptedEntry {
    Ballot ballot = 0;
    util::Payload value;
  };

  const std::size_t checkpoint_ackers_;
  Ballot promised_ = 0;
  std::map<Instance, AcceptedEntry> accepted_;
  std::map<Instance, util::Payload> decided_;
  /// Per-replica checkpoint acknowledgment (replica id -> acked instance).
  /// Keyed by stable replica index, so a crashed replica's last ack pins the
  /// floor until it restarts and re-acks — the suffix it will replay can
  /// never be truncated out from under it.
  std::map<std::uint64_t, Instance> acks_;
  std::atomic<std::size_t> decided_size_{0};
  std::atomic<Instance> low_water_{0};
  std::atomic<std::uint64_t> truncated_{0};
};

}  // namespace psmr::paxos
