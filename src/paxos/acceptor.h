// Paxos acceptor for one ring.
//
// Implements the standard single-decree acceptor per instance (promise /
// accept with a single promised ballot covering all instances, as in
// multi-Paxos), plus two extensions the rest of the stack relies on:
//   * it learns DECIDE messages and stores decided values, serving learner
//     catch-up requests (recovering from dropped DECIDEs or late joiners);
//   * PROMISE replies carry every accepted (instance, ballot, value) at or
//     above the requested instance so a new coordinator can re-propose.
#pragma once

#include <map>

#include "paxos/types.h"
#include "transport/endpoint.h"

namespace psmr::paxos {

/// Message schemas (util::Writer layouts) used between ring participants:
///   PREPARE   : ballot u64, from_instance u64
///   PROMISE   : ballot u64, n u32, n * { instance u64, ballot u64, value bytes }
///   ACCEPT    : ballot u64, instance u64, value bytes
///   ACCEPTED  : ballot u64, instance u64
///   NACK      : promised_ballot u64
///   DECIDE    : instance u64, value bytes
///   CATCHUPREQ: from u64, to u64 (inclusive)
///   CATCHUPREP: n u32, n * { instance u64, value bytes }
class Acceptor : public transport::Endpoint {
 public:
  Acceptor(transport::Network& net, RingId ring)
      : Endpoint(net, "acceptor-ring" + std::to_string(ring)) {}

  /// Test/monitoring hooks (thread-safe only after stop()).
  [[nodiscard]] Ballot promised() const { return promised_; }
  [[nodiscard]] std::size_t decided_count() const { return decided_.size(); }

 protected:
  void handle(transport::Message msg) override;

 private:
  void on_prepare(transport::NodeId from, util::Reader& r);
  void on_accept(transport::NodeId from, util::Reader& r);
  void on_decide(util::Reader& r);
  void on_catchup(transport::NodeId from, util::Reader& r);

  struct AcceptedEntry {
    Ballot ballot = 0;
    util::Buffer value;
  };

  Ballot promised_ = 0;
  std::map<Instance, AcceptedEntry> accepted_;
  std::map<Instance, util::Buffer> decided_;
};

}  // namespace psmr::paxos
