#include "paxos/coordinator.h"

#include <algorithm>

#include "util/log.h"

namespace psmr::paxos {

using transport::MsgType;
namespace chrono = std::chrono;

namespace {
chrono::microseconds pick_tick(const RingConfig& cfg) {
  // With adaptive batching the effective timeout can shrink down to
  // min_batch_timeout, so the tick must be fine enough to honor it.
  auto base = cfg.adaptive_batching
                  ? std::min(cfg.batch_timeout, cfg.min_batch_timeout)
                  : cfg.batch_timeout;
  auto tick = base / 2;
  if (cfg.skip_interval.count() > 0) {
    tick = std::min(tick, cfg.skip_interval / 2);
  }
  return std::max(tick, chrono::microseconds(50));
}

chrono::microseconds initial_batch_timeout(const RingConfig& cfg) {
  if (!cfg.adaptive_batching) return cfg.batch_timeout;
  return std::clamp(cfg.batch_timeout, cfg.min_batch_timeout,
                    cfg.max_batch_timeout);
}
}  // namespace

Coordinator::Coordinator(transport::Network& net, RingId ring, RingConfig cfg,
                         std::vector<transport::NodeId> acceptors,
                         std::shared_ptr<LearnerRegistry> learners,
                         std::uint32_t proposer_index,
                         std::uint64_t start_round)
    : Endpoint(net, "coord-ring" + std::to_string(ring) + "-p" +
                        std::to_string(proposer_index)),
      ring_(ring),
      cfg_(std::move(cfg)),
      acceptors_(std::move(acceptors)),
      learners_(std::move(learners)),
      proposer_index_(proposer_index),
      tick_(pick_tick(cfg_)),
      round_(start_round),
      ballot_(make_ballot(start_round, proposer_index)),
      batch_timeout_(initial_batch_timeout(cfg_)) {
  stats_.batch_timeout_us = static_cast<std::uint64_t>(batch_timeout_.count());
  skip_due_ = chrono::steady_clock::now() + cfg_.skip_interval;
  begin_prepare();
}

void Coordinator::handle(transport::Message msg) {
  util::Reader r(msg.payload);
  try {
    switch (msg.type) {
      case MsgType::kPaxosSubmit:
        on_submit(std::move(msg.payload));
        break;
      case MsgType::kPaxosSubmitMany:
        on_submit_many(msg.payload);
        break;
      case MsgType::kPaxosPromise:
        on_promise(msg.from, r);
        break;
      case MsgType::kPaxosAccepted:
        on_accepted(msg.from, r);
        break;
      case MsgType::kPaxosNack:
        on_nack(r);
        break;
      default:
        PSMR_WARN("coordinator " << name() << ": unexpected msg type "
                                 << msg.type);
    }
  } catch (const util::DecodeError& e) {
    PSMR_ERROR("coordinator " << name() << ": malformed message: "
                              << e.what());
  }
}

void Coordinator::begin_prepare() {
  phase_ = Phase::kPreparing;
  promises_.clear();
  promised_values_.clear();
  prepare_sent_ = chrono::steady_clock::now();
  util::PayloadWriter w(16);
  w.u64(ballot_);
  w.u64(0);  // learn everything; acceptors prune nothing in this prototype
  util::Payload prepare = w.take();
  for (auto a : acceptors_) {
    send(a, MsgType::kPaxosPrepare, prepare);
  }
  PSMR_DEBUG("ring " << ring_ << ": prepare ballot " << ballot_);
}

void Coordinator::on_submit(util::Payload cmd) {
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.submit_msgs;
    ++stats_.submit_commands;
  }
  enqueue(std::move(cmd));
  pump_proposals();
}

void Coordinator::on_submit_many(const util::Payload& payload) {
  util::Reader r(payload);
  std::uint32_t n = r.u32();
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.submit_msgs;
    stats_.submit_commands += n;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    // Zero-copy: each pending command shares the submit frame's block.
    enqueue(payload.subview_of(r.bytes_view()));
  }
  pump_proposals();
}

void Coordinator::enqueue(util::Payload cmd) {
  if (pending_.empty()) batch_started_ = chrono::steady_clock::now();
  // Real traffic is about to decide and advance the merge rotation on its
  // own; push the skip deadline out one full interval.
  skip_due_ = chrono::steady_clock::now() + cfg_.skip_interval;
  pending_bytes_ += cmd.size();
  pending_.push_back(std::move(cmd));
  if (pending_bytes_ >= cfg_.max_batch_bytes) {
    seal_batch(SealReason::kBytes);
  } else if (pending_.size() >= cfg_.max_batch_commands) {
    seal_batch(SealReason::kCount);
  }
}

void Coordinator::seal_batch(SealReason reason) {
  if (pending_.empty()) return;
  const std::size_t batch_bytes = pending_bytes_;
  const std::size_t batch_commands = pending_.size();
  Batch b;
  b.skip = false;
  b.commands = std::move(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  sealed_.push_back(b.encode());
  adapt_timeout(reason, batch_bytes, batch_commands);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.sealed_batches;
    stats_.sealed_commands += batch_commands;
    stats_.sealed_bytes += batch_bytes;
    switch (reason) {
      case SealReason::kBytes: ++stats_.sealed_on_bytes; break;
      case SealReason::kCount: ++stats_.sealed_on_count; break;
      case SealReason::kTimeout: ++stats_.sealed_on_timeout; break;
    }
    stats_.batch_timeout_us =
        static_cast<std::uint64_t>(batch_timeout_.count());
  }
}

void Coordinator::adapt_timeout(SealReason reason, std::size_t batch_bytes,
                                std::size_t batch_commands) {
  if (!cfg_.adaptive_batching) return;
  auto prev = batch_timeout_;
  if (reason == SealReason::kTimeout) {
    // The batch sealed by waiting, not by filling.  If it was mostly empty,
    // the ring is lightly loaded: wait longer next time so more commands
    // coalesce into one consensus instance.
    if (batch_bytes < cfg_.max_batch_bytes / 2 &&
        batch_commands < cfg_.max_batch_commands / 2) {
      batch_timeout_ = std::min(batch_timeout_ * 2, cfg_.max_batch_timeout);
      if (batch_timeout_ != prev) {
        std::lock_guard lock(stats_mu_);
        ++stats_.timeout_grows;
      }
    }
  } else {
    // The batch filled before the timeout fired: the ring is loaded, so the
    // timeout only adds latency to the next lull — shrink it.
    batch_timeout_ = std::max(batch_timeout_ / 2, cfg_.min_batch_timeout);
    if (batch_timeout_ != prev) {
      std::lock_guard lock(stats_mu_);
      ++stats_.timeout_shrinks;
    }
  }
}

void Coordinator::pump_proposals() {
  if (phase_ != Phase::kSteady) return;
  while (!sealed_.empty() && in_flight_.size() < cfg_.pipeline_window) {
    util::Payload value = std::move(sealed_.front());
    sealed_.pop_front();
    propose(next_instance_++, std::move(value));
  }
}

void Coordinator::propose(Instance inst, util::Payload value) {
  auto [it, inserted] = in_flight_.try_emplace(inst);
  if (!inserted) return;
  it->second.value = std::move(value);
  send_accepts(inst);
}

void Coordinator::send_accepts(Instance inst) {
  auto it = in_flight_.find(inst);
  if (it == in_flight_.end()) return;
  it->second.last_send = chrono::steady_clock::now();
  // One pooled ACCEPT frame, shared across acceptors (refcount bumps, not
  // per-destination copies).
  util::PayloadWriter w(8 + 8 + 4 + it->second.value.size());
  w.u64(ballot_);
  w.u64(inst);
  w.bytes(it->second.value);
  util::Payload accept = w.take();
  for (auto a : acceptors_) {
    if (!it->second.acks.contains(a)) {
      send(a, MsgType::kPaxosAccept, accept);
    }
  }
}

void Coordinator::on_promise(transport::NodeId from, util::Reader& r) {
  Ballot ballot = r.u64();
  if (phase_ != Phase::kPreparing || ballot != ballot_) return;
  prepare_floor_ = std::max(prepare_floor_, r.u64());
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Instance inst = r.u64();
    Ballot acc_ballot = r.u64();
    util::Payload value{r.bytes()};  // failover path: copy out of the frame
    auto& pv = promised_values_[inst];
    if (acc_ballot >= pv.ballot) {
      pv.ballot = acc_ballot;
      pv.value = std::move(value);
    }
  }
  promises_.insert(from);
  if (promises_.size() < quorum()) return;

  // Quorum of promises: adopt constrained values, fill gaps with no-ops,
  // then resume normal operation.
  phase_ = Phase::kSteady;
  Instance max_seen = 0;
  bool any = !promised_values_.empty() || !in_flight_.empty();
  for (const auto& [inst, pv] : promised_values_) {
    max_seen = std::max(max_seen, inst);
  }
  for (const auto& [inst, fl] : in_flight_) {
    max_seen = std::max(max_seen, inst);
  }

  // Values carried over from our own previous round (re-proposed under the
  // new ballot) unless a promise already constrains that instance.
  std::map<Instance, InFlight> prior = std::move(in_flight_);
  in_flight_.clear();

  if (any) {
    Batch noop;
    noop.skip = true;
    util::Payload noop_enc = noop.encode();
    // Instances below the truncation floor are already delivered at every
    // learner; re-proposing them would only churn the acceptors.
    for (Instance inst = prepare_floor_; inst <= max_seen; ++inst) {
      auto pv = promised_values_.find(inst);
      if (pv != promised_values_.end()) {
        propose(inst, std::move(pv->second.value));
      } else if (auto pr = prior.find(inst); pr != prior.end()) {
        propose(inst, std::move(pr->second.value));
      } else {
        propose(inst, noop_enc);
      }
    }
    next_instance_ = max_seen + 1;
  }
  // Even if nothing survived at the acceptors (a fully truncated, idle
  // ring), never restart numbering below the floor.
  next_instance_ = std::max(next_instance_, prepare_floor_);
  promised_values_.clear();
  // A coordinator entering steady state (initial election or failover)
  // owes no skips for the time it spent in Phase 1.
  skip_due_ = chrono::steady_clock::now() + cfg_.skip_interval;
  pump_proposals();
  PSMR_DEBUG("ring " << ring_ << ": steady at ballot " << ballot_
                     << ", next instance " << next_instance_);
}

void Coordinator::on_accepted(transport::NodeId from, util::Reader& r) {
  Ballot ballot = r.u64();
  Instance inst = r.u64();
  if (ballot != ballot_) return;
  auto it = in_flight_.find(inst);
  if (it == in_flight_.end()) return;  // already decided
  it->second.acks.insert(from);
  if (it->second.acks.size() >= quorum()) {
    decide(inst);
  }
}

void Coordinator::decide(Instance inst) {
  auto it = in_flight_.find(inst);
  if (it == in_flight_.end()) return;
  // One pooled DECIDE frame; the fan-out to every learner and acceptor
  // shares it by refcount instead of cloning the batch N times.
  util::PayloadWriter w(8 + 4 + it->second.value.size());
  w.u64(inst);
  w.bytes(it->second.value);
  util::Payload payload = w.take();
  for (auto l : learners_->snapshot()) {
    send(l, MsgType::kPaxosDecide, payload);
  }
  // Acceptors also learn, to serve catch-up requests.
  for (auto a : acceptors_) {
    send(a, MsgType::kPaxosDecide, payload);
  }
  if (auto batch = Batch::decode(it->second.value)) {
    // A decided command batch advances the merge rotation by itself, so the
    // next skip is owed one interval from now.  A decided *skip* must NOT
    // touch the schedule: refreshing it here is exactly the old stall — the
    // cadence degraded to one skip per (interval + decide round-trip), and
    // under CPU contention the round-trip stretched until merge-based
    // delivery crawled behind client retransmission timeouts.
    if (!batch->skip) {
      skip_due_ = chrono::steady_clock::now() + cfg_.skip_interval;
    }
    std::lock_guard lock(stats_mu_);
    ++stats_.decided_batches;
    if (batch->skip) {
      ++stats_.decided_skips;
    } else {
      stats_.decided_commands += batch->commands.size();
    }
  }
  in_flight_.erase(it);
  pump_proposals();
}

void Coordinator::on_nack(util::Reader& r) {
  Ballot seen = r.u64();
  if (seen < ballot_) return;
  // A higher ballot exists: adopt a round above it and re-prepare.  Values
  // still in flight are re-proposed after the new Phase 1 completes.
  round_ = seen / 65536 + 1;
  ballot_ = make_ballot(round_, proposer_index_);
  begin_prepare();
}

void Coordinator::on_tick() {
  auto now = chrono::steady_clock::now();
  if (now.time_since_epoch().count() <
      stall_until_ns_.load(std::memory_order_relaxed)) {
    return;  // test hook: simulated tick starvation
  }

  if (phase_ == Phase::kPreparing) {
    if (now - prepare_sent_ > cfg_.rto) begin_prepare();
    return;
  }

  // Seal a lingering partial batch.
  if (!pending_.empty() && now - batch_started_ >= batch_timeout_) {
    seal_batch(SealReason::kTimeout);
    pump_proposals();
  }

  // Retransmit stalled proposals (lost ACCEPT/ACCEPTED under drops).
  for (auto& [inst, fl] : in_flight_) {
    if (now - fl.last_send > cfg_.rto) send_accepts(inst);
  }

  // Idle ring: emit SKIPs so merge-based delivery keeps advancing.  The
  // schedule is absolute — one skip owed per elapsed skip_interval — and
  // emission does not wait for earlier skips to decide, so the cadence is
  // bounded by wall time, not by the Paxos round-trip.  If this tick ran
  // late (starved thread, loaded host) the loop repays every missed
  // interval at once, pipelined up to the Phase 2 window; the merge
  // rotation deficit clears in one round-trip instead of one interval per
  // missed skip.
  if (cfg_.skip_interval.count() > 0 && sealed_.empty() && pending_.empty()) {
    // Cap the repayable backlog at one pipeline window: an idle ring that
    // was stalled for minutes owes the merge at most "enough skips that no
    // consumer is waiting", not one per elapsed interval forever.
    const auto max_backlog =
        cfg_.skip_interval * static_cast<int>(cfg_.pipeline_window);
    if (skip_due_ < now - max_backlog) skip_due_ = now - max_backlog;
    Batch skip;
    skip.skip = true;
    while (now >= skip_due_ && in_flight_.size() < cfg_.pipeline_window) {
      propose(next_instance_++, skip.encode());
      skip_due_ += cfg_.skip_interval;
    }
  }
}

}  // namespace psmr::paxos
