// Ring: one totally ordered stream of command batches (one multicast group).
//
// Wires together a coordinator, `num_acceptors` acceptors and any number of
// learner subscriptions on a shared Network.  Also provides the failover
// hook used by tests: fail_coordinator() crashes the current coordinator
// (network disconnect) and promotes a fresh one with a higher ballot, which
// re-runs Phase 1, re-proposes constrained values and resumes.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "paxos/acceptor.h"
#include "paxos/coordinator.h"
#include "paxos/learner.h"

namespace psmr::paxos {

class Ring {
 public:
  Ring(transport::Network& net, RingId id, RingConfig cfg);
  ~Ring();

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  /// Starts acceptor and coordinator threads.
  void start();
  /// Stops all endpoints (also runs on destruction).
  void stop();

  [[nodiscard]] RingId id() const { return id_; }
  [[nodiscard]] const RingConfig& config() const { return cfg_; }

  /// Node id of the current coordinator (changes on failover).
  [[nodiscard]] transport::NodeId coordinator() const {
    return current_coordinator_.load();
  }

  /// Creates a learner subscription: the returned log receives every batch
  /// decided by this ring, in instance order, starting at `start` (nonzero
  /// when a recovering replica resumes from a checkpoint; the suffix below
  /// the live stream is fetched via the acceptor catch-up protocol).
  std::unique_ptr<LearnerLog> subscribe(Instance start = 0);

  /// Largest decided-log size across this ring's acceptors (thread-safe;
  /// bounded-memory monitoring for checkpoint truncation).
  [[nodiscard]] std::size_t max_acceptor_log() const;
  /// Total decided instances truncated across this ring's acceptors.
  [[nodiscard]] std::uint64_t truncated_instances() const;

  /// Submits one opaque command from node `from` to the current coordinator.
  bool submit(transport::NodeId from, util::Payload command);

  /// Submits several commands in one wire message (SUBMIT_MANY).  The
  /// coordinator appends them to its open batch in order, so a burst
  /// coalesced upstream lands in as few consensus instances as the batch
  /// caps allow instead of trickling in one submit per command.
  bool submit_many(transport::NodeId from,
                   std::vector<util::Payload> commands);

  /// Submits a pre-encoded SUBMIT_MANY frame (u32 count + count
  /// length-prefixed commands) carrying `count` commands.  The client-side
  /// submit spooler encodes commands straight into one pooled frame as they
  /// arrive, so the flush is a single send with no re-marshalling here.
  bool submit_encoded(transport::NodeId from, util::Payload frame,
                      std::size_t count);

  /// Crash-simulates the current coordinator and promotes a standby with a
  /// strictly higher ballot.  Returns the new coordinator's node id.
  transport::NodeId fail_coordinator();

  /// Aggregate stats from the current coordinator.
  [[nodiscard]] CoordinatorStats stats() const;

  /// Test hook: starves the current coordinator's tick loop for `d`,
  /// deterministically reproducing the CPU-contention regime behind the
  /// merge skip-cadence stall (see Coordinator::stall_ticks_for).
  void stall_coordinator_ticks(std::chrono::microseconds d);

  [[nodiscard]] const std::vector<transport::NodeId>& acceptor_ids() const {
    return acceptor_ids_;
  }

 private:
  transport::Network& net_;
  const RingId id_;
  const RingConfig cfg_;

  std::vector<std::unique_ptr<Acceptor>> acceptors_;
  std::vector<transport::NodeId> acceptor_ids_;
  std::shared_ptr<LearnerRegistry> learners_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::atomic<transport::NodeId> current_coordinator_{transport::kNoNode};
  std::uint64_t next_round_ = 1;
  bool started_ = false;
};

}  // namespace psmr::paxos
