#include "paxos/ring.h"

#include <algorithm>

#include "util/log.h"

namespace psmr::paxos {

Ring::Ring(transport::Network& net, RingId id, RingConfig cfg)
    : net_(net),
      id_(id),
      cfg_(std::move(cfg)),
      learners_(std::make_shared<LearnerRegistry>()) {
  for (std::size_t i = 0; i < cfg_.num_acceptors; ++i) {
    acceptors_.push_back(
        std::make_unique<Acceptor>(net_, id_, cfg_.checkpoint_ackers));
    acceptor_ids_.push_back(acceptors_.back()->id());
  }
  coordinators_.push_back(std::make_unique<Coordinator>(
      net_, id_, cfg_, acceptor_ids_, learners_, /*proposer_index=*/0,
      /*start_round=*/0));
  current_coordinator_ = coordinators_.back()->id();
}

Ring::~Ring() { stop(); }

void Ring::start() {
  std::lock_guard lock(mu_);
  if (started_) return;
  started_ = true;
  for (auto& a : acceptors_) a->start();
  for (auto& c : coordinators_) c->start();
}

void Ring::stop() {
  std::lock_guard lock(mu_);
  for (auto& c : coordinators_) c->stop();
  for (auto& a : acceptors_) a->stop();
}

std::unique_ptr<LearnerLog> Ring::subscribe(Instance start) {
  auto log = std::make_unique<LearnerLog>(net_, id_, acceptor_ids_, start);
  learners_->add(log->id());
  return log;
}

std::size_t Ring::max_acceptor_log() const {
  std::size_t out = 0;
  for (const auto& a : acceptors_) out = std::max(out, a->decided_count());
  return out;
}

std::uint64_t Ring::truncated_instances() const {
  std::uint64_t out = 0;
  for (const auto& a : acceptors_) out += a->truncated_instances();
  return out;
}

bool Ring::submit(transport::NodeId from, util::Payload command) {
  return net_.send(from, coordinator(), transport::MsgType::kPaxosSubmit,
                   std::move(command));
}

bool Ring::submit_many(transport::NodeId from,
                       std::vector<util::Payload> commands) {
  if (commands.empty()) return true;
  if (commands.size() == 1) return submit(from, std::move(commands.front()));
  std::size_t total = 4;
  for (const auto& c : commands) total += 4 + c.size();
  util::PayloadWriter w(total);
  w.u32(static_cast<std::uint32_t>(commands.size()));
  for (const auto& c : commands) w.bytes(c);
  return net_.send(from, coordinator(), transport::MsgType::kPaxosSubmitMany,
                   w.take());
}

bool Ring::submit_encoded(transport::NodeId from, util::Payload frame,
                          std::size_t count) {
  if (count == 0) return true;
  return net_.send(from, coordinator(), transport::MsgType::kPaxosSubmitMany,
                   std::move(frame));
}

transport::NodeId Ring::fail_coordinator() {
  std::lock_guard lock(mu_);
  transport::NodeId old = current_coordinator_.load();
  net_.disconnect(old);
  auto replacement = std::make_unique<Coordinator>(
      net_, id_, cfg_, acceptor_ids_, learners_,
      static_cast<std::uint32_t>(coordinators_.size()), next_round_++);
  if (started_) replacement->start();
  current_coordinator_ = replacement->id();
  PSMR_INFO("ring " << id_ << ": coordinator failover " << old << " -> "
                    << replacement->id());
  coordinators_.push_back(std::move(replacement));
  return current_coordinator_.load();
}

CoordinatorStats Ring::stats() const {
  std::lock_guard lock(mu_);
  return coordinators_.back()->stats();
}

void Ring::stall_coordinator_ticks(std::chrono::microseconds d) {
  std::lock_guard lock(mu_);
  coordinators_.back()->stall_ticks_for(d);
}

}  // namespace psmr::paxos
