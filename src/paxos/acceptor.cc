#include "paxos/acceptor.h"

#include <algorithm>

#include "util/log.h"

namespace psmr::paxos {

using transport::MsgType;

void Acceptor::handle(transport::Message msg) {
  util::Reader r(msg.payload);
  try {
    switch (msg.type) {
      case MsgType::kPaxosPrepare:
        on_prepare(msg.from, r);
        break;
      case MsgType::kPaxosAccept:
        on_accept(msg.from, msg.payload);
        break;
      case MsgType::kPaxosDecide:
        on_decide(msg.payload);
        break;
      case MsgType::kPaxosCatchupReq:
        on_catchup(msg.from, r);
        break;
      case MsgType::kPaxosCheckpointAck:
        on_checkpoint_ack(r);
        break;
      default:
        PSMR_WARN("acceptor " << name() << ": unexpected msg type "
                              << msg.type);
    }
  } catch (const util::DecodeError& e) {
    PSMR_ERROR("acceptor " << name() << ": malformed message: " << e.what());
  }
}

void Acceptor::on_prepare(transport::NodeId from, util::Reader& r) {
  Ballot ballot = r.u64();
  Instance from_inst = r.u64();
  if (ballot < promised_) {
    util::Writer w;
    w.u64(promised_);
    send(from, MsgType::kPaxosNack, w.take());
    return;
  }
  promised_ = ballot;
  util::Writer w;
  w.u64(ballot);
  w.u64(low_water_.load(std::memory_order_relaxed));
  auto it = accepted_.lower_bound(from_inst);
  std::uint32_t n = 0;
  for (auto probe = it; probe != accepted_.end(); ++probe) ++n;
  w.u32(n);
  for (; it != accepted_.end(); ++it) {
    w.u64(it->first);
    w.u64(it->second.ballot);
    w.bytes(it->second.value);
  }
  send(from, MsgType::kPaxosPromise, w.take());
}

void Acceptor::on_accept(transport::NodeId from, const util::Payload& payload) {
  util::Reader r(payload);
  Ballot ballot = r.u64();
  Instance inst = r.u64();
  // Zero-copy: the stored value shares the ACCEPT frame's pool block.
  util::Payload value = payload.subview_of(r.bytes_view());
  if (ballot < promised_) {
    util::Writer w;
    w.u64(promised_);
    send(from, MsgType::kPaxosNack, w.take());
    return;
  }
  promised_ = ballot;
  accepted_[inst] = AcceptedEntry{ballot, std::move(value)};
  util::PayloadWriter w(16);
  w.u64(ballot);
  w.u64(inst);
  send(from, MsgType::kPaxosAccepted, w.take());
}

void Acceptor::on_decide(const util::Payload& payload) {
  util::Reader r(payload);
  Instance inst = r.u64();
  if (inst < low_water_.load(std::memory_order_relaxed)) return;  // truncated
  decided_[inst] = payload.subview_of(r.bytes_view());
  decided_size_.store(decided_.size(), std::memory_order_relaxed);
}

void Acceptor::on_catchup(transport::NodeId from, util::Reader& r) {
  Instance lo = r.u64();
  Instance hi = r.u64();
  util::Writer w;
  std::uint32_t n = 0;
  for (auto it = decided_.lower_bound(lo);
       it != decided_.end() && it->first <= hi; ++it) {
    ++n;
  }
  w.u32(n);
  for (auto it = decided_.lower_bound(lo);
       it != decided_.end() && it->first <= hi; ++it) {
    w.u64(it->first);
    w.bytes(it->second);
  }
  send(from, MsgType::kPaxosCatchupRep, w.take());
}

void Acceptor::on_checkpoint_ack(util::Reader& r) {
  std::uint64_t replica = r.u64();
  Instance inst = r.u64();
  if (checkpoint_ackers_ == 0) return;  // truncation disabled
  auto& acked = acks_[replica];
  acked = std::max(acked, inst);
  if (acks_.size() < checkpoint_ackers_) return;
  Instance floor = acks_.begin()->second;
  for (const auto& [_, i] : acks_) floor = std::min(floor, i);
  if (floor <= low_water_.load(std::memory_order_relaxed)) return;
  std::uint64_t dropped = 0;
  for (auto it = decided_.begin();
       it != decided_.end() && it->first < floor;) {
    it = decided_.erase(it);
    ++dropped;
  }
  for (auto it = accepted_.begin();
       it != accepted_.end() && it->first < floor;) {
    it = accepted_.erase(it);
  }
  low_water_.store(floor, std::memory_order_relaxed);
  decided_size_.store(decided_.size(), std::memory_order_relaxed);
  truncated_.fetch_add(dropped, std::memory_order_relaxed);
  PSMR_DEBUG("acceptor " << name() << ": truncated below " << floor << " ("
                         << dropped << " decided instances dropped)");
}

}  // namespace psmr::paxos
