// Byte-buffer serialization primitives used by every wire format in the
// repository (Paxos messages, multicast batches, SMR commands, service
// payloads).  The encoding is little-endian, fixed-width for integers, and
// length-prefixed for strings/blobs; it is not self-describing — reader and
// writer must agree on the schema, exactly like the paper's marshaled
// command parameters (Section III).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace psmr::util {

/// Growable byte buffer.  Alias so all modules share one spelling.
using Buffer = std::vector<std::uint8_t>;

/// Serializes scalar values, strings and nested blobs into a Buffer.
///
/// Writer never throws on append (it grows the underlying vector); the
/// resulting bytes are read back with Reader.
class Writer {
 public:
  Writer() = default;
  /// Wraps an existing buffer; appended bytes follow its current content.
  explicit Writer(Buffer buf) : buf_(std::move(buf)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte blob.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }
  /// Length-prefixed (u32) string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Appends bytes verbatim with no length prefix.
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Buffer& view() const { return buf_; }
  /// Moves the accumulated bytes out; the Writer is empty afterwards.
  Buffer take() { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Buffer buf_;
};

/// Thrown by Reader when the buffer is shorter than the schema expects.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Reads values written by Writer, in the same order.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Buffer& buf) : data_(buf) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  double f64() {
    std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  /// Reads a length-prefixed blob written by Writer::bytes.
  Buffer bytes() {
    std::uint32_t n = u32();
    need(n);
    Buffer out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  /// Zero-copy view of a length-prefixed blob; valid while the source lives.
  std::span<const std::uint8_t> bytes_view() {
    std::uint32_t n = u32();
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  /// Reads `n` raw bytes (no length prefix).
  std::span<const std::uint8_t> raw(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw DecodeError("buffer underflow: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }
  template <typename T>
  T read_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace psmr::util
