// Deterministic pseudo-random number generation and workload distributions.
//
// SplitMix64 is the seed-robust generator used throughout tests, workload
// generators and the simulator (we avoid std::mt19937 for speed and for a
// stable cross-platform sequence).  Zipf implements the skewed key selection
// of the paper's Section VII-G (exponent 1) using rejection-inversion
// sampling (W. Hörmann & G. Derflinger), which is O(1) per sample even for
// the paper's 10-million-key space.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace psmr::util {

/// Fast 64-bit PRNG with excellent statistical quality for our purposes.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free-enough reduction.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// Zipf-distributed integers over [0, n) with parameter s (exponent).
///
/// Uses rejection-inversion so sampling is O(1); construction is O(1) too.
/// s == 1 matches the paper's skewed-workload experiment (Section VII-G).
class Zipf {
 public:
  Zipf(std::uint64_t n, double s) : n_(n), s_(s) {
    assert(n >= 1);
    assert(s > 0.0);
    h_x1_ = h(1.5) - std::exp(-s_ * std::log(1.0));
    h_n_ = h(static_cast<double>(n_) + 0.5);
    dist_range_ = h_n_ - h_x1_;
  }

  /// Draws a sample in [0, n); rank 0 is the most popular key.
  std::uint64_t sample(SplitMix64& rng) const {
    while (true) {
      double u = h_x1_ + rng.next_double() * dist_range_;
      double x = h_inv(u);
      std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      double kd = static_cast<double>(k);
      if (u >= h(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
        return k - 1;
      }
    }
  }

 private:
  // H(x) = integral of x^-s; closed forms differ for s == 1.
  [[nodiscard]] double h(double x) const {
    if (s_ == 1.0) return std::log(x);
    return (std::exp((1.0 - s_) * std::log(x)) - 1.0) / (1.0 - s_);
  }
  [[nodiscard]] double h_inv(double u) const {
    if (s_ == 1.0) return std::exp(u);
    return std::exp(std::log(1.0 + u * (1.0 - s_)) / (1.0 - s_));
  }

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double dist_range_;
};

}  // namespace psmr::util
