// Minimal leveled logger.  Protocol modules log at kDebug (off by default)
// so tests and benches stay quiet; failover paths log at kInfo.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace psmr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
inline std::atomic<LogLevel>& level_flag() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace detail

/// Sets the global log threshold (messages below it are dropped).
inline void set_log_level(LogLevel level) { detail::level_flag() = level; }
inline LogLevel log_level() { return detail::level_flag().load(); }

/// Writes one log line to stderr; thread-safe.
inline void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard lock(detail::log_mutex());
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               msg.c_str());
}

}  // namespace psmr::util

#define PSMR_LOG(level, expr)                                             \
  do {                                                                    \
    if ((level) >= ::psmr::util::log_level()) {                           \
      std::ostringstream psmr_log_oss;                                    \
      psmr_log_oss << expr;                                               \
      ::psmr::util::log_line((level), psmr_log_oss.str());                \
    }                                                                     \
  } while (0)

#define PSMR_DEBUG(expr) PSMR_LOG(::psmr::util::LogLevel::kDebug, expr)
#define PSMR_INFO(expr) PSMR_LOG(::psmr::util::LogLevel::kInfo, expr)
#define PSMR_WARN(expr) PSMR_LOG(::psmr::util::LogLevel::kWarn, expr)
#define PSMR_ERROR(expr) PSMR_LOG(::psmr::util::LogLevel::kError, expr)
