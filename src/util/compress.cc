#include "util/compress.h"

#include <array>
#include <cstring>

namespace psmr::util {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 14;

std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(Buffer& out, std::size_t len) {
  // Extension bytes after a nibble value of 15.
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

}  // namespace

Buffer lz_compress(std::span<const std::uint8_t> input) {
  Buffer out;
  out.reserve(input.size() / 2 + 16);
  // Header: raw size, little endian.
  std::uint32_t raw = static_cast<std::uint32_t>(input.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(raw >> (8 * i)));
  }
  const std::uint8_t* base = input.data();
  const std::size_t n = input.size();

  std::array<std::int64_t, 1 << kHashBits> table;
  table.fill(-1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit = [&](std::size_t match_len, std::size_t offset) {
    std::size_t lit_len = pos - literal_start;
    std::uint8_t token = 0;
    token |= static_cast<std::uint8_t>((lit_len >= 15 ? 15 : lit_len) << 4);
    if (match_len > 0) {
      std::size_t m = match_len - kMinMatch;
      token |= static_cast<std::uint8_t>(m >= 15 ? 15 : m);
    }
    out.push_back(token);
    if (lit_len >= 15) put_length(out, lit_len - 15);
    out.insert(out.end(), base + literal_start, base + pos);
    if (match_len > 0) {
      out.push_back(static_cast<std::uint8_t>(offset & 0xff));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      std::size_t m = match_len - kMinMatch;
      if (m >= 15) put_length(out, m - 15);
    }
  };

  while (n >= kMinMatch && pos + kMinMatch <= n) {
    std::uint32_t h = hash4(load32(base + pos));
    std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(pos);
    if (cand >= 0 &&
        pos - static_cast<std::size_t>(cand) <= kMaxOffset &&
        load32(base + cand) == load32(base + pos)) {
      // Extend the match forward.
      std::size_t match_len = kMinMatch;
      while (pos + match_len < n &&
             base[cand + static_cast<std::int64_t>(match_len)] ==
                 base[pos + match_len]) {
        ++match_len;
      }
      std::size_t offset = pos - static_cast<std::size_t>(cand);
      emit(match_len, offset);
      // Index a couple of positions inside the match to keep ratio decent.
      for (std::size_t i = 1; i < match_len && pos + i + kMinMatch <= n;
           i += 2) {
        table[hash4(load32(base + pos + i))] =
            static_cast<std::int64_t>(pos + i);
      }
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  pos = n;
  emit(0, 0);  // trailing literals-only sequence
  return out;
}

std::optional<Buffer> lz_decompress(std::span<const std::uint8_t> block) {
  if (block.size() < 4) return std::nullopt;
  std::uint32_t raw = 0;
  for (int i = 0; i < 4; ++i) {
    raw |= static_cast<std::uint32_t>(block[static_cast<std::size_t>(i)])
           << (8 * i);
  }
  Buffer out;
  out.reserve(raw);
  std::size_t pos = 4;
  const std::size_t n = block.size();

  auto read_ext = [&](std::size_t& len) -> bool {
    while (true) {
      if (pos >= n) return false;
      std::uint8_t b = block[pos++];
      len += b;
      if (b != 255) return true;
    }
  };

  while (out.size() < raw) {
    if (pos >= n) return std::nullopt;
    std::uint8_t token = block[pos++];
    std::size_t lit_len = token >> 4;
    if (lit_len == 15 && !read_ext(lit_len)) return std::nullopt;
    if (pos + lit_len > n) return std::nullopt;
    out.insert(out.end(), block.begin() + static_cast<std::ptrdiff_t>(pos),
               block.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
    pos += lit_len;
    if (out.size() >= raw) break;  // final literals-only sequence

    if (pos + 2 > n) return std::nullopt;
    std::size_t offset = block[pos] | (static_cast<std::size_t>(block[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) return std::nullopt;
    std::size_t match_len = (token & 0xf);
    if (match_len == 15 && !read_ext(match_len)) return std::nullopt;
    match_len += kMinMatch;
    if (out.size() + match_len > raw) return std::nullopt;
    // Byte-by-byte copy: overlapping matches (offset < length) are valid.
    std::size_t src = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw) return std::nullopt;
  return out;
}

}  // namespace psmr::util
