// Allocation-counting hook over the global operator new/delete.
//
// The zero-copy buffer pool's whole claim is "no heap traffic on the warm
// hot path", and that claim is only worth pinning if it is *measured*, not
// asserted.  This header provides a swappable counting hook: a binary that
// expands PSMR_DEFINE_ALLOC_HOOK() in exactly one translation unit gets
// replacement global allocation functions that count every operator-new
// call in a relaxed atomic before delegating to malloc.  Binaries that
// never expand the macro keep the stock allocator and pay nothing.
//
// Users: tests/test_support.cc (so any test can assert allocation counts)
// and bench/bench_common.h (each bench binary is a single translation
// unit), which is how bench_micro_codec measures allocs-per-command for
// BENCH_alloc.json and the AllocCalibration record in sim/calibration.h.
//
// The hook stays inert under ASan/TSan: the sanitizers interpose the
// allocator themselves, and replacing operator new underneath them would
// blind their bookkeeping.  allocations() then reports 0 and
// kAllocHookActive lets measurement code skip itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PSMR_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PSMR_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace psmr::util::allochook {

#ifdef PSMR_ALLOC_HOOK_DISABLED
inline constexpr bool kAllocHookActive = false;
inline std::atomic<std::uint64_t> g_news{0};  // never incremented
#else
inline constexpr bool kAllocHookActive = true;
/// Total operator-new calls since process start (or the last reset()).
/// Defined `inline` so the declaration is usable even in TUs of a binary
/// whose hook lives in another TU.
inline std::atomic<std::uint64_t> g_news{0};
#endif

/// Operator-new calls observed so far.  Always 0 when !kAllocHookActive or
/// when no TU of the binary expanded PSMR_DEFINE_ALLOC_HOOK().
inline std::uint64_t allocations() {
  return g_news.load(std::memory_order_relaxed);
}

inline void reset() { g_news.store(0, std::memory_order_relaxed); }

/// RAII window: `AllocWindow w; ...; auto n = w.count();`
class AllocWindow {
 public:
  AllocWindow() : start_(allocations()) {}
  [[nodiscard]] std::uint64_t count() const { return allocations() - start_; }

 private:
  std::uint64_t start_;
};

#ifndef PSMR_ALLOC_HOOK_DISABLED
namespace detail {

inline void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}

inline void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? 1 : n) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace detail
#endif

}  // namespace psmr::util::allochook

#ifdef PSMR_ALLOC_HOOK_DISABLED
#define PSMR_DEFINE_ALLOC_HOOK() static_assert(true, "")
#else
// Expand in exactly ONE translation unit of a binary.  Covers the full
// C++17 replaceable set: plain/array, nothrow, and aligned forms, with the
// matching deletes (free() pairs with both malloc and posix_memalign —
// which is the whole point of replacing the full set, but GCC's
// -Wmismatched-new-delete only sees the delete half and must be quieted).
#define PSMR_DEFINE_ALLOC_HOOK()                                             \
  _Pragma("GCC diagnostic push")                                             \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")              \
  void* operator new(std::size_t n) {                                        \
    if (void* p = psmr::util::allochook::detail::counted_alloc(n)) return p; \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t n) {                                      \
    if (void* p = psmr::util::allochook::detail::counted_alloc(n)) return p; \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new(std::size_t n, const std::nothrow_t&) noexcept {        \
    return psmr::util::allochook::detail::counted_alloc(n);                  \
  }                                                                          \
  void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {      \
    return psmr::util::allochook::detail::counted_alloc(n);                  \
  }                                                                          \
  void* operator new(std::size_t n, std::align_val_t a) {                    \
    if (void* p = psmr::util::allochook::detail::counted_alloc_aligned(      \
            n, static_cast<std::size_t>(a)))                                 \
      return p;                                                              \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t n, std::align_val_t a) {                  \
    if (void* p = psmr::util::allochook::detail::counted_alloc_aligned(      \
            n, static_cast<std::size_t>(a)))                                 \
      return p;                                                              \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void operator delete(void* p) noexcept { std::free(p); }                   \
  void operator delete[](void* p) noexcept { std::free(p); }                 \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
  void operator delete(void* p, const std::nothrow_t&) noexcept {            \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {          \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); } \
  void operator delete[](void* p, std::align_val_t) noexcept {               \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {    \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {  \
    std::free(p);                                                            \
  }                                                                          \
  _Pragma("GCC diagnostic pop")                                              \
  static_assert(true, "")
#endif
