// Blocking queues used for all in-process message passing: transport
// mailboxes, scheduler→worker handoff in sP-SMR, and client response hubs.
//
// BlockingQueue is a mutex+condvar MPMC queue with close() semantics so
// consumers drain remaining items and then observe shutdown instead of
// blocking forever — the idiom every replica/worker loop in this repo uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace psmr::util {

/// Unbounded-by-default MPMC blocking queue with shutdown support.
///
/// A closed queue rejects further pushes but lets consumers drain what was
/// already enqueued; pop() returns std::nullopt once the queue is closed and
/// empty.  With a nonzero capacity, push() blocks while full (closed-loop
/// backpressure, mirroring the paper's bounded client windows).
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item.  Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    if (capacity_ != 0) {
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues without blocking.  Returns false if full or closed.
  bool try_push(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    return pop_unchecked();
  }

  /// Pop with a relative timeout; std::nullopt on timeout or closed+empty.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return pop_locked();
  }

  /// Closes the queue: pending and future pushes fail, consumers drain.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  // Callers hold mu_.
  std::optional<T> pop_locked() {
    if (items_.empty()) return std::nullopt;  // closed and drained
    return pop_unchecked();
  }
  std::optional<T> pop_unchecked() {
    T item = std::move(items_.front());
    items_.pop_front();
    if (capacity_ != 0) not_full_.notify_one();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_ = 0;
  bool closed_ = false;
};

}  // namespace psmr::util
