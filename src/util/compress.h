// LZ77-style block compressor standing in for lz4 in the NetFS pipeline.
//
// The paper's NetFS compresses every request at the client and decompresses
// it at the executing worker thread, then compresses the response (lz4,
// Section VI-C); compression being slower than decompression is the paper's
// explanation for reads showing higher latency than writes in Figure 8.  This
// codec reproduces that code path and cost asymmetry: greedy hash-chain
// matching on compress (expensive), branchy copy loop on decompress (cheap).
//
// Format (LZ4-like sequences):
//   token byte: [4 bits literal run | 4 bits match length - kMinMatch],
//   value 15 in either nibble is extended by 255-continuation bytes;
//   literal bytes; 2-byte little-endian match offset (if a match follows).
// The final sequence is literals-only (match nibble 0 and no offset).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/bytes.h"

namespace psmr::util {

/// Compresses `input` into a self-contained block (4-byte raw-size header +
/// sequence stream).  Always succeeds; incompressible data grows slightly.
Buffer lz_compress(std::span<const std::uint8_t> input);

/// Decompresses a block produced by lz_compress.
/// Returns std::nullopt if the block is malformed or truncated.
std::optional<Buffer> lz_decompress(std::span<const std::uint8_t> block);

}  // namespace psmr::util
