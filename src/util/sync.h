// Small synchronization helpers shared across the runtime.
//
// Signal implements the thread-to-thread signalling primitive of the paper's
// Algorithm 1 (lines 18–26): in synchronous mode, non-executing worker
// threads `signal(t_e)` and then `wait for signal from t_e`.  It is a
// counting semaphore so a signal sent before the receiver waits is not lost.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace psmr::util {

/// Counting signal/semaphore used for Algorithm 1's barrier handshake.
class Signal {
 public:
  /// Delivers one signal; wakes one waiter if any.
  void notify() {
    std::lock_guard lock(mu_);
    ++count_;
    cv_.notify_one();
  }

  /// Blocks until a signal is available, then consumes it.
  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  /// Timed wait; returns false on timeout without consuming a signal.
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return count_ > 0; })) return false;
    --count_;
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t count_ = 0;
};

/// One-shot latch: count_down() n times releases all waiters.
class CountdownLatch {
 public:
  explicit CountdownLatch(std::int64_t count) : count_(count) {}

  void count_down() {
    std::lock_guard lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t count_;
};

/// Go-style wait group: tracks in-flight work items across threads.
class WaitGroup {
 public:
  void add(std::int64_t n = 1) {
    std::lock_guard lock(mu_);
    count_ += n;
  }
  void done() {
    std::lock_guard lock(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t count_ = 0;
};

}  // namespace psmr::util
