// Latency recording for the evaluation harness.
//
// The paper reports average latency, and latency CDFs (Figures 3, 4).  We
// record microsecond latencies into a log-bucketed histogram (HdrHistogram
// style, ~1.6 % relative error) so millions of samples cost a fixed, small
// footprint and merging per-client recorders is cheap.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace psmr::util {

/// Log-bucketed histogram of nonnegative values (we use microseconds).
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;  // per power of two

  void record(double value_us) { record_n(value_us, 1); }

  /// Records `n` samples of the same value in O(1) — fluid/analytic models
  /// (sim/model.h's overload model) complete thousands of commands per step
  /// at one computed sojourn time.
  void record_n(double value_us, std::uint64_t n) {
    if (n == 0) return;
    if (value_us < 0) value_us = 0;
    count_ += n;
    sum_ += value_us * static_cast<double>(n);
    max_ = std::max(max_, value_us);
    min_ = std::min(min_, value_us);
    buckets_[index_for(value_us)] += n;
  }

  /// Adds all samples of another histogram into this one.
  void merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / count_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }

  /// Value at quantile q in [0,1], approximated by bucket midpoint.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    const double target = std::max(1.0, q * static_cast<double>(count_));
    double seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return midpoint(i);
    }
    return max_;
  }

  /// CDF points (value_us, cumulative_fraction) for plotting — the format of
  /// the paper's latency CDF subgraphs.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf() const {
    std::vector<std::pair<double, double>> points;
    if (count_ == 0) return points;
    double seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      seen += buckets_[i];
      points.emplace_back(midpoint(i), seen / static_cast<double>(count_));
    }
    return points;
  }

 private:
  static std::size_t index_for(double v) {
    if (v < 1.0) return 0;
    int exp;
    double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
    int sub = static_cast<int>((frac - 0.5) * 2 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    std::size_t idx = static_cast<std::size_t>(exp) * kSubBuckets +
                      static_cast<std::size_t>(sub);
    return std::min(idx, kNumBuckets - 1);
  }
  static double midpoint(std::size_t idx) {
    int exp = static_cast<int>(idx / kSubBuckets);
    int sub = static_cast<int>(idx % kSubBuckets);
    double lo = std::ldexp(0.5 + static_cast<double>(sub) / (2 * kSubBuckets),
                           exp);
    double hi = std::ldexp(
        0.5 + static_cast<double>(sub + 1) / (2 * kSubBuckets), exp);
    return (lo + hi) / 2;
  }

  static constexpr std::size_t kNumBuckets = 64 * kSubBuckets;
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
  double min_ = 1e300;
};

}  // namespace psmr::util
