// Hashing helpers: FNV-1a for byte strings (path → group partitioning in
// NetFS, state digests), a 64-bit finalizer for integer keys (key → group in
// the keyed C-G function), and CRC32 for multicast batch integrity.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace psmr::util {

/// FNV-1a 64-bit hash of a byte span.
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a over a string view (used for file-system paths).
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit integer mixer (SplitMix64 finalizer).  Used to spread
/// adjacent keys across multicast groups.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed for fold_kv chains (the FNV-1a offset basis).
inline constexpr std::uint64_t kFoldSeed = 0xcbf29ce484222325ULL;

/// Order-sensitive (key, value) fold step shared by the B+-tree digests,
/// the KV scan command's range digest, and the test oracles — replica
/// cross-checks rely on every producer using this exact mix.
constexpr std::uint64_t fold_kv(std::uint64_t h, std::uint64_t k,
                                std::uint64_t v) {
  return mix64(h ^ mix64(k) ^ (v * 0x9e3779b97f4a7c15ULL));
}

/// Incrementally-usable CRC32 (IEEE polynomial, table-driven).
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data) {
    for (std::uint8_t b : data) {
      crc_ = table()[(crc_ ^ b) & 0xff] ^ (crc_ >> 8);
    }
  }
  [[nodiscard]] std::uint32_t value() const { return crc_ ^ 0xffffffffu; }

  static std::uint32_t of(std::span<const std::uint8_t> data) {
    Crc32 c;
    c.update(data);
    return c.value();
  }

 private:
  static const std::array<std::uint32_t, 256>& table() {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        out[i] = c;
      }
      return out;
    }();
    return t;
  }

  std::uint32_t crc_ = 0xffffffffu;
};

}  // namespace psmr::util
