// Wall-clock helpers for the measurement harness (real-runtime mode).
#pragma once

#include <chrono>
#include <cstdint>

namespace psmr::util {

/// Monotonic time in microseconds since an arbitrary epoch.
inline std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch for bench harness timing.
class Stopwatch {
 public:
  Stopwatch() : start_(now_us()) {}
  void reset() { start_ = now_us(); }
  [[nodiscard]] std::int64_t elapsed_us() const { return now_us() - start_; }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_us()) / 1e6;
  }

 private:
  std::int64_t start_;
};

}  // namespace psmr::util
