// Zero-copy pooled message buffers.
//
// Every hop of the submit/decide hot path used to copy message bodies
// through freshly heap-allocated util::Buffer vectors.  This header replaces
// that with the packet-pool-with-refcounts idiom used by line-rate
// multicast stacks (IRON and kin):
//
//   * BufferPool — a thread-safe, size-classed pool of byte blocks.  Each
//     block carries an intrusive header {atomic refcount, capacity, origin
//     pool}; acquire() pops a free block of the smallest fitting class (or
//     heap-allocates on a miss / oversize request), and the last release
//     recycles the block into its class's bounded free list.
//   * PooledBuf — the owning handle.  Copying bumps the refcount; the block
//     is recycled when the last handle drops.  Fan-out (multicast to N ring
//     nodes, kPaxosDecide to every learner) therefore shares one block
//     instead of cloning N times.
//   * Payload — the cheap value type transport::Message carries: a
//     {PooledBuf owner, bytes view} pair.  It converts implicitly from
//     util::Buffer (the bytes are copied into a pooled block once, at the
//     boundary) and to std::span<const uint8_t> (so util::Reader keeps
//     working unchanged), and subview() carves zero-copy slices — a decoded
//     batch's commands all share the decide block they arrived in.
//   * PayloadWriter — util::Writer's pooled twin: encodes straight into a
//     pooled block so the hot path never touches the global heap once the
//     pool is warm.
//
// Wire formats are unchanged: PayloadWriter emits exactly the little-endian
// encoding of util::Writer.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace psmr::util {

class BufferPool;

/// Pool counters, readable while the pool runs.  `outstanding` is the
/// number of live blocks (acquired and not yet fully released); everything
/// else is cumulative.
struct PoolStats {
  std::uint64_t hits = 0;      ///< acquire() served from a free list
  std::uint64_t misses = 0;    ///< acquire() heap-allocated (cold class)
  std::uint64_t oversize = 0;  ///< acquire() larger than the largest class
  std::uint64_t recycled = 0;  ///< blocks returned to a free list
  std::uint64_t dropped = 0;   ///< blocks freed because the list was full
  std::int64_t outstanding = 0;
};

namespace detail {

/// Intrusive block header, co-allocated immediately before the data bytes.
/// sizeof == 16, so data starts 16-aligned.
struct BlockHeader {
  std::atomic<std::uint32_t> refs;
  std::uint32_t capacity;
  BufferPool* pool;  ///< owning pool; nullptr for a pool-less heap block

  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  [[nodiscard]] const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
};
static_assert(sizeof(BlockHeader) % 16 == 0, "data must stay 16-aligned");

}  // namespace detail

/// Owning handle to one ref-counted pool block.  Copy shares (refcount
/// bump); the last handle to drop recycles the block into its pool.
/// Thread-safe in the shared-immutable sense: concurrent copies/releases of
/// handles to the same block are fine; concurrent writes to the block bytes
/// are the caller's problem (the hot path writes once, before sharing).
class PooledBuf {
 public:
  PooledBuf() = default;
  PooledBuf(const PooledBuf& o) : hdr_(o.hdr_) { retain(); }
  PooledBuf(PooledBuf&& o) noexcept : hdr_(o.hdr_) { o.hdr_ = nullptr; }
  PooledBuf& operator=(const PooledBuf& o) {
    if (this != &o) {
      release();
      hdr_ = o.hdr_;
      retain();
    }
    return *this;
  }
  PooledBuf& operator=(PooledBuf&& o) noexcept {
    if (this != &o) {
      release();
      hdr_ = o.hdr_;
      o.hdr_ = nullptr;
    }
    return *this;
  }
  ~PooledBuf() { release(); }

  explicit operator bool() const { return hdr_ != nullptr; }

  std::uint8_t* data() { return hdr_ ? hdr_->data() : nullptr; }
  [[nodiscard]] const std::uint8_t* data() const {
    return hdr_ ? hdr_->data() : nullptr;
  }
  [[nodiscard]] std::size_t capacity() const {
    return hdr_ ? hdr_->capacity : 0;
  }
  /// Current share count (test/debug observability; racy by nature).
  [[nodiscard]] std::uint32_t ref_count() const {
    return hdr_ ? hdr_->refs.load(std::memory_order_relaxed) : 0;
  }

  void reset() {
    release();
    hdr_ = nullptr;
  }

 private:
  friend class BufferPool;
  explicit PooledBuf(detail::BlockHeader* hdr) : hdr_(hdr) {}

  void retain() {
    if (hdr_ != nullptr) {
      hdr_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release();

  detail::BlockHeader* hdr_ = nullptr;
};

/// Thread-safe, size-classed pool of ref-counted byte blocks.
///
/// Free lists are bounded (`max_free_per_class` blocks retained per class);
/// beyond that, released blocks go back to the heap, and requests larger
/// than the largest class always heap-allocate (`oversize`) and free on
/// release.  The pool must outlive every block it handed out; the process
/// -wide global() pool is intentionally never destroyed so handles in
/// static-storage objects stay safe during shutdown.
class BufferPool {
 public:
  struct Options {
    /// Blocks retained per size class before releases fall through to the
    /// heap.  Sized for a deployment's steady state: every in-flight
    /// message, pending batch and spool block of a full P-SMR cluster.
    std::size_t max_free_per_class = 256;
  };

  /// Size classes, smallest to largest.  Chosen around the repo's wire
  /// traffic: small control messages, single commands, sealed batches
  /// (RingConfig::max_batch_bytes = 8K) and coalesced frames (48K response
  /// spools), with headroom.
  static constexpr std::size_t kClasses[] = {64, 256, 1024, 4096,
                                             16384, 65536};
  static constexpr std::size_t kNumClasses =
      sizeof(kClasses) / sizeof(kClasses[0]);

  BufferPool();
  explicit BufferPool(Options opt);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a block with capacity >= min_capacity (possibly rounded up to
  /// the class size), refcount 1.  Never fails: pool misses and oversize
  /// requests fall back to the heap.
  PooledBuf acquire(std::size_t min_capacity);

  [[nodiscard]] PoolStats stats() const;

  /// Frees every retained free-list block (outstanding blocks are
  /// untouched).  Test hook for exhaustion / leak accounting.
  void trim();

  /// The process-wide default pool (never destroyed).
  static BufferPool& global();

 private:
  friend class PooledBuf;

  /// Index of the smallest class >= n, or kNumClasses when oversize.
  static std::size_t class_for(std::size_t n);
  static detail::BlockHeader* heap_block(std::size_t capacity,
                                         BufferPool* pool);

  void release_block(detail::BlockHeader* hdr);

  const Options opt_;
  mutable std::mutex mu_;
  std::vector<detail::BlockHeader*> free_[kNumClasses];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t oversize_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t dropped_ = 0;
  std::atomic<std::int64_t> outstanding_{0};
};

/// The value type transport::Message carries: a read-only byte view plus a
/// shared owner of the underlying pool block.  Copy = refcount bump.
class Payload {
 public:
  Payload() = default;

  /// Adopts a view over an owned block.  `data` must point into the block.
  Payload(PooledBuf owner, const std::uint8_t* data, std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  /// Copies `b` into a pooled block (one copy, at the Buffer boundary).
  /// Implicit so the many `send(..., writer.take())` call sites keep
  /// compiling unchanged.
  Payload(const Buffer& b);  // NOLINT(google-explicit-constructor)
  Payload(Buffer&& b) : Payload(static_cast<const Buffer&>(b)) {}  // NOLINT

  /// Implicit view conversion so `util::Reader r(msg.payload)` keeps
  /// working unchanged.
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return {data_, size_};
  }
  [[nodiscard]] std::span<const std::uint8_t> view() const {
    return {data_, size_};
  }

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }

  /// Byte-wise equality (content, not block identity).
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(const Payload& a, const Buffer& b) {
    return a.size_ == b.size() &&
           (b.empty() || std::memcmp(a.data_, b.data(), b.size()) == 0);
  }

  /// Zero-copy slice sharing this payload's block.
  [[nodiscard]] Payload subview(std::size_t offset, std::size_t len) const {
    assert(offset + len <= size_);
    return Payload(owner_, data_ + offset, len);
  }
  /// Zero-copy slice over a span previously handed out by a Reader over
  /// this payload (Reader::bytes_view / raw).  `s` must lie within view().
  [[nodiscard]] Payload subview_of(std::span<const std::uint8_t> s) const {
    assert(s.data() >= data_ && s.data() + s.size() <= data_ + size_);
    return Payload(owner_, s.data(), s.size());
  }

  /// Share count of the underlying block (0 when unpooled/empty).
  [[nodiscard]] std::uint32_t ref_count() const { return owner_.ref_count(); }

  /// Copies the bytes out into a plain Buffer (cold paths only).
  [[nodiscard]] Buffer to_buffer() const {
    return Buffer(data_, data_ + size_);
  }

 private:
  PooledBuf owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// util::Writer's pooled twin: appends straight into a pool block and hands
/// the result out as a Payload without any copy.  Emits byte-for-byte the
/// same little-endian encoding as util::Writer.  Grows (acquire bigger,
/// memcpy, release) if the initial capacity guess was short, so callers may
/// size optimistically.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::size_t capacity,
                         BufferPool& pool = BufferPool::global())
      : pool_(&pool), buf_(pool.acquire(capacity)) {}

  void u8(std::uint8_t v) {
    ensure(1);
    buf_.data()[size_++] = v;
  }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte blob.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }
  /// Length-prefixed (u32) string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Appends bytes verbatim with no length prefix.
  void raw(std::span<const std::uint8_t> data) {
    ensure(data.size());
    std::memcpy(buf_.data() + size_, data.data(), data.size());
    size_ += data.size();
  }

  /// Overwrites a previously written u32 in place (e.g. a count patched at
  /// flush time by the submit spooler).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    assert(offset + 4 <= size_);
    std::uint8_t* p = buf_.data() + offset;
    for (std::size_t i = 0; i < 4; ++i) {
      p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<const std::uint8_t> view() const {
    return {buf_.data(), size_};
  }

  /// Moves the accumulated bytes out as a Payload; the writer is empty (and
  /// block-less) afterwards.
  Payload take() {
    const std::uint8_t* base = buf_.data();
    std::size_t n = size_;
    size_ = 0;
    return Payload(std::move(buf_), base, n);
  }

 private:
  void ensure(std::size_t n) {
    if (size_ + n > buf_.capacity()) {
      grow(size_ + n);
    }
  }
  void grow(std::size_t need);

  template <typename T>
  void append_le(T v) {
    ensure(sizeof(T));
    std::uint8_t* p = buf_.data() + size_;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    size_ += sizeof(T);
  }

  BufferPool* pool_;
  PooledBuf buf_;
  std::size_t size_ = 0;
};

}  // namespace psmr::util
