#include "util/buffer_pool.h"

#include <new>

namespace psmr::util {

void PooledBuf::release() {
  if (hdr_ == nullptr) {
    return;
  }
  if (hdr_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (hdr_->pool != nullptr) {
      hdr_->pool->release_block(hdr_);
    } else {
      ::operator delete(hdr_);
    }
  }
  hdr_ = nullptr;
}

BufferPool::BufferPool() : BufferPool(Options{}) {}

BufferPool::BufferPool(Options opt) : opt_(opt) {}

BufferPool::~BufferPool() { trim(); }

std::size_t BufferPool::class_for(std::size_t n) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (n <= kClasses[c]) {
      return c;
    }
  }
  return kNumClasses;
}

detail::BlockHeader* BufferPool::heap_block(std::size_t capacity,
                                            BufferPool* pool) {
  void* mem = ::operator new(sizeof(detail::BlockHeader) + capacity);
  auto* hdr = new (mem) detail::BlockHeader{
      {1}, static_cast<std::uint32_t>(capacity), pool};
  return hdr;
}

PooledBuf BufferPool::acquire(std::size_t min_capacity) {
  std::size_t c = class_for(min_capacity);
  if (c == kNumClasses) {
    // Oversize: a plain heap block, never recycled.  Still pool-tagged so
    // release_block can account for it.
    {
      std::lock_guard lock(mu_);
      ++oversize_;
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    return PooledBuf(heap_block(min_capacity, this));
  }
  {
    std::lock_guard lock(mu_);
    if (!free_[c].empty()) {
      detail::BlockHeader* hdr = free_[c].back();
      free_[c].pop_back();
      ++hits_;
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      hdr->refs.store(1, std::memory_order_relaxed);
      return PooledBuf(hdr);
    }
    ++misses_;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  return PooledBuf(heap_block(kClasses[c], this));
}

void BufferPool::release_block(detail::BlockHeader* hdr) {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  std::size_t c = class_for(hdr->capacity);
  if (c < kNumClasses && kClasses[c] == hdr->capacity) {
    std::lock_guard lock(mu_);
    if (free_[c].size() < opt_.max_free_per_class) {
      free_[c].push_back(hdr);
      ++recycled_;
      return;
    }
    ++dropped_;
  }
  // Oversize blocks (capacity above the largest class) just go back to the
  // heap; they were never pool candidates.
  ::operator delete(hdr);
}

PoolStats BufferPool::stats() const {
  std::lock_guard lock(mu_);
  PoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.oversize = oversize_;
  s.recycled = recycled_;
  s.dropped = dropped_;
  s.outstanding = outstanding_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::trim() {
  std::lock_guard lock(mu_);
  for (auto& list : free_) {
    for (detail::BlockHeader* hdr : list) {
      ::operator delete(hdr);
    }
    list.clear();
  }
}

BufferPool& BufferPool::global() {
  // Intentionally leaked: handles held by static-storage objects must stay
  // releasable during process shutdown, in any destruction order.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

Payload::Payload(const Buffer& b) {
  if (b.empty()) {
    return;
  }
  PooledBuf buf = BufferPool::global().acquire(b.size());
  std::memcpy(buf.data(), b.data(), b.size());
  data_ = buf.data();
  size_ = b.size();
  owner_ = std::move(buf);
}

void PayloadWriter::grow(std::size_t need) {
  std::size_t cap = buf_.capacity() == 0 ? 64 : buf_.capacity();
  while (cap < need) {
    cap *= 2;
  }
  PooledBuf bigger = pool_->acquire(cap);
  if (size_ > 0) {
    std::memcpy(bigger.data(), buf_.data(), size_);
  }
  buf_ = std::move(bigger);
}

}  // namespace psmr::util
