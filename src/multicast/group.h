// Multicast groups and group sets.
//
// P-SMR organizes the k worker threads of every replica into k groups
// (thread t_i of each replica belongs to g_i) and the prototype adds one
// group g_all containing every thread (paper Section VI-A).  A command's
// destination γ is a set of groups computed by the C-G function.  We encode
// group sets as a 64-bit mask, so a deployment supports up to 63 worker
// groups — far beyond the paper's 8.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace psmr::multicast {

/// Index of a multicast group.  Worker groups are 0..k-1; the shared group
/// g_all is addressed via GroupSet::all(k), not an index.
using GroupId = std::uint32_t;

/// An immutable set of worker groups (bitmask).
class GroupSet {
 public:
  constexpr GroupSet() = default;

  static constexpr GroupSet single(GroupId g) {
    assert(g < 64);
    return GroupSet(std::uint64_t{1} << g);
  }
  /// The set {g_0, ..., g_{k-1}} — every worker group.
  static constexpr GroupSet all(std::size_t k) {
    assert(k > 0 && k < 64);
    return GroupSet(k == 64 ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << k) - 1));
  }
  static constexpr GroupSet from_mask(std::uint64_t mask) {
    return GroupSet(mask);
  }

  [[nodiscard]] constexpr bool contains(GroupId g) const {
    return g < 64 && (mask_ >> g) & 1;
  }
  [[nodiscard]] constexpr std::size_t size() const {
    return static_cast<std::size_t>(std::popcount(mask_));
  }
  [[nodiscard]] constexpr bool empty() const { return mask_ == 0; }
  [[nodiscard]] constexpr bool singleton() const { return size() == 1; }

  /// Smallest group index in the set — the paper's deterministic choice of
  /// executing thread in synchronous mode (Algorithm 1, line 16).
  [[nodiscard]] constexpr GroupId min() const {
    assert(!empty());
    return static_cast<GroupId>(std::countr_zero(mask_));
  }

  [[nodiscard]] constexpr std::uint64_t mask() const { return mask_; }

  [[nodiscard]] constexpr GroupSet operator&(GroupSet o) const {
    return GroupSet(mask_ & o.mask_);
  }
  [[nodiscard]] constexpr GroupSet operator|(GroupSet o) const {
    return GroupSet(mask_ | o.mask_);
  }
  constexpr bool operator==(const GroupSet&) const = default;

  /// Calls fn(GroupId) for each member, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t m = mask_;
    while (m != 0) {
      GroupId g = static_cast<GroupId>(std::countr_zero(m));
      fn(g);
      m &= m - 1;
    }
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    bool first = true;
    for_each([&](GroupId g) {
      if (!first) out += ",";
      out += std::to_string(g);
      first = false;
    });
    return out + "}";
  }

 private:
  constexpr explicit GroupSet(std::uint64_t mask) : mask_(mask) {}
  std::uint64_t mask_ = 0;
};

}  // namespace psmr::multicast
