// Key→shard mapping across many multicast rings.
//
// A sharded P-SMR deployment runs one worker group (and therefore one Paxos
// ring) per shard: commands on a key are multicast to the shard's group, so
// the per-shard streams stay independent and throughput scales with the
// number of rings.  The ShardMap is the single source of truth for that
// assignment — client proxies (via the shard-aware C-G function, see
// smr/shard_cg.h) and test oracles must agree on it exactly, or dependent
// commands stop sharing a group and linearizability breaks silently.
//
// Two policies:
//   * kHash  — shard = mix64(key) mod n.  Spreads any key distribution
//     evenly, but destroys locality: a key *range* may touch every shard.
//   * kRange — contiguous key spans of ceil(keyspace / n) keys per shard.
//     Range commands cover only the shards their span intersects, which is
//     what lets a scan synchronize with a subset of workers instead of all
//     of them.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>

#include "multicast/group.h"
#include "util/hash.h"

namespace psmr::multicast {

enum class ShardPolicy { kHash, kRange };

[[nodiscard]] constexpr const char* shard_policy_name(ShardPolicy p) {
  return p == ShardPolicy::kHash ? "hash" : "range";
}

/// Deterministic key→shard assignment.  Shards are worker-group indices
/// (0..n-1), so n is bounded by the GroupSet mask width.
class ShardMap {
 public:
  /// `keyspace` bounds the range policy's partition: keys in [0, keyspace)
  /// split into n contiguous spans; keys at or beyond keyspace clamp to the
  /// last shard (they still map *somewhere*, deterministically).  The hash
  /// policy ignores it.
  ShardMap(ShardPolicy policy, std::size_t num_shards, std::uint64_t keyspace)
      : policy_(policy), num_shards_(num_shards), keyspace_(keyspace) {
    assert(num_shards_ >= 1 && num_shards_ < 64);
    assert(keyspace_ >= num_shards_);
    span_ = (keyspace_ + num_shards_ - 1) / num_shards_;
  }

  [[nodiscard]] ShardPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::uint64_t keyspace() const { return keyspace_; }

  /// The shard (= worker group) owning `key`.
  [[nodiscard]] GroupId group_of(std::uint64_t key) const {
    if (policy_ == ShardPolicy::kHash) {
      return static_cast<GroupId>(util::mix64(key) % num_shards_);
    }
    std::uint64_t shard = key / span_;
    if (shard >= num_shards_) shard = num_shards_ - 1;
    return static_cast<GroupId>(shard);
  }

  /// Inclusive key span [lo, hi] owned by `shard` under the range policy.
  /// (Meaningless for hash sharding; asserts.)
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> range_of(
      GroupId shard) const {
    assert(policy_ == ShardPolicy::kRange);
    assert(shard < num_shards_);
    std::uint64_t lo = shard * span_;
    std::uint64_t hi = shard + 1 == num_shards_
                           ? ~std::uint64_t{0}  // last shard absorbs the tail
                           : (shard + 1) * span_ - 1;
    return {lo, hi};
  }

  /// Shards a range command [lo, hi] (inclusive) must reach: exactly the
  /// shards whose spans it intersects under the range policy, every shard
  /// under hash (a hashed range may contain keys of any shard).  Empty when
  /// lo > hi — the caller owns picking a destination for a vacuous range.
  [[nodiscard]] GroupSet groups_for_range(std::uint64_t lo,
                                          std::uint64_t hi) const {
    if (lo > hi) return {};
    if (policy_ == ShardPolicy::kHash) return GroupSet::all(num_shards_);
    GroupId first = group_of(lo);
    GroupId last = group_of(hi);  // <= 62 since num_shards_ < 64
    std::uint64_t mask = ((std::uint64_t{1} << (last + 1)) - 1) &
                         ~((std::uint64_t{1} << first) - 1);
    return GroupSet::from_mask(mask);
  }

  /// Union of the owning shards of a key list (multi-get destinations).
  [[nodiscard]] GroupSet groups_for_keys(
      std::span<const std::uint64_t> keys) const {
    GroupSet out;
    for (std::uint64_t k : keys) out = out | GroupSet::single(group_of(k));
    return out;
  }

 private:
  ShardPolicy policy_;
  std::size_t num_shards_;
  std::uint64_t keyspace_;
  std::uint64_t span_ = 1;  // keys per shard (range policy)
};

}  // namespace psmr::multicast
