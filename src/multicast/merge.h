// Deterministic merge of multiple ring streams into one delivery sequence.
//
// A P-SMR worker thread subscribes to its own group's ring and to the
// shared g_all ring.  Replica consistency requires that *every* replica's
// thread t_i interleaves the two streams identically; arrival timing must
// not matter.  Following Multi-Ring Paxos (paper reference [9]), the merge
// consumes decided batches round-robin: batch j of ring 0, batch j of ring
// 1, batch j+1 of ring 0, ...  An idle ring would stall the rotation, which
// is why coordinators decide SKIP batches when idle; a SKIP advances the
// rotation and delivers nothing.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "multicast/group.h"
#include "paxos/learner.h"

namespace psmr::multicast {

/// One delivered message, tagged with the ring (group stream) it came from.
struct Delivery {
  /// Worker-group ring index within the subscription (not a GroupId): the
  /// shared ring, when present, is the last entry.
  std::size_t stream = 0;
  /// Zero-copy handle: shares the DECIDE frame's pool block the batch
  /// arrived in (see paxos::Batch::decode).
  util::Payload message;
};

/// Merges one or more LearnerLogs deterministically.  Single-log instances
/// degenerate to plain ordered delivery (used by SMR and sP-SMR).
class MergeDeliverer {
 public:
  explicit MergeDeliverer(std::vector<std::unique_ptr<paxos::LearnerLog>> logs)
      : logs_(std::move(logs)) {}

  /// Blocks for the next message in merged deterministic order.
  /// std::nullopt means the network shut down.
  std::optional<Delivery> next() {
    return pump([&] { return logs_[cursor_]->next(); });
  }

  /// Outcome of a non-blocking poll: kDelivered filled `out`; kDry means
  /// the next in-order message has not been decided yet (worth retrying or
  /// falling back to a blocking next()); kClosed is terminal — the stream
  /// shut down and no further poll or next() will ever deliver.
  enum class Poll { kDelivered, kDry, kClosed };

  /// Non-blocking variant of next().  Consumes the identical merged
  /// sequence as next() — the rotation cursor only advances when a decision
  /// is actually taken — so callers may freely interleave the two (the
  /// replica batch accumulators poll and fall back to next() only while the
  /// stream is merely dry).  Unlike a bare optional, the result separates
  /// "dry" from "closed": a caller that blocked on next() after a kClosed
  /// poll would be waiting on a stream that can never produce again.
  Poll try_next(Delivery& out) {
    if (auto d = pump([&] { return logs_[cursor_]->try_next(); })) {
      out = std::move(*d);
      return Poll::kDelivered;
    }
    return closed() ? Poll::kClosed : Poll::kDry;
  }

  /// Unblocks any pending next() and makes future calls return nullopt.
  void close() {
    for (auto& log : logs_) log->close();
  }

  /// True once any underlying log closed: the rotation can never advance
  /// past a closed log, so the merged stream as a whole is shut down.
  /// (close() closes every log; a kClosed poll is always terminal.)
  [[nodiscard]] bool closed() const {
    for (const auto& log : logs_) {
      if (log->closed()) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t num_streams() const { return logs_.size(); }

  /// Number of decisions consumed so far from stream `i` (test hook; also
  /// the resume point recorded in checkpoints).
  [[nodiscard]] paxos::Instance stream_position(std::size_t i) const {
    return logs_.at(i)->next_instance();
  }

  /// Checkpoint hooks.  Safe only while the owning worker thread is parked
  /// (the replica's checkpoint barrier): the merge state is then a pure
  /// function of the stream positions plus whatever a mid-batch rotation
  /// left undelivered in ready_.
  [[nodiscard]] std::size_t merge_cursor() const { return cursor_; }
  [[nodiscard]] const std::deque<Delivery>& pending() const { return ready_; }

  /// Restores the rotation cursor and undelivered tail recorded by a
  /// checkpoint, so a recovering worker resumes mid-batch exactly where the
  /// snapshot was cut.  Call before the first next()/try_next().
  void restore_merge_state(std::size_t cursor, std::deque<Delivery> pending) {
    cursor_ = cursor % logs_.size();
    ready_ = std::move(pending);
  }

 private:
  /// The shared merge pump: drain ready_, else take the rotation ring's
  /// next decision via `fetch` (blocking or not) and fan its commands out.
  /// The cursor advances only when a decision is actually consumed, which
  /// is what keeps the blocking and non-blocking variants on one sequence.
  template <typename Fetch>
  std::optional<Delivery> pump(Fetch fetch) {
    while (true) {
      if (!ready_.empty()) {
        Delivery d = std::move(ready_.front());
        ready_.pop_front();
        return d;
      }
      auto decision = fetch();
      if (!decision) return std::nullopt;
      std::size_t stream = cursor_;
      cursor_ = (cursor_ + 1) % logs_.size();
      if (decision->batch.skip) continue;
      for (auto& cmd : decision->batch.commands) {
        ready_.push_back(Delivery{stream, std::move(cmd)});
      }
    }
  }

  std::vector<std::unique_ptr<paxos::LearnerLog>> logs_;
  std::size_t cursor_ = 0;
  std::deque<Delivery> ready_;
};

}  // namespace psmr::multicast
