// Atomic multicast bus: the paper's "multicast library" (Figure 1).
//
// Composes one Paxos ring per worker group plus, when more than one worker
// group exists, a shared ring for g_all — exactly the prototype layout of
// Section VI-A: "each thread t_i belongs to two groups: one group g_i to
// which no other thread in the server belongs, and one group g_all to which
// every thread in each server belongs"; "a message can be addressed to a
// single group only", so a multi-group destination set is routed through
// g_all and filtered by subscribers.
//
// Guarantees (paper Section II): agreement — if one correct learner of a
// group delivers m, all do (Paxos decides + catch-up); order — the delivery
// relation is acyclic because each ring is totally ordered and merged
// streams interleave deterministically (merge.h).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "multicast/group.h"
#include "multicast/merge.h"
#include "paxos/ring.h"

namespace psmr::multicast {

/// Configuration for a bus instance.
struct BusConfig {
  /// Number of worker groups k (the multiprogramming level).
  std::size_t num_groups = 1;
  /// Ring tuning applied to every ring.  skip_interval is forced on for
  /// worker rings and the shared ring whenever merging is in effect
  /// (num_groups > 1), because deterministic merge needs idle rings to
  /// keep deciding SKIPs.
  paxos::RingConfig ring;
  /// Submit-side coalescing: concurrent multicasts to the same ring are
  /// combined into one SUBMIT_MANY wire message (see SubmitCoalescer).
  /// Matters most for the shared g_all ring, where clients of *all* k
  /// groups converge — their commands piggyback onto the in-flight submit
  /// instead of each opening a fresh one.
  bool coalesce_submits = true;
};

/// Flat-combining submit funnel for one ring.
///
/// The first caller into an idle coalescer becomes the flusher: it drains
/// the queue through Ring::submit_many until empty, while concurrent
/// callers just append their command and return — the active flusher
/// carries it on its next flush.  Every command is on the wire before the
/// flusher's call returns, so no timer thread is needed and nothing can be
/// stranded.  Under contention this turns n near-simultaneous multicasts
/// into a handful of multi-command submits, which the coordinator appends
/// to its open batch as one burst.
class SubmitCoalescer {
 public:
  explicit SubmitCoalescer(paxos::Ring& ring) : ring_(ring) {}

  /// Enqueues and (unless piggybacking on an active flusher) flushes.
  ///
  /// A piggybacking caller returns true optimistically: its command is
  /// sent by the active flusher an instant later, and only the flusher
  /// observes that send's result.  Submission to a ring is fire-and-forget
  /// over a droppable transport anyway — delivery is recovered end-to-end
  /// (ClientProxy retransmits on response timeout) — so `true` means
  /// "accepted for submission", exactly as it does for a send that is then
  /// dropped in transit.  Flush failures stay observable through
  /// Stats::failed_flush_commands.
  bool submit(transport::NodeId from, util::Payload message);

  struct Stats {
    /// SUBMIT/SUBMIT_MANY wire messages sent.
    std::uint64_t flushes = 0;
    /// Commands carried by those messages.
    std::uint64_t flushed_commands = 0;
    /// Commands handed to an already-active flusher instead of sending.
    std::uint64_t piggybacked = 0;
    /// Commands in flushes the transport rejected (shutdown/disconnect);
    /// their submitters may have been told true — see submit().
    std::uint64_t failed_flush_commands = 0;

    Stats& operator+=(const Stats& o) {
      flushes += o.flushes;
      flushed_commands += o.flushed_commands;
      piggybacked += o.piggybacked;
      failed_flush_commands += o.failed_flush_commands;
      return *this;
    }
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  /// Test hook: invoked by the active flusher after each wire send, while
  /// the coalescer lock is released.  Lets a test rendezvous a concurrent
  /// submit with an in-progress flush deterministically (the piggyback race
  /// is otherwise timing-dependent on single-core hosts).  Set before any
  /// concurrent submits start; pass {} to clear.
  void set_flush_pause(std::function<void()> hook) {
    std::lock_guard lock(mu_);
    flush_pause_ = std::move(hook);
  }

 private:
  paxos::Ring& ring_;
  mutable std::mutex mu_;
  std::vector<util::Payload> queue_;
  bool flushing_ = false;
  Stats stats_;
  std::function<void()> flush_pause_;
};

/// One atomic-multicast domain shared by clients and replicas.
class Bus {
 public:
  Bus(transport::Network& net, BusConfig cfg);

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::size_t num_groups() const { return cfg_.num_groups; }
  [[nodiscard]] bool has_shared_ring() const { return shared_ring_ != nullptr; }

  /// Multicasts an opaque message to the groups in γ.
  /// Routing: singleton γ → that group's ring; otherwise the shared ring.
  bool multicast(transport::NodeId from, GroupSet groups,
                 util::Payload message);

  /// Ring index γ routes to (the index space of submit_encoded): singleton
  /// γ → that group's ring, otherwise the shared ring when one exists.
  /// Exposed so the client-side submit spooler can bucket per destination
  /// ring before encoding.
  [[nodiscard]] std::size_t ring_index_for(GroupSet groups) const {
    if (groups.singleton()) return groups.min();
    return shared_ring_ ? rings_.size() : 0;
  }
  /// Number of ring indices (worker rings + shared ring when present).
  [[nodiscard]] std::size_t num_rings() const {
    return rings_.size() + (shared_ring_ ? 1 : 0);
  }

  /// Submits a pre-encoded SUBMIT_MANY frame carrying `count` commands to
  /// ring `ring_index`, bypassing the per-command coalescer round-trip (the
  /// spooler already grouped the burst).
  bool submit_encoded(std::size_t ring_index, transport::NodeId from,
                      util::Payload frame, std::size_t count);

  /// Subscribes worker group g: the returned deliverer merges g's ring with
  /// the shared ring (if any) deterministically.  Every subscriber of the
  /// same group on any replica observes the identical stream.
  std::unique_ptr<MergeDeliverer> subscribe(GroupId group);

  /// Subscription resuming from recorded stream positions (checkpoint
  /// recovery): starts[i] is the instance to deliver next from stream i, in
  /// the same stream order subscribe() produces (group ring first, then the
  /// shared ring when one exists).
  std::unique_ptr<MergeDeliverer> subscribe_at(
      GroupId group, std::span<const paxos::Instance> starts);

  /// Largest acceptor decided-log across every ring (bounded-memory metric
  /// for checkpoint truncation; thread-safe).
  [[nodiscard]] std::size_t max_acceptor_log() const;
  /// Total decided instances truncated across every ring's acceptors.
  [[nodiscard]] std::uint64_t truncated_instances() const;

  /// Total commands decided across all rings (skips excluded).
  [[nodiscard]] std::uint64_t decided_commands() const;
  /// Total SKIP batches decided across all rings (merge overhead metric).
  [[nodiscard]] std::uint64_t decided_skips() const;

  /// Batching/consensus counters for group g's ring.
  [[nodiscard]] paxos::CoordinatorStats ring_stats(GroupId g) const;
  /// Batching/consensus counters for the shared g_all ring (zeros when no
  /// shared ring exists).
  [[nodiscard]] paxos::CoordinatorStats shared_ring_stats() const;
  /// Aggregate over every ring (workers + shared).
  [[nodiscard]] paxos::CoordinatorStats total_stats() const;
  /// Aggregate submit-coalescing counters (zeros when coalescing is off).
  [[nodiscard]] SubmitCoalescer::Stats coalesce_stats() const;

  /// Test hook: the ring carrying singleton traffic for group g.
  [[nodiscard]] paxos::Ring& group_ring(GroupId g) { return *rings_.at(g); }
  /// Test hook: the shared ring (requires has_shared_ring()).
  [[nodiscard]] paxos::Ring& shared_ring() { return *shared_ring_; }
  /// Test hook: the shared g_all ring's coalescer (nullptr when coalescing
  /// is disabled or no shared ring exists).
  [[nodiscard]] SubmitCoalescer* shared_coalescer() {
    if (!shared_ring_ || coalescers_.empty()) return nullptr;
    return coalescers_.back().get();
  }

 private:
  bool submit_to(std::size_t ring_index, transport::NodeId from,
                 util::Payload message);
  [[nodiscard]] paxos::Ring& ring_at(std::size_t ring_index) {
    return ring_index < rings_.size() ? *rings_[ring_index] : *shared_ring_;
  }

  transport::Network& net_;
  BusConfig cfg_;
  std::vector<std::unique_ptr<paxos::Ring>> rings_;
  std::unique_ptr<paxos::Ring> shared_ring_;
  /// One coalescer per ring, index-aligned with rings_; the shared ring's
  /// coalescer (when present) is the last entry.  Empty when coalescing is
  /// disabled.
  std::vector<std::unique_ptr<SubmitCoalescer>> coalescers_;
};

}  // namespace psmr::multicast
