// Atomic multicast bus: the paper's "multicast library" (Figure 1).
//
// Composes one Paxos ring per worker group plus, when more than one worker
// group exists, a shared ring for g_all — exactly the prototype layout of
// Section VI-A: "each thread t_i belongs to two groups: one group g_i to
// which no other thread in the server belongs, and one group g_all to which
// every thread in each server belongs"; "a message can be addressed to a
// single group only", so a multi-group destination set is routed through
// g_all and filtered by subscribers.
//
// Guarantees (paper Section II): agreement — if one correct learner of a
// group delivers m, all do (Paxos decides + catch-up); order — the delivery
// relation is acyclic because each ring is totally ordered and merged
// streams interleave deterministically (merge.h).
#pragma once

#include <memory>
#include <vector>

#include "multicast/group.h"
#include "multicast/merge.h"
#include "paxos/ring.h"

namespace psmr::multicast {

/// Configuration for a bus instance.
struct BusConfig {
  /// Number of worker groups k (the multiprogramming level).
  std::size_t num_groups = 1;
  /// Ring tuning applied to every ring.  skip_interval is forced on for
  /// worker rings and the shared ring whenever merging is in effect
  /// (num_groups > 1), because deterministic merge needs idle rings to
  /// keep deciding SKIPs.
  paxos::RingConfig ring;
};

/// One atomic-multicast domain shared by clients and replicas.
class Bus {
 public:
  Bus(transport::Network& net, BusConfig cfg);

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::size_t num_groups() const { return cfg_.num_groups; }
  [[nodiscard]] bool has_shared_ring() const { return shared_ring_ != nullptr; }

  /// Multicasts an opaque message to the groups in γ.
  /// Routing: singleton γ → that group's ring; otherwise the shared ring.
  bool multicast(transport::NodeId from, GroupSet groups,
                 util::Buffer message);

  /// Subscribes worker group g: the returned deliverer merges g's ring with
  /// the shared ring (if any) deterministically.  Every subscriber of the
  /// same group on any replica observes the identical stream.
  std::unique_ptr<MergeDeliverer> subscribe(GroupId group);

  /// Total commands decided across all rings (skips excluded).
  [[nodiscard]] std::uint64_t decided_commands() const;
  /// Total SKIP batches decided across all rings (merge overhead metric).
  [[nodiscard]] std::uint64_t decided_skips() const;

  /// Test hook: the ring carrying singleton traffic for group g.
  [[nodiscard]] paxos::Ring& group_ring(GroupId g) { return *rings_.at(g); }
  /// Test hook: the shared ring (requires has_shared_ring()).
  [[nodiscard]] paxos::Ring& shared_ring() { return *shared_ring_; }

 private:
  transport::Network& net_;
  BusConfig cfg_;
  std::vector<std::unique_ptr<paxos::Ring>> rings_;
  std::unique_ptr<paxos::Ring> shared_ring_;
};

}  // namespace psmr::multicast
