#include "multicast/amcast.h"

#include <chrono>

namespace psmr::multicast {

Bus::Bus(transport::Network& net, BusConfig cfg)
    : net_(net), cfg_(std::move(cfg)) {
  const bool merging = cfg_.num_groups > 1;
  paxos::RingConfig ring_cfg = cfg_.ring;
  if (merging && ring_cfg.skip_interval.count() == 0) {
    // Merge needs idle rings to keep deciding SKIPs or delivery stalls.
    ring_cfg.skip_interval = std::chrono::microseconds(500);
  }
  if (!merging) {
    // Single stream: skips are pure overhead.
    ring_cfg.skip_interval = std::chrono::microseconds(0);
  }
  cfg_.ring = ring_cfg;
  for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
    rings_.push_back(std::make_unique<paxos::Ring>(
        net_, static_cast<paxos::RingId>(g), ring_cfg));
  }
  if (merging) {
    shared_ring_ = std::make_unique<paxos::Ring>(
        net_, static_cast<paxos::RingId>(cfg_.num_groups), ring_cfg);
  }
}

void Bus::start() {
  for (auto& r : rings_) r->start();
  if (shared_ring_) shared_ring_->start();
}

void Bus::stop() {
  for (auto& r : rings_) r->stop();
  if (shared_ring_) shared_ring_->stop();
}

bool Bus::multicast(transport::NodeId from, GroupSet groups,
                    util::Buffer message) {
  if (groups.empty()) return false;
  if (groups.singleton()) {
    return rings_.at(groups.min())->submit(from, std::move(message));
  }
  if (shared_ring_) {
    return shared_ring_->submit(from, std::move(message));
  }
  // k == 1 deployments: "all groups" is just group 0.
  return rings_.at(0)->submit(from, std::move(message));
}

std::unique_ptr<MergeDeliverer> Bus::subscribe(GroupId group) {
  std::vector<std::unique_ptr<paxos::LearnerLog>> logs;
  logs.push_back(rings_.at(group)->subscribe());
  if (shared_ring_) logs.push_back(shared_ring_->subscribe());
  return std::make_unique<MergeDeliverer>(std::move(logs));
}

std::uint64_t Bus::decided_commands() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->stats().decided_commands;
  if (shared_ring_) total += shared_ring_->stats().decided_commands;
  return total;
}

std::uint64_t Bus::decided_skips() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->stats().decided_skips;
  if (shared_ring_) total += shared_ring_->stats().decided_skips;
  return total;
}

}  // namespace psmr::multicast
