#include "multicast/amcast.h"

#include <algorithm>
#include <chrono>

namespace psmr::multicast {

bool SubmitCoalescer::submit(transport::NodeId from, util::Payload message) {
  std::unique_lock lock(mu_);
  queue_.push_back(std::move(message));
  if (flushing_) {
    // An active flusher will pick this command up on its next drain pass;
    // it rides along in that flusher's SUBMIT_MANY.
    ++stats_.piggybacked;
    return true;
  }
  flushing_ = true;
  bool ok = true;
  // Copied under the lock: the hook runs with the lock released so a
  // concurrent submit can piggyback while the flusher is paused.
  const auto pause = flush_pause_;
  while (!queue_.empty()) {
    std::vector<util::Payload> burst;
    burst.swap(queue_);
    const std::size_t n = burst.size();
    stats_.flushes += 1;
    stats_.flushed_commands += n;
    lock.unlock();
    bool sent = ring_.submit_many(from, std::move(burst));
    if (pause) pause();
    lock.lock();
    if (!sent) {
      stats_.failed_flush_commands += n;
      ok = false;
    }
  }
  flushing_ = false;
  return ok;
}

Bus::Bus(transport::Network& net, BusConfig cfg)
    : net_(net), cfg_(std::move(cfg)) {
  const bool merging = cfg_.num_groups > 1;
  paxos::RingConfig ring_cfg = cfg_.ring;
  if (merging && ring_cfg.skip_interval.count() == 0) {
    // Merge needs idle rings to keep deciding SKIPs or delivery stalls.
    ring_cfg.skip_interval = std::chrono::microseconds(500);
  }
  if (!merging) {
    // Single stream: skips are pure overhead.
    ring_cfg.skip_interval = std::chrono::microseconds(0);
  }
  cfg_.ring = ring_cfg;
  for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
    rings_.push_back(std::make_unique<paxos::Ring>(
        net_, static_cast<paxos::RingId>(g), ring_cfg));
  }
  if (merging) {
    shared_ring_ = std::make_unique<paxos::Ring>(
        net_, static_cast<paxos::RingId>(cfg_.num_groups), ring_cfg);
  }
  if (cfg_.coalesce_submits) {
    for (auto& r : rings_) {
      coalescers_.push_back(std::make_unique<SubmitCoalescer>(*r));
    }
    if (shared_ring_) {
      coalescers_.push_back(std::make_unique<SubmitCoalescer>(*shared_ring_));
    }
  }
}

void Bus::start() {
  for (auto& r : rings_) r->start();
  if (shared_ring_) shared_ring_->start();
}

void Bus::stop() {
  for (auto& r : rings_) r->stop();
  if (shared_ring_) shared_ring_->stop();
}

bool Bus::submit_to(std::size_t ring_index, transport::NodeId from,
                    util::Payload message) {
  if (ring_index < coalescers_.size()) {
    return coalescers_[ring_index]->submit(from, std::move(message));
  }
  return ring_at(ring_index).submit(from, std::move(message));
}

bool Bus::submit_encoded(std::size_t ring_index, transport::NodeId from,
                         util::Payload frame, std::size_t count) {
  return ring_at(ring_index).submit_encoded(from, std::move(frame), count);
}

bool Bus::multicast(transport::NodeId from, GroupSet groups,
                    util::Payload message) {
  if (groups.empty()) return false;
  if (groups.singleton()) {
    return submit_to(groups.min(), from, std::move(message));
  }
  if (shared_ring_) {
    return submit_to(rings_.size(), from, std::move(message));
  }
  // k == 1 deployments: "all groups" is just group 0.
  return submit_to(0, from, std::move(message));
}

std::unique_ptr<MergeDeliverer> Bus::subscribe(GroupId group) {
  std::vector<std::unique_ptr<paxos::LearnerLog>> logs;
  logs.push_back(rings_.at(group)->subscribe());
  if (shared_ring_) logs.push_back(shared_ring_->subscribe());
  return std::make_unique<MergeDeliverer>(std::move(logs));
}

std::unique_ptr<MergeDeliverer> Bus::subscribe_at(
    GroupId group, std::span<const paxos::Instance> starts) {
  const std::size_t expected = shared_ring_ ? 2 : 1;
  if (starts.size() != expected) return nullptr;
  std::vector<std::unique_ptr<paxos::LearnerLog>> logs;
  logs.push_back(rings_.at(group)->subscribe(starts[0]));
  if (shared_ring_) logs.push_back(shared_ring_->subscribe(starts[1]));
  return std::make_unique<MergeDeliverer>(std::move(logs));
}

std::size_t Bus::max_acceptor_log() const {
  std::size_t out = 0;
  for (const auto& r : rings_) out = std::max(out, r->max_acceptor_log());
  if (shared_ring_) out = std::max(out, shared_ring_->max_acceptor_log());
  return out;
}

std::uint64_t Bus::truncated_instances() const {
  std::uint64_t out = 0;
  for (const auto& r : rings_) out += r->truncated_instances();
  if (shared_ring_) out += shared_ring_->truncated_instances();
  return out;
}

std::uint64_t Bus::decided_commands() const {
  return total_stats().decided_commands;
}

std::uint64_t Bus::decided_skips() const {
  return total_stats().decided_skips;
}

paxos::CoordinatorStats Bus::ring_stats(GroupId g) const {
  return rings_.at(g)->stats();
}

paxos::CoordinatorStats Bus::shared_ring_stats() const {
  return shared_ring_ ? shared_ring_->stats() : paxos::CoordinatorStats{};
}

paxos::CoordinatorStats Bus::total_stats() const {
  paxos::CoordinatorStats total;
  for (const auto& r : rings_) total += r->stats();
  if (shared_ring_) total += shared_ring_->stats();
  return total;
}

SubmitCoalescer::Stats Bus::coalesce_stats() const {
  SubmitCoalescer::Stats total;
  for (const auto& c : coalescers_) total += c->stats();
  return total;
}

}  // namespace psmr::multicast
