#include "kvstore/kv_service.h"

namespace psmr::kvstore {

util::Buffer encode_key(std::uint64_t k) {
  util::Writer w;
  w.u64(k);
  return w.take();
}

util::Buffer encode_key_value(std::uint64_t k, std::uint64_t v) {
  util::Writer w;
  w.u64(k);
  w.u64(v);
  return w.take();
}

std::uint64_t decode_key(const util::Buffer& params) {
  util::Reader r(params);
  return r.u64();
}

util::Buffer encode_result(KvResult res) {
  util::Writer w;
  w.u8(res.status);
  w.u64(res.value);
  return w.take();
}

KvResult decode_result(const util::Buffer& payload) {
  util::Reader r(payload);
  KvResult res;
  res.status = static_cast<KvStatus>(r.u8());
  res.value = r.u64();
  return res;
}

namespace {

// Shared command interpreter over any tree with the same micro-API.
template <typename Tree>
util::Buffer run_command(Tree& tree, const smr::Command& cmd) {
  util::Reader r(cmd.params);
  KvResult res;
  switch (cmd.cmd) {
    case kKvInsert: {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      res.status = tree.insert(k, v) ? kKvOk : kKvExists;
      break;
    }
    case kKvDelete: {
      std::uint64_t k = r.u64();
      res.status = tree.erase(k) ? kKvOk : kKvNotFound;
      break;
    }
    case kKvRead: {
      std::uint64_t k = r.u64();
      if (auto v = tree.find(k)) {
        res.value = *v;
      } else {
        res.status = kKvNotFound;
      }
      break;
    }
    case kKvUpdate: {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      res.status = tree.update(k, v) ? kKvOk : kKvNotFound;
      break;
    }
    default:
      res.status = kKvNotFound;
  }
  return encode_result(res);
}

template <typename Tree>
void preload(Tree& tree, std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k, k);
}

}  // namespace

KvService::KvService(std::uint64_t initial_keys) {
  preload(tree_, initial_keys);
}

util::Buffer KvService::execute(const smr::Command& cmd) {
  return run_command(tree_, cmd);
}

ConcurrentKvService::ConcurrentKvService(std::uint64_t initial_keys) {
  preload(tree_, initial_keys);
}

util::Buffer ConcurrentKvService::execute(const smr::Command& cmd) {
  return run_command(tree_, cmd);
}

smr::CDep kv_cdep() {
  smr::CDep dep;
  // Inserts and deletes depend on all commands (tree restructuring).
  for (smr::CommandId other : {kKvInsert, kKvDelete, kKvRead, kKvUpdate}) {
    dep.always(kKvInsert, other);
    dep.always(kKvDelete, other);
  }
  // An update on k depends on updates and reads on the same k.
  dep.same_key(kKvUpdate, kKvUpdate);
  dep.same_key(kKvUpdate, kKvRead);
  return dep;
}

smr::KeyFn kv_key_fn() {
  return [](const smr::Command& cmd) -> std::optional<std::uint64_t> {
    switch (cmd.cmd) {
      case kKvInsert:
      case kKvDelete:
      case kKvRead:
      case kKvUpdate:
        return decode_key(cmd.params);
      default:
        return std::nullopt;
    }
  };
}

std::shared_ptr<const smr::CGFunction> kv_keyed_cg(std::size_t k) {
  return smr::from_cdep(kv_cdep(), k, kv_key_fn(), kKvUpdate);
}

std::shared_ptr<const smr::CGFunction> kv_coarse_cg(std::size_t k) {
  return std::make_shared<smr::CoarseCg>(
      k, std::unordered_set<smr::CommandId>{kKvRead});
}

}  // namespace psmr::kvstore
