#include "kvstore/kv_service.h"

#include "util/hash.h"

namespace psmr::kvstore {

util::Buffer encode_key(std::uint64_t k) {
  util::Writer w;
  w.u64(k);
  return w.take();
}

util::Buffer encode_key_value(std::uint64_t k, std::uint64_t v) {
  util::Writer w;
  w.u64(k);
  w.u64(v);
  return w.take();
}

util::Buffer encode_key_range(std::uint64_t lo, std::uint64_t hi) {
  util::Writer w;
  w.u64(lo);
  w.u64(hi);
  return w.take();
}

util::Buffer encode_keys(const std::vector<std::uint64_t>& keys) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) w.u64(k);
  return w.take();
}

std::uint64_t decode_key(const util::Buffer& params) {
  util::Reader r(params);
  return r.u64();
}

util::Buffer encode_result(KvResult res) {
  util::Writer w;
  w.u8(res.status);
  w.u64(res.value);
  return w.take();
}

KvResult decode_result(const util::Buffer& payload) {
  util::Reader r(payload);
  KvResult res;
  res.status = static_cast<KvStatus>(r.u8());
  res.value = r.u64();
  return res;
}

util::Buffer encode_multi_result(const KvMultiResult& res) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(res.entries.size()));
  for (const KvResult& e : res.entries) {
    w.u8(e.status);
    w.u64(e.value);
  }
  return w.take();
}

KvMultiResult decode_multi_result(const util::Buffer& payload) {
  util::Reader r(payload);
  KvMultiResult res;
  std::uint32_t n = r.u32();
  res.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    KvResult e;
    e.status = static_cast<KvStatus>(r.u8());
    e.value = r.u64();
    res.entries.push_back(e);
  }
  return res;
}

namespace {

// Shared command interpreter over any tree with the same micro-API.
template <typename Tree>
util::Buffer run_command(Tree& tree, const smr::Command& cmd) {
  util::Reader r(cmd.params);
  KvResult res;
  switch (cmd.cmd) {
    case kKvInsert: {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      res.status = tree.insert(k, v) ? kKvOk : kKvExists;
      break;
    }
    case kKvDelete: {
      std::uint64_t k = r.u64();
      res.status = tree.erase(k) ? kKvOk : kKvNotFound;
      break;
    }
    case kKvRead: {
      std::uint64_t k = r.u64();
      if (auto v = tree.find(k)) {
        res.value = *v;
      } else {
        res.status = kKvNotFound;
      }
      break;
    }
    case kKvUpdate: {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      res.status = tree.update(k, v) ? kKvOk : kKvNotFound;
      break;
    }
    case kKvScan: {
      // Leaf-chain fast path: fold the covered pairs into an
      // order-sensitive digest (same mix as the tree digest) xor the count,
      // so replicas can cross-check range contents in one round trip.
      std::uint64_t lo = r.u64();
      std::uint64_t hi = r.u64();
      std::uint64_t h = util::kFoldSeed;
      std::size_t n =
          tree.range_scan(lo, hi, [&h](std::uint64_t k, std::uint64_t v) {
            h = util::fold_kv(h, k, v);
          });
      res.value = h ^ n;
      break;
    }
    case kKvMultiRead: {
      std::uint32_t n = r.u32();
      std::vector<std::uint64_t> keys(n);
      for (auto& k : keys) k = r.u64();
      KvMultiResult multi;
      multi.entries.resize(n);
      if constexpr (requires(std::optional<std::uint64_t>* out) {
                      tree.find_batch(keys.data(), keys.size(), out);
                    }) {
        // Pipelined multi-get: the lookups' miss chains overlap.
        std::vector<std::optional<std::uint64_t>> vals(n);
        tree.find_batch(keys.data(), n, vals.data());
        for (std::uint32_t i = 0; i < n; ++i) {
          if (vals[i]) {
            multi.entries[i].value = *vals[i];
          } else {
            multi.entries[i].status = kKvNotFound;
          }
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (auto v = tree.find(keys[i])) {
            multi.entries[i].value = *v;
          } else {
            multi.entries[i].status = kKvNotFound;
          }
        }
      }
      return encode_multi_result(multi);
    }
    default:
      res.status = kKvNotFound;
  }
  return encode_result(res);
}

template <typename Tree>
void preload(Tree& tree, std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k, k);
}

}  // namespace

KvService::KvService(std::uint64_t initial_keys) {
  preload(tree_, initial_keys);
}

util::Buffer KvService::execute(const smr::Command& cmd) {
  return run_command(tree_, cmd);
}

ConcurrentKvService::ConcurrentKvService(std::uint64_t initial_keys) {
  preload(tree_, initial_keys);
}

util::Buffer ConcurrentKvService::execute(const smr::Command& cmd) {
  return run_command(tree_, cmd);
}

smr::CDep kv_cdep() {
  smr::CDep dep;
  // Inserts and deletes depend on all commands (tree restructuring).
  for (smr::CommandId other :
       {kKvInsert, kKvDelete, kKvRead, kKvUpdate, kKvScan, kKvMultiRead}) {
    dep.always(kKvInsert, other);
    dep.always(kKvDelete, other);
  }
  // An update on k depends on updates and reads on the same k.
  dep.same_key(kKvUpdate, kKvUpdate);
  dep.same_key(kKvUpdate, kKvRead);
  // Scan/multi-read touch arbitrarily many keys, so they depend on every
  // update (a same-key entry cannot express a key set); they are reads,
  // so they stay independent of reads and of each other.
  dep.always(kKvScan, kKvUpdate);
  dep.always(kKvMultiRead, kKvUpdate);
  return dep;
}

smr::KeyFn kv_key_fn() {
  return [](const smr::Command& cmd) -> std::optional<std::uint64_t> {
    switch (cmd.cmd) {
      case kKvInsert:
      case kKvDelete:
      case kKvRead:
      case kKvUpdate:
        return decode_key(cmd.params);
      default:
        return std::nullopt;  // scan/multi-read carry no single key
    }
  };
}

std::shared_ptr<const smr::CGFunction> kv_keyed_cg(std::size_t k) {
  return smr::from_cdep(kv_cdep(), k, kv_key_fn(), kKvMaxCommand);
}

std::shared_ptr<const smr::CGFunction> kv_coarse_cg(std::size_t k) {
  return std::make_shared<smr::CoarseCg>(
      k, std::unordered_set<smr::CommandId>{kKvRead});
}

}  // namespace psmr::kvstore
