#include "kvstore/kv_service.h"

#include "util/hash.h"

namespace psmr::kvstore {

util::Buffer encode_key(std::uint64_t k) {
  util::Writer w;
  w.u64(k);
  return w.take();
}

util::Buffer encode_key_value(std::uint64_t k, std::uint64_t v) {
  util::Writer w;
  w.u64(k);
  w.u64(v);
  return w.take();
}

util::Buffer encode_key_range(std::uint64_t lo, std::uint64_t hi) {
  util::Writer w;
  w.u64(lo);
  w.u64(hi);
  return w.take();
}

util::Buffer encode_keys(const std::vector<std::uint64_t>& keys) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) w.u64(k);
  return w.take();
}

std::uint64_t decode_key(std::span<const std::uint8_t> params) {
  util::Reader r(params);
  return r.u64();
}

util::Buffer encode_result(KvResult res) {
  util::Writer w;
  w.u8(res.status);
  w.u64(res.value);
  return w.take();
}

KvResult decode_result(const util::Buffer& payload) {
  util::Reader r(payload);
  KvResult res;
  res.status = static_cast<KvStatus>(r.u8());
  res.value = r.u64();
  return res;
}

util::Buffer encode_multi_result(const KvMultiResult& res) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(res.entries.size()));
  for (const KvResult& e : res.entries) {
    w.u8(e.status);
    w.u64(e.value);
  }
  return w.take();
}

KvMultiResult decode_multi_result(const util::Buffer& payload) {
  util::Reader r(payload);
  KvMultiResult res;
  std::uint32_t n = r.u32();
  res.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    KvResult e;
    e.status = static_cast<KvStatus>(r.u8());
    e.value = r.u64();
    res.entries.push_back(e);
  }
  return res;
}

namespace {

// Shared command interpreter over any tree with the same micro-API.
template <typename Tree>
util::Buffer run_command(Tree& tree, const smr::Command& cmd) {
  util::Reader r(cmd.params);
  KvResult res;
  switch (cmd.cmd) {
    case kKvInsert: {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      res.status = tree.insert(k, v) ? kKvOk : kKvExists;
      break;
    }
    case kKvDelete: {
      std::uint64_t k = r.u64();
      res.status = tree.erase(k) ? kKvOk : kKvNotFound;
      break;
    }
    case kKvRead: {
      std::uint64_t k = r.u64();
      if (auto v = tree.find(k)) {
        res.value = *v;
      } else {
        res.status = kKvNotFound;
      }
      break;
    }
    case kKvUpdate: {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      res.status = tree.update(k, v) ? kKvOk : kKvNotFound;
      break;
    }
    case kKvScan: {
      // Leaf-chain fast path: fold the covered pairs into an
      // order-sensitive digest (same mix as the tree digest) xor the count,
      // so replicas can cross-check range contents in one round trip.
      std::uint64_t lo = r.u64();
      std::uint64_t hi = r.u64();
      std::uint64_t h = util::kFoldSeed;
      std::size_t n =
          tree.range_scan(lo, hi, [&h](std::uint64_t k, std::uint64_t v) {
            h = util::fold_kv(h, k, v);
          });
      res.value = h ^ n;
      break;
    }
    case kKvMultiRead: {
      std::uint32_t n = r.u32();
      std::vector<std::uint64_t> keys(n);
      for (auto& k : keys) k = r.u64();
      KvMultiResult multi;
      multi.entries.resize(n);
      if constexpr (requires(std::optional<std::uint64_t>* out) {
                      tree.find_batch(keys.data(), keys.size(), out);
                    }) {
        // Pipelined multi-get: the lookups' miss chains overlap.
        std::vector<std::optional<std::uint64_t>> vals(n);
        tree.find_batch(keys.data(), n, vals.data());
        for (std::uint32_t i = 0; i < n; ++i) {
          if (vals[i]) {
            multi.entries[i].value = *vals[i];
          } else {
            multi.entries[i].status = kKvNotFound;
          }
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (auto v = tree.find(keys[i])) {
            multi.entries[i].value = *v;
          } else {
            multi.entries[i].status = kKvNotFound;
          }
        }
      }
      return encode_multi_result(multi);
    }
    default:
      res.status = kKvNotFound;
  }
  return encode_result(res);
}

template <typename Tree>
void preload(Tree& tree, std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k, k);
}

/// Shared independence matrix for both service variants: flattened
/// kv_cdep() + kv_key_fn(), built once.
const smr::CDepMatrix& kv_cdep_matrix() {
  static const smr::CDepMatrix matrix(kv_cdep(), kKvMaxCommand, kv_key_fn());
  return matrix;
}

/// Shared KV snapshot layout: u64 count, count * { u64 key, u64 value } in
/// ascending key order (for_each's leaf-chain walk), so equivalent trees
/// always serialize to identical bytes.
template <typename Tree>
bool snapshot_tree(const Tree& tree, util::Writer& w) {
  w.u64(tree.size());
  tree.for_each([&](std::uint64_t k, std::uint64_t v) {
    w.u64(k);
    w.u64(v);
  });
  return true;
}

template <typename Tree>
bool restore_tree(Tree& tree, util::Reader& r) {
  try {
    std::uint64_t count = r.u64();
    if (count * 16 != r.remaining()) return false;
    tree.clear();
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t k = r.u64();
      std::uint64_t v = r.u64();
      if (i != 0 && k <= prev) return false;  // must be strictly ascending
      prev = k;
      tree.insert(k, v);
    }
    return true;
  } catch (const util::DecodeError&) {
    return false;
  }
}

}  // namespace

KvService::KvService() = default;

KvService::KvService(std::uint64_t initial_keys) {
  preload(tree_, initial_keys);
}

bool KvService::may_share_batch(const smr::Command& x,
                                const smr::Command& y) const {
  return kv_cdep_matrix().independent(x, y);
}

bool KvService::snapshot_to(util::Writer& w) const {
  return snapshot_tree(tree_, w);
}

bool KvService::restore_from(util::Reader& r) {
  return restore_tree(tree_, r);
}

void KvService::do_execute_batch(smr::CommandBatch& batch) {
  const std::span<const smr::Command> cmds = batch.commands;
  if (cmds.size() == 1) {
    batch.sink->accept(0, run_command(tree_, cmds[0]));
    return;
  }
  // Split the batch into its read lanes: every point read's key and every
  // multi-read's key list flow into one find_batch pass (their miss chains
  // overlap across commands), while writes and scans execute in batch
  // order.  Resolving the reads after the writes is order-equivalent —
  // batch members are pairwise independent.
  struct Lane {
    std::size_t index;  // batch command index
    std::size_t first;  // offset into keys
    std::uint32_t count;
  };
  std::vector<std::uint64_t> keys;
  std::vector<Lane> lanes;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    const smr::Command& c = cmds[i];
    if (c.cmd == kKvRead) {
      keys.push_back(decode_key(c.params));
      lanes.push_back({i, keys.size() - 1, 1});
    } else if (c.cmd == kKvMultiRead) {
      util::Reader r(c.params);
      std::uint32_t n = r.u32();
      std::size_t first = keys.size();
      for (std::uint32_t j = 0; j < n; ++j) keys.push_back(r.u64());
      lanes.push_back({i, first, n});
    } else {
      batch.sink->accept(i, run_command(tree_, c));
    }
  }
  if (lanes.empty()) return;
  std::vector<std::optional<std::uint64_t>> vals(keys.size());
  tree_.find_batch(keys.data(), keys.size(), vals.data());
  for (const Lane& lane : lanes) {
    if (cmds[lane.index].cmd == kKvRead) {
      KvResult res;
      if (vals[lane.first]) {
        res.value = *vals[lane.first];
      } else {
        res.status = kKvNotFound;
      }
      batch.sink->accept(lane.index, encode_result(res));
    } else {
      KvMultiResult multi;
      multi.entries.resize(lane.count);
      for (std::uint32_t j = 0; j < lane.count; ++j) {
        if (vals[lane.first + j]) {
          multi.entries[j].value = *vals[lane.first + j];
        } else {
          multi.entries[j].status = kKvNotFound;
        }
      }
      batch.sink->accept(lane.index, encode_multi_result(multi));
    }
  }
  note_batched_reads(lanes.size());
}

ConcurrentKvService::ConcurrentKvService(std::uint64_t initial_keys) {
  preload(tree_, initial_keys);
}

bool ConcurrentKvService::may_share_batch(const smr::Command& x,
                                          const smr::Command& y) const {
  return kv_cdep_matrix().independent(x, y);
}

bool ConcurrentKvService::snapshot_to(util::Writer& w) const {
  return snapshot_tree(tree_, w);
}

bool ConcurrentKvService::restore_from(util::Reader& r) {
  return restore_tree(tree_, r);
}

void ConcurrentKvService::do_execute_batch(smr::CommandBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.sink->accept(i, run_command(tree_, batch.commands[i]));
  }
}

smr::CDep kv_cdep() {
  smr::CDep dep;
  // Inserts and deletes depend on all commands (tree restructuring).
  for (smr::CommandId other :
       {kKvInsert, kKvDelete, kKvRead, kKvUpdate, kKvScan, kKvMultiRead}) {
    dep.always(kKvInsert, other);
    dep.always(kKvDelete, other);
  }
  // An update on k depends on updates and reads on the same k.
  dep.same_key(kKvUpdate, kKvUpdate);
  dep.same_key(kKvUpdate, kKvRead);
  // Scan/multi-read touch arbitrarily many keys, so they depend on every
  // update (a same-key entry cannot express a key set); they are reads,
  // so they stay independent of reads and of each other.
  dep.always(kKvScan, kKvUpdate);
  dep.always(kKvMultiRead, kKvUpdate);
  return dep;
}

smr::KeyFn kv_key_fn() {
  return [](const smr::Command& cmd) -> std::optional<std::uint64_t> {
    switch (cmd.cmd) {
      case kKvInsert:
      case kKvDelete:
      case kKvRead:
      case kKvUpdate:
        return decode_key(cmd.params);
      default:
        return std::nullopt;  // scan/multi-read carry no single key
    }
  };
}

std::shared_ptr<const smr::CGFunction> kv_keyed_cg(std::size_t k) {
  return smr::from_cdep(kv_cdep(), k, kv_key_fn(), kKvMaxCommand);
}

std::shared_ptr<const smr::CGFunction> kv_coarse_cg(std::size_t k) {
  return std::make_shared<smr::CoarseCg>(
      k, std::unordered_set<smr::CommandId>{kKvRead});
}

std::shared_ptr<const smr::CGFunction> kv_sharded_cg(
    const multicast::ShardMap& map) {
  // Soundness vs kv_cdep(): insert/delete stay global, covering their
  // ALWAYS edges; read/update SAME-KEY pairs share the key's shard; and the
  // multi-key reads' ALWAYS(·, update) edges are covered per instance — any
  // update whose key a scan or multi-read actually touches maps (through
  // the same ShardMap) to a shard the read covers.
  smr::RangeFn scan_range = [](const smr::Command& cmd)
      -> std::optional<std::pair<std::uint64_t, std::uint64_t>> {
    if (cmd.cmd != kKvScan) return std::nullopt;
    util::Reader r(cmd.params);
    std::uint64_t lo = r.u64();
    return std::make_pair(lo, r.u64());
  };
  smr::KeyListFn multiread_keys = [](const smr::Command& cmd)
      -> std::optional<std::vector<std::uint64_t>> {
    if (cmd.cmd != kKvMultiRead) return std::nullopt;
    util::Reader r(cmd.params);
    std::vector<std::uint64_t> keys(r.u32());
    for (auto& k : keys) k = r.u64();
    return keys;
  };
  return std::make_shared<smr::ShardedCg>(
      map, kv_key_fn(),
      std::unordered_set<smr::CommandId>{kKvInsert, kKvDelete},
      std::move(scan_range), std::move(multiread_keys));
}

}  // namespace psmr::kvstore
