// Cache-conscious B+-tree core shared by BPlusTree (single-writer,
// src/kvstore/bptree.h) and ConcurrentBPlusTree (lock-coupled,
// src/kvstore/concurrent_bptree.h).
//
// The replicas are execution-bound once ordering is parallelized (paper
// Section VII-F attributes most of the per-command cost to the B+-tree
// traversal), so the node layout is organized around the memory system
// rather than around comparison counts.  Measured on the reference host,
// a dependent cache miss costs ~240ns while 8+ independent misses resolve
// in about one latency (good MLP), and nearby lines after the first are
// nearly free — so the design minimizes *dependent* fetches per level:
//
//   * Wide nodes: 128 keys per node (twice the seed's fanout) make trees
//     one level shorter at the paper's 10M-key working set.
//   * In-header micro-router: each node's header line carries 7 stride-16
//     router keys (the maxima of its first 7 key segments).  One header
//     fetch yields kind, count and the target 16-key segment; the search
//     then touches exactly two more key lines.  A node resolves in two
//     overlapped miss waves — header+router, then segment — instead of
//     log2(n) serialized binary-search probes, and touches 3-5 lines
//     instead of 9-16 (which also keeps the upper levels cache-resident
//     instead of being evicted by search traffic).
//   * Inf-padded key arrays: slots beyond `count` hold kInfKey, so segment
//     scans are branchless 16-wide compare-accumulate loops (SIMD-friendly,
//     no data-dependent branches, no count dependency).
//   * Candidate prefetch between the waves: once the segment is known, the
//     matching child-pointer (inner) or value (leaf) lines are prefetched
//     while the segment scan resolves.
//   * Append-aware splits: nodes that overflow at their right edge keep
//     ~88% of their entries (see append_split_keep), so the paper's
//     sequential 10M-key preload produces a compact tree whose leaf-parent
//     level stays cache-resident.
//
// Both trees keep one slot of headroom (kMaxEntries + 1) so an insert can
// overflow in place and split afterwards; searches never run on an
// overflowed node.
#pragma once

#include <cstdint>

namespace psmr::kvstore::btree_core {

using Key = std::uint64_t;

inline constexpr int kCacheLine = 64;

/// Max entries per leaf and max separator keys per inner node.
inline constexpr int kMaxEntries = 128;

/// Underflow threshold.  kMax/8 instead of the textbook kMax/2: a lower
/// floor is still a valid B+-tree (merges just trigger later), and it lets
/// an append-driven split leave the overflowed node nearly full instead of
/// half empty.
inline constexpr int kMinEntries = kMaxEntries / 8;

/// Split retention for a node that overflowed by a pure append (the new
/// entry is its rightmost): keep everything except the minimum legal right
/// sibling, so sequentially filled nodes seal ~88% full.  Balanced (middle)
/// splits keep count/2 as usual.
inline constexpr int append_split_keep(int count) {
  return count - kMinEntries;
}

/// Padding value for key-array slots beyond `count`.  A live key may equal
/// kInfKey too — every search clamps its result with `count`, so padding
/// can never produce a false hit.
inline constexpr Key kInfKey = ~static_cast<Key>(0);

/// Keys per search segment: two cache lines.
inline constexpr int kSegment = 16;

/// Router keys per node: the maxima of the first kNumRouters segments (the
/// last segment needs no router — it is implied).  7 keys = 56 bytes, which
/// together with an 8-byte kind/count header fills exactly one cache line.
inline constexpr int kNumRouters = kMaxEntries / kSegment - 1;

/// Issues read prefetches for every cache line of [p, p + bytes).
inline void prefetch_range(const void* p, std::size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += kCacheLine) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/3);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

/// Re-fills the padding slots [from, kMaxEntries] with kInfKey (the +1
/// covers the headroom slot).  Called after any mutation that shrinks a
/// node's live prefix.
inline void pad_tail(Key* keys, int from) {
  for (int i = from; i <= kMaxEntries; ++i) keys[i] = kInfKey;
}

/// Rebuilds a node's router from its (inf-padded) key array.  O(1): seven
/// loads and stores.  Called after any mutation of a node's key array.
inline void sync_router(Key* router, const Key* keys) {
  for (int i = 0; i < kNumRouters; ++i) {
    router[i] = keys[(i + 1) * kSegment - 1];
  }
}

/// Checks the layout invariants the two functions above maintain: slots
/// beyond the live prefix are inf-padded and the header router mirrors the
/// key array.  Used by both trees' validate().
template <typename NodeT>
inline bool layout_ok(const NodeT* n) {
  for (int i = n->count; i <= kMaxEntries; ++i) {
    if (n->keys[i] != kInfKey) return false;
  }
  for (int i = 0; i < kNumRouters; ++i) {
    if (n->router[i] != n->keys[(i + 1) * kSegment - 1]) return false;
  }
  return true;
}

// --- Branchless search primitives ---------------------------------------
// Segment selection reads only the header-resident router; the segment scan
// reads exactly two key lines.  All loads are independent accumulate steps,
// so they vectorize and never stall on data-dependent branches.

inline int router_seg_lower(const Key* router, Key k) {
  int seg = 0;
  for (int i = 0; i < kNumRouters; ++i) {
    seg += static_cast<int>(router[i] < k);
  }
  return seg;  // in [0, kNumRouters]
}

inline int router_seg_upper(const Key* router, Key k) {
  int seg = 0;
  for (int i = 0; i < kNumRouters; ++i) {
    seg += static_cast<int>(router[i] <= k);
  }
  return seg;
}

inline int segment_lower(const Key* seg_keys, Key k) {
  int pos = 0;
  for (int i = 0; i < kSegment; ++i) {
    pos += static_cast<int>(seg_keys[i] < k);
  }
  return pos;
}

inline int segment_upper(const Key* seg_keys, Key k) {
  int pos = 0;
  for (int i = 0; i < kSegment; ++i) {
    pos += static_cast<int>(seg_keys[i] <= k);
  }
  return pos;
}

// --- Node-level search ----------------------------------------------------
// Usable by any node type exposing `router`, `keys`, `count` (and `child`
// for inner nodes / `vals` for leaves).

/// Index of the first key >= k in leaf->keys[0..count); count if none.
/// Prefetches the matching value lines between the two search waves.
template <typename Leaf>
inline int leaf_lower_bound(const Leaf* leaf, Key k) {
  const int base = router_seg_lower(leaf->router, k) * kSegment;
  prefetch_range(leaf->vals + base, kSegment * sizeof(leaf->vals[0]));
  const int pos = base + segment_lower(leaf->keys + base, k);
  return pos < leaf->count ? pos : leaf->count;
}

/// Exact position of k in the leaf, or -1.
template <typename Leaf>
inline int leaf_find_eq(const Leaf* leaf, Key k) {
  const int pos = leaf_lower_bound(leaf, k);
  return pos < leaf->count && leaf->keys[pos] == k ? pos : -1;
}

/// Index of the child subtree that may contain k (first separator > k).
/// Prefetches the candidate child-pointer lines between the two waves.
template <typename Inner>
inline int child_index(const Inner* inner, Key k) {
  const int base = router_seg_upper(inner->router, k) * kSegment;
  prefetch_range(inner->child + base,
                 (kSegment + 1) * sizeof(inner->child[0]));
  const int idx = base + segment_upper(inner->keys + base, k);
  return idx < inner->count ? idx : inner->count;
}

/// Shared descent loop: walks from `node` to the leaf whose separator range
/// covers k.  The lock-coupled tree inlines the same step manually so it
/// can interleave latching.
template <typename Leaf, typename Inner, typename Node>
[[nodiscard]] inline Leaf* descend_to_leaf(Node* node, Key k) {
  while (!node->leaf) {
    const Inner* inner = static_cast<const Inner*>(node);
    node = inner->child[child_index(inner, k)];
  }
  return static_cast<Leaf*>(node);
}

}  // namespace psmr::kvstore::btree_core
