#include "kvstore/bptree.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace psmr::kvstore {

namespace {
using btree_core::kInfKey;
using btree_core::layout_ok;
using btree_core::leaf_find_eq;
using btree_core::leaf_lower_bound;
using btree_core::pad_tail;
using btree_core::sync_router;
}  // namespace

BPlusTree::BPlusTree() : root_(new Leaf()) {}

BPlusTree::~BPlusTree() { destroy(root_); }

void BPlusTree::clear() {
  destroy(root_);
  root_ = new Leaf();
  size_ = 0;
}

void BPlusTree::destroy(Node* node) {
  if (!node->leaf) {
    auto* inner = static_cast<Inner*>(node);
    for (int i = 0; i <= inner->count; ++i) destroy(inner->child[i]);
    delete inner;
  } else {
    delete static_cast<Leaf*>(node);
  }
}

std::optional<BPlusTree::Value> BPlusTree::find(Key k) const {
  Leaf* leaf = find_leaf(k);
  int pos = leaf_find_eq(leaf, k);
  if (pos < 0) return std::nullopt;
  return std::atomic_ref<Value>(leaf->vals[pos])
      .load(std::memory_order_relaxed);
}

bool BPlusTree::update(Key k, Value v) {
  Leaf* leaf = find_leaf(k);
  int pos = leaf_find_eq(leaf, k);
  if (pos < 0) return false;
  std::atomic_ref<Value>(leaf->vals[pos])
      .store(v, std::memory_order_relaxed);
  return true;
}

void BPlusTree::find_batch(const Key* keys, std::size_t n,
                           std::optional<Value>* out) const {
  constexpr std::size_t W = kBatchWidth;
  for (std::size_t i = 0; i < n; i += W) {
    const std::size_t m = n - i < W ? n - i : W;  // partial final wave
    const Node* cur[W];
    for (std::size_t w = 0; w < m; ++w) cur[w] = root_;
    // Lockstep descent (every leaf is at the same depth).  Each wave only
    // issues independent loads across the lanes: first every lane's router
    // probe, then every lane's segment scan + child step, so the
    // out-of-order core keeps all lanes' misses in flight together.
    while (!cur[0]->leaf) {
      int base[W];
      for (std::size_t w = 0; w < m; ++w) {
        const auto* in = static_cast<const Inner*>(cur[w]);
        base[w] = btree_core::router_seg_upper(in->router, keys[i + w]) *
                  btree_core::kSegment;
      }
      for (std::size_t w = 0; w < m; ++w) {
        const auto* in = static_cast<const Inner*>(cur[w]);
        int idx = base[w] +
                  btree_core::segment_upper(in->keys + base[w], keys[i + w]);
        if (idx > in->count) idx = in->count;
        cur[w] = in->child[idx];
      }
    }
    int base[W];
    for (std::size_t w = 0; w < m; ++w) {
      const auto* leaf = static_cast<const Leaf*>(cur[w]);
      base[w] = btree_core::router_seg_lower(leaf->router, keys[i + w]) *
                btree_core::kSegment;
      btree_core::prefetch_range(leaf->vals + base[w],
                                 btree_core::kSegment * sizeof(Value));
    }
    for (std::size_t w = 0; w < m; ++w) {
      const auto* leaf = static_cast<const Leaf*>(cur[w]);
      int pos = base[w] +
                btree_core::segment_lower(leaf->keys + base[w], keys[i + w]);
      if (pos < leaf->count && leaf->keys[pos] == keys[i + w]) {
        out[i + w] = std::atomic_ref<Value>(
                         const_cast<Value&>(leaf->vals[pos]))
                         .load(std::memory_order_relaxed);
      } else {
        out[i + w] = std::nullopt;
      }
    }
  }
}

bool BPlusTree::insert(Key k, Value v) {
  bool inserted = false;
  auto split = insert_rec(root_, k, v, inserted);
  if (split) {
    auto* new_root = new Inner();
    new_root->count = 1;
    new_root->keys[0] = split->separator;
    new_root->child[0] = root_;
    new_root->child[1] = split->right;
    root_ = new_root;
  }
  if (inserted) ++size_;
  return inserted;
}

std::optional<BPlusTree::SplitResult> BPlusTree::insert_rec(Node* node, Key k,
                                                            Value v,
                                                            bool& inserted) {
  if (node->leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    int pos = leaf_lower_bound(leaf, k);
    if (pos < leaf->count && leaf->keys[pos] == k) {
      inserted = false;
      return std::nullopt;
    }
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->vals[i] = leaf->vals[i - 1];
    }
    leaf->keys[pos] = k;
    leaf->vals[pos] = v;
    ++leaf->count;
    inserted = true;
    if (leaf->count <= kMaxEntries) {
      sync_router(leaf->router, leaf->keys);
      return std::nullopt;
    }

    // Split: right sibling takes the upper half — or, when the overflow was
    // a pure append (sequential load), just the minimum legal tail, so
    // sealed leaves stay ~88% full (btree_core::append_split_keep).
    auto* right = new Leaf();
    int keep = pos == leaf->count - 1
                   ? btree_core::append_split_keep(leaf->count)
                   : leaf->count / 2;
    right->count = leaf->count - keep;
    std::copy(leaf->keys + keep, leaf->keys + leaf->count, right->keys);
    std::copy(leaf->vals + keep, leaf->vals + leaf->count, right->vals);
    leaf->count = keep;
    pad_tail(leaf->keys, keep);
    sync_router(leaf->router, leaf->keys);
    sync_router(right->router, right->keys);
    right->next = leaf->next;
    leaf->next = right;
    return SplitResult{right->keys[0], right};
  }

  auto* inner = static_cast<Inner*>(node);
  int idx = btree_core::child_index(inner, k);
  auto child_split = insert_rec(inner->child[idx], k, v, inserted);
  if (!child_split) return std::nullopt;

  // Insert the new separator and right child at position idx.
  for (int i = inner->count; i > idx; --i) {
    inner->keys[i] = inner->keys[i - 1];
    inner->child[i + 1] = inner->child[i];
  }
  inner->keys[idx] = child_split->separator;
  inner->child[idx + 1] = child_split->right;
  ++inner->count;
  if (inner->count <= kMaxEntries) {
    sync_router(inner->router, inner->keys);
    return std::nullopt;
  }

  // Split the inner node: the key at `mid` moves up.  Append-driven
  // overflows split at the insertion point like leaves do.
  auto* right = new Inner();
  int mid = idx == inner->count - 1
                ? btree_core::append_split_keep(inner->count) - 1
                : inner->count / 2;
  Key up = inner->keys[mid];
  right->count = inner->count - mid - 1;
  std::copy(inner->keys + mid + 1, inner->keys + inner->count, right->keys);
  std::copy(inner->child + mid + 1, inner->child + inner->count + 1,
            right->child);
  inner->count = mid;
  pad_tail(inner->keys, mid);
  sync_router(inner->router, inner->keys);
  sync_router(right->router, right->keys);
  return SplitResult{up, right};
}

bool BPlusTree::erase(Key k) {
  bool erased = false;
  erase_rec(root_, k, erased);
  if (!root_->leaf && root_->count == 0) {
    auto* old = static_cast<Inner*>(root_);
    root_ = old->child[0];
    delete old;
  }
  if (erased) --size_;
  return erased;
}

bool BPlusTree::erase_rec(Node* node, Key k, bool& erased) {
  if (node->leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    int pos = leaf_find_eq(leaf, k);
    if (pos < 0) {
      erased = false;
      return false;
    }
    for (int i = pos; i < leaf->count - 1; ++i) {
      leaf->keys[i] = leaf->keys[i + 1];
      leaf->vals[i] = leaf->vals[i + 1];
    }
    --leaf->count;
    leaf->keys[leaf->count] = kInfKey;
    sync_router(leaf->router, leaf->keys);
    erased = true;
    return leaf->count < kMinEntries;
  }

  auto* inner = static_cast<Inner*>(node);
  int idx = btree_core::child_index(inner, k);
  bool under = erase_rec(inner->child[idx], k, erased);
  if (under) rebalance_child(inner, idx);
  return inner->count < kMinEntries;
}

void BPlusTree::rebalance_child(Inner* parent, int idx) {
  Node* node = parent->child[idx];
  Node* left = idx > 0 ? parent->child[idx - 1] : nullptr;
  Node* right = idx < parent->count ? parent->child[idx + 1] : nullptr;

  if (node->leaf) {
    auto* cur = static_cast<Leaf*>(node);
    auto* l = static_cast<Leaf*>(left);
    auto* r = static_cast<Leaf*>(right);
    if (l && l->count > kMinEntries) {
      // Borrow the largest entry from the left sibling.
      for (int i = cur->count; i > 0; --i) {
        cur->keys[i] = cur->keys[i - 1];
        cur->vals[i] = cur->vals[i - 1];
      }
      cur->keys[0] = l->keys[l->count - 1];
      cur->vals[0] = l->vals[l->count - 1];
      ++cur->count;
      --l->count;
      l->keys[l->count] = kInfKey;
      sync_router(cur->router, cur->keys);
      sync_router(l->router, l->keys);
      parent->keys[idx - 1] = cur->keys[0];
      sync_router(parent->router, parent->keys);
      return;
    }
    if (r && r->count > kMinEntries) {
      // Borrow the smallest entry from the right sibling.
      cur->keys[cur->count] = r->keys[0];
      cur->vals[cur->count] = r->vals[0];
      ++cur->count;
      for (int i = 0; i < r->count - 1; ++i) {
        r->keys[i] = r->keys[i + 1];
        r->vals[i] = r->vals[i + 1];
      }
      --r->count;
      r->keys[r->count] = kInfKey;
      sync_router(cur->router, cur->keys);
      sync_router(r->router, r->keys);
      parent->keys[idx] = r->keys[0];
      sync_router(parent->router, parent->keys);
      return;
    }
    // Merge with a sibling (prefer left).
    Leaf* dst = l ? l : cur;
    Leaf* src = l ? cur : r;
    int sep = l ? idx - 1 : idx;
    std::copy(src->keys, src->keys + src->count, dst->keys + dst->count);
    std::copy(src->vals, src->vals + src->count, dst->vals + dst->count);
    dst->count += src->count;
    sync_router(dst->router, dst->keys);
    dst->next = src->next;
    delete src;
    for (int i = sep; i < parent->count - 1; ++i) {
      parent->keys[i] = parent->keys[i + 1];
      parent->child[i + 1] = parent->child[i + 2];
    }
    --parent->count;
    parent->keys[parent->count] = kInfKey;
    sync_router(parent->router, parent->keys);
    return;
  }

  auto* cur = static_cast<Inner*>(node);
  auto* l = static_cast<Inner*>(left);
  auto* r = static_cast<Inner*>(right);
  if (l && l->count > kMinEntries) {
    // Rotate right through the parent separator.
    for (int i = cur->count; i > 0; --i) {
      cur->keys[i] = cur->keys[i - 1];
      cur->child[i + 1] = cur->child[i];
    }
    cur->child[1] = cur->child[0];
    cur->keys[0] = parent->keys[idx - 1];
    cur->child[0] = l->child[l->count];
    ++cur->count;
    parent->keys[idx - 1] = l->keys[l->count - 1];
    --l->count;
    l->keys[l->count] = kInfKey;
    sync_router(cur->router, cur->keys);
    sync_router(l->router, l->keys);
    sync_router(parent->router, parent->keys);
    return;
  }
  if (r && r->count > kMinEntries) {
    // Rotate left through the parent separator.
    cur->keys[cur->count] = parent->keys[idx];
    cur->child[cur->count + 1] = r->child[0];
    ++cur->count;
    parent->keys[idx] = r->keys[0];
    for (int i = 0; i < r->count - 1; ++i) {
      r->keys[i] = r->keys[i + 1];
      r->child[i] = r->child[i + 1];
    }
    r->child[r->count - 1] = r->child[r->count];
    --r->count;
    r->keys[r->count] = kInfKey;
    sync_router(cur->router, cur->keys);
    sync_router(r->router, r->keys);
    sync_router(parent->router, parent->keys);
    return;
  }
  // Merge: left + separator + current (or current + separator + right).
  Inner* dst = l ? l : cur;
  Inner* src = l ? cur : r;
  int sep = l ? idx - 1 : idx;
  dst->keys[dst->count] = parent->keys[sep];
  std::copy(src->keys, src->keys + src->count, dst->keys + dst->count + 1);
  std::copy(src->child, src->child + src->count + 1,
            dst->child + dst->count + 1);
  dst->count += src->count + 1;
  sync_router(dst->router, dst->keys);
  delete src;
  for (int i = sep; i < parent->count - 1; ++i) {
    parent->keys[i] = parent->keys[i + 1];
    parent->child[i + 1] = parent->child[i + 2];
  }
  --parent->count;
  parent->keys[parent->count] = kInfKey;
  sync_router(parent->router, parent->keys);
}

void BPlusTree::for_each(const std::function<void(Key, Value)>& fn) const {
  for_each<const std::function<void(Key, Value)>&>(fn);
}

std::uint64_t BPlusTree::digest() const {
  std::uint64_t h = util::kFoldSeed;
  for_each([&h](Key k, Value v) { h = util::fold_kv(h, k, v); });
  return h;
}

int BPlusTree::height() const {
  int h = 1;
  Node* node = root_;
  while (!node->leaf) {
    node = static_cast<Inner*>(node)->child[0];
    ++h;
  }
  return h;
}

bool BPlusTree::validate() const {
  int leaf_depth = height();
  if (!validate_rec(root_, 1, leaf_depth, std::nullopt, std::nullopt)) {
    return false;
  }
  // The leaf chain must enumerate exactly size() keys in ascending order.
  std::size_t seen = 0;
  std::optional<Key> prev;
  bool ok = true;
  for_each([&](Key k, Value) {
    if (prev && *prev >= k) ok = false;
    prev = k;
    ++seen;
  });
  return ok && seen == size_;
}

bool BPlusTree::validate_rec(const Node* node, int depth, int leaf_depth,
                             std::optional<Key> lo,
                             std::optional<Key> hi) const {
  const bool is_root = node == root_;
  if (node->leaf) {
    if (depth != leaf_depth) return false;
    auto* leaf = static_cast<const Leaf*>(node);
    if (!is_root && leaf->count < kMinEntries) return false;
    if (leaf->count > kMaxEntries) return false;
    if (!layout_ok(leaf)) return false;
    for (int i = 0; i < leaf->count; ++i) {
      if (i > 0 && leaf->keys[i - 1] >= leaf->keys[i]) return false;
      if (lo && leaf->keys[i] < *lo) return false;
      if (hi && leaf->keys[i] >= *hi) return false;
    }
    return true;
  }
  auto* inner = static_cast<const Inner*>(node);
  if (!is_root && inner->count < kMinEntries) return false;
  if (is_root && inner->count < 1) return false;
  if (inner->count > kMaxEntries) return false;
  if (!layout_ok(inner)) return false;
  for (int i = 0; i < inner->count; ++i) {
    if (i > 0 && inner->keys[i - 1] >= inner->keys[i]) return false;
    if (lo && inner->keys[i] < *lo) return false;
    if (hi && inner->keys[i] > *hi) return false;
  }
  for (int i = 0; i <= inner->count; ++i) {
    std::optional<Key> clo = i == 0 ? lo : std::optional<Key>(inner->keys[i - 1]);
    std::optional<Key> chi =
        i == inner->count ? hi : std::optional<Key>(inner->keys[i]);
    if (!validate_rec(inner->child[i], depth + 1, leaf_depth, clo, chi)) {
      return false;
    }
  }
  return true;
}

}  // namespace psmr::kvstore
