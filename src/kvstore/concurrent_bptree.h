// Lock-based concurrent B+-tree: the Berkeley DB stand-in's storage engine.
//
// The paper configures BDB with "the in-memory B-tree access method with
// transactions disabled and multithreading and locking enabled" and
// attributes its low throughput to locking overhead (Section VII-C).  This
// tree reproduces that synchronization style:
//   * every node carries a reader-writer latch (std::shared_mutex);
//   * lookups and in-place updates use hand-over-hand latch coupling
//     (lock child, release parent) — fully concurrent;
//   * structure-modifying operations (insert/erase) additionally serialize
//     against each other through a writer mutex, then crab down with
//     exclusive latches, releasing ancestors as soon as the child is "safe"
//     (cannot split/underflow) so concurrent readers drain quickly.
// Writers being mutually exclusive keeps sibling rebalancing races out of
// scope while preserving the per-node latching cost profile that the BDB
// comparison is about.
//
// for_each/digest/validate are NOT thread-safe; call them on a quiesced
// tree (they exist for tests and state checks).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace psmr::kvstore {

class ConcurrentBPlusTree {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  static constexpr int kMaxEntries = 64;
  static constexpr int kMinEntries = kMaxEntries / 2;

  ConcurrentBPlusTree();
  ~ConcurrentBPlusTree();

  ConcurrentBPlusTree(const ConcurrentBPlusTree&) = delete;
  ConcurrentBPlusTree& operator=(const ConcurrentBPlusTree&) = delete;

  /// Thread-safe.  Returns false if the key already exists.
  bool insert(Key k, Value v);
  /// Thread-safe.  Returns false if the key does not exist.
  bool erase(Key k);
  /// Thread-safe lookup.
  [[nodiscard]] std::optional<Value> find(Key k) const;
  /// Thread-safe in-place value replacement; false if the key is missing.
  bool update(Key k, Value v);

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Quiesced-only helpers (tests / state digests).
  void for_each(const std::function<void(Key, Value)>& fn) const;
  [[nodiscard]] std::uint64_t digest() const;
  [[nodiscard]] bool validate() const;

 private:
  struct Node;
  struct Leaf;
  struct Inner;

  bool validate_rec(const Node* node, int depth, int leaf_depth,
                    std::optional<Key> lo, std::optional<Key> hi) const;
  static void destroy(Node* node);
  /// Fixes the underflowed child `parent->child[idx]` by borrowing from or
  /// merging with a sibling (which it latches exclusively for the duration).
  /// Returns the node that was deleted by a merge, or nullptr.
  static Node* rebalance_child_locked(Inner* parent, int idx);
  [[nodiscard]] int height_unlocked() const;

  mutable std::shared_mutex root_latch_;  // guards the root pointer
  std::mutex writer_mu_;                  // serializes structural writers
  Node* root_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace psmr::kvstore
