// Lock-based concurrent B+-tree: the Berkeley DB stand-in's storage engine.
//
// The paper configures BDB with "the in-memory B-tree access method with
// transactions disabled and multithreading and locking enabled" and
// attributes its low throughput to locking overhead (Section VII-C).  This
// tree reproduces that synchronization style:
//   * every node carries a reader-writer latch (std::shared_mutex);
//   * lookups and in-place updates use hand-over-hand latch coupling
//     (lock child, release parent) — fully concurrent;
//   * structure-modifying operations (insert/erase) additionally serialize
//     against each other through a writer mutex, then crab down with
//     exclusive latches, releasing ancestors as soon as the child is "safe"
//     (cannot split/underflow) so concurrent readers drain quickly.
// Writers being mutually exclusive keeps sibling rebalancing races out of
// scope while preserving the per-node latching cost profile that the BDB
// comparison is about.
//
// Node layout, intra-node search and descent prefetching are shared with
// the single-writer tree through kvstore/btree_core.h: 128-key nodes,
// cache-line-aligned key arrays separate from child pointers/values,
// branchless binary search, and child-key prefetch issued before each latch
// acquisition (the prefetch overlaps the latch handoff).
//
// range_scan() is deadlock-free by construction: it never couples latches
// sideways along the leaf chain (a scanner holding leaf L while waiting for
// L->next would deadlock against an eraser merging L->next into L).
// Instead it re-descends for each leaf, using the separator bound recorded
// on the way down as the next cursor.  Each leaf is observed atomically;
// the scan as a whole is not a snapshot (BDB read-committed cursor
// semantics).
//
// for_each/digest/validate are NOT thread-safe; call them on a quiesced
// tree (they exist for tests and state checks).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "kvstore/btree_core.h"

namespace psmr::kvstore {

class ConcurrentBPlusTree {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  static constexpr int kMaxEntries = btree_core::kMaxEntries;
  static constexpr int kMinEntries = btree_core::kMinEntries;

  ConcurrentBPlusTree();
  ~ConcurrentBPlusTree();

  ConcurrentBPlusTree(const ConcurrentBPlusTree&) = delete;
  ConcurrentBPlusTree& operator=(const ConcurrentBPlusTree&) = delete;

  /// Thread-safe.  Returns false if the key already exists.
  bool insert(Key k, Value v);
  /// Thread-safe.  Returns false if the key does not exist.
  bool erase(Key k);
  /// Thread-safe lookup.
  [[nodiscard]] std::optional<Value> find(Key k) const;
  /// Thread-safe in-place value replacement; false if the key is missing.
  bool update(Key k, Value v);

  /// Thread-safe range scan: visits every (k, v) with lo <= k <= hi in
  /// ascending key order and returns the number of entries visited.  Each
  /// leaf is read under its shared latch (atomic per leaf); concurrent
  /// structural writers may slide keys between the per-leaf steps, so the
  /// scan is not a snapshot (see the file comment).
  template <typename Fn>
  std::size_t range_scan(Key lo, Key hi, Fn&& fn) const {
    std::size_t n = 0;
    Key cursor = lo;
    while (true) {
      // Latch-coupled descent to the leaf whose separator range covers
      // `cursor`, tracking the tightest upper separator bound on the path:
      // every key of the *next* leaf is >= that bound.
      std::shared_lock root_guard(root_latch_);
      Node* node = root_;
      node->latch.lock_shared();
      root_guard.unlock();
      std::optional<Key> upper;
      while (!node->leaf) {
        auto* inner = static_cast<Inner*>(node);
        int idx = btree_core::child_index(inner, cursor);
        if (idx < inner->count) upper = inner->keys[idx];
        Node* child = inner->child[idx];
        child->latch.lock_shared();
        node->latch.unlock_shared();
        node = child;
      }
      auto* leaf = static_cast<Leaf*>(node);
      for (int i = btree_core::leaf_lower_bound(leaf, cursor);
           i < leaf->count; ++i) {
        if (leaf->keys[i] > hi) {
          leaf->latch.unlock_shared();
          return n;
        }
        fn(leaf->keys[i], leaf->vals[i]);
        ++n;
      }
      leaf->latch.unlock_shared();
      // Re-descend for the next leaf; its keys are >= `upper`, which
      // strictly exceeds every key covered so far (guaranteed progress).
      if (!upper || *upper > hi) return n;
      cursor = *upper;
    }
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Discards every entry, resetting to a freshly constructed tree.
  /// Requires exclusive access (no concurrent readers or writers) — the
  /// quiesced snapshot-restore contract, not the latch-crabbing one.
  void clear();

  /// Quiesced-only traversal (tests / state digests).  The template form
  /// inlines the visitor into the leaf walk (digest hot path).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Node* node = root_;
    while (!node->leaf) node = static_cast<const Inner*>(node)->child[0];
    for (auto* leaf = static_cast<const Leaf*>(node); leaf != nullptr;
         leaf = leaf->next) {
      for (int i = 0; i < leaf->count; ++i) fn(leaf->keys[i], leaf->vals[i]);
    }
  }
  /// Type-erased overload for callers that store the visitor.
  void for_each(const std::function<void(Key, Value)>& fn) const;
  [[nodiscard]] std::uint64_t digest() const;
  [[nodiscard]] bool validate() const;

 private:
  // Shared cache-conscious layout (btree_core).  Unlike the single-writer
  // tree, the latch fills most of the first cache line, so the stride-16
  // micro-router gets a line of its own; the inf-padded key array starts
  // aligned after it, separate from child pointers / values.
  struct alignas(btree_core::kCacheLine) Node {
    mutable std::shared_mutex latch;
    bool leaf;
    int count = 0;
    alignas(btree_core::kCacheLine) Key router[btree_core::kNumRouters];
    explicit Node(bool is_leaf) : leaf(is_leaf) {
      for (Key& r : router) r = btree_core::kInfKey;
    }
  };
  struct Leaf : Node {
    alignas(btree_core::kCacheLine) Key keys[kMaxEntries + 1];
    Value vals[kMaxEntries + 1];
    Leaf* next = nullptr;
    Leaf() : Node(true) { btree_core::pad_tail(keys, 0); }
  };
  struct Inner : Node {
    alignas(btree_core::kCacheLine) Key keys[kMaxEntries + 1];
    Node* child[kMaxEntries + 2] = {};
    Inner() : Node(false) { btree_core::pad_tail(keys, 0); }
  };
#if defined(__GLIBCXX__) && defined(__x86_64__)
  // Layout check for the reference toolchain only: std::shared_mutex size
  // varies across standard libraries (glibc 56B, libc++ much larger), and
  // a fatter latch merely shifts the (still aligned) router/key lines.
  static_assert(sizeof(Node) == 2 * btree_core::kCacheLine,
                "latch header plus router should fill exactly two lines");
#endif

  bool validate_rec(const Node* node, int depth, int leaf_depth,
                    std::optional<Key> lo, std::optional<Key> hi) const;
  static void destroy(Node* node);
  /// Fixes the underflowed child `parent->child[idx]` by borrowing from or
  /// merging with a sibling (which it latches exclusively for the duration).
  /// Returns the node that was deleted by a merge, or nullptr.
  static Node* rebalance_child_locked(Inner* parent, int idx);
  [[nodiscard]] int height_unlocked() const;

  mutable std::shared_mutex root_latch_;  // guards the root pointer
  std::mutex writer_mu_;                  // serializes structural writers
  Node* root_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace psmr::kvstore
