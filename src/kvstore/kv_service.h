// Replicated key-value store service — paper Section V-A.
//
// Commands (8-byte integer keys, 8-byte values):
//   insert(k, v) -> err     delete(k) -> err
//   read(k)      -> v, err  update(k, v) -> err
//
// C-Dep, exactly as the paper defines it: "inserts and deletes depend on
// all commands; an update on key k depends on other updates on k, on reads
// on k, and on inserts and deletes" — because inserts/deletes may
// restructure the B+-tree while reads/updates never do.
//
// Two multi-key read commands extend the paper's set: scan (leaf-chain
// range read) and multi-read (pipelined batched point reads).  Both read
// arbitrarily many keys, so they additionally depend on every update (a
// per-key entry cannot cover a range); like all reads they never
// restructure the tree.
#pragma once

#include <memory>
#include <vector>

#include "kvstore/bptree.h"
#include "kvstore/concurrent_bptree.h"
#include "smr/cdep.h"
#include "smr/cg.h"
#include "smr/service.h"
#include "smr/shard_cg.h"

namespace psmr::kvstore {

/// Command identifiers.
enum KvCommand : smr::CommandId {
  kKvInsert = 1,
  kKvDelete = 2,
  kKvRead = 3,
  kKvUpdate = 4,
  /// Range scan [lo, hi]: returns the count and an order-sensitive digest
  /// of the covered (key, value) pairs (leaf-chain fast path).
  kKvScan = 5,
  /// Multi-get: batched point reads resolved with the tree's pipelined
  /// find_batch (one result per requested key).
  kKvMultiRead = 6,
};

inline constexpr smr::CommandId kKvMaxCommand = kKvMultiRead;

/// Error codes returned in responses.
enum KvStatus : std::uint8_t {
  kKvOk = 0,
  kKvExists = 1,    // insert of a present key
  kKvNotFound = 2,  // read/update/delete of a missing key
};

// --- Parameter / response marshaling (client proxy & server proxy) ---

util::Buffer encode_key(std::uint64_t k);
util::Buffer encode_key_value(std::uint64_t k, std::uint64_t v);
/// Scan parameters: inclusive key range.
util::Buffer encode_key_range(std::uint64_t lo, std::uint64_t hi);
/// Multi-read parameters: the list of requested keys.
util::Buffer encode_keys(const std::vector<std::uint64_t>& keys);
/// Reads the key parameter of any single-key KV command.
std::uint64_t decode_key(std::span<const std::uint8_t> params);

struct KvResult {
  KvStatus status = kKvOk;
  std::uint64_t value = 0;  // read: the value; scan: count ^ digest fold
};
util::Buffer encode_result(KvResult r);
KvResult decode_result(const util::Buffer& payload);

/// Multi-read response: one entry per requested key, in request order.
struct KvMultiResult {
  std::vector<KvResult> entries;
};
util::Buffer encode_multi_result(const KvMultiResult& r);
KvMultiResult decode_multi_result(const util::Buffer& payload);

// --- Service bindings ---

/// Deterministic single-instance service over the plain B+-tree.  Safe for
/// P-SMR's concurrency regime (structure changes are globally serialized by
/// the C-Dep; reads/updates touch single leaf slots atomically).
///
/// Natively batch-aware: execute_batch splits a run of independent commands
/// into its read lanes — point reads and multi-read key lists gathered into
/// one pipelined BPlusTree::find_batch pass whose miss chains overlap —
/// while every other command executes in batch order.  may_share_batch is
/// derived from the same kv_cdep() the C-G functions use, so batches only
/// ever contain commands whose relative order is irrelevant.
class KvService : public smr::Service {
 public:
  KvService();
  /// Pre-populates keys 0..initial_keys-1 (the paper initializes the tree
  /// with 10 million keys before measuring).
  explicit KvService(std::uint64_t initial_keys);

  [[nodiscard]] bool may_share_batch(const smr::Command& x,
                                     const smr::Command& y) const override;
  [[nodiscard]] std::uint64_t state_digest() const override {
    return tree_.digest();
  }
  [[nodiscard]] bool snapshot_to(util::Writer& w) const override;
  [[nodiscard]] bool restore_from(util::Reader& r) override;
  [[nodiscard]] const BPlusTree& tree() const { return tree_; }

 protected:
  void do_execute_batch(smr::CommandBatch& batch) override;

 private:
  BPlusTree tree_;
};

/// Internally synchronized variant over the latch-crabbing tree, for the
/// BDB-style lock server (fully concurrent callers, no external scheduler;
/// batches degrade to in-order execution — the concurrent tree's latching
/// would serialize a pipelined pass anyway).
class ConcurrentKvService : public smr::Service {
 public:
  ConcurrentKvService() = default;
  explicit ConcurrentKvService(std::uint64_t initial_keys);

  [[nodiscard]] bool may_share_batch(const smr::Command& x,
                                     const smr::Command& y) const override;
  [[nodiscard]] std::uint64_t state_digest() const override {
    return tree_.digest();
  }
  [[nodiscard]] bool snapshot_to(util::Writer& w) const override;
  [[nodiscard]] bool restore_from(util::Reader& r) override;
  [[nodiscard]] const ConcurrentBPlusTree& tree() const { return tree_; }

 protected:
  void do_execute_batch(smr::CommandBatch& batch) override;

 private:
  ConcurrentBPlusTree tree_;
};

// --- Dependency metadata (provided by the service designer, §IV-B) ---

/// The paper's C-Dep for this service.
smr::CDep kv_cdep();

/// Key extractor for same-key dependency checks and the keyed C-G.
smr::KeyFn kv_key_fn();

/// Keyed C-G (paper's second example): read/update → group (key mod k);
/// insert/delete → all groups.
std::shared_ptr<const smr::CGFunction> kv_keyed_cg(std::size_t k);

/// Coarse C-G (paper's first example): read → one pseudo-random group;
/// everything else → all groups.
std::shared_ptr<const smr::CGFunction> kv_coarse_cg(std::size_t k);

/// Shard-aware C-G over an explicit key→group map (see smr/shard_cg.h):
/// read/update → the key's shard; scan → the shards its range intersects;
/// multi-read → the union of its keys' shards; insert/delete → all groups
/// (tree restructuring).  Refines kv_keyed_cg's conservative treatment of
/// the multi-key reads, which from_cdep can only send to every group.
std::shared_ptr<const smr::CGFunction> kv_sharded_cg(
    const multicast::ShardMap& map);

}  // namespace psmr::kvstore
