// Typed client API for the replicated key-value store.
//
// Mirrors the paper's command signatures (Section V-A); replication is
// invisible — the same code works against every deployment mode.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "kvstore/kv_service.h"
#include "smr/client.h"

namespace psmr::kvstore {

class KvClient {
 public:
  explicit KvClient(std::unique_ptr<smr::ClientProxy> proxy)
      : proxy_(std::move(proxy)) {}

  /// insert(in: k, v; out: err)
  KvStatus insert(std::uint64_t k, std::uint64_t v) {
    return status_call(kKvInsert, encode_key_value(k, v));
  }
  /// delete(in: k; out: err)
  KvStatus erase(std::uint64_t k) {
    return status_call(kKvDelete, encode_key(k));
  }
  /// read(in: k; out: v, err)
  std::optional<std::uint64_t> read(std::uint64_t k) {
    auto payload = proxy_->call(kKvRead, encode_key(k));
    if (!payload) return std::nullopt;
    auto res = decode_result(*payload);
    if (res.status != kKvOk) return std::nullopt;
    return res.value;
  }
  /// update(in: k, v; out: err)
  KvStatus update(std::uint64_t k, std::uint64_t v) {
    return status_call(kKvUpdate, encode_key_value(k, v));
  }
  /// scan(in: lo, hi; out: count-xor-digest of the covered pairs).
  /// The leaf-chain range read; replicas answer deterministically, so the
  /// digest doubles as a convergence probe.
  std::optional<std::uint64_t> scan(std::uint64_t lo, std::uint64_t hi) {
    auto payload = proxy_->call(kKvScan, encode_key_range(lo, hi));
    if (!payload) return std::nullopt;
    auto res = decode_result(*payload);
    if (res.status != kKvOk) return std::nullopt;
    return res.value;
  }
  /// multi_read(in: keys; out: one value per key, in order).  Batched
  /// point reads served by the tree's pipelined find_batch.  Empty on
  /// timeout.
  std::vector<std::optional<std::uint64_t>> multi_read(
      const std::vector<std::uint64_t>& keys) {
    auto payload = proxy_->call(kKvMultiRead, encode_keys(keys));
    if (!payload) return {};
    auto res = decode_multi_result(*payload);
    std::vector<std::optional<std::uint64_t>> out;
    out.reserve(res.entries.size());
    for (const KvResult& e : res.entries) {
      out.push_back(e.status == kKvOk ? std::optional<std::uint64_t>(e.value)
                                      : std::nullopt);
    }
    return out;
  }

  /// The underlying proxy (for windowed asynchronous use).
  [[nodiscard]] smr::ClientProxy& proxy() { return *proxy_; }

 private:
  KvStatus status_call(smr::CommandId cmd, util::Buffer params) {
    auto payload = proxy_->call(cmd, std::move(params));
    if (!payload) return kKvNotFound;  // timeout: treated as failure
    return decode_result(*payload).status;
  }

  std::unique_ptr<smr::ClientProxy> proxy_;
};

}  // namespace psmr::kvstore
