// B+-tree — the key-value store's main data structure (paper Section V-A:
// "The main key-value store's data structure is a B+-tree", 8-byte integer
// keys, 8-byte values).
//
// Single-writer tree used by the replicated deployments: P-SMR's C-Dep
// guarantees that structure-changing commands (insert/delete) never run
// concurrently with anything else, while reads/updates on distinct keys may
// run in parallel.  To keep those parallel accesses well-defined, leaf
// values are accessed through std::atomic_ref — updates change a single
// leaf slot in place and never restructure the tree, exactly the property
// the paper's C-Dep relies on.
//
// The lock-based concurrent variant used by the BDB-style server lives in
// concurrent_bptree.h.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

namespace psmr::kvstore {

class BPlusTree {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  /// Max entries per leaf and max keys per inner node.
  static constexpr int kMaxEntries = 64;
  static constexpr int kMinEntries = kMaxEntries / 2;

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (k, v).  Returns false if the key already exists.
  bool insert(Key k, Value v);
  /// Removes k.  Returns false if the key does not exist.
  bool erase(Key k);
  /// Returns the value of k, if present.  Safe concurrently with update()
  /// on other keys and with other finds.
  [[nodiscard]] std::optional<Value> find(Key k) const;
  /// Replaces the value of an existing key in place (no restructuring).
  /// Returns false if the key does not exist.  Safe concurrently with
  /// find()/update() on any keys.
  bool update(Key k, Value v);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// In-order traversal (ascending keys).
  void for_each(const std::function<void(Key, Value)>& fn) const;

  /// Order-sensitive digest of the full contents (replica convergence).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checks the structural invariants (sorted keys, fill factors, uniform
  /// leaf depth, correct separators, leaf chain).  Used by property tests.
  [[nodiscard]] bool validate() const;

  /// Tree height (1 = a single leaf).  Exposed for tests.
  [[nodiscard]] int height() const;

 private:
  struct Node;
  struct Leaf;
  struct Inner;

  Leaf* find_leaf(Key k) const;
  // Insert into subtree; returns {separator, new right sibling} on split.
  struct SplitResult {
    Key separator;
    Node* right;
  };
  std::optional<SplitResult> insert_rec(Node* node, Key k, Value v,
                                        bool& inserted);
  // Erase from subtree; returns true if `node` underflowed.
  bool erase_rec(Node* node, Key k, bool& erased);
  void rebalance_child(Inner* parent, int idx);
  static void destroy(Node* node);
  bool validate_rec(const Node* node, int depth, int leaf_depth,
                    std::optional<Key> lo, std::optional<Key> hi) const;

  Node* root_;
  std::size_t size_ = 0;
};

}  // namespace psmr::kvstore
