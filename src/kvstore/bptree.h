// B+-tree — the key-value store's main data structure (paper Section V-A:
// "The main key-value store's data structure is a B+-tree", 8-byte integer
// keys, 8-byte values).
//
// Single-writer tree used by the replicated deployments: P-SMR's C-Dep
// guarantees that structure-changing commands (insert/delete) never run
// concurrently with anything else, while reads/updates on distinct keys may
// run in parallel.  To keep those parallel accesses well-defined, leaf
// values are accessed through std::atomic_ref — updates change a single
// leaf slot in place and never restructure the tree, exactly the property
// the paper's C-Dep relies on.  range_scan() walks the leaf chain under the
// same contract: safe concurrently with find()/update(), never with
// insert()/erase().
//
// The node layout, intra-node search and prefetching descent live in
// kvstore/btree_core.h (shared with the lock-based variant): 128-key nodes
// with an in-header stride-16 micro-router, inf-padded cache-line-aligned
// key arrays separate from child pointers/values, branchless two-wave
// search, and candidate child/value prefetch between the waves.
// find_batch() additionally pipelines independent lookups in lockstep so
// their miss chains overlap (multi-get).
//
// The lock-based concurrent variant used by the BDB-style server lives in
// concurrent_bptree.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>

#include "kvstore/btree_core.h"

namespace psmr::kvstore {

class BPlusTree {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  /// Max entries per leaf and max keys per inner node (btree_core layout).
  static constexpr int kMaxEntries = btree_core::kMaxEntries;
  static constexpr int kMinEntries = btree_core::kMinEntries;

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (k, v).  Returns false if the key already exists.
  bool insert(Key k, Value v);
  /// Removes k.  Returns false if the key does not exist.
  bool erase(Key k);
  /// Returns the value of k, if present.  Safe concurrently with update()
  /// on other keys and with other finds.
  [[nodiscard]] std::optional<Value> find(Key k) const;
  /// Replaces the value of an existing key in place (no restructuring).
  /// Returns false if the key does not exist.  Safe concurrently with
  /// find()/update() on any keys.
  bool update(Key k, Value v);

  /// Lanes resolved together by find_batch.  Sized past the memory-level
  /// parallelism a core can sustain (~8-16 outstanding misses), measured
  /// best on the reference host at 16.
  static constexpr std::size_t kBatchWidth = 16;

  /// Software-pipelined multi-lookup: out[i] = find(keys[i]).  Descends up
  /// to kBatchWidth lookups in lockstep waves (all router fetches, then all
  /// segment probes), so the dependent cache/TLB misses of *different*
  /// lookups overlap — on a deep-memory host a batch resolves in a small
  /// multiple of one lookup's latency.  The replica executes delivered
  /// command batches, which is exactly this shape (multi-get).  Same
  /// concurrency contract as find().
  void find_batch(const Key* keys, std::size_t n,
                  std::optional<Value>* out) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Discards every entry, resetting to a freshly constructed tree.  Same
  /// concurrency contract as insert()/erase().  Used by snapshot restore to
  /// replace the whole state.
  void clear();

  /// Leaf-chain range scan: visits every (k, v) with lo <= k <= hi in
  /// ascending key order and returns the number of entries visited.
  /// Values are read through std::atomic_ref, so a scan is a multi-key
  /// read: safe concurrently with find()/update() on any keys, never with
  /// insert()/erase() (the C-Dep must order it like a read).
  template <typename Fn>
  std::size_t range_scan(Key lo, Key hi, Fn&& fn) const {
    Leaf* leaf = find_leaf(lo);
    int i = btree_core::leaf_lower_bound(leaf, lo);
    std::size_t n = 0;
    while (leaf != nullptr) {
      for (; i < leaf->count; ++i) {
        if (leaf->keys[i] > hi) return n;
        fn(leaf->keys[i],
           std::atomic_ref<Value>(leaf->vals[i])
               .load(std::memory_order_relaxed));
        ++n;
      }
      leaf = leaf->next;
      // Next leaf in the chain: prefetch its header and first key lines.
      if (leaf != nullptr) {
        btree_core::prefetch_range(leaf, 3 * btree_core::kCacheLine);
      }
      i = 0;
    }
    return n;
  }

  /// In-order traversal (ascending keys).  The template form inlines the
  /// visitor into the leaf walk — it is the digest/convergence hot path.
  /// Quiesced-only (no atomic value loads), like digest()/validate().
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Node* node = root_;
    while (!node->leaf) node = static_cast<const Inner*>(node)->child[0];
    for (auto* leaf = static_cast<const Leaf*>(node); leaf != nullptr;
         leaf = leaf->next) {
      for (int i = 0; i < leaf->count; ++i) fn(leaf->keys[i], leaf->vals[i]);
    }
  }
  /// Type-erased overload for callers that store the visitor.
  void for_each(const std::function<void(Key, Value)>& fn) const;

  /// Order-sensitive digest of the full contents (replica convergence).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checks the structural invariants (sorted keys, fill factors, uniform
  /// leaf depth, correct separators, leaf chain).  Used by property tests.
  [[nodiscard]] bool validate() const;

  /// Tree height (1 = a single leaf).  Exposed for tests.
  [[nodiscard]] int height() const;

 private:
  // Cache-conscious layout (btree_core): kind/count plus the stride-16
  // micro-router fill exactly one cache line; the inf-padded key array
  // starts aligned on the next, with children/values in trailing arrays.
  // A search touches the header line and one two-line key segment.
  struct alignas(btree_core::kCacheLine) Node {
    bool leaf;
    int count = 0;  // entries (leaf) or separator keys (inner)
    Key router[btree_core::kNumRouters];
    explicit Node(bool is_leaf) : leaf(is_leaf) {
      for (Key& r : router) r = btree_core::kInfKey;
    }
  };
  struct Leaf : Node {
    alignas(btree_core::kCacheLine) Key keys[kMaxEntries + 1];
    Value vals[kMaxEntries + 1];
    Leaf* next = nullptr;
    Leaf() : Node(true) { btree_core::pad_tail(keys, 0); }
  };
  struct Inner : Node {
    alignas(btree_core::kCacheLine) Key keys[kMaxEntries + 1];
    Node* child[kMaxEntries + 2] = {};
    Inner() : Node(false) { btree_core::pad_tail(keys, 0); }
  };
  static_assert(sizeof(Node) == btree_core::kCacheLine,
                "header+router must fill exactly one cache line");

  /// Prefetching descent to the leaf whose separator range covers k.
  Leaf* find_leaf(Key k) const {
    return btree_core::descend_to_leaf<Leaf, Inner>(root_, k);
  }

  // Insert into subtree; returns {separator, new right sibling} on split.
  struct SplitResult {
    Key separator;
    Node* right;
  };
  std::optional<SplitResult> insert_rec(Node* node, Key k, Value v,
                                        bool& inserted);
  // Erase from subtree; returns true if `node` underflowed.
  bool erase_rec(Node* node, Key k, bool& erased);
  void rebalance_child(Inner* parent, int idx);
  static void destroy(Node* node);
  bool validate_rec(const Node* node, int depth, int leaf_depth,
                    std::optional<Key> lo, std::optional<Key> hi) const;

  Node* root_;
  std::size_t size_ = 0;
};

}  // namespace psmr::kvstore
