#include "kvstore/concurrent_bptree.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/hash.h"

namespace psmr::kvstore {

namespace {
using btree_core::child_index;
using btree_core::kInfKey;
using btree_core::layout_ok;
using btree_core::leaf_find_eq;
using btree_core::leaf_lower_bound;
using btree_core::pad_tail;
using btree_core::sync_router;
}  // namespace

ConcurrentBPlusTree::ConcurrentBPlusTree() : root_(new Leaf()) {}

ConcurrentBPlusTree::~ConcurrentBPlusTree() { destroy(root_); }

void ConcurrentBPlusTree::clear() {
  std::lock_guard writer(writer_mu_);
  std::unique_lock root_guard(root_latch_);
  destroy(root_);
  root_ = new Leaf();
  size_.store(0, std::memory_order_relaxed);
}

void ConcurrentBPlusTree::destroy(Node* node) {
  if (!node->leaf) {
    auto* inner = static_cast<Inner*>(node);
    for (int i = 0; i <= inner->count; ++i) destroy(inner->child[i]);
    delete inner;
  } else {
    delete static_cast<Leaf*>(node);
  }
}

std::optional<ConcurrentBPlusTree::Value> ConcurrentBPlusTree::find(
    Key k) const {
  std::shared_lock root_guard(root_latch_);
  Node* node = root_;
  node->latch.lock_shared();
  root_guard.unlock();
  while (!node->leaf) {
    auto* inner = static_cast<Inner*>(node);
    Node* child = inner->child[child_index(inner, k)];
    child->latch.lock_shared();
    node->latch.unlock_shared();
    node = child;
  }
  auto* leaf = static_cast<Leaf*>(node);
  int pos = leaf_find_eq(leaf, k);
  std::optional<Value> out;
  if (pos >= 0) out = leaf->vals[pos];
  leaf->latch.unlock_shared();
  return out;
}

bool ConcurrentBPlusTree::update(Key k, Value v) {
  std::shared_lock root_guard(root_latch_);
  Node* node = root_;
  if (node->leaf) {
    node->latch.lock();  // leaf mutation needs the exclusive latch
  } else {
    node->latch.lock_shared();
  }
  root_guard.unlock();
  while (!node->leaf) {
    auto* inner = static_cast<Inner*>(node);
    Node* child = inner->child[child_index(inner, k)];
    if (child->leaf) {
      child->latch.lock();
    } else {
      child->latch.lock_shared();
    }
    node->latch.unlock_shared();
    node = child;
  }
  auto* leaf = static_cast<Leaf*>(node);
  int pos = leaf_find_eq(leaf, k);
  bool ok = pos >= 0;
  if (ok) leaf->vals[pos] = v;
  leaf->latch.unlock();
  return ok;
}

bool ConcurrentBPlusTree::insert(Key k, Value v) {
  std::lock_guard writer(writer_mu_);
  // Crab down with exclusive latches; release ancestors once the child
  // cannot split (safe).  `locked` is the retained unsafe suffix, rooted at
  // the highest node a split could reach.
  std::unique_lock root_guard(root_latch_);
  std::vector<Node*> locked;
  bool holding_root_latch = true;

  Node* node = root_;
  node->latch.lock();
  locked.push_back(node);
  if (node->count < kMaxEntries) {  // root cannot split
    root_guard.unlock();
    holding_root_latch = false;
  }
  while (!node->leaf) {
    auto* inner = static_cast<Inner*>(node);
    Node* child = inner->child[child_index(inner, k)];
    child->latch.lock();
    if (child->count < kMaxEntries) {
      // Child is safe: no split can propagate above it.
      for (Node* n : locked) n->latch.unlock();
      locked.clear();
      if (holding_root_latch) {
        root_guard.unlock();
        holding_root_latch = false;
      }
    }
    locked.push_back(child);
    node = child;
  }

  auto unlock_all = [&] {
    for (Node* n : locked) n->latch.unlock();
    locked.clear();
  };

  auto* leaf = static_cast<Leaf*>(node);
  int pos = leaf_lower_bound(leaf, k);
  if (pos < leaf->count && leaf->keys[pos] == k) {
    unlock_all();
    return false;
  }
  for (int i = leaf->count; i > pos; --i) {
    leaf->keys[i] = leaf->keys[i - 1];
    leaf->vals[i] = leaf->vals[i - 1];
  }
  leaf->keys[pos] = k;
  leaf->vals[pos] = v;
  ++leaf->count;
  size_.fetch_add(1, std::memory_order_relaxed);

  // Propagate splits up the retained (locked) path.
  Key sep = 0;
  Node* right = nullptr;
  if (leaf->count <= kMaxEntries) {
    sync_router(leaf->router, leaf->keys);
  } else {
    // Append-driven overflows keep ~88% on the left (btree_core comment).
    auto* r = new Leaf();
    int keep = pos == leaf->count - 1
                   ? btree_core::append_split_keep(leaf->count)
                   : leaf->count / 2;
    r->count = leaf->count - keep;
    std::copy(leaf->keys + keep, leaf->keys + leaf->count, r->keys);
    std::copy(leaf->vals + keep, leaf->vals + leaf->count, r->vals);
    leaf->count = keep;
    pad_tail(leaf->keys, keep);
    sync_router(leaf->router, leaf->keys);
    sync_router(r->router, r->keys);
    r->next = leaf->next;
    leaf->next = r;
    sep = r->keys[0];
    right = r;
  }
  // locked = [top ... leaf]; walk parents from the leaf upwards.
  for (int i = static_cast<int>(locked.size()) - 2; i >= 0 && right != nullptr;
       --i) {
    auto* inner = static_cast<Inner*>(locked[static_cast<std::size_t>(i)]);
    int idx = child_index(inner, k);
    for (int j = inner->count; j > idx; --j) {
      inner->keys[j] = inner->keys[j - 1];
      inner->child[j + 1] = inner->child[j];
    }
    inner->keys[idx] = sep;
    inner->child[idx + 1] = right;
    ++inner->count;
    right = nullptr;
    if (inner->count <= kMaxEntries) {
      sync_router(inner->router, inner->keys);
    } else {
      auto* r = new Inner();
      int mid = idx == inner->count - 1
                    ? btree_core::append_split_keep(inner->count) - 1
                    : inner->count / 2;
      Key up = inner->keys[mid];
      r->count = inner->count - mid - 1;
      std::copy(inner->keys + mid + 1, inner->keys + inner->count, r->keys);
      std::copy(inner->child + mid + 1, inner->child + inner->count + 1,
                r->child);
      inner->count = mid;
      pad_tail(inner->keys, mid);
      sync_router(inner->router, inner->keys);
      sync_router(r->router, r->keys);
      sep = up;
      right = r;
    }
  }
  if (right != nullptr) {
    // The retained top itself split: grow a new root.  We still hold the
    // root latch exclusively (the top was unsafe all the way up).
    assert(holding_root_latch);
    auto* new_root = new Inner();
    new_root->count = 1;
    new_root->keys[0] = sep;
    new_root->child[0] = root_;
    new_root->child[1] = right;
    root_ = new_root;
  }
  unlock_all();
  return true;
}

bool ConcurrentBPlusTree::erase(Key k) {
  std::lock_guard writer(writer_mu_);
  // With writers serialized, readers only hold shared latches transiently on
  // their way down.  Take exclusive latches along the whole path (simple
  // full-path crabbing: ancestors released once the child is safe, i.e.
  // above minimum fill).
  std::unique_lock root_guard(root_latch_);
  std::vector<Node*> locked;
  bool holding_root_latch = true;

  Node* node = root_;
  node->latch.lock();
  locked.push_back(node);
  bool root_safe = node->leaf || node->count > 1;
  if (root_safe) {
    root_guard.unlock();
    holding_root_latch = false;
  }
  // path_idx[i] is the child index taken from locked[i] to locked[i+1]
  // (always exactly locked.size() - 1 entries).
  std::vector<int> path_idx;
  while (!node->leaf) {
    auto* inner = static_cast<Inner*>(node);
    int idx = child_index(inner, k);
    Node* child = inner->child[idx];
    child->latch.lock();
    if (child->count > kMinEntries) {
      // Child cannot underflow: ancestors can be released, and the index
      // into the (now unlocked) parent must not be kept.
      for (Node* n : locked) n->latch.unlock();
      locked.clear();
      path_idx.clear();
      if (holding_root_latch) {
        root_guard.unlock();
        holding_root_latch = false;
      }
    } else {
      path_idx.push_back(idx);
    }
    locked.push_back(child);
    node = child;
  }

  // Entries are nulled when a merge deletes the locked node itself.
  auto unlock_all = [&] {
    for (Node* n : locked) {
      if (n != nullptr) n->latch.unlock();
    }
    locked.clear();
  };

  auto* leaf = static_cast<Leaf*>(node);
  int pos = leaf_find_eq(leaf, k);
  if (pos < 0) {
    unlock_all();
    return false;
  }
  for (int i = pos; i < leaf->count - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->vals[i] = leaf->vals[i + 1];
  }
  --leaf->count;
  leaf->keys[leaf->count] = kInfKey;
  sync_router(leaf->router, leaf->keys);
  size_.fetch_sub(1, std::memory_order_relaxed);

  // Rebalance bottom-up through the retained path.  locked[0] is the
  // highest retained node; path_idx[i-1] is the child index taken from
  // locked[i-1] to locked[i].  A merge may delete the locked child itself;
  // its slot is nulled so unlock_all skips it.
  for (int i = static_cast<int>(locked.size()) - 1; i > 0; --i) {
    Node* cur = locked[static_cast<std::size_t>(i)];
    if (cur == nullptr || cur->count >= kMinEntries) break;
    auto* parent =
        static_cast<Inner*>(locked[static_cast<std::size_t>(i - 1)]);
    int idx = path_idx[static_cast<std::size_t>(i - 1)];
    Node* deleted = rebalance_child_locked(parent, idx);
    if (deleted == cur) locked[static_cast<std::size_t>(i)] = nullptr;
  }
  if (!root_->leaf && root_->count == 0) {
    // The root lost its last separator: its single remaining child becomes
    // the new root.  We still hold the root latch exclusively (an unsafe
    // root is never released early), so no reader can observe the swap.
    assert(holding_root_latch);
    auto* old = static_cast<Inner*>(root_);
    root_ = old->child[0];
    for (auto& n : locked) {
      if (n == old) {
        n->latch.unlock();
        n = nullptr;
      }
    }
    delete old;
  }
  unlock_all();
  return true;
}

ConcurrentBPlusTree::Node* ConcurrentBPlusTree::rebalance_child_locked(
    Inner* parent, int idx) {
  Node* node = parent->child[idx];
  Node* left = idx > 0 ? parent->child[idx - 1] : nullptr;
  Node* right = idx < parent->count ? parent->child[idx + 1] : nullptr;

  if (node->leaf) {
    auto* cur = static_cast<Leaf*>(node);
    if (left != nullptr) {
      auto* l = static_cast<Leaf*>(left);
      std::lock_guard sib(l->latch);
      if (l->count > kMinEntries) {
        for (int i = cur->count; i > 0; --i) {
          cur->keys[i] = cur->keys[i - 1];
          cur->vals[i] = cur->vals[i - 1];
        }
        cur->keys[0] = l->keys[l->count - 1];
        cur->vals[0] = l->vals[l->count - 1];
        ++cur->count;
        --l->count;
        l->keys[l->count] = kInfKey;
        sync_router(cur->router, cur->keys);
        sync_router(l->router, l->keys);
        parent->keys[idx - 1] = cur->keys[0];
        sync_router(parent->router, parent->keys);
        return nullptr;
      }
      // Merge cur into left.
      std::copy(cur->keys, cur->keys + cur->count, l->keys + l->count);
      std::copy(cur->vals, cur->vals + cur->count, l->vals + l->count);
      l->count += cur->count;
      sync_router(l->router, l->keys);
      l->next = cur->next;
      for (int i = idx - 1; i < parent->count - 1; ++i) {
        parent->keys[i] = parent->keys[i + 1];
        parent->child[i + 1] = parent->child[i + 2];
      }
      --parent->count;
      parent->keys[parent->count] = kInfKey;
      sync_router(parent->router, parent->keys);
      cur->latch.unlock();  // held by the caller; released before delete
      delete cur;
      return cur;
    }
    auto* r = static_cast<Leaf*>(right);
    std::unique_lock sib(r->latch);
    if (r->count > kMinEntries) {
      cur->keys[cur->count] = r->keys[0];
      cur->vals[cur->count] = r->vals[0];
      ++cur->count;
      for (int i = 0; i < r->count - 1; ++i) {
        r->keys[i] = r->keys[i + 1];
        r->vals[i] = r->vals[i + 1];
      }
      --r->count;
      r->keys[r->count] = kInfKey;
      sync_router(cur->router, cur->keys);
      sync_router(r->router, r->keys);
      parent->keys[idx] = r->keys[0];
      sync_router(parent->router, parent->keys);
      return nullptr;
    }
    // Merge right into cur.
    std::copy(r->keys, r->keys + r->count, cur->keys + cur->count);
    std::copy(r->vals, r->vals + r->count, cur->vals + cur->count);
    cur->count += r->count;
    sync_router(cur->router, cur->keys);
    cur->next = r->next;
    for (int i = idx; i < parent->count - 1; ++i) {
      parent->keys[i] = parent->keys[i + 1];
      parent->child[i + 1] = parent->child[i + 2];
    }
    --parent->count;
    parent->keys[parent->count] = kInfKey;
    sync_router(parent->router, parent->keys);
    sib.unlock();
    delete r;
    return r;
  }

  auto* cur = static_cast<Inner*>(node);
  if (left != nullptr) {
    auto* l = static_cast<Inner*>(left);
    std::lock_guard sib(l->latch);
    if (l->count > kMinEntries) {
      // Rotate right through the parent separator.
      cur->child[cur->count + 1] = cur->child[cur->count];
      for (int i = cur->count; i > 0; --i) {
        cur->keys[i] = cur->keys[i - 1];
        cur->child[i] = cur->child[i - 1];
      }
      cur->keys[0] = parent->keys[idx - 1];
      cur->child[0] = l->child[l->count];
      ++cur->count;
      parent->keys[idx - 1] = l->keys[l->count - 1];
      --l->count;
      l->keys[l->count] = kInfKey;
      sync_router(cur->router, cur->keys);
      sync_router(l->router, l->keys);
      sync_router(parent->router, parent->keys);
      return nullptr;
    }
    // Merge cur into left through the separator.
    l->keys[l->count] = parent->keys[idx - 1];
    std::copy(cur->keys, cur->keys + cur->count, l->keys + l->count + 1);
    std::copy(cur->child, cur->child + cur->count + 1,
              l->child + l->count + 1);
    l->count += cur->count + 1;
    sync_router(l->router, l->keys);
    for (int i = idx - 1; i < parent->count - 1; ++i) {
      parent->keys[i] = parent->keys[i + 1];
      parent->child[i + 1] = parent->child[i + 2];
    }
    --parent->count;
    parent->keys[parent->count] = kInfKey;
    sync_router(parent->router, parent->keys);
    cur->latch.unlock();
    delete cur;
    return cur;
  }
  auto* r = static_cast<Inner*>(right);
  std::unique_lock sib(r->latch);
  if (r->count > kMinEntries) {
    // Rotate left through the parent separator.
    cur->keys[cur->count] = parent->keys[idx];
    cur->child[cur->count + 1] = r->child[0];
    ++cur->count;
    parent->keys[idx] = r->keys[0];
    for (int i = 0; i < r->count - 1; ++i) {
      r->keys[i] = r->keys[i + 1];
      r->child[i] = r->child[i + 1];
    }
    r->child[r->count - 1] = r->child[r->count];
    --r->count;
    r->keys[r->count] = kInfKey;
    sync_router(cur->router, cur->keys);
    sync_router(r->router, r->keys);
    sync_router(parent->router, parent->keys);
    return nullptr;
  }
  // Merge right into cur through the separator.
  cur->keys[cur->count] = parent->keys[idx];
  std::copy(r->keys, r->keys + r->count, cur->keys + cur->count + 1);
  std::copy(r->child, r->child + r->count + 1, cur->child + cur->count + 1);
  cur->count += r->count + 1;
  sync_router(cur->router, cur->keys);
  for (int i = idx; i < parent->count - 1; ++i) {
    parent->keys[i] = parent->keys[i + 1];
    parent->child[i + 1] = parent->child[i + 2];
  }
  --parent->count;
  parent->keys[parent->count] = kInfKey;
  sync_router(parent->router, parent->keys);
  sib.unlock();
  delete r;
  return r;
}

void ConcurrentBPlusTree::for_each(
    const std::function<void(Key, Value)>& fn) const {
  for_each<const std::function<void(Key, Value)>&>(fn);
}

std::uint64_t ConcurrentBPlusTree::digest() const {
  std::uint64_t h = util::kFoldSeed;
  for_each([&h](Key k, Value v) { h = util::fold_kv(h, k, v); });
  return h;
}

int ConcurrentBPlusTree::height_unlocked() const {
  int h = 1;
  Node* node = root_;
  while (!node->leaf) {
    node = static_cast<Inner*>(node)->child[0];
    ++h;
  }
  return h;
}

bool ConcurrentBPlusTree::validate() const {
  if (!validate_rec(root_, 1, height_unlocked(), std::nullopt, std::nullopt)) {
    return false;
  }
  std::size_t seen = 0;
  std::optional<Key> prev;
  bool ok = true;
  for_each([&](Key k, Value) {
    if (prev && *prev >= k) ok = false;
    prev = k;
    ++seen;
  });
  return ok && seen == size();
}

bool ConcurrentBPlusTree::validate_rec(const Node* node, int depth,
                                       int leaf_depth, std::optional<Key> lo,
                                       std::optional<Key> hi) const {
  const bool is_root = node == root_;
  if (node->leaf) {
    if (depth != leaf_depth) return false;
    auto* leaf = static_cast<const Leaf*>(node);
    if (!is_root && leaf->count < kMinEntries) return false;
    if (leaf->count > kMaxEntries) return false;
    if (!layout_ok(leaf)) return false;
    for (int i = 0; i < leaf->count; ++i) {
      if (i > 0 && leaf->keys[i - 1] >= leaf->keys[i]) return false;
      if (lo && leaf->keys[i] < *lo) return false;
      if (hi && leaf->keys[i] >= *hi) return false;
    }
    return true;
  }
  auto* inner = static_cast<const Inner*>(node);
  if (!is_root && inner->count < kMinEntries) return false;
  if (is_root && inner->count < 1) return false;
  if (inner->count > kMaxEntries) return false;
  if (!layout_ok(inner)) return false;
  for (int i = 0; i < inner->count; ++i) {
    if (i > 0 && inner->keys[i - 1] >= inner->keys[i]) return false;
  }
  for (int i = 0; i <= inner->count; ++i) {
    std::optional<Key> clo =
        i == 0 ? lo : std::optional<Key>(inner->keys[i - 1]);
    std::optional<Key> chi =
        i == inner->count ? hi : std::optional<Key>(inner->keys[i]);
    if (!validate_rec(inner->child[i], depth + 1, leaf_depth, clo, chi)) {
      return false;
    }
  }
  return true;
}

}  // namespace psmr::kvstore
