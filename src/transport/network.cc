#include "transport/network.h"

#include "util/clock.h"

namespace psmr::transport {

Network::Network() : pacer_([this] { pacer_loop(); }) {}

Network::~Network() {
  shutdown();
  {
    std::lock_guard lock(delay_mu_);
    shutdown_ = true;
    delay_cv_.notify_all();
  }
  if (pacer_.joinable()) pacer_.join();
}

std::pair<NodeId, std::shared_ptr<Mailbox>> Network::register_node() {
  std::lock_guard lock(mu_);
  NodeId id = next_id_++;
  auto mailbox = std::make_shared<Mailbox>();
  nodes_.emplace(id, mailbox);
  return {id, std::move(mailbox)};
}

bool Network::send(Message msg) {
  if (shutdown_) return false;
  {
    std::lock_guard lock(mu_);
    if (disconnected_.contains(msg.from) || disconnected_.contains(msg.to)) {
      return false;
    }
  }
  double drop_p = drop_probability_.load(std::memory_order_relaxed);
  if (drop_p > 0.0) {
    std::lock_guard lock(drop_rng_mu_);
    if (drop_rng_.chance(drop_p)) {
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);

  std::int64_t delay = delay_us_.load(std::memory_order_relaxed);
  if (delay <= 0) return deliver(std::move(msg));

  std::lock_guard lock(delay_mu_);
  delayed_.push(Delayed{util::now_us() + delay, delay_seq_++, std::move(msg)});
  delay_cv_.notify_one();
  return true;
}

bool Network::send(NodeId from, NodeId to, std::uint16_t type,
                   util::Payload payload) {
  return send(Message{from, to, type, std::move(payload)});
}

bool Network::deliver(Message&& msg) {
  std::shared_ptr<Mailbox> mailbox;
  {
    std::lock_guard lock(mu_);
    auto it = nodes_.find(msg.to);
    if (it == nodes_.end()) return false;
    if (disconnected_.contains(msg.to)) return false;
    mailbox = it->second;
  }
  return mailbox->push(std::move(msg));
}

void Network::disconnect(NodeId node) {
  std::lock_guard lock(mu_);
  disconnected_.insert(node);
}

void Network::reconnect(NodeId node) {
  std::lock_guard lock(mu_);
  disconnected_.erase(node);
}

bool Network::connected(NodeId node) const {
  std::lock_guard lock(mu_);
  return !disconnected_.contains(node);
}

void Network::set_drop_probability(double p) { drop_probability_ = p; }

void Network::set_delay_us(std::int64_t delay_us) { delay_us_ = delay_us; }

NetworkStats Network::stats() const {
  return NetworkStats{messages_sent_.load(), messages_dropped_.load(),
                      bytes_sent_.load()};
}

void Network::shutdown() {
  std::vector<std::shared_ptr<Mailbox>> boxes;
  {
    std::lock_guard lock(mu_);
    if (shutdown_.exchange(true)) return;
    boxes.reserve(nodes_.size());
    for (auto& [id, box] : nodes_) boxes.push_back(box);
  }
  for (auto& box : boxes) box->close();
  delay_cv_.notify_all();
}

void Network::pacer_loop() {
  std::unique_lock lock(delay_mu_);
  while (!shutdown_) {
    if (delayed_.empty()) {
      delay_cv_.wait(lock, [&] { return shutdown_ || !delayed_.empty(); });
      continue;
    }
    std::int64_t now = util::now_us();
    const Delayed& head = delayed_.top();
    if (head.release_at_us <= now) {
      Message msg = std::move(const_cast<Delayed&>(head).msg);
      delayed_.pop();
      lock.unlock();
      deliver(std::move(msg));
      lock.lock();
    } else {
      delay_cv_.wait_for(
          lock, std::chrono::microseconds(head.release_at_us - now));
    }
  }
}

}  // namespace psmr::transport
