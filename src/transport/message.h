// Message envelope for the in-process network.
//
// The paper's system model (Section II) assumes message passing with
// one-to-one send/receive plus an atomic multicast library layered on top.
// We reproduce that: every process (client proxy, Paxos coordinator,
// acceptor, replica learner sink) is a Node with a mailbox; `type` selects
// the handler and `payload` carries a schema-private body (util::Writer
// format).  Type ranges are partitioned per layer so a single mailbox can
// serve several protocols.
#pragma once

#include <cstdint>

#include "util/buffer_pool.h"
#include "util/bytes.h"

namespace psmr::transport {

/// Identifies a mailbox within one Network.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = 0xffffffffu;

/// Message type tags.  Layers own disjoint ranges.
enum MsgType : std::uint16_t {
  // Paxos (ring) protocol: 1..19
  kPaxosSubmit = 1,     // client/proxy -> coordinator: command bytes
  kPaxosPrepare = 2,    // coordinator -> acceptor
  kPaxosPromise = 3,    // acceptor -> coordinator
  kPaxosAccept = 4,     // coordinator -> acceptor
  kPaxosAccepted = 5,   // acceptor -> coordinator
  kPaxosNack = 6,       // acceptor -> coordinator: ballot too low
  kPaxosDecide = 7,     // coordinator -> learner: decided batch
  kPaxosCatchupReq = 8, // learner -> acceptor: re-learn decided instances
  kPaxosCatchupRep = 9, // acceptor -> learner
  kPaxosSubmitMany = 10, // client/proxy -> coordinator: coalesced commands
  kPaxosCheckpointAck = 11, // replica -> acceptor: checkpoint covers < inst
  // SMR layer: 30..39
  kSmrResponse = 30,    // replica worker -> client proxy
  kSmrDirect = 31,      // client -> unreplicated server (no-rep / lock server)
  kSmrResponseMany = 32, // replica -> client proxy: coalesced responses
  kSmrRejected = 33,     // admission control -> client proxy: command shed
  kSmrSnapshotReq = 34,  // recovering replica -> peer: latest checkpoint?
  kSmrSnapshotRep = 35,  // peer -> recovering replica: u8 has, bytes frame
};

/// Envelope delivered to a Node's mailbox.
///
/// `payload` is a zero-copy handle (view + shared pool block, see
/// util/buffer_pool.h): copying a Message for fan-out bumps a refcount
/// instead of cloning the bytes, and a util::Buffer passed where a Payload
/// is expected converts implicitly (one copy into the pool, at the
/// boundary).
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint16_t type = 0;
  util::Payload payload;
};

}  // namespace psmr::transport
