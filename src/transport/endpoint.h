// Threaded actor base: one thread draining one mailbox.
//
// Paxos coordinators and acceptors are Endpoints.  Replica worker threads
// are NOT — they consume ordered command streams through the multicast
// merge deliverer instead (see multicast/merge.h), which is exactly the
// architectural point of P-SMR: delivery happens inside the worker, not in a
// central dispatcher.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "transport/network.h"

namespace psmr::transport {

/// Base class for message-driven processes.  Subclasses implement
/// handle(msg); start() spawns the drain thread; stop() closes the mailbox
/// and joins.  Destruction stops the actor (RAII).
class Endpoint {
 public:
  Endpoint(Network& net, std::string name)
      : net_(net), name_(std::move(name)) {
    auto [id, box] = net.register_node();
    id_ = id;
    mailbox_ = std::move(box);
  }

  virtual ~Endpoint() { stop(); }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Begins draining the mailbox on a dedicated thread.
  void start() {
    if (thread_.joinable()) return;
    thread_ = std::thread([this] { run(); });
  }

  /// Closes the mailbox and joins the drain thread.  Idempotent.
  void stop() {
    mailbox_->close();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const { return net_; }

 protected:
  /// Processes one message.  Runs on the endpoint's own thread only.
  virtual void handle(Message msg) = 0;

  /// If a subclass returns a duration, on_tick() fires at least that often
  /// (between messages and under load alike).  Coordinators use this for
  /// batch sealing, skip generation and retransmission timers.
  [[nodiscard]] virtual std::optional<std::chrono::microseconds>
  tick_interval() const {
    return std::nullopt;
  }
  virtual void on_tick() {}

  /// Sends from this endpoint.  Accepts a util::Payload (zero-copy share)
  /// or, via implicit conversion, a util::Buffer.
  bool send(NodeId to, std::uint16_t type, util::Payload payload) {
    return net_.send(id_, to, type, std::move(payload));
  }

 private:
  void run() {
    const auto interval = tick_interval();
    if (!interval) {
      while (auto msg = mailbox_->pop()) handle(std::move(*msg));
      return;
    }
    auto next_tick = std::chrono::steady_clock::now() + *interval;
    while (true) {
      auto now = std::chrono::steady_clock::now();
      if (now >= next_tick) {
        on_tick();
        next_tick = now + *interval;
      }
      auto msg = mailbox_->pop_for(next_tick - now);
      if (msg) {
        handle(std::move(*msg));
      } else if (mailbox_->closed() && mailbox_->empty()) {
        return;
      }
    }
  }

  Network& net_;
  std::string name_;
  NodeId id_ = kNoNode;
  std::shared_ptr<Mailbox> mailbox_;
  std::thread thread_;
};

}  // namespace psmr::transport
