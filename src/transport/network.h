// In-process message network.
//
// Stands in for the paper's cluster interconnect (Section VII-B: gigabit
// switches, two NICs per node).  Every logical process registers a Node and
// receives messages through a blocking mailbox; send() is asynchronous and
// FIFO per sender→receiver pair, like TCP.  For protocol testing the network
// can drop messages probabilistically, disconnect nodes (crash simulation),
// and delay delivery through a timer wheel — Paxos must stay safe under all
// of these, and the tests exercise exactly that.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "transport/message.h"
#include "util/queue.h"
#include "util/rng.h"

namespace psmr::transport {

/// A registered node's receive side.
using Mailbox = util::BlockingQueue<Message>;

/// Aggregate traffic counters, readable while the network runs.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
};

/// In-process network connecting Nodes by NodeId.
///
/// Thread-safe.  Delivery is FIFO per (sender, receiver) pair when no delay
/// is configured; with a delay, messages are released in timestamp order by
/// a background pacer thread (still FIFO per pair because the delay is
/// constant).
class Network {
 public:
  Network();
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a new node; the returned mailbox is owned jointly by the
  /// caller and the network (shared_ptr) so either side may outlive the
  /// other during shutdown.
  std::pair<NodeId, std::shared_ptr<Mailbox>> register_node();

  /// Sends a message to `msg.to`.  Returns false if the destination is
  /// unknown, disconnected, or the message was dropped by fault injection.
  bool send(Message msg);

  /// Convenience overload building the envelope.  Payload converts
  /// implicitly from util::Buffer (copied into a pool block) and is shared,
  /// not cloned, when callers fan the same bytes out to several nodes.
  bool send(NodeId from, NodeId to, std::uint16_t type, util::Payload payload);

  /// Crash-simulation: a disconnected node's mailbox receives nothing and
  /// its sends are suppressed, until reconnect().
  void disconnect(NodeId node);
  void reconnect(NodeId node);
  [[nodiscard]] bool connected(NodeId node) const;

  /// Probability in [0,1] that any given message is silently dropped.
  void set_drop_probability(double p);

  /// Constant extra delivery latency applied to every message.
  void set_delay_us(std::int64_t delay_us);

  [[nodiscard]] NetworkStats stats() const;

  /// Closes all mailboxes; consumers drain and exit their loops.
  void shutdown();

 private:
  void pacer_loop();
  bool deliver(Message&& msg);

  mutable std::mutex mu_;
  std::unordered_map<NodeId, std::shared_ptr<Mailbox>> nodes_;
  std::unordered_set<NodeId> disconnected_;
  NodeId next_id_ = 1;

  std::atomic<double> drop_probability_{0.0};
  std::atomic<std::int64_t> delay_us_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<bool> shutdown_{false};

  util::SplitMix64 drop_rng_{0xdeadbeef};
  std::mutex drop_rng_mu_;

  // Delayed delivery machinery (only active when delay_us_ > 0).
  struct Delayed {
    std::int64_t release_at_us;
    std::uint64_t seq;
    Message msg;
    bool operator>(const Delayed& o) const {
      return release_at_us != o.release_at_us
                 ? release_at_us > o.release_at_us
                 : seq > o.seq;
    }
  };
  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> delayed_;
  std::uint64_t delay_seq_ = 0;
  std::thread pacer_;
};

}  // namespace psmr::transport
