#include "smr/submit_spooler.h"

namespace psmr::smr {

SubmitSpooler::SubmitSpooler(multicast::Bus& bus, SubmitSpoolerOptions opt)
    : bus_(bus), opt_(opt) {
  spools_.resize(bus_.num_rings());
  std::lock_guard lock(mu_);
  for (auto& s : spools_) reset_locked(s);
}

void SubmitSpooler::reset_locked(Spool& s) {
  // Size the frame for a full burst up front so appends never grow; the
  // block comes back from the pool's free list once the flushed frame has
  // drained through the coordinator.
  s.w = util::PayloadWriter(opt_.max_bytes);
  s.w.u32(0);  // count slot, patched at flush
  s.count = 0;
}

bool SubmitSpooler::spool(transport::NodeId from, const Command& c) {
  const std::size_t ring = bus_.ring_index_for(c.groups);
  std::lock_guard lock(mu_);
  Spool& s = spools_[ring];
  // kPaxosSubmitMany entry: u32 length prefix + the command envelope,
  // marshaled straight into the pooled frame.
  s.w.u32(static_cast<std::uint32_t>(c.encoded_size()));
  c.encode_into(s.w);
  ++s.count;
  ++stats_.spooled_commands;
  if (s.count >= opt_.max_commands) {
    return flush_locked(ring, from, FlushReason::kCount);
  }
  if (s.w.size() >= opt_.max_bytes) {
    return flush_locked(ring, from, FlushReason::kBytes);
  }
  return true;
}

void SubmitSpooler::flush_all(transport::NodeId from, bool poll_entry) {
  std::lock_guard lock(mu_);
  for (std::size_t ring = 0; ring < spools_.size(); ++ring) {
    if (spools_[ring].count > 0) {
      flush_locked(ring, from,
                   poll_entry ? FlushReason::kPoll : FlushReason::kBytes);
    }
  }
}

bool SubmitSpooler::flush_locked(std::size_t ring, transport::NodeId from,
                                 FlushReason reason) {
  Spool& s = spools_[ring];
  const std::size_t count = s.count;
  const std::size_t bytes = s.w.size();
  s.w.patch_u32(0, static_cast<std::uint32_t>(count));
  util::Payload frame = s.w.take();
  reset_locked(s);

  ++stats_.flushes;
  stats_.flushed_commands += count;
  stats_.flushed_bytes += bytes;
  switch (reason) {
    case FlushReason::kCount: ++stats_.flush_on_count; break;
    case FlushReason::kBytes: ++stats_.flush_on_bytes; break;
    case FlushReason::kPoll: ++stats_.flush_on_poll; break;
  }
  if (!bus_.submit_encoded(ring, from, std::move(frame), count)) {
    stats_.failed_flush_commands += count;
    return false;
  }
  return true;
}

}  // namespace psmr::smr
