// Deployment: one-call construction of a complete replicated system.
//
// Builds the full component graph of the paper's evaluation for any of the
// five architectures (Section VI):
//   * SMR         — atomic multicast (1 group), f+1 replicas, 1 executor;
//   * sP-SMR      — atomic multicast (1 group), f+1 replicas, scheduler + k
//                   workers;
//   * P-SMR       — atomic multicast (k groups + g_all), f+1 replicas, k
//                   delivering workers (Algorithm 1);
//   * no-rep      — a single scheduler+workers server, no replication;
//   * lock server — BDB-style: lock-synchronized service, one handler
//                   thread per client group, no scheduler, no replication.
// Tests, benches and examples use this instead of hand-wiring.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "multicast/amcast.h"
#include "smr/client.h"
#include "smr/lockserver.h"
#include "smr/norep.h"
#include "smr/replica_psmr.h"
#include "smr/replica_spsmr.h"

namespace psmr::smr {

enum class Mode { kSmr, kSpsmr, kPsmr, kNoRep, kLockServer };

[[nodiscard]] constexpr const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kSmr: return "SMR";
    case Mode::kSpsmr: return "sP-SMR";
    case Mode::kPsmr: return "P-SMR";
    case Mode::kNoRep: return "no-rep";
    case Mode::kLockServer: return "BDB";
  }
  return "?";
}

struct DeploymentConfig {
  Mode mode = Mode::kPsmr;
  /// Worker threads per replica (the multiprogramming level).  For SMR this
  /// is forced to 1.
  std::size_t mpl = 8;
  /// Replica count for the replicated modes (paper: 2, i.e. f = 1).
  std::size_t replicas = 2;
  /// Ring tuning (batching, skips, retransmission).
  paxos::RingConfig ring;
  /// Submit-side coalescing on the multicast bus (see
  /// BusConfig::coalesce_submits).  Ignored by unreplicated modes.
  bool coalesce_submits = true;
  /// Response-side coalescing: replica workers spool the replies of an
  /// execution batch per destination proxy and flush them as one
  /// kSmrResponseMany frame (see response_coalescer.h).  Off restores one
  /// wire message per reply.  Ignored by the lock server, whose handlers
  /// reply inline per command.
  bool coalesce_responses = true;
  /// Client-side submit pipelining: client proxies of the replicated modes
  /// share one SubmitSpooler that marshals submissions straight into pooled
  /// per-ring SUBMIT_MANY frames and flushes them as bursts (see
  /// submit_spooler.h).  `pipeline_submits.enabled = false` restores one
  /// Bus::multicast per command.  Ignored by unreplicated modes.
  SubmitSpoolerOptions pipeline_submits;
  /// Replica-side execution batching: maximum run of consecutive
  /// independent commands handed to the service as one execute_batch call
  /// (see service.h's batch contract).  1 restores one-command-at-a-time
  /// execution; ignored by the lock server, which has no delivery stream
  /// to accumulate from.
  std::size_t exec_run_length = 16;
  /// Builds one fresh service instance (per replica).
  std::function<std::unique_ptr<Service>()> service_factory;
  /// Builds the shared thread-safe service (lock-server mode only); when
  /// unset, the lock server wraps service_factory() in a LockedService.
  std::function<std::shared_ptr<Service>()> shared_service_factory;
  /// Builds the C-G function for a given multiprogramming level.  Used with
  /// k = mpl for P-SMR clients and for the sP-SMR/no-rep scheduler, and with
  /// k = 1 for SMR/sP-SMR clients.
  std::function<std::shared_ptr<const CGFunction>(std::size_t)> cg_factory;
  /// Overload admission control at the proxy/coordinator boundary (see
  /// admission.h).  When enabled, every client proxy of a replicated mode
  /// shares one controller whose occupancy signal is the bus's aggregate
  /// CoordinatorStats; shed commands fail fast as kSmrRejected completions.
  /// Unreplicated modes (no-rep, lock server) have no multicast rings to
  /// protect and ignore it.
  AdmissionConfig admission;
  /// Checkpointing / log truncation / recovery (SMR and P-SMR modes; see
  /// replica_psmr.h and smr/snapshot.h).  `replica_id` is assigned per
  /// replica by the deployment, so leave it at its default.  When enabled
  /// and `ring.checkpoint_ackers` was left at 0, the rings' truncation
  /// quorum is set to the full replica count: acceptors drop a decided
  /// prefix only once every replica has covered it with a checkpoint.
  CheckpointOptions checkpoint;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig cfg);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  void start();
  void stop();

  /// Creates a client proxy bound to this deployment (thread-compatible:
  /// each client belongs to one driver thread).
  std::unique_ptr<ClientProxy> make_client();

  [[nodiscard]] Mode mode() const { return cfg_.mode; }
  [[nodiscard]] transport::Network& network() { return net_; }
  /// Null in unreplicated modes.
  [[nodiscard]] multicast::Bus* bus() { return bus_.get(); }

  /// Aggregate batching/consensus counters across every ring of the bus
  /// (zeros for unreplicated modes).  Tests and benches assert on these —
  /// e.g. mean_commands_per_batch() — rather than eyeballing throughput.
  [[nodiscard]] paxos::CoordinatorStats multicast_stats() const;

  /// Execution-batching counters of service instance i (batches executed,
  /// commands per batch, batched-read share) — the replica-side analogue
  /// of multicast_stats().
  [[nodiscard]] ExecStats exec_stats(std::size_t i) const;
  /// Aggregate exec_stats over every service instance.
  [[nodiscard]] ExecStats exec_stats() const;

  /// Reply-path wire counters of replica i (messages, responses carried,
  /// flush reasons) — how execution batches reached the clients.  Zeros for
  /// the lock server, which replies inline per command.
  [[nodiscard]] ResponseStats response_stats(std::size_t i) const;
  /// Aggregate response_stats over every replica.
  [[nodiscard]] ResponseStats response_stats() const;

  /// Submit-pipelining counters of the shared spooler (zeros when
  /// pipelining is disabled or the mode is unreplicated).
  [[nodiscard]] SpoolStats spool_stats() const;
  /// The shared spooler (nullptr when pipelining is disabled or the mode is
  /// unreplicated).
  [[nodiscard]] SubmitSpooler* spooler() { return spooler_.get(); }

  /// Admission counters (zeros when admission is disabled or the mode is
  /// unreplicated).
  [[nodiscard]] AdmissionStats admission_stats() const;
  /// The shared controller (nullptr when admission is disabled).
  [[nodiscard]] AdmissionController* admission() { return admission_.get(); }

  /// Test hook: replica i in SMR/P-SMR mode (nullptr in other modes, or
  /// while replica i is crashed).  Exposes the per-worker merge-stream
  /// positions for progress assertions.  The pointer stays valid until the
  /// replica is crashed or the deployment destroyed — don't cache it across
  /// a crash_replica/restart_replica cycle.
  [[nodiscard]] PsmrReplica* psmr_replica(std::size_t i) const {
    std::lock_guard lock(replicas_mu_);
    return i < psmr_.size() ? psmr_[i].get() : nullptr;
  }

  /// Number of service instances (replicas, or 1 for unreplicated modes).
  [[nodiscard]] std::size_t num_services() const;
  /// Commands executed by service instance i (0 while crashed).
  [[nodiscard]] std::uint64_t executed(std::size_t i) const;
  /// State digest of service instance i (0 while crashed).
  [[nodiscard]] std::uint64_t state_digest(std::size_t i) const;

  // -- Checkpointing & recovery (SMR and P-SMR modes) ---------------------

  /// Multicasts a checkpoint marker through any live replica; every replica
  /// cuts a checkpoint when it delivers.  False when the mode has no
  /// checkpoint-capable replicas, checkpointing is disabled, or no replica
  /// is alive.
  bool trigger_checkpoint();

  /// Checkpoints completed by replica i (0 while crashed / other modes).
  [[nodiscard]] std::uint64_t checkpoints_taken(std::size_t i) const;

  /// Crash-simulates replica i: stops its workers and destroys it (its
  /// service state is lost; its slot reads as nullptr / zero digests).  The
  /// ring acceptors keep its last checkpoint ack, so log truncation cannot
  /// outrun the crashed replica — restart_replica always finds the suffix
  /// it needs.  No-op when i is out of range or already crashed.
  void crash_replica(std::size_t i);

  /// Restarts a crashed replica: fetches the latest snapshot frame from a
  /// live peer (kSmrSnapshotReq), installs it, resubscribes the workers at
  /// the frame's recorded stream positions, and lets the ring catch-up
  /// protocol replay the suffix.  Falls back to a from-scratch replay of
  /// the full log when no peer has a checkpoint (only possible when no
  /// checkpoint was ever cut, hence nothing was truncated).  Returns false
  /// when i is out of range, not crashed, or the mode has no psmr replicas.
  bool restart_replica(std::size_t i);

 private:
  [[nodiscard]] std::unique_ptr<PsmrReplica> build_psmr_replica(
      std::size_t r, const SnapshotFrame* restore);
  /// Fetches the newest encoded snapshot frame held by any live replica
  /// other than `skip` (nullopt when none).
  [[nodiscard]] std::optional<SnapshotFrame> fetch_peer_snapshot(
      std::size_t skip);

  DeploymentConfig cfg_;
  transport::Network net_;
  std::unique_ptr<multicast::Bus> bus_;
  std::shared_ptr<const CGFunction> client_cg_;
  std::shared_ptr<AdmissionController> admission_;
  std::unique_ptr<SubmitSpooler> spooler_;

  /// Guards the psmr_ slot pointers, which crash_replica/restart_replica
  /// swap while monitor threads read the per-replica accessors.
  mutable std::mutex replicas_mu_;
  std::vector<std::unique_ptr<PsmrReplica>> psmr_;
  std::vector<std::unique_ptr<SpsmrReplica>> spsmr_;
  std::unique_ptr<NoRepServer> norep_;
  std::unique_ptr<LockServer> lock_;
  std::shared_ptr<Service> lock_service_;

  ClientId next_client_ = 1;
  std::size_t next_handler_ = 0;
  bool started_ = false;
};

}  // namespace psmr::smr
