// Lock-based multithreaded server — the Berkeley DB stand-in (paper
// Section VI-B).
//
// "Differently from P-SMR, sP-SMR and no-rep, BDB uses locks to synchronize
// the concurrent execution of commands.  As a result, there is no scheduler
// interposed between clients and server threads: each server thread
// receives requests through a separate socket, executes them, and responds
// to clients."  Here each handler thread owns a mailbox (the "socket");
// clients are statically assigned to handlers; all handlers execute against
// one shared, internally synchronized service (e.g. the latch-crabbing
// B+-tree in kvstore/concurrent_bptree.h).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "smr/service.h"
#include "transport/endpoint.h"

namespace psmr::smr {

class LockServer {
 public:
  /// `service` must be safe for fully concurrent execute() calls.
  LockServer(transport::Network& net, std::shared_ptr<Service> service,
             std::size_t num_threads);

  LockServer(const LockServer&) = delete;
  LockServer& operator=(const LockServer&) = delete;

  void start();
  void stop();

  /// Node id of handler thread i — give each client one of these as its
  /// direct-mode server ("separate socket per server thread").
  [[nodiscard]] transport::NodeId handler_node(std::size_t i) const {
    return handlers_.at(i)->id();
  }
  [[nodiscard]] std::size_t num_threads() const { return handlers_.size(); }

  [[nodiscard]] std::uint64_t executed() const { return executed_.load(); }
  [[nodiscard]] const Service& service() const { return *service_; }

 private:
  class Handler : public transport::Endpoint {
   public:
    Handler(transport::Network& net, Service& service,
            std::atomic<std::uint64_t>& executed)
        : Endpoint(net, "lockserver-handler"),
          service_(service),
          executed_(executed) {}

   protected:
    void handle(transport::Message msg) override {
      if (msg.type != transport::MsgType::kSmrDirect) return;
      auto cmd = Command::decode(msg.payload);
      if (!cmd) return;
      Response resp;
      resp.client = cmd->client;
      resp.seq = cmd->seq;
      resp.payload = service_.execute(*cmd);
      executed_.fetch_add(1, std::memory_order_relaxed);
      send(cmd->reply_to, transport::MsgType::kSmrResponse, resp.encode());
    }

   private:
    Service& service_;
    std::atomic<std::uint64_t>& executed_;
  };

  std::shared_ptr<Service> service_;
  std::vector<std::unique_ptr<Handler>> handlers_;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace psmr::smr
