// Command and response envelopes — the "requests" of the paper's commodified
// architecture (Section III): a command identifier plus marshaled parameters,
// assembled by the client proxy and re-assembled by server proxies.
//
// The envelope also carries the destination group set γ computed by the
// client-side C-G function.  The paper's Algorithm 1 recomputes γ at the
// server (line 9); carrying it instead is equivalent — real atomic multicast
// APIs deliver the destination set with the message — and it keeps
// randomized C-G functions (the paper's `random(1..k)` for reads)
// well-defined at the replicas.
#pragma once

#include <cstdint>
#include <optional>

#include "multicast/group.h"
#include "transport/message.h"
#include "util/bytes.h"

namespace psmr::smr {

/// Service-level command identifier (one per service operation).
using CommandId = std::uint16_t;

/// Reserved command id: a checkpoint marker multicast to every group, so it
/// lands at one well-defined position of every replica's merged delivery
/// sequence.  Replica proxies intercept it (all workers barrier and snapshot
/// the service state); it never reaches a Service.  Carries client = 0,
/// which no real client uses (deployments assign ClientIds from 1).
inline constexpr CommandId kCheckpointMarker = 0xFFFF;
/// Unique client identity (assigned by the deployment).
using ClientId = std::uint64_t;
/// Per-client monotonically increasing request number.
using Seq = std::uint64_t;

/// A marshaled service invocation travelling through the multicast layer.
struct Command {
  CommandId cmd = 0;
  ClientId client = 0;
  Seq seq = 0;
  /// Node to send the response to (the client proxy's mailbox).
  transport::NodeId reply_to = transport::kNoNode;
  /// Destination groups chosen by the client proxy's C-G function.
  multicast::GroupSet groups;
  /// Marshaled input parameters (service-defined schema).  A zero-copy
  /// handle: a decoded command's params share the delivery frame's pool
  /// block (util::Buffer converts implicitly when building commands).
  util::Payload params;

  /// Exact size of encode()'s output (the envelope is fixed-width).
  [[nodiscard]] std::size_t encoded_size() const {
    return 2 + 8 + 8 + 4 + 8 + 4 + params.size();
  }

  /// Appends encode()'s byte sequence into any Writer-shaped sink — the
  /// submit spooler uses this to marshal commands straight into its pooled
  /// SUBMIT_MANY frame with no intermediate Buffer.
  template <typename W>
  void encode_into(W& w) const {
    w.u16(cmd);
    w.u64(client);
    w.u64(seq);
    w.u32(reply_to);
    w.u64(groups.mask());
    w.bytes(params);
  }

  [[nodiscard]] util::Buffer encode() const {
    util::Writer w;
    encode_into(w);
    return w.take();
  }

  /// Decodes from a Payload; params is a zero-copy subview of `data`'s
  /// block.  A util::Buffer argument converts implicitly (one pool copy).
  static std::optional<Command> decode(const util::Payload& data) {
    try {
      util::Reader r(data);
      Command c;
      c.cmd = r.u16();
      c.client = r.u64();
      c.seq = r.u64();
      c.reply_to = r.u32();
      c.groups = multicast::GroupSet::from_mask(r.u64());
      c.params = data.subview_of(r.bytes_view());
      if (!r.done()) return std::nullopt;
      return c;
    } catch (const util::DecodeError&) {
      return std::nullopt;
    }
  }
};

/// A command's marshaled output, sent one-to-one back to the client proxy.
/// Every replica that executes the command responds; the proxy returns the
/// first response to the application (paper, Algorithm 1 line 4).
struct Response {
  ClientId client = 0;
  Seq seq = 0;
  util::Buffer payload;

  [[nodiscard]] util::Buffer encode() const {
    util::Writer w;
    w.u64(client);
    w.u64(seq);
    w.bytes(payload);
    return w.take();
  }

  static std::optional<Response> decode(std::span<const std::uint8_t> data) {
    try {
      util::Reader r(data);
      Response resp;
      resp.client = r.u64();
      resp.seq = r.u64();
      resp.payload = r.bytes();
      if (!r.done()) return std::nullopt;
      return resp;
    } catch (const util::DecodeError&) {
      return std::nullopt;
    }
  }
};

}  // namespace psmr::smr
