// Shard-aware C-G function — the many-ring refinement of KeyedCg.
//
// KeyedCg satisfies a SAME-KEY dependency by hashing keys to groups, but it
// has no notion of *multi-key* commands: anything without a single key is
// either global (all groups) or spread randomly.  That is correct but
// needlessly conservative once a deployment shards the keyspace across many
// rings — a range scan forced to all 32 groups serializes all 32 workers.
//
// ShardedCg routes every command through one ShardMap:
//   * global commands (structure changers) still go to ALL groups;
//   * single-key commands go to the key's shard — identical partitioning to
//     what every other proxy derives from the same map;
//   * range commands go to exactly the shards their span intersects.  This
//     refines the C-Dep's conservative ALWAYS(scan, update) soundly: under
//     range sharding, every update whose key lies inside the scanned span
//     maps to a covered shard (same map!), so the dependent pair still
//     shares a group; an update outside the span cannot semantically
//     conflict with the scan — updates never restructure, they write one
//     slot the scan does not read.  Under hash sharding a range dissolves
//     into all shards and the conservative behaviour returns.
//   * key-list commands (multi-get) go to the union of their keys' shards,
//     sound under both policies by the same argument;
//   * keyless non-global commands spread pseudo-randomly, as in KeyedCg.
// A multi-shard γ rides g_all and synchronizes only γ's workers (the
// replica's synchronous mode handles arbitrary subsets); when a range or
// key list collapses into one shard the command stays in parallel mode.
#pragma once

#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "multicast/shard.h"
#include "smr/cg.h"

namespace psmr::smr {

/// Extracts the inclusive key range a command reads (std::nullopt when the
/// command is not a range operation).  Service-defined, like KeyFn.
using RangeFn = std::function<
    std::optional<std::pair<std::uint64_t, std::uint64_t>>(const Command&)>;

/// Extracts the key list of a multi-key command (std::nullopt when the
/// command is not one).  Service-defined.
using KeyListFn =
    std::function<std::optional<std::vector<std::uint64_t>>(const Command&)>;

class ShardedCg : public CGFunction {
 public:
  /// Any of `range_of` / `keys_of` may be null when the service has no such
  /// commands.  `global` is the ALWAYS-cover, exactly as for KeyedCg.
  ShardedCg(multicast::ShardMap map, KeyFn key_of,
            std::unordered_set<CommandId> global, RangeFn range_of = nullptr,
            KeyListFn keys_of = nullptr)
      : map_(map),
        key_of_(std::move(key_of)),
        global_(std::move(global)),
        range_of_(std::move(range_of)),
        keys_of_(std::move(keys_of)) {}

  [[nodiscard]] multicast::GroupSet groups(const Command& c) const override {
    const std::size_t k = map_.num_shards();
    if (global_.contains(c.cmd)) return multicast::GroupSet::all(k);
    if (key_of_) {
      if (auto key = key_of_(c)) {
        return multicast::GroupSet::single(map_.group_of(*key));
      }
    }
    if (range_of_) {
      if (auto range = range_of_(c)) {
        auto cover = map_.groups_for_range(range->first, range->second);
        // A vacuous range ([lo > hi], or an empty key list below) still
        // needs one deterministic destination for ordering and replies.
        if (!cover.empty()) return cover;
        return multicast::GroupSet::single(map_.group_of(range->first));
      }
    }
    if (keys_of_) {
      if (auto keys = keys_of_(c)) {
        auto cover = map_.groups_for_keys(*keys);
        if (!cover.empty()) return cover;
        return multicast::GroupSet::single(spread_group(c, k));
      }
    }
    return multicast::GroupSet::single(spread_group(c, k));
  }

  [[nodiscard]] std::size_t mpl() const override { return map_.num_shards(); }

  [[nodiscard]] const multicast::ShardMap& shard_map() const { return map_; }

 private:
  multicast::ShardMap map_;
  KeyFn key_of_;
  std::unordered_set<CommandId> global_;
  RangeFn range_of_;
  KeyListFn keys_of_;
};

}  // namespace psmr::smr
