// Client proxy — paper Figure 1 and Algorithm 1, lines 1–6.
//
// Intercepts service invocations, marshals them into requests, multicasts
// them to the groups chosen by the C-G function, and returns the first
// response received (all replicas produce the same output, so one suffices).
// The application never learns that the service is replicated.
//
// The proxy also supports unreplicated deployments (no-rep and the
// BDB-style lock server): there it sends the request one-to-one to its
// assigned server node instead of multicasting.
//
// Two calling styles:
//   * call()            — synchronous RPC, used by examples and tests;
//   * submit() + poll() — windowed asynchronous pipeline, used by the
//     closed-loop workload driver (the paper's clients keep a window of up
//     to 50 outstanding commands, Section VI-B).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "multicast/amcast.h"
#include "smr/admission.h"
#include "smr/cg.h"
#include "smr/command.h"
#include "smr/submit_spooler.h"
#include "util/clock.h"

namespace psmr::smr {

class ClientProxy {
 public:
  /// Replicated-mode proxy: requests go through the atomic multicast bus.
  /// `admission`, when set, is consulted before every dispatch — a shed
  /// command never reaches the bus; it fails fast as a kSmrRejected
  /// completion instead (see admission.h).
  /// `spooler`, when set, pipelines submissions: submit() marshals the
  /// command straight into the deployment-shared SubmitSpooler's pooled
  /// frame instead of a per-command Bus::multicast; poll() flushes every
  /// spool on entry, before it can block on the mailbox (see
  /// submit_spooler.h).  Retransmissions bypass the spooler — a retry is
  /// rare and latency-bound, not throughput-bound.
  ClientProxy(transport::Network& net, multicast::Bus& bus,
              std::shared_ptr<const CGFunction> cg, ClientId id,
              std::shared_ptr<AdmissionController> admission = nullptr,
              SubmitSpooler* spooler = nullptr);

  /// Direct-mode proxy: requests go one-to-one to `server`.
  ClientProxy(transport::Network& net, transport::NodeId server, ClientId id);

  ClientProxy(const ClientProxy&) = delete;
  ClientProxy& operator=(const ClientProxy&) = delete;

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] transport::NodeId node() const { return node_; }

  /// Synchronous invocation.  Retries the submission every `retry_every`
  /// until `timeout`; returns std::nullopt on timeout or shutdown.
  std::optional<util::Buffer> call(
      CommandId cmd, util::Buffer params,
      std::chrono::microseconds timeout = std::chrono::seconds(10),
      std::chrono::microseconds retry_every = std::chrono::seconds(2));

  /// Asynchronous submission; the returned seq identifies the completion.
  ///
  /// std::nullopt means the command was NOT accepted into the pipeline: the
  /// transport rejected the dispatch (shutdown, disconnected peer).  Nothing
  /// pends in that case — a failed submit can never wedge outstanding().
  /// An admission-shed command, by contrast, IS accepted: it completes
  /// through poll() with Completion::rejected set (fail fast, one loopback
  /// hop), so the caller observes every accepted command exactly once.
  [[nodiscard]] std::optional<Seq> submit(CommandId cmd, util::Buffer params);

  struct Completion {
    Seq seq = 0;
    util::Buffer payload;
    std::int64_t latency_us = 0;
    /// True when admission control shed this command (kSmrRejected); the
    /// payload then carries one byte, the smr::Admit verdict.
    bool rejected = false;
  };

  /// Decodes a rejected Completion's verdict byte (kThrottled on a
  /// malformed payload, which cannot happen for locally produced frames).
  [[nodiscard]] static Admit rejection_verdict(const Completion& done) {
    if (done.payload.size() != 1) return Admit::kThrottled;
    auto v = static_cast<Admit>(done.payload[0]);
    return v == Admit::kShedOverload ? v : Admit::kThrottled;
  }

  /// Waits up to `timeout` for any outstanding command to complete.
  /// Duplicate responses (from the other replicas) are absorbed silently.
  /// A coalesced kSmrResponseMany frame (see response_batch.h) may complete
  /// several commands at once; poll() returns them one per call, draining
  /// the ready queue before touching the mailbox again.
  std::optional<Completion> poll(std::chrono::microseconds timeout);

  /// Commands submitted but not yet returned to the caller (commands whose
  /// response arrived in a coalesced frame but has not been poll()ed yet
  /// still count).
  [[nodiscard]] std::size_t outstanding() const {
    return pending_.size() + ready_.size();
  }

 private:
  bool dispatch(const Command& c);
  /// Matches one decoded response against pending_; completions queue in
  /// ready_, duplicates (other replicas) are absorbed silently.
  void absorb(Response resp, bool rejected = false);

  transport::Network& net_;
  multicast::Bus* bus_ = nullptr;  // null in direct mode
  SubmitSpooler* spooler_ = nullptr;  // null: per-command dispatch
  transport::NodeId server_ = transport::kNoNode;
  std::shared_ptr<const CGFunction> cg_;
  std::shared_ptr<AdmissionController> admission_;
  ClientId id_;
  transport::NodeId node_ = transport::kNoNode;
  std::shared_ptr<transport::Mailbox> mailbox_;
  Seq next_seq_ = 1;

  struct Pending {
    Command command;
    std::int64_t submitted_us;
  };
  std::unordered_map<Seq, Pending> pending_;
  /// Completions decoded but not yet handed to the caller (a multi-response
  /// frame completes several seqs; poll() returns one per call).
  std::deque<Completion> ready_;
};

}  // namespace psmr::smr
