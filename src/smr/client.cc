#include "smr/client.h"

#include "smr/response_batch.h"
#include "util/log.h"

namespace psmr::smr {

ClientProxy::ClientProxy(transport::Network& net, multicast::Bus& bus,
                         std::shared_ptr<const CGFunction> cg, ClientId id,
                         std::shared_ptr<AdmissionController> admission,
                         SubmitSpooler* spooler)
    : net_(net),
      bus_(&bus),
      spooler_(spooler),
      cg_(std::move(cg)),
      admission_(std::move(admission)),
      id_(id) {
  auto [node, box] = net.register_node();
  node_ = node;
  mailbox_ = std::move(box);
}

ClientProxy::ClientProxy(transport::Network& net, transport::NodeId server,
                         ClientId id)
    : net_(net), server_(server), id_(id) {
  auto [node, box] = net.register_node();
  node_ = node;
  mailbox_ = std::move(box);
}

bool ClientProxy::dispatch(const Command& c) {
  if (bus_ != nullptr) {
    return bus_->multicast(node_, c.groups, c.encode());
  }
  return net_.send(node_, server_, transport::MsgType::kSmrDirect, c.encode());
}

std::optional<Seq> ClientProxy::submit(CommandId cmd, util::Buffer params) {
  Command c;
  c.cmd = cmd;
  c.client = id_;
  c.seq = next_seq_++;
  c.reply_to = node_;
  c.params = std::move(params);
  c.groups = cg_ ? cg_->groups(c) : multicast::GroupSet::single(0);
  const Seq seq = c.seq;
  if (admission_) {
    Admit verdict = admission_->admit(id_, util::now_us());
    if (verdict != Admit::kAdmit) {
      // Fail fast: the command never reaches a coordinator.  The rejection
      // rides the normal response path — a kSmrRejected frame looped
      // through our own mailbox — so poll() completes it like any reply
      // and callers observe exactly one completion per accepted command.
      Response r;
      r.client = id_;
      r.seq = seq;
      r.payload = util::Buffer{static_cast<std::uint8_t>(verdict)};
      pending_.emplace(seq, Pending{std::move(c), util::now_us()});
      if (!net_.send(node_, node_, transport::MsgType::kSmrRejected,
                     r.encode())) {
        pending_.erase(seq);  // shutdown race: nothing may pend
        return std::nullopt;
      }
      return seq;
    }
  }
  // Spooled path: marshal straight into the shared pooled SUBMIT_MANY
  // frame — no per-command encode, no per-command bus round-trip.  Falls
  // back to per-command dispatch when spooling is off or in direct mode.
  // The mailbox check keeps the no-wedge contract under shutdown: a spooled
  // command's transport rejection only surfaces at flush time, so refuse
  // up front once our own mailbox (closed by Network::shutdown) is dead.
  const bool accepted = (spooler_ != nullptr && bus_ != nullptr)
                            ? (!mailbox_->closed() && spooler_->spool(node_, c))
                            : dispatch(c);
  if (!accepted) return std::nullopt;  // rejected dispatch must not pend
  pending_.emplace(seq, Pending{std::move(c), util::now_us()});
  return seq;
}

void ClientProxy::absorb(Response resp, bool rejected) {
  auto it = pending_.find(resp.seq);
  if (it == pending_.end()) return;  // duplicate from another replica
  Completion done;
  done.seq = resp.seq;
  done.payload = std::move(resp.payload);
  done.latency_us = util::now_us() - it->second.submitted_us;
  done.rejected = rejected;
  pending_.erase(it);
  ready_.push_back(std::move(done));
}

std::optional<ClientProxy::Completion> ClientProxy::poll(
    std::chrono::microseconds timeout) {
  // Flush-before-wait: push every spooled command of the deployment out
  // before this client can block on its mailbox, so no one waits on a
  // command still parked in a spool.
  if (spooler_ != nullptr) spooler_->flush_all(node_);
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (!ready_.empty()) {
      Completion done = std::move(ready_.front());
      ready_.pop_front();
      return done;
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto msg = mailbox_->pop_for(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
    if (!msg) {
      if (mailbox_->closed()) return std::nullopt;
      continue;
    }
    if (msg->type == transport::MsgType::kSmrResponseMany) {
      auto batch = decode_response_batch(msg->payload);
      if (!batch) {
        PSMR_WARN("client " << id_ << ": malformed multi-response");
        continue;
      }
      for (auto& resp : *batch) absorb(std::move(resp));
    } else {
      auto resp = Response::decode(msg->payload);
      if (!resp) {
        PSMR_WARN("client " << id_ << ": malformed response");
        continue;
      }
      absorb(std::move(*resp),
             msg->type == transport::MsgType::kSmrRejected);
    }
  }
}

std::optional<util::Buffer> ClientProxy::call(
    CommandId cmd, util::Buffer params, std::chrono::microseconds timeout,
    std::chrono::microseconds retry_every) {
  auto submitted = submit(cmd, std::move(params));
  if (!submitted) return std::nullopt;  // transport rejected the dispatch
  Seq seq = *submitted;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  auto next_retry = std::chrono::steady_clock::now() + retry_every;
  while (std::chrono::steady_clock::now() < deadline) {
    auto now = std::chrono::steady_clock::now();
    auto wait = std::min(deadline, next_retry) - now;
    auto done =
        poll(std::chrono::duration_cast<std::chrono::microseconds>(wait));
    if (done && done->seq == seq) {
      if (done->rejected) return std::nullopt;  // admission shed: fail fast
      return std::move(done->payload);
    }
    if (done) continue;  // an older call's completion; keep waiting for ours
    if (mailbox_->closed()) return std::nullopt;
    if (std::chrono::steady_clock::now() >= next_retry) {
      // Retransmit (e.g., the submission raced a coordinator failover).
      auto it = pending_.find(seq);
      if (it != pending_.end()) dispatch(it->second.command);
      next_retry = std::chrono::steady_clock::now() + retry_every;
    }
  }
  pending_.erase(seq);
  return std::nullopt;
}

}  // namespace psmr::smr
