#include "smr/lockserver.h"

namespace psmr::smr {

LockServer::LockServer(transport::Network& net,
                       std::shared_ptr<Service> service,
                       std::size_t num_threads)
    : service_(std::move(service)) {
  for (std::size_t i = 0; i < num_threads; ++i) {
    handlers_.push_back(
        std::make_unique<Handler>(net, *service_, executed_));
  }
}

void LockServer::start() {
  for (auto& h : handlers_) h->start();
}

void LockServer::stop() {
  for (auto& h : handlers_) h->stop();
}

}  // namespace psmr::smr
