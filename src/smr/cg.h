// Command-to-Groups (C-G) functions — paper Section IV-C, "Mapping commands
// to destinations".
//
// A C-G function maps a command id and its input parameters to the set of
// multicast groups the request must be sent to.  It is derived from C-Dep
// and the multiprogramming level k so that independent commands land in
// different groups (concurrency) while any two dependent commands share at
// least one group (synchronization).
//
// The paper presents two concrete C-G constructions, both implemented here:
//   * CoarseCg — from a C-Dep that only distinguishes reads from writes:
//     reads go to one (pseudo-random) group, writes to ALL groups;
//   * KeyedCg — from a per-object C-Dep: commands on object x go to group
//     (x mod k), structure-changing commands to ALL groups.
// Both derive mechanically from a C-Dep via from_cdep().
#pragma once

#include <memory>
#include <unordered_set>
#include <unordered_map>
#include <vector>

#include "multicast/group.h"
#include "smr/cdep.h"
#include "smr/command.h"
#include "util/hash.h"

namespace psmr::smr {

/// Maps a concrete invocation to its destination groups.  Implementations
/// must be deterministic per command instance (same Command → same groups),
/// so retries reach the same destinations; pure functions of
/// (cmd, params, client, seq).
class CGFunction {
 public:
  virtual ~CGFunction() = default;
  [[nodiscard]] virtual multicast::GroupSet groups(const Command& c) const = 0;
  /// The multiprogramming level this function was computed for.  Client and
  /// server proxies must agree on it (paper Section IV-D, Transparency).
  [[nodiscard]] virtual std::size_t mpl() const = 0;
};

/// Pseudo-random but per-command-deterministic group pick, standing in for
/// the paper's `random(1..k)` read placement.
inline multicast::GroupId spread_group(const Command& c, std::size_t k) {
  return static_cast<multicast::GroupId>(
      util::mix64(c.client * 0x9e3779b97f4a7c15ULL + c.seq) % k);
}

/// The paper's first example: commands in `scattered` (reads) go to one
/// pseudo-random group; every other command goes to ALL groups.
class CoarseCg : public CGFunction {
 public:
  CoarseCg(std::size_t k, std::unordered_set<CommandId> scattered)
      : k_(k), scattered_(std::move(scattered)) {}

  [[nodiscard]] multicast::GroupSet groups(const Command& c) const override {
    if (scattered_.contains(c.cmd)) {
      return multicast::GroupSet::single(spread_group(c, k_));
    }
    return multicast::GroupSet::all(k_);
  }
  [[nodiscard]] std::size_t mpl() const override { return k_; }

 private:
  std::size_t k_;
  std::unordered_set<CommandId> scattered_;
};

/// The paper's second example: keyed commands go to group (key mod k);
/// globally dependent commands go to ALL groups; keyless non-global
/// commands are spread pseudo-randomly (read-only helpers).
class KeyedCg : public CGFunction {
 public:
  KeyedCg(std::size_t k, KeyFn key_of, std::unordered_set<CommandId> global)
      : k_(k), key_of_(std::move(key_of)), global_(std::move(global)) {}

  [[nodiscard]] multicast::GroupSet groups(const Command& c) const override {
    if (global_.contains(c.cmd)) return multicast::GroupSet::all(k_);
    if (auto key = key_of_(c)) {
      return multicast::GroupSet::single(
          static_cast<multicast::GroupId>(util::mix64(*key) % k_));
    }
    return multicast::GroupSet::single(spread_group(c, k_));
  }
  [[nodiscard]] std::size_t mpl() const override { return k_; }

 private:
  std::size_t k_;
  KeyFn key_of_;
  std::unordered_set<CommandId> global_;
};

/// Load-aware refinement of KeyedCg — paper Section IV-D: "If heavily
/// accessed objects are known in advance, this information can be used when
/// computing the C-G function so that such objects are assigned to distinct
/// groups."  Keys listed in `hot` are spread round-robin across groups
/// (hot[i] → group i mod k); all other keys hash as in KeyedCg.  Dependent
/// commands still share groups: same key → same group, global commands →
/// all groups.
class HotAwareCg : public CGFunction {
 public:
  HotAwareCg(std::size_t k, KeyFn key_of,
             std::unordered_set<CommandId> global,
             const std::vector<std::uint64_t>& hot)
      : k_(k), inner_(k, key_of, std::move(global)), key_of_(std::move(key_of)) {
    for (std::size_t i = 0; i < hot.size(); ++i) {
      hot_groups_.emplace(hot[i],
                          static_cast<multicast::GroupId>(i % k));
    }
  }

  [[nodiscard]] multicast::GroupSet groups(const Command& c) const override {
    if (auto key = key_of_(c)) {
      auto it = hot_groups_.find(*key);
      if (it != hot_groups_.end()) {
        // Hot key with a pinned group — but only for keyed commands;
        // global ones keep going everywhere (delegate decides).
        auto base = inner_.groups(c);
        if (base.singleton()) return multicast::GroupSet::single(it->second);
        return base;
      }
    }
    return inner_.groups(c);
  }
  [[nodiscard]] std::size_t mpl() const override { return k_; }

 private:
  std::size_t k_;
  KeyedCg inner_;
  KeyFn key_of_;
  std::unordered_map<std::uint64_t, multicast::GroupId> hot_groups_;
};

/// Derives a KeyedCg mechanically from a C-Dep — the "optimization problem"
/// of Section IV-C solved with a standard heuristic.
///
/// An ALWAYS dependency (c, d) must hold for every pair of invocations, so
/// at least one endpoint must be multicast to all groups; the set of global
/// commands is therefore a vertex cover of the ALWAYS graph, and keeping it
/// small maximizes concurrency.  We take (a) every command with a self-edge
/// (it must cover itself), then (b) greedily cover the remaining edges by
/// highest degree.  SAME-KEY dependencies are satisfied by key partitioning
/// (equal keys → equal group).  For the paper's services this reproduces
/// exactly their assignment (insert/delete global, read/update keyed).
inline std::unique_ptr<CGFunction> from_cdep(const CDep& cdep, std::size_t k,
                                             KeyFn key_of,
                                             CommandId max_command_id) {
  auto edges = cdep.always_pairs();
  std::unordered_set<CommandId> global;
  // (a) Self-edges.
  for (auto [a, b] : edges) {
    if (a == b) global.insert(a);
  }
  auto covered = [&](std::pair<CommandId, CommandId> e) {
    return global.contains(e.first) || global.contains(e.second);
  };
  // (b) Greedy cover of whatever remains.  The objective is concurrency,
  // not cover size: a command with SAME-KEY dependencies is keyed by
  // design (its remaining conflicts are satisfied by key partitioning), so
  // it only goes global when no keyless endpoint can cover the edge.
  // Example: a range scan conflicting with updates sends the *scan* to all
  // groups and leaves updates partitioned, even though covering with
  // update would need fewer global commands.
  while (true) {
    std::vector<std::size_t> degree(static_cast<std::size_t>(max_command_id) +
                                    1);
    bool any = false;
    for (auto e : edges) {
      if (covered(e)) continue;
      any = true;
      ++degree[e.first];
      ++degree[e.second];
    }
    if (!any) break;
    CommandId best = 0;
    bool best_keyed = true;
    for (CommandId c = 0; c <= max_command_id; ++c) {
      if (degree[c] == 0) continue;
      const bool keyed = cdep.same_key_degree(c) > 0;
      const bool better = best_keyed != keyed ? !keyed  // keyless first
                                              : degree[c] > degree[best];
      if (degree[best] == 0 || better) {
        best = c;
        best_keyed = keyed;
      }
    }
    global.insert(best);
  }
  return std::make_unique<KeyedCg>(k, std::move(key_of), std::move(global));
}

}  // namespace psmr::smr
