#include "smr/runtime.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/bytes.h"
#include "util/log.h"

namespace psmr::smr {

Deployment::Deployment(DeploymentConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.service_factory) {
    throw std::invalid_argument("Deployment: service_factory is required");
  }
  if (!cfg_.cg_factory && cfg_.mode != Mode::kLockServer) {
    throw std::invalid_argument("Deployment: cg_factory is required");
  }
  if (cfg_.mode == Mode::kSmr) cfg_.mpl = 1;
  if (cfg_.exec_run_length == 0) cfg_.exec_run_length = 1;
  ResponseCoalescerOptions response_opts;
  response_opts.enabled = cfg_.coalesce_responses;
  SchedulerOptions sched_opts;
  sched_opts.run_length = cfg_.exec_run_length;
  sched_opts.responses = response_opts;
  // Truncation quorum: with checkpointing on, default to "every replica has
  // acked" so the log never drops a prefix some replica still needs.
  if (cfg_.checkpoint.enabled && cfg_.ring.checkpoint_ackers == 0) {
    cfg_.ring.checkpoint_ackers = cfg_.replicas;
  }

  switch (cfg_.mode) {
    case Mode::kSmr:
    case Mode::kSpsmr: {
      // Single totally ordered stream.
      multicast::BusConfig bus_cfg;
      bus_cfg.num_groups = 1;
      bus_cfg.ring = cfg_.ring;
      bus_cfg.coalesce_submits = cfg_.coalesce_submits;
      bus_ = std::make_unique<multicast::Bus>(net_, bus_cfg);
      client_cg_ = cfg_.cg_factory(1);
      for (std::size_t r = 0; r < cfg_.replicas; ++r) {
        if (cfg_.mode == Mode::kSmr) {
          psmr_.push_back(build_psmr_replica(r, nullptr));
        } else {
          spsmr_.push_back(std::make_unique<SpsmrReplica>(
              net_, *bus_, cfg_.service_factory(), cfg_.cg_factory(cfg_.mpl),
              cfg_.mpl, "spsmr-replica" + std::to_string(r), sched_opts));
        }
      }
      break;
    }
    case Mode::kPsmr: {
      multicast::BusConfig bus_cfg;
      bus_cfg.num_groups = cfg_.mpl;
      bus_cfg.ring = cfg_.ring;
      bus_cfg.coalesce_submits = cfg_.coalesce_submits;
      bus_ = std::make_unique<multicast::Bus>(net_, bus_cfg);
      client_cg_ = cfg_.cg_factory(cfg_.mpl);
      for (std::size_t r = 0; r < cfg_.replicas; ++r) {
        psmr_.push_back(build_psmr_replica(r, nullptr));
      }
      break;
    }
    case Mode::kNoRep: {
      norep_ = std::make_unique<NoRepServer>(net_, cfg_.service_factory(),
                                             cfg_.cg_factory(cfg_.mpl),
                                             cfg_.mpl, sched_opts);
      break;
    }
    case Mode::kLockServer: {
      lock_service_ = cfg_.shared_service_factory
                          ? cfg_.shared_service_factory()
                          : std::make_shared<LockedService>(
                                cfg_.service_factory());
      lock_ = std::make_unique<LockServer>(net_, lock_service_, cfg_.mpl);
      break;
    }
  }
  if (cfg_.admission.enabled && bus_) {
    auto* bus = bus_.get();  // outlives the controller (both owned here)
    admission_ = std::make_shared<AdmissionController>(
        cfg_.admission, [bus] { return bus->total_stats(); });
  }
  if (cfg_.pipeline_submits.enabled && bus_) {
    spooler_ = std::make_unique<SubmitSpooler>(*bus_, cfg_.pipeline_submits);
  }
}

std::unique_ptr<PsmrReplica> Deployment::build_psmr_replica(
    std::size_t r, const SnapshotFrame* restore) {
  ResponseCoalescerOptions response_opts;
  response_opts.enabled = cfg_.coalesce_responses;
  CheckpointOptions ckpt = cfg_.checkpoint;
  ckpt.replica_id = r;  // stable across restarts: keys the truncation acks
  std::string prefix =
      cfg_.mode == Mode::kSmr ? "smr-replica" : "psmr-replica";
  return std::make_unique<PsmrReplica>(
      net_, *bus_, cfg_.service_factory(), cfg_.mpl,
      prefix + std::to_string(r), cfg_.exec_run_length, response_opts, ckpt,
      restore);
}

Deployment::~Deployment() { stop(); }

void Deployment::start() {
  if (started_) return;
  started_ = true;
  if (bus_) bus_->start();
  for (auto& r : psmr_) {
    if (r) r->start();
  }
  for (auto& r : spsmr_) r->start();
  if (norep_) norep_->start_all();
  if (lock_) lock_->start();
}

void Deployment::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& r : psmr_) {
    if (r) r->stop();
  }
  for (auto& r : spsmr_) r->stop();
  if (norep_) norep_->stop_all();
  if (lock_) lock_->stop();
  if (bus_) bus_->stop();
  net_.shutdown();
}

bool Deployment::trigger_checkpoint() {
  std::lock_guard lock(replicas_mu_);
  for (auto& r : psmr_) {
    if (r) return r->trigger_checkpoint();
  }
  return false;
}

std::uint64_t Deployment::checkpoints_taken(std::size_t i) const {
  std::lock_guard lock(replicas_mu_);
  if (i >= psmr_.size() || !psmr_[i]) return 0;
  return psmr_[i]->checkpoints_taken();
}

void Deployment::crash_replica(std::size_t i) {
  std::unique_ptr<PsmrReplica> victim;
  {
    std::lock_guard lock(replicas_mu_);
    if (i >= psmr_.size() || !psmr_[i]) return;
    victim = std::move(psmr_[i]);  // slot reads as crashed from here on
  }
  // Stop (joins the worker threads) outside the lock so monitors keep
  // reading the surviving replicas while the victim winds down.
  victim->stop();
  victim.reset();
}

std::optional<SnapshotFrame> Deployment::fetch_peer_snapshot(
    std::size_t skip) {
  // Collect the live peers' snapshot-server nodes under the lock, then do
  // the (blocking) fetches without it.
  std::vector<transport::NodeId> peers;
  {
    std::lock_guard lock(replicas_mu_);
    for (std::size_t j = 0; j < psmr_.size(); ++j) {
      if (j == skip || !psmr_[j]) continue;
      auto node = psmr_[j]->snapshot_node();
      if (node != transport::kNoNode) peers.push_back(node);
    }
  }
  if (peers.empty()) return std::nullopt;
  auto [me, mailbox] = net_.register_node();
  std::optional<SnapshotFrame> best;
  for (auto peer : peers) {
    if (!net_.send(me, peer, transport::MsgType::kSmrSnapshotReq, {})) {
      continue;
    }
    auto msg = mailbox->pop_for(std::chrono::seconds(5));
    if (!msg || msg->type != transport::MsgType::kSmrSnapshotRep) continue;
    try {
      util::Reader r(msg->payload);
      if (!r.boolean()) continue;  // peer has no checkpoint yet
      auto frame = decode_snapshot(r.bytes());
      if (!frame) continue;
      if (!best || frame->executed > best->executed) best = std::move(frame);
    } catch (const util::DecodeError&) {
      continue;
    }
  }
  return best;
}

bool Deployment::restart_replica(std::size_t i) {
  {
    std::lock_guard lock(replicas_mu_);
    if (i >= psmr_.size() || psmr_[i]) return false;
  }
  // Catch-up: prefer a peer's snapshot (bounded replay); fall back to a
  // full from-scratch replay when no peer holds one.  The fallback is safe
  // exactly because no checkpoint implies no truncation acks, hence the
  // acceptors still hold the full log.
  std::optional<SnapshotFrame> frame = fetch_peer_snapshot(i);
  std::unique_ptr<PsmrReplica> rep;
  try {
    rep = build_psmr_replica(i, frame ? &*frame : nullptr);
  } catch (const std::runtime_error& e) {
    PSMR_WARN("restart_replica(" << i << "): snapshot install failed ("
                                 << e.what() << "); replaying from scratch");
    rep = build_psmr_replica(i, nullptr);
  }
  if (started_) rep->start();
  std::lock_guard lock(replicas_mu_);
  psmr_[i] = std::move(rep);
  return true;
}

std::unique_ptr<ClientProxy> Deployment::make_client() {
  ClientId id = next_client_++;
  switch (cfg_.mode) {
    case Mode::kSmr:
    case Mode::kSpsmr:
    case Mode::kPsmr:
      return std::make_unique<ClientProxy>(net_, *bus_, client_cg_, id,
                                           admission_, spooler_.get());
    case Mode::kNoRep:
      return std::make_unique<ClientProxy>(net_, norep_->id(), id);
    case Mode::kLockServer: {
      auto node = lock_->handler_node(next_handler_);
      next_handler_ = (next_handler_ + 1) % lock_->num_threads();
      return std::make_unique<ClientProxy>(net_, node, id);
    }
  }
  return nullptr;
}

paxos::CoordinatorStats Deployment::multicast_stats() const {
  return bus_ ? bus_->total_stats() : paxos::CoordinatorStats{};
}

std::size_t Deployment::num_services() const {
  if (norep_ || lock_) return 1;
  return psmr_.empty() ? spsmr_.size() : psmr_.size();
}

std::uint64_t Deployment::executed(std::size_t i) const {
  if (norep_) return norep_->executed();
  if (lock_) return lock_->executed();
  if (!psmr_.empty()) {
    std::lock_guard lock(replicas_mu_);
    return psmr_.at(i) ? psmr_[i]->executed() : 0;
  }
  return spsmr_.at(i)->executed();
}

std::uint64_t Deployment::state_digest(std::size_t i) const {
  if (norep_) return norep_->service().state_digest();
  if (lock_) return lock_->service().state_digest();
  if (!psmr_.empty()) {
    std::lock_guard lock(replicas_mu_);
    return psmr_.at(i) ? psmr_[i]->service().state_digest() : 0;
  }
  return spsmr_.at(i)->service().state_digest();
}

ExecStats Deployment::exec_stats(std::size_t i) const {
  if (norep_) return norep_->service().exec_stats();
  if (lock_) return lock_->service().exec_stats();
  if (!psmr_.empty()) {
    std::lock_guard lock(replicas_mu_);
    return psmr_.at(i) ? psmr_[i]->service().exec_stats() : ExecStats{};
  }
  return spsmr_.at(i)->service().exec_stats();
}

ExecStats Deployment::exec_stats() const {
  ExecStats total;
  for (std::size_t i = 0; i < num_services(); ++i) total += exec_stats(i);
  return total;
}

ResponseStats Deployment::response_stats(std::size_t i) const {
  if (norep_) return norep_->response_stats();
  if (lock_) return ResponseStats{};  // handlers reply inline per command
  if (!psmr_.empty()) {
    std::lock_guard lock(replicas_mu_);
    return psmr_.at(i) ? psmr_[i]->response_stats() : ResponseStats{};
  }
  return spsmr_.at(i)->response_stats();
}

ResponseStats Deployment::response_stats() const {
  ResponseStats total;
  for (std::size_t i = 0; i < num_services(); ++i) total += response_stats(i);
  return total;
}

AdmissionStats Deployment::admission_stats() const {
  return admission_ ? admission_->stats() : AdmissionStats{};
}

SpoolStats Deployment::spool_stats() const {
  return spooler_ ? spooler_->stats() : SpoolStats{};
}

}  // namespace psmr::smr
