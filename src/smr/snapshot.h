// Checkpoint snapshot frame: the durable unit of replica recovery.
//
// A checkpoint is cut at a marker command (smr::kCheckpointMarker) that the
// multicast bus places at one well-defined position of every replica's
// merged delivery sequence, so the frame captures a *consistent* cut: the
// service state after exactly `executed` commands, plus, per worker, the
// stream positions / merge cursor / undelivered merged tail at that cut and
// the client dedup table that suppresses duplicate replies on replay.
// Everything in the frame is a deterministic function of the delivery
// streams, so replicas cutting the same marker produce byte-identical
// frames — which tests exploit to verify the mechanism end to end.
//
// Wire layout (util::Writer, little-endian), hardened like
// response_batch.h: magic + version up front, counts validated against hard
// caps and remaining bytes, and an FNV-1a digest over every preceding byte
// at the tail.  decode_snapshot() returns std::nullopt on any malformation;
// a truncated or bit-flipped frame can never install.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "paxos/types.h"
#include "smr/command.h"
#include "util/bytes.h"

namespace psmr::smr {

/// Per-deployment checkpointing knobs (see DeploymentConfig::checkpoint).
struct CheckpointOptions {
  /// Master switch; off keeps the seed behavior (no markers, no snapshots,
  /// no truncation acks).
  bool enabled = false;
  /// Worker 0 multicasts a checkpoint marker after this many locally
  /// executed commands.  0 = manual triggers only
  /// (PsmrReplica::trigger_checkpoint / Deployment::trigger_checkpoint).
  std::uint64_t interval_commands = 0;
  /// Stable replica index used in truncation acks.  Acceptors key their
  /// checkpoint-acknowledgment floor by it, so a crashed replica's last ack
  /// keeps pinning the floor until the restarted replica re-acks — the log
  /// suffix it must replay cannot be truncated while it is down.
  std::uint64_t replica_id = 0;
};

/// One client's dedup entry: highest executed seq and its cached response.
struct SnapshotDedupEntry {
  ClientId client = 0;
  Seq seq = 0;
  util::Buffer response;
};

/// One undelivered merged-tail entry (a marker can land mid-batch: commands
/// fanned out of the same decided batch but not yet delivered).
struct SnapshotPending {
  std::uint32_t stream = 0;
  util::Buffer message;
};

/// Everything one worker thread needs to resume its merged stream exactly
/// at the cut.
struct WorkerSnapshot {
  /// Next undelivered instance per stream (group ring first, then the
  /// shared ring when one exists) — the subscribe_at() resume points.
  std::vector<paxos::Instance> positions;
  std::uint64_t merge_cursor = 0;
  std::vector<SnapshotPending> pending;
  /// Sorted by client (strictly increasing) — canonical form, so equal
  /// tables encode to equal bytes.
  std::vector<SnapshotDedupEntry> dedup;
};

struct SnapshotFrame {
  /// Commands executed by the replica up to the cut.
  std::uint64_t executed = 0;
  /// Service::state_digest() at the cut; re-verified after restore.
  std::uint64_t service_digest = 0;
  std::vector<WorkerSnapshot> workers;
  /// Service::snapshot_to() payload (service-private layout).
  util::Buffer service_state;
};

[[nodiscard]] util::Buffer encode_snapshot(const SnapshotFrame& frame);

/// Paranoid decode: magic/version/caps/count-vs-bytes/digest checks; any
/// failure (including trailing bytes) yields std::nullopt.
[[nodiscard]] std::optional<SnapshotFrame> decode_snapshot(
    std::span<const std::uint8_t> data);

}  // namespace psmr::smr
