#include "smr/response_coalescer.h"

#include "smr/response_batch.h"
#include "util/clock.h"

namespace psmr::smr {

void ResponseCoalescer::send(transport::NodeId to, const Response& resp) {
  util::Buffer encoded = resp.encode();
  if (!opts_.enabled) {
    {
      std::lock_guard lock(mu_);
      ++stats_.wire_messages;
      ++stats_.responses;
      ++stats_.uncoalesced;
    }
    net_.send(from_, to, transport::MsgType::kSmrResponse, std::move(encoded));
    return;
  }
  std::unique_lock lock(mu_);
  Bucket& b = buckets_[to];
  if (b.encoded.empty()) b.oldest_us = util::now_us();
  b.bytes += encoded.size();
  b.encoded.push_back(std::move(encoded));
  ++spooled_;
  FlushReason reason;
  if (b.encoded.size() >= opts_.max_responses) {
    reason = FlushReason::kSize;
  } else if (b.bytes >= opts_.max_bytes) {
    reason = FlushReason::kBytes;
  } else if (util::now_us() - b.oldest_us >= opts_.max_delay.count()) {
    reason = FlushReason::kTimeout;
  } else {
    return;  // spooled; the enclosing batch boundary flushes it
  }
  flush_locked(lock, reason, to);
}

void ResponseCoalescer::flush_batch() {
  if (!opts_.enabled) return;
  std::unique_lock lock(mu_);
  if (spooled_ == 0) return;
  flush_locked(lock, FlushReason::kBatch);
}

void ResponseCoalescer::flush_locked(std::unique_lock<std::mutex>& lock,
                                     FlushReason reason,
                                     transport::NodeId trigger) {
  if (flushing_) {
    // An active flusher's drain loop runs until the spool is empty, so it
    // carries these responses in its next frame.
    return;
  }
  flushing_ = true;
  // Copied under the lock: the hook runs with the lock released so a
  // concurrent send can spool while the flusher is paused.
  const auto pause = flush_pause_;
  while (spooled_ > 0) {
    // Drain one bucket per pass; responses spooled meanwhile (even to the
    // bucket just drained) are picked up by a later pass.
    auto it = buckets_.begin();
    while (it != buckets_.end() && it->second.encoded.empty()) ++it;
    if (it == buckets_.end()) break;  // defensive: spool accounting drifted
    const transport::NodeId to = it->first;
    Bucket bucket;
    std::swap(bucket, it->second);
    const std::size_t n = bucket.encoded.size();
    spooled_ -= n;
    ++stats_.wire_messages;
    stats_.responses += n;
    // The trigger reason belongs to the bucket that tripped it; buckets the
    // drain loop merely sweeps (or responses spooled concurrently) count as
    // kBatch, so the per-reason record stays attributable.
    switch (to == trigger ? reason : FlushReason::kBatch) {
      case FlushReason::kSize: ++stats_.flush_size; break;
      case FlushReason::kBytes: ++stats_.flush_bytes; break;
      case FlushReason::kTimeout: ++stats_.flush_timeout; break;
      case FlushReason::kBatch: ++stats_.flush_batch; break;
    }
    if (to == trigger) trigger = transport::kNoNode;  // attribute only once
    lock.unlock();
    if (n == 1) {
      // A lone reply keeps the plain single-response framing.
      net_.send(from_, to, transport::MsgType::kSmrResponse,
                std::move(bucket.encoded.front()));
    } else {
      net_.send(from_, to, transport::MsgType::kSmrResponseMany,
                encode_response_batch(bucket.encoded));
    }
    if (pause) pause();
    lock.lock();
  }
  flushing_ = false;
}

}  // namespace psmr::smr
