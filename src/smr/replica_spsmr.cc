#include "smr/replica_spsmr.h"

#include "util/log.h"

namespace psmr::smr {

SpsmrReplica::SpsmrReplica(transport::Network& net, multicast::Bus& bus,
                           std::unique_ptr<Service> service,
                           std::shared_ptr<const CGFunction> cg,
                           std::size_t mpl, std::string name,
                           SchedulerOptions options)
    : core_(net, std::move(service), std::move(cg), mpl, name, options),
      name_(std::move(name)) {
  if (bus.num_groups() != 1) {
    throw std::invalid_argument(
        "SpsmrReplica: sP-SMR delivers a single stream (bus must have one "
        "group)");
  }
  sub_ = bus.subscribe(0);
}

SpsmrReplica::~SpsmrReplica() { stop(); }

void SpsmrReplica::start() {
  if (started_) return;
  started_ = true;
  core_.start();
  delivery_thread_ = std::thread([this] { delivery_loop(); });
}

void SpsmrReplica::stop() {
  sub_->close();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  core_.stop();
}

void SpsmrReplica::delivery_loop() {
  while (auto delivery = sub_->next()) {
    auto cmd = Command::decode(delivery->message);
    if (!cmd) {
      PSMR_ERROR(name_ << ": malformed command");
      continue;
    }
    core_.schedule(std::move(*cmd));
  }
}

}  // namespace psmr::smr
