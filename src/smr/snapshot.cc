#include "smr/snapshot.h"

#include "util/hash.h"

namespace psmr::smr {

namespace {

constexpr std::uint32_t kMagic = 0x50534E50;  // "PSNP"
constexpr std::uint32_t kVersion = 1;
// Hard caps: far above any real deployment (k <= 63 groups), low enough
// that a corrupt count cannot drive allocation into the gigabytes before
// the per-entry bounds checks fire.
constexpr std::uint32_t kMaxWorkers = 64;
constexpr std::uint32_t kMaxStreams = 64;
constexpr std::uint32_t kMaxEntries = 1u << 20;

}  // namespace

util::Buffer encode_snapshot(const SnapshotFrame& frame) {
  util::Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(frame.executed);
  w.u64(frame.service_digest);
  w.u32(static_cast<std::uint32_t>(frame.workers.size()));
  for (const auto& worker : frame.workers) {
    w.u32(static_cast<std::uint32_t>(worker.positions.size()));
    for (auto pos : worker.positions) w.u64(pos);
    w.u64(worker.merge_cursor);
    w.u32(static_cast<std::uint32_t>(worker.pending.size()));
    for (const auto& p : worker.pending) {
      w.u32(p.stream);
      w.bytes(p.message);
    }
    w.u32(static_cast<std::uint32_t>(worker.dedup.size()));
    for (const auto& d : worker.dedup) {
      w.u64(d.client);
      w.u64(d.seq);
      w.bytes(d.response);
    }
  }
  w.bytes(frame.service_state);
  w.u64(util::fnv1a(w.view()));
  return w.take();
}

std::optional<SnapshotFrame> decode_snapshot(
    std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  auto body = data.first(data.size() - 8);
  {
    util::Reader tail(data.subspan(data.size() - 8));
    if (tail.u64() != util::fnv1a(body)) return std::nullopt;
  }
  try {
    util::Reader r(body);
    if (r.u32() != kMagic) return std::nullopt;
    if (r.u32() != kVersion) return std::nullopt;
    SnapshotFrame frame;
    frame.executed = r.u64();
    frame.service_digest = r.u64();
    std::uint32_t num_workers = r.u32();
    if (num_workers > kMaxWorkers) return std::nullopt;
    frame.workers.resize(num_workers);
    for (auto& worker : frame.workers) {
      std::uint32_t num_streams = r.u32();
      if (num_streams > kMaxStreams ||
          std::size_t{num_streams} * 8 > r.remaining()) {
        return std::nullopt;
      }
      worker.positions.reserve(num_streams);
      for (std::uint32_t i = 0; i < num_streams; ++i) {
        worker.positions.push_back(r.u64());
      }
      worker.merge_cursor = r.u64();
      std::uint32_t num_pending = r.u32();
      // Every pending entry occupies at least 8 bytes (stream + length).
      if (num_pending > kMaxEntries ||
          std::size_t{num_pending} * 8 > r.remaining()) {
        return std::nullopt;
      }
      worker.pending.reserve(num_pending);
      for (std::uint32_t i = 0; i < num_pending; ++i) {
        SnapshotPending p;
        p.stream = r.u32();
        if (p.stream >= num_streams) return std::nullopt;
        p.message = r.bytes();
        worker.pending.push_back(std::move(p));
      }
      std::uint32_t num_dedup = r.u32();
      // Every dedup entry occupies at least 20 bytes.
      if (num_dedup > kMaxEntries ||
          std::size_t{num_dedup} * 20 > r.remaining()) {
        return std::nullopt;
      }
      worker.dedup.reserve(num_dedup);
      for (std::uint32_t i = 0; i < num_dedup; ++i) {
        SnapshotDedupEntry d;
        d.client = r.u64();
        d.seq = r.u64();
        d.response = r.bytes();
        // Canonical form: strictly increasing clients, or equal tables
        // would not encode to equal frames.
        if (!worker.dedup.empty() && d.client <= worker.dedup.back().client) {
          return std::nullopt;
        }
        worker.dedup.push_back(std::move(d));
      }
    }
    frame.service_state = r.bytes();
    if (!r.done()) return std::nullopt;
    return frame;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace psmr::smr
