// Service abstraction: the replicated state machine.
//
// A Service is "state variables plus commands that change the state" (paper
// Section III).  Execution must be deterministic: output and state changes
// are a function of the current state and the command.  A service written
// against this interface runs unchanged under SMR, sP-SMR and P-SMR — the
// transparency property of Section IV-B — because all cross-command
// synchronization is handled by the server proxies around it.
//
// Thread-safety contract: execute() may be called concurrently by multiple
// worker threads ONLY for commands the service's C-Dep declares independent.
// P-SMR's proxies guarantee dependent commands never overlap; services must
// tolerate concurrent independent commands (e.g., operating on disjoint keys
// without restructuring shared state).  The LockServer deployment instead
// requires an internally synchronized service (see make_locked()).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "smr/command.h"

namespace psmr::smr {

class Service {
 public:
  virtual ~Service() = default;

  /// Executes one command and returns its marshaled response.
  virtual util::Buffer execute(const Command& cmd) = 0;

  /// Order-insensitive-free digest of the full service state.  Tests use it
  /// to assert replica convergence: replicas that executed equivalent
  /// command histories must produce equal digests.
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;
};

/// Wraps any Service with a single mutex, making it safe for unsynchronized
/// concurrent callers (coarse-grained stand-in used in tests; the BDB-style
/// LockServer uses finer-grained services like the latch-crabbing B+-tree).
class LockedService : public Service {
 public:
  explicit LockedService(std::unique_ptr<Service> inner)
      : inner_(std::move(inner)) {}

  util::Buffer execute(const Command& cmd) override {
    std::lock_guard lock(mu_);
    return inner_->execute(cmd);
  }

  [[nodiscard]] std::uint64_t state_digest() const override {
    std::lock_guard lock(mu_);
    return inner_->state_digest();
  }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<Service> inner_;
};

}  // namespace psmr::smr
