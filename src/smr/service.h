// Service abstraction: the replicated state machine, batch-first.
//
// A Service is "state variables plus commands that change the state" (paper
// Section III).  Execution must be deterministic: output and state changes
// are a function of the current state and the executed command sequence.  A
// service written against this interface runs unchanged under SMR, sP-SMR
// and P-SMR — the transparency property of Section IV-B — because all
// cross-command synchronization is handled by the server proxies around it.
//
// Batch contract.  The unit of execution is a CommandBatch: a contiguous run
// of commands plus a ResponseSink receiving each command's marshaled reply.
// Replicas (SchedulerCore workers, PsmrReplica workers) accumulate runs of
// *mutually independent* commands from their delivery streams and hand them
// down as one batch, so a service that owns a batch-shaped fast path (the
// B+-tree's pipelined find_batch) can overlap the commands' memory stalls
// instead of resolving them one dependent miss chain at a time.
//
// What may share a batch: only command pairs the service declares
// independent via may_share_batch() — in practice, pairs with no C-Dep edge
// (service.h's callers never ask about dependent pairs' order).  Because
// every pair in a batch is independent, the service may execute a batch's
// commands in ANY order (or interleaved, e.g. all reads through one
// pipelined pass after the writes): every serialization of an
// all-independent set produces the same state and the same per-command
// outputs.  That is the determinism argument — replicas whose timing slices
// the same delivery stream into different runs (batch boundaries are
// timing-dependent: drain-on-empty) still converge, because batch
// boundaries only ever separate commands whose relative order is
// irrelevant.  Dependent commands never share a batch and are always
// executed in delivery order, exactly as before this API.
//
// Thread-safety contract: execute_batch() may be called concurrently by
// multiple worker threads ONLY for commands the service's C-Dep declares
// independent.  P-SMR's proxies guarantee dependent commands never overlap;
// services must tolerate concurrent independent commands (e.g., operating
// on disjoint keys without restructuring shared state).  The LockServer
// deployment instead requires an internally synchronized service (see
// LockedService).
//
// Migration path: a single-command state machine implements
// SequentialService (the original execute() shape, unchanged) and is
// mounted with SequentialServiceAdapter / make_batched(); it executes each
// batch member in batch order, so existing services and test fakes keep
// their exact semantics while the replicas speak only the batch API.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "smr/command.h"

namespace psmr::smr {

/// Execution-side counters, the replica analogue of the multicast layer's
/// CoordinatorStats: how many batches were executed, how full they were,
/// and what share of commands resolved through a pipelined batched-read
/// lane.  Snapshot type; see Service::exec_stats().
struct ExecStats {
  std::uint64_t batches = 0;
  std::uint64_t commands = 0;
  /// Commands whose reads resolved through a pipelined multi-lookup lane
  /// (e.g. BPlusTree::find_batch) rather than one-at-a-time descent.
  std::uint64_t batched_reads = 0;
  /// Largest batch executed so far.
  std::uint64_t max_batch = 0;

  [[nodiscard]] double mean_commands_per_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(commands) /
                              static_cast<double>(batches);
  }
  [[nodiscard]] double batched_read_share() const {
    return commands == 0 ? 0.0
                         : static_cast<double>(batched_reads) /
                               static_cast<double>(commands);
  }

  ExecStats& operator+=(const ExecStats& o) {
    batches += o.batches;
    commands += o.commands;
    batched_reads += o.batched_reads;
    max_batch = o.max_batch > max_batch ? o.max_batch : max_batch;
    return *this;
  }
  ExecStats operator-(const ExecStats& o) const {
    ExecStats d = *this;
    d.batches -= o.batches;
    d.commands -= o.commands;
    d.batched_reads -= o.batched_reads;
    // max_batch is a high-water mark, not a counter; keep the later value.
    return d;
  }
};

/// Receives the marshaled responses of a CommandBatch, one per command.
/// accept(i, payload) is called exactly once for every command index of the
/// batch, from the executing thread, possibly out of batch order (a
/// pipelined read lane completes as a unit after the writes).
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void accept(std::size_t index, util::Buffer payload) = 0;
};

/// ResponseSink that buffers responses in batch order.  Used by the
/// single-command convenience wrapper and by tests.
class CollectingSink final : public ResponseSink {
 public:
  explicit CollectingSink(std::size_t n) : responses(n) {}
  void accept(std::size_t index, util::Buffer payload) override {
    responses.at(index) = std::move(payload);
  }
  std::vector<util::Buffer> responses;
};

/// A contiguous run of commands executed as one unit.  The commands are
/// pairwise independent (see the batch contract above) unless the batch was
/// produced by the single-command wrapper (size 1, trivially so).
struct CommandBatch {
  std::span<const Command> commands;
  ResponseSink* sink = nullptr;

  [[nodiscard]] std::size_t size() const { return commands.size(); }
};

class Service {
 public:
  virtual ~Service() = default;

  /// Executes every command of the batch and delivers each marshaled
  /// response through batch.sink.  Records ExecStats.
  void execute_batch(CommandBatch& batch) {
    do_execute_batch(batch);
    const auto n = static_cast<std::uint64_t>(batch.size());
    batches_.fetch_add(1, std::memory_order_relaxed);
    commands_.fetch_add(n, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (n > seen &&
           !max_batch_.compare_exchange_weak(seen, n,
                                             std::memory_order_relaxed)) {
    }
  }

  /// Single-command convenience: a batch of one.  Keeps call sites that
  /// execute one command at a time (LockServer handlers, synchronous-mode
  /// barriers, unit tests) source-compatible with the old contract.
  util::Buffer execute(const Command& cmd) {
    CollectingSink sink(1);
    CommandBatch batch{std::span<const Command>(&cmd, 1), &sink};
    execute_batch(batch);
    return std::move(sink.responses.front());
  }

  /// May x and y share an execution batch?  Must return true only for
  /// C-Dep-independent pairs, because execute_batch() is free to reorder
  /// within a batch.  Conservative default: nothing shares, i.e. every
  /// batch the accumulators form has size 1 and execution degenerates to
  /// the old one-command-at-a-time behaviour.
  [[nodiscard]] virtual bool may_share_batch(const Command& /*x*/,
                                             const Command& /*y*/) const {
    return false;
  }

  /// Order-insensitive-free digest of the full service state.  Tests use it
  /// to assert replica convergence: replicas that executed equivalent
  /// command histories must produce equal digests.
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;

  /// Checkpointing: serializes the full service state into `w` (any
  /// deterministic, self-delimiting layout; the replica wraps it in a
  /// digest-stamped frame — see smr/snapshot.h).  Returns false when the
  /// service does not support snapshots (the default), which disables
  /// checkpointing for deployments mounting it.  Called only while the
  /// service is quiesced (all replica workers parked at the checkpoint
  /// barrier), so implementations need no internal synchronization beyond
  /// what state_digest() already assumes.
  [[nodiscard]] virtual bool snapshot_to(util::Writer& /*w*/) const {
    return false;
  }

  /// Replaces the entire service state with a snapshot previously produced
  /// by snapshot_to() on an equivalent service.  Returns false on decode
  /// failure (state is then unspecified; the caller discards the replica).
  /// Same quiescence contract as snapshot_to().
  [[nodiscard]] virtual bool restore_from(util::Reader& /*r*/) {
    return false;
  }

  /// Execution counters since construction.  Wrappers (LockedService,
  /// SequentialServiceAdapter) report the innermost recording layer.
  [[nodiscard]] virtual ExecStats exec_stats() const {
    ExecStats s;
    s.batches = batches_.load(std::memory_order_relaxed);
    s.commands = commands_.load(std::memory_order_relaxed);
    s.batched_reads = batched_reads_.load(std::memory_order_relaxed);
    s.max_batch = max_batch_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  virtual void do_execute_batch(CommandBatch& batch) = 0;

  /// Called by implementations when `n` commands of the current batch were
  /// resolved through a pipelined read lane.
  void note_batched_reads(std::uint64_t n) {
    batched_reads_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> commands_{0};
  std::atomic<std::uint64_t> batched_reads_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

/// The original single-command state-machine shape: one command in, one
/// marshaled response out.  Implementations carry no batch logic at all;
/// mount them with SequentialServiceAdapter (or make_batched()).
class SequentialService {
 public:
  virtual ~SequentialService() = default;

  /// Executes one command and returns its marshaled response.
  virtual util::Buffer execute(const Command& cmd) = 0;

  /// See Service::state_digest().
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;

  /// See Service::snapshot_to() / restore_from().
  [[nodiscard]] virtual bool snapshot_to(util::Writer& /*w*/) const {
    return false;
  }
  [[nodiscard]] virtual bool restore_from(util::Reader& /*r*/) {
    return false;
  }
};

/// Runs a SequentialService under the batch contract: each batch member is
/// executed one at a time, in batch order, so the inner service observes
/// exactly the command sequence it would have under the old API.  Batches
/// stay at size 1 by default (may_share_batch is inherited false), so
/// wrapping changes nothing observable.
class SequentialServiceAdapter final : public Service {
 public:
  explicit SequentialServiceAdapter(std::unique_ptr<SequentialService> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::uint64_t state_digest() const override {
    return inner_->state_digest();
  }
  [[nodiscard]] bool snapshot_to(util::Writer& w) const override {
    return inner_->snapshot_to(w);
  }
  [[nodiscard]] bool restore_from(util::Reader& r) override {
    return inner_->restore_from(r);
  }
  [[nodiscard]] SequentialService& inner() { return *inner_; }

 protected:
  void do_execute_batch(CommandBatch& batch) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch.sink->accept(i, inner_->execute(batch.commands[i]));
    }
  }

 private:
  std::unique_ptr<SequentialService> inner_;
};

/// Mounts a single-command service on the batch-first replica stack.
inline std::unique_ptr<Service> make_batched(
    std::unique_ptr<SequentialService> inner) {
  return std::make_unique<SequentialServiceAdapter>(std::move(inner));
}

/// Wraps any Service with a single mutex, making it safe for unsynchronized
/// concurrent callers (coarse-grained stand-in used in tests; the BDB-style
/// LockServer uses finer-grained services like the latch-crabbing B+-tree).
class LockedService : public Service {
 public:
  explicit LockedService(std::unique_ptr<Service> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] bool may_share_batch(const Command& x,
                                     const Command& y) const override {
    return inner_->may_share_batch(x, y);
  }

  [[nodiscard]] std::uint64_t state_digest() const override {
    std::lock_guard lock(mu_);
    return inner_->state_digest();
  }

  [[nodiscard]] bool snapshot_to(util::Writer& w) const override {
    std::lock_guard lock(mu_);
    return inner_->snapshot_to(w);
  }
  [[nodiscard]] bool restore_from(util::Reader& r) override {
    std::lock_guard lock(mu_);
    return inner_->restore_from(r);
  }

  [[nodiscard]] ExecStats exec_stats() const override {
    // The inner service records every batch this wrapper forwards; report
    // its counters so batched-read shares survive the wrapping.
    return inner_->exec_stats();
  }

 protected:
  void do_execute_batch(CommandBatch& batch) override {
    std::lock_guard lock(mu_);
    inner_->execute_batch(batch);
  }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<Service> inner_;
};

}  // namespace psmr::smr
