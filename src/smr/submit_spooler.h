// Client-side submit pipelining: the submit-path mirror of the reply-side
// ResponseCoalescer.
//
// Without it, every ClientProxy::submit marshals its command into a fresh
// buffer and runs the full per-command Bus::multicast → SubmitCoalescer
// lock round-trip — one wire message and one coalescer critical section per
// command.  The spooler instead keeps one open pooled SUBMIT_MANY frame per
// destination ring; submit() marshals the command *straight into that
// frame* (util::PayloadWriter, no intermediate Buffer) under one short
// critical section and returns.  A spool flushes as a single pre-encoded
// burst — one Bus::submit_encoded call, one wire message — when:
//
//   * it reaches max_commands or max_bytes (bounded burst size), or
//   * any client enters poll() (flush-before-wait: a client about to block
//     for replies first pushes every spooled command of the deployment out,
//     so nothing it — or anyone else — is waiting on can be stranded), or
//   * flush_all() is called explicitly (benches, shutdown).
//
// There is no timer thread, exactly like the ResponseCoalescer and the
// SubmitCoalescer: a client that awaits a reply always polls, and the poll
// entry is the flush trigger.  Ordering is preserved where it matters —
// commands of one client to one ring stay FIFO within and across frames,
// and same-key commands of a client map to the same ring by construction
// (the C-G function is deterministic on keys).
//
// The wire format is the unchanged kPaxosSubmitMany frame: u32 count +
// count × length-prefixed commands; the count is patched into the frame's
// first 4 bytes at flush time.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "multicast/amcast.h"
#include "smr/command.h"

namespace psmr::smr {

struct SubmitSpoolerOptions {
  /// Disables spooling entirely (ClientProxy falls back to per-command
  /// Bus::multicast through the SubmitCoalescer).
  bool enabled = true;
  /// Flush a ring's spool once it holds this many commands.
  std::size_t max_commands = 64;
  /// ... or once its frame reaches this many bytes.  Kept a few batches
  /// deep: the coordinator re-cuts the burst into max_batch_bytes batches.
  std::size_t max_bytes = 32 * 1024;
};

/// Counters, partitioned by flush trigger.  flushed_commands ==
/// spooled_commands once every spool has drained; mean burst size is
/// flushed_commands / flushes.
struct SpoolStats {
  std::uint64_t spooled_commands = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flushed_commands = 0;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t flush_on_count = 0;
  std::uint64_t flush_on_bytes = 0;
  std::uint64_t flush_on_poll = 0;
  /// Commands in flushes the transport rejected (shutdown/disconnect);
  /// recovered end-to-end by client retransmission, same contract as
  /// SubmitCoalescer::Stats::failed_flush_commands.
  std::uint64_t failed_flush_commands = 0;

  [[nodiscard]] double mean_commands_per_flush() const {
    return flushes == 0 ? 0.0
                        : static_cast<double>(flushed_commands) /
                              static_cast<double>(flushes);
  }

  SpoolStats& operator+=(const SpoolStats& o) {
    spooled_commands += o.spooled_commands;
    flushes += o.flushes;
    flushed_commands += o.flushed_commands;
    flushed_bytes += o.flushed_bytes;
    flush_on_count += o.flush_on_count;
    flush_on_bytes += o.flush_on_bytes;
    flush_on_poll += o.flush_on_poll;
    failed_flush_commands += o.failed_flush_commands;
    return *this;
  }
};

/// Shared by every ClientProxy of a deployment (thread-safe).  One spool —
/// an open pooled SUBMIT_MANY frame — per destination ring, so concurrent
/// clients of the same ring pipeline into one burst.
class SubmitSpooler {
 public:
  SubmitSpooler(multicast::Bus& bus, SubmitSpoolerOptions opt);

  SubmitSpooler(const SubmitSpooler&) = delete;
  SubmitSpooler& operator=(const SubmitSpooler&) = delete;

  /// Marshals `c` into the spool of the ring its group set routes to.  The
  /// spool flushes inline when a cap is hit.  Returns false only when a
  /// cap-triggered flush was rejected by the transport (shutdown); the
  /// command itself is then gone with the failed frame, matching the
  /// fire-and-forget submit contract.
  bool spool(transport::NodeId from, const Command& c);

  /// Flushes every non-empty spool (poll-entry / explicit trigger).
  /// `poll_entry` only attributes the flush reason in stats.
  void flush_all(transport::NodeId from, bool poll_entry = true);

  [[nodiscard]] SpoolStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  struct Spool {
    util::PayloadWriter w;
    std::size_t count = 0;
    Spool() : w(0) {}
  };

  enum class FlushReason { kCount, kBytes, kPoll };

  /// Starts a fresh frame: acquires a pooled block and reserves the u32
  /// count slot.
  void reset_locked(Spool& s);
  /// Sends spool `ring` as one pre-encoded SUBMIT_MANY frame.  Called with
  /// mu_ held.  False when the transport rejected the frame.
  bool flush_locked(std::size_t ring, transport::NodeId from,
                    FlushReason reason);

  multicast::Bus& bus_;
  const SubmitSpoolerOptions opt_;
  mutable std::mutex mu_;
  std::vector<Spool> spools_;  // index-aligned with the bus's ring indices
  SpoolStats stats_;
};

}  // namespace psmr::smr
