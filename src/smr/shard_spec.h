// Declarative shard deployment specs — many rings from one text file.
//
// A sharded P-SMR deployment is described IRON-style (see the traffic files
// of raytheonbbn/IRON's OptimizedMulticast analysis, whose format this
// follows): one line per multicast group listing the replicas that host it,
// plus optional `m<groupId> <weight>` traffic lines assigning each group a
// relative workload share.  Example:
//
//     # Sharded P-SMR deployment
//     policy range
//     keyspace 65536
//
//     # Multicast groups: groupId [replica_numbers]
//     #     (must be defined before referenced in a traffic line)
//     0 [0 1]
//     1 [0 1]
//     2 [0 1]
//
//     # traffic: m<groupId> <relative_weight>
//     m0 2.0
//     m2 0.5
//
// Our replicas host *every* worker group (thread t_i of each replica is in
// g_i — paper Section VI-A), so the per-group replica sets must be uniform;
// the parser validates this instead of silently building an asymmetric
// deployment the replica code cannot express.  Group ids must be dense
// 0..n-1 because they double as worker-thread and shard indices.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "multicast/shard.h"
#include "smr/runtime.h"

namespace psmr::smr {

struct ShardGroup {
  multicast::GroupId id = 0;
  /// Replica numbers hosting this group's worker (uniform across groups).
  std::vector<std::uint32_t> replicas;
};

struct ShardSpec {
  multicast::ShardPolicy policy = multicast::ShardPolicy::kHash;
  std::uint64_t keyspace = 0;
  /// Sorted by id; ids are dense 0..num_groups()-1.
  std::vector<ShardGroup> groups;
  /// Relative workload weight per group (traffic `m<g> <w>` lines; groups
  /// without a line weigh 1.0).  Drives skewed load generation in benches
  /// and tests; the mapping layer itself ignores it.
  std::vector<double> traffic;

  [[nodiscard]] std::size_t num_groups() const { return groups.size(); }
  [[nodiscard]] std::size_t num_replicas() const {
    return groups.empty() ? 0 : groups.front().replicas.size();
  }
  /// The key→shard map every proxy of this deployment must share.
  [[nodiscard]] multicast::ShardMap map() const {
    return {policy, num_groups(), keyspace};
  }
};

/// Parses a spec document.  Throws std::invalid_argument with a line-number
/// diagnostic on malformed input, non-dense group ids, non-uniform replica
/// sets, more groups than the group mask holds, or traffic lines naming
/// undefined groups.
[[nodiscard]] ShardSpec parse_shard_spec(std::string_view text);

/// Renders a spec back into the text format (round-trips via parse).
[[nodiscard]] std::string format_shard_spec(const ShardSpec& spec);

/// The common case programmatically: `shards` groups, each hosted by
/// replicas 0..replicas-1, uniform traffic.
[[nodiscard]] ShardSpec make_uniform_shard_spec(
    std::size_t shards, std::size_t replicas, std::uint64_t keyspace,
    multicast::ShardPolicy policy = multicast::ShardPolicy::kHash);

/// Deployment skeleton for a spec: P-SMR mode, one worker group per shard,
/// the spec's replica count.  The caller supplies the service and C-G
/// factories (service-specific) — pair with a ShardedCg built over
/// spec.map() so clients and the spec agree on key placement.
[[nodiscard]] DeploymentConfig shard_deployment_config(const ShardSpec& spec);

}  // namespace psmr::smr
