#include "smr/shard_spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace psmr::smr {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("shard spec line " + std::to_string(line_no) +
                              ": " + what);
}

/// Strips the comment tail and surrounding whitespace.
std::string_view clean(std::string_view line) {
  if (auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  while (!line.empty() && std::isspace(static_cast<unsigned char>(
                              line.front()))) {
    line.remove_prefix(1);
  }
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.remove_suffix(1);
  }
  return line;
}

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream in{std::string(line)};
  std::string tok;
  while (in >> tok) out.push_back(std::move(tok));
  return out;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line_no) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    fail(line_no, "expected an unsigned integer, got '" + tok + "'");
  }
  return value;
}

}  // namespace

ShardSpec parse_shard_spec(std::string_view text) {
  ShardSpec spec;
  spec.keyspace = 0;
  bool saw_policy = false;
  std::vector<std::pair<multicast::GroupId, double>> traffic_lines;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    auto eol = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    auto line = clean(raw);
    if (line.empty()) continue;

    auto toks = tokens_of(line);
    if (toks[0] == "policy") {
      if (toks.size() != 2) fail(line_no, "usage: policy hash|range");
      if (toks[1] == "hash") {
        spec.policy = multicast::ShardPolicy::kHash;
      } else if (toks[1] == "range") {
        spec.policy = multicast::ShardPolicy::kRange;
      } else {
        fail(line_no, "unknown policy '" + toks[1] + "'");
      }
      saw_policy = true;
    } else if (toks[0] == "keyspace") {
      if (toks.size() != 2) fail(line_no, "usage: keyspace <N>");
      spec.keyspace = parse_u64(toks[1], line_no);
    } else if (toks[0].size() > 1 && toks[0][0] == 'm') {
      // Traffic line: m<groupId> <weight>.
      if (toks.size() != 2) fail(line_no, "usage: m<groupId> <weight>");
      auto group = parse_u64(toks[0].substr(1), line_no);
      double weight = 0;
      try {
        std::size_t used = 0;
        weight = std::stod(toks[1], &used);
        if (used != toks[1].size()) throw std::invalid_argument(toks[1]);
      } catch (const std::exception&) {
        fail(line_no, "expected a weight, got '" + toks[1] + "'");
      }
      if (weight < 0) fail(line_no, "traffic weight must be >= 0");
      traffic_lines.emplace_back(static_cast<multicast::GroupId>(group),
                                 weight);
    } else {
      // Group line: <groupId> [<replica> <replica> ...].
      ShardGroup group;
      group.id = static_cast<multicast::GroupId>(parse_u64(toks[0], line_no));
      if (toks.size() < 3 || toks[1].front() != '[' ||
          toks.back().back() != ']') {
        fail(line_no, "usage: <groupId> [<replica> <replica> ...]");
      }
      toks[1].erase(toks[1].begin());
      toks.back().pop_back();
      for (std::size_t i = 1; i < toks.size(); ++i) {
        if (toks[i].empty()) continue;  // "[0" style spacing artifacts
        group.replicas.push_back(
            static_cast<std::uint32_t>(parse_u64(toks[i], line_no)));
      }
      if (group.replicas.empty()) fail(line_no, "empty replica set");
      spec.groups.push_back(std::move(group));
    }
  }

  if (!saw_policy) throw std::invalid_argument("shard spec: missing policy");
  if (spec.groups.empty()) {
    throw std::invalid_argument("shard spec: no groups defined");
  }
  if (spec.groups.size() >= 64) {
    throw std::invalid_argument(
        "shard spec: at most 63 groups fit the group mask");
  }
  std::sort(spec.groups.begin(), spec.groups.end(),
            [](const ShardGroup& a, const ShardGroup& b) {
              return a.id < b.id;
            });
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    if (spec.groups[i].id != i) {
      throw std::invalid_argument(
          "shard spec: group ids must be dense 0..n-1 (missing or duplicate "
          "id " +
          std::to_string(i) + ")");
    }
  }
  // Uniform replica sets: every worker group lives on every replica (thread
  // t_i of each replica is in g_i), so an asymmetric spec is unbuildable.
  auto canon = spec.groups.front().replicas;
  std::sort(canon.begin(), canon.end());
  for (const auto& g : spec.groups) {
    auto rs = g.replicas;
    std::sort(rs.begin(), rs.end());
    if (rs != canon) {
      throw std::invalid_argument(
          "shard spec: replica sets must be uniform across groups (group " +
          std::to_string(g.id) + " differs)");
    }
    if (std::adjacent_find(rs.begin(), rs.end()) != rs.end()) {
      throw std::invalid_argument("shard spec: duplicate replica in group " +
                                  std::to_string(g.id));
    }
  }
  if (spec.keyspace < spec.groups.size()) {
    throw std::invalid_argument(
        "shard spec: keyspace must cover at least one key per group");
  }

  spec.traffic.assign(spec.groups.size(), 1.0);
  for (auto [group, weight] : traffic_lines) {
    if (group >= spec.groups.size()) {
      throw std::invalid_argument("shard spec: traffic line names undefined "
                                  "group " +
                                  std::to_string(group));
    }
    spec.traffic[group] = weight;
  }
  return spec;
}

std::string format_shard_spec(const ShardSpec& spec) {
  std::ostringstream out;
  out << "# Sharded P-SMR deployment\n";
  out << "policy " << multicast::shard_policy_name(spec.policy) << "\n";
  out << "keyspace " << spec.keyspace << "\n\n";
  out << "# Multicast groups: groupId [replica_numbers]\n";
  out << "#     (must be defined before referenced in a traffic line)\n";
  for (const auto& g : spec.groups) {
    out << g.id << " [";
    for (std::size_t i = 0; i < g.replicas.size(); ++i) {
      if (i != 0) out << " ";
      out << g.replicas[i];
    }
    out << "]\n";
  }
  out << "\n# traffic: m<groupId> <relative_weight>\n";
  for (std::size_t g = 0; g < spec.traffic.size(); ++g) {
    out << "m" << g << " " << spec.traffic[g] << "\n";
  }
  return out.str();
}

ShardSpec make_uniform_shard_spec(std::size_t shards, std::size_t replicas,
                                  std::uint64_t keyspace,
                                  multicast::ShardPolicy policy) {
  ShardSpec spec;
  spec.policy = policy;
  spec.keyspace = keyspace;
  for (std::size_t g = 0; g < shards; ++g) {
    ShardGroup group;
    group.id = static_cast<multicast::GroupId>(g);
    for (std::size_t r = 0; r < replicas; ++r) {
      group.replicas.push_back(static_cast<std::uint32_t>(r));
    }
    spec.groups.push_back(std::move(group));
  }
  spec.traffic.assign(shards, 1.0);
  return spec;
}

DeploymentConfig shard_deployment_config(const ShardSpec& spec) {
  DeploymentConfig cfg;
  cfg.mode = Mode::kPsmr;
  cfg.mpl = spec.num_groups();
  cfg.replicas = spec.num_replicas();
  return cfg;
}

}  // namespace psmr::smr
