#include "smr/scheduler.h"

#include "util/log.h"

namespace psmr::smr {

namespace {

/// Spools each response into the reply coalescer as soon as the service
/// hands it over; execute_run flushes at the batch boundary, so a batch's
/// replies to the same proxy leave as one wire frame.
class ReplySink final : public ResponseSink {
 public:
  ReplySink(ResponseCoalescer& coalescer, std::span<const Command> cmds)
      : coalescer_(coalescer), cmds_(cmds) {}

  void accept(std::size_t index, util::Buffer payload) override {
    const Command& cmd = cmds_[index];
    Response resp;
    resp.client = cmd.client;
    resp.seq = cmd.seq;
    resp.payload = std::move(payload);
    coalescer_.send(cmd.reply_to, resp);
  }

 private:
  ResponseCoalescer& coalescer_;
  std::span<const Command> cmds_;
};

}  // namespace

SchedulerCore::SchedulerCore(transport::Network& net,
                             std::unique_ptr<Service> service,
                             std::shared_ptr<const CGFunction> cg,
                             std::size_t num_workers, std::string name,
                             SchedulerOptions options)
    : net_(net),
      service_(std::move(service)),
      cg_(std::move(cg)),
      name_(std::move(name)),
      opts_(options) {
  if (cg_->mpl() != num_workers) {
    throw std::invalid_argument(
        "SchedulerCore: C-G mpl must equal the worker count");
  }
  if (opts_.run_length == 0) {
    throw std::invalid_argument("SchedulerCore: run_length must be >= 1");
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  auto [id, box] = net.register_node();
  reply_node_ = id;
  coalescer_ =
      std::make_unique<ResponseCoalescer>(net_, reply_node_, opts_.responses);
}

SchedulerCore::~SchedulerCore() { stop(); }

void SchedulerCore::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void SchedulerCore::stop() {
  for (auto& slot : slots_) slot->queue.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void SchedulerCore::schedule(Command cmd) {
  ++schedule_ticks_;
  auto [it, fresh] = dedup_.try_emplace(cmd.client);
  if (!fresh && cmd.seq <= it->second.seq) {
    it->second.last_seen = schedule_ticks_;
    return;  // duplicate submission
  }
  it->second = {cmd.seq, schedule_ticks_};
  maybe_evict_dedup();

  const multicast::GroupSet groups = cg_->groups(cmd);
  if (groups.singleton()) {
    dispatch(groups.min(), std::move(cmd));
    return;
  }
  // Serialized command: let in-flight work finish, run it alone, and only
  // then resume dispatching (the paper's drain-assign-drain behaviour).
  drain();
  dispatch(groups.min() < slots_.size() ? groups.min() : 0, std::move(cmd));
  drain();
}

void SchedulerCore::maybe_evict_dedup() {
  const std::uint64_t window = opts_.dedup_idle_window;
  if (window == 0) return;
  // Sweep every window/4 ticks: amortized O(1) per command, and an entry
  // survives at most window + window/4 ticks past its client's last use.
  const std::uint64_t sweep_every = window / 4 + 1;
  if (schedule_ticks_ % sweep_every != 0) return;
  std::erase_if(dedup_, [&](const auto& entry) {
    return schedule_ticks_ - entry.second.last_seen > window;
  });
}

void SchedulerCore::dispatch(std::size_t worker, Command cmd) {
  {
    std::lock_guard lock(idle_mu_);
    ++in_flight_;
  }
  slots_[worker]->queue.push(std::move(cmd));
}

void SchedulerCore::drain() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void SchedulerCore::execute_run(std::vector<Command>& run) {
  ReplySink sink(*coalescer_, run);
  CommandBatch batch{std::span<const Command>(run), &sink};
  service_->execute_batch(batch);
  // Batch boundary: the run's replies go on the wire before this worker
  // reports idle, so drain() never completes with responses still spooled.
  coalescer_->flush_batch();
  executed_.fetch_add(run.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(idle_mu_);
    in_flight_ -= static_cast<std::int64_t>(run.size());
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
}

void SchedulerCore::worker_loop(std::size_t i) {
  auto& slot = *slots_[i];
  std::vector<Command> run;
  run.reserve(opts_.run_length);
  // A popped command that cannot join the current run (dependency, or the
  // run is this worker's to order) carries over as the next run's seed; the
  // queue has a single consumer, so holding one back preserves FIFO order.
  std::optional<Command> held;
  for (;;) {
    run.clear();
    if (held) {
      run.push_back(std::move(*held));
      held.reset();
    } else {
      auto cmd = slot.queue.pop();
      if (!cmd) break;  // queue closed and drained
      run.push_back(std::move(*cmd));
    }
    while (run.size() < opts_.run_length) {
      auto next = slot.queue.try_pop();
      if (!next) break;  // drain-on-empty: never wait to fill a batch
      bool joins = true;
      for (const Command& member : run) {
        if (!service_->may_share_batch(member, *next)) {
          joins = false;
          break;
        }
      }
      if (!joins) {
        held = std::move(*next);
        break;
      }
      run.push_back(std::move(*next));
    }
    execute_run(run);
  }
}

}  // namespace psmr::smr
