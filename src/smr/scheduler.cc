#include "smr/scheduler.h"

#include "util/log.h"

namespace psmr::smr {

SchedulerCore::SchedulerCore(transport::Network& net,
                             std::unique_ptr<Service> service,
                             std::shared_ptr<const CGFunction> cg,
                             std::size_t num_workers, std::string name)
    : net_(net),
      service_(std::move(service)),
      cg_(std::move(cg)),
      name_(std::move(name)) {
  if (cg_->mpl() != num_workers) {
    throw std::invalid_argument(
        "SchedulerCore: C-G mpl must equal the worker count");
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  auto [id, box] = net.register_node();
  reply_node_ = id;
}

SchedulerCore::~SchedulerCore() { stop(); }

void SchedulerCore::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void SchedulerCore::stop() {
  for (auto& slot : slots_) slot->queue.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void SchedulerCore::schedule(Command cmd) {
  auto [it, fresh] = dedup_.try_emplace(cmd.client, 0);
  if (!fresh && cmd.seq <= it->second) return;  // duplicate submission
  it->second = cmd.seq;

  const multicast::GroupSet groups = cg_->groups(cmd);
  if (groups.singleton()) {
    dispatch(groups.min(), std::move(cmd));
    return;
  }
  // Serialized command: let in-flight work finish, run it alone, and only
  // then resume dispatching (the paper's drain-assign-drain behaviour).
  drain();
  dispatch(groups.min() < slots_.size() ? groups.min() : 0, std::move(cmd));
  drain();
}

void SchedulerCore::dispatch(std::size_t worker, Command cmd) {
  {
    std::lock_guard lock(idle_mu_);
    ++in_flight_;
  }
  slots_[worker]->queue.push(std::move(cmd));
}

void SchedulerCore::drain() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void SchedulerCore::worker_loop(std::size_t i) {
  auto& slot = *slots_[i];
  while (auto cmd = slot.queue.pop()) {
    Response resp;
    resp.client = cmd->client;
    resp.seq = cmd->seq;
    resp.payload = service_->execute(*cmd);
    executed_.fetch_add(1, std::memory_order_relaxed);
    net_.send(reply_node_, cmd->reply_to, transport::MsgType::kSmrResponse,
              resp.encode());
    {
      std::lock_guard lock(idle_mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace psmr::smr
