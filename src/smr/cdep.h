// Command dependencies (C-Dep) — paper Section IV-C, "Defining command
// dependencies".
//
// The prototype encoding has exactly two levels, which we reproduce:
//   * ALWAYS pairs: commands that depend on each other regardless of
//     parameters (e.g., B+-tree insert/delete depend on everything);
//   * SAME-KEY pairs: commands that depend on each other only when their
//     key parameter matches (e.g., two updates on the same object).
// "If no entry exists in C-Dep asserting the dependency of two commands,
// they are independent."
//
// C-Dep is supplied by the service designer together with the service code;
// it drives (a) the derivation of C-G functions (cg.h), (b) the sP-SMR
// scheduler's conflict decisions, and (c) the linearizability checker used
// in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "smr/command.h"

namespace psmr::smr {

/// Extracts the conflict key of a command (std::nullopt when the command has
/// no key, e.g. a whole-structure operation).  Service-defined.
using KeyFn = std::function<std::optional<std::uint64_t>(const Command&)>;

class CDep {
 public:
  /// Declares that `a` and `b` always depend on each other (symmetric).
  CDep& always(CommandId a, CommandId b) {
    always_.insert(pack(a, b));
    always_.insert(pack(b, a));
    return *this;
  }

  /// Declares dependency only when both commands carry the same key.
  CDep& same_key(CommandId a, CommandId b) {
    same_key_.insert(pack(a, b));
    same_key_.insert(pack(b, a));
    return *this;
  }

  [[nodiscard]] bool always_conflicts(CommandId a, CommandId b) const {
    return always_.contains(pack(a, b));
  }
  [[nodiscard]] bool same_key_conflicts(CommandId a, CommandId b) const {
    return same_key_.contains(pack(a, b));
  }

  /// Full conflict relation between two concrete invocations.
  [[nodiscard]] bool conflicts(const Command& x, const Command& y,
                               const KeyFn& key_of) const {
    if (always_conflicts(x.cmd, y.cmd)) return true;
    if (!same_key_conflicts(x.cmd, y.cmd)) return false;
    auto kx = key_of(x);
    auto ky = key_of(y);
    return kx.has_value() && ky.has_value() && *kx == *ky;
  }

  /// True if `c` has at least one ALWAYS dependency (on itself or others).
  [[nodiscard]] bool has_always_edge(CommandId c) const {
    for (auto packed : always_) {
      if (static_cast<CommandId>(packed >> 16) == c) return true;
    }
    return false;
  }

  /// Number of SAME-KEY dependencies `c` participates in.  Used by the C-G
  /// derivation as a tie-break: a command whose dependencies are satisfied
  /// by key partitioning should stay keyed rather than become global.
  [[nodiscard]] std::size_t same_key_degree(CommandId c) const {
    std::size_t n = 0;
    for (auto packed : same_key_) {
      if (static_cast<CommandId>(packed >> 16) == c) ++n;
    }
    return n;
  }

  /// Canonical (a <= b) enumeration of the ALWAYS dependency graph's edges.
  [[nodiscard]] std::vector<std::pair<CommandId, CommandId>> always_pairs()
      const {
    std::vector<std::pair<CommandId, CommandId>> out;
    for (auto packed : always_) {
      auto a = static_cast<CommandId>(packed >> 16);
      auto b = static_cast<CommandId>(packed & 0xffff);
      if (a <= b) out.emplace_back(a, b);
    }
    return out;
  }

 private:
  static constexpr std::uint32_t pack(CommandId a, CommandId b) {
    return (static_cast<std::uint32_t>(a) << 16) | b;
  }

  std::unordered_set<std::uint32_t> always_;
  std::unordered_set<std::uint32_t> same_key_;
};

/// Dense-matrix view of a C-Dep for hot-path independence checks.
///
/// The batch accumulators in SchedulerCore/PsmrReplica ask "may these two
/// concrete invocations share a batch?" once per (candidate, run member)
/// pair; CDep::conflicts answers through two hash probes plus key
/// extraction, which at replica execution rates is real money.  This
/// flattens the ALWAYS/SAME-KEY relations into byte matrices so the common
/// case (read vs read: no edge at all) is two array loads, and keys are
/// only extracted when a SAME-KEY edge actually exists.
class CDepMatrix {
 public:
  CDepMatrix(const CDep& cdep, CommandId max_command_id, KeyFn key_of)
      : width_(static_cast<std::size_t>(max_command_id) + 1),
        cell_(width_ * width_, kNone),
        key_of_(std::move(key_of)) {
    for (CommandId a = 0; a <= max_command_id; ++a) {
      for (CommandId b = 0; b <= max_command_id; ++b) {
        if (cdep.always_conflicts(a, b)) {
          at(a, b) = kAlways;
        } else if (cdep.same_key_conflicts(a, b)) {
          at(a, b) = kSameKey;
        }
      }
    }
  }

  /// True when x and y are independent (no conflict), i.e. may share an
  /// execution batch.  Commands above max_command_id conservatively
  /// conflict with everything.
  [[nodiscard]] bool independent(const Command& x, const Command& y) const {
    if (x.cmd >= width_ || y.cmd >= width_) return false;
    switch (at(x.cmd, y.cmd)) {
      case kNone:
        return true;
      case kAlways:
        return false;
      default: {
        auto kx = key_of_(x);
        auto ky = key_of_(y);
        return !(kx.has_value() && ky.has_value() && *kx == *ky);
      }
    }
  }

 private:
  enum Cell : std::uint8_t { kNone = 0, kAlways = 1, kSameKey = 2 };
  [[nodiscard]] std::uint8_t at(CommandId a, CommandId b) const {
    return cell_[static_cast<std::size_t>(a) * width_ + b];
  }
  [[nodiscard]] std::uint8_t& at(CommandId a, CommandId b) {
    return cell_[static_cast<std::size_t>(a) * width_ + b];
  }

  std::size_t width_;
  std::vector<std::uint8_t> cell_;
  KeyFn key_of_;
};

}  // namespace psmr::smr
