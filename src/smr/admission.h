// Overload admission control at the ClientProxy/coordinator boundary.
//
// The paper evaluates P-SMR only at fixed multiprogramming levels; past the
// saturation knee an open-loop client population queues commands into the
// multicast rings faster than replicas drain them, and every queued command
// makes the ones behind it slower (growing pending maps, batch backlogs,
// retransmissions).  Admission control converts that collapse into explicit,
// fail-fast rejections (transport::MsgType::kSmrRejected) before a command
// ever reaches a coordinator, so offered load past the knee degrades p99
// gracefully instead of dragging goodput down.
//
// Two cooperating valves, in the order they are applied:
//   * an occupancy-driven shed policy: the controller samples the multicast
//     layer's CoordinatorStats and computes the in-ring backlog (commands
//     submitted to coordinators but not yet decided) — the queue-depth
//     gradient that IRON's utility-function admission planner drives
//     per-flow rates from.  Backlog above `shed_enter_occupancy` starts
//     shedding every new command; shedding stops only when the backlog
//     falls back below `shed_exit_occupancy` (hysteresis, so the valve
//     doesn't flap at the threshold);
//   * a per-client token bucket: each client sustains at most
//     `client_rate_cps` admissions with bursts up to `client_burst`, so one
//     aggressive client cannot starve the others even below the occupancy
//     thresholds.
//
// One controller is shared by every client proxy of a deployment (the
// occupancy signal is global; the buckets are per ClientId).  Enforcement
// happens inside ClientProxy::submit: a shed command never touches the bus —
// the proxy loops a kSmrRejected frame through its own mailbox so the
// rejection completes through poll() like any other response, one hop later.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "paxos/coordinator.h"
#include "smr/command.h"

namespace psmr::smr {

struct AdmissionConfig {
  /// Master switch; a disabled config never sheds (Deployment then skips
  /// building a controller at all).
  bool enabled = false;

  /// Per-client sustained admission rate, commands/sec.  0 disables the
  /// token bucket (occupancy shedding still applies).
  double client_rate_cps = 0;
  /// Token bucket capacity (maximum burst).  0 defaults to one batch's
  /// worth: max(1, client_rate_cps / 100).
  double client_burst = 0;

  /// In-ring backlog (commands submitted to coordinators but not yet
  /// decided) at which occupancy shedding starts...
  std::uint64_t shed_enter_occupancy = 8192;
  /// ...and the lower backlog at which it stops (hysteresis band).
  std::uint64_t shed_exit_occupancy = 4096;

  /// Occupancy sample cadence: admit() re-reads the CoordinatorStats source
  /// at most this often.  0 samples on every admit() (tests).
  std::int64_t occupancy_refresh_us = 1000;
};

/// Verdict for one command.  Non-kAdmit verdicts ride the kSmrRejected
/// payload as a single byte so the client can tell throttling (its own
/// bucket) from overload shedding (system-wide backlog).
enum class Admit : std::uint8_t {
  kAdmit = 0,
  kThrottled = 1,     // per-client token bucket empty
  kShedOverload = 2,  // occupancy shed policy active
};

[[nodiscard]] constexpr const char* admit_name(Admit a) {
  switch (a) {
    case Admit::kAdmit: return "admit";
    case Admit::kThrottled: return "throttled";
    case Admit::kShedOverload: return "shed-overload";
  }
  return "?";
}

/// Counters + gauges; snapshot type, aggregated with operator+=.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t throttled = 0;      // token-bucket rejections
  std::uint64_t shed_overload = 0;  // occupancy rejections
  std::uint64_t shed_entries = 0;   // transitions into the shedding state
  std::uint64_t occupancy_samples = 0;
  /// Gauges (last sample wins on +=).
  std::uint64_t last_occupancy = 0;
  bool shedding = false;

  [[nodiscard]] std::uint64_t rejected() const {
    return throttled + shed_overload;
  }

  AdmissionStats& operator+=(const AdmissionStats& o) {
    admitted += o.admitted;
    throttled += o.throttled;
    shed_overload += o.shed_overload;
    shed_entries += o.shed_entries;
    occupancy_samples += o.occupancy_samples;
    last_occupancy = o.last_occupancy;
    shedding = shedding || o.shedding;
    return *this;
  }
};

class AdmissionController {
 public:
  /// Supplies the aggregate CoordinatorStats the occupancy signal is
  /// derived from (a Deployment passes its Bus::total_stats).
  using OccupancySource = std::function<paxos::CoordinatorStats()>;

  AdmissionController(AdmissionConfig cfg, OccupancySource source);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Verdict for one command from `client` at time `now_us` (callers pass
  /// util::now_us(); tests pass synthetic clocks).  Thread-safe.
  Admit admit(ClientId client, std::int64_t now_us);

  [[nodiscard]] AdmissionStats stats() const;
  [[nodiscard]] const AdmissionConfig& config() const { return cfg_; }

  /// The queue-depth signal: commands received by coordinators but not yet
  /// decided.  (Commands lost to fault injection stay counted — a backlog
  /// the ring will retransmit its way through.)
  [[nodiscard]] static std::uint64_t occupancy_of(
      const paxos::CoordinatorStats& s) {
    return s.submit_commands > s.decided_commands
               ? s.submit_commands - s.decided_commands
               : 0;
  }

 private:
  void refresh_occupancy_locked(std::int64_t now_us);

  const AdmissionConfig cfg_;
  const OccupancySource source_;
  const double burst_;

  mutable std::mutex mu_;
  struct Bucket {
    double tokens = 0;
    std::int64_t last_us = 0;
    bool primed = false;  // first admit() fills the bucket to burst
  };
  std::unordered_map<ClientId, Bucket> buckets_;
  std::int64_t last_refresh_us_ = 0;
  bool refreshed_once_ = false;
  bool shedding_ = false;
  std::uint64_t occupancy_ = 0;
  AdmissionStats stats_;
};

}  // namespace psmr::smr
