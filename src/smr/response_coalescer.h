// Response-side coalescing: the last per-command hot path between service
// execution and the client.
//
// The submit path batches end to end (coordinator batches, SUBMIT_MANY
// coalescing, batched execution runs), but each reply used to leave the
// replica as its own kSmrResponse wire message, so per-command send cost
// dominated the batched execution pipeline.  A ResponseCoalescer spools the
// marshaled replies a replica's workers produce, bucketed by destination
// client-proxy node, and flushes each bucket as one kSmrResponseMany frame
// (see response_batch.h).
//
// Flush policy.  The natural flush unit is the CommandBatch a worker just
// executed: execute_run() calls flush_batch() after the service hands back
// the batch's responses, so execution batching carries through to the wire
// and no reply ever waits on traffic that may never come.  Within a batch,
// a bucket also flushes early when it hits the response-count cap, the byte
// cap, or when its oldest spooled response exceeds the tiny max_delay
// (checked lazily on append — there is no timer thread; the bounding flush
// is always the enclosing batch boundary).
//
// Flat combining (same discipline as multicast::SubmitCoalescer): the
// thread that triggers a flush drains every bucket until the spool is
// empty, while concurrent workers just append and return — their replies
// ride in the active flusher's next frame.  Every spooled response is on
// the wire before the triggering flush_batch() returns or an active
// flusher's drain loop ends, so nothing can be stranded.
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "smr/command.h"
#include "transport/network.h"

namespace psmr::smr {

struct ResponseCoalescerOptions {
  /// Off restores one kSmrResponse wire message per reply (stats are still
  /// counted, so on/off comparisons read the same record).
  bool enabled = true;
  /// Per-destination response-count flush cap.
  std::size_t max_responses = 64;
  /// Per-destination byte flush cap (encoded response bytes).
  std::size_t max_bytes = 48 * 1024;
  /// Oldest-spooled-response age that forces a flush, checked on append.
  /// Bounds reply latency inside long execution batches; the batch-boundary
  /// flush is what bounds it everywhere else.
  std::chrono::microseconds max_delay{200};
};

/// Wire-level response counters, the reply-path analogue of the multicast
/// layer's CoordinatorStats.  Snapshot type; interval deltas via operator-.
struct ResponseStats {
  /// kSmrResponse + kSmrResponseMany wire messages sent.
  std::uint64_t wire_messages = 0;
  /// Responses those messages carried.
  std::uint64_t responses = 0;
  // Per-wire-message flush reasons.  When coalescing is enabled these four
  // partition wire_messages; when disabled every send counts uncoalesced.
  // A cap/age reason is attributed only to the bucket that tripped it; any
  // other buckets the drain loop sweeps in the same pass (including
  // responses spooled concurrently) count under flush_batch.
  std::uint64_t flush_size = 0;     // response-count cap hit
  std::uint64_t flush_bytes = 0;    // byte cap hit
  std::uint64_t flush_timeout = 0;  // oldest spooled response aged out
  std::uint64_t flush_batch = 0;    // batch-boundary flush or drain sweep
  std::uint64_t uncoalesced = 0;    // sent directly (coalescing disabled)

  [[nodiscard]] double mean_responses_per_message() const {
    return wire_messages == 0 ? 0.0
                              : static_cast<double>(responses) /
                                    static_cast<double>(wire_messages);
  }

  ResponseStats& operator+=(const ResponseStats& o) {
    wire_messages += o.wire_messages;
    responses += o.responses;
    flush_size += o.flush_size;
    flush_bytes += o.flush_bytes;
    flush_timeout += o.flush_timeout;
    flush_batch += o.flush_batch;
    uncoalesced += o.uncoalesced;
    return *this;
  }
  ResponseStats operator-(const ResponseStats& o) const {
    ResponseStats d = *this;
    d.wire_messages -= o.wire_messages;
    d.responses -= o.responses;
    d.flush_size -= o.flush_size;
    d.flush_bytes -= o.flush_bytes;
    d.flush_timeout -= o.flush_timeout;
    d.flush_batch -= o.flush_batch;
    d.uncoalesced -= o.uncoalesced;
    return d;
  }
};

class ResponseCoalescer {
 public:
  /// `from` is the replica's send-only reply node.
  ResponseCoalescer(transport::Network& net, transport::NodeId from,
                    ResponseCoalescerOptions opts = {})
      : net_(net), from_(from), opts_(opts) {}

  ResponseCoalescer(const ResponseCoalescer&) = delete;
  ResponseCoalescer& operator=(const ResponseCoalescer&) = delete;

  /// Spools one reply for `resp.client`'s proxy node `to`; flushes that
  /// bucket when a cap or the age bound trips (or sends directly when
  /// coalescing is disabled).
  void send(transport::NodeId to, const Response& resp);

  /// Batch-boundary flush: drains every bucket.  Call after each
  /// Service::execute_batch and after any out-of-band reply (dedup replay),
  /// so no spooled response outlives the work that produced it.
  void flush_batch();

  [[nodiscard]] ResponseStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  /// Test hook: invoked by the active flusher after each wire send, with
  /// the coalescer lock released — lets a test rendezvous a concurrent
  /// send with an in-progress drain deterministically.  Pass {} to clear.
  void set_flush_pause(std::function<void()> hook) {
    std::lock_guard lock(mu_);
    flush_pause_ = std::move(hook);
  }

 private:
  enum class FlushReason { kSize, kBytes, kTimeout, kBatch };

  struct Bucket {
    std::vector<util::Buffer> encoded;
    std::size_t bytes = 0;
    std::int64_t oldest_us = 0;  // spool time of the first pending response
  };

  /// Drains every bucket; becomes a no-op piggyback when another thread is
  /// already flushing.  Caller holds `lock`.  `reason` is attributed to the
  /// `trigger` destination's bucket only (kNoNode: no specific trigger);
  /// every other drained bucket counts as a kBatch sweep.
  void flush_locked(std::unique_lock<std::mutex>& lock, FlushReason reason,
                    transport::NodeId trigger = transport::kNoNode);

  transport::Network& net_;
  const transport::NodeId from_;
  const ResponseCoalescerOptions opts_;

  mutable std::mutex mu_;
  std::unordered_map<transport::NodeId, Bucket> buckets_;
  std::size_t spooled_ = 0;  // responses across all buckets
  bool flushing_ = false;
  ResponseStats stats_;
  std::function<void()> flush_pause_;
};

}  // namespace psmr::smr
