// Multi-response wire format (kSmrResponseMany) — the response-side twin of
// the submit path's SUBMIT_MANY.
//
// Replicas coalesce the replies of an execution batch that target the same
// client-proxy node into one wire message (see response_coalescer.h); the
// proxy demultiplexes it back into individual Responses.  Layout:
//
//   u32 count                      (1 <= count <= kMaxResponsesPerMessage)
//   count x { u32 len, len bytes } (each an encoded smr::Response)
//
// The decode side is deliberately paranoid: this is the one message type a
// client proxy accepts from the network, so a malformed frame must be
// rejected without ever reading past the buffer (util::Reader bounds-checks
// every access) and without amplifying a small frame into a huge allocation
// (the count is validated against both the hard cap and the bytes actually
// present before anything is reserved).
#pragma once

#include <optional>
#include <vector>

#include "smr/command.h"

namespace psmr::smr {

/// Hard cap on responses per wire message.  Far above any coalescer flush
/// cap; its job is to bound what a decoder will attempt for a hostile count.
inline constexpr std::uint32_t kMaxResponsesPerMessage = 4096;

/// Encodes pre-encoded responses (each produced by Response::encode) into
/// one kSmrResponseMany payload.  The coalescer spools encoded responses, so
/// taking them in that form avoids a second marshaling pass.
inline util::Buffer encode_response_batch(
    const std::vector<util::Buffer>& encoded) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(encoded.size()));
  for (const auto& r : encoded) w.bytes(r);
  return w.take();
}

/// Decodes a kSmrResponseMany payload.  Returns std::nullopt if the frame is
/// malformed in any way: zero responses, a count above the cap or beyond
/// what the remaining bytes could possibly hold, a truncated length prefix
/// or body, an inner Response that does not decode, or trailing bytes.
inline std::optional<std::vector<Response>> decode_response_batch(
    std::span<const std::uint8_t> data) {
  try {
    util::Reader r(data);
    const std::uint32_t count = r.u32();
    if (count == 0 || count > kMaxResponsesPerMessage) return std::nullopt;
    // Each response costs at least a length prefix (4 bytes) plus the
    // minimal Response encoding; reject impossible counts before reserving.
    if (static_cast<std::size_t>(count) * sizeof(std::uint32_t) >
        r.remaining()) {
      return std::nullopt;
    }
    std::vector<Response> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      auto body = r.bytes_view();  // bounds-checked length prefix
      auto resp = Response::decode(body);
      if (!resp) return std::nullopt;
      out.push_back(std::move(*resp));
    }
    if (!r.done()) return std::nullopt;
    return out;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace psmr::smr
