// no-rep: unreplicated scheduler-worker server (paper Section VI-B).
//
// "A non-replicated architecture with a single multi-threaded server
// directly connected to the clients ... a scheduler at the server is
// responsible for scheduling incoming commands for execution at worker
// threads."  Identical execution engine to sP-SMR but fed straight from
// client messages — isolating the cost of atomic multicast when the two are
// compared.
#pragma once

#include <memory>

#include "smr/scheduler.h"
#include "transport/endpoint.h"

namespace psmr::smr {

class NoRepServer : public transport::Endpoint {
 public:
  NoRepServer(transport::Network& net, std::unique_ptr<Service> service,
              std::shared_ptr<const CGFunction> cg, std::size_t mpl,
              SchedulerOptions options = {})
      : Endpoint(net, "norep-server"),
        core_(net, std::move(service), std::move(cg), mpl, "norep",
              options) {}

  ~NoRepServer() override { stop_all(); }

  void start_all() {
    core_.start();
    start();
  }
  void stop_all() {
    stop();  // endpoint thread first: it feeds the core
    core_.stop();
  }

  [[nodiscard]] std::uint64_t executed() const { return core_.executed(); }
  [[nodiscard]] const Service& service() const { return core_.service(); }
  /// Reply-path wire counters of the execution core (the per-command
  /// kSmrResponse sends of the seed now leave through its coalescer).
  [[nodiscard]] ResponseStats response_stats() const {
    return core_.response_stats();
  }

 protected:
  void handle(transport::Message msg) override {
    if (msg.type != transport::MsgType::kSmrDirect) return;
    auto cmd = Command::decode(msg.payload);
    if (cmd) core_.schedule(std::move(*cmd));
  }

 private:
  SchedulerCore core_;
};

}  // namespace psmr::smr
