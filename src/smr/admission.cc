#include "smr/admission.h"

#include <algorithm>

namespace psmr::smr {

AdmissionController::AdmissionController(AdmissionConfig cfg,
                                         OccupancySource source)
    : cfg_(cfg),
      source_(std::move(source)),
      burst_(cfg.client_burst > 0
                 ? cfg.client_burst
                 : std::max(1.0, cfg.client_rate_cps / 100.0)) {}

void AdmissionController::refresh_occupancy_locked(std::int64_t now_us) {
  if (!source_) return;
  if (refreshed_once_ && cfg_.occupancy_refresh_us > 0 &&
      now_us - last_refresh_us_ < cfg_.occupancy_refresh_us) {
    return;
  }
  refreshed_once_ = true;
  last_refresh_us_ = now_us;
  occupancy_ = occupancy_of(source_());
  ++stats_.occupancy_samples;
  // Hysteresis: enter at the high threshold, leave at the low one, so the
  // valve holds through the decided-commands catch-up burst that follows a
  // shed instead of flapping around one threshold.
  if (!shedding_ && occupancy_ >= cfg_.shed_enter_occupancy) {
    shedding_ = true;
    ++stats_.shed_entries;
  } else if (shedding_ && occupancy_ <= cfg_.shed_exit_occupancy) {
    shedding_ = false;
  }
}

Admit AdmissionController::admit(ClientId client, std::int64_t now_us) {
  std::lock_guard lock(mu_);
  refresh_occupancy_locked(now_us);
  if (shedding_) {
    ++stats_.shed_overload;
    return Admit::kShedOverload;
  }
  if (cfg_.client_rate_cps > 0) {
    Bucket& b = buckets_[client];
    if (!b.primed) {
      b.primed = true;
      b.tokens = burst_;
      b.last_us = now_us;
    } else if (now_us > b.last_us) {
      double refill = static_cast<double>(now_us - b.last_us) * 1e-6 *
                      cfg_.client_rate_cps;
      b.tokens = std::min(burst_, b.tokens + refill);
      b.last_us = now_us;
    }
    if (b.tokens < 1.0) {
      ++stats_.throttled;
      return Admit::kThrottled;
    }
    b.tokens -= 1.0;
  }
  ++stats_.admitted;
  return Admit::kAdmit;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard lock(mu_);
  AdmissionStats s = stats_;
  s.last_occupancy = occupancy_;
  s.shedding = shedding_;
  return s;
}

}  // namespace psmr::smr
