#include "smr/replica_psmr.h"

#include "util/log.h"

namespace psmr::smr {

PsmrReplica::PsmrReplica(transport::Network& net, multicast::Bus& bus,
                         std::unique_ptr<Service> service, std::size_t mpl,
                         std::string name)
    : net_(net),
      mpl_(mpl),
      name_(std::move(name)),
      service_(std::move(service)),
      signals_(mpl * mpl),
      dedup_(mpl) {
  if (bus.num_groups() != mpl_) {
    throw std::invalid_argument(
        "PsmrReplica: bus group count must equal the multiprogramming level");
  }
  for (std::size_t i = 0; i < mpl_; ++i) {
    subs_.push_back(bus.subscribe(static_cast<multicast::GroupId>(i)));
  }
  auto [id, box] = net.register_node();
  reply_node_ = id;  // send-only identity for responses
}

PsmrReplica::~PsmrReplica() { stop(); }

void PsmrReplica::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < mpl_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void PsmrReplica::stop() {
  for (auto& sub : subs_) sub->close();
  // Shutdown can catch workers at different stream positions: one may be
  // blocked in a synchronous-mode signal wait for a peer whose stream was
  // closed before delivering the same command.  Flush every signal cell so
  // blocked workers wake, observe their closed stream, and exit.
  for (std::size_t round = 0; round < mpl_ + 1; ++round) {
    for (auto& s : signals_) s.notify();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void PsmrReplica::execute_and_reply(const Command& cmd, std::size_t worker) {
  auto& last = dedup_[worker][cmd.client];
  Response resp;
  resp.client = cmd.client;
  resp.seq = cmd.seq;
  if (cmd.seq == last.seq) {
    resp.payload = last.response;  // retransmitted command: replay response
  } else if (cmd.seq < last.seq) {
    return;  // stale duplicate; the client has long moved on
  } else {
    resp.payload = service_->execute(cmd);
    last.seq = cmd.seq;
    last.response = resp.payload;
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
  net_.send(reply_node_, cmd.reply_to, transport::MsgType::kSmrResponse,
            resp.encode());
}

void PsmrReplica::worker_loop(std::size_t worker) {
  auto& sub = *subs_[worker];
  while (auto delivery = sub.next()) {
    auto cmd = Command::decode(delivery->message);
    if (!cmd) {
      PSMR_ERROR(name_ << " worker " << worker << ": malformed command");
      continue;
    }
    const multicast::GroupSet groups = cmd->groups;
    if (groups.singleton()) {
      // Parallel mode (Algorithm 1, lines 10-13).
      execute_and_reply(*cmd, worker);
      continue;
    }
    if (!groups.contains(static_cast<multicast::GroupId>(worker))) {
      continue;  // delivered via g_all but not a destination
    }
    // Synchronous mode (lines 14-26).
    const std::size_t executor = groups.min();
    if (worker == executor) {
      groups.for_each([&](multicast::GroupId j) {
        if (j != executor && j < mpl_) signal(j, executor).wait();
      });
      execute_and_reply(*cmd, worker);
      groups.for_each([&](multicast::GroupId j) {
        if (j != executor && j < mpl_) signal(executor, j).notify();
      });
    } else {
      signal(worker, executor).notify();
      signal(executor, worker).wait();
    }
  }
}

}  // namespace psmr::smr
