#include "smr/replica_psmr.h"

#include "util/log.h"

namespace psmr::smr {

PsmrReplica::PsmrReplica(transport::Network& net, multicast::Bus& bus,
                         std::unique_ptr<Service> service, std::size_t mpl,
                         std::string name, std::size_t run_length,
                         ResponseCoalescerOptions response_opts)
    : net_(net),
      mpl_(mpl),
      run_length_(run_length == 0 ? 1 : run_length),
      name_(std::move(name)),
      service_(std::move(service)),
      signals_(mpl * mpl),
      dedup_(mpl) {
  if (bus.num_groups() != mpl_) {
    throw std::invalid_argument(
        "PsmrReplica: bus group count must equal the multiprogramming level");
  }
  for (std::size_t i = 0; i < mpl_; ++i) {
    subs_.push_back(bus.subscribe(static_cast<multicast::GroupId>(i)));
  }
  auto [id, box] = net.register_node();
  reply_node_ = id;  // send-only identity for responses
  coalescer_ =
      std::make_unique<ResponseCoalescer>(net_, reply_node_, response_opts);
}

PsmrReplica::~PsmrReplica() { stop(); }

void PsmrReplica::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < mpl_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void PsmrReplica::stop() {
  for (auto& sub : subs_) sub->close();
  // Shutdown can catch workers at different stream positions: one may be
  // blocked in a synchronous-mode signal wait for a peer whose stream was
  // closed before delivering the same command.  Flush every signal cell so
  // blocked workers wake, observe their closed stream, and exit.
  for (std::size_t round = 0; round < mpl_ + 1; ++round) {
    for (auto& s : signals_) s.notify();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

bool PsmrReplica::admit(const Command& cmd, std::size_t worker) {
  auto it = dedup_[worker].find(cmd.client);
  if (it == dedup_[worker].end() || cmd.seq > it->second.seq) return true;
  if (cmd.seq == it->second.seq) {
    Response resp;
    resp.client = cmd.client;
    resp.seq = cmd.seq;
    resp.payload = it->second.response;
    coalescer_->send(cmd.reply_to, resp);
    // Replays happen outside an execution run, so no batch boundary is
    // coming to carry them: flush now, or a quiet stream strands the reply.
    coalescer_->flush_batch();
  }
  return false;  // stale duplicates are dropped silently
}

/// Updates the dedup cache and spools each response into the replica's
/// reply coalescer the moment the service hands it over; execute_run
/// flushes at the batch boundary.  Responses of one batch may arrive out of
/// batch order (pipelined read lane), so the cache keeps the max seq per
/// client.
class PsmrReplica::WorkerSink final : public ResponseSink {
 public:
  WorkerSink(PsmrReplica& replica, std::span<const Command> cmds,
             std::size_t worker)
      : replica_(replica), cmds_(cmds), worker_(worker) {}

  void accept(std::size_t index, util::Buffer payload) override {
    const Command& cmd = cmds_[index];
    auto& last = replica_.dedup_[worker_][cmd.client];
    if (cmd.seq > last.seq) {
      last.seq = cmd.seq;
      last.response = payload;
    }
    Response resp;
    resp.client = cmd.client;
    resp.seq = cmd.seq;
    resp.payload = std::move(payload);
    replica_.coalescer_->send(cmd.reply_to, resp);
  }

 private:
  PsmrReplica& replica_;
  std::span<const Command> cmds_;
  std::size_t worker_;
};

void PsmrReplica::execute_run(std::vector<Command>& run, std::size_t worker) {
  WorkerSink sink(*this, run, worker);
  CommandBatch batch{std::span<const Command>(run), &sink};
  service_->execute_batch(batch);
  // The executed run is the natural flush unit: its replies leave as one
  // frame per destination proxy before the worker blocks on its stream.
  coalescer_->flush_batch();
  executed_.fetch_add(run.size(), std::memory_order_relaxed);
}

void PsmrReplica::sync_execute(Command cmd, std::size_t worker) {
  // Synchronous mode (Algorithm 1, lines 14-26).
  const multicast::GroupSet groups = cmd.groups;
  const std::size_t executor = groups.min();
  if (worker == executor) {
    groups.for_each([&](multicast::GroupId j) {
      if (j != executor && j < mpl_) signal(j, executor).wait();
    });
    // Dedup/replay and execute exactly like a parallel-mode run of one.
    if (admit(cmd, worker)) {
      std::vector<Command> one;
      one.push_back(std::move(cmd));
      execute_run(one, worker);
    }
    groups.for_each([&](multicast::GroupId j) {
      if (j != executor && j < mpl_) signal(executor, j).notify();
    });
  } else {
    signal(worker, executor).notify();
    signal(executor, worker).wait();
  }
}

void PsmrReplica::worker_loop(std::size_t worker) {
  auto& sub = *subs_[worker];
  std::vector<Command> run;
  run.reserve(run_length_);
  // A decoded delivery that must not join the current run (synchronous
  // mode, dependency, or same-client ordering) is parked here and seeds the
  // next iteration, preserving stream order across the flush.
  std::optional<Command> held;
  for (;;) {
    Command first;
    if (held) {
      first = std::move(*held);
      held.reset();
    } else {
      auto delivery = sub.next();
      if (!delivery) break;
      auto cmd = Command::decode(delivery->message);
      if (!cmd) {
        PSMR_ERROR(name_ << " worker " << worker << ": malformed command");
        continue;
      }
      first = std::move(*cmd);
    }
    if (!first.groups.singleton()) {
      if (!first.groups.contains(static_cast<multicast::GroupId>(worker))) {
        continue;  // delivered via g_all but not a destination
      }
      sync_execute(std::move(first), worker);
      continue;
    }
    // Parallel mode (Algorithm 1, lines 10-13), batched: accumulate
    // consecutive independent parallel-mode deliveries until the stream
    // runs dry, a barrier command arrives, or the run is full.
    if (!admit(first, worker)) continue;
    run.clear();
    run.push_back(std::move(first));
    while (run.size() < run_length_) {
      multicast::Delivery delivery;
      // kDry and kClosed both end the accumulation — flush what we have.  A
      // closed stream additionally means the outer blocking next() would
      // never deliver again; the loop exits there on its nullopt.
      if (sub.try_next(delivery) != multicast::MergeDeliverer::Poll::kDelivered) {
        break;
      }
      auto cmd = Command::decode(delivery.message);
      if (!cmd) {
        PSMR_ERROR(name_ << " worker " << worker << ": malformed command");
        continue;
      }
      if (!cmd->groups.singleton()) {
        held = std::move(*cmd);
        break;  // synchronous-mode barrier ends the run
      }
      // Same-client ordering: a seq at or below one already in the
      // (unexecuted) run is either a retransmission or out of order; flush
      // so the dedup cache — updated only at execution — can classify it
      // exactly as the sequential path would have.
      bool ordered = true;
      bool joins = true;
      for (const Command& member : run) {
        if (cmd->client == member.client && cmd->seq <= member.seq) {
          ordered = false;
          break;
        }
        if (!service_->may_share_batch(member, *cmd)) joins = false;
      }
      if (!ordered || !joins) {
        held = std::move(*cmd);
        break;
      }
      if (!admit(*cmd, worker)) continue;
      run.push_back(std::move(*cmd));
    }
    execute_run(run, worker);
  }
}

}  // namespace psmr::smr
