#include "smr/replica_psmr.h"

#include <algorithm>
#include <deque>

#include "transport/endpoint.h"
#include "util/log.h"

namespace psmr::smr {

/// Serves the latest encoded checkpoint frame to recovering peers.
class PsmrReplica::SnapshotServer final : public transport::Endpoint {
 public:
  SnapshotServer(transport::Network& net, PsmrReplica& replica)
      : Endpoint(net, replica.name_ + "-snapshots"), replica_(replica) {}

 protected:
  void handle(transport::Message msg) override {
    if (msg.type != transport::MsgType::kSmrSnapshotReq) {
      PSMR_WARN(name() << ": unexpected msg type " << msg.type);
      return;
    }
    util::Writer w;
    auto ckpt = replica_.latest_checkpoint();
    w.boolean(ckpt.has_value());
    if (ckpt) w.bytes(*ckpt);
    send(msg.from, transport::MsgType::kSmrSnapshotRep, w.take());
  }

 private:
  PsmrReplica& replica_;
};

PsmrReplica::PsmrReplica(transport::Network& net, multicast::Bus& bus,
                         std::unique_ptr<Service> service, std::size_t mpl,
                         std::string name, std::size_t run_length,
                         ResponseCoalescerOptions response_opts,
                         CheckpointOptions checkpoint,
                         const SnapshotFrame* restore)
    : net_(net),
      bus_(bus),
      mpl_(mpl),
      run_length_(run_length == 0 ? 1 : run_length),
      name_(std::move(name)),
      ckpt_opts_(checkpoint),
      service_(std::move(service)),
      signals_(mpl * mpl),
      dedup_(mpl) {
  if (bus.num_groups() != mpl_) {
    throw std::invalid_argument(
        "PsmrReplica: bus group count must equal the multiprogramming level");
  }
  if (restore && restore->workers.size() != mpl_) {
    throw std::runtime_error(
        "PsmrReplica: snapshot frame worker count mismatch");
  }
  for (std::size_t i = 0; i < mpl_; ++i) {
    if (restore) {
      subs_.push_back(bus.subscribe_at(static_cast<multicast::GroupId>(i),
                                       restore->workers[i].positions));
      if (!subs_.back()) {
        throw std::runtime_error(
            "PsmrReplica: snapshot frame stream count mismatch");
      }
    } else {
      subs_.push_back(bus.subscribe(static_cast<multicast::GroupId>(i)));
    }
  }
  auto [id, box] = net.register_node();
  reply_node_ = id;  // send-only identity for responses
  coalescer_ =
      std::make_unique<ResponseCoalescer>(net_, reply_node_, response_opts);
  if (ckpt_opts_.enabled) {
    snapshot_server_ = std::make_unique<SnapshotServer>(net_, *this);
  }
  if (restore) install_frame(*restore);
}

PsmrReplica::~PsmrReplica() { stop(); }

void PsmrReplica::install_frame(const SnapshotFrame& frame) {
  util::Reader r(frame.service_state);
  if (!service_->restore_from(r)) {
    throw std::runtime_error(name_ + ": snapshot service state rejected");
  }
  if (service_->state_digest() != frame.service_digest) {
    throw std::runtime_error(name_ + ": snapshot digest mismatch");
  }
  for (std::size_t i = 0; i < mpl_; ++i) {
    const WorkerSnapshot& ws = frame.workers[i];
    std::deque<multicast::Delivery> pending;
    for (const auto& p : ws.pending) {
      pending.push_back(multicast::Delivery{p.stream, p.message});
    }
    subs_[i]->restore_merge_state(ws.merge_cursor, std::move(pending));
    for (const auto& d : ws.dedup) {
      dedup_[i][d.client] = LastExec{d.seq, d.response};
    }
  }
  executed_.store(frame.executed, std::memory_order_relaxed);
  {
    std::lock_guard lock(ckpt_mu_);
    latest_ckpt_ = encode_snapshot(frame);
    have_ckpt_ = true;
    last_ckpt_executed_ = frame.executed;
  }
  ckpts_taken_.fetch_add(1, std::memory_order_relaxed);
  // Re-ack: our stable replica id pinned the truncation floor while we were
  // down; acking the installed frame lets truncation advance again.
  send_checkpoint_acks(frame);
}

void PsmrReplica::start() {
  if (started_) return;
  started_ = true;
  if (snapshot_server_) snapshot_server_->start();
  for (std::size_t i = 0; i < mpl_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void PsmrReplica::stop() {
  for (auto& sub : subs_) sub->close();
  // Shutdown can catch workers at different stream positions: one may be
  // blocked in a synchronous-mode signal wait for a peer whose stream was
  // closed before delivering the same command.  Flush every signal cell so
  // blocked workers wake, observe their closed stream, and exit.
  for (std::size_t round = 0; round < mpl_ + 1; ++round) {
    for (auto& s : signals_) s.notify();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (snapshot_server_) snapshot_server_->stop();
}

transport::NodeId PsmrReplica::snapshot_node() const {
  return snapshot_server_ ? snapshot_server_->id() : transport::kNoNode;
}

bool PsmrReplica::trigger_checkpoint() {
  if (!ckpt_opts_.enabled) return false;
  // Multicast to every group so the marker lands at one position of every
  // worker's merged stream (mpl 1 has no shared ring; group 0 is "all").
  const multicast::GroupSet groups =
      mpl_ > 1 ? multicast::GroupSet::all(mpl_)
               : multicast::GroupSet::single(0);
  Command marker;
  marker.cmd = kCheckpointMarker;
  marker.client = 0;  // no real client: deployments assign ids from 1
  marker.groups = groups;
  return bus_.multicast(reply_node_, groups, marker.encode());
}

bool PsmrReplica::admit(const Command& cmd, std::size_t worker) {
  auto it = dedup_[worker].find(cmd.client);
  if (it == dedup_[worker].end() || cmd.seq > it->second.seq) return true;
  if (cmd.seq == it->second.seq) {
    Response resp;
    resp.client = cmd.client;
    resp.seq = cmd.seq;
    resp.payload = it->second.response;
    coalescer_->send(cmd.reply_to, resp);
    // Replays happen outside an execution run, so no batch boundary is
    // coming to carry them: flush now, or a quiet stream strands the reply.
    coalescer_->flush_batch();
  }
  return false;  // stale duplicates are dropped silently
}

/// Updates the dedup cache and spools each response into the replica's
/// reply coalescer the moment the service hands it over; execute_run
/// flushes at the batch boundary.  Responses of one batch may arrive out of
/// batch order (pipelined read lane), so the cache keeps the max seq per
/// client.
class PsmrReplica::WorkerSink final : public ResponseSink {
 public:
  WorkerSink(PsmrReplica& replica, std::span<const Command> cmds,
             std::size_t worker)
      : replica_(replica), cmds_(cmds), worker_(worker) {}

  void accept(std::size_t index, util::Buffer payload) override {
    const Command& cmd = cmds_[index];
    auto& last = replica_.dedup_[worker_][cmd.client];
    if (cmd.seq > last.seq) {
      last.seq = cmd.seq;
      last.response = payload;
    }
    Response resp;
    resp.client = cmd.client;
    resp.seq = cmd.seq;
    resp.payload = std::move(payload);
    replica_.coalescer_->send(cmd.reply_to, resp);
  }

 private:
  PsmrReplica& replica_;
  std::span<const Command> cmds_;
  std::size_t worker_;
};

void PsmrReplica::execute_run(std::vector<Command>& run, std::size_t worker) {
  WorkerSink sink(*this, run, worker);
  CommandBatch batch{std::span<const Command>(run), &sink};
  service_->execute_batch(batch);
  // The executed run is the natural flush unit: its replies leave as one
  // frame per destination proxy before the worker blocks on its stream.
  coalescer_->flush_batch();
  executed_.fetch_add(run.size(), std::memory_order_relaxed);
  // Periodic checkpoint trigger, counted on worker 0 only (one counter per
  // replica; every replica triggers, and duplicate markers collapse at the
  // barrier when nothing executed in between).
  if (worker == 0 && ckpt_opts_.enabled &&
      ckpt_opts_.interval_commands > 0) {
    since_ckpt_trigger_ += run.size();
    if (since_ckpt_trigger_ >= ckpt_opts_.interval_commands &&
        !ckpt_pending_.exchange(true, std::memory_order_relaxed)) {
      since_ckpt_trigger_ = 0;
      trigger_checkpoint();
    }
  }
}

void PsmrReplica::checkpoint_execute(std::size_t worker) {
  ckpt_pending_.store(false, std::memory_order_relaxed);
  if (mpl_ == 1) {
    take_checkpoint();
    return;
  }
  // Full-replica barrier on the signal matrix, executor fixed at worker 0.
  // Every worker parks exactly after consuming the marker from its own
  // stream, so the resume state worker 0 records is the deterministic cut.
  // The counting semantics keep this safe against the synchronous-mode
  // barriers sharing cells: all workers process their (identical) stream's
  // barrier events in order, so the n-th wait pairs with the n-th notify.
  if (worker == 0) {
    for (std::size_t j = 1; j < mpl_; ++j) signal(j, 0).wait();
    take_checkpoint();
    for (std::size_t j = 1; j < mpl_; ++j) signal(0, j).notify();
  } else {
    signal(worker, 0).notify();
    signal(0, worker).wait();
  }
}

void PsmrReplica::take_checkpoint() {
  // A shutdown flushes the signal cells to wake parked workers; the streams
  // are closed then and the "barrier" is not a consistent cut — skip.
  if (subs_[0]->closed()) return;
  const std::uint64_t executed = executed_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(ckpt_mu_);
    // Duplicate markers (several replicas trigger periodically) collapse:
    // nothing executed since the last cut means an identical frame.
    if (have_ckpt_ && executed == last_ckpt_executed_) return;
  }
  SnapshotFrame frame = build_frame(executed);
  util::Writer sw;
  if (!service_->snapshot_to(sw)) {
    PSMR_WARN(name_ << ": service does not support snapshots; "
                       "checkpoint skipped");
    return;
  }
  frame.service_state = sw.take();
  frame.service_digest = service_->state_digest();
  util::Buffer encoded = encode_snapshot(frame);
  {
    std::lock_guard lock(ckpt_mu_);
    latest_ckpt_ = std::move(encoded);
    have_ckpt_ = true;
    last_ckpt_executed_ = executed;
  }
  ckpts_taken_.fetch_add(1, std::memory_order_relaxed);
  send_checkpoint_acks(frame);
  PSMR_DEBUG(name_ << ": checkpoint at " << executed << " commands");
}

SnapshotFrame PsmrReplica::build_frame(std::uint64_t executed) const {
  SnapshotFrame frame;
  frame.executed = executed;
  frame.workers.resize(mpl_);
  for (std::size_t i = 0; i < mpl_; ++i) {
    WorkerSnapshot& ws = frame.workers[i];
    const auto& sub = *subs_[i];
    for (std::size_t s = 0; s < sub.num_streams(); ++s) {
      ws.positions.push_back(sub.stream_position(s));
    }
    ws.merge_cursor = sub.merge_cursor();
    for (const auto& d : sub.pending()) {
      ws.pending.push_back(SnapshotPending{
          static_cast<std::uint32_t>(d.stream), d.message.to_buffer()});
    }
    // Canonical (sorted) dedup table, so equal tables encode equally.
    ws.dedup.reserve(dedup_[i].size());
    for (const auto& [client, last] : dedup_[i]) {
      ws.dedup.push_back(SnapshotDedupEntry{client, last.seq, last.response});
    }
    std::sort(ws.dedup.begin(), ws.dedup.end(),
              [](const SnapshotDedupEntry& a, const SnapshotDedupEntry& b) {
                return a.client < b.client;
              });
  }
  return frame;
}

void PsmrReplica::send_checkpoint_acks(const SnapshotFrame& frame) {
  if (!ckpt_opts_.enabled) return;
  // Worker group g's ring has exactly one subscriber per replica (worker
  // g), so its covered prefix is that worker's position.  The shared ring
  // is merged by every worker; at the cut they agree, but ack the minimum
  // for safety.
  auto ack_ring = [&](paxos::Ring& ring, paxos::Instance inst) {
    util::Writer w;
    w.u64(ckpt_opts_.replica_id);
    w.u64(inst);
    for (auto a : ring.acceptor_ids()) {
      net_.send(reply_node_, a, transport::MsgType::kPaxosCheckpointAck,
                w.view());
    }
  };
  for (std::size_t g = 0; g < mpl_; ++g) {
    if (frame.workers[g].positions.empty()) continue;
    ack_ring(bus_.group_ring(static_cast<multicast::GroupId>(g)),
             frame.workers[g].positions[0]);
  }
  if (bus_.has_shared_ring()) {
    paxos::Instance shared = 0;
    bool first = true;
    for (const auto& ws : frame.workers) {
      if (ws.positions.size() < 2) continue;
      shared = first ? ws.positions[1] : std::min(shared, ws.positions[1]);
      first = false;
    }
    if (!first) ack_ring(bus_.shared_ring(), shared);
  }
}

void PsmrReplica::sync_execute(Command cmd, std::size_t worker) {
  // Synchronous mode (Algorithm 1, lines 14-26).
  const multicast::GroupSet groups = cmd.groups;
  const std::size_t executor = groups.min();
  if (worker == executor) {
    groups.for_each([&](multicast::GroupId j) {
      if (j != executor && j < mpl_) signal(j, executor).wait();
    });
    // Dedup/replay and execute exactly like a parallel-mode run of one.
    if (admit(cmd, worker)) {
      std::vector<Command> one;
      one.push_back(std::move(cmd));
      execute_run(one, worker);
    }
    groups.for_each([&](multicast::GroupId j) {
      if (j != executor && j < mpl_) signal(executor, j).notify();
    });
  } else {
    signal(worker, executor).notify();
    signal(executor, worker).wait();
  }
}

void PsmrReplica::worker_loop(std::size_t worker) {
  auto& sub = *subs_[worker];
  std::vector<Command> run;
  run.reserve(run_length_);
  // A decoded delivery that must not join the current run (synchronous
  // mode, dependency, or same-client ordering) is parked here and seeds the
  // next iteration, preserving stream order across the flush.
  std::optional<Command> held;
  for (;;) {
    Command first;
    if (held) {
      first = std::move(*held);
      held.reset();
    } else {
      auto delivery = sub.next();
      if (!delivery) break;
      auto cmd = Command::decode(delivery->message);
      if (!cmd) {
        PSMR_ERROR(name_ << " worker " << worker << ": malformed command");
        continue;
      }
      first = std::move(*cmd);
    }
    if (first.cmd == kCheckpointMarker) {
      // Before the singleton test: with mpl 1 the marker travels group 0's
      // ring as a singleton command but still cuts a checkpoint.
      checkpoint_execute(worker);
      continue;
    }
    if (!first.groups.singleton()) {
      if (!first.groups.contains(static_cast<multicast::GroupId>(worker))) {
        continue;  // delivered via g_all but not a destination
      }
      sync_execute(std::move(first), worker);
      continue;
    }
    // Parallel mode (Algorithm 1, lines 10-13), batched: accumulate
    // consecutive independent parallel-mode deliveries until the stream
    // runs dry, a barrier command arrives, or the run is full.
    if (!admit(first, worker)) continue;
    run.clear();
    run.push_back(std::move(first));
    while (run.size() < run_length_) {
      multicast::Delivery delivery;
      // kDry and kClosed both end the accumulation — flush what we have.  A
      // closed stream additionally means the outer blocking next() would
      // never deliver again; the loop exits there on its nullopt.
      if (sub.try_next(delivery) != multicast::MergeDeliverer::Poll::kDelivered) {
        break;
      }
      auto cmd = Command::decode(delivery.message);
      if (!cmd) {
        PSMR_ERROR(name_ << " worker " << worker << ": malformed command");
        continue;
      }
      if (cmd->cmd == kCheckpointMarker || !cmd->groups.singleton()) {
        held = std::move(*cmd);
        break;  // barrier (synchronous mode or checkpoint) ends the run
      }
      // Same-client ordering: a seq at or below one already in the
      // (unexecuted) run is either a retransmission or out of order; flush
      // so the dedup cache — updated only at execution — can classify it
      // exactly as the sequential path would have.
      bool ordered = true;
      bool joins = true;
      for (const Command& member : run) {
        if (cmd->client == member.client && cmd->seq <= member.seq) {
          ordered = false;
          break;
        }
        if (!service_->may_share_batch(member, *cmd)) joins = false;
      }
      if (!ordered || !joins) {
        held = std::move(*cmd);
        break;
      }
      if (!admit(*cmd, worker)) continue;
      run.push_back(std::move(*cmd));
    }
    execute_run(run, worker);
  }
}

}  // namespace psmr::smr
