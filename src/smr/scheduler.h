// Scheduler + worker pool: the execution engine of sP-SMR and no-rep.
//
// In semi-parallel SMR (paper Section III and the Kotla/Dahlin & Eve line of
// work), commands are delivered as a single sequential stream; a scheduler
// thread inspects dependencies and hands independent commands to worker
// threads, while a command that requires serialization makes the scheduler
// "wait for the worker threads to finish their ongoing work and then assign
// the request to one worker thread" (Section VI-C).  This central component
// is exactly the bottleneck P-SMR removes; we reproduce it faithfully so
// the comparison is honest.
//
// Dependency decisions reuse the same C-G function P-SMR uses (computed for
// k = #workers): a singleton γ means the command conflicts only with
// commands mapped to the same worker (same key partition → dispatched to
// that worker's FIFO queue preserves their order); a multi-group γ means it
// must be serialized against everything (drain, run, drain).
//
// Batched execution: each worker accumulates a contiguous run of mutually
// independent commands from its FIFO queue (up to run_length; a conflicting
// or same-client-stale command ends the run, and an empty queue flushes
// immediately so latency is never traded for batch size) and executes it as
// one Service::execute_batch call — carrying the delivery layer's batch
// shape down to batch-aware services like the B+-tree's pipelined
// find_batch.  See service.h for why any run split is deterministic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "smr/cg.h"
#include "smr/response_coalescer.h"
#include "smr/service.h"
#include "transport/network.h"
#include "util/queue.h"

namespace psmr::smr {

struct SchedulerOptions {
  /// Maximum commands per execution batch; 1 restores strictly
  /// one-command-at-a-time execution.
  std::size_t run_length = 16;
  /// The per-client dedup map evicts entries for clients that stayed idle
  /// for more than this many scheduled commands (0 disables eviction).  An
  /// evicted client loses stale-retransmission suppression, which is safe
  /// in practice: proxies retransmit within their response timeout, orders
  /// of magnitude sooner than any realistic window.
  std::uint64_t dedup_idle_window = 1 << 16;
  /// Reply coalescing (see response_coalescer.h); shared by all workers, so
  /// replies from different workers to the same proxy merge into one frame.
  ResponseCoalescerOptions responses;
};

class SchedulerCore {
 public:
  SchedulerCore(transport::Network& net, std::unique_ptr<Service> service,
                std::shared_ptr<const CGFunction> cg, std::size_t num_workers,
                std::string name, SchedulerOptions options = {});
  ~SchedulerCore();

  SchedulerCore(const SchedulerCore&) = delete;
  SchedulerCore& operator=(const SchedulerCore&) = delete;

  void start();
  void stop();

  /// Routes one command.  Must be called from a single scheduling thread
  /// (the delivery thread in sP-SMR, the server endpoint in no-rep).
  void schedule(Command cmd);

  [[nodiscard]] std::uint64_t executed() const { return executed_.load(); }
  [[nodiscard]] const Service& service() const { return *service_; }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  /// Current per-client dedup map population (bounded-growth tests).
  [[nodiscard]] std::size_t dedup_size() const { return dedup_.size(); }
  /// Reply-path wire counters (messages, responses, flush reasons).
  [[nodiscard]] ResponseStats response_stats() const {
    return coalescer_->stats();
  }
  /// Test hook: the shared reply coalescer (flush-pause rendezvous).
  [[nodiscard]] ResponseCoalescer& response_coalescer() { return *coalescer_; }

 private:
  void worker_loop(std::size_t i);
  void dispatch(std::size_t worker, Command cmd);
  void execute_run(std::vector<Command>& run);
  /// Blocks the scheduler until every worker queue is empty and idle.
  void drain();
  void maybe_evict_dedup();

  transport::Network& net_;
  std::unique_ptr<Service> service_;
  std::shared_ptr<const CGFunction> cg_;
  const std::string name_;
  const SchedulerOptions opts_;

  struct WorkerSlot {
    util::BlockingQueue<Command> queue;
  };
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  transport::NodeId reply_node_ = transport::kNoNode;
  std::unique_ptr<ResponseCoalescer> coalescer_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::int64_t in_flight_ = 0;  // commands dispatched but not finished

  struct DedupEntry {
    Seq seq = 0;
    std::uint64_t last_seen = 0;  // schedule tick of the latest command
  };
  std::unordered_map<ClientId, DedupEntry> dedup_;
  std::uint64_t schedule_ticks_ = 0;
  std::atomic<std::uint64_t> executed_{0};
  bool started_ = false;
};

}  // namespace psmr::smr
