// sP-SMR replica: sequential delivery, parallel execution (paper Table I).
//
// One delivery thread consumes the single totally ordered stream (the bus is
// configured with one group) and feeds the SchedulerCore, which dispatches
// to worker threads.  Contrast with PsmrReplica, where each worker delivers
// its own stream.
#pragma once

#include <memory>
#include <thread>

#include "multicast/amcast.h"
#include "smr/scheduler.h"

namespace psmr::smr {

class SpsmrReplica {
 public:
  /// The bus must have exactly one group (single delivery stream); `mpl`
  /// worker threads execute, and `cg` (computed for k = mpl) provides the
  /// scheduler's dependency partitioning.  `options` tunes the workers'
  /// execution batching and dedup bounds (see SchedulerOptions).
  SpsmrReplica(transport::Network& net, multicast::Bus& bus,
               std::unique_ptr<Service> service,
               std::shared_ptr<const CGFunction> cg, std::size_t mpl,
               std::string name = "spsmr-replica",
               SchedulerOptions options = {});
  ~SpsmrReplica();

  SpsmrReplica(const SpsmrReplica&) = delete;
  SpsmrReplica& operator=(const SpsmrReplica&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t executed() const { return core_.executed(); }
  [[nodiscard]] const Service& service() const { return core_.service(); }
  /// Reply-path wire counters of the execution core.
  [[nodiscard]] ResponseStats response_stats() const {
    return core_.response_stats();
  }
  /// Test hook: the core's reply coalescer.
  [[nodiscard]] ResponseCoalescer& response_coalescer() {
    return core_.response_coalescer();
  }

 private:
  void delivery_loop();

  SchedulerCore core_;
  std::unique_ptr<multicast::MergeDeliverer> sub_;
  std::thread delivery_thread_;
  std::string name_;
  bool started_ = false;
};

}  // namespace psmr::smr
