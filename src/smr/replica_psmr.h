// P-SMR replica — the paper's Algorithm 1, server side (lines 7–26).
//
// k worker threads; thread t_i subscribes to groups {g_i, g_all} through a
// deterministic MergeDeliverer, so delivery itself is parallel (one stream
// per thread, no central dispatcher — the defining property of P-SMR,
// Table I).
//
// Execution modes per delivered command C with destination set γ:
//   * parallel mode (γ singleton): t_i executes C and replies immediately;
//   * synchronous mode (|γ| > 1): the destination threads synchronize with
//     signals; t_e with e = min(γ) waits for a signal from every other
//     destination thread, executes C, replies, then signals them to resume.
// Threads that deliver C via g_all but are not in γ ignore it (the general
// form of the algorithm allows γ to be any subset; our transport routes all
// multi-group messages through g_all).
//
// Signals are per-(sender, receiver) counting semaphores, exactly the
// "signal from t_j" of the paper, so a fast thread's signal for the *next*
// synchronous command cannot be miscounted for the current one.
//
// Batched execution: between synchronous-mode barriers, a worker
// accumulates consecutive parallel-mode deliveries into a run of mutually
// independent commands (bounded by run_length; a dry or closed stream
// flushes immediately via MergeDeliverer::try_next, so batching never
// waits) and
// executes it as one Service::execute_batch call.  Run boundaries are
// timing-dependent but, per the batch contract in service.h, replicas that
// slice the same deterministic stream differently still converge.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "multicast/amcast.h"
#include "smr/response_coalescer.h"
#include "smr/service.h"
#include "util/sync.h"

namespace psmr::smr {

class PsmrReplica {
 public:
  /// `mpl` worker threads; must equal the C-G function's mpl().
  /// `run_length` bounds the execution batches accumulated per worker
  /// (1 restores one-command-at-a-time execution).  `response_opts` tunes
  /// reply coalescing (see response_coalescer.h); the workers share one
  /// coalescer, so replies from different workers to the same proxy merge.
  PsmrReplica(transport::Network& net, multicast::Bus& bus,
              std::unique_ptr<Service> service, std::size_t mpl,
              std::string name = "psmr-replica", std::size_t run_length = 16,
              ResponseCoalescerOptions response_opts = {});
  ~PsmrReplica();

  PsmrReplica(const PsmrReplica&) = delete;
  PsmrReplica& operator=(const PsmrReplica&) = delete;

  void start();
  void stop();

  /// Commands executed so far (all workers).
  [[nodiscard]] std::uint64_t executed() const { return executed_.load(); }

  /// The replica's service instance (state inspection in tests).
  [[nodiscard]] const Service& service() const { return *service_; }

  /// Reply-path wire counters (messages, responses, flush reasons).
  [[nodiscard]] ResponseStats response_stats() const {
    return coalescer_->stats();
  }
  /// Test hook: the shared reply coalescer (flush-pause rendezvous).
  [[nodiscard]] ResponseCoalescer& response_coalescer() { return *coalescer_; }

  /// Test hooks: worker w's merged subscription — stream count, and the
  /// number of ring decisions consumed so far from stream s (the shared
  /// g_all ring is the last stream).  Progress assertions on these verify
  /// that every worker's rotation keeps advancing — i.e. that idle rings'
  /// skips actually reach the merge — without racing the worker thread.
  [[nodiscard]] std::size_t num_streams(std::size_t w) const {
    return subs_.at(w)->num_streams();
  }
  [[nodiscard]] paxos::Instance stream_position(std::size_t w,
                                                std::size_t s) const {
    return subs_.at(w)->stream_position(s);
  }

 private:
  class WorkerSink;

  void worker_loop(std::size_t worker);
  void sync_execute(Command cmd, std::size_t worker);
  void execute_run(std::vector<Command>& run, std::size_t worker);
  /// Dedup classification of a parallel-mode delivery: true if the command
  /// is fresh and should execute; replays the cached response (or drops a
  /// stale duplicate) otherwise.
  bool admit(const Command& cmd, std::size_t worker);
  util::Signal& signal(std::size_t from, std::size_t to) {
    return signals_[from * mpl_ + to];
  }

  transport::Network& net_;
  const std::size_t mpl_;
  const std::size_t run_length_;
  const std::string name_;
  std::unique_ptr<Service> service_;
  std::vector<std::unique_ptr<multicast::MergeDeliverer>> subs_;
  std::vector<util::Signal> signals_;  // mpl x mpl matrix
  std::vector<std::thread> workers_;
  transport::NodeId reply_node_ = transport::kNoNode;
  std::unique_ptr<ResponseCoalescer> coalescer_;

  // Per-worker duplicate suppression: last executed seq and its response per
  // client.  Deterministic across replicas because each worker's delivery
  // stream is deterministic and batch members only commute when independent.
  struct LastExec {
    Seq seq = 0;
    util::Buffer response;
  };
  std::vector<std::unordered_map<ClientId, LastExec>> dedup_;

  std::atomic<std::uint64_t> executed_{0};
  bool started_ = false;
};

}  // namespace psmr::smr
