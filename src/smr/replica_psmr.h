// P-SMR replica — the paper's Algorithm 1, server side (lines 7–26).
//
// k worker threads; thread t_i subscribes to groups {g_i, g_all} through a
// deterministic MergeDeliverer, so delivery itself is parallel (one stream
// per thread, no central dispatcher — the defining property of P-SMR,
// Table I).
//
// Execution modes per delivered command C with destination set γ:
//   * parallel mode (γ singleton): t_i executes C and replies immediately;
//   * synchronous mode (|γ| > 1): the destination threads synchronize with
//     signals; t_e with e = min(γ) waits for a signal from every other
//     destination thread, executes C, replies, then signals them to resume.
// Threads that deliver C via g_all but are not in γ ignore it (the general
// form of the algorithm allows γ to be any subset; our transport routes all
// multi-group messages through g_all).
//
// Signals are per-(sender, receiver) counting semaphores, exactly the
// "signal from t_j" of the paper, so a fast thread's signal for the *next*
// synchronous command cannot be miscounted for the current one.
//
// Batched execution: between synchronous-mode barriers, a worker
// accumulates consecutive parallel-mode deliveries into a run of mutually
// independent commands (bounded by run_length; a dry or closed stream
// flushes immediately via MergeDeliverer::try_next, so batching never
// waits) and
// executes it as one Service::execute_batch call.  Run boundaries are
// timing-dependent but, per the batch contract in service.h, replicas that
// slice the same deterministic stream differently still converge.
//
// Checkpointing (when CheckpointOptions::enabled): a reserved marker
// command (kCheckpointMarker), multicast to every group, lands at one
// well-defined position of every worker's merged stream.  On delivering it
// each worker parks at a full-replica barrier (the same signal matrix the
// synchronous mode uses); worker 0 then snapshots the quiesced service plus
// every worker's resume state into a digest-stamped SnapshotFrame
// (smr/snapshot.h), stores the encoded frame for peers to fetch
// (kSmrSnapshotReq/Rep), and acks the covered prefix to every ring's
// acceptors so they can truncate (kPaxosCheckpointAck).  Because the frame
// is a deterministic function of the streams, replicas cutting the same
// marker produce byte-identical frames.  A restarted replica is constructed
// from a peer's frame: the service state installs, each worker resubscribes
// at its recorded stream positions, and the acceptor catch-up protocol
// replays the suffix through the normal dedup/admit path.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "multicast/amcast.h"
#include "smr/response_coalescer.h"
#include "smr/service.h"
#include "smr/snapshot.h"
#include "util/sync.h"

namespace psmr::smr {

class PsmrReplica {
 public:
  /// `mpl` worker threads; must equal the C-G function's mpl().
  /// `run_length` bounds the execution batches accumulated per worker
  /// (1 restores one-command-at-a-time execution).  `response_opts` tunes
  /// reply coalescing (see response_coalescer.h); the workers share one
  /// coalescer, so replies from different workers to the same proxy merge.
  /// `checkpoint` enables the snapshot/truncation/recovery machinery;
  /// `restore` (optional) boots the replica from a decoded snapshot frame
  /// instead of from scratch — throws std::runtime_error if the frame does
  /// not install cleanly (service decode failure or digest mismatch).
  PsmrReplica(transport::Network& net, multicast::Bus& bus,
              std::unique_ptr<Service> service, std::size_t mpl,
              std::string name = "psmr-replica", std::size_t run_length = 16,
              ResponseCoalescerOptions response_opts = {},
              CheckpointOptions checkpoint = {},
              const SnapshotFrame* restore = nullptr);
  ~PsmrReplica();

  PsmrReplica(const PsmrReplica&) = delete;
  PsmrReplica& operator=(const PsmrReplica&) = delete;

  void start();
  void stop();

  /// Commands executed so far (all workers).
  [[nodiscard]] std::uint64_t executed() const { return executed_.load(); }

  /// The replica's service instance (state inspection in tests).
  [[nodiscard]] const Service& service() const { return *service_; }

  /// Reply-path wire counters (messages, responses, flush reasons).
  [[nodiscard]] ResponseStats response_stats() const {
    return coalescer_->stats();
  }
  /// Test hook: the shared reply coalescer (flush-pause rendezvous).
  [[nodiscard]] ResponseCoalescer& response_coalescer() { return *coalescer_; }

  /// Test hooks: worker w's merged subscription — stream count, and the
  /// number of ring decisions consumed so far from stream s (the shared
  /// g_all ring is the last stream).  Progress assertions on these verify
  /// that every worker's rotation keeps advancing — i.e. that idle rings'
  /// skips actually reach the merge — without racing the worker thread.
  [[nodiscard]] std::size_t num_streams(std::size_t w) const {
    return subs_.at(w)->num_streams();
  }
  [[nodiscard]] paxos::Instance stream_position(std::size_t w,
                                                std::size_t s) const {
    return subs_.at(w)->stream_position(s);
  }

  /// Multicasts a checkpoint marker.  All replicas of the deployment cut a
  /// checkpoint when it is delivered (it travels the ordered streams like
  /// any command).  Returns false when checkpointing is disabled or the
  /// submit could not be dispatched.  Safe from any thread.
  bool trigger_checkpoint();

  /// Checkpoints completed by this replica (taken or installed-on-restore).
  [[nodiscard]] std::uint64_t checkpoints_taken() const {
    return ckpts_taken_.load(std::memory_order_relaxed);
  }
  /// The latest encoded snapshot frame, if any (what peers fetch).
  [[nodiscard]] std::optional<util::Buffer> latest_checkpoint() const {
    std::lock_guard lock(ckpt_mu_);
    if (!have_ckpt_) return std::nullopt;
    return latest_ckpt_;
  }
  /// Node serving kSmrSnapshotReq (kNoNode when checkpointing is off).
  [[nodiscard]] transport::NodeId snapshot_node() const;

 private:
  class WorkerSink;
  class SnapshotServer;

  void worker_loop(std::size_t worker);
  void sync_execute(Command cmd, std::size_t worker);
  void execute_run(std::vector<Command>& run, std::size_t worker);
  /// Full-replica barrier at a delivered checkpoint marker; worker 0 cuts
  /// the snapshot while every other worker is parked.
  void checkpoint_execute(std::size_t worker);
  /// Runs on worker 0 (or the sole worker) with the service quiesced.
  void take_checkpoint();
  /// Builds the resume-state frame from the parked workers' streams.
  [[nodiscard]] SnapshotFrame build_frame(std::uint64_t executed) const;
  /// Installs a decoded frame into a freshly constructed replica.
  void install_frame(const SnapshotFrame& frame);
  /// Acks the frame's covered prefix to every ring's acceptors.
  void send_checkpoint_acks(const SnapshotFrame& frame);
  /// Dedup classification of a parallel-mode delivery: true if the command
  /// is fresh and should execute; replays the cached response (or drops a
  /// stale duplicate) otherwise.
  bool admit(const Command& cmd, std::size_t worker);
  util::Signal& signal(std::size_t from, std::size_t to) {
    return signals_[from * mpl_ + to];
  }

  transport::Network& net_;
  multicast::Bus& bus_;
  const std::size_t mpl_;
  const std::size_t run_length_;
  const std::string name_;
  const CheckpointOptions ckpt_opts_;
  std::unique_ptr<Service> service_;
  std::vector<std::unique_ptr<multicast::MergeDeliverer>> subs_;
  std::vector<util::Signal> signals_;  // mpl x mpl matrix
  std::vector<std::thread> workers_;
  transport::NodeId reply_node_ = transport::kNoNode;
  std::unique_ptr<ResponseCoalescer> coalescer_;

  // Per-worker duplicate suppression: last executed seq and its response per
  // client.  Deterministic across replicas because each worker's delivery
  // stream is deterministic and batch members only commute when independent.
  struct LastExec {
    Seq seq = 0;
    util::Buffer response;
  };
  std::vector<std::unordered_map<ClientId, LastExec>> dedup_;

  std::atomic<std::uint64_t> executed_{0};
  bool started_ = false;

  // Checkpoint state.  latest_ckpt_/have_ckpt_/last_ckpt_executed_ are
  // written by worker 0 at the barrier and read by the snapshot server and
  // monitoring threads, hence the mutex.
  mutable std::mutex ckpt_mu_;
  util::Buffer latest_ckpt_;
  bool have_ckpt_ = false;
  std::uint64_t last_ckpt_executed_ = 0;
  std::atomic<std::uint64_t> ckpts_taken_{0};
  /// A marker is in flight (trigger issued, barrier not reached yet); keeps
  /// the periodic trigger from flooding markers faster than they deliver.
  std::atomic<bool> ckpt_pending_{false};
  /// Worker 0's command count toward the next periodic trigger.
  std::uint64_t since_ckpt_trigger_ = 0;
  std::unique_ptr<SnapshotServer> snapshot_server_;
};

}  // namespace psmr::smr
