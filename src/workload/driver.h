// Closed-loop workload driver for the *real* runtime.
//
// Mirrors the paper's measurement methodology (Section VI-B): each client
// keeps a window of up to 50 outstanding commands, keys are selected
// uniformly or with a Zipf(1) distribution over the key space, and we
// report throughput (Kcps), average latency, latency histogram and process
// CPU usage.
//
// Note: on this host the entire system (clients, Paxos, replicas) shares
// very few cores, so real-mode numbers measure protocol overhead rather
// than the paper's 8-core scaling — the figure benches default to the
// calibrated simulator (sim/model.h) and offer --real for these
// measurements.  See DESIGN.md.
#pragma once

#include <cstdint>

#include "smr/runtime.h"
#include "util/histogram.h"

namespace psmr::workload {

/// Key-value operation mix in percent (must sum to 100).
struct KvMix {
  int read_pct = 100;
  int update_pct = 0;
  int insert_pct = 0;
  int delete_pct = 0;
};

struct KvWorkloadSpec {
  int clients = 4;
  int window = 50;           // outstanding commands per client
  double duration_s = 2.0;   // measured interval (after warmup)
  double warmup_s = 0.3;
  KvMix mix;
  std::uint64_t keys = 100'000;  // preloaded key range to operate on
  bool zipf = false;
  double zipf_s = 1.0;
  std::uint64_t seed = 42;
};

struct RunResult {
  double kcps = 0;
  double avg_latency_us = 0;
  double p99_latency_us = 0;
  util::Histogram latency;
  double cpu_pct = 0;  // process CPU time / wall time * 100
  std::uint64_t completed = 0;
  /// Replica-side execution batching over the measured interval, aggregated
  /// across all service instances (see smr::ExecStats): how the delivered
  /// load actually reached the service — batches executed, commands per
  /// batch, share of commands resolved through a pipelined read lane.
  smr::ExecStats exec;
};

/// Drives the deployment with closed-loop clients and measures it.
RunResult run_kv_workload(smr::Deployment& deployment,
                          const KvWorkloadSpec& spec);

/// Process CPU time (user+system) in microseconds, for CPU% accounting.
std::int64_t process_cpu_us();

}  // namespace psmr::workload
