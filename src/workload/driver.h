// Workload driver for the *real* runtime.
//
// Closed-loop mode mirrors the paper's measurement methodology
// (Section VI-B): each client keeps a window of up to 50 outstanding
// commands, keys are selected uniformly or with a Zipf(1) distribution over
// the key space, and we report throughput (Kcps), average/percentile
// latency, latency histogram and process CPU usage.
//
// Open-loop mode (KvWorkloadSpec::target_rate_cps > 0) decouples arrivals
// from completions — Poisson or fixed-interval — so latency-under-load
// curves are measurable: offered rate is held constant and queueing delay
// appears as latency rather than throttling the load.
//
// Note: on this host the entire system (clients, Paxos, replicas) shares
// very few cores, so real-mode numbers measure protocol overhead rather
// than the paper's 8-core scaling — the figure benches default to the
// calibrated simulator (sim/model.h) and offer --real for these
// measurements.  See DESIGN.md.
#pragma once

#include <cstdint>

#include "smr/runtime.h"
#include "util/histogram.h"

namespace psmr::workload {

/// Key-value operation mix in percent (must sum to 100).
struct KvMix {
  int read_pct = 100;
  int update_pct = 0;
  int insert_pct = 0;
  int delete_pct = 0;
};

struct KvWorkloadSpec {
  int clients = 4;
  int window = 50;           // outstanding commands per client
  double duration_s = 2.0;   // measured interval (after warmup)
  double warmup_s = 0.3;
  KvMix mix;
  std::uint64_t keys = 100'000;  // preloaded key range to operate on
  bool zipf = false;
  double zipf_s = 1.0;
  std::uint64_t seed = 42;

  /// Open-loop mode: aggregate target arrival rate in commands/sec across
  /// all clients (each client drives target_rate_cps / clients).  0 keeps
  /// the paper's closed loop, where `window` outstanding commands gate
  /// submission.  Open-loop arrivals are submitted on their schedule
  /// whether or not earlier commands completed, which is what makes
  /// latency-under-load curves measurable (latency grows with offered
  /// rate instead of throttling it).
  double target_rate_cps = 0;
  /// Open-loop arrival process: exponential inter-arrival gaps (a Poisson
  /// process) when true, a fixed interval of 1/rate when false.
  bool poisson_arrivals = true;
  /// Open-loop safety valve: per-client cap on outstanding commands, so an
  /// offered rate far above capacity degrades into a closed loop at this
  /// window instead of growing proxy state without bound.  Arrivals due
  /// while the cap binds are dropped from the schedule (the driver skips
  /// them rather than bursting to catch up).
  int max_outstanding = 10'000;
};

struct RunResult {
  double kcps = 0;
  double avg_latency_us = 0;
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;
  util::Histogram latency;
  double cpu_pct = 0;  // process CPU time / wall time * 100
  std::uint64_t completed = 0;
  /// Per-arrival accounting over the measured interval.  Window membership
  /// is decided once per arrival, at submit time, so the identity
  ///   offered == submitted + shed_valve + dispatch_failed
  /// holds exactly.
  std::uint64_t offered = 0;    // arrivals due inside the window
  std::uint64_t submitted = 0;  // accepted into the proxy pipeline
  std::uint64_t shed_valve = 0;  // dropped by the open-loop outstanding cap
  std::uint64_t dispatch_failed = 0;  // transport rejected the dispatch
  /// Commands shed by admission control (smr::AdmissionController) whose
  /// kSmrRejected completion landed inside the window — counted at poll
  /// time and excluded from `completed` and the latency histogram, so
  /// goodput (kcps) measures real work only.
  std::uint64_t shed_rejected = 0;
  /// Replica-side execution batching over the measured interval, aggregated
  /// across all service instances (see smr::ExecStats): how the delivered
  /// load actually reached the service — batches executed, commands per
  /// batch, share of commands resolved through a pipelined read lane.
  smr::ExecStats exec;
  /// Reply-path wire counters over the measured interval, aggregated across
  /// all replicas (see smr::ResponseStats): how those executions reached
  /// the clients — wire messages, responses per message, flush reasons.
  smr::ResponseStats response;
};

namespace detail {

/// True when `now_us` falls inside the measured interval
/// [from_us, until_us).  from_us == 0 means measurement has not started;
/// until_us == 0 means it has not ended yet (the driver publishes the end
/// bound the moment the measured sleep elapses, so completions of the
/// drain phase no longer leak into the histogram).
[[nodiscard]] inline bool in_measured_window(std::int64_t now_us,
                                             std::int64_t from_us,
                                             std::int64_t until_us) {
  return from_us != 0 && now_us >= from_us &&
         (until_us == 0 || now_us < until_us);
}

}  // namespace detail

/// Drives the deployment with closed-loop clients and measures it.
RunResult run_kv_workload(smr::Deployment& deployment,
                          const KvWorkloadSpec& spec);

/// Process CPU time (user+system) in microseconds, for CPU% accounting.
std::int64_t process_cpu_us();

}  // namespace psmr::workload
