#include "workload/driver.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "kvstore/kv_service.h"
#include "util/clock.h"
#include "util/rng.h"

namespace psmr::workload {

std::int64_t process_cpu_us() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  auto tv_us = [](const timeval& tv) {
    return static_cast<std::int64_t>(tv.tv_sec) * 1'000'000 + tv.tv_usec;
  };
  return tv_us(usage.ru_utime) + tv_us(usage.ru_stime);
}

namespace {

/// Per-client slice of RunResult's arrival accounting (see driver.h for the
/// offered == submitted + shed_valve + dispatch_failed identity).
struct ClientCounters {
  std::uint64_t completed = 0;
  std::uint64_t offered = 0;
  std::uint64_t submitted = 0;
  std::uint64_t shed_valve = 0;
  std::uint64_t dispatch_failed = 0;
  std::uint64_t shed_rejected = 0;
};

// One client thread: windowed pipeline, recording completions that land in
// the measured interval.
void client_loop(smr::Deployment& deployment, const KvWorkloadSpec& spec,
                 int index, std::atomic<bool>& stop,
                 std::atomic<std::int64_t>& measure_from_us,
                 std::atomic<std::int64_t>& measure_until_us,
                 util::Histogram& latency, ClientCounters& counters) {
  auto proxy = deployment.make_client();
  util::SplitMix64 rng(spec.seed * 7919 + static_cast<std::uint64_t>(index));
  util::Zipf zipf(spec.keys, spec.zipf_s);

  auto in_window = [&](std::int64_t now_us) {
    return detail::in_measured_window(
        now_us, measure_from_us.load(std::memory_order_relaxed),
        measure_until_us.load(std::memory_order_relaxed));
  };
  auto pick_key = [&] {
    return spec.zipf ? zipf.sample(rng) : rng.next_below(spec.keys);
  };
  auto submit_one = [&]() -> std::optional<smr::Seq> {
    int roll = static_cast<int>(rng.next_below(100));
    std::uint64_t k = pick_key();
    if (roll < spec.mix.read_pct) {
      return proxy->submit(kvstore::kKvRead, kvstore::encode_key(k));
    }
    if (roll < spec.mix.read_pct + spec.mix.update_pct) {
      return proxy->submit(kvstore::kKvUpdate,
                           kvstore::encode_key_value(k, rng.next()));
    }
    if (roll <
        spec.mix.read_pct + spec.mix.update_pct + spec.mix.insert_pct) {
      // Inserts target a disjoint upper range so deletes can find them.
      return proxy->submit(
          kvstore::kKvInsert,
          kvstore::encode_key_value(spec.keys + rng.next_below(spec.keys),
                                    rng.next()));
    }
    return proxy->submit(
        kvstore::kKvDelete,
        kvstore::encode_key(spec.keys + rng.next_below(spec.keys)));
  };
  // One arrival: window membership is decided here, once, so the offered
  // identity in driver.h holds exactly.  `valve_open` is the open-loop
  // outstanding cap; a failed dispatch (shutdown, disconnected peer) is
  // surfaced by submit() and counted instead of silently forgotten.
  auto attempt = [&](bool valve_open) {
    bool measured = in_window(util::now_us());
    if (measured) ++counters.offered;
    if (!valve_open) {
      if (measured) ++counters.shed_valve;
      return;
    }
    if (submit_one()) {
      if (measured) ++counters.submitted;
    } else {
      if (measured) ++counters.dispatch_failed;
    }
  };

  auto record = [&](const smr::ClientProxy::Completion& done) {
    if (!in_window(util::now_us())) return;
    if (done.rejected) {
      ++counters.shed_rejected;  // admission shed: not goodput, not latency
      return;
    }
    latency.record(static_cast<double>(done.latency_us));
    ++counters.completed;
  };

  if (spec.target_rate_cps > 0) {
    // Open loop: arrivals follow their own schedule (Poisson or fixed
    // interval), decoupled from completions, so queueing delay shows up as
    // latency instead of throttling the offered rate.
    const double rate_cps =
        spec.target_rate_cps / static_cast<double>(spec.clients);
    const double mean_gap_us = 1e6 / rate_cps;
    auto next_gap_us = [&]() -> double {
      if (!spec.poisson_arrivals) return mean_gap_us;
      // Exponential inter-arrival times; clamp u away from 0 for finite gaps.
      double u = rng.next_double();
      return -mean_gap_us * std::log(u < 1e-12 ? 1e-12 : u);
    };
    double next_due_us = static_cast<double>(util::now_us()) + next_gap_us();
    while (!stop.load(std::memory_order_relaxed)) {
      std::int64_t now = util::now_us();
      while (static_cast<double>(now) >= next_due_us &&
             !stop.load(std::memory_order_relaxed)) {
        attempt(proxy->outstanding() <
                static_cast<std::size_t>(spec.max_outstanding));
        next_due_us += next_gap_us();
        now = util::now_us();
      }
      auto wait_us = static_cast<std::int64_t>(next_due_us) - now;
      auto done = proxy->poll(std::chrono::microseconds(
          std::clamp<std::int64_t>(wait_us, 50, 100'000)));
      if (done) record(*done);
    }
  } else {
    // Closed loop (the paper's methodology): keep `window` outstanding.
    while (!stop.load(std::memory_order_relaxed)) {
      while (proxy->outstanding() < static_cast<std::size_t>(spec.window) &&
             !stop.load(std::memory_order_relaxed)) {
        attempt(true);
      }
      auto done = proxy->poll(std::chrono::milliseconds(100));
      if (done) record(*done);
    }
  }
  // Best-effort drain so replicas quiesce before state-digest checks.
  while (proxy->outstanding() > 0) {
    if (!proxy->poll(std::chrono::milliseconds(200))) break;
  }
}

}  // namespace

RunResult run_kv_workload(smr::Deployment& deployment,
                          const KvWorkloadSpec& spec) {
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> measure_from_us{0};
  std::atomic<std::int64_t> measure_until_us{0};
  std::vector<util::Histogram> latencies(
      static_cast<std::size_t>(spec.clients));
  std::vector<ClientCounters> counters(static_cast<std::size_t>(spec.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(spec.clients));
  for (int c = 0; c < spec.clients; ++c) {
    threads.emplace_back([&, c] {
      client_loop(deployment, spec, c, stop, measure_from_us,
                  measure_until_us, latencies[static_cast<std::size_t>(c)],
                  counters[static_cast<std::size_t>(c)]);
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(spec.warmup_s));
  std::int64_t t0 = util::now_us();
  std::int64_t cpu0 = process_cpu_us();
  smr::ExecStats exec0 = deployment.exec_stats();
  smr::ResponseStats resp0 = deployment.response_stats();
  measure_from_us.store(t0);
  std::this_thread::sleep_for(std::chrono::duration<double>(spec.duration_s));
  // Close the window before anything else: completions that drain after
  // this instant (including the whole post-stop drain) must not count.
  std::int64_t t1 = util::now_us();
  measure_until_us.store(t1);
  std::int64_t cpu1 = process_cpu_us();
  smr::ExecStats exec1 = deployment.exec_stats();
  smr::ResponseStats resp1 = deployment.response_stats();
  stop.store(true);
  for (auto& t : threads) t.join();

  RunResult res;
  for (int c = 0; c < spec.clients; ++c) {
    const auto& cc = counters[static_cast<std::size_t>(c)];
    res.latency.merge(latencies[static_cast<std::size_t>(c)]);
    res.completed += cc.completed;
    res.offered += cc.offered;
    res.submitted += cc.submitted;
    res.shed_valve += cc.shed_valve;
    res.dispatch_failed += cc.dispatch_failed;
    res.shed_rejected += cc.shed_rejected;
  }
  double elapsed_s = static_cast<double>(t1 - t0) / 1e6;
  res.kcps = static_cast<double>(res.completed) / elapsed_s / 1e3;
  res.avg_latency_us = res.latency.mean();
  res.p50_latency_us = res.latency.quantile(0.50);
  res.p95_latency_us = res.latency.quantile(0.95);
  res.p99_latency_us = res.latency.quantile(0.99);
  res.cpu_pct = 100.0 * static_cast<double>(cpu1 - cpu0) /
                static_cast<double>(t1 - t0);
  res.exec = exec1 - exec0;
  res.response = resp1 - resp0;
  return res;
}

}  // namespace psmr::workload
