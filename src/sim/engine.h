// Discrete-event simulation engine.
//
// Why this exists: the paper's evaluation (Figures 3-8) measures CPU-bound
// scaling of replicas on 8-core cluster nodes.  This reproduction runs in a
// container that exposes a single core, where real threads cannot exhibit
// 8-way execution parallelism — so the figure benches drive these models
// instead (see DESIGN.md, substitution table).  The real runtime
// (transport/paxos/multicast/smr) exercises every protocol path and is
// tested for correctness; the simulator reproduces the *performance shape*
// with service-time constants calibrated from the paper's own single-thread
// numbers (sim/calibration.h).
//
// The engine is a classic event-calendar: (time, seq) ordered min-heap of
// closures, deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace psmr::sim {

class Engine {
 public:
  using Event = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `t_us` (>= now).
  void at(double t_us, Event fn) {
    heap_.push(Item{t_us < now_ ? now_ : t_us, seq_++, std::move(fn)});
  }
  /// Schedules `fn` `delay_us` after the current virtual time.
  void after(double delay_us, Event fn) {
    at(now_ + delay_us, std::move(fn));
  }

  [[nodiscard]] double now() const { return now_; }

  /// Runs events until the calendar empties or `t_end_us` is passed.
  void run_until(double t_end_us) {
    while (!heap_.empty() && heap_.top().time <= t_end_us) {
      // Copy out before pop: the closure may schedule more events.
      Item item = std::move(const_cast<Item&>(heap_.top()));
      heap_.pop();
      now_ = item.time;
      item.fn();
    }
    if (now_ < t_end_us) now_ = t_end_us;
  }

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Item {
    double time;
    std::uint64_t seq;  // FIFO among simultaneous events
    Event fn;
    bool operator>(const Item& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
  double now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace psmr::sim
