// Simulation models of the five architectures the paper evaluates.
//
// Each model reproduces the component graph of its real counterpart:
//   SMR     — ordered stream → one executor thread
//   sP-SMR  — ordered stream → scheduler thread → worker pool, with
//             drain-assign-drain serialization for dependent commands
//   P-SMR   — k ordered streams (+ shared stream) → k delivering workers,
//             signal barriers for dependent commands (Algorithm 1)
//   no-rep  — client sockets → scheduler thread → worker pool
//   BDB     — client sockets → handler threads over a lock-based store
// driven by closed-loop clients with a bounded window (paper: 50
// outstanding commands per client, Section VI-B).
//
// Costs come from sim/calibration.h; the *shapes* (who wins, crossovers,
// scaling curves, latency ordering) emerge from the architecture, not from
// per-figure tuning.
#pragma once

#include <cstdint>

#include "sim/calibration.h"
#include "util/histogram.h"

namespace psmr::sim {

enum class Tech { kSmr, kSpsmr, kPsmr, kNoRep, kLock };

[[nodiscard]] constexpr const char* tech_name(Tech t) {
  switch (t) {
    case Tech::kSmr: return "SMR";
    case Tech::kSpsmr: return "sP-SMR";
    case Tech::kPsmr: return "P-SMR";
    case Tech::kNoRep: return "no-rep";
    case Tech::kLock: return "BDB";
  }
  return "?";
}

struct SimConfig {
  Tech tech = Tech::kPsmr;
  /// Worker threads (multiprogramming level); handler threads for BDB.
  int workers = 8;
  int clients = 60;
  int window = 50;  // outstanding commands per client (paper: up to 50)
  double warmup_us = 20'000;
  double duration_us = 220'000;
  /// Fraction of commands that are dependent-on-all (inserts/deletes in the
  /// key-value store; structural commands in NetFS).
  double frac_dependent = 0.0;
  /// Key selection: uniform or Zipf(s) over `keys` (Section VII-G).
  bool zipf = false;
  double zipf_s = 1.0;
  /// Load-aware C-G (paper §IV-D): the hottest `hot_aware` Zipf ranks are
  /// pinned round-robin across groups instead of hashed, rebalancing the
  /// skewed load.  0 disables.
  std::uint64_t hot_aware = 0;
  std::uint64_t keys = 10'000'000;
  std::uint64_t seed = 1;
  /// NetFS mode: per-command costs from NetFsCosts; `netfs_reads` selects
  /// the 1KB-read or 1KB-write workload of Section VII-H.
  bool netfs = false;
  bool netfs_reads = true;

  KvCosts kv;
  NetFsCosts fs;
  NetCosts net;
};

struct SimResult {
  double kcps = 0;             // thousands of commands per second
  double cpu_pct = 0;          // total busy core time / wall, x100
  double avg_latency_us = 0;
  util::Histogram latency;     // per-command latency (us)
  std::uint64_t completed = 0;
  /// Share of commands executed by the busiest worker (1/k = balanced).
  double max_worker_share = 0;
};

/// Runs one closed-loop simulation.  Deterministic for a fixed config.
SimResult simulate(const SimConfig& cfg);

}  // namespace psmr::sim
