// Simulation models of the five architectures the paper evaluates.
//
// Each model reproduces the component graph of its real counterpart:
//   SMR     — ordered stream → one executor thread
//   sP-SMR  — ordered stream → scheduler thread → worker pool, with
//             drain-assign-drain serialization for dependent commands
//   P-SMR   — k ordered streams (+ shared stream) → k delivering workers,
//             signal barriers for dependent commands (Algorithm 1)
//   no-rep  — client sockets → scheduler thread → worker pool
//   BDB     — client sockets → handler threads over a lock-based store
// driven by closed-loop clients with a bounded window (paper: 50
// outstanding commands per client, Section VI-B).
//
// Costs come from sim/calibration.h; the *shapes* (who wins, crossovers,
// scaling curves, latency ordering) emerge from the architecture, not from
// per-figure tuning.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/calibration.h"
#include "util/histogram.h"

namespace psmr::sim {

enum class Tech { kSmr, kSpsmr, kPsmr, kNoRep, kLock };

[[nodiscard]] constexpr const char* tech_name(Tech t) {
  switch (t) {
    case Tech::kSmr: return "SMR";
    case Tech::kSpsmr: return "sP-SMR";
    case Tech::kPsmr: return "P-SMR";
    case Tech::kNoRep: return "no-rep";
    case Tech::kLock: return "BDB";
  }
  return "?";
}

struct SimConfig {
  Tech tech = Tech::kPsmr;
  /// Worker threads (multiprogramming level); handler threads for BDB.
  int workers = 8;
  int clients = 60;
  int window = 50;  // outstanding commands per client (paper: up to 50)
  double warmup_us = 20'000;
  double duration_us = 220'000;
  /// Fraction of commands that are dependent-on-all (inserts/deletes in the
  /// key-value store; structural commands in NetFS).
  double frac_dependent = 0.0;
  /// Key selection: uniform or Zipf(s) over `keys` (Section VII-G).
  bool zipf = false;
  double zipf_s = 1.0;
  /// Load-aware C-G (paper §IV-D): the hottest `hot_aware` Zipf ranks are
  /// pinned round-robin across groups instead of hashed, rebalancing the
  /// skewed load.  0 disables.
  std::uint64_t hot_aware = 0;
  std::uint64_t keys = 10'000'000;
  std::uint64_t seed = 1;
  /// NetFS mode: per-command costs from NetFsCosts; `netfs_reads` selects
  /// the 1KB-read or 1KB-write workload of Section VII-H.
  bool netfs = false;
  bool netfs_reads = true;

  KvCosts kv;
  NetFsCosts fs;
  NetCosts net;
};

struct SimResult {
  double kcps = 0;             // thousands of commands per second
  double cpu_pct = 0;          // total busy core time / wall, x100
  double avg_latency_us = 0;
  util::Histogram latency;     // per-command latency (us)
  std::uint64_t completed = 0;
  /// Share of commands executed by the busiest worker (1/k = balanced).
  double max_worker_share = 0;
};

/// Runs one closed-loop simulation.  Deterministic for a fixed config.
SimResult simulate(const SimConfig& cfg);

// --- Open-loop overload model (fig9: latency/goodput vs offered rate) -----
//
// A deterministic fluid-limit view of the system past its saturation knee.
// The closed-loop simulator above cannot exhibit overload (its window caps
// the backlog by construction), so fig9 models the open-loop population as
// a fluid: arrivals at the offered rate feed an in-ring backlog B, and the
// service path drains it at an *effective* capacity
//
//     eff(B) = capacity / (1 + overload_penalty * B)
//
// — every queued command makes the ones behind it slower (growing pending
// maps and batch backlogs, retransmission storms), which is what turns
// saturation into congestion collapse when nothing sheds.  With the
// admission valve on, arrivals are shed while B sits above the
// shed_enter/shed_exit hysteresis band (mirroring smr::AdmissionController
// on the real runtime), capping B and so bounding both the latency tail and
// the goodput loss.  Completed fluid records sojourn time
// base_latency + B/eff into the histogram, so per-rate percentiles fall out.

struct OverloadConfig {
  /// Saturated service capacity, Kcps (KvCosts pins the single-stream SMR
  /// pipeline at ~842 Kcps; see calibration.h).
  double capacity_kcps = 842.0;
  /// Unloaded command latency: two client<->cluster hops plus one ordering
  /// round (NetCosts one_way*2 + order_base).
  double base_latency_us = 210.0;
  /// Congestion-collapse coefficient (1/commands): how much each queued
  /// command degrades effective capacity.
  double overload_penalty = 2.0e-5;
  /// Admission valve (mirrors smr::AdmissionConfig's occupancy thresholds).
  bool admission = false;
  double shed_enter_occupancy = 8192;
  double shed_exit_occupancy = 4096;
  /// Virtual measured interval and fluid integration step.  Fixed regardless
  /// of bench --quick: the CI gate and sim_calibration_test must agree.
  double duration_us = 200'000;
  double step_us = 50.0;
};

struct OverloadPoint {
  double offered_kcps = 0;
  double goodput_kcps = 0;   // completed commands per virtual second
  double shed_kcps = 0;      // admission-shed arrivals per virtual second
  double shed_fraction = 0;  // shed / offered
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;
  double final_backlog = 0;  // commands still in-ring when the window closed
  util::Histogram latency;
};

/// Runs the fluid model at one offered rate.  Deterministic.
OverloadPoint simulate_overload(const OverloadConfig& cfg,
                                double offered_kcps);

/// Knee of an offered-rate sweep (points sorted by offered rate): index of
/// the last point whose goodput still covers `headroom` of its offered rate
/// (0 when even the first point is past saturation).
std::size_t knee_index(const std::vector<OverloadPoint>& points,
                       double headroom);

// --- Recovery model (fig10: time to rejoin after a crash) -----------------
//
// A deterministic fluid view of replica catch-up (the checkpoint/truncation
// machinery of smr/snapshot.h and replica_psmr.h).  A replica that ran for
// `uptime_us` under a sustained load crashes, stays down for `downtime_us`,
// and restarts.  With snapshots it installs the latest checkpoint (bulk
// state load at `install_kcps`, much faster than re-execution) and then
// replays only the suffix: the residual since the last checkpoint plus
// everything decided while it was down or installing.  Without snapshots it
// replays the entire log from instance 0.  Either way the suffix drains at
// (capacity - offered): replay competes with the live load the replica must
// also keep up with.  Recovery completes when the backlog hits zero — the
// replica is converged with its peers and serving at full throughput.
//
// The model is what fig10 sweeps and what RecoveryCalibration pins: recovery
// time scales with downtime (bounded multiple) when checkpoints bound the
// suffix, and degrades to full-history replay — proportional to uptime, not
// downtime — when they don't.

struct RecoveryConfig {
  /// Replica execution/replay capacity, Kcps (KvCosts' SMR pipeline).
  double capacity_kcps = 842.0;
  /// Sustained offered load, Kcps (must stay below capacity to recover).
  double offered_kcps = 400.0;
  /// Virtual run time before the crash.
  double uptime_us = 10'100'000;
  /// Crash-to-restart gap.
  double downtime_us = 500'000;
  /// Commands between periodic checkpoints (CheckpointOptions
  /// ::interval_commands); bounds the residual suffix a restart replays.
  double checkpoint_interval_cmds = 200'000;
  /// Snapshot install rate, Kcps-equivalent: bulk-loading a key is ~10x
  /// cheaper than executing the command that produced it (no ordering, no
  /// marshaling, ascending B+-tree build).
  double install_kcps = 8'420.0;
  /// False models the no-checkpoint baseline: full log replay.
  bool snapshot = true;
  /// Horizon after which the model declares the replica unrecoverable.
  double max_recovery_us = 120'000'000;
};

struct RecoveryPoint {
  double downtime_us = 0;
  double installed_cmds = 0;   // commands-equivalent covered by the snapshot
  double replayed_cmds = 0;    // log suffix re-executed after install
  double install_us = 0;       // snapshot transfer + bulk load
  double replay_us = 0;        // suffix drain at (capacity - offered)
  double recovery_us = 0;      // install + replay: restart -> converged
  bool recovered = false;      // recovery_us within the horizon
};

/// Evaluates the recovery model at one configuration.  Deterministic.
RecoveryPoint simulate_recovery(const RecoveryConfig& cfg);

}  // namespace psmr::sim
