#include "sim/model.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"
#include "util/hash.h"
#include "util/rng.h"

namespace psmr::sim {
namespace {

struct Job {
  bool dep = false;
  double service = 0;       // worker service time (parallel part)
  std::uint32_t client = 0;
  double submitted = 0;
  std::uint64_t barrier = 0;  // P-SMR synchronous-mode id
};

class Simulation {
 public:
  explicit Simulation(const SimConfig& cfg)
      : cfg_(cfg),
        rng_(cfg.seed * 0x9e3779b97f4a7c15ULL + 1),
        zipf_(cfg.keys, cfg.zipf_s),
        workers_(static_cast<std::size_t>(effective_workers())),
        ring_clock_(static_cast<std::size_t>(cfg.workers) + 1, 0.0) {}

  SimResult run() {
    for (int c = 0; c < cfg_.clients; ++c) {
      for (int w = 0; w < cfg_.window; ++w) {
        submit(static_cast<std::uint32_t>(c));
      }
    }
    eng_.run_until(cfg_.duration_us);

    SimResult res;
    res.completed = completed_;
    double measured_s = (cfg_.duration_us - cfg_.warmup_us) / 1e6;
    res.kcps = static_cast<double>(completed_) / measured_s / 1e3;
    res.latency = latency_;
    res.avg_latency_us = latency_.mean();
    double busy = mcast_cpu_ + sched_busy_;
    std::uint64_t total_done = 0, max_done = 0;
    for (const auto& w : workers_) {
      busy += w.busy_us;
      total_done += w.done;
      max_done = std::max(max_done, w.done);
    }
    res.cpu_pct = 100.0 * busy / cfg_.duration_us;
    res.max_worker_share =
        total_done ? static_cast<double>(max_done) / total_done : 0.0;
    return res;
  }

 private:
  struct Worker {
    std::deque<Job> q;
    bool busy = false;
    bool stalled = false;  // parked at a synchronous-mode command
    double busy_us = 0;
    std::uint64_t done = 0;
    double last_arrival = 0;  // keeps per-stream delivery monotonic
  };

  struct Barrier {
    int arrived = 0;
  };

  enum class SchedState { kIdle, kBusy, kDrain, kWaitDep };

  [[nodiscard]] int effective_workers() const {
    return cfg_.tech == Tech::kSmr ? 1 : cfg_.workers;
  }
  [[nodiscard]] int k() const {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] bool replicated() const {
    return cfg_.tech == Tech::kSmr || cfg_.tech == Tech::kSpsmr ||
           cfg_.tech == Tech::kPsmr;
  }

  // --- cost model ---

  double exec_cost(bool heavy_response) {
    if (cfg_.netfs) {
      return heavy_response
                 ? cfg_.fs.fs_op_read + cfg_.fs.decompress_small +
                       cfg_.fs.compress_1k
                 : cfg_.fs.fs_op_write + cfg_.fs.decompress_1k +
                       cfg_.fs.compress_small;
    }
    return cfg_.zipf ? cfg_.kv.exec_cached : cfg_.kv.exec;
  }

  double merge_cost() const {
    if (cfg_.netfs) return cfg_.fs.psmr_overhead;
    if (k() == 1 && cfg_.frac_dependent == 0.0) return cfg_.kv.merge_idle;
    return cfg_.kv.merge_base + cfg_.kv.merge_per_worker * k();
  }

  double sched_cost() const {
    if (cfg_.netfs) return cfg_.fs.spsmr_sched + cfg_.kv.deliver_single;
    double base = cfg_.kv.sched + cfg_.kv.sched_per_worker * (k() - 1);
    return cfg_.tech == Tech::kNoRep ? base + cfg_.kv.norep_recv
                                     : base + cfg_.kv.deliver_single;
  }

  // --- submission path ---

  void submit(std::uint32_t client) {
    bool dep = cfg_.frac_dependent > 0 && rng_.chance(cfg_.frac_dependent);
    bool heavy = cfg_.netfs ? cfg_.netfs_reads : false;
    int group = 0;
    if (cfg_.zipf) {
      std::uint64_t rank = zipf_.sample(rng_);
      if (rank < cfg_.hot_aware) {
        // Load-aware C-G: known-hot objects pinned round-robin (§IV-D).
        group = static_cast<int>(rank % static_cast<std::uint64_t>(k()));
      } else {
        group = static_cast<int>(util::mix64(rank) %
                                 static_cast<std::uint64_t>(k()));
      }
    } else {
      group = static_cast<int>(rng_.next_below(
          static_cast<std::uint64_t>(k())));
    }

    Job job;
    job.dep = dep;
    job.client = client;
    job.submitted = eng_.now();

    switch (cfg_.tech) {
      case Tech::kSmr: {
        job.service = cfg_.kv.deliver_single + exec_cost(heavy);
        double t = decided(0);
        deliver(0, t, job);
        break;
      }
      case Tech::kPsmr: {
        if (!dep) {
          job.service = cfg_.kv.deliver_single + merge_cost() +
                        exec_cost(heavy);
          double t = decided(static_cast<std::size_t>(group));
          deliver(static_cast<std::size_t>(group), t + merge_align(), job);
        } else {
          // Synchronous mode: delivered by every worker via g_all; executed
          // once by the minimum-indexed destination (Algorithm 1).
          job.service = cfg_.kv.deliver_single + merge_cost() +
                        exec_cost(heavy) +
                        cfg_.kv.barrier_per_worker * (k() - 1);
          job.barrier = next_barrier_++;
          barriers_.emplace(job.barrier, Barrier{});
          double t = decided(ring_clock_.size() - 1) + merge_align();
          for (std::size_t w = 0; w < workers_.size(); ++w) {
            deliver(w, t, job);
          }
        }
        break;
      }
      case Tech::kSpsmr: {
        job.service = dep ? exec_cost(heavy) + 2 * cfg_.kv.wake
                          : cfg_.kv.handoff + exec_cost(heavy);
        double t = decided(0);
        std::size_t target = static_cast<std::size_t>(group);
        eng_.at(t, [this, job, target] { sched_enqueue(job, target); });
        break;
      }
      case Tech::kNoRep: {
        job.service = dep ? exec_cost(heavy) + 2 * cfg_.kv.wake
                          : cfg_.kv.handoff + exec_cost(heavy);
        std::size_t target = static_cast<std::size_t>(group);
        eng_.after(cfg_.net.one_way,
                   [this, job, target] { sched_enqueue(job, target); });
        break;
      }
      case Tech::kLock: {
        job.service = cfg_.kv.lock_path + exec_cost(heavy);
        std::size_t handler = client % workers_.size();
        eng_.after(cfg_.net.one_way, [this, job, handler] {
          enqueue(handler, job);
        });
        break;
      }
    }
  }

  /// Total order per ring: monotone decided times with batching delay.
  double decided(std::size_t ring) {
    double t = eng_.now() + cfg_.net.one_way + cfg_.net.order_base +
               rng_.next_double() * cfg_.net.batch_wait_max;
    ring_clock_[ring] = std::max(ring_clock_[ring], t);
    return ring_clock_[ring];
  }

  double merge_align() {
    return rng_.next_double() * cfg_.net.merge_align_max;
  }

  void deliver(std::size_t worker, double when, Job job) {
    auto& w = workers_[worker];
    // FIFO per stream: delivery cannot overtake earlier deliveries.
    when = std::max(when, w.last_arrival);
    w.last_arrival = when;
    eng_.at(when, [this, worker, job] { enqueue(worker, job); });
  }

  // --- worker machinery ---

  void enqueue(std::size_t worker, Job job) {
    // Per-command service jitter (cache misses, tree depth variance):
    // +/-40% uniform, mean-preserving.  Gives the latency CDFs their
    // spread without changing throughput.
    job.service *= 0.6 + 0.8 * rng_.next_double();
    workers_[worker].q.push_back(std::move(job));
    try_start(worker);
  }

  void try_start(std::size_t worker) {
    auto& w = workers_[worker];
    if (w.busy || w.stalled || w.q.empty()) return;
    Job& job = w.q.front();

    if (cfg_.tech == Tech::kPsmr && job.dep) {
      // Synchronous mode: park until every worker has delivered the
      // command; the minimum-indexed worker executes for all.
      w.stalled = true;
      auto& barrier = barriers_[job.barrier];
      if (++barrier.arrived == k()) {
        auto& executor = workers_[0];
        executor.busy_us += job.service;
        Job copy = job;
        eng_.after(job.service,
                   [this, copy] { barrier_complete(copy); });
      }
      return;
    }

    if (cfg_.tech == Tech::kLock && job.dep) {
      // Structural command: latch path in parallel, then the global latch.
      w.busy = true;
      w.busy_us += job.service;
      Job copy = job;
      eng_.after(job.service, [this, worker, copy] {
        acquire_global_lock(worker, copy);
      });
      return;
    }

    w.busy = true;
    w.busy_us += job.service;
    eng_.after(job.service, [this, worker] { finish_job(worker); });
  }

  void finish_job(std::size_t worker) {
    auto& w = workers_[worker];
    Job job = std::move(w.q.front());
    w.q.pop_front();
    w.busy = false;
    w.done++;
    complete(job);
    if (cfg_.tech == Tech::kSpsmr || cfg_.tech == Tech::kNoRep) {
      on_worker_done(job);
    }
    try_start(worker);
  }

  void barrier_complete(const Job& job) {
    barriers_.erase(job.barrier);
    workers_[0].done++;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      auto& w = workers_[i];
      w.stalled = false;
      w.q.pop_front();  // every queue's front is this synchronous command
    }
    complete(job);
    for (std::size_t i = 0; i < workers_.size(); ++i) try_start(i);
  }

  // --- BDB global latch ---

  void acquire_global_lock(std::size_t worker, Job job) {
    if (glock_busy_) {
      glock_waiters_.emplace_back(worker, std::move(job));
      return;
    }
    glock_busy_ = true;
    run_global_section(worker, std::move(job));
  }

  void run_global_section(std::size_t worker, Job /*job: consumed; its
                          completion is what finish_job below accounts */) {
    workers_[worker].busy_us += cfg_.kv.lock_serial;
    eng_.after(cfg_.kv.lock_serial, [this, worker] {
      // Finish the handler's job, then hand the latch to the next waiter.
      finish_job(worker);
      if (glock_waiters_.empty()) {
        glock_busy_ = false;
      } else {
        auto [next_worker, next_job] = std::move(glock_waiters_.front());
        glock_waiters_.pop_front();
        run_global_section(next_worker, std::move(next_job));
      }
    });
  }

  // --- sP-SMR / no-rep scheduler ---

  void sched_enqueue(Job job, std::size_t target) {
    sched_q_.emplace_back(std::move(job), target);
    sched_try();
  }

  void sched_try() {
    if (sched_state_ != SchedState::kIdle || sched_q_.empty()) return;
    sched_state_ = SchedState::kBusy;
    double cost = sched_cost();
    sched_busy_ += cost;
    eng_.after(cost, [this] {
      auto [job, target] = std::move(sched_q_.front());
      sched_q_.pop_front();
      if (!job.dep) {
        ++dispatched_;
        enqueue(target, std::move(job));
        sched_state_ = SchedState::kIdle;
        sched_try();
      } else {
        // Serialize: wait for workers to finish in-flight work, run the
        // command alone on one worker, wait again (Section VI-C).
        pending_dep_ = std::move(job);
        sched_state_ = SchedState::kDrain;
        check_drain();
      }
    });
  }

  void check_drain() {
    if (dispatched_ != 0) return;
    sched_state_ = SchedState::kWaitDep;
    ++dispatched_;
    enqueue(0, std::move(pending_dep_));
  }

  void on_worker_done(const Job& job) {
    --dispatched_;
    if (sched_state_ == SchedState::kDrain) {
      check_drain();
    } else if (sched_state_ == SchedState::kWaitDep && job.dep) {
      sched_state_ = SchedState::kIdle;
      sched_try();
    }
  }

  // --- completion / closed loop ---

  void complete(const Job& job) {
    if (replicated()) mcast_cpu_ += 0.6;  // multicast library work per cmd
    double wire = cfg_.net.one_way * (0.8 + 0.6 * rng_.next_double());
    double latency = eng_.now() + wire - job.submitted;
    std::uint32_t client = job.client;
    eng_.after(wire, [this, latency, client] {
      if (eng_.now() > cfg_.warmup_us && eng_.now() <= cfg_.duration_us) {
        latency_.record(latency);
        ++completed_;
      }
      submit(client);  // closed loop, zero think time
    });
  }

  SimConfig cfg_;
  Engine eng_;
  util::SplitMix64 rng_;
  util::Zipf zipf_;

  std::vector<Worker> workers_;
  std::vector<double> ring_clock_;  // per worker ring + shared ring (last)

  std::unordered_map<std::uint64_t, Barrier> barriers_;
  std::uint64_t next_barrier_ = 1;

  std::deque<std::pair<Job, std::size_t>> sched_q_;
  SchedState sched_state_ = SchedState::kIdle;
  Job pending_dep_;
  int dispatched_ = 0;
  double sched_busy_ = 0;

  bool glock_busy_ = false;
  std::deque<std::pair<std::size_t, Job>> glock_waiters_;

  util::Histogram latency_;
  std::uint64_t completed_ = 0;
  double mcast_cpu_ = 0;
};

}  // namespace

SimResult simulate(const SimConfig& cfg) { return Simulation(cfg).run(); }

OverloadPoint simulate_overload(const OverloadConfig& cfg,
                                double offered_kcps) {
  OverloadPoint pt;
  pt.offered_kcps = offered_kcps;
  const double dt = cfg.step_us;
  // Kcps = 1e-3 commands/us.
  const double arrivals_per_step = offered_kcps * 1e-3 * dt;
  const double capacity = cfg.capacity_kcps * 1e-3;  // commands/us
  double backlog = 0;
  double completed = 0;
  double shed = 0;
  double offered_total = 0;
  double record_carry = 0;  // fractional completions await a whole sample
  bool shedding = false;
  for (double t = 0; t < cfg.duration_us; t += dt) {
    if (cfg.admission) {
      if (!shedding && backlog >= cfg.shed_enter_occupancy) {
        shedding = true;
      } else if (shedding && backlog <= cfg.shed_exit_occupancy) {
        shedding = false;
      }
    }
    offered_total += arrivals_per_step;
    if (shedding) {
      shed += arrivals_per_step;
    } else {
      backlog += arrivals_per_step;
    }
    const double eff = capacity / (1.0 + cfg.overload_penalty * backlog);
    const double served = std::min(backlog, eff * dt);
    backlog -= served;
    completed += served;
    if (served > 0) {
      // Sojourn of the fluid served this step: unloaded path plus the time
      // the queue ahead of it takes to drain at the current rate.
      const double sojourn = cfg.base_latency_us + backlog / eff;
      record_carry += served;
      const double whole = std::floor(record_carry);
      if (whole >= 1.0) {
        pt.latency.record_n(sojourn, static_cast<std::uint64_t>(whole));
        record_carry -= whole;
      }
    }
  }
  // commands/us -> Kcps is x1e3.
  pt.goodput_kcps = completed / cfg.duration_us * 1e3;
  pt.shed_kcps = shed / cfg.duration_us * 1e3;
  pt.shed_fraction = offered_total > 0 ? shed / offered_total : 0;
  pt.final_backlog = backlog;
  pt.p50_latency_us = pt.latency.quantile(0.50);
  pt.p95_latency_us = pt.latency.quantile(0.95);
  pt.p99_latency_us = pt.latency.quantile(0.99);
  return pt;
}

std::size_t knee_index(const std::vector<OverloadPoint>& points,
                       double headroom) {
  std::size_t knee = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].goodput_kcps >= headroom * points[i].offered_kcps) knee = i;
  }
  return knee;
}

RecoveryPoint simulate_recovery(const RecoveryConfig& cfg) {
  RecoveryPoint pt;
  pt.downtime_us = cfg.downtime_us;
  const double offered = cfg.offered_kcps * 1e-3;    // commands/us
  const double capacity = cfg.capacity_kcps * 1e-3;
  const double install_rate = cfg.install_kcps * 1e-3;
  const double total_at_crash = offered * cfg.uptime_us;
  // The last checkpoint cut before the crash bounds the replay suffix.
  double covered = 0;
  if (cfg.snapshot && cfg.checkpoint_interval_cmds > 0) {
    covered = std::floor(total_at_crash / cfg.checkpoint_interval_cmds) *
              cfg.checkpoint_interval_cmds;
  }
  pt.installed_cmds = covered;
  pt.install_us = install_rate > 0 ? covered / install_rate : 0;
  // Suffix at the moment replay starts: the residual since the checkpoint,
  // plus everything the live replicas decided during the outage and the
  // install phase.
  pt.replayed_cmds = (total_at_crash - covered) +
                     offered * (cfg.downtime_us + pt.install_us);
  const double drain = capacity - offered;
  if (drain <= 0) {
    // Replay can never outpace the live load: unrecoverable.
    pt.replay_us = cfg.max_recovery_us;
    pt.recovery_us = cfg.max_recovery_us;
    pt.recovered = false;
    return pt;
  }
  pt.replay_us = pt.replayed_cmds / drain;
  pt.recovery_us = pt.install_us + pt.replay_us;
  pt.recovered = pt.recovery_us <= cfg.max_recovery_us;
  return pt;
}

}  // namespace psmr::sim
