// Service-time constants for the simulation models, calibrated against the
// paper's own reported numbers (HP SE1102 nodes: 2x quad-core Xeon L5420,
// Section VII-B).  Each constant cites the observation it is derived from.
//
// The constants are per-command costs in microseconds of one core's time.
#pragma once

namespace psmr::sim {

struct KvCosts {
  // SMR executes ~842 Kcps single-threaded with both reads and
  // inserts/deletes ("throughput in SMR remains constant at about 842K
  // cps", Section VII-D); most of the cost is the B+-tree traversal
  // (Section VII-F).  We split it as ~1.0us execution + ~0.18us single
  // stream delivery/unmarshal: 1/(1.18us) = 847 Kcps.
  //
  // `exec` models the *paper's* tree on the paper's hardware; the measured
  // trajectory of the real tree in src/kvstore lives in BtreeCalibration
  // below, which scales this constant onto the current layout.
  double exec = 1.00;
  double deliver_single = 0.18;

  // sP-SMR peaks at 1.14x of SMR with 2 worker threads (Fig. 3): the
  // scheduler is CPU-bound at ~970 Kcps => ~1.03us per command of which
  // 0.18us is stream delivery: schedule cost ~0.85us.  Adding workers makes
  // it *slower* ("the scheduler spends more time synchronizing with worker
  // threads", Section VII-G): +0.03us per extra worker.
  double sched = 0.85;
  double sched_per_worker = 0.03;
  // Handing a command to a worker and wakeups cost ~0.15us on the worker.
  double handoff = 0.15;
  // Serialized (drain) commands in sP-SMR/no-rep ping-pong between the
  // scheduler and a worker: two thread wakeups (~1.0us each on the paper's
  // 2.5GHz Xeons under load) besides schedule+execute.  Yields the observed
  // 0.28x (sP-SMR) / 0.32x (no-rep) dependent-command throughput (Fig. 4).
  double wake = 1.00;

  // no-rep receives from client sockets instead of the multicast library:
  // receive cost ~0.11us; peak 1.22x = ~1.04 Mcps (Fig. 3).
  double norep_recv = 0.11;

  // P-SMR worker threads deliver their own two merged streams (g_i +
  // g_all).  Merge bookkeeping costs ~0.90us plus ~0.12us per worker group
  // (skip traffic grows with the number of rings); with 8 workers:
  // 1/(1.0 + 0.18 + 0.9 + 0.96)us * 8 = ~2.63 Mcps = ~3.1x SMR (Fig. 3:
  // 3.15x), and per-thread normalized throughput decays like Fig. 5's
  // bottom-left curve.  With one worker group the shared ring carries only
  // rare skips: ~0.10us amortized.
  double merge_base = 0.90;
  double merge_per_worker = 0.12;
  double merge_idle = 0.10;

  // Synchronous-mode barrier (Algorithm 1): the executing thread collects a
  // signal from and then signals every other destination thread: ~0.45us of
  // executor time per participating worker.  Together with the pipeline
  // stall this yields Fig. 6's ~10% breakeven and Fig. 4's 0.5x.
  double barrier_per_worker = 0.30;

  // BDB (lock server): ~170 Kcps peak with 6 threads for reads (Fig. 3,
  // 0.2x) => ~35us of locking+latching per command ("high overhead with
  // locking, reflected in the CPU usage").  Structure-changing commands
  // additionally serialize on a global latch for ~9.5us: 105 Kcps with 4
  // threads (Section VII-D).
  double lock_path = 34.0;
  double lock_serial = 9.5;

  // Zipfian key selection caches hot keys: per-command execution drops to
  // ~0.85us ("there are higher chances that these keys are cached at the
  // processor", Section VII-G).
  double exec_cached = 0.85;
};

struct NetFsCosts {
  // SMR NetFS: ~110 Kcps for 1KB writes, ~100 Kcps for 1KB reads
  // (Section VII-H) => ~9.1us / ~10us per command single-threaded.
  // Reads are slower because the worker compresses the 1KB response while a
  // write only compresses a tiny status ("as compression with lz4 takes
  // longer than decompression, read requests took longer to execute").
  double fs_op_read = 5.6;        // path walk + copy-out
  double fs_op_write = 7.5;       // path walk + extend/copy-in (1KB)
  double decompress_small = 0.2;  // read request / write response
  double decompress_1k = 1.3;     // write request payload
  double compress_small = 0.3;
  double compress_1k = 4.1;       // read response payload
  // Aggregate per-command delivery/merge/proxy overhead at a P-SMR worker.
  // Calibrated from the paper's own peak: 309 Kcps with 8 workers
  // => 8/309K - 10us ~= 15.9us of per-command overhead beyond execution
  // (two Paxos streams per worker, deterministic merge, FUSE-style proxy
  // re-assembly, all sharing the replica's 8 cores).
  double psmr_overhead = 15.9;
  // sP-SMR: the scheduler handles every request and decompresses the path
  // to route it; it saturates at ~116 Kcps (1.07-1.16x, Fig. 8).
  double spsmr_sched = 8.3;
};

/// Host-measured B+-tree micro-costs (PR 3).  Source: `bench_micro_btree
/// --json` on the reference container (single core, RelWithDebInfo),
/// random finds over a tree preloaded with sequential keys — the paper's
/// Section VII setup.  The bench bakes the seed (pre-PR 3) node layout in
/// as `BaselineFind`, so these ratios stay re-measurable in CI; the JSON's
/// `derived` block must track this struct.
///
/// The reference host resolves a dependent miss in ~240ns but 8+
/// independent misses in about one latency, so the cache-conscious layout
/// pays off two ways: fewer lines and one less level per descent (the
/// single-lookup rows), and the pipelined find_batch/multi-read path that
/// overlaps whole lookups (the batch row — the replica executes delivered
/// command batches, which is exactly that shape).
struct BtreeCalibration {
  // Random find, ns/op, 10M-key tree (memory-resident working set).
  double find_10m_ns_seed = 650.0;   // seed layout (BaselineFind)
  double find_10m_ns = 540.0;        // cache-conscious layout, single lookup
  double find_batch_10m_ns = 187.0;  // pipelined find_batch (multi-get)
  // 1M-key tree (LLC-edge): the layout alone ~2.7x's single lookups.
  double find_1m_ns_seed = 325.0;
  double find_1m_ns = 121.0;
  double update_1m_ns = 133.0;

  /// Single-lookup layout speedup at the paper's 10M-key working set.
  [[nodiscard]] double layout_speedup() const {
    return find_10m_ns_seed / find_10m_ns;
  }
  /// Batched-read speedup at 10M keys (the kKvMultiRead execution path).
  [[nodiscard]] double batch_speedup() const {
    return find_10m_ns_seed / find_batch_10m_ns;
  }

  /// KvCosts::exec scaled onto the current single-lookup tree: what the
  /// simulator uses to track the real execution cost of point commands.
  [[nodiscard]] double scaled_exec(const KvCosts& kv = {}) const {
    return kv.exec / layout_speedup();
  }
  /// KvCosts::exec scaled onto the batched read path.
  [[nodiscard]] double scaled_exec_batched(const KvCosts& kv = {}) const {
    return kv.exec / batch_speedup();
  }
};

/// Host-measured end-to-end batched execution record (PR 4; re-measured
/// after the PR 5 response-path refactor).  Source: `bench_fig3 --json` on
/// the reference container (single core, RelWithDebInfo): the fig3
/// independent mix (100% uniform reads, 8M-key tree) driven through the
/// replica execution pipeline — delivery thread → scheduler → worker batch
/// accumulation → KvService::execute_batch (pipelined find_batch read lane)
/// → marshaled, coalesced replies — with execution run length 16 vs 1.
/// Reply coalescing (PR 5) widened the PR 4 ratio from 1.63x to ~2.6x: a
/// 16-command run now leaves the replica as one wire frame instead of 16,
/// so the per-command send cost that used to cap the batched leg is gone.
struct ExecCalibration {
  // Replica execution pipeline, Kcps, fig3 mix at 8M keys.
  double pipeline_seq_kcps = 429.0;       // run length 1 (pre-batching path)
  double pipeline_batched_kcps = 1126.0;  // run length 16, coalesced replies
  double mean_commands_per_batch = 16.0;

  /// End-to-end batched-vs-sequential execution speedup (acceptance
  /// target: >= 1.3x on the reference host).
  [[nodiscard]] double batched_ratio() const {
    return pipeline_batched_kcps / pipeline_seq_kcps;
  }
};

/// Host-measured response-path coalescing record (PR 5).  Source:
/// `bench_fig3 --json` (BENCH_response.json) on the reference container:
/// the full sP-SMR deployment (2 replicas, mpl 2, 4 clients at window 50,
/// fig3 read mix, execution batching on) with reply coalescing on vs off.
/// Coalescing bundles each execution batch's replies per destination proxy
/// into one kSmrResponseMany frame, so the wire carries ~9 responses per
/// message instead of 1; on the one-core host, where ordering dominates,
/// that still buys ~4% deployment throughput and a visibly shorter latency
/// tail (p99 1552 → 1360us) because clients drain one mailbox pop per
/// batch instead of one per command.
struct ResponseCalibration {
  // Full sP-SMR deployment, Kcps, fig3 mix, window 50.
  double deployment_uncoalesced_kcps = 231.6;  // one wire message per reply
  double deployment_coalesced_kcps = 239.8;    // batched reply frames
  double responses_per_message = 9.1;          // coalesced config, window 50

  /// Deployment speedup from reply coalescing alone (acceptance: >= 1.0 on
  /// the reference host — coalescing must never cost throughput).
  [[nodiscard]] double coalesced_ratio() const {
    return deployment_coalesced_kcps / deployment_uncoalesced_kcps;
  }
};

/// Zero-copy buffer pool + submit pipelining pin (PR 10).  Source:
/// `bench_micro_codec --json` (hot-path allocation metering via the
/// util/alloc_hook counting allocator) and `bench_fig3_independent --json`
/// (deployment throughput with the pooled stack in place).
///
/// The codec measurement replays the same 64-command submit→order→deliver
/// chain two ways.  The seed's chain re-marshaled or copied the bytes into
/// a fresh heap vector at every hop (client encode, SUBMIT_MANY pack,
/// coordinator unpack, batch seal, learner unpack, Command::decode params
/// copy): 10.36 allocations per command.  The pooled chain (PayloadWriter
/// spool frame → subview pending → Batch encode/decode → Command::decode
/// subviews) touches the heap once per *batch* — Batch::decode's commands
/// vector — i.e. 1/64 per command.  Both numbers are deterministic, so CI
/// gates them tightly; the throughput floor below guards the end-to-end
/// claim (pooling must not cost deployment throughput vs the PR-8 record)
/// with slack for host noise.
struct AllocCalibration {
  // Hot-path allocations per command, measured, 64-command spools.
  double buffer_allocs_per_cmd = 10.36;   // the seed's Buffer-per-hop chain
  double pooled_allocs_per_cmd = 0.0156;  // == 1 alloc / 64-command batch

  // CI gates over BENCH_alloc.json (exact: the chains are deterministic).
  double max_pooled_allocs_per_cmd = 0.1;
  double min_buffer_allocs_per_cmd = 3.0;

  // Reference-host sP-SMR coalesced deployment throughput with the pooled
  // stack (fig3 mix, window 50), vs ResponseCalibration's PR-8 record.
  double deployment_spsmr_kcps = 242.8;
  /// CI floor on BENCH_response.json's coalesced_kcps: generous slack under
  /// the measured 1.01x-of-record so shared-runner noise can't flake the
  /// gate, while a real regression (pooling gone quadratic, spooler
  /// serializing the bus) still trips it.
  double min_deployment_ratio_vs_record = 0.5;

  /// Hot-path allocation reduction from pooling (measured ~660x).
  [[nodiscard]] double reduction() const {
    return buffer_allocs_per_cmd / pooled_allocs_per_cmd;
  }
};

/// Shard-scaling sweep pin (PR 6).  Source: `bench_fig5_scalability
/// --json` — P-SMR throughput vs shard (= ring = worker group) count at a
/// fixed cross-shard conflict rate, the many-ring configuration the
/// key→group mapping layer exists for.  The sweep holds the conflict rate
/// constant while the ring count grows, so the curve isolates what the
/// paper's Fig. 5 shows for worker threads: parallel delivery scales until
/// synchronous-mode barriers (here: cross-shard commands through g_all) eat
/// the gain.  The simulator is deterministic, which is what makes the CI
/// gate on this relation stable.
struct ShardCalibration {
  /// Fraction of commands spanning shards (multi-shard γ via g_all).  5% is
  /// the neighbourhood of the paper's Fig. 6 breakeven discussion: enough
  /// dependent traffic to be honest, not enough to flatten the curve.
  double conflict_rate = 0.05;
  /// CI gate: kcps at `gate_shards` must be >= min_scaling x kcps at
  /// `baseline_shards` (monotonic-scaling smoke over BENCH_shard.json).
  int baseline_shards = 1;
  int gate_shards = 8;
  double min_scaling = 1.5;
};

/// Overload/admission sweep pin (PR 7).  Source: `bench_fig9_latency_rate
/// --json` (BENCH_latency.json) — the deterministic fluid overload model
/// (sim/model.h, simulate_overload) swept over offered rates with the
/// admission valve off and on.  The model is fully deterministic and runs a
/// fixed virtual interval regardless of --quick, so the CI gate over the
/// bench JSON and the sim_calibration_test assertions see identical numbers.
///
/// Shape being pinned: goodput tracks offered rate up to the knee; past it,
/// with no valve, the in-ring backlog degrades effective capacity and
/// goodput *collapses* (congestion collapse, not a plateau), while the
/// occupancy valve caps the backlog and holds goodput near the knee with a
/// bounded latency tail.
struct AdmissionCalibration {
  // Model inputs (OverloadConfig defaults the bench runs with).
  double capacity_kcps = 842.0;    // KvCosts' single-stream SMR pipeline
  double overload_penalty = 2.0e-5;
  double shed_enter_occupancy = 8192;   // = smr::AdmissionConfig defaults
  double shed_exit_occupancy = 4096;
  /// Knee detection: the knee is the highest swept offered rate whose
  /// goodput still covers this fraction of it.
  double knee_headroom = 0.9;
  /// The overload probe runs at this multiple of the knee's offered rate.
  double overload_factor = 2.0;

  // Measured record (bench_fig9_latency_rate --json, reference container).
  double knee_offered_kcps = 842.0;
  double knee_goodput_kcps = 836.2;
  double on_goodput_2x_kcps = 750.9;    // admission ON at 2x-knee offered
  double off_goodput_2x_kcps = 310.3;   // admission OFF at 2x-knee offered
  double on_p99_2x_us = 11392.0;        // bounded by the occupancy cap
  double off_p99_2x_us = 2015232.0;     // collapse: seconds-long sojourns

  // CI gates (checked over BENCH_latency.json and re-asserted from the
  // model in sim_calibration_test).
  double min_goodput_vs_knee = 0.8;       // ON at 2x-knee holds >= 0.8x knee
  double max_goodput_off_vs_knee = 0.6;   // OFF must collapse below 0.6x knee
  double max_p99_on_us = 25'000;          // ON tail stays bounded
};

/// Recovery sweep pin (PR 8).  Source: `bench_fig10_recovery --json`
/// (BENCH_recovery.json) — the deterministic recovery fluid model
/// (sim/model.h, simulate_recovery) swept over downtimes with snapshot
/// catch-up on and off.  The model runs fixed virtual parameters regardless
/// of --quick, so the CI gate over the bench JSON and the
/// sim_calibration_test assertions see identical numbers.
///
/// Shape being pinned: with periodic checkpoints, a restarted replica
/// installs a snapshot and replays a *bounded* suffix, so its recovery time
/// is a small multiple of the downtime; without them it replays the entire
/// history, so recovery scales with uptime instead and is several times
/// slower at the probe point.
struct RecoveryCalibration {
  // Model inputs (RecoveryConfig defaults the bench runs with).
  double capacity_kcps = 842.0;    // KvCosts' single-stream SMR pipeline
  double offered_kcps = 400.0;     // sustained load during the outage
  double uptime_us = 10'100'000;   // virtual run time before the crash
  double checkpoint_interval_cmds = 200'000;
  double install_kcps = 8'420.0;   // bulk snapshot install (10x execution)
  double probe_downtime_us = 500'000;  // the gated sweep point

  // Measured record (bench_fig10_recovery --json, reference container).
  double snapshot_recovery_us = 1'447'963.8;    // install + bounded suffix
  double full_replay_recovery_us = 9'592'760.2; // whole-history replay

  // CI gates (checked over BENCH_recovery.json and re-asserted from the
  // model in sim_calibration_test).
  double max_recovery_vs_downtime = 3.5;  // snapshot recovery / downtime
  double min_full_replay_ratio = 4.0;     // full replay / snapshot recovery
};

/// Client/network constants shared by both services.
struct NetCosts {
  double one_way = 60.0;        // client <-> cluster, switched gigabit
  double order_base = 90.0;     // Paxos phase-2 round for a batch
  double batch_wait_max = 100;  // coordinator batching delay (uniform)
  double merge_align_max = 120; // deterministic-merge skip alignment
};

}  // namespace psmr::sim
