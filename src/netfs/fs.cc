#include "netfs/fs.h"

#include <algorithm>

#include "util/hash.h"

namespace psmr::netfs {

MemFs::MemFs() {
  Inode root;
  root.is_dir = true;
  root.mode = 0755;
  inodes_.emplace(kRoot, std::move(root));
}

std::optional<MemFs::InodeId> MemFs::lookup_id(
    std::string_view normalized) const {
  InodeId cur = kRoot;
  for (const auto& comp : split_path(normalized)) {
    auto it = inodes_.find(cur);
    if (it == inodes_.end() || !it->second.is_dir) return std::nullopt;
    auto entry = it->second.entries.find(comp);
    if (entry == it->second.entries.end()) return std::nullopt;
    cur = entry->second;
  }
  return cur;
}

const MemFs::Inode* MemFs::lookup(std::string_view normalized) const {
  auto id = lookup_id(normalized);
  if (!id) return nullptr;
  auto it = inodes_.find(*id);
  return it == inodes_.end() ? nullptr : &it->second;
}

MemFs::Inode* MemFs::lookup(std::string_view normalized) {
  return const_cast<Inode*>(
      static_cast<const MemFs*>(this)->lookup(normalized));
}

int MemFs::add_entry(const std::string& path, bool is_dir,
                     std::uint32_t mode) {
  std::string norm = normalize_path(path);
  if (norm == "/") return -EEXIST;
  std::string parent = parent_path(norm);
  std::string name = base_name(norm);
  if (name == "." || name == "..") return -EINVAL;
  Inode* dir = lookup(parent);
  if (dir == nullptr) return -ENOENT;
  if (!dir->is_dir) return -ENOTDIR;
  if (dir->entries.contains(name)) return -EEXIST;
  InodeId id = next_inode_++;
  Inode node;
  node.is_dir = is_dir;
  node.mode = mode;
  dir->entries.emplace(name, id);
  inodes_.emplace(id, std::move(node));
  return 0;
}

int MemFs::create(const std::string& path, std::uint32_t mode) {
  return add_entry(path, /*is_dir=*/false, mode);
}

int MemFs::mkdir(const std::string& path, std::uint32_t mode) {
  return add_entry(path, /*is_dir=*/true, mode);
}

int MemFs::unlink(const std::string& path) {
  std::string norm = normalize_path(path);
  if (norm == "/") return -EISDIR;
  Inode* dir = lookup(parent_path(norm));
  if (dir == nullptr || !dir->is_dir) return -ENOENT;
  auto entry = dir->entries.find(base_name(norm));
  if (entry == dir->entries.end()) return -ENOENT;
  auto node = inodes_.find(entry->second);
  if (node != inodes_.end() && node->second.is_dir) return -EISDIR;
  inodes_.erase(entry->second);
  dir->entries.erase(entry);
  return 0;
}

int MemFs::rmdir(const std::string& path) {
  std::string norm = normalize_path(path);
  if (norm == "/") return -EBUSY;
  Inode* dir = lookup(parent_path(norm));
  if (dir == nullptr || !dir->is_dir) return -ENOENT;
  auto entry = dir->entries.find(base_name(norm));
  if (entry == dir->entries.end()) return -ENOENT;
  auto node = inodes_.find(entry->second);
  if (node == inodes_.end() || !node->second.is_dir) return -ENOTDIR;
  if (!node->second.entries.empty()) return -ENOTEMPTY;
  inodes_.erase(entry->second);
  dir->entries.erase(entry);
  return 0;
}

int MemFs::open(const std::string& path, std::uint64_t& fh) {
  auto id = lookup_id(normalize_path(path));
  if (!id) return -ENOENT;
  auto it = inodes_.find(*id);
  if (it->second.is_dir) return -EISDIR;
  fh = next_fh_++;
  fd_table_.insert(fh, *id);
  return 0;
}

int MemFs::release(std::uint64_t fh) {
  return fd_table_.erase(fh) ? 0 : -EBADF;
}

int MemFs::opendir(const std::string& path, std::uint64_t& fh) {
  auto id = lookup_id(normalize_path(path));
  if (!id) return -ENOENT;
  auto it = inodes_.find(*id);
  if (!it->second.is_dir) return -ENOTDIR;
  fh = next_fh_++;
  fd_table_.insert(fh, *id);
  return 0;
}

int MemFs::releasedir(std::uint64_t fh) { return release(fh); }

int MemFs::utimens(const std::string& path, std::int64_t atime_ns,
                   std::int64_t mtime_ns) {
  Inode* node = lookup(normalize_path(path));
  if (node == nullptr) return -ENOENT;
  node->atime_ns = atime_ns;
  node->mtime_ns = mtime_ns;
  return 0;
}

int MemFs::access(const std::string& path, std::uint32_t mask) const {
  const Inode* node = lookup(normalize_path(path));
  if (node == nullptr) return -ENOENT;
  // Owner permission bits only (single-principal file system).
  std::uint32_t perms = (node->mode >> 6) & 7;
  if ((mask & perms) != mask && mask != 0) return -EACCES;
  return 0;
}

int MemFs::lstat(const std::string& path, FsStat& out) const {
  std::string norm = normalize_path(path);
  auto id = lookup_id(norm);
  if (!id) return -ENOENT;
  const auto& node = inodes_.at(*id);
  out.is_dir = node.is_dir;
  out.mode = node.mode;
  out.size = node.is_dir ? node.entries.size() : node.data.size();
  out.atime_ns = node.atime_ns;
  out.mtime_ns = node.mtime_ns;
  out.inode = *id;
  return 0;
}

int MemFs::read(const std::string& path, std::uint64_t offset,
                std::uint32_t size, util::Buffer& out) const {
  const Inode* node = lookup(normalize_path(path));
  if (node == nullptr) return -ENOENT;
  if (node->is_dir) return -EISDIR;
  out.clear();
  if (offset >= node->data.size()) return 0;  // EOF: empty read
  std::uint64_t end = std::min<std::uint64_t>(offset + size,
                                              node->data.size());
  out.assign(node->data.begin() + static_cast<std::ptrdiff_t>(offset),
             node->data.begin() + static_cast<std::ptrdiff_t>(end));
  return 0;
}

int MemFs::write(const std::string& path, std::uint64_t offset,
                 std::span<const std::uint8_t> data) {
  Inode* node = lookup(normalize_path(path));
  if (node == nullptr) return -ENOENT;
  if (node->is_dir) return -EISDIR;
  if (offset + data.size() > node->data.size()) {
    node->data.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            node->data.begin() + static_cast<std::ptrdiff_t>(offset));
  return 0;
}

int MemFs::readdir(const std::string& path,
                   std::vector<std::string>& names) const {
  const Inode* node = lookup(normalize_path(path));
  if (node == nullptr) return -ENOENT;
  if (!node->is_dir) return -ENOTDIR;
  names.clear();
  for (const auto& [name, id] : node->entries) names.push_back(name);
  return 0;
}

std::uint64_t MemFs::digest() const {
  // Fold a deterministic walk of the tree plus the descriptor table.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::vector<std::pair<std::string, InodeId>> stack{{"/", kRoot}};
  while (!stack.empty()) {
    auto [path, id] = std::move(stack.back());
    stack.pop_back();
    const auto& node = inodes_.at(id);
    h = util::mix64(h ^ util::fnv1a(path));
    h = util::mix64(h ^ (node.is_dir ? 0xd1d1 : 0xf1f1) ^ node.mode);
    h = util::mix64(h ^ static_cast<std::uint64_t>(node.atime_ns) ^
                    (static_cast<std::uint64_t>(node.mtime_ns) << 1));
    if (node.is_dir) {
      for (const auto& [name, child] : node.entries) {
        stack.emplace_back(path == "/" ? "/" + name : path + "/" + name,
                           child);
      }
    } else {
      h = util::mix64(h ^ util::fnv1a(node.data));
    }
  }
  // Descriptor table: the B+-tree's leaf chain enumerates in ascending fh
  // order, so the fold can be order-sensitive (stronger than the previous
  // commutative xor over an unordered table).
  for_each_fd([&h](std::uint64_t fh, std::uint64_t id) {
    h = util::mix64(h ^ (fh * 0x9e3779b97f4a7c15ULL) ^ util::mix64(id));
  });
  return h;
}

void MemFs::snapshot_to(util::Writer& w) const {
  w.u64(next_inode_);
  w.u64(next_fh_);
  // inodes_ is an unordered_map; emit ascending ids so equivalent file
  // systems (replicas at the same cut) serialize to identical bytes.
  std::vector<InodeId> ids;
  ids.reserve(inodes_.size());
  for (const auto& [id, _] : inodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (InodeId id : ids) {
    const Inode& node = inodes_.at(id);
    w.u64(id);
    w.boolean(node.is_dir);
    w.u32(node.mode);
    w.i64(node.atime_ns);
    w.i64(node.mtime_ns);
    w.u32(static_cast<std::uint32_t>(node.entries.size()));
    for (const auto& [name, child] : node.entries) {  // map: sorted already
      w.str(name);
      w.u64(child);
    }
    w.bytes(node.data);
  }
  w.u32(static_cast<std::uint32_t>(fd_table_.size()));
  for_each_fd([&w](std::uint64_t fh, std::uint64_t id) {
    w.u64(fh);
    w.u64(id);
  });
}

bool MemFs::restore_from(util::Reader& r) {
  try {
    std::uint64_t next_inode = r.u64();
    std::uint64_t next_fh = r.u64();
    std::uint32_t num_inodes = r.u32();
    // Every inode occupies at least 30 bytes (id + flags + times + counts).
    if (std::size_t{num_inodes} * 30 > r.remaining() + 30) return false;
    std::unordered_map<InodeId, Inode> inodes;
    inodes.reserve(num_inodes);
    InodeId prev = 0;
    for (std::uint32_t i = 0; i < num_inodes; ++i) {
      InodeId id = r.u64();
      if (i != 0 && id <= prev) return false;  // ascending, duplicate-free
      prev = id;
      Inode node;
      node.is_dir = r.boolean();
      node.mode = r.u32();
      node.atime_ns = r.i64();
      node.mtime_ns = r.i64();
      std::uint32_t num_entries = r.u32();
      if (std::size_t{num_entries} * 12 > r.remaining()) return false;
      for (std::uint32_t j = 0; j < num_entries; ++j) {
        std::string name = r.str();
        node.entries[name] = r.u64();
      }
      node.data = r.bytes();
      inodes.emplace(id, std::move(node));
    }
    if (!inodes.contains(kRoot) || !inodes.at(kRoot).is_dir) return false;
    std::uint32_t num_fds = r.u32();
    if (std::size_t{num_fds} * 16 != r.remaining()) return false;
    fd_table_.clear();
    for (std::uint32_t i = 0; i < num_fds; ++i) {
      std::uint64_t fh = r.u64();
      fd_table_.insert(fh, r.u64());
    }
    inodes_ = std::move(inodes);
    next_inode_ = next_inode;
    next_fh_ = next_fh;
    return true;
  } catch (const util::DecodeError&) {
    return false;
  }
}

}  // namespace psmr::netfs
