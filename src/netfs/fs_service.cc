#include "netfs/fs_service.h"

#include "util/compress.h"

namespace psmr::netfs {

util::Buffer encode_path_mode(const std::string& path, std::uint32_t mode) {
  util::Writer w;
  w.str(path);
  w.u32(mode);
  return w.take();
}

util::Buffer encode_path(const std::string& path) {
  util::Writer w;
  w.str(path);
  return w.take();
}

util::Buffer encode_fh(std::uint64_t fh) {
  util::Writer w;
  w.str("");  // keep field order uniform: path first (empty for fh ops)
  w.u64(fh);
  return w.take();
}

util::Buffer encode_utimens(const std::string& path, std::int64_t atime_ns,
                            std::int64_t mtime_ns) {
  util::Writer w;
  w.str(path);
  w.i64(atime_ns);
  w.i64(mtime_ns);
  return w.take();
}

util::Buffer encode_access(const std::string& path, std::uint32_t mask) {
  util::Writer w;
  w.str(path);
  w.u32(mask);
  return w.take();
}

util::Buffer encode_read(const std::string& path, std::uint64_t offset,
                         std::uint32_t size) {
  util::Writer w;
  w.str(path);
  w.u64(offset);
  w.u32(size);
  return w.take();
}

util::Buffer encode_write(const std::string& path, std::uint64_t offset,
                          std::span<const std::uint8_t> data) {
  util::Writer w;
  w.str(path);
  w.u64(offset);
  w.bytes(data);
  return w.take();
}

util::Buffer pack_params(const util::Buffer& plain) {
  return util::lz_compress(plain);
}

std::optional<util::Buffer> unpack_params(std::span<const std::uint8_t> packed) {
  return util::lz_decompress(packed);
}

FsResult decode_result(smr::CommandId cmd, const util::Buffer& payload) {
  FsResult res;
  auto plain = util::lz_decompress(payload);
  if (!plain) {
    res.err = -EIO;
    return res;
  }
  util::Reader r(*plain);
  res.err = static_cast<int>(r.i64());
  // Error responses carry no payload worth parsing (and the generic -EIO
  // response carries none at all).
  if (res.err != 0) return res;
  switch (cmd) {
    case kFsOpen:
    case kFsOpendir:
      res.fh = r.u64();
      break;
    case kFsLstat:
      res.stat.is_dir = r.boolean();
      res.stat.mode = r.u32();
      res.stat.size = r.u64();
      res.stat.atime_ns = r.i64();
      res.stat.mtime_ns = r.i64();
      res.stat.inode = r.u64();
      break;
    case kFsRead:
      res.data = r.bytes();
      break;
    case kFsReaddir: {
      std::uint32_t n = r.u32();
      res.names.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) res.names.push_back(r.str());
      break;
    }
    default:
      break;
  }
  return res;
}

util::Buffer FsService::execute(const smr::Command& cmd) {
  util::Writer out;
  auto plain = unpack_params(cmd.params);
  if (!plain) {
    out.i64(-EIO);
    return util::lz_compress(out.view());
  }
  util::Reader r(*plain);
  switch (cmd.cmd) {
    case kFsCreate:
    case kFsMknod: {
      std::string path = r.str();
      out.i64(fs_.create(path, r.u32()));
      break;
    }
    case kFsMkdir: {
      std::string path = r.str();
      out.i64(fs_.mkdir(path, r.u32()));
      break;
    }
    case kFsUnlink:
      out.i64(fs_.unlink(r.str()));
      break;
    case kFsRmdir:
      out.i64(fs_.rmdir(r.str()));
      break;
    case kFsOpen: {
      std::uint64_t fh = 0;
      out.i64(fs_.open(r.str(), fh));
      out.u64(fh);
      break;
    }
    case kFsOpendir: {
      std::uint64_t fh = 0;
      out.i64(fs_.opendir(r.str(), fh));
      out.u64(fh);
      break;
    }
    case kFsRelease: {
      r.str();  // empty path placeholder
      out.i64(fs_.release(r.u64()));
      break;
    }
    case kFsReleasedir: {
      r.str();
      out.i64(fs_.releasedir(r.u64()));
      break;
    }
    case kFsUtimens: {
      std::string path = r.str();
      std::int64_t at = r.i64();
      std::int64_t mt = r.i64();
      out.i64(fs_.utimens(path, at, mt));
      break;
    }
    case kFsAccess: {
      std::string path = r.str();
      out.i64(fs_.access(path, r.u32()));
      break;
    }
    case kFsLstat: {
      FsStat st;
      int err = fs_.lstat(r.str(), st);
      out.i64(err);
      out.boolean(st.is_dir);
      out.u32(st.mode);
      out.u64(st.size);
      out.i64(st.atime_ns);
      out.i64(st.mtime_ns);
      out.u64(st.inode);
      break;
    }
    case kFsRead: {
      std::string path = r.str();
      std::uint64_t offset = r.u64();
      std::uint32_t size = r.u32();
      util::Buffer data;
      out.i64(fs_.read(path, offset, size, data));
      out.bytes(data);
      break;
    }
    case kFsWrite: {
      std::string path = r.str();
      std::uint64_t offset = r.u64();
      auto data = r.bytes_view();
      out.i64(fs_.write(path, offset, data));
      break;
    }
    case kFsReaddir: {
      std::vector<std::string> names;
      out.i64(fs_.readdir(r.str(), names));
      out.u32(static_cast<std::uint32_t>(names.size()));
      for (const auto& n : names) out.str(n);
      break;
    }
    default:
      out.i64(-ENOSYS);
  }
  return util::lz_compress(out.view());
}

smr::CDep fs_cdep() {
  static constexpr smr::CommandId kStructural[] = {
      kFsCreate, kFsMknod,   kFsMkdir,   kFsUnlink,  kFsRmdir,
      kFsOpen,   kFsUtimens, kFsRelease, kFsOpendir, kFsReleasedir};
  static constexpr smr::CommandId kPerPath[] = {kFsAccess, kFsLstat, kFsRead,
                                                kFsWrite, kFsReaddir};
  smr::CDep dep;
  for (auto s : kStructural) {
    for (smr::CommandId c = kFsCreate; c <= kFsMaxCommand; ++c) {
      dep.always(s, c);
    }
  }
  for (auto a : kPerPath) {
    for (auto b : kPerPath) dep.same_key(a, b);
  }
  return dep;
}

smr::KeyFn fs_key_fn() {
  return [](const smr::Command& cmd) -> std::optional<std::uint64_t> {
    switch (cmd.cmd) {
      case kFsAccess:
      case kFsLstat:
      case kFsRead:
      case kFsWrite:
      case kFsReaddir: {
        auto plain = unpack_params(cmd.params);
        if (!plain) return std::nullopt;
        util::Reader r(*plain);
        return path_key(normalize_path(r.str()));
      }
      default:
        return std::nullopt;  // structural commands are global anyway
    }
  };
}

std::shared_ptr<const smr::CGFunction> fs_cg(std::size_t k) {
  return smr::from_cdep(fs_cdep(), k, fs_key_fn(), kFsMaxCommand);
}

}  // namespace psmr::netfs
