// In-memory file system — the state machine behind NetFS (paper Section V-B).
//
// Implements the FUSE-call subset the paper lists: create, mknod, mkdir,
// unlink, rmdir, open, utimens, release, opendir, releasedir (structure /
// descriptor-table commands) and access, lstat, read, write, readdir
// (per-path commands).  No soft or hard links, exactly like the paper.
//
// Every open file descriptor seen by a client maps to a local descriptor in
// a table shared by all threads — the reason the paper serializes the
// descriptor commands against everything.  The table is a kvstore
// B+-tree (fh -> inode, both 64-bit): descriptor commands are serialized
// by the C-Dep exactly like the KV store's structural commands, and the
// tree's ordered leaf-chain range_scan gives the state digest a
// deterministic traversal for free.
//
// Concurrency contract (mirrors the paper's C-Dep): the structure commands
// are only ever executed serially (all worker threads barriered); the
// per-path commands may run concurrently for *different* paths, and only
// read inode-table/directory structure while mutating a single file's
// content — safe without locks under that regime.
#pragma once

#include <cerrno>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kvstore/bptree.h"
#include "netfs/path.h"
#include "util/bytes.h"

namespace psmr::netfs {

/// Subset of struct stat that NetFS reports.
struct FsStat {
  bool is_dir = false;
  std::uint32_t mode = 0;
  std::uint64_t size = 0;
  std::int64_t atime_ns = 0;
  std::int64_t mtime_ns = 0;
  std::uint64_t inode = 0;
};

class MemFs {
 public:
  MemFs();

  MemFs(const MemFs&) = delete;
  MemFs& operator=(const MemFs&) = delete;

  // All operations return 0 on success or a negative errno.

  /// Creates a regular file (create == mknod for regular files here).
  int create(const std::string& path, std::uint32_t mode);
  int mknod(const std::string& path, std::uint32_t mode) {
    return create(path, mode);
  }
  int mkdir(const std::string& path, std::uint32_t mode);
  int unlink(const std::string& path);
  int rmdir(const std::string& path);
  int open(const std::string& path, std::uint64_t& fh);
  int release(std::uint64_t fh);
  int opendir(const std::string& path, std::uint64_t& fh);
  int releasedir(std::uint64_t fh);
  int utimens(const std::string& path, std::int64_t atime_ns,
              std::int64_t mtime_ns);

  int access(const std::string& path, std::uint32_t mask) const;
  int lstat(const std::string& path, FsStat& out) const;
  /// Reads up to `size` bytes at `offset`; short reads at EOF.
  int read(const std::string& path, std::uint64_t offset, std::uint32_t size,
           util::Buffer& out) const;
  /// Writes at `offset`, extending (zero-filling) the file as needed.
  int write(const std::string& path, std::uint64_t offset,
            std::span<const std::uint8_t> data);
  int readdir(const std::string& path, std::vector<std::string>& names) const;

  /// Number of live inodes (including the root).
  [[nodiscard]] std::size_t inode_count() const { return inodes_.size(); }
  /// Number of open descriptors (files + directories).
  [[nodiscard]] std::size_t open_count() const { return fd_table_.size(); }

  /// Visits the open descriptors (fh -> inode) in ascending fh order via
  /// the descriptor tree's leaf chain.
  template <typename Fn>
  void for_each_fd(Fn&& fn) const {
    fd_table_.range_scan(0, ~static_cast<std::uint64_t>(0),
                         std::forward<Fn>(fn));
  }

  /// Deterministic digest of the full tree (paths, metadata, contents, and
  /// the descriptor table) for replica-convergence checks.
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpointing: serializes the whole file system (inodes with their
  /// directory entries and file contents, the descriptor table, and the id
  /// allocators) in ascending inode-id order, so equivalent file systems
  /// serialize identically.  Quiesced contract (see Service::snapshot_to).
  void snapshot_to(util::Writer& w) const;
  /// Replaces the whole file system with a snapshot_to() image.  Returns
  /// false on malformed input (state is then unspecified).
  bool restore_from(util::Reader& r);

 private:
  using InodeId = std::uint64_t;

  struct Inode {
    bool is_dir = false;
    std::uint32_t mode = 0;
    std::int64_t atime_ns = 0;
    std::int64_t mtime_ns = 0;
    std::map<std::string, InodeId> entries;  // directories
    util::Buffer data;                       // regular files
  };

  [[nodiscard]] const Inode* lookup(std::string_view normalized) const;
  [[nodiscard]] Inode* lookup(std::string_view normalized);
  [[nodiscard]] std::optional<InodeId> lookup_id(
      std::string_view normalized) const;
  int add_entry(const std::string& path, bool is_dir, std::uint32_t mode);

  std::unordered_map<InodeId, Inode> inodes_;
  kvstore::BPlusTree fd_table_;  // fh -> inode id
  InodeId next_inode_ = 1;
  std::uint64_t next_fh_ = 1;
  static constexpr InodeId kRoot = 0;
};

}  // namespace psmr::netfs
