// NetFS service binding: command ids, wire schemas, compression pipeline,
// C-Dep and C-G (paper Sections V-B and VI-C).
//
// Wire format: every request's parameter block and every response payload is
// compressed with the LZ codec ("a request is compressed by the client and
// uncompressed by the worker thread that executes the request, which after
// executing the command compresses the response"; the paper uses lz4 and
// explains Figure 8's read-vs-write latency gap by compression being slower
// than decompression).
//
// C-Dep (verbatim from Section V-B): create, mknod, mkdir, unlink, rmdir,
// open, utimens, release, opendir, releasedir depend on ALL calls; access,
// lstat, read, write, readdir depend on all calls above and on each other
// when they use the same file path.
#pragma once

#include <memory>

#include "netfs/fs.h"
#include "smr/cdep.h"
#include "smr/cg.h"
#include "smr/service.h"

namespace psmr::netfs {

enum FsCommand : smr::CommandId {
  // Structural / descriptor-table commands (serialized against everything).
  kFsCreate = 1,
  kFsMknod = 2,
  kFsMkdir = 3,
  kFsUnlink = 4,
  kFsRmdir = 5,
  kFsOpen = 6,
  kFsUtimens = 7,
  kFsRelease = 8,
  kFsOpendir = 9,
  kFsReleasedir = 10,
  // Per-path commands (parallel across different paths).
  kFsAccess = 11,
  kFsLstat = 12,
  kFsRead = 13,
  kFsWrite = 14,
  kFsReaddir = 15,
};

inline constexpr smr::CommandId kFsMaxCommand = kFsReaddir;

/// A decoded NetFS response: negative errno or 0, plus op-specific payload.
struct FsResult {
  int err = 0;
  std::uint64_t fh = 0;        // open/opendir
  FsStat stat;                 // lstat
  util::Buffer data;           // read
  std::vector<std::string> names;  // readdir
};

// Request encoders (plaintext; compress with pack_params before sending).
util::Buffer encode_path_mode(const std::string& path, std::uint32_t mode);
util::Buffer encode_path(const std::string& path);
util::Buffer encode_fh(std::uint64_t fh);
util::Buffer encode_utimens(const std::string& path, std::int64_t atime_ns,
                            std::int64_t mtime_ns);
util::Buffer encode_access(const std::string& path, std::uint32_t mask);
util::Buffer encode_read(const std::string& path, std::uint64_t offset,
                         std::uint32_t size);
util::Buffer encode_write(const std::string& path, std::uint64_t offset,
                          std::span<const std::uint8_t> data);

/// Compresses a plaintext parameter block (client side).
util::Buffer pack_params(const util::Buffer& plain);
/// Decompresses a parameter block (worker side); nullopt if corrupt.
std::optional<util::Buffer> unpack_params(std::span<const std::uint8_t> packed);

/// Decodes a (compressed) response payload for the given command.
FsResult decode_result(smr::CommandId cmd, const util::Buffer& payload);

/// The replicated NetFS state machine.  Handles decompression, dispatch
/// into MemFs, and response compression.  A single-command service: mount
/// it on the batch-first replica stack with smr::make_batched(), which
/// executes batches one command at a time in delivery order.
class FsService : public smr::SequentialService {
 public:
  FsService() = default;

  util::Buffer execute(const smr::Command& cmd) override;
  [[nodiscard]] std::uint64_t state_digest() const override {
    return fs_.digest();
  }
  [[nodiscard]] bool snapshot_to(util::Writer& w) const override {
    fs_.snapshot_to(w);
    return true;
  }
  [[nodiscard]] bool restore_from(util::Reader& r) override {
    return fs_.restore_from(r);
  }
  [[nodiscard]] const MemFs& fs() const { return fs_; }

 private:
  MemFs fs_;
};

/// The paper's NetFS C-Dep.
smr::CDep fs_cdep();

/// Conflict key: normalized-path hash for per-path commands, nullopt for
/// structural ones.  Decompresses the parameter block to reach the path —
/// the cost a central scheduler pays in sP-SMR.
smr::KeyFn fs_key_fn();

/// Path-partitioned C-G: per-path commands → group(path); structural
/// commands → all groups (the paper's "nine groups" layout for k = 8).
std::shared_ptr<const smr::CGFunction> fs_cg(std::size_t k);

}  // namespace psmr::netfs
