// Path utilities and the path-range partition for NetFS.
//
// The paper's NetFS prototype "created eight path ranges, each one assigned
// to a separate thread at the server ... Nine multicast groups are used,
// eight of them for per-path requests, and one for serialized requests"
// (Section VI-C).  Our partition assigns a path to one of k groups; the
// shared g_all group plays the role of the ninth, serialized group.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace psmr::netfs {

/// Normalizes a path: leading '/', collapses duplicate slashes, strips a
/// trailing slash (except for the root itself).  No '.'/'..' resolution —
/// NetFS rejects those components instead (no links, paper Section V-B).
inline std::string normalize_path(std::string_view path) {
  std::string out = "/";
  for (std::size_t i = 0; i < path.size();) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i > start) {
      if (out.back() != '/') out += '/';
      out.append(path.substr(start, i - start));
    }
  }
  return out;
}

/// Splits a normalized path into components ("/a/b" -> {"a", "b"}).
inline std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i > start) out.emplace_back(path.substr(start, i - start));
  }
  return out;
}

/// Parent directory of a normalized path ("/a/b" -> "/a", "/a" -> "/").
inline std::string parent_path(std::string_view path) {
  auto pos = path.find_last_of('/');
  if (pos == 0 || pos == std::string_view::npos) return "/";
  return std::string(path.substr(0, pos));
}

/// Final component ("/a/b" -> "b"); empty for the root.
inline std::string base_name(std::string_view path) {
  auto pos = path.find_last_of('/');
  if (pos == std::string_view::npos) return std::string(path);
  return std::string(path.substr(pos + 1));
}

/// Stable conflict key for a path (used by C-Dep same-key checks).
inline std::uint64_t path_key(std::string_view normalized) {
  return util::fnv1a(normalized);
}

/// Path → one of k worker groups.  Hash-based ranges: balanced regardless
/// of name distribution, deterministic across clients and replicas.
inline std::uint32_t path_group(std::string_view normalized, std::size_t k) {
  return static_cast<std::uint32_t>(util::mix64(path_key(normalized)) % k);
}

}  // namespace psmr::netfs
