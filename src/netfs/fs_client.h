// Typed NetFS client — the "file system proxy" of paper Section VI-C.
//
// In the paper, FUSE intercepts kernel calls and redirects them to a proxy
// shared by all clients on a node; here applications link the proxy
// directly (the replicated backend and the command set are identical; see
// DESIGN.md's substitution table).  Requests are LZ-compressed before
// multicast and responses decompressed on receipt, matching the paper's
// pipeline.
#pragma once

#include <memory>

#include "netfs/fs_service.h"
#include "smr/client.h"

namespace psmr::netfs {

class FsClient {
 public:
  explicit FsClient(std::unique_ptr<smr::ClientProxy> proxy)
      : proxy_(std::move(proxy)) {}

  int create(const std::string& path, std::uint32_t mode = 0644) {
    return call(kFsCreate, encode_path_mode(path, mode)).err;
  }
  int mknod(const std::string& path, std::uint32_t mode = 0644) {
    return call(kFsMknod, encode_path_mode(path, mode)).err;
  }
  int mkdir(const std::string& path, std::uint32_t mode = 0755) {
    return call(kFsMkdir, encode_path_mode(path, mode)).err;
  }
  int unlink(const std::string& path) {
    return call(kFsUnlink, encode_path(path)).err;
  }
  int rmdir(const std::string& path) {
    return call(kFsRmdir, encode_path(path)).err;
  }
  /// Returns the descriptor through `fh`.
  int open(const std::string& path, std::uint64_t& fh) {
    auto res = call(kFsOpen, encode_path(path));
    fh = res.fh;
    return res.err;
  }
  int release(std::uint64_t fh) { return call(kFsRelease, encode_fh(fh)).err; }
  int opendir(const std::string& path, std::uint64_t& fh) {
    auto res = call(kFsOpendir, encode_path(path));
    fh = res.fh;
    return res.err;
  }
  int releasedir(std::uint64_t fh) {
    return call(kFsReleasedir, encode_fh(fh)).err;
  }
  int utimens(const std::string& path, std::int64_t atime_ns,
              std::int64_t mtime_ns) {
    return call(kFsUtimens, encode_utimens(path, atime_ns, mtime_ns)).err;
  }
  int access(const std::string& path, std::uint32_t mask) {
    return call(kFsAccess, encode_access(path, mask)).err;
  }
  int lstat(const std::string& path, FsStat& out) {
    auto res = call(kFsLstat, encode_path(path));
    out = res.stat;
    return res.err;
  }
  int read(const std::string& path, std::uint64_t offset, std::uint32_t size,
           util::Buffer& out) {
    auto res = call(kFsRead, encode_read(path, offset, size));
    out = std::move(res.data);
    return res.err;
  }
  int write(const std::string& path, std::uint64_t offset,
            std::span<const std::uint8_t> data) {
    return call(kFsWrite, encode_write(path, offset, data)).err;
  }
  int readdir(const std::string& path, std::vector<std::string>& names) {
    auto res = call(kFsReaddir, encode_path(path));
    names = std::move(res.names);
    return res.err;
  }

  [[nodiscard]] smr::ClientProxy& proxy() { return *proxy_; }

 private:
  FsResult call(smr::CommandId cmd, util::Buffer plain) {
    auto payload = proxy_->call(cmd, pack_params(plain));
    if (!payload) {
      FsResult res;
      res.err = -ETIMEDOUT;
      return res;
    }
    return decode_result(cmd, *payload);
  }

  std::unique_ptr<smr::ClientProxy> proxy_;
};

}  // namespace psmr::netfs
