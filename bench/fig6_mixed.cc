// Figure 6 — mixed workloads: P-SMR (8 workers) vs SMR as the percentage
// of dependent commands (inserts+deletes) grows, 0.001%..10% (log x-axis).
//
// Paper's reported shape: SMR is flat (~842 Kcps) across the whole mix
// (tree traversal dominates either way).  P-SMR starts >3x above and decays
// as synchronization overhead grows; the *breakeven point* — where P-SMR
// stops beating SMR — sits at roughly 10% dependent commands.  P-SMR's
// latency *decreases* with more dependent commands, tracking its falling
// throughput (same client window over fewer commands per second... the
// paper notes the decrease corresponds to the throughput reduction).
//
// Ablation: --cg coarse switches the C-G derivation used by the real mode
// (reads to a random group, updates everywhere) per Section IV-C's first
// example.
#include "bench_common.h"

using namespace psmr;
using namespace psmr::bench;

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Figure 6: mixed workloads, P-SMR vs SMR [%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");

  const double percents[] = {0.001, 0.01, 0.1, 1.0, 5.0, 10.0};

  std::printf("%-10s %12s %12s %14s %14s\n", "dep(%)", "P-SMR Kcps",
              "SMR Kcps", "P-SMR lat(us)", "SMR lat(us)");
  double breakeven = -1;
  double prev_pct = 0, prev_diff = 0;
  for (double pct : percents) {
    sim::SimResult psmr_r, smr_r;
    if (opt.real) {
      int dep_half = static_cast<int>(pct) / 2;
      workload::KvMix mix{100 - 2 * dep_half, 0, dep_half, dep_half};
      psmr_r = run_real_kv(opt, sim::Tech::kPsmr, 8, mix);
      smr_r = run_real_kv(opt, sim::Tech::kSmr, 1, mix);
    } else {
      auto pc = base_sim(opt, sim::Tech::kPsmr, 8, 150);
      pc.frac_dependent = pct / 100.0;
      psmr_r = sim::simulate(pc);
      auto sc = base_sim(opt, sim::Tech::kSmr, 1, 60);
      sc.frac_dependent = pct / 100.0;
      smr_r = sim::simulate(sc);
    }
    std::printf("%-10.3f %12.0f %12.0f %14.0f %14.0f\n", pct, psmr_r.kcps,
                smr_r.kcps, psmr_r.avg_latency_us, smr_r.avg_latency_us);
    double diff = psmr_r.kcps - smr_r.kcps;
    if (breakeven < 0 && diff < 0 && prev_diff > 0) {
      // Log-linear interpolation of the crossover.
      double f = prev_diff / (prev_diff - diff);
      breakeven = prev_pct * std::pow(pct / prev_pct, f);
    }
    prev_pct = pct;
    prev_diff = diff;
  }
  if (breakeven > 0) {
    std::printf("breakeven: P-SMR == SMR at ~%.1f%% dependent commands "
                "(paper: ~10%%)\n",
                breakeven);
  } else {
    std::printf("breakeven: not crossed in the sweep range\n");
  }
  return 0;
}
