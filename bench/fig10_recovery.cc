// Time-to-recovery after a replica crash — the failover figure the paper
// doesn't have.  Figures 3–8 all measure steady state; this bench measures
// what the checkpoint/truncation/catch-up machinery (smr/snapshot.h,
// replica_psmr.h) buys when a replica actually dies: the time from restart
// until the replica has reconverged with its peers and serves at full
// throughput again.
//
// Expected shape (pinned in sim::RecoveryCalibration): with periodic
// checkpoints the restarted replica installs a snapshot and replays only a
// *bounded* suffix (residual since the last checkpoint + the outage's
// backlog), so recovery time is a small multiple of the downtime; without
// checkpoints it replays the entire history, so recovery scales with uptime
// instead of downtime and is several times slower at the gated probe point.
//
// Default mode runs the deterministic recovery fluid model
// (sim::simulate_recovery) on a FIXED grid and virtual parameters — --quick
// changes nothing, so the CI gate over BENCH_recovery.json and
// sim_calibration_test always agree.  --real additionally performs a live
// crash/restart on the real runtime (checkpointing deployment, kill replica
// 1 mid-workload, restart from a peer snapshot, wait for digest
// convergence); real numbers are reported, not gated.
//
// --json FILE writes BENCH_recovery.json: per-downtime points for snapshot
// and full-replay recovery, the probe summary and the gate verdict.
#include "bench_common.h"

#include <chrono>
#include <thread>
#include <vector>

using namespace psmr;
using namespace psmr::bench;

namespace {

struct SweepPoint {
  double downtime_us = 0;
  sim::RecoveryPoint snap;
  sim::RecoveryPoint full;
};

void json_point(std::FILE* f, const char* key, const sim::RecoveryPoint& pt) {
  std::fprintf(f,
               "\"%s\": {\"install_us\": %.1f, \"replay_us\": %.1f, "
               "\"recovery_us\": %.1f, \"installed_cmds\": %.0f, "
               "\"replayed_cmds\": %.0f, \"recovered\": %s}",
               key, pt.install_us, pt.replay_us, pt.recovery_us,
               pt.installed_cmds, pt.replayed_cmds,
               pt.recovered ? "true" : "false");
}

/// Live crash/restart probe on the real runtime (reported, not gated).
void run_real_probe(const Options& opt) {
  auto dcfg = real_kv_config(smr::Mode::kPsmr, /*mpl=*/2, /*keys=*/50'000);
  dcfg.checkpoint.enabled = true;
  // Small enough that checkpoints fire even in a --quick run's short
  // phase 1, so the restart exercises snapshot install, not full replay.
  dcfg.checkpoint.interval_commands = 500;
  smr::Deployment d(std::move(dcfg));
  d.start();

  workload::KvWorkloadSpec spec;
  spec.clients = 2;
  spec.window = 20;
  spec.duration_s = opt.quick ? 0.3 : 1.0;
  spec.warmup_s = 0.1;
  spec.mix = workload::KvMix{50, 30, 10, 10};
  spec.keys = 50'000;

  // Phase 1: accumulate state and checkpoints, then crash replica 1.
  workload::run_kv_workload(d, spec);
  d.crash_replica(1);
  // Phase 2: the log grows while replica 1 is down.
  auto r2 = workload::run_kv_workload(d, spec);
  const std::uint64_t live_executed = d.executed(0);

  // Phase 3: restart and time the catch-up to digest convergence.
  auto t0 = std::chrono::steady_clock::now();
  bool restarted = d.restart_replica(1);
  bool converged = false;
  while (restarted) {
    if (d.executed(1) >= live_executed &&
        d.state_digest(1) == d.state_digest(0)) {
      converged = true;
      break;
    }
    auto waited = std::chrono::steady_clock::now() - t0;
    if (waited > std::chrono::seconds(30)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto recovery_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  std::printf(
      "\n--- real runtime probe ---\n"
      "workload %.1f Kcps, live replica at %llu cmds, checkpoints %llu\n"
      "restart: %s, converged: %s, recovery %.1f ms\n",
      r2.kcps, static_cast<unsigned long long>(live_executed),
      static_cast<unsigned long long>(d.checkpoints_taken(0)),
      restarted ? "ok" : "FAILED", converged ? "yes" : "NO",
      recovery_us / 1000.0);
  d.stop();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  const sim::RecoveryCalibration cal;

  std::printf("=== Recovery time vs downtime (replica crash/restart) ===\n");
  std::printf(
      "recovery model: capacity %.0f Kcps, offered %.0f Kcps, uptime %.1fs, "
      "checkpoint every %.0f cmds, install %.0f Kcps\n",
      cal.capacity_kcps, cal.offered_kcps, cal.uptime_us / 1e6,
      cal.checkpoint_interval_cmds, cal.install_kcps);

  sim::RecoveryConfig base;
  base.capacity_kcps = cal.capacity_kcps;
  base.offered_kcps = cal.offered_kcps;
  base.uptime_us = cal.uptime_us;
  base.checkpoint_interval_cmds = cal.checkpoint_interval_cmds;
  base.install_kcps = cal.install_kcps;

  // Fixed sweep grid.  The model costs nanoseconds per point, so --quick
  // never trims it — the probe and gate numbers must not depend on flags.
  const double downtimes_us[] = {100'000, 250'000, 500'000,
                                 1'000'000, 2'000'000};
  std::vector<SweepPoint> points;
  std::printf("%10s | %12s %12s %9s | %12s %9s\n", "downtime", "snap install",
              "snap replay", "total", "full replay", "ratio");
  for (double dt : downtimes_us) {
    SweepPoint p;
    p.downtime_us = dt;
    auto snap_cfg = base;
    snap_cfg.downtime_us = dt;
    snap_cfg.snapshot = true;
    p.snap = sim::simulate_recovery(snap_cfg);
    auto full_cfg = base;
    full_cfg.downtime_us = dt;
    full_cfg.snapshot = false;
    p.full = sim::simulate_recovery(full_cfg);
    std::printf("%8.0fms | %10.1fms %10.1fms %7.1fms | %10.1fms %8.2fx\n",
                dt / 1000, p.snap.install_us / 1000, p.snap.replay_us / 1000,
                p.snap.recovery_us / 1000, p.full.recovery_us / 1000,
                p.full.recovery_us / p.snap.recovery_us);
    points.push_back(p);
  }

  // Gated probe: the calibration's downtime point.
  auto snap_cfg = base;
  snap_cfg.downtime_us = cal.probe_downtime_us;
  snap_cfg.snapshot = true;
  auto probe_snap = sim::simulate_recovery(snap_cfg);
  auto full_cfg = snap_cfg;
  full_cfg.snapshot = false;
  auto probe_full = sim::simulate_recovery(full_cfg);

  const double recovery_vs_downtime =
      probe_snap.recovery_us / cal.probe_downtime_us;
  const double full_replay_ratio =
      probe_full.recovery_us / probe_snap.recovery_us;
  bool all_recovered = true;
  for (const auto& p : points) all_recovered &= p.snap.recovered;
  const bool pass = recovery_vs_downtime <= cal.max_recovery_vs_downtime &&
                    full_replay_ratio >= cal.min_full_replay_ratio &&
                    all_recovered;
  std::printf(
      "probe at %.0fms downtime: snapshot %.1fms (%.2fx downtime), "
      "full replay %.1fms (%.2fx snapshot)\n",
      cal.probe_downtime_us / 1000, probe_snap.recovery_us / 1000,
      recovery_vs_downtime, probe_full.recovery_us / 1000, full_replay_ratio);
  std::printf(
      "gate: snapshot <= %.2fx downtime, full replay >= %.2fx snapshot, "
      "all snapshot points recover: %s\n",
      cal.max_recovery_vs_downtime, cal.min_full_replay_ratio,
      pass ? "PASS" : "FAIL");

  if (opt.real) run_real_probe(opt);

  if (!opt.json.empty()) {
    std::FILE* f = std::fopen(opt.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"recovery\": {\n"
                 "    \"mode\": \"sim\",\n"
                 "    \"capacity_kcps\": %.1f,\n"
                 "    \"offered_kcps\": %.1f,\n"
                 "    \"uptime_us\": %.0f,\n"
                 "    \"checkpoint_interval_cmds\": %.0f,\n"
                 "    \"install_kcps\": %.1f,\n"
                 "    \"points\": [",
                 cal.capacity_kcps, cal.offered_kcps, cal.uptime_us,
                 cal.checkpoint_interval_cmds, cal.install_kcps);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f, "%s\n      {\"downtime_us\": %.0f, ", i ? "," : "",
                   points[i].downtime_us);
      json_point(f, "snapshot", points[i].snap);
      std::fprintf(f, ", ");
      json_point(f, "full_replay", points[i].full);
      std::fprintf(f, "}");
    }
    std::fprintf(f,
                 "\n    ],\n"
                 "    \"probe\": {\"downtime_us\": %.0f,\n      ",
                 cal.probe_downtime_us);
    json_point(f, "snapshot", probe_snap);
    std::fprintf(f, ",\n      ");
    json_point(f, "full_replay", probe_full);
    std::fprintf(f,
                 "},\n"
                 "    \"gates\": {\n"
                 "      \"max_recovery_vs_downtime\": %.2f,\n"
                 "      \"recovery_vs_downtime\": %.3f,\n"
                 "      \"min_full_replay_ratio\": %.2f,\n"
                 "      \"full_replay_ratio\": %.3f,\n"
                 "      \"all_recovered\": %s,\n"
                 "      \"pass\": %s\n"
                 "    }\n  }\n}\n",
                 cal.max_recovery_vs_downtime, recovery_vs_downtime,
                 cal.min_full_replay_ratio, full_replay_ratio,
                 all_recovered ? "true" : "false", pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", opt.json.c_str());
  }
  return pass ? 0 : 1;
}
