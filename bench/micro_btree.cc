// Micro-benchmarks for the cache-conscious B+-tree execution engine
// (kvstore/btree_core.h) — the replica hot path that sets the calibrated
// per-command execution cost in sim/calibration.h (paper Section VII-F:
// most of the ~1.2us/command is the B+-tree traversal).
//
// `BaselineTree` below replicates the seed (pre-PR 3) layout exactly —
// fanout 64, interleaved-array nodes, std::upper_bound descent, no
// prefetch, half splits — so the layout speedup stays measurable in CI
// forever, not just against a historical number.
//
// Besides the usual Google Benchmark output, `--json <path>` writes a
// machine-readable summary (ns/op per benchmark plus the derived layout
// speedups at 10M keys), so CI and future PRs can track the trajectory:
//   bench_micro_btree --json BENCH_btree.json
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kvstore/bptree.h"
#include "kvstore/concurrent_bptree.h"
#include "util/rng.h"

namespace {

using psmr::kvstore::BPlusTree;
using psmr::kvstore::ConcurrentBPlusTree;
using psmr::util::SplitMix64;

// ---------------------------------------------------------------------------
// Baseline: the seed tree layout (PR 1), kept verbatim for comparison.
// ---------------------------------------------------------------------------

class BaselineTree {
 public:
  static constexpr int kMax = 64;

  BaselineTree() : root_(new Leaf()) {}
  ~BaselineTree() { destroy(root_); }
  BaselineTree(const BaselineTree&) = delete;
  BaselineTree& operator=(const BaselineTree&) = delete;

  void insert(std::uint64_t k, std::uint64_t v) {
    auto split = insert_rec(root_, k, v);
    if (split) {
      auto* nr = new Inner();
      nr->count = 1;
      nr->keys[0] = split->first;
      nr->child[0] = root_;
      nr->child[1] = split->second;
      root_ = nr;
    }
  }

  std::optional<std::uint64_t> find(std::uint64_t k) const {
    Node* node = root_;
    while (!node->leaf) {
      auto* in = static_cast<Inner*>(node);
      node = in->child[std::upper_bound(in->keys, in->keys + in->count, k) -
                       in->keys];
    }
    auto* lf = static_cast<Leaf*>(node);
    auto* it = std::lower_bound(lf->keys, lf->keys + lf->count, k);
    if (it != lf->keys + lf->count && *it == k) {
      return lf->vals[it - lf->keys];
    }
    return std::nullopt;
  }

 private:
  struct Node {
    bool leaf;
    int count = 0;
    explicit Node(bool l) : leaf(l) {}
  };
  struct Leaf : Node {
    std::uint64_t keys[kMax + 1];
    std::uint64_t vals[kMax + 1];
    Leaf() : Node(true) {}
  };
  struct Inner : Node {
    std::uint64_t keys[kMax + 1];
    Node* child[kMax + 2] = {};
    Inner() : Node(false) {}
  };

  static void destroy(Node* n) {
    if (!n->leaf) {
      auto* in = static_cast<Inner*>(n);
      for (int i = 0; i <= in->count; ++i) destroy(in->child[i]);
      delete in;
    } else {
      delete static_cast<Leaf*>(n);
    }
  }

  std::optional<std::pair<std::uint64_t, Node*>> insert_rec(Node* node,
                                                            std::uint64_t k,
                                                            std::uint64_t v) {
    if (node->leaf) {
      auto* lf = static_cast<Leaf*>(node);
      int pos = static_cast<int>(
          std::lower_bound(lf->keys, lf->keys + lf->count, k) - lf->keys);
      for (int i = lf->count; i > pos; --i) {
        lf->keys[i] = lf->keys[i - 1];
        lf->vals[i] = lf->vals[i - 1];
      }
      lf->keys[pos] = k;
      lf->vals[pos] = v;
      ++lf->count;
      if (lf->count <= kMax) return std::nullopt;
      auto* r = new Leaf();
      int keep = lf->count / 2;
      r->count = lf->count - keep;
      std::copy(lf->keys + keep, lf->keys + lf->count, r->keys);
      std::copy(lf->vals + keep, lf->vals + lf->count, r->vals);
      lf->count = keep;
      return std::make_pair(r->keys[0], static_cast<Node*>(r));
    }
    auto* in = static_cast<Inner*>(node);
    int idx = static_cast<int>(
        std::upper_bound(in->keys, in->keys + in->count, k) - in->keys);
    auto split = insert_rec(in->child[idx], k, v);
    if (!split) return std::nullopt;
    for (int i = in->count; i > idx; --i) {
      in->keys[i] = in->keys[i - 1];
      in->child[i + 1] = in->child[i];
    }
    in->keys[idx] = split->first;
    in->child[idx + 1] = split->second;
    ++in->count;
    if (in->count <= kMax) return std::nullopt;
    auto* r = new Inner();
    int mid = in->count / 2;
    std::uint64_t up = in->keys[mid];
    r->count = in->count - mid - 1;
    std::copy(in->keys + mid + 1, in->keys + in->count, r->keys);
    std::copy(in->child + mid + 1, in->child + in->count + 1, r->child);
    in->count = mid;
    return std::make_pair(up, static_cast<Node*>(r));
  }

  Node* root_;
};

// ---------------------------------------------------------------------------
// Shared preloaded trees (building a 10M-key tree takes seconds; Google
// Benchmark re-invokes benchmarks while calibrating, so cache per size).
// ---------------------------------------------------------------------------

const BPlusTree& tree_of(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<BPlusTree>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<BPlusTree>();
    for (std::uint64_t k = 0; k < n; ++k) slot->insert(k, k);
  }
  return *slot;
}

const BaselineTree& baseline_of(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<BaselineTree>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<BaselineTree>();
    for (std::uint64_t k = 0; k < n; ++k) slot->insert(k, k);
  }
  return *slot;
}

// ---------------------------------------------------------------------------
// JSON summary collection (--json <path>), micro_multicast's pattern.
// ---------------------------------------------------------------------------

struct BenchRecord {
  std::string name;
  std::uint64_t keys = 0;
  std::uint64_t ops = 0;
  double ns_per_op = 0.0;
};

std::vector<BenchRecord>& records() {
  static std::vector<BenchRecord> r;
  return r;
}

// Replaces any earlier same-name entry: only the final calibrated run of a
// benchmark should land in the JSON.
void record(std::string name, std::uint64_t keys, std::uint64_t ops,
            std::chrono::steady_clock::duration elapsed) {
  BenchRecord r;
  r.name = std::move(name);
  r.keys = keys;
  r.ops = ops;
  r.ns_per_op =
      ops == 0 ? 0.0
               : static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         elapsed)
                         .count()) /
                     static_cast<double>(ops);
  for (auto& existing : records()) {
    if (existing.name == r.name) {
      existing = std::move(r);
      return;
    }
  }
  records().push_back(std::move(r));
}

double ns_of(const char* name) {
  for (const auto& r : records()) {
    if (r.name == name) return r.ns_per_op;
  }
  return 0.0;
}

void write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "micro_btree: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_btree\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < records().size(); ++i) {
    const auto& r = records()[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"keys\": %llu, \"ops\": %llu, "
                 "\"ns_per_op\": %.1f}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.keys),
                 static_cast<unsigned long long>(r.ops), r.ns_per_op,
                 i + 1 < records().size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"derived\": {\n");
  // The acceptance headline: random find at 10M keys vs the seed layout,
  // for the single-lookup path and for the pipelined batch path the KV
  // service's multi-read uses.
  double base = ns_of("BaselineFind/10000000");
  double single = ns_of("Find/10000000");
  double batched = ns_of("FindBatch/10000000");
  std::fprintf(f, "    \"baseline_find_10m_ns\": %.1f,\n", base);
  std::fprintf(f, "    \"find_10m_ns\": %.1f,\n", single);
  std::fprintf(f, "    \"find_batch_10m_ns\": %.1f,\n", batched);
  std::fprintf(f, "    \"find_10m_speedup\": %.2f,\n",
               single > 0 ? base / single : 0.0);
  std::fprintf(f, "    \"find_batch_10m_speedup\": %.2f\n",
               batched > 0 ? base / batched : 0.0);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "micro_btree: wrote %s (%zu results)\n", path.c_str(),
               records().size());
}

// ---------------------------------------------------------------------------
// Benchmarks.  Sizes per the ISSUE: 10K (cache-resident), 1M (LLC-edge),
// 10M (the paper's preloaded working set, memory-resident).
// ---------------------------------------------------------------------------

constexpr std::int64_t kSizes[] = {10'000, 1'000'000, 10'000'000};

void BM_Find(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const BPlusTree& tree = tree_of(n);
  SplitMix64 rng(1);
  std::uint64_t ops = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(rng.next_below(n)));
    ++ops;
  }
  record("Find/" + std::to_string(n), n, ops,
         std::chrono::steady_clock::now() - started);
}
BENCHMARK(BM_Find)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2]);

void BM_BaselineFind(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const BaselineTree& tree = baseline_of(n);
  SplitMix64 rng(1);
  std::uint64_t ops = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(rng.next_below(n)));
    ++ops;
  }
  record("BaselineFind/" + std::to_string(n), n, ops,
         std::chrono::steady_clock::now() - started);
}
BENCHMARK(BM_BaselineFind)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2]);

// The pipelined multi-get path (kv_service's kKvMultiRead): one iteration
// resolves kBatchWidth independent keys; ns/op is per key.
void BM_FindBatch(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const BPlusTree& tree = tree_of(n);
  SplitMix64 rng(2);
  constexpr std::size_t W = BPlusTree::kBatchWidth;
  std::uint64_t keys[W];
  std::optional<std::uint64_t> out[W];
  std::uint64_t ops = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (auto& k : keys) k = rng.next_below(n);
    tree.find_batch(keys, W, out);
    benchmark::DoNotOptimize(out);
    ops += W;
  }
  record("FindBatch/" + std::to_string(n), n, ops,
         std::chrono::steady_clock::now() - started);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_FindBatch)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2]);

void BM_Update(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  // Updates mutate values in place; shared tree stays valid (value == 42
  // slots are never read back by the other benchmarks' DoNotOptimize).
  auto& tree = const_cast<BPlusTree&>(tree_of(n));
  SplitMix64 rng(3);
  std::uint64_t ops = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.update(rng.next_below(n), 42));
    ++ops;
  }
  record("Update/" + std::to_string(n), n, ops,
         std::chrono::steady_clock::now() - started);
}
BENCHMARK(BM_Update)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2]);

// Leaf-chain range scan, 100-key windows; ns/op is per visited entry.
void BM_RangeScan(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const BPlusTree& tree = tree_of(n);
  SplitMix64 rng(4);
  const std::uint64_t window = std::min<std::uint64_t>(100, n);
  std::uint64_t visited = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::uint64_t lo = rng.next_below(n - window + 1);
    std::uint64_t sum = 0;
    visited += tree.range_scan(lo, lo + window - 1,
                               [&sum](std::uint64_t, std::uint64_t v) {
                                 sum += v;
                               });
    benchmark::DoNotOptimize(sum);
  }
  record("RangeScan/" + std::to_string(n), n, visited,
         std::chrono::steady_clock::now() - started);
  state.SetItemsProcessed(static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_RangeScan)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2]);

void BM_InsertErase(benchmark::State& state) {
  BPlusTree tree;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k * 2, k);
  SplitMix64 rng(5);
  std::uint64_t ops = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::uint64_t k = rng.next_below(n) * 2 + 1;  // odd keys churn
    tree.insert(k, k);
    tree.erase(k);
    ops += 2;
  }
  record("InsertErase/" + std::to_string(n), n, ops,
         std::chrono::steady_clock::now() - started);
}
BENCHMARK(BM_InsertErase)->Arg(1'000'000);

void BM_ConcurrentTreeRead(benchmark::State& state) {
  static ConcurrentBPlusTree tree;
  if (state.thread_index() == 0 && tree.size() == 0) {
    for (std::uint64_t k = 0; k < 1'000'000; ++k) tree.insert(k, k);
  }
  SplitMix64 rng(6 + static_cast<std::uint64_t>(state.thread_index()));
  std::uint64_t ops = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(rng.next_below(1'000'000)));
    ++ops;
  }
  if (state.thread_index() == 0 && state.threads() == 1) {
    // Multi-threaded variants interleave wall clocks; only the 1-thread
    // run lands in the JSON (Google Benchmark's report covers the rest).
    record("ConcurrentFind/threads1", 1'000'000, ops,
           std::chrono::steady_clock::now() - started);
  }
}
// The latch-crabbing read path: the per-node locking cost is what the
// paper's BDB comparison attributes its slowdown to.
BENCHMARK(BM_ConcurrentTreeRead)->Threads(1)->Threads(4);

}  // namespace

// Custom main: strip `--json <path>` (ours) before Google Benchmark sees
// the command line, run the benchmarks, then write the summary.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_json(json_path);
  return 0;
}
