// Micro-benchmarks for the B+-tree — validates the ~1.2us/command
// execution cost the simulator's calibration assumes (sim/calibration.h;
// the paper's SMR runs ~842 Kcps single-threaded on a 2008-era Xeon).
#include <benchmark/benchmark.h>

#include "kvstore/bptree.h"
#include "kvstore/concurrent_bptree.h"
#include "util/rng.h"

namespace {

using psmr::kvstore::BPlusTree;
using psmr::kvstore::ConcurrentBPlusTree;
using psmr::util::SplitMix64;

void BM_BPlusTreeRead(benchmark::State& state) {
  BPlusTree tree;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k, k);
  SplitMix64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(rng.next_below(n)));
  }
}
BENCHMARK(BM_BPlusTreeRead)->Arg(10'000)->Arg(1'000'000)->Arg(10'000'000);

void BM_BPlusTreeUpdate(benchmark::State& state) {
  BPlusTree tree;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k, k);
  SplitMix64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.update(rng.next_below(n), 42));
  }
}
BENCHMARK(BM_BPlusTreeUpdate)->Arg(1'000'000);

void BM_BPlusTreeInsertDelete(benchmark::State& state) {
  BPlusTree tree;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) tree.insert(k * 2, k);
  SplitMix64 rng(3);
  for (auto _ : state) {
    std::uint64_t k = rng.next_below(n) * 2 + 1;  // odd keys churn
    tree.insert(k, k);
    tree.erase(k);
  }
}
BENCHMARK(BM_BPlusTreeInsertDelete)->Arg(1'000'000);

void BM_ConcurrentTreeRead(benchmark::State& state) {
  static ConcurrentBPlusTree tree;
  if (state.thread_index() == 0 && tree.size() == 0) {
    for (std::uint64_t k = 0; k < 1'000'000; ++k) tree.insert(k, k);
  }
  SplitMix64 rng(4 + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(rng.next_below(1'000'000)));
  }
}
// The latch-crabbing read path: the per-node locking cost is what the
// paper's BDB comparison attributes its slowdown to.
BENCHMARK(BM_ConcurrentTreeRead)->Threads(1)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
