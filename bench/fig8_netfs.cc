// Figure 8 — NetFS: 1KB read-only and write-only workloads under SMR,
// sP-SMR (8 workers + scheduler) and P-SMR (8 path-range groups + the
// serialized group).
//
// Paper's reported shape: SMR ~100 Kcps reads / ~110 Kcps writes; sP-SMR
// caps at ~116 Kcps for both (1.2x/1.1x — the scheduler saturates before
// using the remaining cores); P-SMR reaches ~309/327 Kcps (3.1x/3.0x).
// Reads take longer than writes because the worker compresses the 1 KB
// response (lz4 compression costs more than decompression), which shows up
// as higher read latency.
#include "netfs/fs_client.h"
#include "bench_common.h"

using namespace psmr;
using namespace psmr::bench;

namespace {

// Real-mode NetFS run: closed-loop clients doing 1 KB reads or writes over
// a preloaded set of files.
sim::SimResult run_real_fs(const Options& opt, sim::Tech tech, int workers,
                           bool reads) {
  smr::DeploymentConfig dcfg;
  dcfg.mode = to_mode(tech);
  dcfg.mpl = static_cast<std::size_t>(workers);
  dcfg.replicas = 2;
  dcfg.ring.batch_timeout = std::chrono::microseconds(500);
  dcfg.ring.skip_interval = std::chrono::microseconds(1500);
  dcfg.service_factory = [] {
    return smr::make_batched(std::make_unique<netfs::FsService>());
  };
  dcfg.cg_factory = [](std::size_t k) { return netfs::fs_cg(k); };
  smr::Deployment d(std::move(dcfg));
  d.start();

  constexpr int kFiles = 64;
  {
    netfs::FsClient setup(d.make_client());
    util::Buffer block(1024, 0x5a);
    for (int f = 0; f < kFiles; ++f) {
      setup.create("/f" + std::to_string(f));
      setup.write("/f" + std::to_string(f), 0, block);
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  util::Histogram latency;
  std::mutex lat_mu;
  int nclients = opt.clients_override ? opt.clients_override : 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      netfs::FsClient fs(d.make_client());
      util::SplitMix64 rng(c + 1);
      util::Buffer block(1024, static_cast<std::uint8_t>(c));
      util::Histogram local;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string path = "/f" + std::to_string(rng.next_below(kFiles));
        auto t0 = util::now_us();
        if (reads) {
          util::Buffer out;
          fs.read(path, 0, 1024, out);
        } else {
          fs.write(path, 0, block);
        }
        local.record(static_cast<double>(util::now_us() - t0));
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard lock(lat_mu);
      latency.merge(local);
    });
  }
  double secs = opt.quick ? 0.5 : 1.5;
  auto t0 = util::now_us();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop = true;
  for (auto& t : clients) t.join();
  double elapsed = static_cast<double>(util::now_us() - t0) / 1e6;
  d.stop();

  sim::SimResult out;
  out.completed = completed.load();
  out.kcps = static_cast<double>(out.completed) / elapsed / 1e3;
  out.latency = latency;
  out.avg_latency_us = latency.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Figure 8: NetFS 1KB reads and writes [%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");

  const sim::Tech techs[] = {sim::Tech::kSmr, sim::Tech::kSpsmr,
                             sim::Tech::kPsmr};
  std::printf("%-8s %9s %9s %8s %12s %12s\n", "tech", "readKcps", "writeKcps",
              "vsSMR(r)", "read lat(us)", "write lat(us)");
  double smr_reads = 0;
  for (auto tech : techs) {
    int workers = tech == sim::Tech::kSmr ? 1 : 8;
    sim::SimResult rd, wr;
    if (opt.real) {
      rd = run_real_fs(opt, tech, workers, /*reads=*/true);
      wr = run_real_fs(opt, tech, workers, /*reads=*/false);
    } else {
      auto rc = base_sim(opt, tech, workers,
                         tech == sim::Tech::kPsmr ? 50 : 16);
      rc.netfs = true;
      rc.netfs_reads = true;
      rd = sim::simulate(rc);
      auto wc = rc;
      wc.netfs_reads = false;
      wr = sim::simulate(wc);
    }
    if (tech == sim::Tech::kSmr) smr_reads = rd.kcps;
    std::printf("%-8s %9.0f %9.0f %7.2fx %12.0f %12.0f\n",
                sim::tech_name(tech), rd.kcps, wr.kcps, rd.kcps / smr_reads,
                rd.avg_latency_us, wr.avg_latency_us);
  }
  return 0;
}
