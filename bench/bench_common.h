// Shared helpers for the figure benches.
//
// Every fig*_ binary regenerates one figure of the paper's evaluation
// (Section VII).  Default mode drives the calibrated simulator
// (deterministic, core-count independent — see DESIGN.md's substitution
// table); pass --real to run the real in-process runtime instead and print
// host-measured numbers (this container exposes very few cores, so real
// numbers show protocol overhead, not 8-way scaling).
//
// Flags: --real, --quick (shorter sim), --duration-ms N, --clients N.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kvstore/kv_service.h"
#include "sim/model.h"
#include "smr/runtime.h"
#include "util/alloc_hook.h"
#include "workload/driver.h"

// Each bench binary is a single translation unit, so defining the counting
// allocator here gives every fig*/micro_* bench heap-traffic metering
// (util::allochook::allocations()) with no extra wiring.  Inert under
// sanitizers.
PSMR_DEFINE_ALLOC_HOOK();

namespace psmr::bench {

struct Options {
  bool real = false;
  bool quick = false;
  double duration_ms = 120;
  int clients_override = 0;
  /// Machine-readable summary path (figures that support it; fig3 writes
  /// the batched-execution perf record here).
  std::string json;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--real")) o.real = true;
      else if (!std::strcmp(argv[i], "--quick")) o.quick = true;
      else if (!std::strcmp(argv[i], "--duration-ms") && i + 1 < argc)
        o.duration_ms = std::atof(argv[++i]);
      else if (!std::strcmp(argv[i], "--clients") && i + 1 < argc)
        o.clients_override = std::atoi(argv[++i]);
      else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
        o.json = argv[++i];
    }
    if (o.quick) o.duration_ms = 40;
    return o;
  }
};

/// Simulator config shared by the KV figures.
inline sim::SimConfig base_sim(const Options& opt, sim::Tech tech,
                               int workers, int clients) {
  sim::SimConfig cfg;
  cfg.tech = tech;
  cfg.workers = workers;
  cfg.clients = opt.clients_override ? opt.clients_override : clients;
  cfg.window = 50;
  cfg.warmup_us = opt.duration_ms * 1000.0 / 6.0;
  cfg.duration_us = opt.duration_ms * 1000.0 + cfg.warmup_us;
  return cfg;
}

/// Real-runtime deployment over the key-value store.
inline smr::DeploymentConfig real_kv_config(smr::Mode mode, std::size_t mpl,
                                            std::uint64_t keys,
                                            std::size_t exec_run_length = 16,
                                            bool coalesce_responses = true) {
  smr::DeploymentConfig cfg;
  cfg.mode = mode;
  cfg.mpl = mpl;
  cfg.replicas = 2;
  cfg.coalesce_responses = coalesce_responses;
  cfg.ring.batch_timeout = std::chrono::microseconds(500);
  cfg.ring.skip_interval = std::chrono::microseconds(1500);
  cfg.ring.rto = std::chrono::microseconds(10000);
  cfg.service_factory = [keys] {
    return std::make_unique<kvstore::KvService>(keys);
  };
  cfg.shared_service_factory = [keys]() -> std::shared_ptr<smr::Service> {
    return std::make_shared<kvstore::ConcurrentKvService>(keys);
  };
  cfg.cg_factory = [](std::size_t k) { return kvstore::kv_keyed_cg(k); };
  cfg.exec_run_length = exec_run_length;
  return cfg;
}

inline smr::Mode to_mode(sim::Tech t) {
  switch (t) {
    case sim::Tech::kSmr: return smr::Mode::kSmr;
    case sim::Tech::kSpsmr: return smr::Mode::kSpsmr;
    case sim::Tech::kPsmr: return smr::Mode::kPsmr;
    case sim::Tech::kNoRep: return smr::Mode::kNoRep;
    case sim::Tech::kLock: return smr::Mode::kLockServer;
  }
  return smr::Mode::kSmr;
}

/// Runs the real runtime with a workload mix and adapts to RunResult-like
/// fields of SimResult for uniform printing.  `raw`, when given, receives
/// the full driver result including the replica-side ExecStats; `spool`
/// receives the deployment's submit-pipelining counters.
inline sim::SimResult run_real_kv(const Options& opt, sim::Tech tech,
                                  int workers, const workload::KvMix& mix,
                                  bool zipf = false,
                                  std::size_t exec_run_length = 16,
                                  workload::RunResult* raw = nullptr,
                                  bool coalesce_responses = true,
                                  smr::SpoolStats* spool = nullptr) {
  auto dcfg = real_kv_config(to_mode(tech), static_cast<std::size_t>(workers),
                             /*keys=*/200'000, exec_run_length,
                             coalesce_responses);
  smr::Deployment d(std::move(dcfg));
  d.start();
  workload::KvWorkloadSpec spec;
  spec.clients = opt.clients_override ? opt.clients_override : 4;
  spec.window = 50;
  spec.duration_s = opt.quick ? 0.5 : 1.5;
  spec.warmup_s = 0.3;
  spec.mix = mix;
  spec.keys = 200'000;
  spec.zipf = zipf;
  auto r = workload::run_kv_workload(d, spec);
  if (spool) *spool = d.spool_stats();
  d.stop();
  if (raw) *raw = r;
  sim::SimResult out;
  out.kcps = r.kcps;
  out.cpu_pct = r.cpu_pct;
  out.avg_latency_us = r.avg_latency_us;
  out.latency = r.latency;
  out.completed = r.completed;
  return out;
}

/// Prints a latency CDF as (value_us, fraction) pairs, decimated.
inline void print_cdf(const char* label, const util::Histogram& hist) {
  auto cdf = hist.cdf();
  std::printf("  CDF %-8s:", label);
  std::size_t step = cdf.size() > 12 ? cdf.size() / 12 : 1;
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf(" (%.0fus,%.2f)", cdf[i].first, cdf[i].second);
  }
  if (!cdf.empty()) {
    std::printf(" (%.0fus,1.00)", cdf.back().first);
  }
  std::printf("\n");
}

}  // namespace psmr::bench
