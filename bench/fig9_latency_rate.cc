// Latency/goodput vs offered rate — the overload figure the paper doesn't
// have.  Figures 3-8 all measure closed-loop populations at fixed
// multiprogramming levels, which by construction cannot overload the
// system: the window throttles arrivals as soon as latency grows.  This
// bench drives the fig3 independent mix (100% uniform reads) open loop —
// Poisson arrivals at a held offered rate — and sweeps that rate through
// the saturation knee, with the admission valve (smr/admission.h) off and
// on at every point.
//
// Expected shape (pinned in sim::AdmissionCalibration): goodput tracks
// offered rate up to the knee; past it, with no valve, the in-ring backlog
// degrades effective capacity and goodput collapses while p99 runs away;
// with the valve on, occupancy shedding caps the backlog, goodput holds
// near the knee and the tail stays bounded — overload degrades into
// explicit kSmrRejected rejections instead of seconds-long sojourns.
//
// Default mode runs the deterministic fluid overload model
// (sim::simulate_overload) on a FIXED grid and virtual duration — --quick
// changes nothing, so the CI gate over BENCH_latency.json and
// sim_calibration_test always agree.  --real additionally sweeps the real
// runtime (open-loop driver, admission on/off deployments); real numbers
// are reported, not gated (the container's core count sets the knee).
//
// --json FILE writes BENCH_latency.json: per-rate points, the knee summary,
// the 2x-knee overload probe and the gate verdict.
#include "bench_common.h"

#include <vector>

using namespace psmr;
using namespace psmr::bench;

namespace {

struct RatePoint {
  double offered_kcps = 0;
  sim::OverloadPoint off;
  sim::OverloadPoint on;
};

void print_point(const RatePoint& p) {
  std::printf(
      "%9.0f | %8.1f %9.0f %9.0f | %8.1f %9.0f %9.0f %6.2f\n",
      p.offered_kcps, p.off.goodput_kcps, p.off.p50_latency_us,
      p.off.p99_latency_us, p.on.goodput_kcps, p.on.p50_latency_us,
      p.on.p99_latency_us, p.on.shed_fraction);
}

void json_point(std::FILE* f, const char* key, const sim::OverloadPoint& pt) {
  std::fprintf(f,
               "\"%s\": {\"goodput_kcps\": %.1f, \"shed_kcps\": %.1f, "
               "\"shed_fraction\": %.4f, \"p50_us\": %.0f, \"p95_us\": %.0f, "
               "\"p99_us\": %.0f, \"final_backlog\": %.0f}",
               key, pt.goodput_kcps, pt.shed_kcps, pt.shed_fraction,
               pt.p50_latency_us, pt.p95_latency_us, pt.p99_latency_us,
               pt.final_backlog);
}

/// Real-runtime probe at one offered rate (reported, not gated).
workload::RunResult run_real_point(const Options& opt, double offered_cps,
                                   bool admission) {
  auto dcfg = real_kv_config(smr::Mode::kPsmr, /*mpl=*/4, /*keys=*/200'000);
  dcfg.admission.enabled = admission;
  smr::Deployment d(std::move(dcfg));
  d.start();
  workload::KvWorkloadSpec spec;
  spec.clients = opt.clients_override ? opt.clients_override : 4;
  spec.duration_s = opt.quick ? 0.5 : 1.5;
  spec.warmup_s = 0.3;
  spec.mix = workload::KvMix{100, 0, 0, 0};  // fig3 independent mix
  spec.keys = 200'000;
  spec.target_rate_cps = offered_cps;
  spec.poisson_arrivals = true;
  auto r = workload::run_kv_workload(d, spec);
  d.stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  const sim::AdmissionCalibration cal;

  std::printf(
      "=== Latency/goodput vs offered rate (fig3 mix, open loop) ===\n");
  std::printf("fluid overload model: capacity %.0f Kcps, penalty %.1e, "
              "shed band [%.0f, %.0f]\n",
              cal.capacity_kcps, cal.overload_penalty,
              cal.shed_exit_occupancy, cal.shed_enter_occupancy);

  sim::OverloadConfig base;
  base.capacity_kcps = cal.capacity_kcps;
  base.overload_penalty = cal.overload_penalty;
  base.shed_enter_occupancy = cal.shed_enter_occupancy;
  base.shed_exit_occupancy = cal.shed_exit_occupancy;

  // Fixed sweep grid (fractions of the calibrated capacity).  The fluid
  // model costs microseconds per point, so --quick never trims it — the
  // knee and the gate numbers must not depend on flags.
  const double fractions[] = {0.25, 0.5,  0.7, 0.8,  0.9, 0.95,
                              1.0,  1.1,  1.25, 1.5, 1.75, 2.0};
  std::vector<RatePoint> points;
  std::printf("%9s | %29s | %36s\n", "", "admission off", "admission on");
  std::printf("%9s | %8s %9s %9s | %8s %9s %9s %6s\n", "offered", "goodput",
              "p50us", "p99us", "goodput", "p50us", "p99us", "shed");
  for (double frac : fractions) {
    RatePoint p;
    p.offered_kcps = frac * cal.capacity_kcps;
    auto off_cfg = base;
    off_cfg.admission = false;
    p.off = sim::simulate_overload(off_cfg, p.offered_kcps);
    auto on_cfg = base;
    on_cfg.admission = true;
    p.on = sim::simulate_overload(on_cfg, p.offered_kcps);
    print_point(p);
    points.push_back(std::move(p));
  }

  // Knee: highest swept rate the unvalved system still serves with
  // `knee_headroom` of its offered load.
  std::vector<sim::OverloadPoint> off_curve;
  for (const auto& p : points) off_curve.push_back(p.off);
  std::size_t knee = sim::knee_index(off_curve, cal.knee_headroom);
  const auto& knee_pt = points[knee];
  std::printf("knee: offered %.0f Kcps, goodput %.1f Kcps, p99 %.0f us\n",
              knee_pt.offered_kcps, knee_pt.off.goodput_kcps,
              knee_pt.off.p99_latency_us);

  // Overload probe: overload_factor x the knee's offered rate, valve off
  // and on.  This is the pair of points the CI gate is about.
  const double probe_kcps = cal.overload_factor * knee_pt.offered_kcps;
  auto off_cfg = base;
  off_cfg.admission = false;
  auto probe_off = sim::simulate_overload(off_cfg, probe_kcps);
  auto on_cfg = base;
  on_cfg.admission = true;
  auto probe_on = sim::simulate_overload(on_cfg, probe_kcps);

  const double knee_goodput = knee_pt.off.goodput_kcps;
  const double on_vs_knee = probe_on.goodput_kcps / knee_goodput;
  const double off_vs_knee = probe_off.goodput_kcps / knee_goodput;
  const bool pass = on_vs_knee >= cal.min_goodput_vs_knee &&
                    off_vs_knee <= cal.max_goodput_off_vs_knee &&
                    probe_on.p99_latency_us <= cal.max_p99_on_us;
  std::printf(
      "at %.1fx knee (%.0f Kcps): on %.1f Kcps (%.2fx knee, p99 %.0f us, "
      "shed %.0f%%), off %.1f Kcps (%.2fx knee, p99 %.0f us)\n",
      cal.overload_factor, probe_kcps, probe_on.goodput_kcps, on_vs_knee,
      probe_on.p99_latency_us, probe_on.shed_fraction * 100,
      probe_off.goodput_kcps, off_vs_knee, probe_off.p99_latency_us);
  std::printf(
      "gate: on >= %.2fx knee, off <= %.2fx knee, on p99 <= %.0f us: %s\n",
      cal.min_goodput_vs_knee, cal.max_goodput_off_vs_knee, cal.max_p99_on_us,
      pass ? "PASS" : "FAIL");

  // Optional real-runtime sweep, relative to the host's own closed-loop
  // capacity (reported only; this container's core count sets the knee).
  if (opt.real) {
    workload::RunResult base_run;
    run_real_kv(opt, sim::Tech::kPsmr, 4, workload::KvMix{100, 0, 0, 0},
                false, 16, &base_run);
    const double host_cps = base_run.kcps * 1000.0;
    std::printf("\n--- real runtime (host closed-loop capacity %.0f cps) "
                "---\n", host_cps);
    std::printf("%9s %6s | %8s %8s %9s %7s\n", "offered", "valve", "goodput",
                "shed", "p99us", "failed");
    for (double frac : {0.5, 1.0, 1.5, 2.0}) {
      for (bool admission : {false, true}) {
        auto r = run_real_point(opt, frac * host_cps, admission);
        std::printf("%9.0f %6s | %8.1f %8llu %9.0f %7llu\n", frac * host_cps,
                    admission ? "on" : "off", r.kcps,
                    static_cast<unsigned long long>(r.shed_rejected),
                    r.p99_latency_us,
                    static_cast<unsigned long long>(r.dispatch_failed));
      }
    }
  }

  if (!opt.json.empty()) {
    std::FILE* f = std::fopen(opt.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"latency_rate\": {\n"
                 "    \"mode\": \"sim\",\n"
                 "    \"capacity_kcps\": %.1f,\n"
                 "    \"knee_headroom\": %.2f,\n"
                 "    \"overload_factor\": %.2f,\n"
                 "    \"points\": [",
                 cal.capacity_kcps, cal.knee_headroom, cal.overload_factor);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f, "%s\n      {\"offered_kcps\": %.1f, ", i ? "," : "",
                   points[i].offered_kcps);
      json_point(f, "off", points[i].off);
      std::fprintf(f, ", ");
      json_point(f, "on", points[i].on);
      std::fprintf(f, "}");
    }
    std::fprintf(f,
                 "\n    ],\n"
                 "    \"knee\": {\"offered_kcps\": %.1f, "
                 "\"goodput_kcps\": %.1f, \"p99_us\": %.0f},\n"
                 "    \"at_2x_knee\": {\"offered_kcps\": %.1f,\n      ",
                 knee_pt.offered_kcps, knee_goodput,
                 knee_pt.off.p99_latency_us, probe_kcps);
    json_point(f, "off", probe_off);
    std::fprintf(f, ",\n      ");
    json_point(f, "on", probe_on);
    std::fprintf(f,
                 "},\n"
                 "    \"gates\": {\n"
                 "      \"min_goodput_vs_knee\": %.2f,\n"
                 "      \"on_goodput_vs_knee\": %.3f,\n"
                 "      \"max_goodput_off_vs_knee\": %.2f,\n"
                 "      \"off_goodput_vs_knee\": %.3f,\n"
                 "      \"max_p99_on_us\": %.0f,\n"
                 "      \"on_p99_us\": %.0f,\n"
                 "      \"pass\": %s\n"
                 "    }\n  }\n}\n",
                 cal.min_goodput_vs_knee, on_vs_knee,
                 cal.max_goodput_off_vs_knee, off_vs_knee, cal.max_p99_on_us,
                 probe_on.p99_latency_us, pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", opt.json.c_str());
  }
  return pass ? 0 : 1;
}
