// Figure 5 restaged for the sharding layer — P-SMR throughput vs the
// number of shards (one worker group + one multicast ring per shard) at a
// fixed cross-shard conflict rate (sim::ShardCalibration::conflict_rate).
//
// The paper's Fig. 5 sweeps worker threads per technique; in a sharded
// deployment the worker count IS the ring count, so this sweep answers the
// scaled-out version of the same question: does throughput keep growing as
// the keyspace splits across dozens of rings, with a constant fraction of
// commands spanning shards (riding g_all and synchronizing their subset of
// workers)?  Expected shape: near-linear while independent traffic
// dominates, flattening as per-ring merge bookkeeping and cross-shard
// barriers grow with the ring count.
//
// --json FILE writes BENCH_shard.json: the per-shard-count points plus the
// scaling ratio the CI gate asserts (kcps at gate_shards >= min_scaling x
// kcps at baseline_shards, see sim/calibration.h).
#include "bench_common.h"

#include "sim/calibration.h"
#include "smr/shard_spec.h"

using namespace psmr;
using namespace psmr::bench;

namespace {

/// Real-runtime deployment for one shard count: uniform spec, shard-aware
/// C-G, ring tuning stretched with the ring count as in the test harness.
smr::DeploymentConfig real_sharded_config(std::size_t shards,
                                          std::uint64_t keys) {
  auto spec = smr::make_uniform_shard_spec(shards, 2, keys,
                                           multicast::ShardPolicy::kHash);
  auto cfg = smr::shard_deployment_config(spec);
  cfg.ring.batch_timeout = std::chrono::microseconds(500);
  cfg.ring.skip_interval = std::chrono::microseconds(
      1500 * (shards > 8 ? static_cast<long>(shards / 8) : 1));
  cfg.ring.rto = std::chrono::microseconds(10000);
  cfg.service_factory = [keys] {
    return std::make_unique<kvstore::KvService>(keys);
  };
  auto map = spec.map();
  cfg.cg_factory = [map](std::size_t) { return kvstore::kv_sharded_cg(map); };
  return cfg;
}

sim::SimResult run_point(const Options& opt, int shards,
                         const sim::ShardCalibration& cal) {
  if (opt.real) {
    auto dcfg = real_sharded_config(static_cast<std::size_t>(shards),
                                    /*keys=*/200'000);
    smr::Deployment d(std::move(dcfg));
    d.start();
    workload::KvWorkloadSpec spec;
    spec.clients = opt.clients_override ? opt.clients_override : 4;
    spec.window = 50;
    spec.duration_s = opt.quick ? 0.5 : 1.5;
    spec.warmup_s = 0.3;
    // ~conflict_rate of the commands are inserts/deletes: global γ, the
    // cross-shard traffic of this sweep.
    spec.mix = workload::KvMix{48, 47, 3, 2};
    spec.keys = 200'000;
    auto r = workload::run_kv_workload(d, spec);
    d.stop();
    sim::SimResult out;
    out.kcps = r.kcps;
    out.cpu_pct = r.cpu_pct;
    out.avg_latency_us = r.avg_latency_us;
    out.completed = r.completed;
    return out;
  }
  auto cfg = base_sim(opt, sim::Tech::kPsmr, shards, 30 * shards);
  cfg.frac_dependent = cal.conflict_rate;
  return sim::simulate(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  const sim::ShardCalibration cal;
  std::printf(
      "=== Figure 5 (sharded): P-SMR throughput vs shard count [%s] ===\n",
      opt.real ? "real runtime" : "calibrated simulation");
  std::printf("conflict rate (cross-shard commands): %.2f\n",
              cal.conflict_rate);

  const int shard_counts[] = {1, 2, 4, 8, 16, 32};
  const int n_points = opt.quick ? 4 : 6;  // quick stops at the gate point

  double kcps[6] = {};
  std::printf("%-8s %9s %12s\n", "shards", "kcps", "kcps/shard");
  for (int i = 0; i < n_points; ++i) {
    auto r = run_point(opt, shard_counts[i], cal);
    kcps[i] = r.kcps;
    std::printf("%-8d %9.0f %12.1f\n", shard_counts[i], r.kcps,
                r.kcps / shard_counts[i]);
  }

  double baseline = kcps[0];
  double at_gate = 0;
  for (int i = 0; i < n_points; ++i) {
    if (shard_counts[i] == cal.gate_shards) at_gate = kcps[i];
  }
  double scaling = baseline > 0 ? at_gate / baseline : 0;
  std::printf("scaling %dx->%dx shards: %.2fx (gate: >= %.2fx)\n",
              cal.baseline_shards, cal.gate_shards, scaling, cal.min_scaling);

  if (!opt.json.empty()) {
    std::FILE* f = std::fopen(opt.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"shard_sweep\": {\n"
                 "    \"mode\": \"%s\",\n"
                 "    \"conflict_rate\": %.4f,\n"
                 "    \"points\": [",
                 opt.real ? "real" : "sim", cal.conflict_rate);
    for (int i = 0; i < n_points; ++i) {
      std::fprintf(f, "%s\n      {\"shards\": %d, \"kcps\": %.1f}",
                   i ? "," : "", shard_counts[i], kcps[i]);
    }
    std::fprintf(f,
                 "\n    ],\n"
                 "    \"baseline_shards\": %d,\n"
                 "    \"gate_shards\": %d,\n"
                 "    \"scaling_at_gate\": %.3f,\n"
                 "    \"min_scaling\": %.2f\n"
                 "  }\n}\n",
                 cal.baseline_shards, cal.gate_shards, scaling,
                 cal.min_scaling);
    std::fclose(f);
    std::printf("wrote %s\n", opt.json.c_str());
  }
  return 0;
}
