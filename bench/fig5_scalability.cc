// Figure 5 — throughput vs number of worker threads (1..8), independent
// commands (left) and dependent commands (right); absolute Kcps plus
// per-thread normalized throughput.
//
// Paper's reported shape (left/independent): all techniques compare equally
// at one thread; P-SMR alone keeps scaling with threads (to ~3x); sP-SMR
// and no-rep peak at 2 and then *decline* (scheduler synchronization); BDB
// stays far below.  (Right/dependent): everything except BDB declines as
// threads are added; BDB rises until 4 threads, then locking overhead wins.
#include "bench_common.h"

using namespace psmr;
using namespace psmr::bench;

namespace {

void sweep(const Options& opt, bool dependent) {
  const sim::Tech techs[] = {sim::Tech::kNoRep, sim::Tech::kSpsmr,
                             sim::Tech::kPsmr, sim::Tech::kLock};
  const int thread_counts[] = {1, 2, 4, 6, 8};

  std::printf("--- %s commands: absolute throughput (Kcps) ---\n",
              dependent ? "dependent" : "independent");
  std::printf("%-8s", "threads");
  for (auto t : techs) std::printf(" %9s", sim::tech_name(t));
  std::printf("\n");

  double per_thread[4][5];
  double at_one[4];
  for (int wi = 0; wi < 5; ++wi) {
    int w = thread_counts[wi];
    std::printf("%-8d", w);
    for (int ti = 0; ti < 4; ++ti) {
      sim::SimResult r;
      if (opt.real) {
        r = run_real_kv(opt, techs[ti], w,
                        dependent ? workload::KvMix{0, 0, 50, 50}
                                  : workload::KvMix{100, 0, 0, 0});
      } else {
        int clients = dependent ? 30 : 30 * w;  // enough to saturate
        auto cfg = base_sim(opt, techs[ti], w, clients);
        cfg.frac_dependent = dependent ? 1.0 : 0.0;
        r = sim::simulate(cfg);
      }
      std::printf(" %9.0f", r.kcps);
      per_thread[ti][wi] = r.kcps / w;
      if (wi == 0) at_one[ti] = r.kcps;
    }
    std::printf("\n");
  }

  std::printf("--- %s commands: per-thread normalized throughput ---\n",
              dependent ? "dependent" : "independent");
  std::printf("%-8s", "threads");
  for (auto t : techs) std::printf(" %9s", sim::tech_name(t));
  std::printf("\n");
  for (int wi = 0; wi < 5; ++wi) {
    std::printf("%-8d", thread_counts[wi]);
    for (int ti = 0; ti < 4; ++ti) {
      std::printf(" %9.2f", per_thread[ti][wi] / at_one[ti]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Figure 5: scalability with worker threads [%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");
  sweep(opt, /*dependent=*/false);
  sweep(opt, /*dependent=*/true);
  return 0;
}
