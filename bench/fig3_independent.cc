// Figure 3 — performance of independent commands (key-value store, 100%
// reads, uniform keys).
//
// Paper's reported shape: SMR 1x (~850 Kcps), no-rep 1.22x, sP-SMR 1.14x,
// P-SMR 3.15x, BDB 0.2x; P-SMR reaches the highest CPU usage (~8 cores) and,
// at peak load, the highest average latency; the CDF shows a longer tail
// for P-SMR.  Thread counts per technique follow the paper: P-SMR 8,
// sP-SMR/no-rep 2 (workers, excluding the scheduler), SMR 1, BDB 6.
#include "bench_common.h"

using namespace psmr;
using namespace psmr::bench;

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Figure 3: independent commands (100%% reads) [%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");

  struct Row {
    sim::Tech tech;
    int workers;
    int clients;  // scaled to each technique's saturation point
  };
  // Clients chosen so each technique runs at its peak, mirroring the
  // paper's methodology of reporting peak throughput per technique.
  const Row rows[] = {
      {sim::Tech::kNoRep, 2, 70},
      {sim::Tech::kSmr, 1, 60},
      {sim::Tech::kSpsmr, 2, 65},
      {sim::Tech::kPsmr, 8, 190},
      {sim::Tech::kLock, 6, 7},
  };

  double smr_kcps = 0;
  sim::SimResult results[5];
  for (int i = 0; i < 5; ++i) {
    const auto& row = rows[i];
    if (opt.real) {
      results[i] = run_real_kv(opt, row.tech, row.workers,
                               workload::KvMix{100, 0, 0, 0});
    } else {
      auto cfg = base_sim(opt, row.tech, row.workers, row.clients);
      results[i] = sim::simulate(cfg);
    }
    if (row.tech == sim::Tech::kSmr) smr_kcps = results[i].kcps;
  }

  std::printf("%-8s %8s %8s %7s %9s %9s\n", "tech", "threads", "Kcps", "vsSMR",
              "CPU(%)", "lat(us)");
  for (int i = 0; i < 5; ++i) {
    std::printf("%-8s %8d %8.0f %6.2fx %9.0f %9.0f\n",
                sim::tech_name(rows[i].tech), rows[i].workers,
                results[i].kcps, results[i].kcps / smr_kcps,
                results[i].cpu_pct, results[i].avg_latency_us);
  }
  for (int i = 0; i < 5; ++i) {
    print_cdf(sim::tech_name(rows[i].tech), results[i].latency);
  }
  return 0;
}
