// Figure 3 — performance of independent commands (key-value store, 100%
// reads, uniform keys).
//
// Paper's reported shape: SMR 1x (~850 Kcps), no-rep 1.22x, sP-SMR 1.14x,
// P-SMR 3.15x, BDB 0.2x; P-SMR reaches the highest CPU usage (~8 cores) and,
// at peak load, the highest average latency; the CDF shows a longer tail
// for P-SMR.  Thread counts per technique follow the paper: P-SMR 8,
// sP-SMR/no-rep 2 (workers, excluding the scheduler), SMR 1, BDB 6.
//
// `--json <path>` additionally measures the replica-side batched-execution
// record (PR: batch-aware Service API): the same fig3 mix driven through
// the replica execution pipeline — delivery thread → scheduler → worker →
// B+-tree → marshaled reply — with execution batching on (run length 16,
// reads resolve through the pipelined find_batch lane) vs off (run
// length 1, the pre-batching sequential path), plus a full-deployment
// comparison with ExecStats.  The pipeline ratio is the end-to-end
// acceptance number recorded in sim/calibration.h (ExecCalibration).
//
// The same flag also measures the response-path record (PR: batched reply
// coalescing): the full sP-SMR deployment at window 50 with reply
// coalescing on vs off — Kcps, responses per wire message, flush-reason
// counts and latency percentiles — written to BENCH_response.json next to
// the main JSON and pinned in sim/calibration.h (ResponseCalibration).
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "smr/scheduler.h"
#include "util/clock.h"
#include "util/rng.h"

using namespace psmr;
using namespace psmr::bench;

namespace {

struct PipelineResult {
  double kcps = 0;
  smr::ExecStats exec;
};

// The replica execution pipeline under the fig3 mix: a single delivery
// thread feeds uniform point reads into a SchedulerCore (the sP-SMR/no-rep
// engine; P-SMR workers run the same accumulate-and-execute loop) and every
// response is marshaled and delivered to a real mailbox.  Command
// construction is done up front so the measurement covers the pipeline, not
// the workload generator.
PipelineResult run_exec_pipeline(std::size_t run_length, std::uint64_t keys,
                                 std::uint64_t commands) {
  transport::Network net;
  smr::SchedulerOptions opts;
  opts.run_length = run_length;
  smr::SchedulerCore core(net, std::make_unique<kvstore::KvService>(keys),
                          kvstore::kv_keyed_cg(1), 1, "exec-pipeline", opts);
  auto [me, mybox] = net.register_node();
  auto box = mybox;  // keep the mailbox alive past the structured binding
  std::thread drainer([box] {
    while (box->pop()) {
    }
  });

  std::vector<smr::Command> cmds;
  cmds.reserve(commands);
  util::SplitMix64 rng(42);
  for (std::uint64_t i = 0; i < commands; ++i) {
    smr::Command c;
    c.cmd = kvstore::kKvRead;
    c.client = 1;
    c.seq = i + 1;
    c.reply_to = me;
    c.params = kvstore::encode_key(rng.next_below(keys));
    cmds.push_back(std::move(c));
  }

  core.start();
  const std::int64_t t0 = util::now_us();
  std::uint64_t submitted = 0;
  for (auto& c : cmds) {
    // Bounded in-flight window: queues stay deep enough to batch but never
    // grow without limit (closed-loop, like the paper's client windows).
    while (submitted - core.executed() > 8192) std::this_thread::yield();
    core.schedule(std::move(c));
    ++submitted;
  }
  while (core.executed() < submitted) std::this_thread::yield();
  const std::int64_t t1 = util::now_us();

  PipelineResult r;
  r.kcps = static_cast<double>(submitted) /
           static_cast<double>(t1 - t0) * 1e3;
  r.exec = core.service().exec_stats();
  core.stop();
  net.shutdown();
  drainer.join();
  return r;
}

/// BENCH_response.json lands next to the main --json file.
std::string response_json_path(const std::string& json) {
  auto slash = json.find_last_of('/');
  std::string dir = slash == std::string::npos ? "" : json.substr(0, slash + 1);
  return dir + "BENCH_response.json";
}

void print_latency(std::FILE* f, const workload::RunResult& r,
                   const char* trailing, const char* key = "latency_us") {
  std::fprintf(f,
               "    \"%s\": {\"avg\": %.1f, \"p50\": %.1f, "
               "\"p95\": %.1f, \"p99\": %.1f}%s\n",
               key, r.avg_latency_us, r.p50_latency_us, r.p95_latency_us,
               r.p99_latency_us, trailing);
}

void write_json(const Options& opt) {
  // Pipeline measurement at the paper's memory-resident working-set scale
  // (batching pays for overlapping DRAM miss chains; a cache-resident tree
  // would understate it).  --quick trims the command count, not the tree.
  const std::uint64_t keys = 8'000'000;
  const std::uint64_t commands = opt.quick ? 400'000 : 2'000'000;
  std::fprintf(stderr, "fig3: measuring exec pipeline (%llu keys)...\n",
               static_cast<unsigned long long>(keys));
  PipelineResult seq = run_exec_pipeline(1, keys, commands);
  PipelineResult batched = run_exec_pipeline(16, keys, commands);
  const double ratio = seq.kcps > 0 ? batched.kcps / seq.kcps : 0;

  // Full-deployment comparison (replication, Paxos, clients included): the
  // same knob end to end.  On few-core hosts ordering dominates, so this
  // is reported, not gated.
  workload::RunResult real_seq;
  workload::RunResult real_batched;
  smr::SpoolStats spool;
  run_real_kv(opt, sim::Tech::kSpsmr, 2, workload::KvMix{100, 0, 0, 0},
              /*zipf=*/false, /*exec_run_length=*/1, &real_seq);
  // Allocation metering (zero-copy pooled buffers PR): heap traffic across
  // the whole coalesced deployment leg — Paxos, batches, responses, clients
  // — divided by completed commands.  Whole-process, so it includes the
  // workload driver itself; the hot-path-only number is bench_micro_codec's.
  util::allochook::AllocWindow alloc_on;
  run_real_kv(opt, sim::Tech::kSpsmr, 2, workload::KvMix{100, 0, 0, 0},
              /*zipf=*/false, /*exec_run_length=*/16, &real_batched,
              /*coalesce_responses=*/true, &spool);
  const double allocs_per_cmd_on =
      real_batched.completed > 0
          ? static_cast<double>(alloc_on.count()) /
                static_cast<double>(real_batched.completed)
          : 0;

  // Response-path record: the same batched deployment (window 50) with
  // reply coalescing forced off.  real_batched is the coalescing-on leg.
  std::fprintf(stderr, "fig3: measuring response path (coalescing off)...\n");
  workload::RunResult resp_off;
  util::allochook::AllocWindow alloc_off;
  run_real_kv(opt, sim::Tech::kSpsmr, 2, workload::KvMix{100, 0, 0, 0},
              /*zipf=*/false, /*exec_run_length=*/16, &resp_off,
              /*coalesce_responses=*/false);
  const double allocs_per_cmd_off =
      resp_off.completed > 0 ? static_cast<double>(alloc_off.count()) /
                                   static_cast<double>(resp_off.completed)
                             : 0;
  const workload::RunResult& resp_on = real_batched;

  std::FILE* f = std::fopen(opt.json.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fig3: cannot open %s\n", opt.json.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig3_exec_batching\",\n");
  std::fprintf(f, "  \"exec_pipeline\": {\n");
  std::fprintf(f, "    \"keys\": %llu,\n",
               static_cast<unsigned long long>(keys));
  std::fprintf(f, "    \"commands\": %llu,\n",
               static_cast<unsigned long long>(commands));
  std::fprintf(f, "    \"seq_kcps\": %.1f,\n", seq.kcps);
  std::fprintf(f, "    \"batched_kcps\": %.1f,\n", batched.kcps);
  std::fprintf(f, "    \"batched_vs_seq\": %.3f,\n", ratio);
  std::fprintf(f, "    \"mean_commands_per_batch\": %.2f,\n",
               batched.exec.mean_commands_per_batch());
  std::fprintf(f, "    \"batched_read_share\": %.3f,\n",
               batched.exec.batched_read_share());
  std::fprintf(f, "    \"max_batch\": %llu\n",
               static_cast<unsigned long long>(batched.exec.max_batch));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"deployment_spsmr\": {\n");
  std::fprintf(f, "    \"seq_kcps\": %.1f,\n", real_seq.kcps);
  std::fprintf(f, "    \"batched_kcps\": %.1f,\n", real_batched.kcps);
  std::fprintf(f, "    \"mean_commands_per_batch\": %.2f,\n",
               real_batched.exec.mean_commands_per_batch());
  std::fprintf(f, "    \"batched_read_share\": %.3f,\n",
               real_batched.exec.batched_read_share());
  print_latency(f, real_batched, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);

  const std::string resp_path = response_json_path(opt.json);
  std::FILE* rf = std::fopen(resp_path.c_str(), "w");
  if (!rf) {
    std::fprintf(stderr, "fig3: cannot open %s\n", resp_path.c_str());
    return;
  }
  const double resp_ratio =
      resp_off.kcps > 0 ? resp_on.kcps / resp_off.kcps : 0;
  std::fprintf(rf, "{\n  \"bench\": \"fig3_response_batching\",\n");
  std::fprintf(rf, "  \"deployment_spsmr\": {\n");
  std::fprintf(rf, "    \"window\": 50,\n");
  std::fprintf(rf, "    \"uncoalesced_kcps\": %.1f,\n", resp_off.kcps);
  std::fprintf(rf, "    \"coalesced_kcps\": %.1f,\n", resp_on.kcps);
  std::fprintf(rf, "    \"coalesced_vs_uncoalesced\": %.3f,\n", resp_ratio);
  std::fprintf(rf, "    \"responses_per_message\": %.2f,\n",
               resp_on.response.mean_responses_per_message());
  std::fprintf(rf, "    \"uncoalesced_responses_per_message\": %.2f,\n",
               resp_off.response.mean_responses_per_message());
  std::fprintf(rf, "    \"alloc_hook_active\": %s,\n",
               util::allochook::kAllocHookActive ? "true" : "false");
  std::fprintf(rf, "    \"coalesced_allocs_per_cmd\": %.2f,\n",
               allocs_per_cmd_on);
  std::fprintf(rf, "    \"uncoalesced_allocs_per_cmd\": %.2f,\n",
               allocs_per_cmd_off);
  std::fprintf(rf,
               "    \"spool\": {\"spooled_commands\": %llu, \"flushes\": "
               "%llu, \"mean_commands_per_flush\": %.2f, "
               "\"failed_flush_commands\": %llu},\n",
               static_cast<unsigned long long>(spool.spooled_commands),
               static_cast<unsigned long long>(spool.flushes),
               spool.mean_commands_per_flush(),
               static_cast<unsigned long long>(spool.failed_flush_commands));
  std::fprintf(rf,
               "    \"flush\": {\"batch\": %llu, \"size\": %llu, "
               "\"bytes\": %llu, \"timeout\": %llu},\n",
               static_cast<unsigned long long>(resp_on.response.flush_batch),
               static_cast<unsigned long long>(resp_on.response.flush_size),
               static_cast<unsigned long long>(resp_on.response.flush_bytes),
               static_cast<unsigned long long>(
                   resp_on.response.flush_timeout));
  print_latency(rf, resp_on, ",", "coalesced_latency_us");
  print_latency(rf, resp_off, "", "uncoalesced_latency_us");
  std::fprintf(rf, "  }\n}\n");
  std::fclose(rf);

  std::fprintf(stderr,
               "fig3: exec pipeline %0.f -> %.0f Kcps (%.2fx, %.1f "
               "cmds/batch); wrote %s\n",
               seq.kcps, batched.kcps, ratio,
               batched.exec.mean_commands_per_batch(), opt.json.c_str());
  std::fprintf(stderr,
               "fig3: responses %.1f -> %.1f Kcps (%.2fx, %.1f resp/msg); "
               "wrote %s\n",
               resp_off.kcps, resp_on.kcps, resp_ratio,
               resp_on.response.mean_responses_per_message(),
               resp_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  if (!opt.json.empty()) {
    write_json(opt);
    return 0;
  }
  std::printf("=== Figure 3: independent commands (100%% reads) [%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");

  struct Row {
    sim::Tech tech;
    int workers;
    int clients;  // scaled to each technique's saturation point
  };
  // Clients chosen so each technique runs at its peak, mirroring the
  // paper's methodology of reporting peak throughput per technique.
  const Row rows[] = {
      {sim::Tech::kNoRep, 2, 70},
      {sim::Tech::kSmr, 1, 60},
      {sim::Tech::kSpsmr, 2, 65},
      {sim::Tech::kPsmr, 8, 190},
      {sim::Tech::kLock, 6, 7},
  };

  double smr_kcps = 0;
  sim::SimResult results[5];
  workload::RunResult raw[5];
  for (int i = 0; i < 5; ++i) {
    const auto& row = rows[i];
    if (opt.real) {
      results[i] = run_real_kv(opt, row.tech, row.workers,
                               workload::KvMix{100, 0, 0, 0}, /*zipf=*/false,
                               /*exec_run_length=*/16, &raw[i]);
    } else {
      auto cfg = base_sim(opt, row.tech, row.workers, row.clients);
      results[i] = sim::simulate(cfg);
    }
    if (row.tech == sim::Tech::kSmr) smr_kcps = results[i].kcps;
  }

  std::printf("%-8s %8s %8s %7s %9s %9s", "tech", "threads", "Kcps", "vsSMR",
              "CPU(%)", "lat(us)");
  if (opt.real) std::printf(" %10s %9s", "cmds/batch", "batched%");
  std::printf("\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("%-8s %8d %8.0f %6.2fx %9.0f %9.0f",
                sim::tech_name(rows[i].tech), rows[i].workers,
                results[i].kcps, results[i].kcps / smr_kcps,
                results[i].cpu_pct, results[i].avg_latency_us);
    if (opt.real) {
      std::printf(" %10.2f %8.1f%%", raw[i].exec.mean_commands_per_batch(),
                  100.0 * raw[i].exec.batched_read_share());
    }
    std::printf("\n");
  }
  for (int i = 0; i < 5; ++i) {
    print_cdf(sim::tech_name(rows[i].tech), results[i].latency);
  }
  return 0;
}
