// Micro-benchmarks for the real atomic-multicast stack: end-to-end
// submit→deliver throughput through one Paxos ring, the effect of the 8 KB
// batch bound, and — the batching headline — paced mpl-4 traffic with the
// fixed-timeout batcher vs the adaptive one.  Runs the real protocol
// threads, so absolute numbers depend on the host's core count.
//
// Besides the usual Google Benchmark output, `--json <path>` writes a
// machine-readable summary (decided batches, mean commands per batch,
// ns per command) per benchmark, so CI and future PRs can track the
// batching trajectory:
//   bench_micro_multicast --json BENCH_multicast.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "multicast/amcast.h"
#include "transport/network.h"

namespace {

using namespace psmr;

// ---------------------------------------------------------------------------
// JSON summary collection (--json <path>).
// ---------------------------------------------------------------------------

struct BenchRecord {
  std::string name;
  std::uint64_t commands = 0;
  std::uint64_t decided_batches = 0;
  std::uint64_t decided_skips = 0;
  double cmds_per_batch = 0.0;
  double ns_per_cmd = 0.0;
  std::uint64_t batch_timeout_us = 0;
};

std::vector<BenchRecord>& records() {
  static std::vector<BenchRecord> r;
  return r;
}

// Records one benchmark's summary, replacing any earlier entry with the
// same name: Google Benchmark re-invokes un-pinned benchmarks while
// calibrating the iteration count, and only the final (fully measured)
// run should land in the JSON.
void record(std::string name, std::uint64_t commands,
            const paxos::CoordinatorStats& s,
            std::chrono::steady_clock::duration elapsed) {
  BenchRecord r;
  r.name = std::move(name);
  r.commands = commands;
  r.decided_batches = s.decided_batches;
  r.decided_skips = s.decided_skips;
  r.cmds_per_batch = s.mean_commands_per_batch();
  r.ns_per_cmd =
      commands == 0
          ? 0.0
          : static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()) /
                static_cast<double>(commands);
  r.batch_timeout_us = s.batch_timeout_us;
  for (auto& existing : records()) {
    if (existing.name == r.name) {
      existing = std::move(r);
      return;
    }
  }
  records().push_back(std::move(r));
}

void write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "micro_multicast: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_multicast\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < records().size(); ++i) {
    const auto& r = records()[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"commands\": %llu, "
                 "\"decided_batches\": %llu, \"decided_skips\": %llu, "
                 "\"cmds_per_batch\": %.2f, \"ns_per_cmd\": %.1f, "
                 "\"batch_timeout_us\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.commands),
                 static_cast<unsigned long long>(r.decided_batches),
                 static_cast<unsigned long long>(r.decided_skips),
                 r.cmds_per_batch, r.ns_per_cmd,
                 static_cast<unsigned long long>(r.batch_timeout_us),
                 i + 1 < records().size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "micro_multicast: wrote %s (%zu results)\n",
               path.c_str(), records().size());
}

// ---------------------------------------------------------------------------
// Benchmarks.
// ---------------------------------------------------------------------------

void BM_RingThroughput(benchmark::State& state) {
  transport::Network net;
  paxos::RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(200);
  cfg.max_batch_bytes = static_cast<std::size_t>(state.range(0));
  paxos::Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  util::Writer w;
  w.u64(42);
  util::Buffer cmd = w.take();

  std::uint64_t delivered = 0;
  std::uint64_t submitted = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    // Keep a pipeline of ~512 outstanding commands.
    while (submitted - delivered < 512) {
      ring.submit(me, cmd);
      ++submitted;
    }
    while (delivered < submitted) {
      auto d = learner->next_for(std::chrono::milliseconds(200));
      if (!d) break;
      if (!d->batch.skip) delivered += d->batch.commands.size();
      if (submitted - delivered < 256) break;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - started;
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  auto s = ring.stats();
  state.counters["cmds_per_batch"] = s.mean_commands_per_batch();
  record("RingThroughput/" + std::to_string(state.range(0)), delivered, s,
         elapsed);
  ring.stop();
  net.shutdown();
}
// Batch-size ablation: 1KB vs the paper's 8KB vs 64KB.
BENCHMARK(BM_RingThroughput)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_BusMulticastSingleGroup(benchmark::State& state) {
  transport::Network net;
  multicast::BusConfig cfg;
  cfg.num_groups = 2;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  cfg.ring.skip_interval = std::chrono::microseconds(1000);
  multicast::Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  util::Writer w;
  w.u64(7);
  util::Buffer msg = w.take();

  std::uint64_t delivered = 0, submitted = 0;
  for (auto _ : state) {
    while (submitted - delivered < 256) {
      bus.multicast(me, multicast::GroupSet::single(0), msg);
      ++submitted;
    }
    while (delivered < submitted) {
      auto d = sub->next();
      if (!d) break;
      ++delivered;
      if (submitted - delivered < 128) break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  bus.stop();
  net.shutdown();
}
// Bounded iterations: merged delivery paces at the skip interval when
// rings idle, so adaptive iteration counts can run very long on slow hosts.
BENCHMARK(BM_BusMulticastSingleGroup)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(300);

// Paced mpl-4 traffic, fixed-timeout batcher (arg 0) vs adaptive (arg 1):
// 4 worker rings each fed one command every ~300us — a trickle that never
// fills a batch, which is exactly where adaptive timeouts earn their keep
// by stretching the wait and coalescing many commands per consensus
// instance.  The headline counter is cmds_per_batch, from the real
// CoordinatorStats of the worker rings (skips excluded).
void BM_BusPacedMpl4(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  constexpr std::size_t kGroups = 4;
  constexpr auto kGap = std::chrono::microseconds(300);

  transport::Network net;
  multicast::BusConfig cfg;
  cfg.num_groups = kGroups;
  cfg.ring.batch_timeout = std::chrono::microseconds(150);
  cfg.ring.skip_interval = std::chrono::microseconds(1500);
  if (adaptive) {
    cfg.ring.adaptive_batching = true;
    cfg.ring.min_batch_timeout = std::chrono::microseconds(100);
    cfg.ring.max_batch_timeout = std::chrono::microseconds(8000);
  }
  multicast::Bus bus(net, cfg);
  std::vector<std::unique_ptr<multicast::MergeDeliverer>> subs;
  for (multicast::GroupId g = 0; g < kGroups; ++g) {
    subs.push_back(bus.subscribe(g));
  }
  bus.start();
  std::vector<transport::NodeId> senders;
  std::vector<std::shared_ptr<transport::Mailbox>> boxes;
  for (std::size_t g = 0; g < kGroups; ++g) {
    auto [node, box] = net.register_node();
    senders.push_back(node);
    boxes.push_back(std::move(box));
  }

  util::Writer w;
  w.u64(7);
  util::Buffer msg = w.take();

  // One iteration = one paced command to each of the 4 worker rings.
  std::uint64_t submitted_per_group = 0;
  auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (std::size_t g = 0; g < kGroups; ++g) {
      bus.multicast(senders[g], multicast::GroupSet::single(
                                    static_cast<multicast::GroupId>(g)),
                    msg);
    }
    ++submitted_per_group;
    std::this_thread::sleep_for(kGap);
  }
  // Drain everything so the stats cover the full run.
  std::uint64_t delivered = 0;
  for (auto& sub : subs) {
    for (std::uint64_t i = 0; i < submitted_per_group; ++i) {
      auto d = sub->next();
      if (!d) break;
      ++delivered;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - started;

  paxos::CoordinatorStats s;
  for (multicast::GroupId g = 0; g < kGroups; ++g) s += bus.ring_stats(g);
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["cmds_per_batch"] = s.mean_commands_per_batch();
  state.counters["batch_timeout_us"] =
      static_cast<double>(s.batch_timeout_us);
  record(adaptive ? "BusPacedMpl4/adaptive" : "BusPacedMpl4/fixed", delivered,
         s, elapsed);
  bus.stop();
  net.shutdown();
}
// Fixed iteration count: the loop sleeps by design (paced open-loop load),
// so Google Benchmark's adaptive iteration search would run for minutes.
BENCHMARK(BM_BusPacedMpl4)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: strip `--json <path>` (ours) before Google Benchmark sees
// the command line, run the benchmarks, then write the summary.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_json(json_path);
  return 0;
}
