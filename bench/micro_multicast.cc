// Micro-benchmarks for the real atomic-multicast stack: end-to-end
// submit→deliver throughput through one Paxos ring, and the effect of the
// 8 KB batch bound (the ablation DESIGN.md calls out).  Runs the real
// protocol threads, so absolute numbers depend on the host's core count.
#include <benchmark/benchmark.h>

#include "multicast/amcast.h"
#include "transport/network.h"

namespace {

using namespace psmr;

void BM_RingThroughput(benchmark::State& state) {
  transport::Network net;
  paxos::RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(200);
  cfg.max_batch_bytes = static_cast<std::size_t>(state.range(0));
  paxos::Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  util::Writer w;
  w.u64(42);
  util::Buffer cmd = w.take();

  std::uint64_t delivered = 0;
  std::uint64_t submitted = 0;
  for (auto _ : state) {
    // Keep a pipeline of ~512 outstanding commands.
    while (submitted - delivered < 512) {
      ring.submit(me, cmd);
      ++submitted;
    }
    while (delivered < submitted) {
      auto d = learner->next_for(std::chrono::milliseconds(200));
      if (!d) break;
      if (!d->batch.skip) delivered += d->batch.commands.size();
      if (submitted - delivered < 256) break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  ring.stop();
  net.shutdown();
}
// Batch-size ablation: 1KB vs the paper's 8KB vs 64KB.
BENCHMARK(BM_RingThroughput)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_BusMulticastSingleGroup(benchmark::State& state) {
  transport::Network net;
  multicast::BusConfig cfg;
  cfg.num_groups = 2;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  cfg.ring.skip_interval = std::chrono::microseconds(1000);
  multicast::Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  util::Writer w;
  w.u64(7);
  util::Buffer msg = w.take();

  std::uint64_t delivered = 0, submitted = 0;
  for (auto _ : state) {
    while (submitted - delivered < 256) {
      bus.multicast(me, multicast::GroupSet::single(0), msg);
      ++submitted;
    }
    while (delivered < submitted) {
      auto d = sub->next();
      if (!d) break;
      ++delivered;
      if (submitted - delivered < 128) break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  bus.stop();
  net.shutdown();
}
// Bounded iterations: merged delivery paces at the skip interval when
// rings idle, so adaptive iteration counts can run very long on slow hosts.
BENCHMARK(BM_BusMulticastSingleGroup)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(300);

}  // namespace

BENCHMARK_MAIN();
