// Micro-benchmarks for the message codec path, in two parts:
//
//  1. LZ codec timing — validates the compression-cost asymmetry the
//     simulator's NetFS calibration assumes (compressing a 1 KB response
//     costs ~3x decompressing one; the paper uses this to explain Figure
//     8's read-vs-write latency difference).
//
//  2. Allocation metering for the zero-copy buffer pool — the acceptance
//     measurement of the pooled-message-buffer PR.  Two legs push the same
//     command stream through the submit→order→deliver codec chain:
//
//       * "buffer" leg: the seed's per-hop util::Buffer copies (encode,
//         submit-frame pack, coordinator unpack, batch seal, learner
//         unpack, command decode) — one or more heap allocations per hop;
//       * "pooled" leg: the live code path (Command::encode_into a pooled
//         SUBMIT_MANY frame, subview unpack, paxos::Batch encode/decode,
//         Command::decode) — zero-copy subviews over recycled pool blocks.
//
//     Heap traffic is counted by the util/alloc_hook operator-new hook
//     (defined by bench_common.h) and reported as allocs-per-command,
//     written with --json to BENCH_alloc.json; the pinned record lives in
//     sim::AllocCalibration and is gated in CI (pooled <= 0.1, buffer >= 3).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "paxos/types.h"
#include "smr/command.h"
#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/compress.h"
#include "util/hash.h"
#include "util/rng.h"

using namespace psmr;
using namespace psmr::bench;

namespace {

constexpr std::size_t kSpoolCommands = 64;  // SubmitSpoolerOptions default

util::Buffer make_payload(std::size_t n, double entropy) {
  // entropy in [0,1]: 0 = all zeros, 1 = random bytes.
  util::SplitMix64 rng(7);
  util::Buffer out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rng.chance(entropy)
                      ? static_cast<std::uint8_t>(rng.next())
                      : static_cast<std::uint8_t>('a' + i % 7));
  }
  return out;
}

smr::Command make_command(std::uint64_t seq) {
  smr::Command c;
  c.cmd = 1;
  c.client = 1;
  c.seq = seq;
  c.reply_to = 7;
  c.groups = multicast::GroupSet::single(0);
  util::Writer w;
  w.u64(seq * 2654435761u);  // an 8-byte key, like the KV point commands
  c.params = w.take();
  return c;
}

// --- Leg 1: the seed's Buffer-per-hop chain. -------------------------------
//
// Reconstructs what every command paid before the pool existed: each hop
// re-marshals or copies the bytes into a fresh heap vector.  The chain
// mirrors submit → SUBMIT_MANY pack → coordinator unpack → batch seal →
// learner unpack → command decode.
std::uint64_t run_buffer_leg(const std::vector<smr::Command>& cmds,
                             std::uint64_t* checksum) {
  util::allochook::AllocWindow window;
  for (std::size_t base = 0; base < cmds.size(); base += kSpoolCommands) {
    std::size_t n = std::min(kSpoolCommands, cmds.size() - base);
    // Client: encode each command into its own Buffer, pack a SUBMIT_MANY.
    util::Writer frame_w;
    frame_w.u32(static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      util::Buffer enc = cmds[base + i].encode();
      frame_w.bytes(enc);
    }
    util::Buffer frame = frame_w.take();
    // Coordinator: unpack into per-command pending Buffers, seal a batch.
    util::Reader fr(frame);
    std::uint32_t count = fr.u32();
    util::Writer batch_w;
    batch_w.u8(0);
    batch_w.u32(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      util::Buffer pending = fr.bytes();  // copy, as the seed did
      batch_w.bytes(pending);
    }
    batch_w.u32(util::Crc32::of(batch_w.view()));
    util::Buffer decide = batch_w.take();
    // Learner: unpack the batch into per-command Buffers and decode.
    util::Reader br(std::span<const std::uint8_t>(decide.data(),
                                                  decide.size() - 4));
    br.u8();
    std::uint32_t delivered = br.u32();
    for (std::uint32_t i = 0; i < delivered; ++i) {
      util::Buffer cmd_bytes = br.bytes();  // copy, as the seed did
      util::Reader cr(cmd_bytes);
      cr.u16();
      cr.u64();
      *checksum += cr.u64();      // seq
      cr.u32();
      cr.u64();
      util::Buffer params = cr.bytes();  // seed Command::decode copied params
      *checksum += params.size();
    }
  }
  return window.count();
}

// --- Leg 2: the live pooled zero-copy chain. -------------------------------
std::uint64_t run_pooled_leg(const std::vector<smr::Command>& cmds,
                             std::uint64_t* checksum) {
  util::allochook::AllocWindow window;
  std::vector<util::Payload> pending;  // capacity survives iterations
  pending.reserve(kSpoolCommands);
  for (std::size_t base = 0; base < cmds.size(); base += kSpoolCommands) {
    std::size_t n = std::min(kSpoolCommands, cmds.size() - base);
    // Client: marshal straight into one pooled SUBMIT_MANY frame (what
    // SubmitSpooler::spool does).
    util::PayloadWriter spool(32 * 1024);
    spool.u32(static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      const smr::Command& c = cmds[base + i];
      spool.u32(static_cast<std::uint32_t>(c.encoded_size()));
      c.encode_into(spool);
    }
    util::Payload frame = spool.take();
    // Coordinator: pending commands are subviews of the frame.
    util::Reader fr(frame);
    std::uint32_t count = fr.u32();
    pending.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      pending.push_back(frame.subview_of(fr.bytes_view()));
    }
    paxos::Batch batch;
    batch.skip = false;
    batch.commands = std::move(pending);
    util::Payload decide = batch.encode();
    pending = std::move(batch.commands);  // reclaim the vector's capacity
    // Learner: decoded commands are subviews of the decide frame.
    auto delivered = paxos::Batch::decode(decide);
    for (const auto& msg : delivered->commands) {
      auto c = smr::Command::decode(msg);
      *checksum += c->seq + c->params.size();
    }
  }
  return window.count();
}

void run_alloc_bench(const Options& opt, std::FILE* json) {
  const std::uint64_t commands = opt.quick ? 64 * 1024 : 512 * 1024;
  std::vector<smr::Command> cmds;
  cmds.reserve(commands);
  for (std::uint64_t i = 0; i < commands; ++i) cmds.push_back(make_command(i));

  // Warm the pool (and the free-list vectors) so the measured pooled leg
  // sees the steady state a long-running deployment runs in.
  std::uint64_t checksum = 0;
  run_pooled_leg(cmds, &checksum);

  std::uint64_t pooled = run_pooled_leg(cmds, &checksum);
  std::uint64_t buffered = run_buffer_leg(cmds, &checksum);
  auto pool = util::BufferPool::global().stats();

  const double per_cmd_pooled =
      static_cast<double>(pooled) / static_cast<double>(commands);
  const double per_cmd_buffer =
      static_cast<double>(buffered) / static_cast<double>(commands);
  const bool hook = util::allochook::kAllocHookActive;
  std::printf("alloc metering (%s): buffer chain %.2f allocs/cmd, pooled "
              "chain %.4f allocs/cmd (%" PRIu64 " cmds, checksum %" PRIu64
              ")\n",
              hook ? "hook active" : "hook inert under sanitizer",
              per_cmd_buffer, per_cmd_pooled, commands, checksum);
  std::printf("pool: %" PRIu64 " hits, %" PRIu64 " misses, %" PRIu64
              " recycled, %lld outstanding\n",
              pool.hits, pool.misses, pool.recycled,
              static_cast<long long>(pool.outstanding));

  if (json == nullptr) return;
  std::fprintf(json, "  \"alloc\": {\n");
  std::fprintf(json, "    \"hook_active\": %s,\n", hook ? "true" : "false");
  std::fprintf(json, "    \"commands\": %" PRIu64 ",\n", commands);
  std::fprintf(json, "    \"spool_commands\": %zu,\n", kSpoolCommands);
  std::fprintf(json, "    \"buffer_allocs_per_cmd\": %.3f,\n", per_cmd_buffer);
  std::fprintf(json, "    \"pooled_allocs_per_cmd\": %.4f,\n", per_cmd_pooled);
  std::fprintf(json, "    \"reduction\": %.1f,\n",
               per_cmd_pooled > 0 ? per_cmd_buffer / per_cmd_pooled : 0.0);
  std::fprintf(json,
               "    \"pool\": {\"hits\": %" PRIu64 ", \"misses\": %" PRIu64
               ", \"oversize\": %" PRIu64 ", \"recycled\": %" PRIu64
               ", \"dropped\": %" PRIu64 ", \"outstanding\": %lld}\n",
               pool.hits, pool.misses, pool.oversize, pool.recycled,
               pool.dropped, static_cast<long long>(pool.outstanding));
  std::fprintf(json, "  },\n");
}

double time_ns_per_op(std::uint64_t iters, const std::function<void()>& op) {
  const std::int64_t t0 = util::now_us();
  for (std::uint64_t i = 0; i < iters; ++i) op();
  const std::int64_t t1 = util::now_us();
  return static_cast<double>(t1 - t0) * 1e3 / static_cast<double>(iters);
}

void run_codec_bench(const Options& opt, std::FILE* json) {
  const std::uint64_t iters = opt.quick ? 2'000 : 20'000;
  util::Buffer p1k = make_payload(1024, 0.3);
  util::Buffer c1k = util::lz_compress(p1k);
  util::Buffer p64k = make_payload(64 * 1024, 0.3);
  util::Buffer rnd1k = make_payload(1024, 1.0);

  std::size_t sink = 0;
  double compress_1k = time_ns_per_op(
      iters, [&] { sink += util::lz_compress(p1k).size(); });
  double decompress_1k = time_ns_per_op(
      iters, [&] { sink += util::lz_decompress(c1k)->size(); });
  double compress_64k = time_ns_per_op(
      iters / 10, [&] { sink += util::lz_compress(p64k).size(); });
  double compress_rnd = time_ns_per_op(
      iters, [&] { sink += util::lz_compress(rnd1k).size(); });
  volatile std::size_t keep = sink;  // keep the timed work observable
  (void)keep;

  std::printf("codec: compress1K %.0fns  decompress1K %.0fns (%.2fx)  "
              "compress64K %.0fns  incompressible1K %.0fns\n",
              compress_1k, decompress_1k,
              decompress_1k > 0 ? compress_1k / decompress_1k : 0,
              compress_64k, compress_rnd);
  if (json == nullptr) return;
  std::fprintf(json, "  \"codec\": {\n");
  std::fprintf(json, "    \"compress_1k_ns\": %.1f,\n", compress_1k);
  std::fprintf(json, "    \"decompress_1k_ns\": %.1f,\n", decompress_1k);
  std::fprintf(json, "    \"compress_vs_decompress\": %.2f,\n",
               decompress_1k > 0 ? compress_1k / decompress_1k : 0.0);
  std::fprintf(json, "    \"compress_64k_ns\": %.1f,\n", compress_64k);
  std::fprintf(json, "    \"compress_incompressible_1k_ns\": %.1f\n",
               compress_rnd);
  std::fprintf(json, "  }\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::FILE* json = nullptr;
  if (!opt.json.empty()) {
    json = std::fopen(opt.json.c_str(), "w");
    if (!json) {
      std::fprintf(stderr, "micro_codec: cannot open %s\n", opt.json.c_str());
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"micro_codec\",\n");
  }
  run_alloc_bench(opt, json);
  run_codec_bench(opt, json);
  if (json) {
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::fprintf(stderr, "micro_codec: wrote %s\n", opt.json.c_str());
  }
  return 0;
}
