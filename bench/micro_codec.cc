// Micro-benchmarks for the LZ codec — validates the compression-cost
// asymmetry the simulator's NetFS calibration assumes (compressing a 1 KB
// response costs ~3x decompressing one; the paper uses this to explain
// Figure 8's read-vs-write latency difference).
#include <benchmark/benchmark.h>

#include "util/compress.h"
#include "util/rng.h"

namespace {

using psmr::util::Buffer;
using psmr::util::SplitMix64;

Buffer make_payload(std::size_t n, double entropy) {
  // entropy in [0,1]: 0 = all zeros, 1 = random bytes.
  SplitMix64 rng(7);
  Buffer out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rng.chance(entropy)
                      ? static_cast<std::uint8_t>(rng.next())
                      : static_cast<std::uint8_t>('a' + i % 7));
  }
  return out;
}

void BM_Compress1K(benchmark::State& state) {
  Buffer payload = make_payload(1024, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psmr::util::lz_compress(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Compress1K);

void BM_Decompress1K(benchmark::State& state) {
  Buffer block = psmr::util::lz_compress(make_payload(1024, 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(psmr::util::lz_decompress(block));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Decompress1K);

void BM_Compress64K(benchmark::State& state) {
  Buffer payload = make_payload(64 * 1024, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psmr::util::lz_compress(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          1024);
}
BENCHMARK(BM_Compress64K);

void BM_CompressIncompressible1K(benchmark::State& state) {
  Buffer payload = make_payload(1024, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psmr::util::lz_compress(payload));
  }
}
BENCHMARK(BM_CompressIncompressible1K);

}  // namespace

BENCHMARK_MAIN();
