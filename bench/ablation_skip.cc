// Ablation: deterministic-merge SKIP interval (real runtime).
//
// P-SMR's per-thread delivery merges the worker's own ring with the shared
// g_all ring; when one ring is idle the merge stalls until that ring's
// coordinator decides a SKIP (Multi-Ring Paxos mechanism).  The skip period
// is therefore a latency floor for traffic on the *other* ring, while a
// short period multiplies protocol messages.  This bench measures the
// trade-off on the real stack: mean client latency and the skip message
// count for a fixed trickle of keyed commands.
#include <thread>

#include "bench_common.h"
#include "kvstore/kv_client.h"

using namespace psmr;
using namespace psmr::bench;

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Ablation: merge SKIP interval (real runtime) ===\n");
  std::printf("%-14s %12s %12s %14s\n", "skip_us", "mean lat(us)",
              "p99 lat(us)", "skips decided");

  const int skip_intervals[] = {500, 1500, 5000, 15000};
  for (int skip_us : skip_intervals) {
    auto cfg = real_kv_config(smr::Mode::kPsmr, 4, /*keys=*/1024);
    cfg.ring.skip_interval = std::chrono::microseconds(skip_us);
    smr::Deployment d(std::move(cfg));
    d.start();
    kvstore::KvClient kv(d.make_client());

    util::Histogram lat;
    const int ops = opt.quick ? 40 : 150;
    for (int i = 0; i < ops; ++i) {
      auto t0 = util::now_us();
      kv.update(static_cast<std::uint64_t>(i) % 1024, i);
      lat.record(static_cast<double>(util::now_us() - t0));
      // A trickle, not a flood: latency floor is visible when rings idle.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    std::uint64_t skips = d.bus()->decided_skips();
    std::printf("%-14d %12.0f %12.0f %14lu\n", skip_us, lat.mean(),
                lat.quantile(0.99), skips);
    d.stop();
  }
  std::printf("(expected: latency grows with the skip period; skip traffic "
              "shrinks)\n");
  return 0;
}
