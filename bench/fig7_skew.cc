// Figure 7 — skewed workloads: P-SMR vs sP-SMR under uniform and Zipf(1)
// key selection (50% updates / 50% reads), threads 1..8; absolute plus
// per-thread normalized throughput.
//
// Paper's reported shape: with uniform keys P-SMR's throughput climbs with
// every added core; with Zipf it is bounded by the most-loaded multicast
// group (visible at 8 threads).  sP-SMR is scheduler-bound either way —
// and with 1-2 threads its *Zipfian* throughput beats its uniform one,
// because hot keys stay cached at the processor.  P-SMR scales better than
// sP-SMR under both distributions (per-thread normalized plot).
#include "bench_common.h"

using namespace psmr;
using namespace psmr::bench;

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Figure 7: skewed workloads (50%% updates / 50%% reads) "
              "[%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");

  const int thread_counts[] = {1, 2, 4, 6, 8};
  struct Series {
    sim::Tech tech;
    bool zipf;
    const char* label;
  };
  const Series series[] = {
      {sim::Tech::kPsmr, false, "P-SMR:uniform"},
      {sim::Tech::kPsmr, true, "P-SMR:zipf"},
      {sim::Tech::kSpsmr, false, "sP-SMR:uniform"},
      {sim::Tech::kSpsmr, true, "sP-SMR:zipf"},
  };

  double abs_kcps[4][5];
  for (int wi = 0; wi < 5; ++wi) {
    for (int si = 0; si < 4; ++si) {
      sim::SimResult r;
      if (opt.real) {
        r = run_real_kv(opt, series[si].tech, thread_counts[wi],
                        workload::KvMix{50, 50, 0, 0}, series[si].zipf);
      } else {
        auto cfg = base_sim(opt, series[si].tech, thread_counts[wi],
                            30 * thread_counts[wi]);
        cfg.zipf = series[si].zipf;
        cfg.keys = 10'000'000;
        r = sim::simulate(cfg);
      }
      abs_kcps[si][wi] = r.kcps;
    }
  }

  std::printf("--- absolute throughput (Kcps) ---\n%-8s", "threads");
  for (const auto& s : series) std::printf(" %15s", s.label);
  std::printf("\n");
  for (int wi = 0; wi < 5; ++wi) {
    std::printf("%-8d", thread_counts[wi]);
    for (int si = 0; si < 4; ++si) std::printf(" %15.0f", abs_kcps[si][wi]);
    std::printf("\n");
  }

  std::printf("--- per-thread normalized throughput ---\n%-8s", "threads");
  for (const auto& s : series) std::printf(" %15s", s.label);
  std::printf("\n");
  for (int wi = 0; wi < 5; ++wi) {
    std::printf("%-8d", thread_counts[wi]);
    for (int si = 0; si < 4; ++si) {
      std::printf(" %15.2f",
                  abs_kcps[si][wi] / thread_counts[wi] / abs_kcps[si][0]);
    }
    std::printf("\n");
  }

  if (!opt.real) {
    // Extension (paper Section IV-D): a load-aware C-G that pins the
    // known-hot objects round-robin across groups recovers most of the
    // skew-induced loss at 8 threads.
    auto base = base_sim(opt, sim::Tech::kPsmr, 8, 240);
    base.zipf = true;
    base.keys = 10'000'000;
    auto naive = sim::simulate(base);
    base.hot_aware = 64;
    auto aware = sim::simulate(base);
    std::printf("--- extension: load-aware C-G (64 hottest keys pinned, "
                "P-SMR 8 threads) ---\n");
    std::printf("zipf naive C-G:      %7.0f Kcps (busiest worker %.0f%%)\n",
                naive.kcps, 100 * naive.max_worker_share);
    std::printf("zipf load-aware C-G: %7.0f Kcps (busiest worker %.0f%%)\n",
                aware.kcps, 100 * aware.max_worker_share);
  }
  return 0;
}
