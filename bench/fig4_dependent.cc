// Figure 4 — performance of dependent commands (key-value store, 100%
// inserts+deletes: every command conflicts with everything).
//
// Paper's reported shape: SMR keeps its ~842 Kcps (single thread, no
// synchronization overhead) and tops the chart; P-SMR drops to ~0.5x
// (every command travels through g_all and the synchronous-mode machinery);
// no-rep ~0.32x and sP-SMR ~0.28x (drain-assign-drain scheduler ping-pong);
// BDB ~0.12x (global latching, throughput down from 140K to 105 Kcps).
// Thread counts per the paper: 1 for everything except BDB (4).
#include "bench_common.h"

using namespace psmr;
using namespace psmr::bench;

int main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  std::printf("=== Figure 4: dependent commands (inserts+deletes) [%s] ===\n",
              opt.real ? "real runtime" : "calibrated simulation");

  struct Row {
    sim::Tech tech;
    int workers;
    int clients;
  };
  const Row rows[] = {
      {sim::Tech::kNoRep, 1, 20},
      {sim::Tech::kSmr, 1, 60},
      {sim::Tech::kSpsmr, 1, 20},
      {sim::Tech::kPsmr, 1, 35},
      {sim::Tech::kLock, 4, 5},
  };

  double smr_kcps = 0;
  sim::SimResult results[5];
  for (int i = 0; i < 5; ++i) {
    const auto& row = rows[i];
    if (opt.real) {
      results[i] = run_real_kv(opt, row.tech, row.workers,
                               workload::KvMix{0, 0, 50, 50});
    } else {
      auto cfg = base_sim(opt, row.tech, row.workers, row.clients);
      cfg.frac_dependent = 1.0;
      results[i] = sim::simulate(cfg);
    }
    if (row.tech == sim::Tech::kSmr) smr_kcps = results[i].kcps;
  }

  std::printf("%-8s %8s %8s %7s %9s %9s\n", "tech", "threads", "Kcps", "vsSMR",
              "CPU(%)", "lat(us)");
  for (int i = 0; i < 5; ++i) {
    std::printf("%-8s %8d %8.0f %6.2fx %9.0f %9.0f\n",
                sim::tech_name(rows[i].tech), rows[i].workers,
                results[i].kcps, results[i].kcps / smr_kcps,
                results[i].cpu_pct, results[i].avg_latency_us);
  }
  for (int i = 0; i < 5; ++i) {
    print_cdf(sim::tech_name(rows[i].tech), results[i].latency);
  }
  return 0;
}
