#include "transport/network.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "transport/endpoint.h"

namespace psmr::transport {
namespace {

TEST(Network, PointToPointDelivery) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  ASSERT_TRUE(net.send(a, b, 99, util::Buffer{1, 2, 3}));
  auto msg = bbox->pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, a);
  EXPECT_EQ(msg->to, b);
  EXPECT_EQ(msg->type, 99);
  EXPECT_EQ(msg->payload, (util::Buffer{1, 2, 3}));
}

TEST(Network, FifoPerPair) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  for (std::uint8_t i = 0; i < 100; ++i) {
    net.send(a, b, 1, util::Buffer{i});
  }
  for (std::uint8_t i = 0; i < 100; ++i) {
    auto msg = bbox->pop();
    ASSERT_TRUE(msg);
    EXPECT_EQ(msg->payload[0], i);
  }
}

TEST(Network, UnknownDestinationFails) {
  Network net;
  auto [a, abox] = net.register_node();
  EXPECT_FALSE(net.send(a, 424242, 1, {}));
}

TEST(Network, DisconnectSuppressesBothDirections) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  net.disconnect(b);
  EXPECT_FALSE(net.send(a, b, 1, {}));  // to crashed node
  EXPECT_FALSE(net.send(b, a, 1, {}));  // from crashed node
  net.reconnect(b);
  EXPECT_TRUE(net.send(a, b, 1, {}));
  EXPECT_TRUE(net.connected(b));
}

TEST(Network, DropProbabilityDropsRoughlyThatFraction) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  net.set_drop_probability(0.5);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    if (net.send(a, b, 1, {})) ++delivered;
  }
  EXPECT_GT(delivered, 800);
  EXPECT_LT(delivered, 1200);
  auto stats = net.stats();
  EXPECT_EQ(stats.messages_sent + stats.messages_dropped, 2000u);
}

TEST(Network, DelayedDeliveryArrivesLater) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  net.set_delay_us(20000);  // 20 ms
  auto start = std::chrono::steady_clock::now();
  net.send(a, b, 1, {});
  auto msg = bbox->pop();
  ASSERT_TRUE(msg);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(Network, DelayedDeliveryPreservesOrder) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  net.set_delay_us(1000);
  for (std::uint8_t i = 0; i < 50; ++i) net.send(a, b, 1, util::Buffer{i});
  for (std::uint8_t i = 0; i < 50; ++i) {
    auto msg = bbox->pop();
    ASSERT_TRUE(msg);
    EXPECT_EQ(msg->payload[0], i);
  }
}

TEST(Network, ShutdownClosesMailboxes) {
  Network net;
  auto [a, abox] = net.register_node();
  std::thread waiter([&, box = abox] {
    EXPECT_FALSE(box->pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net.shutdown();
  waiter.join();
  EXPECT_FALSE(net.send(a, a, 1, {}));
}

TEST(Network, StatsCountBytes) {
  Network net;
  auto [a, abox] = net.register_node();
  auto [b, bbox] = net.register_node();
  net.send(a, b, 1, util::Buffer(100, 0));
  net.send(a, b, 1, util::Buffer(28, 0));
  EXPECT_EQ(net.stats().bytes_sent, 128u);
  EXPECT_EQ(net.stats().messages_sent, 2u);
}

// --- Endpoint actor ---

class EchoEndpoint : public Endpoint {
 public:
  explicit EchoEndpoint(Network& net) : Endpoint(net, "echo") {}
  std::atomic<int> handled{0};

 protected:
  void handle(Message msg) override {
    handled++;
    send(msg.from, msg.type, std::move(msg.payload));
  }
};

TEST(Endpoint, EchoesMessages) {
  Network net;
  EchoEndpoint echo(net);
  echo.start();
  auto [me, mybox] = net.register_node();
  net.send(me, echo.id(), 7, util::Buffer{42});
  auto reply = mybox->pop();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->type, 7);
  EXPECT_EQ(reply->payload[0], 42);
  echo.stop();
  EXPECT_EQ(echo.handled.load(), 1);
}

class TickingEndpoint : public Endpoint {
 public:
  explicit TickingEndpoint(Network& net) : Endpoint(net, "ticker") {}
  std::atomic<int> ticks{0};

 protected:
  void handle(Message) override {}
  [[nodiscard]] std::optional<std::chrono::microseconds> tick_interval()
      const override {
    return std::chrono::microseconds(1000);
  }
  void on_tick() override { ticks++; }
};

TEST(Endpoint, TicksFireWithoutTraffic) {
  Network net;
  TickingEndpoint ticker(net);
  ticker.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ticker.stop();
  EXPECT_GE(ticker.ticks.load(), 10);
}

TEST(Endpoint, StopIsIdempotent) {
  Network net;
  EchoEndpoint echo(net);
  echo.start();
  echo.stop();
  echo.stop();  // must not hang or crash
}

}  // namespace
}  // namespace psmr::transport
