// Tests for rng/zipf, histogram, hash/crc, sync primitives and clock.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/sync.h"

namespace psmr::util {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, UniformishDistribution) {
  SplitMix64 rng(42);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.next_below(kBuckets)]++;
  }
  for (int c : counts) {
    // Expect each bucket within 10% of the mean.
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 10);
  }
}

TEST(Zipf, RankZeroMostPopular) {
  SplitMix64 rng(3);
  Zipf zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, MatchesTheoreticalHeadMass) {
  // For s=1, N=1000: P(rank 0) = 1/H_1000 ≈ 1/7.485 ≈ 0.1336.
  SplitMix64 rng(9);
  Zipf zipf(1000, 1.0);
  int hits = 0;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.sample(rng) == 0) ++hits;
  }
  double p = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(p, 0.1336, 0.01);
}

TEST(Zipf, LargeKeySpace) {
  // The paper's key-value store holds 10M keys; sampling must stay O(1).
  SplitMix64 rng(11);
  Zipf zipf(10'000'000, 1.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 10'000'000u);
  }
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(h.quantile(0.5), 50, 3);
  EXPECT_NEAR(h.quantile(0.99), 99, 4);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.min(), 1);
}

TEST(Histogram, MergeEquivalentToCombinedRecording) {
  Histogram a, b, combined;
  SplitMix64 rng(5);
  for (int i = 0; i < 5000; ++i) {
    double v = static_cast<double>(rng.next_below(100000));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.quantile(0.9), combined.quantile(0.9), 1e-9);
}

TEST(Histogram, CdfIsMonotonic) {
  Histogram h;
  SplitMix64 rng(8);
  for (int i = 0; i < 10000; ++i) {
    h.record(static_cast<double>(rng.next_below(1 << 20)));
  }
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-9);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);

  Histogram single;
  single.record(42.0);
  // Every quantile of a one-sample distribution is that sample (within the
  // bucket's ~2% midpoint error).
  EXPECT_NEAR(single.quantile(0.0), 42.0, 42.0 * 0.02);
  EXPECT_NEAR(single.quantile(0.5), 42.0, 42.0 * 0.02);
  EXPECT_NEAR(single.quantile(1.0), 42.0, 42.0 * 0.02);

  Histogram spread;
  for (int i = 1; i <= 1000; ++i) spread.record(i);
  // q=0 anchors at the minimum, q=1 at the maximum, and order holds.
  EXPECT_NEAR(spread.quantile(0.0), 1.0, 0.1);
  EXPECT_NEAR(spread.quantile(1.0), 1000.0, 1000.0 * 0.02);
  EXPECT_LE(spread.quantile(0.0), spread.quantile(0.5));
  EXPECT_LE(spread.quantile(0.5), spread.quantile(1.0));
}

TEST(Histogram, QuantilesSurviveMerge) {
  // Merging a low-half and a high-half recorder must reproduce the
  // quantiles of recording the full range into one histogram.
  Histogram low, high, combined;
  for (int i = 1; i <= 500; ++i) {
    low.record(i);
    combined.record(i);
  }
  for (int i = 501; i <= 1000; ++i) {
    high.record(i);
    combined.record(i);
  }
  low.merge(high);
  EXPECT_EQ(low.count(), combined.count());
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_NEAR(low.quantile(q), combined.quantile(q), 1e-9) << "q=" << q;
  }
  // Merging an empty histogram is a no-op.
  Histogram empty;
  double before = low.quantile(0.5);
  low.merge(empty);
  EXPECT_EQ(low.quantile(0.5), before);
}

TEST(Histogram, RecordNMatchesRepeatedRecord) {
  Histogram weighted, repeated;
  weighted.record_n(250.0, 1000);
  weighted.record_n(9000.0, 10);
  weighted.record_n(123.0, 0);  // zero weight: no sample, no min/max update
  for (int i = 0; i < 1000; ++i) repeated.record(250.0);
  for (int i = 0; i < 10; ++i) repeated.record(9000.0);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-9);
  EXPECT_EQ(weighted.min(), repeated.min());
  EXPECT_EQ(weighted.max(), repeated.max());
  for (double q : {0.5, 0.99, 1.0}) {
    EXPECT_NEAR(weighted.quantile(q), repeated.quantile(q), 1e-9);
  }
}

TEST(Histogram, RelativeErrorBounded) {
  Histogram h;
  for (double v : {1.0, 10.0, 100.0, 1000.0, 123456.0}) {
    h.record(v);
  }
  // Each recorded value's bucket midpoint is within ~2% of the value.
  EXPECT_NEAR(h.quantile(0.0), 1.0, 0.05);
  EXPECT_NEAR(h.quantile(1.0), 123456.0, 123456.0 * 0.02);
}

TEST(Hash, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Hash, Mix64SpreadsSequentialKeys) {
  // Adjacent keys should land in different mod-8 classes reasonably often.
  int same = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (mix64(k) % 8 == mix64(k + 1) % 8) ++same;
  }
  EXPECT_LT(same, 300);  // ~125 expected for uniform
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  Buffer data;
  for (char c : std::string("123456789")) data.push_back(c);
  EXPECT_EQ(Crc32::of(data), 0xCBF43926u);
}

TEST(Crc32, DetectsCorruption) {
  Buffer data(100, 0x5a);
  auto good = Crc32::of(data);
  data[50] ^= 1;
  EXPECT_NE(Crc32::of(data), good);
}

TEST(Signal, CountingSemantics) {
  Signal s;
  s.notify();
  s.notify();
  s.wait();  // does not block: two signals buffered
  s.wait();
  EXPECT_FALSE(s.wait_for(std::chrono::milliseconds(5)));
}

TEST(Signal, CrossThreadHandshake) {
  Signal ready, resume;
  int stage = 0;
  std::thread peer([&] {
    ready.wait();
    stage = 1;
    resume.notify();
  });
  ready.notify();
  resume.wait();
  EXPECT_EQ(stage, 1);
  peer.join();
}

TEST(CountdownLatch, ReleasesAllWaiters) {
  CountdownLatch latch(3);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      latch.wait();
      released++;
    });
  }
  latch.count_down();
  latch.count_down();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(released.load(), 0);
  latch.count_down();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released.load(), 4);
}

TEST(WaitGroup, WaitsForAll) {
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.add(3);
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done++;
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(done.load(), 3);
  for (auto& t : workers) t.join();
}

}  // namespace
}  // namespace psmr::util
