// Unit tests for the SMR layer's building blocks: command marshaling,
// C-Dep, and the C-G functions of paper Section IV-C.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "kvstore/kv_service.h"
#include "smr/cdep.h"
#include "smr/cg.h"
#include "smr/command.h"
#include "util/rng.h"

namespace psmr::smr {
namespace {

using kvstore::encode_key;
using kvstore::encode_key_range;
using kvstore::encode_key_value;
using kvstore::encode_keys;
using kvstore::kKvDelete;
using kvstore::kKvInsert;
using kvstore::kKvMultiRead;
using kvstore::kKvRead;
using kvstore::kKvScan;
using kvstore::kKvUpdate;

Command make_cmd(CommandId id, util::Buffer params, ClientId client = 1,
                 Seq seq = 1) {
  Command c;
  c.cmd = id;
  c.client = client;
  c.seq = seq;
  c.reply_to = 99;
  c.params = std::move(params);
  return c;
}

TEST(Command, EncodeDecodeRoundTrip) {
  Command c = make_cmd(7, util::Buffer{1, 2, 3}, 42, 1000);
  c.groups = multicast::GroupSet::all(5);
  auto dec = Command::decode(c.encode());
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->cmd, 7);
  EXPECT_EQ(dec->client, 42u);
  EXPECT_EQ(dec->seq, 1000u);
  EXPECT_EQ(dec->reply_to, 99u);
  EXPECT_EQ(dec->groups, multicast::GroupSet::all(5));
  EXPECT_EQ(dec->params, (util::Buffer{1, 2, 3}));
}

TEST(Command, DecodeRejectsTruncatedAndTrailing) {
  Command c = make_cmd(7, util::Buffer{1, 2, 3});
  auto enc = c.encode();
  enc.pop_back();
  EXPECT_FALSE(Command::decode(enc).has_value());
  enc = c.encode();
  enc.push_back(0);
  EXPECT_FALSE(Command::decode(enc).has_value());
}

TEST(Response, EncodeDecodeRoundTrip) {
  Response r;
  r.client = 5;
  r.seq = 6;
  r.payload = {9, 9, 9};
  auto dec = Response::decode(r.encode());
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->client, 5u);
  EXPECT_EQ(dec->seq, 6u);
  EXPECT_EQ(dec->payload, (util::Buffer{9, 9, 9}));
}

TEST(CDep, AlwaysPairsAreSymmetric) {
  CDep dep;
  dep.always(1, 2);
  EXPECT_TRUE(dep.always_conflicts(1, 2));
  EXPECT_TRUE(dep.always_conflicts(2, 1));
  EXPECT_FALSE(dep.always_conflicts(1, 3));
}

TEST(CDep, SameKeyRequiresMatchingKeys) {
  CDep dep;
  dep.same_key(kKvUpdate, kKvRead);
  auto key_of = kvstore::kv_key_fn();
  Command u1 = make_cmd(kKvUpdate, encode_key_value(7, 1));
  Command r_same = make_cmd(kKvRead, encode_key(7));
  Command r_other = make_cmd(kKvRead, encode_key(8));
  EXPECT_TRUE(dep.conflicts(u1, r_same, key_of));
  EXPECT_FALSE(dep.conflicts(u1, r_other, key_of));
}

TEST(CDep, KvCdepMatchesPaperSectionVA) {
  CDep dep = kvstore::kv_cdep();
  auto key_of = kvstore::kv_key_fn();
  Command ins = make_cmd(kKvInsert, encode_key_value(1, 1));
  Command del = make_cmd(kKvDelete, encode_key(2));
  Command rd7 = make_cmd(kKvRead, encode_key(7));
  Command rd7b = make_cmd(kKvRead, encode_key(7), 2, 9);
  Command up7 = make_cmd(kKvUpdate, encode_key_value(7, 0));
  Command up8 = make_cmd(kKvUpdate, encode_key_value(8, 0));

  // Inserts and deletes depend on all commands, regardless of key.
  for (const auto* c : {&del, &rd7, &up7}) {
    EXPECT_TRUE(dep.conflicts(ins, *c, key_of));
    EXPECT_TRUE(dep.conflicts(del, *c, key_of));
  }
  // Two reads are always independent.
  EXPECT_FALSE(dep.conflicts(rd7, rd7b, key_of));
  // Update depends on read/update of the same key only.
  EXPECT_TRUE(dep.conflicts(up7, rd7, key_of));
  EXPECT_TRUE(dep.conflicts(up7, up7, key_of));
  EXPECT_FALSE(dep.conflicts(up7, up8, key_of));
  EXPECT_FALSE(dep.conflicts(up8, rd7, key_of));

  // The multi-key reads (scan, multi-read) depend on structure changes and
  // on every update, but not on reads or each other (PR 3 extension).
  Command scan = make_cmd(kKvScan, encode_key_range(0, 100));
  Command multi = make_cmd(kKvMultiRead, encode_keys({7, 8}));
  for (const auto* c : {&scan, &multi}) {
    EXPECT_TRUE(dep.conflicts(*c, ins, key_of));
    EXPECT_TRUE(dep.conflicts(*c, del, key_of));
    EXPECT_TRUE(dep.conflicts(*c, up7, key_of));
    EXPECT_FALSE(dep.conflicts(*c, rd7, key_of));
  }
  EXPECT_FALSE(dep.conflicts(scan, multi, key_of));
  EXPECT_FALSE(dep.conflicts(scan, scan, key_of));
}

TEST(CDep, VertexCoverPicksOnlyStructuralAndMultiKeyCommands) {
  // from_cdep must make insert/delete global but keep read/update keyed —
  // the paper's exact assignment.  Reads have ALWAYS edges (to insert and
  // delete) yet must NOT become global: the edge is covered by the other
  // endpoint.  The scan/multi-read vs update edges must likewise be covered
  // by the multi-key side: update is keyed by design, so the cover
  // heuristic sends the keyless endpoint to all groups.
  auto cg = kvstore::kv_keyed_cg(8);
  Command rd = make_cmd(kKvRead, encode_key(5));
  Command up = make_cmd(kKvUpdate, encode_key_value(5, 0));
  EXPECT_TRUE(cg->groups(rd).singleton());
  EXPECT_TRUE(cg->groups(up).singleton());
  Command scan = make_cmd(kKvScan, encode_key_range(1, 9));
  Command multi = make_cmd(kKvMultiRead, encode_keys({5}));
  EXPECT_EQ(cg->groups(scan), multicast::GroupSet::all(8));
  EXPECT_EQ(cg->groups(multi), multicast::GroupSet::all(8));
  CDep dep = kvstore::kv_cdep();
  EXPECT_TRUE(dep.has_always_edge(kKvRead));  // edge exists...
  // ins/del × 6 commands (minus the dup ins/del pair) + scan/multi × update.
  EXPECT_EQ(dep.always_pairs().size(), 13u);
  EXPECT_EQ(dep.same_key_degree(kKvUpdate), 2u);
  EXPECT_EQ(dep.same_key_degree(kKvScan), 0u);
}

TEST(KeyedCg, MatchesPaperSecondExample) {
  auto cg = kvstore::kv_keyed_cg(8);
  EXPECT_EQ(cg->mpl(), 8u);
  // insert/delete -> ALL groups.
  Command ins = make_cmd(kKvInsert, encode_key_value(3, 1));
  EXPECT_EQ(cg->groups(ins), multicast::GroupSet::all(8));
  Command del = make_cmd(kKvDelete, encode_key(3));
  EXPECT_EQ(cg->groups(del), multicast::GroupSet::all(8));
  // read/update on the same key -> the same single group.
  Command rd = make_cmd(kKvRead, encode_key(1234));
  Command up = make_cmd(kKvUpdate, encode_key_value(1234, 0), 7, 9);
  auto g1 = cg->groups(rd);
  auto g2 = cg->groups(up);
  EXPECT_TRUE(g1.singleton());
  EXPECT_EQ(g1, g2);
}

TEST(KeyedCg, DependentCommandsShareAGroup) {
  // The defining C-G property: any two dependent commands intersect.
  auto cg = kvstore::kv_keyed_cg(8);
  auto dep = kvstore::kv_cdep();
  auto key_of = kvstore::kv_key_fn();
  util::SplitMix64 rng(5);
  std::vector<Command> cmds;
  for (int i = 0; i < 200; ++i) {
    std::uint64_t k = rng.next_below(64);
    switch (rng.next_below(4)) {
      case 0: cmds.push_back(make_cmd(kKvInsert, encode_key_value(k, 0), 1, i)); break;
      case 1: cmds.push_back(make_cmd(kKvDelete, encode_key(k), 1, i)); break;
      case 2: cmds.push_back(make_cmd(kKvRead, encode_key(k), 1, i)); break;
      default: cmds.push_back(make_cmd(kKvUpdate, encode_key_value(k, 0), 1, i)); break;
    }
  }
  for (const auto& a : cmds) {
    for (const auto& b : cmds) {
      if (dep.conflicts(a, b, key_of)) {
        EXPECT_FALSE((cg->groups(a) & cg->groups(b)).empty())
            << "dependent commands with disjoint groups";
      }
    }
  }
}

TEST(KeyedCg, SpreadsKeysAcrossGroups) {
  auto cg = kvstore::kv_keyed_cg(8);
  std::set<std::uint64_t> groups_seen;
  for (std::uint64_t k = 0; k < 100; ++k) {
    Command rd = make_cmd(kKvRead, encode_key(k), 1, k);
    groups_seen.insert(cg->groups(rd).min());
  }
  EXPECT_EQ(groups_seen.size(), 8u);  // 100 keys cover all 8 groups
}

TEST(CoarseCg, MatchesPaperFirstExample) {
  auto cg = kvstore::kv_coarse_cg(4);
  Command rd = make_cmd(kKvRead, encode_key(1), 3, 17);
  auto g = cg->groups(rd);
  EXPECT_TRUE(g.singleton());
  EXPECT_EQ(cg->groups(rd), g);  // deterministic per command
  Command rd2 = make_cmd(kKvRead, encode_key(1), 3, 18);
  // Different invocations may hit different groups (pseudo-random spread);
  // updates always go everywhere.
  Command up = make_cmd(kKvUpdate, encode_key_value(1, 0));
  EXPECT_EQ(cg->groups(up), multicast::GroupSet::all(4));
  Command ins = make_cmd(kKvInsert, encode_key_value(1, 0));
  EXPECT_EQ(cg->groups(ins), multicast::GroupSet::all(4));
}

TEST(CoarseCg, ReadSpreadIsRoughlyUniform) {
  auto cg = kvstore::kv_coarse_cg(8);
  std::array<int, 8> counts{};
  for (Seq s = 0; s < 8000; ++s) {
    Command rd = make_cmd(kKvRead, encode_key(1), s % 100, s);
    counts[cg->groups(rd).min()]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(HotAwareCg, PinsHotKeysRoundRobin) {
  // Paper Section IV-D: known-hot objects assigned to distinct groups.
  std::vector<std::uint64_t> hot = {100, 200, 300, 400};
  HotAwareCg cg(4, kvstore::kv_key_fn(),
                {kvstore::kKvInsert, kvstore::kKvDelete}, hot);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    Command rd = make_cmd(kKvRead, encode_key(hot[i]), 1, i);
    EXPECT_EQ(cg.groups(rd),
              multicast::GroupSet::single(static_cast<std::uint32_t>(i % 4)));
  }
  // Cold keys behave like KeyedCg; global commands still go everywhere.
  KeyedCg keyed(4, kvstore::kv_key_fn(),
                {kvstore::kKvInsert, kvstore::kKvDelete});
  Command cold = make_cmd(kKvRead, encode_key(9999));
  EXPECT_EQ(cg.groups(cold), keyed.groups(cold));
  Command ins = make_cmd(kKvInsert, encode_key_value(100, 0));
  EXPECT_EQ(cg.groups(ins), multicast::GroupSet::all(4));
}

TEST(HotAwareCg, PreservesDependencyIntersection) {
  // Same hot key -> same group; hot-key update vs insert still intersect.
  std::vector<std::uint64_t> hot = {7};
  HotAwareCg cg(8, kvstore::kv_key_fn(),
                {kvstore::kKvInsert, kvstore::kKvDelete}, hot);
  Command rd = make_cmd(kKvRead, encode_key(7), 1, 1);
  Command up = make_cmd(kKvUpdate, encode_key_value(7, 0), 2, 2);
  EXPECT_EQ(cg.groups(rd), cg.groups(up));
  Command del = make_cmd(kKvDelete, encode_key(7));
  EXPECT_FALSE((cg.groups(rd) & cg.groups(del)).empty());
}

TEST(Cg, SingleGroupDegenerateCase) {
  // k = 1: every command maps to group 0 (the SMR configuration).
  auto cg = kvstore::kv_keyed_cg(1);
  Command ins = make_cmd(kKvInsert, encode_key_value(3, 1));
  Command rd = make_cmd(kKvRead, encode_key(9));
  EXPECT_EQ(cg->groups(ins), multicast::GroupSet::single(0));
  EXPECT_EQ(cg->groups(rd), multicast::GroupSet::single(0));
}

}  // namespace
}  // namespace psmr::smr
