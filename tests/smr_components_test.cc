// Component-level tests for the SMR layer: client proxy response handling,
// scheduler-core dispatch/drain behaviour, lock-server fan-out, and the
// P-SMR replica's duplicate suppression.
#include <gtest/gtest.h>

#include <thread>

#include "kvstore/kv_client.h"
#include "smr/lockserver.h"
#include "smr/runtime.h"
#include "smr/scheduler.h"

namespace psmr::smr {
namespace {

using kvstore::KvService;

// A service that records executions (for dedup/ordering assertions).
// Single-command shape: mounted through make_batched(), exercising the
// migration path the adapter exists for.
class RecordingService : public SequentialService {
 public:
  util::Buffer execute(const Command& cmd) override {
    std::lock_guard lock(mu_);
    executed_.emplace_back(cmd.client, cmd.seq);
    util::Writer w;
    w.u64(cmd.seq);
    return w.take();
  }
  [[nodiscard]] std::uint64_t state_digest() const override {
    std::lock_guard lock(mu_);
    return executed_.size();
  }
  [[nodiscard]] std::vector<std::pair<ClientId, Seq>> executed() const {
    std::lock_guard lock(mu_);
    return executed_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<ClientId, Seq>> executed_;
};

TEST(ClientProxy, AbsorbsDuplicateResponses) {
  // Two replicas answer every command; the proxy must return exactly one
  // completion per seq and swallow the second response.
  transport::Network net;
  auto [server, serverbox] = net.register_node();
  ClientProxy proxy(net, server, /*id=*/9);
  Seq seq = proxy.submit(1, util::Buffer{1}).value();

  // Fake two replica responses for the same seq.
  Response resp;
  resp.client = 9;
  resp.seq = seq;
  resp.payload = {42};
  net.send(server, proxy.node(), transport::MsgType::kSmrResponse,
           resp.encode());
  net.send(server, proxy.node(), transport::MsgType::kSmrResponse,
           resp.encode());

  auto first = proxy.poll(std::chrono::milliseconds(100));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, seq);
  EXPECT_EQ(first->payload, (util::Buffer{42}));
  EXPECT_EQ(proxy.outstanding(), 0u);
  auto second = proxy.poll(std::chrono::milliseconds(30));
  EXPECT_FALSE(second.has_value());  // duplicate absorbed
}

TEST(ClientProxy, IgnoresMalformedAndForeignResponses) {
  transport::Network net;
  auto [server, serverbox] = net.register_node();
  ClientProxy proxy(net, server, 9);
  Seq seq = proxy.submit(1, {}).value();

  net.send(server, proxy.node(), transport::MsgType::kSmrResponse,
           util::Buffer{1, 2});  // garbage
  Response foreign;
  foreign.client = 9;
  foreign.seq = seq + 1000;  // not outstanding
  net.send(server, proxy.node(), transport::MsgType::kSmrResponse,
           foreign.encode());
  EXPECT_FALSE(proxy.poll(std::chrono::milliseconds(30)).has_value());
  EXPECT_EQ(proxy.outstanding(), 1u);
}

TEST(ClientProxy, CallTimesOutCleanly) {
  transport::Network net;
  auto [server, serverbox] = net.register_node();  // never answers
  ClientProxy proxy(net, server, 9);
  auto result = proxy.call(1, {}, std::chrono::milliseconds(50),
                           std::chrono::milliseconds(20));
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(proxy.outstanding(), 0u);  // timed-out call cleaned up
}

Command make_cmd(CommandId id, ClientId client, Seq seq,
                 transport::NodeId reply_to, util::Buffer params) {
  Command c;
  c.cmd = id;
  c.client = client;
  c.seq = seq;
  c.reply_to = reply_to;
  c.params = std::move(params);
  return c;
}

TEST(SchedulerCore, DropsDuplicateSubmissions) {
  transport::Network net;
  auto svc = std::make_unique<RecordingService>();
  auto* svc_ptr = svc.get();
  SchedulerCore core(net, make_batched(std::move(svc)), kvstore::kv_keyed_cg(2),
                     2, "test");
  core.start();
  auto [me, mybox] = net.register_node();

  core.schedule(make_cmd(kvstore::kKvRead, 1, 1, me, kvstore::encode_key(0)));
  core.schedule(make_cmd(kvstore::kKvRead, 1, 1, me, kvstore::encode_key(0)));
  core.schedule(make_cmd(kvstore::kKvRead, 1, 2, me, kvstore::encode_key(0)));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (core.executed() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  core.stop();
  EXPECT_EQ(svc_ptr->executed().size(), 2u);  // duplicate seq 1 dropped
}

TEST(SchedulerCore, SerializedCommandRunsAlone) {
  // Dependent (multi-group) commands must never overlap independent ones:
  // drive keyed and global commands through and check the execution log
  // keeps every (client, seq) exactly once — the unsynchronized
  // RecordingService would lose entries under a data race (and TSan-level
  // interleaving bugs show up as digest mismatches in integration tests).
  transport::Network net;
  auto svc = std::make_unique<RecordingService>();
  auto* svc_ptr = svc.get();
  SchedulerCore core(net, make_batched(std::move(svc)), kvstore::kv_keyed_cg(4),
                     4, "test");
  core.start();
  auto [me, mybox] = net.register_node();

  Seq seq = 1;
  for (int round = 0; round < 50; ++round) {
    core.schedule(make_cmd(kvstore::kKvRead, 1, seq++, me,
                           kvstore::encode_key(round)));
    core.schedule(make_cmd(kvstore::kKvInsert, 1, seq++, me,
                           kvstore::encode_key_value(round, 1)));
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (core.executed() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  core.stop();
  auto log = svc_ptr->executed();
  ASSERT_EQ(log.size(), 100u);
  std::set<Seq> seqs;
  for (auto& [client, s] : log) EXPECT_TRUE(seqs.insert(s).second);
}

TEST(LockServer, RoutesClientsAcrossHandlers) {
  transport::Network net;
  auto svc = std::make_shared<LockedService>(
      std::make_unique<KvService>(100));
  LockServer server(net, svc, 3);
  server.start();
  EXPECT_EQ(server.num_threads(), 3u);
  EXPECT_NE(server.handler_node(0), server.handler_node(1));

  ClientProxy c0(net, server.handler_node(0), 1);
  ClientProxy c1(net, server.handler_node(1), 2);
  auto r0 = c0.call(kvstore::kKvRead, kvstore::encode_key(5),
                    std::chrono::seconds(2));
  auto r1 = c1.call(kvstore::kKvUpdate, kvstore::encode_key_value(5, 99),
                    std::chrono::seconds(2));
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(kvstore::decode_result(*r0).value, 5u);
  EXPECT_EQ(server.executed(), 2u);
  server.stop();
}

TEST(PsmrReplica, ReplaysResponseForRetransmittedCommand) {
  // A client retry of an already-executed command must get the cached
  // response without double execution (exactly-once despite at-least-once
  // delivery during failover windows).
  transport::Network net;
  multicast::BusConfig bus_cfg;
  bus_cfg.num_groups = 2;
  bus_cfg.ring.batch_timeout = std::chrono::microseconds(300);
  bus_cfg.ring.skip_interval = std::chrono::microseconds(1000);
  multicast::Bus bus(net, bus_cfg);
  auto svc = std::make_unique<RecordingService>();
  auto* svc_ptr = svc.get();
  PsmrReplica replica(net, bus, make_batched(std::move(svc)), 2);
  bus.start();
  replica.start();

  auto [me, mybox] = net.register_node();
  Command c = make_cmd(1, /*client=*/5, /*seq=*/1, me, {});
  c.groups = multicast::GroupSet::single(0);
  bus.multicast(me, c.groups, c.encode());
  bus.multicast(me, c.groups, c.encode());  // retransmission

  int responses = 0;
  for (int i = 0; i < 2; ++i) {
    auto msg = mybox->pop_for(std::chrono::seconds(2));
    if (!msg) break;
    auto resp = Response::decode(msg->payload);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->seq, 1u);
    ++responses;
  }
  EXPECT_EQ(responses, 2);                      // both submissions answered
  EXPECT_EQ(svc_ptr->executed().size(), 1u);    // but executed once
  EXPECT_EQ(replica.executed(), 1u);
  replica.stop();
  bus.stop();
  net.shutdown();
}

TEST(Deployment, RejectsMissingFactories) {
  DeploymentConfig cfg;
  cfg.mode = Mode::kPsmr;
  EXPECT_THROW(Deployment{std::move(cfg)}, std::invalid_argument);
}

TEST(Deployment, MismatchedMplRejected) {
  transport::Network net;
  multicast::BusConfig bus_cfg;
  bus_cfg.num_groups = 4;
  multicast::Bus bus(net, bus_cfg);
  EXPECT_THROW(PsmrReplica(net, bus, std::make_unique<KvService>(), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace psmr::smr
