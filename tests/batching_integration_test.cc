// Batching integration suite: throughput-visible effects of adaptive
// batching and submit coalescing on a multi-ring bus, asserted through
// CoordinatorStats rather than wall-clock throughput, plus the safety
// property that must survive any batching policy — identical merged
// delivery sequences at every learner of a group.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "multicast/amcast.h"
#include "test_support.h"
#include "transport/network.h"
#include "util/rng.h"

namespace psmr::multicast {
namespace {

using transport::Network;

util::Buffer msg(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

std::uint64_t msg_id(std::span<const std::uint8_t> b) {
  util::Reader r(b);
  return r.u64();
}

// Runs a paced open-loop workload against a 4-group bus: one submitter
// thread per group sending `per_group` singleton commands with `gap`
// between sends.  Returns the aggregate worker-ring stats once everything
// was delivered.
paxos::CoordinatorStats run_paced_mpl4(const paxos::RingConfig& ring,
                                       std::uint64_t per_group,
                                       std::chrono::microseconds gap) {
  constexpr std::size_t kGroups = 4;
  Network net;
  BusConfig cfg;
  cfg.num_groups = kGroups;
  cfg.ring = ring;
  Bus bus(net, cfg);
  std::vector<std::unique_ptr<MergeDeliverer>> subs;
  for (GroupId g = 0; g < kGroups; ++g) subs.push_back(bus.subscribe(g));
  bus.start();

  test_support::run_threads(static_cast<int>(kGroups), [&](int g) {
    auto [node, box] = net.register_node();
    for (std::uint64_t i = 0; i < per_group; ++i) {
      ASSERT_TRUE(bus.multicast(
          node, GroupSet::single(static_cast<GroupId>(g)), msg(i)));
      std::this_thread::sleep_for(gap);
    }
  });

  // Drain every group so all submitted commands are decided and counted.
  for (auto& sub : subs) {
    for (std::uint64_t i = 0; i < per_group; ++i) {
      auto d = sub->next();
      if (!d) {
        ADD_FAILURE() << "delivery stalled after " << i << " messages";
        break;
      }
    }
  }

  paxos::CoordinatorStats total;
  for (GroupId g = 0; g < kGroups; ++g) total += bus.ring_stats(g);
  bus.stop();
  net.shutdown();
  return total;
}

TEST(AdaptiveBatchingIntegration, HigherOccupancyThanFixedTimeoutAtMpl4) {
  // The acceptance check for the adaptive batcher, mirroring
  // bench_micro_multicast's paced mpl-4 scenario: identical paced traffic
  // through 4 worker rings, once with the fixed 150us timeout and once
  // adaptive within [100us, 8ms].  The trickle (one command per ring every
  // ~300us) never fills a batch, so the fixed batcher seals near-singleton
  // batches while the adaptive one stretches its timeout and coalesces
  // many commands per consensus instance.
  constexpr std::uint64_t kPerGroup = 300;
  const auto kGap = std::chrono::microseconds(300);

  paxos::RingConfig fixed = test_support::fast_ring();
  fixed.batch_timeout = std::chrono::microseconds(150);

  paxos::RingConfig adaptive = fixed;
  adaptive.adaptive_batching = true;
  adaptive.min_batch_timeout = std::chrono::microseconds(100);
  adaptive.max_batch_timeout = std::chrono::microseconds(8000);

  auto fixed_stats = run_paced_mpl4(fixed, kPerGroup, kGap);
  auto adaptive_stats = run_paced_mpl4(adaptive, kPerGroup, kGap);

  ASSERT_EQ(fixed_stats.sealed_commands, 4 * kPerGroup);
  ASSERT_EQ(adaptive_stats.sealed_commands, 4 * kPerGroup);
  ASSERT_GT(fixed_stats.sealed_batches, 0u);
  ASSERT_GT(adaptive_stats.sealed_batches, 0u);

  // The adaptive timeout must actually have stretched...
  EXPECT_GT(adaptive_stats.timeout_grows, 0u);
  EXPECT_GT(adaptive_stats.batch_timeout_us, 150u);
  EXPECT_LE(adaptive_stats.batch_timeout_us, 8000u);
  // ...and the paced trickle must seal on timeouts, not caps.
  EXPECT_GT(adaptive_stats.sealed_on_timeout, 0u);

  // The headline: mean commands per sealed batch.  The gap is generous (2x)
  // so host scheduling noise cannot flip the comparison; in practice the
  // ratio is far larger.
  EXPECT_GE(adaptive_stats.mean_commands_per_batch(),
            2.0 * fixed_stats.mean_commands_per_batch())
      << "adaptive " << adaptive_stats.mean_commands_per_batch()
      << " cmds/batch vs fixed " << fixed_stats.mean_commands_per_batch();
}

TEST(BatchingPropertyIntegration, SkewedRatesDeliverIdenticalSequences) {
  // Property test (batching + skew): with adaptive batching on and heavily
  // skewed per-ring rates, every learner of a group — think the same worker
  // thread on different replicas — must deliver the identical merged
  // sequence of singleton and g_all traffic.  Batching policy may change
  // *batch boundaries* but never the delivered order.
  constexpr std::size_t kGroups = 4;
  constexpr int kSubscribersPerGroup = 2;  // "two replicas"
  const std::uint64_t seed = test_support::logged_seed(13);

  Network net;
  BusConfig cfg;
  cfg.num_groups = kGroups;
  cfg.ring = test_support::batching_ring();
  Bus bus(net, cfg);

  // subs[g][r]: subscriber r of group g.
  std::vector<std::vector<std::unique_ptr<MergeDeliverer>>> subs(kGroups);
  for (GroupId g = 0; g < kGroups; ++g) {
    for (int r = 0; r < kSubscribersPerGroup; ++r) {
      subs[g].push_back(bus.subscribe(g));
    }
  }
  bus.start();

  // Skewed rates: group g sends with a pacing gap proportional to 4^g, so
  // ring 0 floods while ring 3 trickles; every thread also sprinkles in
  // g_all commands that must serialize identically everywhere.
  constexpr std::uint64_t kPerGroup = 120;
  std::vector<std::uint64_t> shared_sent_per_group(kGroups, 0);
  test_support::run_threads(static_cast<int>(kGroups), [&](int g) {
    auto [node, box] = net.register_node();
    util::SplitMix64 rng(seed + static_cast<std::uint64_t>(g));
    const auto gap = std::chrono::microseconds(20u << (2 * g));
    std::uint64_t shared_sent = 0;
    for (std::uint64_t i = 0; i < kPerGroup; ++i) {
      const std::uint64_t id =
          (static_cast<std::uint64_t>(g) << 32) | i;
      if (rng.next_below(8) == 0) {
        ASSERT_TRUE(bus.multicast(node, GroupSet::all(kGroups),
                                  msg((1ull << 63) | id)));
        ++shared_sent;
      } else {
        ASSERT_TRUE(bus.multicast(
            node, GroupSet::single(static_cast<GroupId>(g)), msg(id)));
      }
      std::this_thread::sleep_for(gap);
    }
    shared_sent_per_group[static_cast<std::size_t>(g)] = shared_sent;
  });

  std::uint64_t total_shared = 0;
  for (auto n : shared_sent_per_group) total_shared += n;

  // Every subscriber of group g must deliver: all of g's singleton traffic
  // plus every shared command, in one deterministic interleaving.
  for (GroupId g = 0; g < kGroups; ++g) {
    const std::uint64_t singles =
        kPerGroup - shared_sent_per_group[g];
    const std::uint64_t want = singles + total_shared;
    std::vector<std::vector<std::uint64_t>> seqs(kSubscribersPerGroup);
    for (int r = 0; r < kSubscribersPerGroup; ++r) {
      for (std::uint64_t i = 0; i < want; ++i) {
        auto d = subs[g][static_cast<std::size_t>(r)]->next();
        ASSERT_TRUE(d.has_value())
            << "group " << g << " subscriber " << r << " stalled at " << i;
        seqs[static_cast<std::size_t>(r)].push_back(msg_id(d->message));
      }
    }
    EXPECT_EQ(seqs[0], seqs[1]) << "divergent delivery in group " << g;
  }

  // Sanity: the skewed trickle rings really did run adaptive timeouts.
  paxos::CoordinatorStats total;
  for (GroupId g = 0; g < kGroups; ++g) total += bus.ring_stats(g);
  total += bus.shared_ring_stats();
  EXPECT_EQ(total.sealed_commands, kGroups * kPerGroup);
  EXPECT_GT(total.timeout_grows + total.timeout_shrinks, 0u);

  bus.stop();
  net.shutdown();
}

}  // namespace
}  // namespace psmr::multicast
