#include "kvstore/concurrent_bptree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "test_support.h"
#include "util/rng.h"

namespace psmr::kvstore {
namespace {

TEST(ConcurrentBPlusTree, SingleThreadBasics) {
  ConcurrentBPlusTree t;
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 11));
  EXPECT_EQ(t.find(1).value(), 10u);
  EXPECT_TRUE(t.update(1, 12));
  EXPECT_EQ(t.find(1).value(), 12u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(ConcurrentBPlusTree, SingleThreadMatchesReference) {
  util::SplitMix64 rng(17);
  ConcurrentBPlusTree t;
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    std::uint64_t k = rng.next_below(1500);
    switch (rng.next_below(4)) {
      case 0: {
        std::uint64_t v = rng.next();
        ASSERT_EQ(t.insert(k, v), ref.emplace(k, v).second);
        break;
      }
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2: {
        auto v = t.find(k);
        auto it = ref.find(k);
        ASSERT_EQ(v.has_value(), it != ref.end());
        if (v) { ASSERT_EQ(*v, it->second); }
        break;
      }
      case 3: {
        std::uint64_t v = rng.next();
        auto it = ref.find(k);
        ASSERT_EQ(t.update(k, v), it != ref.end());
        if (it != ref.end()) it->second = v;
        break;
      }
    }
    if (step % 2500 == 0) { ASSERT_TRUE(t.validate()); }
  }
  ASSERT_TRUE(t.validate());
  ASSERT_EQ(t.size(), ref.size());
}

TEST(ConcurrentBPlusTree, ParallelReadersDuringWrites) {
  ConcurrentBPlusTree t;
  constexpr std::uint64_t kKeys = 20000;
  for (std::uint64_t k = 0; k < kKeys; k += 2) t.insert(k, k);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      util::SplitMix64 rng(1000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t k = rng.next_below(kKeys);
        auto v = t.find(k);
        if (v) {
          // A present value is always the key itself in this test.
          EXPECT_EQ(*v, k);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer inserts the odd keys and deletes half the even ones.
  for (std::uint64_t k = 1; k < kKeys; k += 2) ASSERT_TRUE(t.insert(k, k));
  for (std::uint64_t k = 0; k < kKeys; k += 4) ASSERT_TRUE(t.erase(k));
  // On a small host the writer can finish before the readers were ever
  // scheduled; keep the tree live until every reader made progress.
  while (reads.load(std::memory_order_relaxed) < 100) std::this_thread::yield();
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), kKeys / 2 + kKeys / 4);
}

TEST(ConcurrentBPlusTree, ConcurrentDisjointWriters) {
  ConcurrentBPlusTree t;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 8000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      std::uint64_t base = static_cast<std::uint64_t>(w) * 1'000'000;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(t.insert(base + i, base + i));
      }
      for (std::uint64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(t.erase(base + i));
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(t.size(), kThreads * kPerThread / 2);
  EXPECT_TRUE(t.validate());
  for (int w = 0; w < kThreads; ++w) {
    std::uint64_t base = static_cast<std::uint64_t>(w) * 1'000'000;
    EXPECT_FALSE(t.find(base).has_value());
    EXPECT_EQ(t.find(base + 1).value(), base + 1);
  }
}

TEST(ConcurrentBPlusTree, MixedChaos) {
  // All four operations from several threads on overlapping key ranges;
  // afterwards the structure must validate and contain only sane values.
  ConcurrentBPlusTree t;
  constexpr std::uint64_t kSpace = 4096;
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      util::SplitMix64 rng(31 + w);
      for (int step = 0; step < 30000; ++step) {
        std::uint64_t k = rng.next_below(kSpace);
        switch (rng.next_below(4)) {
          case 0:
            t.insert(k, k * 2);
            break;
          case 1:
            t.erase(k);
            break;
          case 2: {
            auto v = t.find(k);
            if (v) { EXPECT_EQ(*v, k * 2); }
            break;
          }
          case 3:
            t.update(k, k * 2);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(t.validate());
  t.for_each([](std::uint64_t k, std::uint64_t v) { EXPECT_EQ(v, k * 2); });
}

TEST(ConcurrentBPlusTree, RangeScanDuringMutations) {
  // Scanners walk [0, kSpace] with the re-descending leaf-chain scan while
  // writers churn the structure.  Each observed leaf is atomic, so scans
  // must always see strictly ascending keys with in-protocol values, and
  // every key outside the writers' churn range must be present exactly
  // once.
  ConcurrentBPlusTree t;
  constexpr std::uint64_t kSpace = 30'000;
  constexpr std::uint64_t kStableStride = 3;  // keys 0,3,6,... never change
  for (std::uint64_t k = 0; k < kSpace; k += kStableStride) t.insert(k, k);
  const std::size_t stable_count = t.size();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};
  test_support::run_threads(4, [&](int who) {
    if (who == 0) {
      // Writer: churn the non-stable keys.
      util::SplitMix64 rng(test_support::test_seed(77));
      for (int round = 0; round < 40'000; ++round) {
        std::uint64_t k = rng.next_below(kSpace);
        if (k % kStableStride == 0) continue;
        switch (rng.next_below(3)) {
          case 0: t.insert(k, k); break;
          case 1: t.erase(k); break;
          default: t.update(k, k); break;
        }
      }
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    // Scanners.  Each completes at least one full scan even if the writer
    // finishes first (single-core hosts): the last pass then also covers
    // the post-quiesce tree.
    util::SplitMix64 rng(test_support::test_seed(900 + who));
    bool first_pass = true;
    while (first_pass || !stop.load(std::memory_order_relaxed)) {
      first_pass = false;
      std::uint64_t prev = 0;
      bool first = true;
      std::size_t stable_seen = 0;
      std::uint64_t lo = rng.next_below(kSpace / 2);
      t.range_scan(lo, kSpace, [&](std::uint64_t k, std::uint64_t v) {
        if (!first) {
          EXPECT_LT(prev, k);  // strictly ascending across leaf hops
        }
        first = false;
        prev = k;
        EXPECT_EQ(v, k);  // all writers use value == key
        if (k % kStableStride == 0) ++stable_seen;
      });
      // Stable keys in [lo, kSpace] are never touched: the scan must see
      // every one of them (keys below the first stable >= lo excluded).
      std::uint64_t first_stable =
          (lo + kStableStride - 1) / kStableStride * kStableStride;
      std::size_t expect_stable =
          first_stable < kSpace
              ? (kSpace - 1 - first_stable) / kStableStride + 1
              : 0;
      EXPECT_EQ(stable_seen, expect_stable) << "lo=" << lo;
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_GT(scans.load(), 0u);
  EXPECT_TRUE(t.validate());
  EXPECT_GE(t.size(), stable_count);
}

TEST(ConcurrentBPlusTree, StressDigestConvergesAcrossInterleavings) {
  // The ISSUE 3 stress: the same commutative workload — disjoint per-thread
  // insert/erase ranges plus idempotent updates and concurrent readers
  // exercising the prefetching descent — must leave the tree with the same
  // digest regardless of scheduling.  Three rounds with rotated partitions
  // are each compared against a sequentially built reference.
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kPerWriter = 12'000;
  const std::uint64_t seed = test_support::logged_seed(4242);

  auto reference_digest = [&] {
    ConcurrentBPlusTree ref;
    for (int w = 0; w < kWriters; ++w) {
      std::uint64_t base = static_cast<std::uint64_t>(w) << 32;
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        ref.insert(base + i, base + i);
      }
      for (std::uint64_t i = 0; i < kPerWriter; i += 2) ref.erase(base + i);
      for (std::uint64_t i = 1; i < kPerWriter; i += 2) {
        ref.update(base + i, (base + i) * 7);
      }
    }
    return ref.digest();
  }();

  for (int round = 0; round < 3; ++round) {
    ConcurrentBPlusTree t;
    test_support::Barrier barrier(kWriters + kReaders);
    std::atomic<bool> done{false};
    test_support::run_threads(kWriters + kReaders, [&](int who) {
      barrier.arrive_and_wait();  // maximize overlap
      if (who >= kWriters) {
        // Readers hammer random keys (and batchy scans) while the
        // structure changes under them.
        util::SplitMix64 rng(seed + static_cast<std::uint64_t>(who));
        while (!done.load(std::memory_order_relaxed)) {
          std::uint64_t w = rng.next_below(kWriters);
          std::uint64_t k = (w << 32) + rng.next_below(kPerWriter);
          auto v = t.find(k);
          if (v) {
            // In-protocol values only: k (pre-update) or 7k (post-update).
            EXPECT_TRUE(*v == k || *v == k * 7) << "key " << k;
          }
        }
        return;
      }
      // Writers: partition rotates per round so interleavings differ.
      int part = (who + round) % kWriters;
      std::uint64_t base = static_cast<std::uint64_t>(part) << 32;
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        ASSERT_TRUE(t.insert(base + i, base + i));
      }
      for (std::uint64_t i = 0; i < kPerWriter; i += 2) {
        ASSERT_TRUE(t.erase(base + i));
      }
      for (std::uint64_t i = 1; i < kPerWriter; i += 2) {
        ASSERT_TRUE(t.update(base + i, (base + i) * 7));
      }
      if (who == 0) done.store(true, std::memory_order_relaxed);
    });
    done = true;
    ASSERT_TRUE(t.validate()) << "round " << round;
    EXPECT_EQ(t.digest(), reference_digest) << "round " << round;
  }
}

}  // namespace
}  // namespace psmr::kvstore
