#include "kvstore/concurrent_bptree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace psmr::kvstore {
namespace {

TEST(ConcurrentBPlusTree, SingleThreadBasics) {
  ConcurrentBPlusTree t;
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 11));
  EXPECT_EQ(t.find(1).value(), 10u);
  EXPECT_TRUE(t.update(1, 12));
  EXPECT_EQ(t.find(1).value(), 12u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(ConcurrentBPlusTree, SingleThreadMatchesReference) {
  util::SplitMix64 rng(17);
  ConcurrentBPlusTree t;
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    std::uint64_t k = rng.next_below(1500);
    switch (rng.next_below(4)) {
      case 0: {
        std::uint64_t v = rng.next();
        ASSERT_EQ(t.insert(k, v), ref.emplace(k, v).second);
        break;
      }
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2: {
        auto v = t.find(k);
        auto it = ref.find(k);
        ASSERT_EQ(v.has_value(), it != ref.end());
        if (v) { ASSERT_EQ(*v, it->second); }
        break;
      }
      case 3: {
        std::uint64_t v = rng.next();
        auto it = ref.find(k);
        ASSERT_EQ(t.update(k, v), it != ref.end());
        if (it != ref.end()) it->second = v;
        break;
      }
    }
    if (step % 2500 == 0) { ASSERT_TRUE(t.validate()); }
  }
  ASSERT_TRUE(t.validate());
  ASSERT_EQ(t.size(), ref.size());
}

TEST(ConcurrentBPlusTree, ParallelReadersDuringWrites) {
  ConcurrentBPlusTree t;
  constexpr std::uint64_t kKeys = 20000;
  for (std::uint64_t k = 0; k < kKeys; k += 2) t.insert(k, k);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      util::SplitMix64 rng(1000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t k = rng.next_below(kKeys);
        auto v = t.find(k);
        if (v) {
          // A present value is always the key itself in this test.
          EXPECT_EQ(*v, k);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer inserts the odd keys and deletes half the even ones.
  for (std::uint64_t k = 1; k < kKeys; k += 2) ASSERT_TRUE(t.insert(k, k));
  for (std::uint64_t k = 0; k < kKeys; k += 4) ASSERT_TRUE(t.erase(k));
  // On a small host the writer can finish before the readers were ever
  // scheduled; keep the tree live until every reader made progress.
  while (reads.load(std::memory_order_relaxed) < 100) std::this_thread::yield();
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), kKeys / 2 + kKeys / 4);
}

TEST(ConcurrentBPlusTree, ConcurrentDisjointWriters) {
  ConcurrentBPlusTree t;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 8000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      std::uint64_t base = static_cast<std::uint64_t>(w) * 1'000'000;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(t.insert(base + i, base + i));
      }
      for (std::uint64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(t.erase(base + i));
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(t.size(), kThreads * kPerThread / 2);
  EXPECT_TRUE(t.validate());
  for (int w = 0; w < kThreads; ++w) {
    std::uint64_t base = static_cast<std::uint64_t>(w) * 1'000'000;
    EXPECT_FALSE(t.find(base).has_value());
    EXPECT_EQ(t.find(base + 1).value(), base + 1);
  }
}

TEST(ConcurrentBPlusTree, MixedChaos) {
  // All four operations from several threads on overlapping key ranges;
  // afterwards the structure must validate and contain only sane values.
  ConcurrentBPlusTree t;
  constexpr std::uint64_t kSpace = 4096;
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      util::SplitMix64 rng(31 + w);
      for (int step = 0; step < 30000; ++step) {
        std::uint64_t k = rng.next_below(kSpace);
        switch (rng.next_below(4)) {
          case 0:
            t.insert(k, k * 2);
            break;
          case 1:
            t.erase(k);
            break;
          case 2: {
            auto v = t.find(k);
            if (v) { EXPECT_EQ(*v, k * 2); }
            break;
          }
          case 3:
            t.update(k, k * 2);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(t.validate());
  t.for_each([](std::uint64_t k, std::uint64_t v) { EXPECT_EQ(v, k * 2); });
}

}  // namespace
}  // namespace psmr::kvstore
