// Fault-tolerance sweep: quorum arithmetic with larger acceptor sets,
// acceptor crashes mid-stream, combined drop+crash conditions, and
// merge determinism under randomized traffic at several group counts.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "multicast/amcast.h"
#include "test_support.h"
#include "transport/network.h"

namespace psmr {
namespace {

using paxos::Ring;
using paxos::RingConfig;
using test_support::fault_ring;
using transport::Network;

util::Buffer cmd(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

std::uint64_t cmd_id(std::span<const std::uint8_t> b) {
  return util::Reader(b).u64();
}

// Drains until `want` commands (in order) or failure.
void expect_sequence(paxos::LearnerLog& log, std::uint64_t from,
                     std::uint64_t to) {
  std::uint64_t expect = from;
  while (expect < to) {
    auto d = log.next_for(std::chrono::seconds(10));
    ASSERT_TRUE(d.has_value()) << "stalled at " << expect;
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      ASSERT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }
}

class AcceptorFailures : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AcceptorFailures, ToleratesMinorityCrashes) {
  // n acceptors tolerate floor((n-1)/2) crashes.
  const std::size_t n = GetParam();
  const std::size_t f = (n - 1) / 2;
  Network net;
  Ring ring(net, 0, fault_ring(n));
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 50; ++i) ring.submit(me, cmd(i));
  expect_sequence(*learner, 0, 50);

  // Crash a minority, one at a time, continuing to order in between.
  for (std::size_t crash = 0; crash < f; ++crash) {
    net.disconnect(ring.acceptor_ids()[crash]);
    std::uint64_t base = 50 + crash * 50;
    for (std::uint64_t i = base; i < base + 50; ++i) ring.submit(me, cmd(i));
    expect_sequence(*learner, base, base + 50);
  }
}

INSTANTIATE_TEST_SUITE_P(Quorums, AcceptorFailures,
                         ::testing::Values(3, 5, 7),
                         [](const auto& info) {
                           return "acceptors" +
                                  std::to_string(info.param);
                         });

TEST(FaultTolerance, MajorityCrashStallsThenRecoveryResumes) {
  Network net;
  Ring ring(net, 0, fault_ring(3));
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 20; ++i) ring.submit(me, cmd(i));
  expect_sequence(*learner, 0, 20);

  // Crash 2 of 3 acceptors: no quorum, the ring must stall (safety).
  net.disconnect(ring.acceptor_ids()[0]);
  net.disconnect(ring.acceptor_ids()[1]);
  for (std::uint64_t i = 20; i < 30; ++i) ring.submit(me, cmd(i));
  auto stalled = learner->next_for(std::chrono::milliseconds(150));
  while (stalled && stalled->batch.skip) {
    stalled = learner->next_for(std::chrono::milliseconds(150));
  }
  EXPECT_FALSE(stalled.has_value()) << "ordered without a quorum";

  // Reconnect one: quorum restored, retransmissions finish the job.
  net.reconnect(ring.acceptor_ids()[0]);
  expect_sequence(*learner, 20, 30);
}

TEST(FaultTolerance, DropsPlusAcceptorCrash) {
  Network net;
  Ring ring(net, 0, fault_ring(3));
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  net.disconnect(ring.acceptor_ids()[2]);
  net.set_drop_probability(0.05);

  std::set<std::uint64_t> got;
  for (int attempt = 0; attempt < 60 && got.size() < 60; ++attempt) {
    for (std::uint64_t i = 0; i < 60; ++i) {
      if (!got.contains(i)) ring.submit(me, cmd(i));
    }
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < deadline && got.size() < 60) {
      auto d = learner->next_for(std::chrono::milliseconds(50));
      if (!d || d->batch.skip) continue;
      for (const auto& c : d->batch.commands) got.insert(cmd_id(c));
    }
  }
  EXPECT_EQ(got.size(), 60u);
}

// Merge determinism property, parameterized over group counts: randomized
// singleton/all-group traffic; every pair of same-group subscribers must
// observe identical merged streams.
class MergeDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeDeterminism, SameGroupStreamsIdentical) {
  const std::size_t k = GetParam();
  Network net;
  multicast::BusConfig cfg;
  cfg.num_groups = k;
  cfg.ring.batch_timeout = std::chrono::microseconds(300);
  cfg.ring.skip_interval = std::chrono::microseconds(500);
  multicast::Bus bus(net, cfg);

  // Two replicas' worth of subscribers for every group.
  std::vector<std::unique_ptr<multicast::MergeDeliverer>> replica_a;
  std::vector<std::unique_ptr<multicast::MergeDeliverer>> replica_b;
  for (std::size_t g = 0; g < k; ++g) {
    replica_a.push_back(bus.subscribe(static_cast<multicast::GroupId>(g)));
    replica_b.push_back(bus.subscribe(static_cast<multicast::GroupId>(g)));
  }
  bus.start();
  auto [me, mybox] = net.register_node();

  util::SplitMix64 rng(test_support::logged_seed(k * 1000 + 7));
  std::vector<std::size_t> per_group(k, 0);
  std::size_t shared = 0;
  constexpr std::size_t kMessages = 400;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    if (rng.chance(0.2)) {
      bus.multicast(me, multicast::GroupSet::all(k), cmd(i));
      ++shared;
    } else {
      auto g = static_cast<multicast::GroupId>(rng.next_below(k));
      bus.multicast(me, multicast::GroupSet::single(g), cmd(i));
      ++per_group[g];
    }
  }

  for (std::size_t g = 0; g < k; ++g) {
    std::size_t want = per_group[g] + shared;
    std::vector<std::pair<std::size_t, std::uint64_t>> sa, sb;
    while (sa.size() < want) {
      auto d = replica_a[g]->next();
      ASSERT_TRUE(d.has_value());
      sa.emplace_back(d->stream, cmd_id(d->message));
    }
    while (sb.size() < want) {
      auto d = replica_b[g]->next();
      ASSERT_TRUE(d.has_value());
      sb.emplace_back(d->stream, cmd_id(d->message));
    }
    EXPECT_EQ(sa, sb) << "replicas diverged on group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, MergeDeterminism,
                         ::testing::Values(2, 4, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace psmr
