#include "util/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace psmr::util {
namespace {

TEST(BlockingQueue, FifoSingleThread) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(BlockingQueue, PopUnblocksOnClose) {
  BlockingQueue<int> q;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
  });
  EXPECT_FALSE(q.pop().has_value());
  closer.join();
}

TEST(BlockingQueue, BoundedBlocksProducer) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(3);  // blocks until a pop frees space
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BlockingQueue, MpmcAllItemsDeliveredExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BlockingQueue<int> q;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard lock(mu);
        EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace psmr::util
