// Coverage for the closed-loop workload driver (src/workload/driver.*):
// windowed rate control, key-distribution sampling, accounting, and clean
// shutdown (drained proxies, joined threads, reusable deployment).
#include <gtest/gtest.h>

#include <map>

#include "test_support.h"
#include "util/rng.h"
#include "workload/driver.h"

namespace psmr::workload {
namespace {

KvWorkloadSpec quick_spec(std::uint64_t keys) {
  KvWorkloadSpec spec;
  spec.clients = 2;
  spec.window = 8;
  spec.warmup_s = 0.05;
  spec.duration_s = 0.25;
  spec.keys = keys;
  spec.seed = test_support::test_seed(42);
  return spec;
}

TEST(WorkloadDriver, ClosedLoopCompletesAndAccounts) {
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/256);
  auto spec = quick_spec(256);
  auto res = run_kv_workload(cluster.deployment(), spec);

  EXPECT_GT(res.completed, 0u);
  EXPECT_GT(res.kcps, 0.0);
  EXPECT_GT(res.avg_latency_us, 0.0);
  EXPECT_GE(res.p99_latency_us, res.avg_latency_us);
  // Percentiles populate and are ordered.
  EXPECT_GT(res.p50_latency_us, 0.0);
  EXPECT_LE(res.p50_latency_us, res.p95_latency_us);
  EXPECT_LE(res.p95_latency_us, res.p99_latency_us);
  // The histogram holds exactly the completions counted in the window.
  EXPECT_EQ(res.latency.count(), res.completed);
  // Reply-path counters observed the measured interval's responses.
  EXPECT_GT(res.response.wire_messages, 0u);
  EXPECT_GE(res.response.responses, res.response.wire_messages);
  // Every measured completion was really executed by the replicas.
  for (std::size_t i = 0; i < cluster->num_services(); ++i) {
    EXPECT_GE(cluster->executed(i), res.completed);
  }
}

TEST(WorkloadDriver, WindowBoundsOutstandingCommands) {
  // Rate control: a closed loop with c clients and window w keeps at most
  // c*w commands outstanding, so by Little's law measured throughput can't
  // exceed outstanding / avg_latency.
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/128);
  auto spec = quick_spec(128);
  spec.clients = 2;
  spec.window = 4;
  auto res = run_kv_workload(cluster.deployment(), spec);
  ASSERT_GT(res.completed, 0u);
  double outstanding_bound = static_cast<double>(spec.clients * spec.window);
  double little = res.kcps * 1e3 * (res.avg_latency_us / 1e6);
  EXPECT_LE(little, outstanding_bound * 1.25);  // 25% timing slack
}

TEST(WorkloadDriver, MixedWorkloadKeepsReplicasConverged) {
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/128);
  auto spec = quick_spec(128);
  spec.mix.read_pct = 50;
  spec.mix.update_pct = 30;
  spec.mix.insert_pct = 10;
  spec.mix.delete_pct = 10;
  auto res = run_kv_workload(cluster.deployment(), spec);
  EXPECT_GT(res.completed, 0u);
  // run_kv_workload drains every proxy before returning; once the slower
  // replica catches up to the faster one, the digests must match.
  auto executed0 = cluster->executed(0);
  test_support::wait_executed(cluster.deployment(), executed0);
  EXPECT_EQ(cluster->state_digest(0), cluster->state_digest(1));
}

TEST(WorkloadDriver, ZipfSamplingIsSkewedAndInRange) {
  // The driver's key selection uses util::Zipf; rank 0 must dominate and
  // every sample must stay inside the key space.
  util::SplitMix64 rng(test_support::test_seed(42));
  constexpr std::uint64_t kKeys = 10'000;
  util::Zipf zipf(kKeys, 1.0);
  std::map<std::uint64_t, std::uint64_t> freq;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    std::uint64_t k = zipf.sample(rng);
    ASSERT_LT(k, kKeys);
    ++freq[k];
  }
  // Zipf(1): p(rank) ~ 1/(rank+1); rank 0 beats rank 99 by ~100x.
  EXPECT_GT(freq[0], freq[99] * 10);
  // ...but the tail is still sampled: a uniform sampler would put ~half the
  // mass above the median key, Zipf(1) puts almost none there.
  std::uint64_t above_median = 0;
  for (const auto& [k, n] : freq) {
    if (k >= kKeys / 2) above_median += n;
  }
  EXPECT_LT(above_median, kSamples / 10);
}

TEST(WorkloadDriver, ZipfWorkloadRunsEndToEnd) {
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/512);
  auto spec = quick_spec(512);
  spec.zipf = true;
  auto res = run_kv_workload(cluster.deployment(), spec);
  EXPECT_GT(res.completed, 0u);
}

TEST(WorkloadDriver, ShutdownDrainsAndDeploymentIsReusable) {
  // After run_kv_workload returns, all driver threads have joined and all
  // proxies are drained: a second run on the same deployment and an
  // immediate stop must both work.
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/64);
  auto spec = quick_spec(64);
  spec.duration_s = 0.1;
  auto first = run_kv_workload(cluster.deployment(), spec);
  auto second = run_kv_workload(cluster.deployment(), spec);
  EXPECT_GT(first.completed, 0u);
  EXPECT_GT(second.completed, 0u);
  cluster->stop();  // explicit early stop; the fixture's stop is idempotent
}

TEST(WorkloadDriver, OpenLoopFixedRateTracksTarget) {
  // Open loop at a rate well under capacity: measured throughput must track
  // the offered rate (the whole point — load is held constant instead of
  // adapting to latency), not the system's saturation point.
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/256);
  auto spec = quick_spec(256);
  spec.target_rate_cps = 2000;
  spec.poisson_arrivals = false;
  spec.warmup_s = 0.1;
  spec.duration_s = 0.5;
  auto res = run_kv_workload(cluster.deployment(), spec);
  ASSERT_GT(res.completed, 0u);
  double attained_cps = res.kcps * 1e3;
  // Completions cannot outpace the arrival schedule...
  EXPECT_LE(attained_cps, spec.target_rate_cps * 1.3);
  // ...and with ample headroom they must keep up with it (generous slack
  // for loaded CI hosts).
  EXPECT_GE(attained_cps, spec.target_rate_cps * 0.5);
}

TEST(WorkloadDriver, OpenLoopPoissonRunsAndConverges) {
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/128);
  auto spec = quick_spec(128);
  spec.target_rate_cps = 1500;
  spec.poisson_arrivals = true;
  spec.mix.read_pct = 70;
  spec.mix.update_pct = 30;
  auto res = run_kv_workload(cluster.deployment(), spec);
  EXPECT_GT(res.completed, 0u);
  auto executed0 = cluster->executed(0);
  test_support::wait_executed(cluster.deployment(), executed0);
  EXPECT_EQ(cluster->state_digest(0), cluster->state_digest(1));
}

TEST(WorkloadDriver, OpenLoopOverloadShedsAtOutstandingCap) {
  // An offered rate far beyond capacity must degrade into a bounded-queue
  // closed loop (shedding arrivals at max_outstanding), not grow proxy
  // state without bound or hang the driver.
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/64);
  auto spec = quick_spec(64);
  spec.target_rate_cps = 5e6;  // absurd for this host
  spec.poisson_arrivals = false;
  spec.max_outstanding = 64;
  spec.duration_s = 0.2;
  auto res = run_kv_workload(cluster.deployment(), spec);
  EXPECT_GT(res.completed, 0u);
  // Little's law at the cap: throughput is bounded by cap / latency.
  double outstanding_bound =
      static_cast<double>(spec.clients * spec.max_outstanding);
  double little = res.kcps * 1e3 * (res.avg_latency_us / 1e6);
  EXPECT_LE(little, outstanding_bound * 1.25);
}

TEST(WorkloadDriver, MeasuredWindowHasBothBounds) {
  // Regression: record() used to check only the start of the measured
  // interval, so completions landing during the post-measurement drain
  // (arbitrarily long under backlog) inflated the histogram and counters.
  using detail::in_measured_window;
  EXPECT_FALSE(in_measured_window(100, 0, 0));    // measurement not started
  EXPECT_FALSE(in_measured_window(99, 100, 0));   // before the start
  EXPECT_TRUE(in_measured_window(100, 100, 0));  // started, no end yet
  EXPECT_TRUE(in_measured_window(1'000'000'000'000, 100, 0));  // still open
  EXPECT_TRUE(in_measured_window(199, 100, 200));
  EXPECT_FALSE(in_measured_window(200, 100, 200));  // end is exclusive
  EXPECT_FALSE(in_measured_window(1'000'000'000'000, 100, 200));  // drain
}

TEST(WorkloadDriver, MeasuredCompletionsRespectTheWindowEnd) {
  // End-to-end version of the regression: the measured completion count
  // must be consistent with the measured interval's length, not with the
  // (longer) interval including the drain.  With the window bug, every
  // drain completion after t1 counted, so completed >> kcps * duration.
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/128);
  auto spec = quick_spec(128);
  spec.duration_s = 0.25;
  auto res = run_kv_workload(cluster.deployment(), spec);
  ASSERT_GT(res.completed, 0u);
  // kcps is derived as completed / elapsed: the identity only holds when
  // both come from the same bounded interval.
  EXPECT_NEAR(res.kcps * 1e3 * 0.25, static_cast<double>(res.completed),
              static_cast<double>(res.completed) * 0.1);
  // Closed loop submits only with window room: nothing is ever shed.
  EXPECT_EQ(res.shed_valve, 0u);
  EXPECT_EQ(res.dispatch_failed, 0u);
  EXPECT_EQ(res.offered, res.submitted);
}

TEST(WorkloadDriver, OfferedAccountingIdentityHolds) {
  // Open loop over capacity with a tight valve: offered arrivals must be
  // fully partitioned into submitted + shed_valve + dispatch_failed.
  test_support::KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/64);
  auto spec = quick_spec(64);
  spec.target_rate_cps = 50'000;  // far past this host's capacity
  spec.poisson_arrivals = true;
  spec.max_outstanding = 32;
  spec.duration_s = 0.3;
  auto res = run_kv_workload(cluster.deployment(), spec);
  ASSERT_GT(res.offered, 0u);
  EXPECT_EQ(res.offered, res.submitted + res.shed_valve + res.dispatch_failed);
  EXPECT_GT(res.shed_valve, 0u);  // the cap binds at this rate
  EXPECT_EQ(res.dispatch_failed, 0u);  // healthy transport all along
}

TEST(WorkloadDriver, AdmissionShedsAreCountedNotMeasured) {
  // Driver + admission: shed completions surface in shed_rejected, and are
  // excluded from goodput (completed) and the latency histogram.
  auto cfg = test_support::kv_config(smr::Mode::kPsmr, 2, /*initial_keys=*/64);
  cfg.admission.enabled = true;
  cfg.admission.client_rate_cps = 200;  // well under the offered rate
  cfg.admission.client_burst = 10;
  test_support::Cluster cluster(std::move(cfg));
  auto spec = quick_spec(64);
  spec.clients = 2;
  spec.target_rate_cps = 4000;
  spec.duration_s = 0.4;
  auto res = run_kv_workload(cluster.deployment(), spec);
  ASSERT_GT(res.completed, 0u);
  EXPECT_GT(res.shed_rejected, 0u);
  EXPECT_EQ(res.latency.count(), res.completed);  // sheds not in histogram
  // The bucket caps goodput near 2 clients x 200 cps over the window;
  // generous upper bound, but far below the 4000 cps offered.
  EXPECT_LT(res.kcps * 1e3, 2000.0);
  auto s = cluster->admission_stats();
  EXPECT_GT(s.throttled, 0u);
}

TEST(WorkloadDriver, ProcessCpuCounterIsMonotonic) {
  std::int64_t a = process_cpu_us();
  // Burn a little CPU so the counter visibly advances.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  std::int64_t b = process_cpu_us();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace psmr::workload
