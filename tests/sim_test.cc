// Tests for the DES engine and the architecture models: determinism,
// conservation laws, and the paper's qualitative performance relations
// (which must be *emergent* properties of the models, not assertions).
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/model.h"

namespace psmr::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 100);
}

TEST(Engine, FifoAmongSimultaneousEvents) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.at(5, [&order, i] { order.push_back(i); });
  }
  eng.run_until(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) eng.after(10, chain);
  };
  eng.after(10, chain);
  eng.run_until(1000);
  EXPECT_EQ(fired, 5);
}

TEST(Engine, StopsAtHorizon) {
  Engine eng;
  int fired = 0;
  eng.at(50, [&] { fired++; });
  eng.at(150, [&] { fired++; });
  eng.run_until(100);
  EXPECT_EQ(fired, 1);
}

SimConfig quick(Tech t, int workers) {
  SimConfig cfg;
  cfg.tech = t;
  cfg.workers = workers;
  cfg.clients = 30;
  cfg.warmup_us = 10'000;
  cfg.duration_us = 60'000;
  return cfg;
}

TEST(Model, DeterministicForFixedSeed) {
  auto a = simulate(quick(Tech::kPsmr, 8));
  auto b = simulate(quick(Tech::kPsmr, 8));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.kcps, b.kcps);
  EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
}

TEST(Model, SeedChangesOutcomeSlightly) {
  auto a = simulate(quick(Tech::kPsmr, 8));
  auto cfg = quick(Tech::kPsmr, 8);
  cfg.seed = 99;
  auto b = simulate(cfg);
  EXPECT_NE(a.completed, b.completed);
  EXPECT_NEAR(a.kcps, b.kcps, a.kcps * 0.05);  // statistically stable
}

TEST(Model, ThroughputMatchesLittlesLaw) {
  // Closed loop: clients*window outstanding = throughput * latency.
  auto cfg = quick(Tech::kSmr, 1);
  auto r = simulate(cfg);
  double outstanding = cfg.clients * cfg.window;
  double little = r.kcps * 1e3 * (r.avg_latency_us / 1e6);
  EXPECT_NEAR(little, outstanding, outstanding * 0.1);
}

TEST(Model, AllCommandsAccountedFor) {
  auto r = simulate(quick(Tech::kSpsmr, 4));
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.cpu_pct, 0);
  EXPECT_LE(r.latency.count(), r.completed + 1);
}

// --- Paper shape properties (emergent, with slack) ---

TEST(Model, Fig3IndependentOrdering) {
  double smr = simulate(quick(Tech::kSmr, 1)).kcps;
  double spsmr = simulate(quick(Tech::kSpsmr, 2)).kcps;
  double norep = simulate(quick(Tech::kNoRep, 2)).kcps;
  auto pc = quick(Tech::kPsmr, 8);
  pc.clients = 150;
  double psmr = simulate(pc).kcps;
  double bdb = simulate(quick(Tech::kLock, 6)).kcps;
  // Paper Fig. 3: P-SMR > no-rep > sP-SMR > SMR >> BDB.
  EXPECT_GT(psmr, 2.5 * smr);
  EXPECT_LT(psmr, 4.0 * smr);
  EXPECT_GT(norep, smr);
  EXPECT_GT(spsmr, smr);
  EXPECT_LT(spsmr, norep);
  EXPECT_LT(bdb, 0.3 * smr);
}

TEST(Model, Fig4DependentOrdering) {
  auto dep = [&](Tech t, int w) {
    auto cfg = quick(t, w);
    cfg.frac_dependent = 1.0;
    return simulate(cfg).kcps;
  };
  double smr = dep(Tech::kSmr, 1);
  double psmr = dep(Tech::kPsmr, 1);
  double spsmr = dep(Tech::kSpsmr, 1);
  double norep = dep(Tech::kNoRep, 1);
  double bdb = dep(Tech::kLock, 4);
  // Paper Fig. 4: SMR wins; P-SMR ~0.5x; no-rep ~0.32x; sP-SMR ~0.28x;
  // BDB ~0.12x.
  EXPECT_GT(smr, psmr);
  EXPECT_GT(psmr, norep);
  EXPECT_GE(norep, spsmr);
  EXPECT_GT(spsmr, bdb);
  EXPECT_NEAR(psmr / smr, 0.5, 0.12);
}

TEST(Model, Fig5PsmrScalesOthersDoNot) {
  auto indep = [&](Tech t, int w) {
    auto cfg = quick(t, w);
    cfg.clients = 30 * w;
    return simulate(cfg).kcps;
  };
  // P-SMR grows substantially from 2 to 8 workers.
  EXPECT_GT(indep(Tech::kPsmr, 8), 2.2 * indep(Tech::kPsmr, 2));
  // sP-SMR declines beyond its 2-worker peak (scheduler bound).
  EXPECT_LT(indep(Tech::kSpsmr, 8), indep(Tech::kSpsmr, 2));
}

TEST(Model, Fig6BreakevenNearTenPercent) {
  double smr = simulate(quick(Tech::kSmr, 1)).kcps;
  auto mixed = [&](double frac) {
    auto cfg = quick(Tech::kPsmr, 8);
    cfg.clients = 120;
    cfg.frac_dependent = frac;
    return simulate(cfg).kcps;
  };
  EXPECT_GT(mixed(0.01), smr);   // 1% dependent: P-SMR still well ahead
  EXPECT_LT(mixed(0.20), smr);   // 20%: past the breakeven
}

TEST(Model, Fig7ZipfBoundsPsmrByHottestGroup) {
  auto cfg = quick(Tech::kPsmr, 8);
  cfg.clients = 150;
  double uniform = simulate(cfg).kcps;
  cfg.zipf = true;
  auto z = simulate(cfg);
  EXPECT_LT(z.kcps, uniform);           // skew hurts P-SMR
  EXPECT_GT(z.max_worker_share, 0.13);  // imbalance beyond 1/8
}

TEST(Model, Fig7ZipfHelpsSpsmrAtLowThreads) {
  // Cache effect: with 1 worker, sP-SMR is worker-bound and Zipf's hot
  // working set executes faster (paper Section VII-G).
  auto cfg = quick(Tech::kSpsmr, 1);
  double uniform = simulate(cfg).kcps;
  cfg.zipf = true;
  double zipf = simulate(cfg).kcps;
  EXPECT_GT(zipf, uniform);
}

TEST(Model, Fig8NetfsShape) {
  auto run = [&](Tech t, int w, bool reads) {
    auto cfg = quick(t, w);
    cfg.netfs = true;
    cfg.netfs_reads = reads;
    cfg.clients = t == Tech::kPsmr ? 50 : 16;
    return simulate(cfg);
  };
  auto smr_r = run(Tech::kSmr, 1, true);
  auto smr_w = run(Tech::kSmr, 1, false);
  auto sp_r = run(Tech::kSpsmr, 8, true);
  auto ps_r = run(Tech::kPsmr, 8, true);
  auto ps_w = run(Tech::kPsmr, 8, false);
  // Writes are faster than reads (compression asymmetry).
  EXPECT_GT(smr_w.kcps, smr_r.kcps);
  EXPECT_GT(ps_w.kcps, ps_r.kcps);
  // P-SMR ~3x SMR; sP-SMR only ~1.1-1.2x.
  EXPECT_NEAR(ps_r.kcps / smr_r.kcps, 3.1, 0.5);
  EXPECT_GT(sp_r.kcps, smr_r.kcps);
  EXPECT_LT(sp_r.kcps, 1.4 * smr_r.kcps);
  // Read latency exceeds write latency at comparable load.
  EXPECT_GT(ps_r.avg_latency_us, ps_w.avg_latency_us);
}

TEST(Model, CpuTracksParallelism) {
  auto smr = simulate(quick(Tech::kSmr, 1));
  auto pc = quick(Tech::kPsmr, 8);
  pc.clients = 150;
  auto psmr = simulate(pc);
  EXPECT_LT(smr.cpu_pct, 250);
  EXPECT_GT(psmr.cpu_pct, 600);  // approaching 8 busy cores
}

}  // namespace
}  // namespace psmr::sim
