// Calibration coverage (sim/calibration.h + sim/engine.h): the service-time
// constants must round-trip through the models back to the paper numbers
// they were derived from, and the event calendar must behave exactly as the
// models assume (monotonic time, FIFO ties, past-event clamping).
#include <gtest/gtest.h>

#include <vector>

#include "sim/calibration.h"
#include "sim/engine.h"
#include "sim/model.h"

namespace psmr::sim {
namespace {

// --- Engine semantics the models depend on -------------------------------

TEST(EngineCalibration, PastEventsClampToNow) {
  Engine eng;
  std::vector<int> order;
  eng.after(10.0, [&] {
    // Scheduling "in the past" must fire at the current virtual time, not
    // rewind the clock.
    eng.at(3.0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  eng.run_until(100.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);  // clock advances to the horizon
}

TEST(EngineCalibration, PendingTracksCalendarSize) {
  Engine eng;
  EXPECT_EQ(eng.pending(), 0u);
  eng.at(1.0, [] {});
  eng.at(2.0, [] {});
  EXPECT_EQ(eng.pending(), 2u);
  eng.run_until(1.5);
  EXPECT_EQ(eng.pending(), 1u);
  eng.run_until(3.0);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(EngineCalibration, HorizonLeavesFutureEventsPending) {
  Engine eng;
  bool fired = false;
  eng.at(50.0, [&] { fired = true; });
  eng.run_until(49.9);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(eng.now(), 49.9);
  eng.run_until(50.0);
  EXPECT_TRUE(fired);
}

// --- Closed-form round-trips of the calibrated constants -----------------
//
// Each KvCosts/NetFsCosts constant was derived from a throughput the paper
// reports; the derivation must invert back to that number.  These tests pin
// the constants: retuning one without rebalancing the others fails here.

TEST(Calibration, SmrServiceTimeInvertsToPaperThroughput) {
  KvCosts kv;
  // Section VII-D: "throughput in SMR remains constant at about 842K cps".
  double kcps = 1e3 / (kv.exec + kv.deliver_single);
  EXPECT_NEAR(kcps, 842.0, 842.0 * 0.02);
}

TEST(Calibration, PsmrEightWorkerServiceTimeMatchesFig3) {
  KvCosts kv;
  // Fig. 3: P-SMR with 8 workers peaks at ~3.15x of SMR.
  const int k = 8;
  double per_cmd =
      kv.exec + kv.deliver_single + kv.merge_base + kv.merge_per_worker * k;
  double psmr_kcps = k * 1e3 / per_cmd;
  double smr_kcps = 1e3 / (kv.exec + kv.deliver_single);
  EXPECT_NEAR(psmr_kcps / smr_kcps, 3.15, 0.20);
}

TEST(Calibration, LockServerPathInvertsToFig3) {
  KvCosts kv;
  // Fig. 3: BDB peaks at ~170 Kcps with 6 handler threads (~0.2x of SMR).
  double bdb_kcps = 6 * 1e3 / kv.lock_path;
  EXPECT_NEAR(bdb_kcps, 170.0, 170.0 * 0.08);
}

TEST(Calibration, NetFsSingleThreadCostsInvertToSectionVIIH) {
  NetFsCosts fs;
  // Section VII-H: ~100 Kcps for 1KB reads, ~110 Kcps for 1KB writes in
  // SMR mode.  A read decompresses a small request and compresses a 1KB
  // response; a write decompresses a 1KB payload and compresses a status.
  double read_us = fs.fs_op_read + fs.decompress_small + fs.compress_1k;
  double write_us = fs.fs_op_write + fs.decompress_1k + fs.compress_small;
  EXPECT_NEAR(1e3 / read_us, 100.0, 100.0 * 0.05);
  EXPECT_NEAR(1e3 / write_us, 110.0, 110.0 * 0.05);
}

// --- Measured B+-tree trajectory (PR 3) ----------------------------------
//
// BtreeCalibration pins the bench_micro_btree numbers for the
// cache-conscious engine; CI's bench smoke-run re-measures them.  These
// tests keep the constants honest relative to each other and to the PR's
// acceptance target.

TEST(Calibration, BtreeLayoutSpeedupMeetsPr3Target) {
  BtreeCalibration bt;
  // Acceptance: >= 1.5x lower ns/op for random find at 10M keys vs the
  // seed layout, delivered by the batched (multi-read) execution path on
  // the deep-memory reference host; the single-lookup path must not
  // regress at 10M and roughly doubles at 1M.
  EXPECT_GE(bt.batch_speedup(), 1.5);
  EXPECT_LE(bt.batch_speedup(), 20.0);  // sanity: it is still a B+-tree
  EXPECT_GE(bt.layout_speedup(), 1.0);
  EXPECT_GE(bt.find_1m_ns_seed / bt.find_1m_ns, 1.5);
  // Updates ride the same descent as finds at the same scale.
  EXPECT_NEAR(bt.update_1m_ns, bt.find_1m_ns, bt.find_1m_ns * 0.35);
}

TEST(Calibration, ExecPipelineRatioMeetsPr4TargetAndStaysPhysical) {
  ExecCalibration ec;
  BtreeCalibration bt;
  // Acceptance: the batch-aware execution API must carry >= 1.3x of the
  // tree-level batching win through the whole replica pipeline.
  EXPECT_GE(ec.batched_ratio(), 1.3);
  // The ratio is bounded by the two per-command costs batching removes: the
  // tree's dependent miss chains (find-path ratio) and, since the PR 5
  // response refactor, the per-reply wire send (a 16-command run leaves as
  // one frame).  The run-length bound caps the latter at run_length, but a
  // loose physical ceiling is the product of both effects.
  EXPECT_LE(ec.batched_ratio(),
            (bt.find_10m_ns / bt.find_batch_10m_ns) * 2.0);
  // The sequential pipeline cannot be faster than the bare tree descent
  // alone would allow (sanity on the Kcps scale of the record).
  EXPECT_LT(ec.pipeline_seq_kcps, 1e3 / (bt.find_10m_ns / 1e3));
  EXPECT_GT(ec.mean_commands_per_batch, 8.0);
}

TEST(Calibration, ResponseCoalescingRecordMeetsPr5Targets) {
  ResponseCalibration rc;
  // Acceptance: at client window >= 16 the coalesced config must put at
  // least 4 responses on the wire per message, and coalescing must never
  // cost deployment throughput.
  EXPECT_GE(rc.responses_per_message, 4.0);
  // ...but a frame can never carry more than the coalescer's per-bucket
  // response cap (ResponseCoalescerOptions::max_responses default).
  EXPECT_LE(rc.responses_per_message, 64.0);
  EXPECT_GE(rc.coalesced_ratio(), 1.0);
  // On the one-core reference host ordering dominates the deployment, so
  // the send-cost win stays modest; a larger ratio here means the record
  // was measured wrong (or the host changed — re-pin it).
  EXPECT_LE(rc.coalesced_ratio(), 1.5);
}

TEST(Calibration, AllocRecordMeetsPr10Targets) {
  AllocCalibration ac;
  // Acceptance: the pooled hot path keeps steady-state heap traffic at or
  // under one allocation per ten commands (measured: one per 64-command
  // batch), down from the seed chain's >= 3 per command.
  EXPECT_LE(ac.pooled_allocs_per_cmd, ac.max_pooled_allocs_per_cmd);
  EXPECT_GE(ac.buffer_allocs_per_cmd, ac.min_buffer_allocs_per_cmd);
  EXPECT_GE(ac.reduction(), 30.0);
  // The pooled chain still pays Batch::decode's commands vector — it cannot
  // be literally allocation-free, so a 0 here means the measurement broke
  // (hook inert, or the bench measured the wrong leg).
  EXPECT_GT(ac.pooled_allocs_per_cmd, 0.0);
  // End-to-end: the pooled + pipelined deployment must hold the PR-8
  // throughput record (>= 1.0x measured; the CI floor carries noise slack).
  ResponseCalibration rc;
  EXPECT_GE(ac.deployment_spsmr_kcps, rc.deployment_coalesced_kcps);
  EXPECT_GT(ac.min_deployment_ratio_vs_record, 0.0);
  EXPECT_LE(ac.min_deployment_ratio_vs_record, 1.0);
}

TEST(Calibration, ScaledExecOrderingIsConsistent) {
  BtreeCalibration bt;
  KvCosts kv;
  // Scaling can only reduce the paper-calibrated execution cost, and the
  // batched path must be the cheaper of the two.
  EXPECT_LE(bt.scaled_exec(kv), kv.exec);
  EXPECT_LT(bt.scaled_exec_batched(kv), bt.scaled_exec(kv));
}

// --- Round-trips through the full simulator ------------------------------

SimConfig quick_cfg(Tech tech, int workers) {
  SimConfig cfg;
  cfg.tech = tech;
  cfg.workers = workers;
  cfg.clients = 60;
  cfg.duration_us = 60'000;
  cfg.seed = 7;
  return cfg;
}

TEST(Calibration, SimulatedSmrThroughputRoundTrips) {
  // The model adds ordering/network latency on top of the service time, but
  // a closed loop with enough clients must still saturate the executor at
  // the calibrated rate.
  auto r = simulate(quick_cfg(Tech::kSmr, 1));
  EXPECT_NEAR(r.kcps, 842.0, 842.0 * 0.12);
}

TEST(Calibration, SimulatedLatencyFloorsAtNetworkConstants) {
  // One client, window 1: every command pays at least one client->cluster
  // round trip plus the ordering round (NetCosts are per-direction).
  NetCosts net;
  SimConfig cfg = quick_cfg(Tech::kSmr, 1);
  cfg.clients = 1;
  cfg.window = 1;
  auto r = simulate(cfg);
  ASSERT_GT(r.completed, 0u);
  double floor_us = 2 * net.one_way + net.order_base;
  EXPECT_GE(r.avg_latency_us, floor_us);
  // ...and stays within the batching + merge-alignment slack of the floor.
  double ceiling_us =
      floor_us + net.batch_wait_max + net.merge_align_max + 50.0;
  EXPECT_LE(r.avg_latency_us, ceiling_us);
}

TEST(Calibration, SimulatorTracksMeasuredBtreeCost) {
  // The simulator driven with the scaled execution cost must saturate at
  // the correspondingly scaled throughput — i.e. it tracks the real bench
  // rather than only the paper's 2008 numbers.  Batched reads (multi-read
  // replicas) would run the same way with scaled_exec_batched.
  BtreeCalibration bt;
  SimConfig cfg = quick_cfg(Tech::kSmr, 1);
  cfg.kv.exec = bt.scaled_exec();
  auto r = simulate(cfg);
  double expect_kcps = 1e3 / (cfg.kv.exec + cfg.kv.deliver_single);
  EXPECT_NEAR(r.kcps, expect_kcps, expect_kcps * 0.12);
  // And the scaled cost stays within the derivation's own bound: the
  // original 842 Kcps inversion times the measured layout speedup.
  double seed_kcps = 1e3 / (KvCosts{}.exec + KvCosts{}.deliver_single);
  EXPECT_GE(expect_kcps, seed_kcps);
  EXPECT_LE(expect_kcps, seed_kcps * bt.batch_speedup());
}

TEST(Calibration, ShardSweepGateHoldsInTheSimulator) {
  // The CI gate over BENCH_shard.json (bench_fig5_scalability) asserts that
  // P-SMR throughput at gate_shards is >= min_scaling x the single-shard
  // baseline at the pinned conflict rate.  The simulator is deterministic,
  // so the same relation must hold here: if a model or calibration change
  // flattens the sharded scaling curve, this catches it before the bench
  // smoke-run does.
  ShardCalibration sc;
  auto point = [&](int shards) {
    SimConfig cfg = quick_cfg(Tech::kPsmr, shards);
    cfg.clients = 30 * shards;
    cfg.frac_dependent = sc.conflict_rate;
    return simulate(cfg).kcps;
  };
  double baseline = point(sc.baseline_shards);
  double at_gate = point(sc.gate_shards);
  ASSERT_GT(baseline, 0.0);
  EXPECT_GE(at_gate / baseline, sc.min_scaling)
      << "sharded scaling fell below the BENCH_shard.json CI gate";
  // And the pin itself stays in the regime the sweep was designed for:
  // minority cross-shard traffic at a non-trivial rate.
  EXPECT_GT(sc.conflict_rate, 0.0);
  EXPECT_LT(sc.conflict_rate, 0.5);
  EXPECT_GT(sc.gate_shards, sc.baseline_shards);
}

TEST(Calibration, AdmissionGateHoldsInTheOverloadModel) {
  // The CI gate over BENCH_latency.json (bench_fig9_latency_rate) asserts
  // that at overload_factor x the knee's offered rate the admission valve
  // holds goodput >= min_goodput_vs_knee x the knee goodput with a bounded
  // p99, while the unvalved system collapses below max_goodput_off_vs_knee.
  // The fluid model is deterministic with a fixed virtual duration, so the
  // exact same relations must hold here, bench flags or not.
  AdmissionCalibration ac;
  OverloadConfig base;
  base.capacity_kcps = ac.capacity_kcps;
  base.overload_penalty = ac.overload_penalty;
  base.shed_enter_occupancy = ac.shed_enter_occupancy;
  base.shed_exit_occupancy = ac.shed_exit_occupancy;

  // The bench's fixed sweep grid (fractions of calibrated capacity).
  std::vector<OverloadPoint> off_curve;
  for (double frac : {0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0, 1.1, 1.25, 1.5,
                      1.75, 2.0}) {
    auto cfg = base;
    cfg.admission = false;
    off_curve.push_back(simulate_overload(cfg, frac * ac.capacity_kcps));
  }
  std::size_t knee = knee_index(off_curve, ac.knee_headroom);
  const auto& knee_pt = off_curve[knee];
  // The knee sits where the calibration pinned it.
  EXPECT_NEAR(knee_pt.offered_kcps, ac.knee_offered_kcps,
              ac.knee_offered_kcps * 0.01);
  EXPECT_NEAR(knee_pt.goodput_kcps, ac.knee_goodput_kcps,
              ac.knee_goodput_kcps * 0.01);

  const double probe = ac.overload_factor * knee_pt.offered_kcps;
  auto off_cfg = base;
  off_cfg.admission = false;
  auto probe_off = simulate_overload(off_cfg, probe);
  auto on_cfg = base;
  on_cfg.admission = true;
  auto probe_on = simulate_overload(on_cfg, probe);

  // The three CI gates, asserted from the model itself.
  EXPECT_GE(probe_on.goodput_kcps,
            ac.min_goodput_vs_knee * knee_pt.goodput_kcps)
      << "admission-on goodput at 2x knee fell below the CI gate";
  EXPECT_LE(probe_off.goodput_kcps,
            ac.max_goodput_off_vs_knee * knee_pt.goodput_kcps)
      << "unvalved overload no longer collapses — the gate's contrast is gone";
  EXPECT_LE(probe_on.p99_latency_us, ac.max_p99_on_us)
      << "admission-on p99 at 2x knee is no longer bounded";

  // And the pinned record itself stays within 1% of what the model yields.
  EXPECT_NEAR(probe_on.goodput_kcps, ac.on_goodput_2x_kcps,
              ac.on_goodput_2x_kcps * 0.01);
  EXPECT_NEAR(probe_off.goodput_kcps, ac.off_goodput_2x_kcps,
              ac.off_goodput_2x_kcps * 0.01);
  EXPECT_NEAR(probe_on.p99_latency_us, ac.on_p99_2x_us,
              ac.on_p99_2x_us * 0.02);
  EXPECT_NEAR(probe_off.p99_latency_us, ac.off_p99_2x_us,
              ac.off_p99_2x_us * 0.02);

  // Sanity on the shape: the valve sheds a substantial fraction at 2x
  // knee (roughly half the offered load), and the unvalved run ends with a
  // far larger backlog than the valve's cap.
  EXPECT_GT(probe_on.shed_fraction, 0.3);
  EXPECT_LT(probe_on.final_backlog, 2.0 * ac.shed_enter_occupancy);
  EXPECT_GT(probe_off.final_backlog, 10.0 * ac.shed_enter_occupancy);
}

TEST(Calibration, OverloadModelIsStableBelowTheKnee) {
  // Below saturation the valve must be invisible: identical goodput, no
  // shedding, latency at the unloaded floor.
  AdmissionCalibration ac;
  OverloadConfig cfg;
  cfg.capacity_kcps = ac.capacity_kcps;
  cfg.overload_penalty = ac.overload_penalty;
  for (double frac : {0.25, 0.5, 0.8}) {
    auto off_cfg = cfg;
    off_cfg.admission = false;
    auto off = simulate_overload(off_cfg, frac * ac.capacity_kcps);
    auto on_cfg = cfg;
    on_cfg.admission = true;
    auto on = simulate_overload(on_cfg, frac * ac.capacity_kcps);
    EXPECT_NEAR(off.goodput_kcps, frac * ac.capacity_kcps,
                frac * ac.capacity_kcps * 0.01);
    EXPECT_EQ(on.shed_fraction, 0.0);
    EXPECT_NEAR(on.goodput_kcps, off.goodput_kcps, 1e-9);
    EXPECT_NEAR(off.p50_latency_us, cfg.base_latency_us,
                cfg.base_latency_us * 0.1);
  }
}

TEST(Calibration, RecoveryGateHoldsInTheFluidModel) {
  // The CI gate over BENCH_recovery.json (bench_fig10_recovery) asserts
  // that at the calibrated probe downtime a snapshot-based restart
  // reconverges within max_recovery_vs_downtime x the downtime, while a
  // full-history replay takes at least min_full_replay_ratio x longer.
  // The recovery model is closed form and deterministic, so the exact same
  // relations must hold here, bench flags or not.
  RecoveryCalibration rc;
  RecoveryConfig base;
  base.capacity_kcps = rc.capacity_kcps;
  base.offered_kcps = rc.offered_kcps;
  base.uptime_us = rc.uptime_us;
  base.checkpoint_interval_cmds = rc.checkpoint_interval_cmds;
  base.install_kcps = rc.install_kcps;
  base.downtime_us = rc.probe_downtime_us;

  auto snap_cfg = base;
  snap_cfg.snapshot = true;
  auto snap = simulate_recovery(snap_cfg);
  auto full_cfg = base;
  full_cfg.snapshot = false;
  auto full = simulate_recovery(full_cfg);

  ASSERT_TRUE(snap.recovered);
  ASSERT_TRUE(full.recovered);

  // The two CI gates, asserted from the model itself.
  EXPECT_LE(snap.recovery_us,
            rc.max_recovery_vs_downtime * rc.probe_downtime_us)
      << "snapshot recovery at the probe exceeds the CI gate";
  EXPECT_GE(full.recovery_us, rc.min_full_replay_ratio * snap.recovery_us)
      << "full replay no longer dominates — the gate's contrast is gone";

  // And the pinned record stays within 1% of what the model yields.
  EXPECT_NEAR(snap.recovery_us, rc.snapshot_recovery_us,
              rc.snapshot_recovery_us * 0.01);
  EXPECT_NEAR(full.recovery_us, rc.full_replay_recovery_us,
              rc.full_replay_recovery_us * 0.01);

  // Shape sanity.  Snapshot install covers every whole checkpoint interval
  // of the pre-crash history, so the replayed suffix is bounded by one
  // interval plus the outage backlog — far less than the full history.
  EXPECT_LT(snap.replayed_cmds, full.replayed_cmds / 2);
  EXPECT_GT(snap.installed_cmds, 0.0);
  EXPECT_EQ(full.installed_cmds, 0.0);
  EXPECT_EQ(full.install_us, 0.0);

  // Monotonicity across the bench's sweep grid: longer downtime never
  // shortens recovery, and every snapshot point drains (capacity > offered).
  double prev = 0;
  for (double dt : {100'000.0, 250'000.0, 500'000.0, 1e6, 2e6}) {
    auto cfg = base;
    cfg.downtime_us = dt;
    auto pt = simulate_recovery(cfg);
    EXPECT_TRUE(pt.recovered) << "downtime " << dt;
    EXPECT_GE(pt.recovery_us, prev);
    prev = pt.recovery_us;
  }

  // An offered load at/above capacity can never drain the replay backlog.
  auto swamped = base;
  swamped.offered_kcps = swamped.capacity_kcps;
  EXPECT_FALSE(simulate_recovery(swamped).recovered);
}

TEST(Calibration, ExecCostScalesSaturatedThroughputInversely) {
  // Round-trip sensitivity: doubling the calibrated execution cost must
  // halve saturated single-thread throughput (within closed-loop noise).
  auto base = quick_cfg(Tech::kSmr, 1);
  auto slow = base;
  slow.kv.exec = 2 * base.kv.exec + base.kv.deliver_single;
  double ratio = simulate(base).kcps / simulate(slow).kcps;
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

}  // namespace
}  // namespace psmr::sim
