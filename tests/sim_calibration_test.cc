// Calibration coverage (sim/calibration.h + sim/engine.h): the service-time
// constants must round-trip through the models back to the paper numbers
// they were derived from, and the event calendar must behave exactly as the
// models assume (monotonic time, FIFO ties, past-event clamping).
#include <gtest/gtest.h>

#include <vector>

#include "sim/calibration.h"
#include "sim/engine.h"
#include "sim/model.h"

namespace psmr::sim {
namespace {

// --- Engine semantics the models depend on -------------------------------

TEST(EngineCalibration, PastEventsClampToNow) {
  Engine eng;
  std::vector<int> order;
  eng.after(10.0, [&] {
    // Scheduling "in the past" must fire at the current virtual time, not
    // rewind the clock.
    eng.at(3.0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  eng.run_until(100.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);  // clock advances to the horizon
}

TEST(EngineCalibration, PendingTracksCalendarSize) {
  Engine eng;
  EXPECT_EQ(eng.pending(), 0u);
  eng.at(1.0, [] {});
  eng.at(2.0, [] {});
  EXPECT_EQ(eng.pending(), 2u);
  eng.run_until(1.5);
  EXPECT_EQ(eng.pending(), 1u);
  eng.run_until(3.0);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(EngineCalibration, HorizonLeavesFutureEventsPending) {
  Engine eng;
  bool fired = false;
  eng.at(50.0, [&] { fired = true; });
  eng.run_until(49.9);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(eng.now(), 49.9);
  eng.run_until(50.0);
  EXPECT_TRUE(fired);
}

// --- Closed-form round-trips of the calibrated constants -----------------
//
// Each KvCosts/NetFsCosts constant was derived from a throughput the paper
// reports; the derivation must invert back to that number.  These tests pin
// the constants: retuning one without rebalancing the others fails here.

TEST(Calibration, SmrServiceTimeInvertsToPaperThroughput) {
  KvCosts kv;
  // Section VII-D: "throughput in SMR remains constant at about 842K cps".
  double kcps = 1e3 / (kv.exec + kv.deliver_single);
  EXPECT_NEAR(kcps, 842.0, 842.0 * 0.02);
}

TEST(Calibration, PsmrEightWorkerServiceTimeMatchesFig3) {
  KvCosts kv;
  // Fig. 3: P-SMR with 8 workers peaks at ~3.15x of SMR.
  const int k = 8;
  double per_cmd =
      kv.exec + kv.deliver_single + kv.merge_base + kv.merge_per_worker * k;
  double psmr_kcps = k * 1e3 / per_cmd;
  double smr_kcps = 1e3 / (kv.exec + kv.deliver_single);
  EXPECT_NEAR(psmr_kcps / smr_kcps, 3.15, 0.20);
}

TEST(Calibration, LockServerPathInvertsToFig3) {
  KvCosts kv;
  // Fig. 3: BDB peaks at ~170 Kcps with 6 handler threads (~0.2x of SMR).
  double bdb_kcps = 6 * 1e3 / kv.lock_path;
  EXPECT_NEAR(bdb_kcps, 170.0, 170.0 * 0.08);
}

TEST(Calibration, NetFsSingleThreadCostsInvertToSectionVIIH) {
  NetFsCosts fs;
  // Section VII-H: ~100 Kcps for 1KB reads, ~110 Kcps for 1KB writes in
  // SMR mode.  A read decompresses a small request and compresses a 1KB
  // response; a write decompresses a 1KB payload and compresses a status.
  double read_us = fs.fs_op_read + fs.decompress_small + fs.compress_1k;
  double write_us = fs.fs_op_write + fs.decompress_1k + fs.compress_small;
  EXPECT_NEAR(1e3 / read_us, 100.0, 100.0 * 0.05);
  EXPECT_NEAR(1e3 / write_us, 110.0, 110.0 * 0.05);
}

// --- Round-trips through the full simulator ------------------------------

SimConfig quick_cfg(Tech tech, int workers) {
  SimConfig cfg;
  cfg.tech = tech;
  cfg.workers = workers;
  cfg.clients = 60;
  cfg.duration_us = 60'000;
  cfg.seed = 7;
  return cfg;
}

TEST(Calibration, SimulatedSmrThroughputRoundTrips) {
  // The model adds ordering/network latency on top of the service time, but
  // a closed loop with enough clients must still saturate the executor at
  // the calibrated rate.
  auto r = simulate(quick_cfg(Tech::kSmr, 1));
  EXPECT_NEAR(r.kcps, 842.0, 842.0 * 0.12);
}

TEST(Calibration, SimulatedLatencyFloorsAtNetworkConstants) {
  // One client, window 1: every command pays at least one client->cluster
  // round trip plus the ordering round (NetCosts are per-direction).
  NetCosts net;
  SimConfig cfg = quick_cfg(Tech::kSmr, 1);
  cfg.clients = 1;
  cfg.window = 1;
  auto r = simulate(cfg);
  ASSERT_GT(r.completed, 0u);
  double floor_us = 2 * net.one_way + net.order_base;
  EXPECT_GE(r.avg_latency_us, floor_us);
  // ...and stays within the batching + merge-alignment slack of the floor.
  double ceiling_us =
      floor_us + net.batch_wait_max + net.merge_align_max + 50.0;
  EXPECT_LE(r.avg_latency_us, ceiling_us);
}

TEST(Calibration, ExecCostScalesSaturatedThroughputInversely) {
  // Round-trip sensitivity: doubling the calibrated execution cost must
  // halve saturated single-thread throughput (within closed-loop noise).
  auto base = quick_cfg(Tech::kSmr, 1);
  auto slow = base;
  slow.kv.exec = 2 * base.kv.exec + base.kv.deliver_single;
  double ratio = simulate(base).kcps / simulate(slow).kcps;
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

}  // namespace
}  // namespace psmr::sim
