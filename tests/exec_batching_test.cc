// Batch-aware Service execution API (service.h): ExecStats accounting, the
// KvService read-lane batch path, SchedulerCore run accumulation (bounds,
// conflict splits, dedup eviction), and end-to-end convergence — replicas
// running with batched execution forced on (run length >= 8) and forced off
// (run length 1) must produce identical state digests, because batch
// boundaries only ever separate independent commands.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kvstore/kv_client.h"
#include "smr/runtime.h"
#include "smr/scheduler.h"
#include "test_support.h"
#include "util/sync.h"

namespace psmr::smr {
namespace {

using kvstore::KvService;

Command make_cmd(CommandId id, ClientId client, Seq seq, util::Buffer params,
                 transport::NodeId reply_to = transport::kNoNode) {
  Command c;
  c.cmd = id;
  c.client = client;
  c.seq = seq;
  c.reply_to = reply_to;
  c.params = std::move(params);
  return c;
}

// --- ExecStats accounting + the KvService batch path ----------------------

TEST(ExecStats, CountsBatchesCommandsAndBatchedReads) {
  KvService svc(/*initial_keys=*/100);

  // A 4-command independent batch: three point reads and an update on a
  // key none of the reads touch.  The reads must resolve through the
  // pipelined lane; the update keeps its sequential path.
  std::vector<Command> cmds;
  cmds.push_back(make_cmd(kvstore::kKvRead, 1, 1, kvstore::encode_key(3)));
  cmds.push_back(make_cmd(kvstore::kKvRead, 1, 2, kvstore::encode_key(7)));
  cmds.push_back(
      make_cmd(kvstore::kKvUpdate, 1, 3, kvstore::encode_key_value(50, 999)));
  cmds.push_back(make_cmd(kvstore::kKvRead, 1, 4, kvstore::encode_key(8)));
  for (std::size_t i = 0; i + 1 < cmds.size(); ++i) {
    for (std::size_t j = i + 1; j < cmds.size(); ++j) {
      ASSERT_TRUE(svc.may_share_batch(cmds[i], cmds[j]))
          << "commands " << i << " and " << j;
    }
  }

  CollectingSink sink(cmds.size());
  CommandBatch batch{cmds, &sink};
  svc.execute_batch(batch);

  EXPECT_EQ(kvstore::decode_result(sink.responses[0]).value, 3u);
  EXPECT_EQ(kvstore::decode_result(sink.responses[1]).value, 7u);
  EXPECT_EQ(kvstore::decode_result(sink.responses[2]).status, kvstore::kKvOk);
  EXPECT_EQ(kvstore::decode_result(sink.responses[3]).value, 8u);
  // The update landed even though the batch's reads resolved as one lane.
  EXPECT_EQ(kvstore::decode_result(svc.execute(make_cmd(
                kvstore::kKvRead, 1, 5, kvstore::encode_key(50)))).value,
            999u);

  ExecStats s = svc.exec_stats();
  EXPECT_EQ(s.batches, 2u);   // the 4-batch + the single read above
  EXPECT_EQ(s.commands, 5u);
  EXPECT_EQ(s.batched_reads, 3u);  // only the multi-command batch's reads
  EXPECT_EQ(s.max_batch, 4u);
  EXPECT_DOUBLE_EQ(s.mean_commands_per_batch(), 2.5);
  EXPECT_DOUBLE_EQ(s.batched_read_share(), 3.0 / 5.0);
}

TEST(ExecStats, ReadOfUpdatedKeyMayNotShareItsBatch) {
  KvService svc(100);
  Command upd =
      make_cmd(kvstore::kKvUpdate, 1, 1, kvstore::encode_key_value(5, 1));
  Command same_key_read =
      make_cmd(kvstore::kKvRead, 1, 2, kvstore::encode_key(5));
  Command other_key_read =
      make_cmd(kvstore::kKvRead, 1, 3, kvstore::encode_key(6));
  Command insert =
      make_cmd(kvstore::kKvInsert, 1, 4, kvstore::encode_key_value(200, 1));
  EXPECT_FALSE(svc.may_share_batch(upd, same_key_read));
  EXPECT_TRUE(svc.may_share_batch(upd, other_key_read));
  EXPECT_FALSE(svc.may_share_batch(insert, other_key_read));
  EXPECT_TRUE(svc.may_share_batch(same_key_read, other_key_read));
}

TEST(ExecStats, BatchedMultiReadAndPointReadsShareOnePipelinedPass) {
  KvService svc(100);
  std::vector<Command> cmds;
  cmds.push_back(make_cmd(kvstore::kKvRead, 1, 1, kvstore::encode_key(10)));
  cmds.push_back(make_cmd(kvstore::kKvMultiRead, 1, 2,
                          kvstore::encode_keys({20, 21, 1000})));
  cmds.push_back(make_cmd(kvstore::kKvRead, 1, 3, kvstore::encode_key(30)));
  CollectingSink sink(cmds.size());
  CommandBatch batch{cmds, &sink};
  svc.execute_batch(batch);

  EXPECT_EQ(kvstore::decode_result(sink.responses[0]).value, 10u);
  auto multi = kvstore::decode_multi_result(sink.responses[1]);
  ASSERT_EQ(multi.entries.size(), 3u);
  EXPECT_EQ(multi.entries[0].value, 20u);
  EXPECT_EQ(multi.entries[1].value, 21u);
  EXPECT_EQ(multi.entries[2].status, kvstore::kKvNotFound);
  EXPECT_EQ(kvstore::decode_result(sink.responses[2]).value, 30u);
  EXPECT_EQ(svc.exec_stats().batched_reads, 3u);
}

TEST(ExecStats, SequentialAdapterExecutesBatchInOrderAndRecords) {
  // A SequentialService wrapped by the adapter must observe batch members
  // one at a time, in batch order, and the adapter must record the stats.
  class OrderRecorder : public SequentialService {
   public:
    util::Buffer execute(const Command& cmd) override {
      seqs.push_back(cmd.seq);
      return {};
    }
    [[nodiscard]] std::uint64_t state_digest() const override {
      return seqs.size();
    }
    std::vector<Seq> seqs;
  };
  auto inner = std::make_unique<OrderRecorder>();
  auto* inner_ptr = inner.get();
  auto svc = make_batched(std::move(inner));

  std::vector<Command> cmds;
  for (Seq s = 1; s <= 5; ++s) cmds.push_back(make_cmd(1, 1, s, {}));
  CollectingSink sink(cmds.size());
  CommandBatch batch{cmds, &sink};
  svc->execute_batch(batch);

  EXPECT_EQ(inner_ptr->seqs, (std::vector<Seq>{1, 2, 3, 4, 5}));
  EXPECT_EQ(svc->exec_stats().batches, 1u);
  EXPECT_EQ(svc->exec_stats().commands, 5u);
  EXPECT_EQ(svc->exec_stats().batched_reads, 0u);
  // The adapter's default conflict answer keeps accumulated runs at 1.
  EXPECT_FALSE(svc->may_share_batch(cmds[0], cmds[1]));
}

// --- SchedulerCore run accumulation ---------------------------------------

// Batch-native service that records every batch's size and can gate its
// first execution so a test can fill the worker queue behind it.
class BatchRecordingService : public Service {
 public:
  [[nodiscard]] bool may_share_batch(const Command& x,
                                     const Command& y) const override {
    // Command id 1 shares with itself; id 2 conflicts with everything.
    return x.cmd == 1 && y.cmd == 1;
  }
  [[nodiscard]] std::uint64_t state_digest() const override {
    std::lock_guard lock(mu_);
    return sizes_.size();
  }
  [[nodiscard]] std::vector<std::size_t> sizes() const {
    std::lock_guard lock(mu_);
    return sizes_;
  }
  util::Signal entered;  // notified when the gated batch starts executing
  util::Signal release;  // lets the gated batch proceed
  std::atomic<bool> gate_next{false};

 protected:
  void do_execute_batch(CommandBatch& batch) override {
    if (gate_next.exchange(false)) {
      entered.notify();
      release.wait();
    }
    {
      std::lock_guard lock(mu_);
      sizes_.push_back(batch.size());
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch.sink->accept(i, {});
    }
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::size_t> sizes_;
};

class SingleGroupCg : public CGFunction {
 public:
  [[nodiscard]] multicast::GroupSet groups(const Command&) const override {
    return multicast::GroupSet::single(0);
  }
  [[nodiscard]] std::size_t mpl() const override { return 1; }
};

void wait_core(const SchedulerCore& core, std::uint64_t n) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (core.executed() < n && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(SchedulerBatching, AccumulatesBoundedRunsAndSplitsOnConflict) {
  transport::Network net;
  auto svc = std::make_unique<BatchRecordingService>();
  auto* svc_ptr = svc.get();
  SchedulerOptions opts;
  opts.run_length = 4;
  SchedulerCore core(net, std::move(svc), std::make_shared<SingleGroupCg>(), 1,
                     "test", opts);
  core.start();

  // Gate the first command's batch so the next seven commands queue behind
  // it, then release: the worker must drain them as [4][2-conflict-split]…
  // exactly per the run-length bound and the may_share_batch relation.
  svc_ptr->gate_next = true;
  core.schedule(make_cmd(1, 1, 1, {}));
  svc_ptr->entered.wait();
  for (Seq s = 2; s <= 5; ++s) core.schedule(make_cmd(1, 1, s, {}));
  core.schedule(make_cmd(2, 1, 6, {}));  // conflicts with everything
  for (Seq s = 7; s <= 8; ++s) core.schedule(make_cmd(1, 1, s, {}));
  svc_ptr->release.notify();
  wait_core(core, 8);
  core.stop();

  auto sizes = svc_ptr->sizes();
  // [1 gated] [2,3,4,5 as a full run of 4] [6 alone] [7,8].
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 4, 1, 2}));
  EXPECT_EQ(core.service().exec_stats().max_batch, 4u);
}

TEST(SchedulerBatching, RunLengthOneRestoresSequentialExecution) {
  transport::Network net;
  auto svc = std::make_unique<BatchRecordingService>();
  auto* svc_ptr = svc.get();
  SchedulerOptions opts;
  opts.run_length = 1;
  SchedulerCore core(net, std::move(svc), std::make_shared<SingleGroupCg>(), 1,
                     "test", opts);
  core.start();
  svc_ptr->gate_next = true;
  core.schedule(make_cmd(1, 1, 1, {}));
  svc_ptr->entered.wait();
  for (Seq s = 2; s <= 6; ++s) core.schedule(make_cmd(1, 1, s, {}));
  svc_ptr->release.notify();
  wait_core(core, 6);
  core.stop();
  for (std::size_t size : svc_ptr->sizes()) EXPECT_EQ(size, 1u);
  EXPECT_EQ(core.service().exec_stats().max_batch, 1u);
}

// --- SchedulerCore dedup bounding (satellite: bound dedup_) ---------------

TEST(SchedulerDedup, EvictsIdleClientsAndStaysBounded) {
  transport::Network net;
  SchedulerOptions opts;
  opts.dedup_idle_window = 16;
  SchedulerCore core(net, std::make_unique<BatchRecordingService>(),
                     std::make_shared<SingleGroupCg>(), 1, "test", opts);
  core.start();

  core.schedule(make_cmd(1, /*client=*/1, /*seq=*/1, {}));
  // Re-submitting the same seq while the entry is live is suppressed.
  core.schedule(make_cmd(1, 1, 1, {}));
  wait_core(core, 1);
  EXPECT_EQ(core.executed(), 1u);

  // 200 commands from other clients push client 1 far past the idle
  // window; the sweep must evict it (and the one-shot clients too), so the
  // map stays bounded instead of growing with every client ever seen.
  for (std::uint64_t c = 2; c <= 201; ++c) {
    core.schedule(make_cmd(1, c, 1, {}));
  }
  wait_core(core, 201);
  EXPECT_LE(core.dedup_size(), opts.dedup_idle_window + opts.dedup_idle_window / 4 + 1);

  // The documented trade-off: an evicted client's stale retransmission is
  // no longer recognized and re-executes.
  core.schedule(make_cmd(1, 1, 1, {}));
  wait_core(core, 202);
  EXPECT_EQ(core.executed(), 202u);
  core.stop();
}

TEST(SchedulerDedup, ZeroWindowDisablesEviction) {
  transport::Network net;
  SchedulerOptions opts;
  opts.dedup_idle_window = 0;
  SchedulerCore core(net, std::make_unique<BatchRecordingService>(),
                     std::make_shared<SingleGroupCg>(), 1, "test", opts);
  core.start();
  for (std::uint64_t c = 1; c <= 100; ++c) {
    core.schedule(make_cmd(1, c, 1, {}));
  }
  wait_core(core, 100);
  EXPECT_EQ(core.dedup_size(), 100u);
  // Suppression still works for every client.
  for (std::uint64_t c = 1; c <= 100; ++c) {
    core.schedule(make_cmd(1, c, 1, {}));
  }
  EXPECT_EQ(core.executed(), 100u);
  core.stop();
}

// --- End-to-end convergence: batched on vs off ----------------------------
// (The disjoint convergence workload lives in test_support and is shared
// with the response-batching suite.)

class ExecConvergence : public ::testing::TestWithParam<Mode> {};

TEST_P(ExecConvergence, BatchedAndSequentialExecutionConverge) {
  const Mode mode = GetParam();
  constexpr int kClients = 3;
  constexpr int kOps = 160;
  const std::uint64_t keys = kClients * 100;

  auto run_with = [&](std::size_t run_length, ExecStats* stats) {
    auto cfg = test_support::kv_config(mode, /*mpl=*/2, keys);
    cfg.exec_run_length = run_length;
    test_support::Cluster cluster(std::move(cfg));
    std::uint64_t digest = test_support::run_disjoint_kv_workload(
        cluster.deployment(), kClients, kOps);
    *stats = cluster->exec_stats();
    return digest;
  };

  ExecStats batched;
  ExecStats sequential;
  std::uint64_t digest_batched = run_with(/*run_length=*/8, &batched);
  std::uint64_t digest_sequential = run_with(/*run_length=*/1, &sequential);

  // Same command history, different batch boundaries, identical state.
  EXPECT_EQ(digest_batched, digest_sequential);

  // The stats plumbing observed every execution, and the forced-off run
  // really was sequential.
  EXPECT_GE(batched.commands, static_cast<std::uint64_t>(kClients * kOps));
  EXPECT_EQ(sequential.max_batch, 1u);
  EXPECT_LE(batched.max_batch, 8u);
  // With 3 clients pipelining 32-deep onto 2 workers the streams must back
  // up at least once: some batch with more than one command formed.
  EXPECT_GT(batched.max_batch, 1u);
  EXPECT_GT(batched.batched_read_share(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, ExecConvergence,
                         ::testing::Values(Mode::kPsmr, Mode::kSpsmr),
                         [](const auto& info) {
                           return info.param == Mode::kPsmr ? "psmr" : "spsmr";
                         });

}  // namespace
}  // namespace psmr::smr
