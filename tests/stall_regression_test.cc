// Regression tests for the merge skip-cadence stall.
//
// The bug: an idle coordinator's skip schedule was relative — refreshed by
// every decide, *including the decide of its own skip* — and gated on an
// empty Phase 2 window.  The effective cadence was one skip per
// (skip_interval + Paxos round-trip), serialized; whenever the tick thread
// ran late (CPU-starved host), each missed interval was repaid one skip at
// a time, and merge-based delivery crawled behind client retransmission
// timeouts (Psmr.SameKeyOrderingIsLinear timing out at 240s).
//
// The fix makes the schedule absolute (one skip owed per elapsed interval
// of wall time, regardless of decide latency) and repays a late tick's
// backlog as one pipelined burst.  Coordinator::stall_ticks_for() recreates
// the starved-tick regime deterministically: it suppresses on_tick for a
// fixed duration while message handling keeps running.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "kvstore/kv_client.h"
#include "multicast/amcast.h"
#include "test_support.h"

namespace psmr {
namespace {

using namespace std::chrono_literals;
using multicast::Bus;
using multicast::BusConfig;
using multicast::GroupSet;

// A starved tick thread must repay its whole skip backlog as one pipelined
// burst, not one skip per interval.
//
// Setup: two worker groups, so group 0's subscription merges [ring g0,
// shared ring].  The shared ring's coordinator has its ticks stalled — the
// starved regime — while 40 singleton messages are decided on g0
// (max_batch_commands = 1: one instance each).  The merge rotation needs a
// shared-ring decision between consecutive g0 decisions, so the consumer
// is wedged 39 deep when the stall lifts.
//
// With a 25 ms skip interval, serial repayment (the old behaviour) needs
// >= 39 * 25 ms ~ 1 s *after* the 1.1 s stall; the pipelined burst clears
// the backlog in a few round-trips.  The 1.6 s budget separates the two by
// ~0.5 s on either side.
TEST(SkipCadence, StarvedTicksRepayBacklogAsOneBurst) {
  constexpr int kMessages = 40;
  constexpr auto kStall = 1100ms;

  transport::Network net;
  BusConfig cfg;
  cfg.num_groups = 2;
  cfg.ring = test_support::fast_ring();
  cfg.ring.skip_interval = 25ms;
  cfg.ring.max_batch_commands = 1;
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  // Let both coordinators finish Phase 1 and enter the steady state before
  // starving the shared ring, so the stall covers only skip emission.
  std::this_thread::sleep_for(20ms);

  auto [me, mybox] = net.register_node();
  const auto t0 = std::chrono::steady_clock::now();
  bus.shared_ring().stall_coordinator_ticks(
      std::chrono::duration_cast<std::chrono::microseconds>(kStall));
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    util::Writer w;
    w.u64(i);
    ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), w.take()));
  }

  for (std::uint64_t i = 0; i < kMessages; ++i) {
    auto d = sub->next();
    ASSERT_TRUE(d.has_value()) << "stream closed at message " << i;
    util::Reader r(d->message);
    EXPECT_EQ(r.u64(), i) << "merged order must be submission order";
  }
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 1600ms)
      << "skip backlog was repaid serially (one skip per interval), not as "
         "a pipelined burst: "
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()
      << " ms";

  sub->close();
}

// End-to-end liveness: a same-key sequential stream keeps flowing while
// every ring's tick thread is repeatedly starved.  This is the
// deployment-shaped cousin of Psmr.SameKeyOrderingIsLinear, with the
// CPU-contention regime injected deterministically instead of hoping for a
// loaded host; it wedges (until client retransmission) under the old
// cadence and finishes in seconds under the fixed one.
TEST(SkipCadence, SameKeyStreamSurvivesStarvedTicks) {
  constexpr std::size_t kMpl = 4;
  test_support::KvCluster cluster(smr::Mode::kPsmr, kMpl,
                                  /*initial_keys=*/16);
  kvstore::KvClient client(cluster->make_client());

  auto stall_all = [&](std::chrono::microseconds d) {
    for (multicast::GroupId g = 0; g < kMpl; ++g) {
      cluster->bus()->group_ring(g).stall_coordinator_ticks(d);
    }
    cluster->bus()->shared_ring().stall_coordinator_ticks(d);
  };

  constexpr int kUpdates = 60;
  for (int i = 1; i <= kUpdates; ++i) {
    if (i % 15 == 1) stall_all(50ms);
    ASSERT_EQ(client.update(5, static_cast<std::uint64_t>(i)), kvstore::kKvOk)
        << "update " << i << " failed";
  }
  EXPECT_EQ(client.read(5).value_or(0), static_cast<std::uint64_t>(kUpdates));
}

}  // namespace
}  // namespace psmr
