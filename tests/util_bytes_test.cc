#include "util/bytes.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace psmr::util {
namespace {

TEST(Bytes, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.view());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RoundTripStringsAndBlobs) {
  Writer w;
  w.str("hello");
  w.str("");
  Buffer blob = {1, 2, 3, 4, 5};
  w.bytes(blob);
  w.bytes({});

  Reader r(w.view());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, BytesViewIsZeroCopy) {
  Writer w;
  w.bytes(Buffer{9, 8, 7});
  Buffer data = w.take();
  Reader r(data);
  auto view = r.bytes_view();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.data(), data.data() + 4);  // after the u32 length prefix
}

TEST(Bytes, UnderflowThrows) {
  Writer w;
  w.u32(7);
  Reader r(w.view());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Bytes, TruncatedBlobThrows) {
  Writer w;
  w.u32(100);  // claims a 100-byte blob that is not there
  Reader r(w.view());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Bytes, RawPassthrough) {
  Writer w;
  Buffer payload = {0xde, 0xad};
  w.raw(payload);
  Reader r(w.view());
  auto raw = r.raw(2);
  EXPECT_EQ(raw[0], 0xde);
  EXPECT_EQ(raw[1], 0xad);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, WriterTakeResets) {
  Writer w;
  w.u32(1);
  Buffer first = w.take();
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

// Property: any sequence of typed writes reads back identically.
TEST(Bytes, FuzzRoundTrip) {
  SplitMix64 rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    Writer w;
    std::vector<int> kinds;
    std::vector<std::uint64_t> ints;
    std::vector<std::string> strs;
    int n = 1 + static_cast<int>(rng.next_below(20));
    for (int i = 0; i < n; ++i) {
      int kind = static_cast<int>(rng.next_below(3));
      kinds.push_back(kind);
      if (kind == 0) {
        std::uint64_t v = rng.next();
        ints.push_back(v);
        w.u64(v);
      } else if (kind == 1) {
        std::string s(rng.next_below(64), 'x');
        for (auto& c : s) c = static_cast<char>('a' + rng.next_below(26));
        strs.push_back(s);
        w.str(s);
      } else {
        std::uint64_t v = rng.next();
        ints.push_back(v);
        w.u32(static_cast<std::uint32_t>(v));
      }
    }
    Reader r(w.view());
    std::size_t ii = 0, si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        EXPECT_EQ(r.u64(), ints[ii++]);
      } else if (kind == 1) {
        EXPECT_EQ(r.str(), strs[si++]);
      } else {
        EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(ints[ii++]));
      }
    }
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace psmr::util
