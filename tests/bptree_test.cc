#include "kvstore/bptree.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace psmr::kvstore {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.update(1, 2));
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.height(), 1);
}

TEST(BPlusTree, SingleEntry) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(42, 7));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(42).value(), 7u);
  EXPECT_FALSE(t.insert(42, 8));  // duplicate rejected
  EXPECT_EQ(t.find(42).value(), 7u);
  EXPECT_TRUE(t.update(42, 9));
  EXPECT_EQ(t.find(42).value(), 9u);
  EXPECT_TRUE(t.erase(42));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, SequentialInsertGrowsHeight) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(t.insert(k, k * 2));
  }
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_GE(t.height(), 2);
  EXPECT_TRUE(t.validate());
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(t.find(k).value(), k * 2) << "key " << k;
  }
  EXPECT_FALSE(t.find(10000).has_value());
}

TEST(BPlusTree, ReverseSequentialInsert) {
  BPlusTree t;
  for (std::uint64_t k = 5000; k > 0; --k) {
    ASSERT_TRUE(t.insert(k, k));
  }
  EXPECT_TRUE(t.validate());
  std::uint64_t expect = 1;
  t.for_each([&](std::uint64_t k, std::uint64_t) {
    EXPECT_EQ(k, expect);
    ++expect;
  });
}

TEST(BPlusTree, DeleteEverythingForwards) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 3000; ++k) t.insert(k, k);
  for (std::uint64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(t.erase(k)) << "key " << k;
    if (k % 257 == 0) { ASSERT_TRUE(t.validate()) << "after erasing " << k; }
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, DeleteEverythingBackwards) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 3000; ++k) t.insert(k, k);
  for (std::uint64_t k = 3000; k-- > 0;) {
    ASSERT_TRUE(t.erase(k)) << "key " << k;
    if (k % 257 == 0) { ASSERT_TRUE(t.validate()) << "after erasing " << k; }
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTree, DigestTracksContent) {
  BPlusTree a, b;
  for (std::uint64_t k = 0; k < 500; ++k) {
    a.insert(k, k);
    b.insert(499 - k, 499 - k);  // same content, different insert order
  }
  EXPECT_EQ(a.digest(), b.digest());
  b.update(7, 999);
  EXPECT_NE(a.digest(), b.digest());
  b.update(7, 7);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(BPlusTree, ForEachIsSortedAndComplete) {
  BPlusTree t;
  util::SplitMix64 rng(99);
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t k = rng.next_below(100000);
    std::uint64_t v = rng.next();
    if (ref.emplace(k, v).second) {
      ASSERT_TRUE(t.insert(k, v));
    }
  }
  auto it = ref.begin();
  t.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, ref.end());
}

TEST(BPlusTree, RangeScanLeafChain) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 10'000; k += 2) t.insert(k, k * 3);

  // Interior window, inclusive on both ends.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  std::size_t n = t.range_scan(100, 200, [&](std::uint64_t k, std::uint64_t v) {
    got.emplace_back(k, v);
  });
  ASSERT_EQ(n, got.size());
  ASSERT_EQ(n, 51u);  // 100, 102, ..., 200
  EXPECT_EQ(got.front().first, 100u);
  EXPECT_EQ(got.back().first, 200u);
  for (auto [k, v] : got) {
    EXPECT_EQ(k % 2, 0u);
    EXPECT_EQ(v, k * 3);
  }

  // Bounds between keys, empty windows, full range.
  EXPECT_EQ(t.range_scan(101, 101, [](std::uint64_t, std::uint64_t) {}), 0u);
  EXPECT_EQ(t.range_scan(9'999, 50'000, [](std::uint64_t, std::uint64_t) {}),
            0u);
  EXPECT_EQ(t.range_scan(0, ~0ULL, [](std::uint64_t, std::uint64_t) {}),
            t.size());
  // Scan sees update()s immediately (atomic leaf slots).
  t.update(150, 1);
  t.range_scan(150, 150, [](std::uint64_t, std::uint64_t v) {
    EXPECT_EQ(v, 1u);
  });
}

TEST(BPlusTree, FindBatchMatchesScalarFind) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 50'000; k += 3) t.insert(k, k + 7);
  util::SplitMix64 rng(12);
  // Sizes below, at, and above kBatchWidth exercise lockstep + remainder.
  for (std::size_t n :
       {std::size_t{1}, std::size_t{5}, BPlusTree::kBatchWidth,
        2 * BPlusTree::kBatchWidth + 3}) {
    std::vector<std::uint64_t> keys(n);
    std::vector<std::optional<std::uint64_t>> got(n);
    for (auto& k : keys) k = rng.next_below(60'000);
    t.find_batch(keys.data(), n, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], t.find(keys[i])) << "key " << keys[i];
    }
  }
  // Empty batch is a no-op.
  t.find_batch(nullptr, 0, nullptr);
}

TEST(BPlusTree, ForEachTemplateVisitorMatchesTypeErased) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 1'000; ++k) t.insert(k * 5, k);
  std::uint64_t sum_template = 0;
  t.for_each([&](std::uint64_t k, std::uint64_t v) { sum_template += k ^ v; });
  std::uint64_t sum_fn = 0;
  std::function<void(std::uint64_t, std::uint64_t)> fn =
      [&](std::uint64_t k, std::uint64_t v) { sum_fn += k ^ v; };
  t.for_each(fn);  // the thin std::function overload
  EXPECT_EQ(sum_template, sum_fn);
}

// Property test: random interleaving of all four operations, checked
// against std::map, with periodic structural validation.
class BPlusTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BPlusTreeFuzz, MatchesReferenceModel) {
  util::SplitMix64 rng(GetParam());
  BPlusTree t;
  std::map<std::uint64_t, std::uint64_t> ref;
  const std::uint64_t key_space = 1 + rng.next_below(2000);

  for (int step = 0; step < 20000; ++step) {
    std::uint64_t k = rng.next_below(key_space);
    switch (rng.next_below(4)) {
      case 0: {
        std::uint64_t v = rng.next();
        bool ok = t.insert(k, v);
        bool ref_ok = ref.emplace(k, v).second;
        ASSERT_EQ(ok, ref_ok) << "insert " << k << " at step " << step;
        break;
      }
      case 1: {
        bool ok = t.erase(k);
        bool ref_ok = ref.erase(k) > 0;
        ASSERT_EQ(ok, ref_ok) << "erase " << k << " at step " << step;
        break;
      }
      case 2: {
        auto v = t.find(k);
        auto it = ref.find(k);
        ASSERT_EQ(v.has_value(), it != ref.end()) << "find " << k;
        if (v) { ASSERT_EQ(*v, it->second); }
        break;
      }
      case 3: {
        std::uint64_t v = rng.next();
        bool ok = t.update(k, v);
        auto it = ref.find(k);
        ASSERT_EQ(ok, it != ref.end()) << "update " << k;
        if (ok) it->second = v;
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
    if (step % 2500 == 0) { ASSERT_TRUE(t.validate()) << "step " << step; }
  }
  ASSERT_TRUE(t.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace psmr::kvstore
