// The many-shard scenario end to end: deployments with dozens of multicast
// rings built from a declarative shard spec, multi-shard commands routed
// through the shard-aware C-G, and per-stream merge progress on every
// worker of every replica (idle rings' skips must reach each merge, or a
// single quiet shard wedges all 16+ rotations).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "kvstore/kv_client.h"
#include "smr/shard_spec.h"
#include "test_support.h"
#include "util/rng.h"

namespace psmr {
namespace {

using kvstore::KvClient;
using multicast::ShardPolicy;

/// Asserts that every worker stream of every replica consumed at least one
/// ring decision — i.e. the merge rotations all advanced past position 0.
void expect_all_streams_progressed(smr::Deployment& d, std::size_t replicas,
                                   std::size_t shards) {
  for (std::size_t r = 0; r < replicas; ++r) {
    auto* replica = d.psmr_replica(r);
    ASSERT_NE(replica, nullptr);
    for (std::size_t w = 0; w < shards; ++w) {
      ASSERT_EQ(replica->num_streams(w), 2u);  // [g_w ring, shared ring]
      for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_GT(replica->stream_position(w, s), 0u)
            << "replica " << r << " worker " << w << " stream " << s
            << " never advanced";
      }
    }
  }
}

// 16 range shards over a preloaded keyspace: per-shard updates stay in
// parallel mode, a scan spans exactly the shards its range covers, a
// multi-read spans the shards of its key list, and both replicas converge
// to one digest.
TEST(ShardedDeployment, SixteenRingsWithCrossShardCommands) {
  constexpr std::size_t kShards = 16;
  constexpr std::uint64_t kKeyspace = 1600;  // 100 keys per shard
  auto spec = smr::make_uniform_shard_spec(kShards, 2, kKeyspace,
                                           ShardPolicy::kRange);
  test_support::Cluster cluster(
      test_support::sharded_kv_config(spec, /*initial_keys=*/kKeyspace));
  KvClient client(cluster->make_client());

  // One update per shard (each a singleton destination: key k lives in
  // shard k / 100 under the range policy).
  std::uint64_t ops = 0;
  for (std::uint64_t s = 0; s < kShards; ++s) {
    ASSERT_EQ(client.update(s * 100 + 3, 1000 + s), kvstore::kKvOk);
    ++ops;
  }

  // Cross-shard multi-read: exact values from four different shards.
  auto got = client.multi_read({3, 103, 1203, 1599});
  ++ops;
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].value_or(0), 1000u);
  EXPECT_EQ(got[1].value_or(0), 1001u);
  EXPECT_EQ(got[2].value_or(0), 1012u);
  EXPECT_EQ(got[3].value_or(0), 1599u);  // untouched preload value

  // Cross-shard scans: deterministic digests, repeatable, and consistent
  // between a whole-range scan and itself after the writes above settle.
  auto digest1 = client.scan(150, 310);  // spans shards 1..3
  auto digest2 = client.scan(150, 310);
  ops += 2;
  ASSERT_TRUE(digest1.has_value());
  EXPECT_EQ(*digest1, *digest2) << "scan must be deterministic";
  auto full = client.scan(0, kKeyspace - 1);  // all 16 shards via g_all
  ++ops;
  ASSERT_TRUE(full.has_value());

  test_support::wait_executed(*cluster, ops);
  EXPECT_EQ(cluster->state_digest(0), cluster->state_digest(1));
  expect_all_streams_progressed(*cluster, 2, kShards);
}

// A 32-ring deployment from a parsed spec document — the "dozens of rings"
// configuration, instantiated from text rather than code.
TEST(ShardedDeployment, ThirtyTwoRingsFromParsedSpec) {
  constexpr std::size_t kShards = 32;
  auto text = smr::format_shard_spec(
      smr::make_uniform_shard_spec(kShards, 2, 3200, ShardPolicy::kHash));
  auto spec = smr::parse_shard_spec(text);
  ASSERT_EQ(spec.num_groups(), kShards);

  test_support::Cluster cluster(
      test_support::sharded_kv_config(spec, /*initial_keys=*/3200));
  KvClient client(cluster->make_client());

  std::uint64_t ops = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(client.update(k * 50, 7000 + k), kvstore::kKvOk);
    ++ops;
  }
  auto got = client.multi_read({0, 50, 100, 3150});
  ++ops;
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].value_or(0), 7000u);
  EXPECT_EQ(got[1].value_or(0), 7001u);
  EXPECT_EQ(got[2].value_or(0), 7002u);
  EXPECT_EQ(got[3].value_or(0), 7063u);

  test_support::wait_executed(*cluster, ops);
  EXPECT_EQ(cluster->state_digest(0), cluster->state_digest(1));
  expect_all_streams_progressed(*cluster, 2, kShards);
}

// Skewed concurrent load across 16 shards: each client thread owns one hot
// key (most of the traffic lands on two shards) and must observe its own
// writes — same-key ordering through a shard's ring — while cross-shard
// scans ride g_all.  Afterwards the replicas must agree and every merge
// stream must have advanced.
TEST(ShardedDeployment, SkewedSameKeyOrderingAcrossSixteenShards) {
  constexpr std::size_t kShards = 16;
  constexpr std::uint64_t kKeyspace = 1600;
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 60;
  auto spec = smr::make_uniform_shard_spec(kShards, 2, kKeyspace,
                                           ShardPolicy::kRange);
  // Skew the spec the IRON way: the hot shards carry declared extra weight
  // (the workload below honours it by pinning hot keys into shards 0/1).
  spec.traffic[0] = 4.0;
  spec.traffic[1] = 2.0;
  test_support::Cluster cluster(
      test_support::sharded_kv_config(spec, /*initial_keys=*/kKeyspace));

  const std::uint64_t seed = test_support::logged_seed(23);
  test_support::run_threads(kClients, [&](int c) {
    KvClient client(cluster->make_client());
    util::SplitMix64 rng(seed + static_cast<std::uint64_t>(c));
    // Hot key in shard (c % 2): shards 0 and 1 take all the update load.
    const std::uint64_t hot =
        static_cast<std::uint64_t>(c % 2) * 100 + 10 + c;
    std::uint64_t last = 0;
    for (int i = 1; i <= kOpsPerClient; ++i) {
      switch (rng.next_below(8)) {
        case 0: {  // cross-shard scan around the hot range
          auto d = client.scan(0, 250);
          EXPECT_TRUE(d.has_value());
          break;
        }
        case 1: {  // cold read from a random shard
          auto v = client.read(rng.next_below(kKeyspace));
          EXPECT_TRUE(v.has_value());
          break;
        }
        default: {  // skewed same-key write, then read-your-write
          last = static_cast<std::uint64_t>(i) + 100 * c;
          ASSERT_EQ(client.update(hot, last), kvstore::kKvOk);
          auto v = client.read(hot);
          ASSERT_TRUE(v.has_value());
          EXPECT_EQ(*v, last) << "client " << c << " lost its own write";
          break;
        }
      }
    }
  });

  // Convergence: both replicas end at the same state.
  auto probe = KvClient(cluster->make_client()).scan(0, kKeyspace - 1);
  EXPECT_TRUE(probe.has_value());
  test_support::wait_executed(*cluster, 1);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster->state_digest(0) != cluster->state_digest(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster->state_digest(0), cluster->state_digest(1));
  expect_all_streams_progressed(*cluster, 2, kShards);
}

}  // namespace
}  // namespace psmr
