// Checkpointing & recovery units (PR 8): the snapshot frame codec (hardened
// like response_batch.h — every truncation and every byte flip must
// reject), the per-service snapshot implementations (KV, concurrent KV,
// NetFS), acceptor-side log truncation keyed to checkpoint acks, and
// learner subscriptions resuming at a recorded instance.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "kvstore/kv_service.h"
#include "netfs/fs.h"
#include "paxos/ring.h"
#include "smr/snapshot.h"
#include "test_support.h"
#include "transport/network.h"
#include "util/rng.h"

namespace psmr::smr {
namespace {

using namespace std::chrono_literals;

// --- Snapshot frame codec ------------------------------------------------

SnapshotFrame make_frame() {
  SnapshotFrame f;
  f.executed = 12345;
  f.service_digest = 0xdeadbeefcafef00dULL;
  f.workers.resize(2);
  f.workers[0].positions = {17, 42};
  f.workers[0].merge_cursor = 1;
  f.workers[0].pending = {{0, {1, 2, 3}}, {1, {9}}};
  f.workers[0].dedup = {{5, 7, {0xaa}}, {9, 2, {}}};
  f.workers[1].positions = {3, 42};
  f.workers[1].merge_cursor = 0;
  f.workers[1].dedup = {{6, 1, {0xbb, 0xcc}}};
  f.service_state = {10, 20, 30, 40, 50};
  return f;
}

TEST(SnapshotCodec, RoundTrips) {
  SnapshotFrame in = make_frame();
  auto enc = encode_snapshot(in);
  auto out = decode_snapshot(enc);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->executed, in.executed);
  EXPECT_EQ(out->service_digest, in.service_digest);
  EXPECT_EQ(out->service_state, in.service_state);
  ASSERT_EQ(out->workers.size(), 2u);
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_EQ(out->workers[w].positions, in.workers[w].positions);
    EXPECT_EQ(out->workers[w].merge_cursor, in.workers[w].merge_cursor);
    ASSERT_EQ(out->workers[w].pending.size(), in.workers[w].pending.size());
    for (std::size_t i = 0; i < in.workers[w].pending.size(); ++i) {
      EXPECT_EQ(out->workers[w].pending[i].stream,
                in.workers[w].pending[i].stream);
      EXPECT_EQ(out->workers[w].pending[i].message,
                in.workers[w].pending[i].message);
    }
    ASSERT_EQ(out->workers[w].dedup.size(), in.workers[w].dedup.size());
    for (std::size_t i = 0; i < in.workers[w].dedup.size(); ++i) {
      EXPECT_EQ(out->workers[w].dedup[i].client,
                in.workers[w].dedup[i].client);
      EXPECT_EQ(out->workers[w].dedup[i].seq, in.workers[w].dedup[i].seq);
      EXPECT_EQ(out->workers[w].dedup[i].response,
                in.workers[w].dedup[i].response);
    }
  }
}

TEST(SnapshotCodec, EmptyFrameRoundTrips) {
  SnapshotFrame f;
  auto out = decode_snapshot(encode_snapshot(f));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->executed, 0u);
  EXPECT_TRUE(out->workers.empty());
  EXPECT_TRUE(out->service_state.empty());
}

TEST(SnapshotCodec, EncodingIsDeterministic) {
  // Byte-identical frames are what the cross-replica determinism check in
  // the integration suite compares; the codec must not introduce noise.
  EXPECT_EQ(encode_snapshot(make_frame()), encode_snapshot(make_frame()));
}

TEST(SnapshotCodec, EveryPrefixRejects) {
  auto enc = encode_snapshot(make_frame());
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    util::Buffer prefix(enc.begin(),
                        enc.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_snapshot(prefix).has_value()) << "cut " << cut;
  }
}

TEST(SnapshotCodec, TrailingBytesReject) {
  auto enc = encode_snapshot(make_frame());
  enc.push_back(0);
  EXPECT_FALSE(decode_snapshot(enc).has_value());
}

TEST(SnapshotCodec, EverySingleByteFlipRejects) {
  // The tail digest covers every preceding byte, so no single-byte
  // corruption — header, counts, payload, or the digest itself — may ever
  // produce a decodable frame.
  auto enc = encode_snapshot(make_frame());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    auto bad = enc;
    bad[i] ^= 0xff;
    EXPECT_FALSE(decode_snapshot(bad).has_value()) << "byte " << i;
  }
}

TEST(SnapshotCodec, HostileCountsWithValidDigestReject) {
  // A forged frame can recompute the tail digest, so the caps must hold on
  // their own: a worker count past kMaxWorkers with almost no bytes behind
  // it has to reject before any allocation runs away.
  util::Writer w;
  w.u32(0x50534E50);  // magic
  w.u32(1);           // version
  w.u64(0);           // executed
  w.u64(0);           // service digest
  w.u32(1u << 30);    // hostile worker count
  w.u64(util::fnv1a(w.view()));
  EXPECT_FALSE(decode_snapshot(w.view()).has_value());

  // Dedup entries must arrive sorted by client (canonical form).
  SnapshotFrame dup = make_frame();
  dup.workers[0].dedup = {{9, 1, {}}, {5, 1, {}}};
  EXPECT_FALSE(decode_snapshot(encode_snapshot(dup)).has_value());

  // A pending entry naming a stream the worker does not have is corrupt.
  SnapshotFrame stray = make_frame();
  stray.workers[1].pending = {{7, {1}}};
  EXPECT_FALSE(decode_snapshot(encode_snapshot(stray)).has_value());
}

TEST(SnapshotCodec, FuzzedFramesNeverOverreadOrCrash) {
  util::SplitMix64 rng(test_support::logged_seed(0xc4e7));
  auto base = encode_snapshot(make_frame());
  constexpr int kRounds = 4000;
  int decoded = 0;
  for (int round = 0; round < kRounds; ++round) {
    auto frame = base;
    int flips = 1 + static_cast<int>(rng.next() % 8);
    for (int i = 0; i < flips; ++i) {
      frame[rng.next() % frame.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next() % 255);
    }
    if (rng.next() % 4 == 0) frame.resize(rng.next() % (frame.size() + 1));
    if (decode_snapshot(frame).has_value()) ++decoded;
  }
  // Mutations may cancel out (re-flipping a byte back); anything else must
  // reject.  What this loop really checks is "no crash, no overread" under
  // ASan/UBSan-style scrutiny.
  EXPECT_LE(decoded, kRounds / 100);
}

// --- Service snapshot implementations ------------------------------------

Command kv_cmd(CommandId id, ClientId client, Seq seq, util::Buffer params) {
  Command c;
  c.cmd = id;
  c.client = client;
  c.seq = seq;
  c.params = std::move(params);
  return c;
}

template <typename ServiceT>
void mutate_kv(ServiceT& svc) {
  Seq seq = 1;
  for (std::uint64_t k = 0; k < 64; ++k) {
    svc.execute(kv_cmd(kvstore::kKvUpdate, 1, seq++,
                       kvstore::encode_key_value(k, k * 3 + 1)));
  }
  for (std::uint64_t k = 500; k < 520; ++k) {
    svc.execute(kv_cmd(kvstore::kKvInsert, 2, seq++,
                       kvstore::encode_key_value(k * 1000, k)));
  }
  svc.execute(kv_cmd(kvstore::kKvDelete, 1, seq++, kvstore::encode_key(10)));
}

template <typename ServiceT>
void kv_round_trip() {
  ServiceT src(200);
  mutate_kv(src);
  util::Writer w;
  ASSERT_TRUE(src.snapshot_to(w));
  ServiceT dst(0);
  util::Reader r(w.view());
  ASSERT_TRUE(dst.restore_from(r));
  EXPECT_EQ(dst.state_digest(), src.state_digest());

  // Truncated service payloads must reject (the frame digest catches wire
  // corruption; this catches a buggy writer).
  auto bytes = w.take();
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, bytes.size() - 1}) {
    ServiceT junk(5);
    util::Reader rr(std::span(bytes.data(), cut));
    EXPECT_FALSE(junk.restore_from(rr)) << "cut " << cut;
  }
}

TEST(ServiceSnapshot, KvServiceRoundTrips) {
  kv_round_trip<kvstore::KvService>();
}

TEST(ServiceSnapshot, ConcurrentKvServiceRoundTrips) {
  kv_round_trip<kvstore::ConcurrentKvService>();
}

TEST(ServiceSnapshot, KvRestoreReplacesExistingState) {
  kvstore::KvService src(50);
  util::Writer w;
  ASSERT_TRUE(src.snapshot_to(w));
  kvstore::KvService dst(9999);  // pre-existing state must vanish
  mutate_kv(dst);
  util::Reader r(w.view());
  ASSERT_TRUE(dst.restore_from(r));
  EXPECT_EQ(dst.state_digest(), src.state_digest());
}

TEST(ServiceSnapshot, MemFsRoundTrips) {
  netfs::MemFs src;
  ASSERT_EQ(src.mkdir("/a", 0755), 0);
  ASSERT_EQ(src.mkdir("/a/b", 0700), 0);
  ASSERT_EQ(src.create("/a/x.txt", 0644), 0);
  util::Buffer data(1500, 0x5a);
  ASSERT_EQ(src.write("/a/x.txt", 100, data), 0);
  ASSERT_EQ(src.utimens("/a/b", 111, 222), 0);
  std::uint64_t fh1 = 0, fh2 = 0;
  ASSERT_EQ(src.open("/a/x.txt", fh1), 0);
  ASSERT_EQ(src.opendir("/a", fh2), 0);

  util::Writer w;
  src.snapshot_to(w);
  netfs::MemFs dst;
  util::Reader r(w.view());
  ASSERT_TRUE(dst.restore_from(r));
  EXPECT_EQ(dst.digest(), src.digest());
  EXPECT_EQ(dst.inode_count(), src.inode_count());
  EXPECT_EQ(dst.open_count(), 2u);
  // The descriptor table and id allocators survive: releasing the restored
  // handles works, and fresh handles continue past the old ones.
  EXPECT_EQ(dst.release(fh1), 0);
  EXPECT_EQ(dst.releasedir(fh2), 0);
  std::uint64_t fh3 = 0;
  ASSERT_EQ(dst.open("/a/x.txt", fh3), 0);
  EXPECT_GT(fh3, fh2);

  auto bytes = w.take();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 13) {
    netfs::MemFs junk;
    util::Reader rr(std::span(bytes.data(), cut));
    EXPECT_FALSE(junk.restore_from(rr)) << "cut " << cut;
  }
}

// --- Acceptor log truncation ---------------------------------------------

util::Buffer cmd(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

paxos::RingConfig truncating_ring(std::size_t ackers) {
  paxos::RingConfig cfg = test_support::fast_ring();
  cfg.checkpoint_ackers = ackers;
  // One command per instance: the tests below reason about instance
  // numbers, so keep the command->instance mapping trivial.
  cfg.max_batch_commands = 1;
  return cfg;
}

void send_ack(transport::Network& net, transport::NodeId from,
              const paxos::Ring& ring, std::uint64_t replica,
              paxos::Instance inst) {
  for (auto acceptor : ring.acceptor_ids()) {
    util::Writer w;
    w.u64(replica);
    w.u64(inst);
    net.send(from, acceptor, transport::MsgType::kPaxosCheckpointAck,
             w.take());
  }
}

/// Drains `log` until at least `want` commands were seen; returns the
/// instance of the last drained delivery.
paxos::Instance drain_commands(paxos::LearnerLog& log, std::uint64_t want) {
  std::uint64_t got = 0;
  paxos::Instance last = 0;
  while (got < want) {
    auto d = log.next_for(5s);
    if (!d) break;
    last = d->instance;
    if (!d->batch.skip) got += d->batch.commands.size();
  }
  EXPECT_GE(got, want);
  return last;
}

TEST(LogTruncation, QuorumOfAcksTruncates) {
  transport::Network net;
  paxos::Ring ring(net, 0, truncating_ring(/*ackers=*/2));
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(ring.submit(me, cmd(i)));
  paxos::Instance last = drain_commands(*learner, 300);
  ASSERT_GE(last, 299u);

  // One acker is not a quorum: nothing may be dropped.
  send_ack(net, me, ring, /*replica=*/0, last);
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(ring.truncated_instances(), 0u);

  // The second ack completes the quorum; the floor is min(acks) = last/2,
  // so every acceptor drops at least the `last/2` instances below it.
  // Each of the ring's acceptors truncates independently; wait until the
  // aggregate count has gone quiet before reasoning about its value.
  send_ack(net, me, ring, /*replica=*/1, last / 2);
  auto stable_truncated = [&ring] {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    std::uint64_t seen = ring.truncated_instances();
    auto changed = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(2ms);
      std::uint64_t now = ring.truncated_instances();
      if (now != seen || now == 0) {
        seen = now;
        changed = std::chrono::steady_clock::now();
      } else if (std::chrono::steady_clock::now() - changed > 100ms) {
        break;
      }
    }
    return seen;
  };
  EXPECT_GE(stable_truncated(), last / 2);

  // A stale (lower) re-ack must never move the floor backwards, and a
  // fresher quorum advances it further.
  const std::uint64_t truncated = ring.truncated_instances();
  send_ack(net, me, ring, /*replica=*/1, last / 4);
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(ring.truncated_instances(), truncated);
  send_ack(net, me, ring, /*replica=*/1, last);
  auto deadline = std::chrono::steady_clock::now() + 5s;
  while (ring.truncated_instances() <= truncated &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_GT(ring.truncated_instances(), truncated);
}

TEST(LogTruncation, DisabledByDefault) {
  transport::Network net;
  paxos::Ring ring(net, 0, test_support::fast_ring());  // ackers = 0
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(ring.submit(me, cmd(i)));
  paxos::Instance last = drain_commands(*learner, 100);
  send_ack(net, me, ring, 0, last);
  send_ack(net, me, ring, 1, last);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(ring.truncated_instances(), 0u);
}

TEST(LogTruncation, CatchUpStillServesAboveTheFloor) {
  transport::Network net;
  paxos::Ring ring(net, 0, truncating_ring(/*ackers=*/1));
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 200; ++i) ASSERT_TRUE(ring.submit(me, cmd(i)));
  paxos::Instance last = drain_commands(*learner, 200);

  // Truncate everything below the midpoint...
  const paxos::Instance floor = last / 2;
  send_ack(net, me, ring, 0, floor);
  auto deadline = std::chrono::steady_clock::now() + 5s;
  while (ring.truncated_instances() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GT(ring.truncated_instances(), 0u);

  // ...then a late subscriber resuming at the floor still gets a complete,
  // gap-free suffix via acceptor catch-up.
  auto late = ring.subscribe(floor);
  paxos::Instance expect = floor;
  while (expect <= last) {
    auto d = late->next_for(5s);
    ASSERT_TRUE(d.has_value()) << "stalled at instance " << expect;
    ASSERT_EQ(d->instance, expect);
    ++expect;
  }
}

TEST(LearnerResume, SubscribeAtStartSkipsThePrefix) {
  transport::Network net;
  paxos::Ring ring(net, 0, test_support::fast_ring());
  auto first = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 150; ++i) ASSERT_TRUE(ring.submit(me, cmd(i)));

  // Record the full decided sequence through the first learner.
  std::vector<std::pair<paxos::Instance, bool>> seq;
  std::uint64_t got = 0;
  while (got < 150) {
    auto d = first->next_for(5s);
    ASSERT_TRUE(d.has_value());
    seq.emplace_back(d->instance, d->batch.skip);
    if (!d->batch.skip) got += d->batch.commands.size();
  }
  const paxos::Instance mid = seq[seq.size() / 2].first;

  // A resumed subscription starts exactly at `mid` — nothing earlier —
  // and replays the suffix in instance order.
  auto resumed = ring.subscribe(mid);
  paxos::Instance expect = mid;
  while (expect <= seq.back().first) {
    auto d = resumed->next_for(5s);
    ASSERT_TRUE(d.has_value()) << "stalled at instance " << expect;
    ASSERT_EQ(d->instance, expect);
    ++expect;
  }
}

}  // namespace
}  // namespace psmr::smr
