// Unit tests for the key-value service binding (command interpretation,
// marshaling, preload, digests) — paper Section V-A semantics.
#include <gtest/gtest.h>

#include "kvstore/kv_service.h"

namespace psmr::kvstore {
namespace {

smr::Command cmd(smr::CommandId id, util::Buffer params) {
  smr::Command c;
  c.cmd = id;
  c.client = 1;
  c.seq = 1;
  c.params = std::move(params);
  return c;
}

KvResult run(smr::Service& svc, smr::CommandId id, util::Buffer params) {
  return decode_result(svc.execute(cmd(id, std::move(params))));
}

TEST(KvService, InsertReadUpdateDelete) {
  KvService svc;
  EXPECT_EQ(run(svc, kKvInsert, encode_key_value(7, 70)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvInsert, encode_key_value(7, 71)).status, kKvExists);
  auto rd = run(svc, kKvRead, encode_key(7));
  EXPECT_EQ(rd.status, kKvOk);
  EXPECT_EQ(rd.value, 70u);
  EXPECT_EQ(run(svc, kKvUpdate, encode_key_value(7, 77)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvRead, encode_key(7)).value, 77u);
  EXPECT_EQ(run(svc, kKvDelete, encode_key(7)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvRead, encode_key(7)).status, kKvNotFound);
  EXPECT_EQ(run(svc, kKvUpdate, encode_key_value(7, 1)).status, kKvNotFound);
  EXPECT_EQ(run(svc, kKvDelete, encode_key(7)).status, kKvNotFound);
}

TEST(KvService, PreloadInitializesRange) {
  KvService svc(/*initial_keys=*/1000);
  EXPECT_EQ(svc.tree().size(), 1000u);
  EXPECT_EQ(run(svc, kKvRead, encode_key(0)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvRead, encode_key(999)).value, 999u);
  EXPECT_EQ(run(svc, kKvRead, encode_key(1000)).status, kKvNotFound);
}

TEST(KvService, DigestReflectsContentNotHistory) {
  KvService a, b;
  run(a, kKvInsert, encode_key_value(1, 10));
  run(a, kKvInsert, encode_key_value(2, 20));
  run(b, kKvInsert, encode_key_value(2, 20));
  run(b, kKvInsert, encode_key_value(1, 99));
  run(b, kKvUpdate, encode_key_value(1, 10));
  EXPECT_EQ(a.state_digest(), b.state_digest());
  run(b, kKvDelete, encode_key(2));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(KvService, UnknownCommandFailsGracefully) {
  KvService svc;
  EXPECT_EQ(run(svc, 999, encode_key(1)).status, kKvNotFound);
}

TEST(KvService, ConcurrentVariantMatchesSequentialSemantics) {
  KvService plain(100);
  ConcurrentKvService concurrent(100);
  for (std::uint64_t k = 0; k < 100; k += 3) {
    EXPECT_EQ(run(plain, kKvUpdate, encode_key_value(k, k * 7)).status,
              run(concurrent, kKvUpdate, encode_key_value(k, k * 7)).status);
  }
  EXPECT_EQ(run(plain, kKvRead, encode_key(9)).value,
            run(concurrent, kKvRead, encode_key(9)).value);
  EXPECT_EQ(plain.state_digest(), concurrent.state_digest());
}

TEST(KvService, LockedWrapperIsTransparent) {
  auto locked = smr::LockedService(std::make_unique<KvService>(10));
  EXPECT_EQ(decode_result(locked.execute(cmd(kKvRead, encode_key(5)))).value,
            5u);
  EXPECT_EQ(locked.state_digest(), KvService(10).state_digest());
}

TEST(KvCodec, ResultRoundTrip) {
  KvResult in{kKvExists, 0xdeadbeefcafef00dULL};
  auto out = decode_result(encode_result(in));
  EXPECT_EQ(out.status, kKvExists);
  EXPECT_EQ(out.value, in.value);
}

TEST(KvCodec, KeyExtraction) {
  EXPECT_EQ(decode_key(encode_key(42)), 42u);
  EXPECT_EQ(decode_key(encode_key_value(43, 99)), 43u);
}

}  // namespace
}  // namespace psmr::kvstore
