// Unit tests for the key-value service binding (command interpretation,
// marshaling, preload, digests) — paper Section V-A semantics.
#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "kvstore/kv_service.h"

namespace psmr::kvstore {
namespace {

smr::Command cmd(smr::CommandId id, util::Buffer params) {
  smr::Command c;
  c.cmd = id;
  c.client = 1;
  c.seq = 1;
  c.params = std::move(params);
  return c;
}

KvResult run(smr::Service& svc, smr::CommandId id, util::Buffer params) {
  return decode_result(svc.execute(cmd(id, std::move(params))));
}

TEST(KvService, InsertReadUpdateDelete) {
  KvService svc;
  EXPECT_EQ(run(svc, kKvInsert, encode_key_value(7, 70)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvInsert, encode_key_value(7, 71)).status, kKvExists);
  auto rd = run(svc, kKvRead, encode_key(7));
  EXPECT_EQ(rd.status, kKvOk);
  EXPECT_EQ(rd.value, 70u);
  EXPECT_EQ(run(svc, kKvUpdate, encode_key_value(7, 77)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvRead, encode_key(7)).value, 77u);
  EXPECT_EQ(run(svc, kKvDelete, encode_key(7)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvRead, encode_key(7)).status, kKvNotFound);
  EXPECT_EQ(run(svc, kKvUpdate, encode_key_value(7, 1)).status, kKvNotFound);
  EXPECT_EQ(run(svc, kKvDelete, encode_key(7)).status, kKvNotFound);
}

TEST(KvService, PreloadInitializesRange) {
  KvService svc(/*initial_keys=*/1000);
  EXPECT_EQ(svc.tree().size(), 1000u);
  EXPECT_EQ(run(svc, kKvRead, encode_key(0)).status, kKvOk);
  EXPECT_EQ(run(svc, kKvRead, encode_key(999)).value, 999u);
  EXPECT_EQ(run(svc, kKvRead, encode_key(1000)).status, kKvNotFound);
}

TEST(KvService, DigestReflectsContentNotHistory) {
  KvService a, b;
  run(a, kKvInsert, encode_key_value(1, 10));
  run(a, kKvInsert, encode_key_value(2, 20));
  run(b, kKvInsert, encode_key_value(2, 20));
  run(b, kKvInsert, encode_key_value(1, 99));
  run(b, kKvUpdate, encode_key_value(1, 10));
  EXPECT_EQ(a.state_digest(), b.state_digest());
  run(b, kKvDelete, encode_key(2));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(KvService, UnknownCommandFailsGracefully) {
  KvService svc;
  EXPECT_EQ(run(svc, 999, encode_key(1)).status, kKvNotFound);
}

TEST(KvService, ConcurrentVariantMatchesSequentialSemantics) {
  KvService plain(100);
  ConcurrentKvService concurrent(100);
  for (std::uint64_t k = 0; k < 100; k += 3) {
    EXPECT_EQ(run(plain, kKvUpdate, encode_key_value(k, k * 7)).status,
              run(concurrent, kKvUpdate, encode_key_value(k, k * 7)).status);
  }
  EXPECT_EQ(run(plain, kKvRead, encode_key(9)).value,
            run(concurrent, kKvRead, encode_key(9)).value);
  EXPECT_EQ(plain.state_digest(), concurrent.state_digest());
}

TEST(KvService, LockedWrapperIsTransparent) {
  auto locked = smr::LockedService(std::make_unique<KvService>(10));
  EXPECT_EQ(decode_result(locked.execute(cmd(kKvRead, encode_key(5)))).value,
            5u);
  EXPECT_EQ(locked.state_digest(), KvService(10).state_digest());
}

TEST(KvService, ScanDigestsRange) {
  KvService svc(1000);  // keys 0..999, value == key
  // A scan's value folds (count, contents): equal ranges agree across
  // service instances, and any update inside the range changes it.
  KvService twin(1000);
  auto a = run(svc, kKvScan, encode_key_range(100, 199));
  auto b = run(twin, kKvScan, encode_key_range(100, 199));
  EXPECT_EQ(a.status, kKvOk);
  EXPECT_EQ(a.value, b.value);
  // Outside-the-range update: digest unchanged.
  EXPECT_EQ(run(twin, kKvUpdate, encode_key_value(500, 1)).status, kKvOk);
  EXPECT_EQ(run(twin, kKvScan, encode_key_range(100, 199)).value, a.value);
  // Inside-the-range update: digest moves.
  EXPECT_EQ(run(twin, kKvUpdate, encode_key_value(150, 1)).status, kKvOk);
  EXPECT_NE(run(twin, kKvScan, encode_key_range(100, 199)).value, a.value);
  // Empty range: deterministic sentinel (count 0), still kKvOk.
  auto empty = run(svc, kKvScan, encode_key_range(5000, 6000));
  EXPECT_EQ(empty.status, kKvOk);
  EXPECT_EQ(empty.value, 0xcbf29ce484222325ULL);  // FNV offset ^ 0
  // Both tree bindings answer identically.
  ConcurrentKvService locked(1000);
  EXPECT_EQ(run(locked, kKvScan, encode_key_range(100, 199)).value, a.value);
}

TEST(KvService, MultiReadMatchesPointReads) {
  KvService svc(500);
  ConcurrentKvService locked(500);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 40; ++k) keys.push_back(k * 13);  // some miss
  for (auto* s : std::initializer_list<smr::Service*>{&svc, &locked}) {
    auto multi =
        decode_multi_result(s->execute(cmd(kKvMultiRead, encode_keys(keys))));
    ASSERT_EQ(multi.entries.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto single = run(*s, kKvRead, encode_key(keys[i]));
      EXPECT_EQ(multi.entries[i].status, single.status) << keys[i];
      if (single.status == kKvOk) {
        EXPECT_EQ(multi.entries[i].value, single.value) << keys[i];
      }
    }
  }
}

TEST(KvCodec, ResultRoundTrip) {
  KvResult in{kKvExists, 0xdeadbeefcafef00dULL};
  auto out = decode_result(encode_result(in));
  EXPECT_EQ(out.status, kKvExists);
  EXPECT_EQ(out.value, in.value);
}

TEST(KvCodec, MultiResultRoundTrip) {
  KvMultiResult in;
  in.entries.push_back({kKvOk, 7});
  in.entries.push_back({kKvNotFound, 0});
  in.entries.push_back({kKvOk, ~0ULL});
  auto out = decode_multi_result(encode_multi_result(in));
  ASSERT_EQ(out.entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.entries[i].status, in.entries[i].status);
    EXPECT_EQ(out.entries[i].value, in.entries[i].value);
  }
}

TEST(KvCodec, KeyExtraction) {
  EXPECT_EQ(decode_key(encode_key(42)), 42u);
  EXPECT_EQ(decode_key(encode_key_value(43, 99)), 43u);
}

}  // namespace
}  // namespace psmr::kvstore
