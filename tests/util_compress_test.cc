#include "util/compress.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace psmr::util {
namespace {

Buffer to_buf(const std::string& s) {
  return Buffer(s.begin(), s.end());
}

TEST(Compress, EmptyInput) {
  auto block = lz_compress({});
  auto out = lz_decompress(block);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Compress, SmallLiteral) {
  Buffer in = to_buf("abc");
  auto out = lz_decompress(lz_compress(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(Compress, RepetitiveDataShrinks) {
  Buffer in;
  for (int i = 0; i < 1000; ++i) {
    const char* chunk = "the quick brown fox jumps over the lazy dog ";
    for (const char* p = chunk; *p; ++p) in.push_back(*p);
  }
  auto block = lz_compress(in);
  EXPECT_LT(block.size(), in.size() / 4);
  auto out = lz_decompress(block);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(Compress, AllSameByte) {
  Buffer in(100000, 0x42);
  auto block = lz_compress(in);
  EXPECT_LT(block.size(), 1000u);  // overlapping match handles runs
  auto out = lz_decompress(block);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(Compress, IncompressibleRoundTrips) {
  SplitMix64 rng(77);
  Buffer in;
  for (int i = 0; i < 65536; ++i) {
    in.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  auto block = lz_compress(in);
  auto out = lz_decompress(block);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(Compress, RejectsTruncatedBlock) {
  Buffer in = to_buf("hello hello hello hello hello hello");
  auto block = lz_compress(in);
  for (std::size_t cut = 0; cut < block.size(); cut += 3) {
    Buffer truncated(block.begin(),
                     block.begin() + static_cast<std::ptrdiff_t>(cut));
    auto out = lz_decompress(truncated);
    if (out.has_value()) {
      // A prefix that happens to decode must not silently produce wrong data.
      EXPECT_EQ(*out, in);
    }
  }
}

TEST(Compress, RejectsGarbageHeader) {
  Buffer garbage = {0xff, 0xff, 0xff};
  EXPECT_FALSE(lz_decompress(garbage).has_value());
}

// Property sweep: random mixtures of runs and noise at varying sizes.
class CompressRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressRoundTrip, RoundTrips) {
  SplitMix64 rng(GetParam() * 31 + 1);
  Buffer in;
  std::size_t target = GetParam();
  while (in.size() < target) {
    if (rng.chance(0.5)) {
      // Run of a repeated short motif.
      std::size_t motif_len = 1 + rng.next_below(8);
      std::size_t repeats = 1 + rng.next_below(50);
      Buffer motif;
      for (std::size_t i = 0; i < motif_len; ++i) {
        motif.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      for (std::size_t r = 0; r < repeats; ++r) {
        in.insert(in.end(), motif.begin(), motif.end());
      }
    } else {
      std::size_t n = 1 + rng.next_below(64);
      for (std::size_t i = 0; i < n; ++i) {
        in.push_back(static_cast<std::uint8_t>(rng.next()));
      }
    }
  }
  in.resize(target);
  auto out = lz_decompress(lz_compress(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 15, 16, 17, 100,
                                           1024, 4096, 65535, 65536, 65537,
                                           1 << 18));

}  // namespace
}  // namespace psmr::util
