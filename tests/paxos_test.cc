#include "paxos/ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "transport/network.h"
#include "util/hash.h"

namespace psmr::paxos {
namespace {

using transport::Network;

util::Buffer cmd(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

std::uint64_t cmd_id(std::span<const std::uint8_t> b) {
  util::Reader r(b);
  return r.u64();
}

RingConfig fast_config() {
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(200);
  cfg.rto = std::chrono::microseconds(2000);
  return cfg;
}

TEST(Batch, EncodeDecodeRoundTrip) {
  Batch b;
  b.skip = false;
  b.commands = {cmd(1), cmd(2), cmd(3)};
  auto enc = b.encode();
  auto dec = Batch::decode(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_FALSE(dec->skip);
  ASSERT_EQ(dec->commands.size(), 3u);
  EXPECT_EQ(cmd_id(dec->commands[0]), 1u);
  EXPECT_EQ(cmd_id(dec->commands[2]), 3u);
}

TEST(Batch, SkipRoundTrip) {
  Batch b;
  b.skip = true;
  auto dec = Batch::decode(b.encode());
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->skip);
  EXPECT_TRUE(dec->commands.empty());
}

TEST(Batch, CorruptionDetected) {
  Batch b;
  b.commands = {cmd(42)};
  auto enc = b.encode().to_buffer();
  enc[enc.size() / 2] ^= 0xff;
  EXPECT_FALSE(Batch::decode(enc).has_value());
}

TEST(Batch, TruncationDetected) {
  Batch b;
  b.commands = {cmd(42)};
  auto enc = b.encode().to_buffer();
  enc.resize(enc.size() - 1);
  EXPECT_FALSE(Batch::decode(enc).has_value());
}

TEST(Ring, DecidesSubmittedCommandsInOrder) {
  Network net;
  Ring ring(net, 0, fast_config());
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  constexpr std::uint64_t kN = 500;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(ring.submit(me, cmd(i)));
  }
  std::uint64_t expect = 0;
  while (expect < kN) {
    auto d = learner->next_for(std::chrono::seconds(5));
    ASSERT_TRUE(d.has_value()) << "stalled at " << expect;
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      EXPECT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }
}

TEST(Ring, TwoLearnersSeeIdenticalSequences) {
  Network net;
  Ring ring(net, 0, fast_config());
  auto l1 = ring.subscribe();
  auto l2 = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 300; ++i) ring.submit(me, cmd(i));

  auto drain = [](LearnerLog& log, std::uint64_t want) {
    std::vector<std::pair<Instance, std::uint64_t>> seq;
    std::uint64_t got = 0;
    while (got < want) {
      auto d = log.next_for(std::chrono::seconds(5));
      if (!d) break;
      if (d->batch.skip) continue;
      for (const auto& c : d->batch.commands) {
        seq.emplace_back(d->instance, cmd_id(c));
        ++got;
      }
    }
    return seq;
  };
  auto s1 = drain(*l1, 300);
  auto s2 = drain(*l2, 300);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 300u);
}

TEST(Ring, BatchesRespectSizeLimit) {
  Network net;
  RingConfig cfg = fast_config();
  cfg.max_batch_bytes = 64;  // tiny batches: 8 commands of 8 bytes each
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 100; ++i) ring.submit(me, cmd(i));
  std::uint64_t got = 0;
  while (got < 100) {
    auto d = learner->next_for(std::chrono::seconds(5));
    ASSERT_TRUE(d);
    if (d->batch.skip) continue;
    EXPECT_LE(d->batch.commands.size(), 9u);
    got += d->batch.commands.size();
  }
}

TEST(Ring, SkipsGeneratedWhenIdle) {
  Network net;
  RingConfig cfg = fast_config();
  cfg.skip_interval = std::chrono::microseconds(500);
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  int skips = 0;
  for (int i = 0; i < 20; ++i) {
    auto d = learner->next_for(std::chrono::seconds(2));
    ASSERT_TRUE(d.has_value());
    if (d->batch.skip) ++skips;
  }
  EXPECT_GE(skips, 15);  // an idle ring is nearly all skips
}

TEST(Ring, SurvivesMessageLoss) {
  Network net;
  RingConfig cfg = fast_config();
  cfg.rto = std::chrono::microseconds(3000);
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  net.set_drop_probability(0.10);

  constexpr std::uint64_t kN = 100;
  std::set<std::uint64_t> want;
  for (std::uint64_t i = 0; i < kN; ++i) want.insert(i);

  std::set<std::uint64_t> got;
  // Keep resubmitting undelivered commands; duplicates are possible (the
  // submit itself may be dropped before reaching the coordinator), so we
  // check set coverage rather than exact order.
  for (int attempt = 0; attempt < 60 && got.size() < kN; ++attempt) {
    for (auto id : want) {
      if (!got.contains(id)) ring.submit(me, cmd(id));
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < deadline && got.size() < kN) {
      auto d = learner->next_for(std::chrono::milliseconds(50));
      if (!d || d->batch.skip) continue;
      for (const auto& c : d->batch.commands) got.insert(cmd_id(c));
    }
  }
  EXPECT_EQ(got.size(), kN);
}

TEST(Ring, LateSubscriberCatchesUp) {
  Network net;
  Ring ring(net, 0, fast_config());
  auto early = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 50; ++i) ring.submit(me, cmd(i));
  // Wait until everything is decided (observed via the early learner).
  std::uint64_t got = 0;
  while (got < 50) {
    auto d = early->next_for(std::chrono::seconds(5));
    ASSERT_TRUE(d);
    if (!d->batch.skip) got += d->batch.commands.size();
  }
  // A late learner must recover the full prefix from the acceptors.
  auto late = ring.subscribe();
  std::uint64_t expect = 0;
  while (expect < 50) {
    auto d = late->next_for(std::chrono::seconds(10));
    ASSERT_TRUE(d.has_value()) << "late learner stalled at " << expect;
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      EXPECT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }
}

TEST(Ring, CoordinatorFailover) {
  Network net;
  Ring ring(net, 0, fast_config());
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 100; ++i) ring.submit(me, cmd(i));
  // Drain the first 100 to make sure they are decided pre-failover.
  std::uint64_t expect = 0;
  while (expect < 100) {
    auto d = learner->next_for(std::chrono::seconds(5));
    ASSERT_TRUE(d);
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      EXPECT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }

  auto old_coord = ring.coordinator();
  auto new_coord = ring.fail_coordinator();
  EXPECT_NE(old_coord, new_coord);

  for (std::uint64_t i = 100; i < 200; ++i) ring.submit(me, cmd(i));
  while (expect < 200) {
    auto d = learner->next_for(std::chrono::seconds(10));
    ASSERT_TRUE(d.has_value()) << "stalled at " << expect << " post-failover";
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      EXPECT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }
}

TEST(Ring, CompetingCoordinatorsStaySafe) {
  // Paxos safety under dueling proposers: reconnect the deposed coordinator
  // so both keep proposing; learners must still observe identical sequences.
  Network net;
  Ring ring(net, 0, fast_config());
  auto l1 = ring.subscribe();
  auto l2 = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  auto old_coord = ring.coordinator();
  ring.fail_coordinator();
  net.reconnect(old_coord);  // zombie coordinator with a stale ballot

  // Feed commands to both coordinators directly.
  for (std::uint64_t i = 0; i < 200; ++i) {
    transport::NodeId target = (i % 2 == 0) ? old_coord : ring.coordinator();
    net.send(me, target, transport::MsgType::kPaxosSubmit, cmd(i));
  }

  auto drain = [](LearnerLog& log, std::size_t want_at_least) {
    std::vector<std::pair<Instance, std::uint64_t>> seq;
    while (seq.size() < want_at_least) {
      auto d = log.next_for(std::chrono::seconds(2));
      if (!d) break;
      if (d->batch.skip) continue;
      for (const auto& c : d->batch.commands) {
        seq.emplace_back(d->instance, cmd_id(c));
      }
    }
    return seq;
  };
  // At least the commands sent to the live coordinator must decide; the
  // zombie's may or may not (it can re-prepare with a higher ballot).
  auto s1 = drain(*l1, 100);
  auto s2 = drain(*l2, s1.size());
  ASSERT_GE(s1.size(), 100u);
  s2.resize(std::min(s1.size(), s2.size()));
  s1.resize(s2.size());
  EXPECT_EQ(s1, s2);  // agreement: no divergence at any instance
}

}  // namespace
}  // namespace psmr::paxos
