// Unit tests for the key→group sharding layer: ShardMap policies and
// boundary behaviour, the shard-aware C-G function (including its
// per-instance refinement of the conservative multi-key dependencies), and
// the declarative shard-spec parser.
#include "multicast/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "kvstore/kv_service.h"
#include "smr/shard_cg.h"
#include "smr/shard_spec.h"
#include "util/rng.h"

namespace psmr {
namespace {

using multicast::GroupSet;
using multicast::ShardMap;
using multicast::ShardPolicy;

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

TEST(ShardMap, HashPolicyCoversEveryShardEvenly) {
  ShardMap map(ShardPolicy::kHash, 16, 1 << 16);
  std::vector<std::uint64_t> hits(16, 0);
  for (std::uint64_t k = 0; k < 16000; ++k) {
    auto g = map.group_of(k);
    ASSERT_LT(g, 16u);
    ++hits[g];
  }
  // mix64 spreads sequential keys: every shard gets within 2x of fair share.
  for (auto h : hits) {
    EXPECT_GT(h, 500u);
    EXPECT_LT(h, 2000u);
  }
}

TEST(ShardMap, RangePolicyBoundaries) {
  // keyspace 100, 4 shards -> span 25: [0,24] [25,49] [50,74] [75,...].
  ShardMap map(ShardPolicy::kRange, 4, 100);
  EXPECT_EQ(map.group_of(0), 0u);
  EXPECT_EQ(map.group_of(24), 0u);
  EXPECT_EQ(map.group_of(25), 1u);
  EXPECT_EQ(map.group_of(49), 1u);
  EXPECT_EQ(map.group_of(50), 2u);
  EXPECT_EQ(map.group_of(75), 3u);
  EXPECT_EQ(map.group_of(99), 3u);
  // Keys beyond the declared keyspace clamp to the last shard.
  EXPECT_EQ(map.group_of(100), 3u);
  EXPECT_EQ(map.group_of(~std::uint64_t{0}), 3u);
}

TEST(ShardMap, RangeOfRoundTrips) {
  ShardMap map(ShardPolicy::kRange, 7, 1000);
  for (multicast::GroupId s = 0; s < 7; ++s) {
    auto [lo, hi] = map.range_of(s);
    EXPECT_EQ(map.group_of(lo), s);
    EXPECT_EQ(map.group_of(hi), s);
    if (s > 0) EXPECT_EQ(map.group_of(lo - 1), s - 1);
  }
  // The last shard absorbs the clamped tail.
  EXPECT_EQ(map.range_of(6).second, ~std::uint64_t{0});
}

TEST(ShardMap, GroupsForRangeIsTheExactCover) {
  ShardMap map(ShardPolicy::kRange, 4, 100);
  EXPECT_EQ(map.groups_for_range(0, 24), GroupSet::single(0));
  EXPECT_EQ(map.groups_for_range(10, 30),
            GroupSet::single(0) | GroupSet::single(1));
  EXPECT_EQ(map.groups_for_range(25, 74),
            GroupSet::single(1) | GroupSet::single(2));
  EXPECT_EQ(map.groups_for_range(0, 99), GroupSet::all(4));
  EXPECT_EQ(map.groups_for_range(80, 5000), GroupSet::single(3));
  EXPECT_TRUE(map.groups_for_range(30, 10).empty());  // vacuous range
}

TEST(ShardMap, GroupsForRangeUnderHashIsEverything) {
  // A hashed range may contain keys of any shard, so the cover must be all.
  ShardMap map(ShardPolicy::kHash, 8, 1 << 20);
  EXPECT_EQ(map.groups_for_range(10, 12), GroupSet::all(8));
  EXPECT_TRUE(map.groups_for_range(12, 10).empty());
}

TEST(ShardMap, GroupsForKeysIsTheUnionOfOwners) {
  ShardMap map(ShardPolicy::kRange, 4, 100);
  std::vector<std::uint64_t> keys{3, 26, 27, 99};
  auto cover = map.groups_for_keys(keys);
  EXPECT_EQ(cover,
            GroupSet::single(0) | GroupSet::single(1) | GroupSet::single(3));
  for (auto k : keys) EXPECT_TRUE(cover.contains(map.group_of(k)));
}

TEST(ShardMap, RemapIsDeterministic) {
  // Two independently constructed maps with equal parameters must place
  // every key identically — client proxies and test oracles rely on it.
  for (auto policy : {ShardPolicy::kHash, ShardPolicy::kRange}) {
    ShardMap a(policy, 12, 4096);
    ShardMap b(policy, 12, 4096);
    util::SplitMix64 rng(99);
    for (int i = 0; i < 5000; ++i) {
      std::uint64_t k = rng.next();
      EXPECT_EQ(a.group_of(k), b.group_of(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Shard-aware C-G (via the KV service binding)
// ---------------------------------------------------------------------------

smr::Command kv_cmd(smr::CommandId id, util::Buffer params) {
  smr::Command c;
  c.cmd = id;
  c.client = 7;
  c.seq = 1;
  c.params = std::move(params);
  return c;
}

TEST(ShardedCg, SingleKeyCommandsGoToTheirShard) {
  ShardMap map(ShardPolicy::kRange, 8, 800);
  auto cg = kvstore::kv_sharded_cg(map);
  EXPECT_EQ(cg->mpl(), 8u);
  for (std::uint64_t k : {0ull, 99ull, 100ull, 555ull, 799ull}) {
    auto read = cg->groups(kv_cmd(kvstore::kKvRead, kvstore::encode_key(k)));
    auto update = cg->groups(
        kv_cmd(kvstore::kKvUpdate, kvstore::encode_key_value(k, 1)));
    EXPECT_EQ(read, GroupSet::single(map.group_of(k)));
    EXPECT_EQ(update, read) << "read and update of one key must colocate";
  }
}

TEST(ShardedCg, StructureChangersStayGlobal) {
  ShardMap map(ShardPolicy::kRange, 8, 800);
  auto cg = kvstore::kv_sharded_cg(map);
  EXPECT_EQ(cg->groups(kv_cmd(kvstore::kKvInsert,
                              kvstore::encode_key_value(5, 1))),
            GroupSet::all(8));
  EXPECT_EQ(cg->groups(kv_cmd(kvstore::kKvDelete, kvstore::encode_key(5))),
            GroupSet::all(8));
}

TEST(ShardedCg, ScanCoversExactlyItsShardsUnderRange) {
  ShardMap map(ShardPolicy::kRange, 8, 800);
  auto cg = kvstore::kv_sharded_cg(map);
  auto scan = cg->groups(
      kv_cmd(kvstore::kKvScan, kvstore::encode_key_range(150, 310)));
  // span 100: [100..199]=1, [200..299]=2, [300..399]=3.
  EXPECT_EQ(scan,
            GroupSet::single(1) | GroupSet::single(2) | GroupSet::single(3));
  // A one-shard scan stays in parallel mode (singleton γ).
  EXPECT_EQ(cg->groups(kv_cmd(kvstore::kKvScan,
                              kvstore::encode_key_range(410, 480))),
            GroupSet::single(4));
}

TEST(ShardedCg, ScanUnderHashFallsBackToAllShards) {
  ShardMap map(ShardPolicy::kHash, 8, 800);
  auto cg = kvstore::kv_sharded_cg(map);
  EXPECT_EQ(cg->groups(kv_cmd(kvstore::kKvScan,
                              kvstore::encode_key_range(150, 310))),
            GroupSet::all(8));
}

TEST(ShardedCg, MultiReadCoversItsKeysUnion) {
  for (auto policy : {ShardPolicy::kHash, ShardPolicy::kRange}) {
    ShardMap map(policy, 8, 800);
    auto cg = kvstore::kv_sharded_cg(map);
    std::vector<std::uint64_t> keys{1, 255, 256, 700};
    auto cover = cg->groups(
        kv_cmd(kvstore::kKvMultiRead, kvstore::encode_keys(keys)));
    GroupSet expect;
    for (auto k : keys) expect = expect | GroupSet::single(map.group_of(k));
    EXPECT_EQ(cover, expect);
  }
}

// The refinement's soundness invariant, checked per instance: any two
// dependent commands (per the KV C-Dep) must share at least one group.
TEST(ShardedCg, DependentInstancesAlwaysShareAGroup) {
  util::SplitMix64 rng(0xc0ffee);
  for (auto policy : {ShardPolicy::kHash, ShardPolicy::kRange}) {
    ShardMap map(policy, 16, 1 << 14);
    auto cg = kvstore::kv_sharded_cg(map);
    for (int i = 0; i < 2000; ++i) {
      std::uint64_t key = rng.next_below(1 << 14);
      auto update = cg->groups(
          kv_cmd(kvstore::kKvUpdate, kvstore::encode_key_value(key, 1)));
      // scan [lo, hi] containing `key` conflicts with update(key).
      std::uint64_t lo = key - std::min<std::uint64_t>(key, rng.next_below(500));
      std::uint64_t hi = key + rng.next_below(500);
      auto scan = cg->groups(
          kv_cmd(kvstore::kKvScan, kvstore::encode_key_range(lo, hi)));
      EXPECT_FALSE((scan & update).empty())
          << "scan [" << lo << "," << hi << "] vs update(" << key << ")";
      // multi_read including `key` conflicts with update(key).
      auto mr = cg->groups(kv_cmd(
          kvstore::kKvMultiRead,
          kvstore::encode_keys({rng.next_below(1 << 14), key})));
      EXPECT_FALSE((mr & update).empty());
      // insert/delete conflict with everything.
      auto ins = cg->groups(
          kv_cmd(kvstore::kKvInsert, kvstore::encode_key_value(key, 1)));
      EXPECT_FALSE((ins & scan).empty());
      EXPECT_FALSE((ins & update).empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Shard specs
// ---------------------------------------------------------------------------

constexpr const char* kSampleSpec = R"(# Sharded P-SMR deployment
policy range
keyspace 4096

# Multicast groups: groupId [replica_numbers]
#     (must be defined before referenced in a traffic line)
0 [0 1]
1 [0 1]
2 [0 1]
3 [0 1]

# traffic: m<groupId> <relative_weight>
m0 2.0
m3 0.5
)";

TEST(ShardSpec, ParsesTheDocumentedFormat) {
  auto spec = smr::parse_shard_spec(kSampleSpec);
  EXPECT_EQ(spec.policy, ShardPolicy::kRange);
  EXPECT_EQ(spec.keyspace, 4096u);
  ASSERT_EQ(spec.num_groups(), 4u);
  EXPECT_EQ(spec.num_replicas(), 2u);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(spec.groups[g].id, g);
    EXPECT_EQ(spec.groups[g].replicas, (std::vector<std::uint32_t>{0, 1}));
  }
  EXPECT_EQ(spec.traffic, (std::vector<double>{2.0, 1.0, 1.0, 0.5}));
  auto map = spec.map();
  EXPECT_EQ(map.num_shards(), 4u);
  EXPECT_EQ(map.group_of(0), 0u);
  EXPECT_EQ(map.group_of(4095), 3u);
}

TEST(ShardSpec, FormatRoundTrips) {
  auto spec = smr::parse_shard_spec(kSampleSpec);
  auto reparsed = smr::parse_shard_spec(smr::format_shard_spec(spec));
  EXPECT_EQ(reparsed.policy, spec.policy);
  EXPECT_EQ(reparsed.keyspace, spec.keyspace);
  ASSERT_EQ(reparsed.num_groups(), spec.num_groups());
  for (std::size_t g = 0; g < spec.num_groups(); ++g) {
    EXPECT_EQ(reparsed.groups[g].replicas, spec.groups[g].replicas);
  }
  EXPECT_EQ(reparsed.traffic, spec.traffic);
}

TEST(ShardSpec, UniformGeneratorScalesToManyGroups) {
  auto spec = smr::make_uniform_shard_spec(32, 2, 1 << 16);
  EXPECT_EQ(spec.num_groups(), 32u);
  EXPECT_EQ(spec.num_replicas(), 2u);
  EXPECT_EQ(spec.traffic.size(), 32u);
  auto cfg = smr::shard_deployment_config(spec);
  EXPECT_EQ(cfg.mode, smr::Mode::kPsmr);
  EXPECT_EQ(cfg.mpl, 32u);
  EXPECT_EQ(cfg.replicas, 2u);
}

TEST(ShardSpec, RejectsMalformedInput) {
  EXPECT_THROW(smr::parse_shard_spec("keyspace 10\n0 [0 1]\n"),
               std::invalid_argument);  // missing policy
  EXPECT_THROW(smr::parse_shard_spec("policy hash\nkeyspace 10\n"),
               std::invalid_argument);  // no groups
  EXPECT_THROW(
      smr::parse_shard_spec("policy hash\nkeyspace 10\n0 [0 1]\n2 [0 1]\n"),
      std::invalid_argument);  // non-dense ids
  EXPECT_THROW(
      smr::parse_shard_spec("policy hash\nkeyspace 10\n0 [0 1]\n1 [0 2]\n"),
      std::invalid_argument);  // non-uniform replica sets
  EXPECT_THROW(
      smr::parse_shard_spec("policy hash\nkeyspace 10\n0 [0 1]\nm4 1.0\n"),
      std::invalid_argument);  // traffic names an undefined group
  EXPECT_THROW(
      smr::parse_shard_spec("policy hash\nkeyspace 1\n0 [0]\n1 [0]\n"),
      std::invalid_argument);  // keyspace smaller than the group count
  EXPECT_THROW(smr::parse_shard_spec("policy hash\nkeyspace 10\n0 [0 0]\n"),
               std::invalid_argument);  // duplicate replica
}

}  // namespace
}  // namespace psmr
