// Shared test infrastructure for the P-SMR suites.
//
// Consolidates the cluster-bring-up boilerplate that was copy-pasted across
// the integration suites: ring configs tuned for a small test host, KV
// deployment configs for every mode, an RAII in-process cluster fixture
// (coordinator + acceptors + replicas), deterministic-seed helpers for the
// randomized stress tests, and schedule/barrier helpers for multi-threaded
// drivers.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "smr/runtime.h"
#include "smr/shard_spec.h"

namespace psmr::test_support {

// ---------------------------------------------------------------------------
// Deterministic seeds.
//
// Every randomized test must seed its SplitMix64 from test_seed() (or a
// literal).  The default is fixed so two runs of the same binary produce
// identical results; PSMR_TEST_SEED=<n> in the environment overrides it for
// exploratory fuzzing.  logged_seed() additionally records the seed in the
// GoogleTest XML output and prints it, so a failing stress run names the
// seed that reproduces it.
// ---------------------------------------------------------------------------

/// The seed for this test run: `base` unless PSMR_TEST_SEED is set.
std::uint64_t test_seed(std::uint64_t base = 42);

/// test_seed(), but recorded as a test property and printed to stderr.
/// Use in intentionally-randomized stress tests.
std::uint64_t logged_seed(std::uint64_t base = 42);

// ---------------------------------------------------------------------------
// Ring / deployment configuration.
// ---------------------------------------------------------------------------

/// Ring tuning for tests.  This host runs the whole system on very few
/// cores; a too-aggressive skip rate floods it (every idle ring decides a
/// skip, and P-SMR at mpl=8 runs nine rings).  These values keep latency low
/// without saturating the scheduler.
paxos::RingConfig fast_ring(std::size_t num_acceptors = 3);

/// Ring tuning for the fault-injection suites: small batch timeout and an
/// aggressive retransmission timer so drop/crash recovery is quick.
paxos::RingConfig fault_ring(std::size_t num_acceptors = 3);

/// Ring tuning for the batching suites: adaptive batch timeouts enabled
/// with wide bounds, so occupancy-sensitive tests can watch the timeout
/// move, plus the fast_ring() skip/rto settings for small hosts.
paxos::RingConfig batching_ring(std::size_t num_acceptors = 3);

/// A named aggressive-batching ring config, used to re-run ordering
/// suites under batching extremes.
struct NamedRing {
  const char* name;
  paxos::RingConfig ring;
};

/// The two batching extremes most likely to shake out ordering bugs:
/// "tiny-timeout" (near-zero wait, huge caps: batches seal almost per
/// command) and "tiny-cap" (long wait, cap of 1-2 commands: sealing is
/// driven purely by the caps while commands queue behind them).
std::vector<NamedRing> aggressive_batching_rings();

/// A complete KV deployment config: fast_ring(), KvService /
/// ConcurrentKvService factories preloaded with `initial_keys`, and the
/// keyed C-G function.
smr::DeploymentConfig kv_config(smr::Mode mode, std::size_t mpl,
                                std::uint64_t initial_keys = 0,
                                std::size_t replicas = 2);

/// kv_config with an explicit ring configuration (batching sweeps).
smr::DeploymentConfig kv_config_with_ring(smr::Mode mode, std::size_t mpl,
                                          const paxos::RingConfig& ring,
                                          std::uint64_t initial_keys = 0,
                                          std::size_t replicas = 2);

/// A sharded P-SMR KV deployment built from a shard spec: one worker group
/// (and ring) per shard, fast_ring() tuning, KvService preloaded with
/// `initial_keys`, and the shard-aware C-G over spec.map() — so clients
/// route reads/updates to their key's shard and scans/multi-reads to
/// exactly the shards they cover.
smr::DeploymentConfig sharded_kv_config(const smr::ShardSpec& spec,
                                        std::uint64_t initial_keys = 0);

/// A complete checkpointing KV deployment config: kv_config() plus periodic
/// checkpoint triggers every `interval_commands` commands and log
/// truncation at the all-replicas ack quorum.  interval_commands = 0 keeps
/// checkpointing enabled but manual (Deployment::trigger_checkpoint).
smr::DeploymentConfig checkpointed_kv_config(
    smr::Mode mode, std::size_t mpl, std::uint64_t interval_commands,
    std::uint64_t initial_keys = 0, std::size_t replicas = 2);

/// Blocks until every service instance has executed >= n commands (or the
/// timeout elapses; the caller's subsequent assertions catch a timeout).
void wait_executed(smr::Deployment& d, std::uint64_t n,
                   std::chrono::seconds timeout = std::chrono::seconds(10));

/// Blocks until replica `i` alone has executed >= n commands — the
/// crash/restart variant of wait_executed, which would stall forever on a
/// crashed slot (its executed() reads 0).
void wait_replica_executed(smr::Deployment& d, std::size_t i, std::uint64_t n,
                           std::chrono::seconds timeout =
                               std::chrono::seconds(10));

/// Blocks until every *live* replica has completed >= n checkpoints
/// (Deployment::checkpoints_taken); crashed slots are skipped.
void wait_checkpoints(smr::Deployment& d, std::uint64_t n,
                      std::chrono::seconds timeout = std::chrono::seconds(10));

/// Blocks until replica `i` has converged with replica `ref`: equal
/// executed counts and equal state digests.  Call with the workload
/// quiesced (ref's count stable); returns true on convergence, false on
/// timeout.
bool wait_converged(smr::Deployment& d, std::size_t i, std::size_t ref,
                    std::chrono::seconds timeout = std::chrono::seconds(20));

/// RAII in-process cluster: builds the Deployment (coordinator, acceptors,
/// learners, replicas), starts it on construction and stops it on
/// destruction, so a test that ASSERTs mid-body still joins every thread.
class Cluster {
 public:
  explicit Cluster(smr::DeploymentConfig cfg) : d_(std::move(cfg)) {
    d_.start();
  }
  ~Cluster() { d_.stop(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  smr::Deployment& deployment() { return d_; }
  smr::Deployment* operator->() { return &d_; }
  smr::Deployment& operator*() { return d_; }

 private:
  smr::Deployment d_;
};

/// Cluster pre-wired with the KV service (the common case).
class KvCluster : public Cluster {
 public:
  explicit KvCluster(smr::Mode mode, std::size_t mpl,
                     std::uint64_t initial_keys = 0, std::size_t replicas = 2)
      : Cluster(kv_config(mode, mpl, initial_keys, replicas)) {}
};

// ---------------------------------------------------------------------------
// Schedule helpers.
// ---------------------------------------------------------------------------

/// Reusable cyclic barrier for lock-step thread schedules.  Arrive at the
/// barrier *before* doing anything that can throw (client construction,
/// assertions): a party that fails to arrive would block the rest forever.
using Barrier = std::barrier<>;

/// Runs fn(0..n-1) on n threads and joins them all, even if fn throws
/// a GoogleTest fatal-failure exception on some thread.
void run_threads(int n, const std::function<void(int)>& fn);

/// Drives a KV deployment with a deterministic convergence workload whose
/// final state is independent of cross-client interleaving: client t
/// updates only keys in its own 100-key range (per-key update order is its
/// submission order, preserved per client) and reads across the whole
/// space, pipelined 32-deep so worker queues and delivery streams back up
/// into multi-command runs.  Waits for every replica to execute all
/// clients*ops commands, EXPECTs equal digests across replicas, and
/// returns replica 0's digest.  The deployment needs clients*100 preloaded
/// keys.  Used by the batching convergence suites (exec + response).
std::uint64_t run_disjoint_kv_workload(smr::Deployment& d, int clients,
                                       int ops);

}  // namespace psmr::test_support
