// Crash/restart verification layer (PR 8): end-to-end checkpointing, log
// truncation and replica catch-up on live deployments.
//
// The properties exercised here are the ones the snapshot design argues on
// paper: checkpoint frames cut at the same marker are byte-identical across
// replicas (the frame is a deterministic function of the delivery streams);
// periodic checkpoints keep the acceptors' decided logs bounded; and a
// replica that crashes mid-workload — including after truncation has
// actually dropped the prefix it executed — rejoins from a peer snapshot
// and reconverges to the live replicas' digest, across seeds, conflict
// rates and deployment modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "kvstore/kv_client.h"
#include "smr/runtime.h"
#include "test_support.h"
#include "util/rng.h"

namespace psmr::smr {
namespace {

using namespace std::chrono_literals;
using kvstore::KvClient;
using test_support::checkpointed_kv_config;
using test_support::wait_checkpoints;
using test_support::wait_converged;
using test_support::wait_replica_executed;

/// Drives `clients` threads for `ops` commands each against preloaded keys.
/// `conflict_pct` of the commands are structural (insert/erase → all
/// groups, synchronous mode); the rest are per-key updates/reads.  Returns
/// the total command count driven.
std::uint64_t drive_mixed(Deployment& d, int clients, int ops,
                          int conflict_pct, std::uint64_t seed) {
  test_support::run_threads(clients, [&](int c) {
    KvClient client(d.make_client());
    util::SplitMix64 rng(seed + static_cast<std::uint64_t>(c) * 7919);
    for (int i = 0; i < ops; ++i) {
      std::uint64_t k = rng.next_below(256);
      if (rng.next_below(100) < static_cast<std::uint64_t>(conflict_pct)) {
        if (rng.next_below(2) == 0) {
          client.insert(1000 + rng.next_below(64), k);
        } else {
          client.erase(1000 + rng.next_below(64));
        }
      } else if (rng.next_below(3) == 0) {
        client.update(k, rng.next());
      } else {
        client.read(k);
      }
    }
  });
  return static_cast<std::uint64_t>(clients) *
         static_cast<std::uint64_t>(ops);
}

TEST(CheckpointIntegration, FramesAreByteIdenticalAcrossReplicas) {
  // interval 0: manual trigger only, so both replicas cut exactly one
  // checkpoint at exactly the same marker.
  Deployment d(checkpointed_kv_config(Mode::kPsmr, /*mpl=*/4,
                                      /*interval_commands=*/0,
                                      /*initial_keys=*/256));
  d.start();
  std::uint64_t total = drive_mixed(d, 3, 150, /*conflict_pct=*/10,
                                    test_support::logged_seed(0xf2a));
  wait_replica_executed(d, 0, total);
  wait_replica_executed(d, 1, total);

  ASSERT_TRUE(d.trigger_checkpoint());
  wait_checkpoints(d, 1);
  auto f0 = d.psmr_replica(0)->latest_checkpoint();
  auto f1 = d.psmr_replica(1)->latest_checkpoint();
  ASSERT_TRUE(f0.has_value());
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(*f0, *f1) << "replicas cut different frames at the same marker";

  // The frame decodes and names the deployment's worker count.
  auto frame = decode_snapshot(*f0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->workers.size(), 4u);
  EXPECT_EQ(frame->executed, total);
  EXPECT_EQ(frame->service_digest, d.state_digest(0));
  d.stop();
}

TEST(CheckpointIntegration, PeriodicCheckpointsTruncateTheLog) {
  Deployment d(checkpointed_kv_config(Mode::kPsmr, /*mpl=*/2,
                                      /*interval_commands=*/200,
                                      /*initial_keys=*/256));
  d.start();
  std::uint64_t total = drive_mixed(d, 2, 600, /*conflict_pct=*/5,
                                    test_support::logged_seed(0xb0b));
  wait_replica_executed(d, 0, total);
  wait_replica_executed(d, 1, total);
  wait_checkpoints(d, 2);  // the interval fired repeatedly
  EXPECT_GE(d.checkpoints_taken(0), 2u);

  // Both replicas acked, so the acceptors really dropped a prefix, and the
  // decided log they retain is shorter than what they have dropped — the
  // bounded-memory property the ack protocol exists for.
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (d.bus()->truncated_instances() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(d.bus()->truncated_instances(), 0u);
  EXPECT_LT(d.bus()->max_acceptor_log(), d.bus()->truncated_instances());
  d.stop();
}

struct CrashCase {
  std::uint64_t seed;
  int conflict_pct;
};

class CrashRestart : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRestart, ReplicaRejoinsAndConverges) {
  const auto [base_seed, conflict] = GetParam();
  const std::uint64_t seed = test_support::test_seed(base_seed);
  Deployment d(checkpointed_kv_config(Mode::kPsmr, /*mpl=*/2,
                                      /*interval_commands=*/150,
                                      /*initial_keys=*/256));
  d.start();

  // Phase A: build state and checkpoints, then kill replica 1.
  std::uint64_t total = drive_mixed(d, 2, 300, conflict, seed);
  wait_checkpoints(d, 1);
  d.crash_replica(1);
  EXPECT_EQ(d.executed(1), 0u);
  EXPECT_EQ(d.psmr_replica(1), nullptr);

  // Phase B: the cluster keeps serving while replica 1 is down; the log
  // grows past its last checkpoint (and truncation keeps running on the
  // survivor's acks, pinned by the crashed replica's floor).
  total += drive_mixed(d, 2, 300, conflict, seed ^ 0x9e3779b97f4a7c15ULL);

  // Phase C: restart from the survivor's snapshot, with live load racing
  // the catch-up.
  ASSERT_TRUE(d.restart_replica(1));
  EXPECT_GE(d.checkpoints_taken(1), 1u)  // installed a frame, not from-scratch
      << "restart fell back to full replay despite a peer checkpoint";
  total += drive_mixed(d, 2, 200, conflict, seed ^ 0xabcdef12345ULL);

  // Quiesced: replica 0 executes everything, then replica 1 must converge
  // to the identical executed count and digest.
  wait_replica_executed(d, 0, total, 30s);
  ASSERT_EQ(d.executed(0), total);
  EXPECT_TRUE(wait_converged(d, 1, 0, 30s))
      << "restarted replica stuck at " << d.executed(1) << "/" << total;
  d.stop();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndConflicts, CrashRestart,
    ::testing::Values(CrashCase{11, 0}, CrashCase{12, 10}, CrashCase{13, 30}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_conflict" +
             std::to_string(info.param.conflict_pct);
    });

TEST(CheckpointIntegration, RejoinsAfterActualTruncation) {
  // Tight interval: truncation provably dropped decided instances before
  // the crash, so the restart *must* come from the snapshot — the full log
  // no longer exists.  Convergence here is the "truncation never drops an
  // unexecuted suffix" property end to end.
  Deployment d(checkpointed_kv_config(Mode::kPsmr, /*mpl=*/2,
                                      /*interval_commands=*/100,
                                      /*initial_keys=*/256));
  d.start();
  std::uint64_t total = drive_mixed(d, 2, 400, /*conflict_pct=*/10,
                                    test_support::logged_seed(0x7c3));
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (d.bus()->truncated_instances() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_GT(d.bus()->truncated_instances(), 0u) << "no truncation before crash";

  d.crash_replica(1);
  total += drive_mixed(d, 2, 200, 10, test_support::test_seed(0x7c4));
  ASSERT_TRUE(d.restart_replica(1));
  wait_replica_executed(d, 0, total, 30s);
  ASSERT_EQ(d.executed(0), total);
  EXPECT_TRUE(wait_converged(d, 1, 0, 30s));
  d.stop();
}

TEST(CheckpointIntegration, SmrModeCrashRestart) {
  // kSmr also routes through PsmrReplica (mpl forced to 1): the same
  // snapshot machinery must cover the single-stream mode.
  Deployment d(checkpointed_kv_config(Mode::kSmr, /*mpl=*/1,
                                      /*interval_commands=*/150,
                                      /*initial_keys=*/128));
  d.start();
  std::uint64_t total = drive_mixed(d, 2, 250, /*conflict_pct=*/10,
                                    test_support::logged_seed(0x51e));
  wait_checkpoints(d, 1);
  d.crash_replica(1);
  total += drive_mixed(d, 2, 250, 10, test_support::test_seed(0x51f));
  ASSERT_TRUE(d.restart_replica(1));
  wait_replica_executed(d, 0, total, 30s);
  ASSERT_EQ(d.executed(0), total);
  EXPECT_TRUE(wait_converged(d, 1, 0, 30s));
  d.stop();
}

TEST(CheckpointIntegration, RestartWithoutAnyCheckpointReplaysFromScratch) {
  // Checkpointing on but never triggered (manual interval 0): no snapshot
  // exists, no ack was ever sent, so nothing was truncated — the restarted
  // replica must rebuild by replaying the full log from instance 0.
  Deployment d(checkpointed_kv_config(Mode::kPsmr, /*mpl=*/2,
                                      /*interval_commands=*/0,
                                      /*initial_keys=*/128));
  d.start();
  std::uint64_t total = drive_mixed(d, 2, 200, /*conflict_pct=*/10,
                                    test_support::logged_seed(0xd1d));
  d.crash_replica(1);
  total += drive_mixed(d, 2, 150, 10, test_support::test_seed(0xd1e));
  ASSERT_TRUE(d.restart_replica(1));
  EXPECT_EQ(d.checkpoints_taken(1), 0u);  // no frame to install
  wait_replica_executed(d, 0, total, 30s);
  ASSERT_EQ(d.executed(0), total);
  EXPECT_TRUE(wait_converged(d, 1, 0, 30s));
  d.stop();
}

}  // namespace
}  // namespace psmr::smr
