// Differential fuzz harness for the cache-conscious B+-tree engine
// (ISSUE 3): both trees — BPlusTree (single-writer) and ConcurrentBPlusTree
// (lock-coupled) — are driven through long randomized
// insert/erase/update/find/range_scan/find_batch sequences against a
// std::map oracle.  At checkpoints the harness calls validate() (which also
// checks the layout invariants: inf padding and router mirrors) and
// compares digest() across the two trees and against a digest recomputed
// from the oracle.
//
// Seeds follow the PSMR_TEST_SEED convention (tests/test_support.h): runs
// are deterministic by default, and PSMR_TEST_SEED=<n> re-seeds the whole
// suite for exploratory fuzzing; the active seed is logged on failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "kvstore/bptree.h"
#include "kvstore/concurrent_bptree.h"
#include "test_support.h"
#include "util/hash.h"
#include "util/rng.h"

namespace psmr::kvstore {
namespace {

using Oracle = std::map<std::uint64_t, std::uint64_t>;

// The digest fold both trees implement, recomputed over the oracle.
std::uint64_t oracle_digest(const Oracle& ref) {
  std::uint64_t h = util::kFoldSeed;
  for (const auto& [k, v] : ref) h = util::fold_kv(h, k, v);
  return h;
}

// Collects a range scan into a vector for exact comparison.
template <typename Tree>
std::vector<std::pair<std::uint64_t, std::uint64_t>> scan_of(
    const Tree& t, std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  t.range_scan(lo, hi, [&out](std::uint64_t k, std::uint64_t v) {
    out.emplace_back(k, v);
  });
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> oracle_scan(
    const Oracle& ref, std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

struct FuzzProfile {
  const char* name;
  std::uint64_t key_space;  // keys drawn from [0, key_space)
  int steps;
  // Operation mix (weights out of 100): insert, erase, update; the rest
  // splits between find, range_scan and find_batch.
  int w_insert;
  int w_erase;
  int w_update;
};

// Three phases shake different structure: growth (splits, append-heavy
// tail), churn (borrow/merge against splits), drain (deep merges down to
// an empty root).  Narrow key spaces force dense collisions; wide ones
// exercise sparse leaves.
const FuzzProfile kProfiles[] = {
    {"grow-dense", 3'000, 60'000, 45, 10, 15},
    {"churn-mixed", 20'000, 60'000, 25, 25, 20},
    {"drain-sparse", 1'000'000, 40'000, 15, 45, 10},
};

class BPlusTreeDifferentialFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BPlusTreeDifferentialFuzz, BothTreesMatchMapOracle) {
  const std::uint64_t seed = test_support::logged_seed(GetParam());
  util::SplitMix64 rng(seed);

  for (const FuzzProfile& prof : kProfiles) {
    SCOPED_TRACE(prof.name);
    BPlusTree plain;
    ConcurrentBPlusTree locked;
    Oracle ref;

    for (int step = 0; step < prof.steps; ++step) {
      std::uint64_t k = rng.next_below(prof.key_space);
      int dice = static_cast<int>(rng.next_below(100));
      if (dice < prof.w_insert) {
        std::uint64_t v = rng.next();
        bool expect = ref.emplace(k, v).second;
        ASSERT_EQ(plain.insert(k, v), expect) << "insert " << k;
        ASSERT_EQ(locked.insert(k, v), expect) << "insert " << k;
      } else if (dice < prof.w_insert + prof.w_erase) {
        bool expect = ref.erase(k) > 0;
        ASSERT_EQ(plain.erase(k), expect) << "erase " << k;
        ASSERT_EQ(locked.erase(k), expect) << "erase " << k;
      } else if (dice < prof.w_insert + prof.w_erase + prof.w_update) {
        std::uint64_t v = rng.next();
        auto it = ref.find(k);
        bool expect = it != ref.end();
        if (expect) it->second = v;
        ASSERT_EQ(plain.update(k, v), expect) << "update " << k;
        ASSERT_EQ(locked.update(k, v), expect) << "update " << k;
      } else if (dice % 3 == 0) {
        // Range scan over a random window (occasionally inverted => empty).
        std::uint64_t lo = rng.next_below(prof.key_space);
        std::uint64_t hi = lo + rng.next_below(prof.key_space / 4 + 2);
        auto expect = oracle_scan(ref, lo, hi);
        ASSERT_EQ(scan_of(plain, lo, hi), expect) << "scan " << lo;
        ASSERT_EQ(scan_of(locked, lo, hi), expect) << "scan " << lo;
      } else if (dice % 3 == 1) {
        // Pipelined batch lookup (plain tree) vs per-key oracle lookups.
        std::uint64_t keys[2 * BPlusTree::kBatchWidth + 3];
        std::optional<std::uint64_t> got[2 * BPlusTree::kBatchWidth + 3];
        std::size_t n = 1 + rng.next_below(std::size(keys));
        for (std::size_t i = 0; i < n; ++i) {
          keys[i] = rng.next_below(prof.key_space);
        }
        plain.find_batch(keys, n, got);
        for (std::size_t i = 0; i < n; ++i) {
          auto it = ref.find(keys[i]);
          std::optional<std::uint64_t> expect;
          if (it != ref.end()) expect = it->second;
          ASSERT_EQ(got[i], expect) << "find_batch key " << keys[i];
        }
      } else {
        auto it = ref.find(k);
        std::optional<std::uint64_t> expect;
        if (it != ref.end()) expect = it->second;
        ASSERT_EQ(plain.find(k), expect) << "find " << k;
        ASSERT_EQ(locked.find(k), expect) << "find " << k;
      }

      ASSERT_EQ(plain.size(), ref.size());
      ASSERT_EQ(locked.size(), ref.size());
      if (step % 5000 == 4999) {
        ASSERT_TRUE(plain.validate()) << "step " << step;
        ASSERT_TRUE(locked.validate()) << "step " << step;
        std::uint64_t expect = oracle_digest(ref);
        ASSERT_EQ(plain.digest(), expect) << "step " << step;
        ASSERT_EQ(locked.digest(), expect) << "step " << step;
      }
    }
    ASSERT_TRUE(plain.validate());
    ASSERT_TRUE(locked.validate());
    std::uint64_t expect = oracle_digest(ref);
    ASSERT_EQ(plain.digest(), expect);
    ASSERT_EQ(locked.digest(), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeDifferentialFuzz,
                         ::testing::Values(1, 7, 23, 101));

// Boundary keys: the inf-padding sentinel value is a *legal* key; the
// clamped searches must never confuse it with padding.
TEST(BPlusTreeFuzzEdge, MaxKeyIsAnOrdinaryKey) {
  constexpr std::uint64_t kMax = ~static_cast<std::uint64_t>(0);
  BPlusTree plain;
  ConcurrentBPlusTree locked;
  EXPECT_FALSE(plain.find(kMax).has_value());
  EXPECT_TRUE(plain.insert(kMax, 1));
  EXPECT_TRUE(locked.insert(kMax, 1));
  EXPECT_FALSE(plain.insert(kMax, 2));
  EXPECT_EQ(plain.find(kMax).value(), 1u);
  EXPECT_EQ(locked.find(kMax).value(), 1u);
  // Fill enough around it to force splits with the max key in play.
  for (std::uint64_t k = 0; k < 5'000; ++k) {
    ASSERT_TRUE(plain.insert(kMax - 1 - k, k));
    ASSERT_TRUE(locked.insert(kMax - 1 - k, k));
  }
  ASSERT_TRUE(plain.validate());
  ASSERT_TRUE(locked.validate());
  EXPECT_EQ(plain.find(kMax).value(), 1u);
  auto tail = scan_of(plain, kMax - 3, kMax);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.back().first, kMax);
  EXPECT_TRUE(plain.update(kMax, 9));
  EXPECT_EQ(plain.find(kMax).value(), 9u);
  EXPECT_TRUE(plain.erase(kMax));
  EXPECT_FALSE(plain.find(kMax).has_value());
  ASSERT_TRUE(plain.validate());
  EXPECT_EQ(plain.digest(), [&] {
    Oracle ref;
    for (std::uint64_t k = 0; k < 5'000; ++k) ref.emplace(kMax - 1 - k, k);
    return oracle_digest(ref);
  }());
}

}  // namespace
}  // namespace psmr::kvstore
