// Response-path batching (PR 5): the multi-response wire codec, the
// flat-combining ResponseCoalescer, the ClientProxy demultiplexer, and
// end-to-end convergence with coalescing forced on and off.
//
// The codec suite doubles as the hardening coverage for the one frame type
// a client proxy decodes straight off the network: truncated lengths,
// zero-response frames and oversized counts must reject, and a fuzz loop
// mutates valid frames to check that no input can over-read or crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "kvstore/kv_client.h"
#include "smr/client.h"
#include "smr/response_batch.h"
#include "smr/response_coalescer.h"
#include "smr/runtime.h"
#include "test_support.h"
#include "util/rng.h"

namespace psmr::smr {
namespace {

using namespace std::chrono_literals;

Response make_response(ClientId client, Seq seq, std::uint8_t fill,
                       std::size_t payload_len = 8) {
  Response r;
  r.client = client;
  r.seq = seq;
  r.payload.assign(payload_len, fill);
  return r;
}

std::vector<util::Buffer> encode_all(const std::vector<Response>& responses) {
  std::vector<util::Buffer> encoded;
  encoded.reserve(responses.size());
  for (const auto& r : responses) encoded.push_back(r.encode());
  return encoded;
}

// --- Wire codec ----------------------------------------------------------

TEST(ResponseBatchCodec, RoundTripsSingleAndMany) {
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    std::vector<Response> in;
    for (std::size_t i = 0; i < n; ++i) {
      in.push_back(make_response(i + 1, 100 + i, static_cast<std::uint8_t>(i),
                                 /*payload_len=*/i % 5));
    }
    auto frame = encode_response_batch(encode_all(in));
    auto out = decode_response_batch(frame);
    ASSERT_TRUE(out.has_value()) << n << " responses";
    ASSERT_EQ(out->size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ((*out)[i].client, in[i].client);
      EXPECT_EQ((*out)[i].seq, in[i].seq);
      EXPECT_EQ((*out)[i].payload, in[i].payload);
    }
  }
}

TEST(ResponseBatchCodec, RejectsZeroResponseFrame) {
  util::Writer w;
  w.u32(0);
  EXPECT_FALSE(decode_response_batch(w.view()).has_value());
  // ...also when trailing bytes dangle after the zero count.
  w.u32(123);
  EXPECT_FALSE(decode_response_batch(w.view()).has_value());
}

TEST(ResponseBatchCodec, RejectsOversizedCounts) {
  // Above the hard cap.
  util::Writer w;
  w.u32(kMaxResponsesPerMessage + 1);
  EXPECT_FALSE(decode_response_batch(w.view()).has_value());
  // Within the cap but impossible for the bytes present: a hostile count
  // must be rejected before any allocation is attempted.
  util::Writer w2;
  w2.u32(kMaxResponsesPerMessage);
  w2.u32(4);  // one lonely length prefix
  EXPECT_FALSE(decode_response_batch(w2.view()).has_value());
}

TEST(ResponseBatchCodec, RejectsTruncatedLengthAndBody) {
  auto frame = encode_response_batch(
      encode_all({make_response(1, 1, 0xaa), make_response(2, 2, 0xbb)}));
  // Every strict prefix must reject: truncation can cut a length prefix, a
  // response body, or the boundary between the two.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    util::Buffer prefix(frame.begin(),
                        frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_response_batch(prefix).has_value()) << "cut " << cut;
  }
}

TEST(ResponseBatchCodec, RejectsTrailingBytes) {
  auto frame = encode_response_batch(encode_all({make_response(1, 1, 0xaa)}));
  frame.push_back(0);
  EXPECT_FALSE(decode_response_batch(frame).has_value());
}

TEST(ResponseBatchCodec, RejectsMalformedInnerResponse) {
  // A frame whose inner blob is not a valid Response encoding (too short
  // for the fixed header) must reject as a whole.
  util::Writer w;
  w.u32(1);
  util::Buffer junk{0x01, 0x02, 0x03};
  w.bytes(junk);
  EXPECT_FALSE(decode_response_batch(w.view()).has_value());
}

TEST(ResponseBatchCodec, FuzzedFramesNeverOverreadOrCrash) {
  util::SplitMix64 rng(test_support::logged_seed(0x5e5f));
  constexpr int kRounds = 4000;
  for (int round = 0; round < kRounds; ++round) {
    // Start from a valid frame so mutations explore the interesting
    // boundaries (counts, length prefixes) rather than only the count check.
    std::vector<Response> in;
    const std::size_t n = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < n; ++i) {
      in.push_back(make_response(rng.next(), rng.next(),
                                 static_cast<std::uint8_t>(rng.next()),
                                 rng.next_below(32)));
    }
    auto frame = encode_response_batch(encode_all(in));
    switch (rng.next_below(3)) {
      case 0: {  // flip a few bytes
        for (int flips = 1 + static_cast<int>(rng.next_below(4)); flips > 0;
             --flips) {
          frame[rng.next_below(frame.size())] ^=
              static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        break;
      }
      case 1: {  // truncate
        frame.resize(rng.next_below(frame.size()));
        break;
      }
      default: {  // replace with pure noise
        frame.resize(rng.next_below(96));
        for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next());
        break;
      }
    }
    // Must not throw, crash, or read out of bounds (ASan/valgrind-visible);
    // any successful decode must stay within the declared cap.
    auto out = decode_response_batch(frame);
    if (out) {
      EXPECT_GE(out->size(), 1u);
      EXPECT_LE(out->size(), kMaxResponsesPerMessage);
    }
  }
}

// --- ResponseCoalescer ---------------------------------------------------

/// One sender node, one receiver mailbox, and a coalescer between them.
struct CoalescerRig {
  explicit CoalescerRig(ResponseCoalescerOptions opts = {}) {
    auto [sid, sbox] = net.register_node();
    sender = sid;
    auto [rid, rbox] = net.register_node();
    receiver = rid;
    box = std::move(rbox);
    coalescer = std::make_unique<ResponseCoalescer>(net, sender, opts);
  }
  ~CoalescerRig() { net.shutdown(); }

  /// Pops one delivered wire message (fails the test on timeout).
  transport::Message pop() {
    auto msg = box->pop_for(2'000'000us);
    EXPECT_TRUE(msg.has_value()) << "no wire message arrived";
    return msg ? std::move(*msg) : transport::Message{};
  }

  transport::Network net;
  transport::NodeId sender = transport::kNoNode;
  transport::NodeId receiver = transport::kNoNode;
  std::shared_ptr<transport::Mailbox> box;
  std::unique_ptr<ResponseCoalescer> coalescer;
};

TEST(ResponseCoalescer, SpoolsUntilBatchBoundaryThenSendsOneFrame) {
  CoalescerRig rig;
  for (Seq s = 1; s <= 3; ++s) {
    rig.coalescer->send(rig.receiver, make_response(1, s, 0x11));
  }
  // Nothing on the wire before the batch boundary.
  EXPECT_FALSE(rig.box->pop_for(10ms).has_value());
  rig.coalescer->flush_batch();
  auto msg = rig.pop();
  EXPECT_EQ(msg.type, transport::MsgType::kSmrResponseMany);
  auto batch = decode_response_batch(msg.payload);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_EQ((*batch)[0].seq, 1u);  // spool order preserved per destination
  EXPECT_EQ((*batch)[2].seq, 3u);
  auto stats = rig.coalescer->stats();
  EXPECT_EQ(stats.wire_messages, 1u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.flush_batch, 1u);
  EXPECT_EQ(stats.flush_size + stats.flush_bytes + stats.flush_timeout, 0u);
  // An empty spool makes the next boundary a no-op.
  rig.coalescer->flush_batch();
  EXPECT_EQ(rig.coalescer->stats().wire_messages, 1u);
}

TEST(ResponseCoalescer, LoneResponseKeepsPlainFraming) {
  CoalescerRig rig;
  rig.coalescer->send(rig.receiver, make_response(1, 7, 0x22));
  rig.coalescer->flush_batch();
  auto msg = rig.pop();
  EXPECT_EQ(msg.type, transport::MsgType::kSmrResponse);
  auto resp = Response::decode(msg.payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->seq, 7u);
}

TEST(ResponseCoalescer, SizeCapFlushesWithoutBoundary) {
  ResponseCoalescerOptions opts;
  opts.max_responses = 2;
  CoalescerRig rig(opts);
  rig.coalescer->send(rig.receiver, make_response(1, 1, 0x33));
  rig.coalescer->send(rig.receiver, make_response(1, 2, 0x33));
  auto msg = rig.pop();  // no flush_batch needed
  auto batch = decode_response_batch(msg.payload);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2u);
  auto stats = rig.coalescer->stats();
  EXPECT_EQ(stats.flush_size, 1u);
  EXPECT_EQ(stats.flush_batch, 0u);
}

TEST(ResponseCoalescer, CapReasonIsAttributedOnlyToTheTrippedBucket) {
  // Destination A trips the size cap while destination B merely has a
  // spooled response; the drain loop sends both, but only A's wire message
  // may count under flush_size — B's is a sweep (flush_batch).
  ResponseCoalescerOptions opts;
  opts.max_responses = 2;
  CoalescerRig rig(opts);
  auto [other, other_box] = rig.net.register_node();
  auto obox = other_box;
  rig.coalescer->send(other, make_response(2, 1, 0x11));
  rig.coalescer->send(rig.receiver, make_response(1, 1, 0x11));
  rig.coalescer->send(rig.receiver, make_response(1, 2, 0x11));  // trips cap
  rig.pop();
  ASSERT_TRUE(obox->pop_for(2'000'000us).has_value());
  auto stats = rig.coalescer->stats();
  EXPECT_EQ(stats.wire_messages, 2u);
  EXPECT_EQ(stats.flush_size, 1u);
  EXPECT_EQ(stats.flush_batch, 1u);
}

TEST(ResponseCoalescer, ByteCapFlushesWithoutBoundary) {
  ResponseCoalescerOptions opts;
  opts.max_bytes = 64;
  CoalescerRig rig(opts);
  rig.coalescer->send(rig.receiver,
                      make_response(1, 1, 0x44, /*payload_len=*/80));
  auto msg = rig.pop();
  EXPECT_EQ(msg.type, transport::MsgType::kSmrResponse);  // lone response
  EXPECT_EQ(rig.coalescer->stats().flush_bytes, 1u);
}

TEST(ResponseCoalescer, AgedSpoolFlushesOnNextSend) {
  ResponseCoalescerOptions opts;
  opts.max_delay = std::chrono::microseconds(0);  // every send is "aged"
  CoalescerRig rig(opts);
  rig.coalescer->send(rig.receiver, make_response(1, 1, 0x55));
  auto msg = rig.pop();
  EXPECT_EQ(msg.type, transport::MsgType::kSmrResponse);
  EXPECT_EQ(rig.coalescer->stats().flush_timeout, 1u);
}

TEST(ResponseCoalescer, BucketsPerDestination) {
  CoalescerRig rig;
  auto [other, other_box] = rig.net.register_node();
  auto obox = other_box;
  rig.coalescer->send(rig.receiver, make_response(1, 1, 0x66));
  rig.coalescer->send(other, make_response(2, 1, 0x77));
  rig.coalescer->send(rig.receiver, make_response(1, 2, 0x66));
  rig.coalescer->flush_batch();
  auto msg = rig.pop();
  auto batch = decode_response_batch(msg.payload);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].client, 1u);
  auto omsg = obox->pop_for(2'000'000us);
  ASSERT_TRUE(omsg.has_value());
  EXPECT_EQ(omsg->type, transport::MsgType::kSmrResponse);
  auto stats = rig.coalescer->stats();
  EXPECT_EQ(stats.wire_messages, 2u);
  EXPECT_EQ(stats.responses, 3u);
}

TEST(ResponseCoalescer, DisabledModeSendsEachReplyDirectly) {
  ResponseCoalescerOptions opts;
  opts.enabled = false;
  CoalescerRig rig(opts);
  for (Seq s = 1; s <= 3; ++s) {
    rig.coalescer->send(rig.receiver, make_response(1, s, 0x88));
    auto msg = rig.pop();
    EXPECT_EQ(msg.type, transport::MsgType::kSmrResponse);
  }
  rig.coalescer->flush_batch();  // no-op
  auto stats = rig.coalescer->stats();
  EXPECT_EQ(stats.wire_messages, 3u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.uncoalesced, 3u);
  EXPECT_EQ(stats.flush_batch, 0u);
}

TEST(ResponseCoalescer, FlushPauseRendezvousCarriesConcurrentSpool) {
  // Deterministic reproduction of the flat-combining piggyback: the pause
  // hook runs after the first wire send with the lock released — exactly
  // where a concurrent worker's send() would land — and spools another
  // response.  The active flusher's drain loop must carry it before
  // flush_batch() returns, without a second flush_batch call.
  CoalescerRig rig;
  std::atomic<int> injected{0};
  rig.coalescer->set_flush_pause([&] {
    if (injected.fetch_add(1) == 0) {
      rig.coalescer->send(rig.receiver, make_response(2, 9, 0x99));
    }
  });
  rig.coalescer->send(rig.receiver, make_response(1, 1, 0x99));
  rig.coalescer->flush_batch();
  rig.coalescer->set_flush_pause({});
  // Both responses arrived: the seeded one, then the injected straggler.
  auto first = rig.pop();
  auto second = rig.pop();
  auto r1 = Response::decode(first.payload);
  auto r2 = Response::decode(second.payload);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->seq, 1u);
  EXPECT_EQ(r2->seq, 9u);
  auto stats = rig.coalescer->stats();
  EXPECT_EQ(stats.wire_messages, 2u);
  EXPECT_EQ(stats.responses, 2u);
  EXPECT_GE(injected.load(), 1);
}

// --- ClientProxy demultiplexer -------------------------------------------

/// Direct-mode proxy against a hand-driven fake server mailbox.
struct ProxyRig {
  ProxyRig() {
    auto [sid, sbox] = net.register_node();
    server = sid;
    box = std::move(sbox);
    proxy = std::make_unique<ClientProxy>(net, server, /*id=*/7);
  }
  ~ProxyRig() { net.shutdown(); }

  /// Receives one submitted command at the fake server.
  Command recv() {
    auto msg = box->pop_for(2'000'000us);
    EXPECT_TRUE(msg.has_value());
    auto cmd = msg ? Command::decode(msg->payload) : std::nullopt;
    EXPECT_TRUE(cmd.has_value());
    return cmd ? std::move(*cmd) : Command{};
  }

  transport::Network net;
  transport::NodeId server = transport::kNoNode;
  std::shared_ptr<transport::Mailbox> box;
  std::unique_ptr<ClientProxy> proxy;
};

Response reply_to(const Command& cmd, std::uint8_t fill) {
  return make_response(cmd.client, cmd.seq, fill);
}

TEST(ProxyDemux, MultiResponseFrameCompletesSeveralCommands) {
  ProxyRig rig;
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  std::vector<Command> cmds;
  for (int i = 0; i < 3; ++i) cmds.push_back(rig.recv());
  EXPECT_EQ(rig.proxy->outstanding(), 3u);
  // Replies arrive out of submission order inside one frame.
  std::vector<Response> replies = {reply_to(cmds[2], 3), reply_to(cmds[0], 1),
                                   reply_to(cmds[1], 2)};
  rig.net.send(rig.server, cmds[0].reply_to,
               transport::MsgType::kSmrResponseMany,
               encode_response_batch(encode_all(replies)));
  // One frame, three poll() completions, in the frame's order.
  std::vector<Seq> seqs;
  for (int i = 0; i < 3; ++i) {
    auto done = rig.proxy->poll(2'000'000us);
    ASSERT_TRUE(done.has_value());
    seqs.push_back(done->seq);
    EXPECT_GE(done->latency_us, 0);
    // Completions already decoded still count as outstanding until polled.
    EXPECT_EQ(rig.proxy->outstanding(), static_cast<std::size_t>(2 - i));
  }
  EXPECT_EQ(seqs, (std::vector<Seq>{cmds[2].seq, cmds[0].seq, cmds[1].seq}));
}

TEST(ProxyDemux, DuplicateReplicaFramesAreAbsorbed) {
  ProxyRig rig;
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  std::vector<Command> cmds = {rig.recv(), rig.recv()};
  auto frame = encode_response_batch(
      encode_all({reply_to(cmds[0], 1), reply_to(cmds[1], 2)}));
  // Two replicas, same coalesced frame.
  rig.net.send(rig.server, cmds[0].reply_to,
               transport::MsgType::kSmrResponseMany, frame);
  rig.net.send(rig.server, cmds[0].reply_to,
               transport::MsgType::kSmrResponseMany, frame);
  ASSERT_TRUE(rig.proxy->poll(2'000'000us).has_value());
  ASSERT_TRUE(rig.proxy->poll(2'000'000us).has_value());
  // The duplicate frame produces no third completion.
  EXPECT_FALSE(rig.proxy->poll(50ms).has_value());
  EXPECT_EQ(rig.proxy->outstanding(), 0u);
}

TEST(ProxyDemux, MalformedFrameIsIgnoredNotFatal) {
  ProxyRig rig;
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  Command cmd = rig.recv();
  util::Buffer junk{0xde, 0xad, 0xbe};
  rig.net.send(rig.server, cmd.reply_to, transport::MsgType::kSmrResponseMany,
               junk);
  // The real reply after the junk still completes the call.
  rig.net.send(rig.server, cmd.reply_to, transport::MsgType::kSmrResponse,
               reply_to(cmd, 5).encode());
  auto done = rig.proxy->poll(2'000'000us);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->seq, cmd.seq);
}

TEST(ProxyDemux, MixedKnownAndUnknownSeqsCompleteOnlyKnown) {
  ProxyRig rig;
  ASSERT_TRUE(rig.proxy->submit(1, {}).has_value());
  Command cmd = rig.recv();
  Response phantom = make_response(cmd.client, cmd.seq + 1000, 9);
  auto frame = encode_response_batch(
      encode_all({phantom, reply_to(cmd, 1), phantom}));
  rig.net.send(rig.server, cmd.reply_to, transport::MsgType::kSmrResponseMany,
               frame);
  auto done = rig.proxy->poll(2'000'000us);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->seq, cmd.seq);
  EXPECT_FALSE(rig.proxy->poll(50ms).has_value());
}

// --- End-to-end: coalescing on vs off on both replica modes --------------

class ResponseConvergence : public ::testing::TestWithParam<Mode> {};

TEST_P(ResponseConvergence, CoalescedAndUncoalescedRepliesConverge) {
  const Mode mode = GetParam();
  constexpr int kClients = 3;
  constexpr int kOps = 120;
  const std::uint64_t keys = kClients * 100;

  auto run_with = [&](bool coalesce, ResponseStats* stats) {
    auto cfg = test_support::kv_config(mode, /*mpl=*/2, keys);
    cfg.coalesce_responses = coalesce;
    test_support::Cluster cluster(std::move(cfg));
    std::uint64_t digest = test_support::run_disjoint_kv_workload(
        cluster.deployment(), kClients, kOps);
    *stats = cluster->response_stats();
    return digest;
  };

  ResponseStats coalesced;
  ResponseStats uncoalesced;
  std::uint64_t digest_on = run_with(true, &coalesced);
  std::uint64_t digest_off = run_with(false, &uncoalesced);

  // Reply batching is invisible to the service: identical state either way.
  EXPECT_EQ(digest_on, digest_off);

  // Every executed command's reply went through the counters: both replicas
  // reply to every command they execute.
  const auto total = static_cast<std::uint64_t>(kClients * kOps);
  EXPECT_GE(coalesced.responses, 2 * total);
  EXPECT_GE(uncoalesced.responses, 2 * total);

  // Coalescing off: exactly one wire message per reply, all uncoalesced.
  EXPECT_EQ(uncoalesced.wire_messages, uncoalesced.responses);
  EXPECT_EQ(uncoalesced.uncoalesced, uncoalesced.wire_messages);

  // Coalescing on: batch-boundary flushes happened, the reason counters
  // partition the wire messages, and — with 3 clients pipelining 32-deep
  // onto 2 workers — at least some frame carried more than one reply.
  EXPECT_EQ(coalesced.uncoalesced, 0u);
  EXPECT_GT(coalesced.flush_batch, 0u);
  EXPECT_EQ(coalesced.flush_batch + coalesced.flush_size +
                coalesced.flush_bytes + coalesced.flush_timeout,
            coalesced.wire_messages);
  EXPECT_LT(coalesced.wire_messages, coalesced.responses);
  EXPECT_GT(coalesced.mean_responses_per_message(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, ResponseConvergence,
                         ::testing::Values(Mode::kPsmr, Mode::kSpsmr),
                         [](const auto& info) {
                           return info.param == Mode::kPsmr ? "psmr" : "spsmr";
                         });

}  // namespace
}  // namespace psmr::smr
