// Synchronous mode with *subset* destination sets (the general form of
// Algorithm 1): commands multicast to two of k groups must barrier exactly
// the two destination threads, stay ordered against every overlapping
// command, and never deadlock — the per-(sender, receiver) signal matrix in
// PsmrReplica exists precisely for back-to-back subset commands with
// overlapping-but-different destination sets.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "smr/runtime.h"
#include "test_support.h"
#include "util/hash.h"
#include "util/rng.h"

namespace psmr::smr {
namespace {

enum PairCommand : CommandId {
  kSet = 1,    // set(in: slot, value) — singleton group of slot
  kGet = 2,    // get(in: slot; out: value)
  kSwap = 3,   // swap(in: slot_a, slot_b) — two-group synchronous command
  kTotal = 4,  // sum of all slots — all-group command
};

class SlotService : public SequentialService {
 public:
  explicit SlotService(std::uint64_t slots) {
    for (std::uint64_t s = 0; s < slots; ++s) slots_[s] = 0;
  }

  util::Buffer execute(const Command& cmd) override {
    util::Reader r(cmd.params);
    util::Writer out;
    switch (cmd.cmd) {
      case kSet: {
        std::uint64_t slot = r.u64();
        slots_[slot] = r.i64();
        out.i64(slots_[slot]);
        break;
      }
      case kGet:
        out.i64(slots_[r.u64()]);
        break;
      case kSwap: {
        std::uint64_t a = r.u64();
        std::uint64_t b = r.u64();
        std::swap(slots_[a], slots_[b]);
        out.boolean(true);
        break;
      }
      case kTotal: {
        std::int64_t total = 0;
        for (auto& [s, v] : slots_) total += v;
        out.i64(total);
        break;
      }
    }
    return out.take();
  }

  [[nodiscard]] std::uint64_t state_digest() const override {
    std::uint64_t h = 0;
    for (const auto& [s, v] : slots_) {
      h ^= util::mix64(s * 1000003 + static_cast<std::uint64_t>(v));
    }
    return h;
  }

 private:
  std::map<std::uint64_t, std::int64_t> slots_;
};

class SlotCg : public CGFunction {
 public:
  explicit SlotCg(std::size_t k) : k_(k) {}
  [[nodiscard]] multicast::GroupSet groups(const Command& c) const override {
    util::Reader r(c.params);
    auto of = [&](std::uint64_t slot) {
      return multicast::GroupSet::single(
          static_cast<multicast::GroupId>(slot % k_));
    };
    switch (c.cmd) {
      case kSwap: {
        auto a = of(r.u64());
        auto b = of(r.u64());
        return a | b;
      }
      case kTotal:
        return multicast::GroupSet::all(k_);
      default:
        return of(r.u64());
    }
  }
  [[nodiscard]] std::size_t mpl() const override { return k_; }

 private:
  std::size_t k_;
};

Deployment make_deployment(std::size_t mpl, std::uint64_t slots,
                           const paxos::RingConfig& ring =
                               test_support::fast_ring()) {
  DeploymentConfig cfg;
  cfg.mode = Mode::kPsmr;
  cfg.mpl = mpl;
  cfg.replicas = 2;
  cfg.ring = ring;
  cfg.service_factory = [slots] {
    return make_batched(std::make_unique<SlotService>(slots));
  };
  cfg.cg_factory = [](std::size_t k) { return std::make_shared<SlotCg>(k); };
  return Deployment(std::move(cfg));
}

struct SlotClient {
  std::unique_ptr<ClientProxy> proxy;

  std::int64_t set(std::uint64_t slot, std::int64_t v) {
    util::Writer w;
    w.u64(slot);
    w.i64(v);
    return util::Reader(*proxy->call(kSet, w.take())).i64();
  }
  std::int64_t get(std::uint64_t slot) {
    util::Writer w;
    w.u64(slot);
    return util::Reader(*proxy->call(kGet, w.take())).i64();
  }
  void swap(std::uint64_t a, std::uint64_t b) {
    util::Writer w;
    w.u64(a);
    w.u64(b);
    proxy->call(kSwap, w.take());
  }
  std::int64_t total() {
    return util::Reader(*proxy->call(kTotal, {})).i64();
  }
};

TEST(PsmrSubset, TwoGroupSwapIsAtomic) {
  auto d = make_deployment(4, 8);
  d.start();
  SlotClient c{d.make_client()};
  c.set(1, 111);
  c.set(2, 222);
  c.swap(1, 2);  // slots 1 and 2 live in groups 1 and 2: subset barrier
  EXPECT_EQ(c.get(1), 222);
  EXPECT_EQ(c.get(2), 111);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

TEST(PsmrSubset, SameGroupPairDegeneratesToParallelMode) {
  auto d = make_deployment(4, 8);
  d.start();
  SlotClient c{d.make_client()};
  c.set(1, 10);
  c.set(5, 50);  // slot 5 % 4 == group 1 as well
  c.swap(1, 5);  // single-group destination: no barrier needed
  EXPECT_EQ(c.get(1), 50);
  EXPECT_EQ(c.get(5), 10);
  d.stop();
}

TEST(PsmrSubset, OverlappingSubsetChainsDoNotDeadlock) {
  // Back-to-back swaps with overlapping destination pairs: {0,1}, {1,2},
  // {2,3}, {3,0}, ... — the deadlock-freedom theorem of Section IV-E under
  // its hardest pattern, plus interleaved all-group commands.
  auto d = make_deployment(4, 16);
  d.start();
  constexpr int kThreads = 4;
  test_support::Barrier start(kThreads);
  test_support::run_threads(kThreads, [&](int t) {
    // Launch the chains in lock-step so the overlapping destination pairs
    // really are in flight together.
    start.arrive_and_wait();
    SlotClient c{d.make_client()};
    for (int i = 0; i < 40; ++i) {
      std::uint64_t a = static_cast<std::uint64_t>((t + i) % 4);
      std::uint64_t b = static_cast<std::uint64_t>((t + i + 1) % 4);
      c.swap(a, b);
      if (i % 10 == 0) c.total();
    }
  });
  SlotClient c{d.make_client()};
  EXPECT_EQ(c.total(), 0);  // swaps of zeros stay zero: liveness is the test
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

TEST(PsmrSubset, SubsetBarriersSurviveAggressiveBatching) {
  // Re-run the hard overlapping-chain pattern under both batching extremes:
  // near-zero timeouts decide nearly one command per instance (maximal
  // interleaving of the barrier halves), while cap-driven sealing queues
  // dependent commands behind full batches.  Either way the swaps must stay
  // atomic, deadlock-free and replica-consistent.
  for (const auto& named : test_support::aggressive_batching_rings()) {
    SCOPED_TRACE(named.name);
    auto d = make_deployment(4, 8, named.ring);
    d.start();
    {
      SlotClient init{d.make_client()};
      init.set(1, 111);
      init.set(2, 222);
    }
    constexpr int kThreads = 4;
    test_support::Barrier start(kThreads);
    test_support::run_threads(kThreads, [&](int t) {
      start.arrive_and_wait();
      SlotClient c{d.make_client()};
      for (int i = 0; i < 20; ++i) {
        std::uint64_t a = static_cast<std::uint64_t>((t + i) % 4) + 4;
        std::uint64_t b = static_cast<std::uint64_t>((t + i + 1) % 4) + 4;
        c.swap(a, b);
        if (i % 10 == 0) c.total();
      }
    });
    SlotClient c{d.make_client()};
    // Slots 4..7 held zeros throughout the swap storm; 1 and 2 kept their
    // initial values, so the interleaved chains did not corrupt state.
    EXPECT_EQ(c.total(), 333);
    EXPECT_EQ(d.state_digest(0), d.state_digest(1));
    d.stop();
  }
}

TEST(PsmrSubset, SwapConservesSum) {
  // Money-conservation style invariant under concurrent subset barriers.
  auto d = make_deployment(8, 32);
  d.start();
  {
    SlotClient init{d.make_client()};
    for (std::uint64_t s = 0; s < 32; ++s) init.set(s, 100);
  }
  const std::uint64_t seed = test_support::logged_seed(7);
  test_support::run_threads(3, [&](int t) {
    SlotClient c{d.make_client()};
    util::SplitMix64 rng(seed + static_cast<std::uint64_t>(t));
    for (int i = 0; i < 50; ++i) {
      c.swap(rng.next_below(32), rng.next_below(32));
    }
  });
  SlotClient c{d.make_client()};
  EXPECT_EQ(c.total(), 3200);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

}  // namespace
}  // namespace psmr::smr
