#include <gtest/gtest.h>

#include "netfs/fs.h"
#include "netfs/fs_service.h"
#include "netfs/path.h"

namespace psmr::netfs {
namespace {

TEST(Path, Normalization) {
  EXPECT_EQ(normalize_path("/a/b"), "/a/b");
  EXPECT_EQ(normalize_path("a/b"), "/a/b");
  EXPECT_EQ(normalize_path("//a///b/"), "/a/b");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path(""), "/");
}

TEST(Path, SplitParentBase) {
  EXPECT_EQ(split_path("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_EQ(parent_path("/a/b"), "/a");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(base_name("/a/b"), "b");
}

TEST(Path, GroupAssignmentStableAndBalanced) {
  constexpr std::size_t k = 8;
  std::array<int, k> counts{};
  for (int i = 0; i < 8000; ++i) {
    std::string p = "/dir/file" + std::to_string(i);
    auto g = path_group(p, k);
    EXPECT_EQ(g, path_group(p, k));  // deterministic
    counts[g]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 300);
}

TEST(MemFs, CreateStatUnlink) {
  MemFs fs;
  EXPECT_EQ(fs.create("/f", 0644), 0);
  EXPECT_EQ(fs.create("/f", 0644), -EEXIST);
  FsStat st;
  EXPECT_EQ(fs.lstat("/f", st), 0);
  EXPECT_FALSE(st.is_dir);
  EXPECT_EQ(st.mode, 0644u);
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(fs.unlink("/f"), 0);
  EXPECT_EQ(fs.lstat("/f", st), -ENOENT);
  EXPECT_EQ(fs.unlink("/f"), -ENOENT);
}

TEST(MemFs, DirectoryLifecycle) {
  MemFs fs;
  EXPECT_EQ(fs.mkdir("/d", 0755), 0);
  EXPECT_EQ(fs.mkdir("/d", 0755), -EEXIST);
  EXPECT_EQ(fs.create("/d/f", 0644), 0);
  EXPECT_EQ(fs.rmdir("/d"), -ENOTEMPTY);
  std::vector<std::string> names;
  EXPECT_EQ(fs.readdir("/d", names), 0);
  EXPECT_EQ(names, std::vector<std::string>{"f"});
  EXPECT_EQ(fs.unlink("/d/f"), 0);
  EXPECT_EQ(fs.rmdir("/d"), 0);
  EXPECT_EQ(fs.rmdir("/d"), -ENOENT);
}

TEST(MemFs, NestedPathsRequireExistingParents) {
  MemFs fs;
  EXPECT_EQ(fs.create("/a/b/c", 0644), -ENOENT);
  EXPECT_EQ(fs.mkdir("/a", 0755), 0);
  EXPECT_EQ(fs.mkdir("/a/b", 0755), 0);
  EXPECT_EQ(fs.create("/a/b/c", 0644), 0);
  EXPECT_EQ(fs.unlink("/a/b"), -EISDIR);
  EXPECT_EQ(fs.rmdir("/a/b/c"), -ENOTDIR);
}

TEST(MemFs, ReadWriteRoundTrip) {
  MemFs fs;
  ASSERT_EQ(fs.create("/f", 0644), 0);
  util::Buffer data = {1, 2, 3, 4, 5};
  EXPECT_EQ(fs.write("/f", 0, data), 0);
  util::Buffer out;
  EXPECT_EQ(fs.read("/f", 0, 5, out), 0);
  EXPECT_EQ(out, data);
  // Sparse write extends with zeros.
  EXPECT_EQ(fs.write("/f", 10, data), 0);
  EXPECT_EQ(fs.read("/f", 0, 100, out), 0);
  ASSERT_EQ(out.size(), 15u);
  EXPECT_EQ(out[7], 0);
  EXPECT_EQ(out[10], 1);
  // Read past EOF is empty, not an error.
  EXPECT_EQ(fs.read("/f", 100, 10, out), 0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fs.read("/missing", 0, 1, out), -ENOENT);
}

TEST(MemFs, DescriptorTable) {
  MemFs fs;
  ASSERT_EQ(fs.create("/f", 0644), 0);
  std::uint64_t fh1 = 0, fh2 = 0;
  EXPECT_EQ(fs.open("/f", fh1), 0);
  EXPECT_EQ(fs.open("/f", fh2), 0);
  EXPECT_NE(fh1, fh2);
  EXPECT_EQ(fs.open_count(), 2u);
  EXPECT_EQ(fs.release(fh1), 0);
  EXPECT_EQ(fs.release(fh1), -EBADF);
  std::uint64_t dh = 0;
  EXPECT_EQ(fs.opendir("/", dh), 0);
  EXPECT_EQ(fs.releasedir(dh), 0);
  EXPECT_EQ(fs.open("/missing", fh1), -ENOENT);
  EXPECT_EQ(fs.opendir("/f", dh), -ENOTDIR);
}

TEST(MemFs, UtimensAndAccess) {
  MemFs fs;
  ASSERT_EQ(fs.create("/f", 0600), 0);
  EXPECT_EQ(fs.utimens("/f", 111, 222), 0);
  FsStat st;
  ASSERT_EQ(fs.lstat("/f", st), 0);
  EXPECT_EQ(st.atime_ns, 111);
  EXPECT_EQ(st.mtime_ns, 222);
  EXPECT_EQ(fs.access("/f", 6), 0);   // rw
  EXPECT_EQ(fs.access("/f", 1), -EACCES);  // x not set
  EXPECT_EQ(fs.access("/nope", 4), -ENOENT);
}

TEST(MemFs, DigestTracksStateIncludingFdTable) {
  MemFs a, b;
  EXPECT_EQ(a.digest(), b.digest());
  a.create("/f", 0644);
  EXPECT_NE(a.digest(), b.digest());
  b.create("/f", 0644);
  EXPECT_EQ(a.digest(), b.digest());
  std::uint64_t fh;
  a.open("/f", fh);
  EXPECT_NE(a.digest(), b.digest());  // fd table is replicated state
  b.open("/f", fh);
  EXPECT_EQ(a.digest(), b.digest());
}

// --- Service-level marshaling (with compression) ---

smr::Command make_cmd(smr::CommandId id, util::Buffer plain) {
  smr::Command c;
  c.cmd = id;
  c.client = 1;
  c.seq = 1;
  c.params = pack_params(plain);
  return c;
}

TEST(FsService, ExecutesThroughCompressedEnvelope) {
  FsService svc;
  auto res = decode_result(
      kFsMkdir, svc.execute(make_cmd(kFsMkdir, encode_path_mode("/d", 0755))));
  EXPECT_EQ(res.err, 0);
  res = decode_result(kFsCreate, svc.execute(make_cmd(
                                     kFsCreate,
                                     encode_path_mode("/d/f", 0644))));
  EXPECT_EQ(res.err, 0);
  util::Buffer payload(1024, 0xab);
  res = decode_result(
      kFsWrite,
      svc.execute(make_cmd(kFsWrite, encode_write("/d/f", 0, payload))));
  EXPECT_EQ(res.err, 0);
  res = decode_result(
      kFsRead, svc.execute(make_cmd(kFsRead, encode_read("/d/f", 0, 1024))));
  EXPECT_EQ(res.err, 0);
  EXPECT_EQ(res.data, payload);
  res = decode_result(kFsReaddir,
                      svc.execute(make_cmd(kFsReaddir, encode_path("/d"))));
  EXPECT_EQ(res.err, 0);
  EXPECT_EQ(res.names, std::vector<std::string>{"f"});
  res = decode_result(kFsLstat,
                      svc.execute(make_cmd(kFsLstat, encode_path("/d/f"))));
  EXPECT_EQ(res.err, 0);
  EXPECT_EQ(res.stat.size, 1024u);
}

TEST(FsService, OpenReleaseThroughService) {
  FsService svc;
  svc.execute(make_cmd(kFsCreate, encode_path_mode("/f", 0644)));
  auto res = decode_result(kFsOpen,
                           svc.execute(make_cmd(kFsOpen, encode_path("/f"))));
  EXPECT_EQ(res.err, 0);
  EXPECT_GT(res.fh, 0u);
  res = decode_result(kFsRelease,
                      svc.execute(make_cmd(kFsRelease, encode_fh(res.fh))));
  EXPECT_EQ(res.err, 0);
}

TEST(FsService, RejectsCorruptParams) {
  FsService svc;
  smr::Command c;
  c.cmd = kFsRead;
  c.params = util::Buffer{0xff, 0xff};  // not a valid LZ block
  auto res = decode_result(kFsRead, svc.execute(c));
  EXPECT_EQ(res.err, -EIO);
}

// --- C-Dep / C-G metadata ---

TEST(FsCdep, MatchesPaperSectionVB) {
  auto dep = fs_cdep();
  auto key = fs_key_fn();
  auto rd_a = make_cmd(kFsRead, encode_read("/a", 0, 10));
  auto rd_a2 = make_cmd(kFsRead, encode_read("/a", 5, 10));
  auto wr_a = make_cmd(kFsWrite, encode_write("/a", 0, util::Buffer{1}));
  auto wr_b = make_cmd(kFsWrite, encode_write("/b", 0, util::Buffer{1}));
  auto creat = make_cmd(kFsCreate, encode_path_mode("/c", 0644));
  auto open_cmd = make_cmd(kFsOpen, encode_path("/a"));

  // Structural commands depend on everything.
  EXPECT_TRUE(dep.conflicts(creat, rd_a, key));
  EXPECT_TRUE(dep.conflicts(open_cmd, wr_b, key));
  EXPECT_TRUE(dep.conflicts(creat, open_cmd, key));
  // Same-path data commands depend on each other (even read-read: the
  // paper's NetFS serializes all same-file accesses).
  EXPECT_TRUE(dep.conflicts(rd_a, wr_a, key));
  EXPECT_TRUE(dep.conflicts(rd_a, rd_a2, key));
  // Different paths are independent.
  EXPECT_FALSE(dep.conflicts(wr_a, wr_b, key));
  EXPECT_FALSE(dep.conflicts(rd_a, wr_b, key));
}

TEST(FsCg, NineGroupLayout) {
  auto cg = fs_cg(8);
  // Structural → all 8 worker groups (routed via the shared ring: the
  // paper's ninth, serialized group).
  auto creat = make_cmd(kFsCreate, encode_path_mode("/c", 0644));
  EXPECT_EQ(cg->groups(creat), multicast::GroupSet::all(8));
  auto rel = make_cmd(kFsRelease, encode_fh(3));
  EXPECT_EQ(cg->groups(rel), multicast::GroupSet::all(8));
  // Per-path → a single group, stable per path.
  auto rd = make_cmd(kFsRead, encode_read("/data/x", 0, 10));
  auto wr = make_cmd(kFsWrite, encode_write("/data/x", 0, util::Buffer{1}));
  EXPECT_TRUE(cg->groups(rd).singleton());
  EXPECT_EQ(cg->groups(rd), cg->groups(wr));
}

}  // namespace
}  // namespace psmr::netfs
