// Admission control (smr/admission.h): token-bucket and occupancy-shed
// policy units with synthetic clocks/stats, the kSmrRejected round trip
// through a real deployment's client proxy, and the dispatch-failure
// regression — a failed submit() must never leave a permanently-pending
// command.
#include <gtest/gtest.h>

#include "kvstore/kv_service.h"
#include "test_support.h"

namespace psmr::smr {
namespace {

using test_support::KvCluster;

AdmissionConfig bucket_only(double rate_cps, double burst) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.client_rate_cps = rate_cps;
  cfg.client_burst = burst;
  cfg.occupancy_refresh_us = 0;  // sample the (absent) source every admit
  return cfg;
}

TEST(TokenBucket, BurstThenThrottleThenRefill) {
  // 100 cps, burst 3: the first 3 commands pass on the primed bucket, the
  // 4th throttles, and 10ms later exactly one token (100 cps * 10ms) has
  // come back.
  AdmissionController ctl(bucket_only(100, 3), nullptr);
  std::int64_t t = 1'000'000;
  EXPECT_EQ(ctl.admit(1, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(1, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(1, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(1, t), Admit::kThrottled);
  EXPECT_EQ(ctl.admit(1, t + 10'000), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(1, t + 10'000), Admit::kThrottled);

  auto s = ctl.stats();
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.throttled, 2u);
  EXPECT_EQ(s.shed_overload, 0u);
  EXPECT_EQ(s.rejected(), 2u);
}

TEST(TokenBucket, RefillIsCappedAtBurst) {
  // A long idle period must not bank more than `burst` tokens.
  AdmissionController ctl(bucket_only(1000, 2), nullptr);
  std::int64_t t = 0;
  EXPECT_EQ(ctl.admit(7, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(7, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(7, t), Admit::kThrottled);
  t += 60'000'000;  // a minute: 60000 tokens earned, 2 kept
  EXPECT_EQ(ctl.admit(7, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(7, t), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(7, t), Admit::kThrottled);
}

TEST(TokenBucket, DefaultBurstIsOneBatchWorth) {
  // client_burst = 0 defaults to max(1, rate/100).
  AdmissionController small(bucket_only(50, 0), nullptr);  // -> burst 1
  EXPECT_EQ(small.admit(1, 0), Admit::kAdmit);
  EXPECT_EQ(small.admit(1, 0), Admit::kThrottled);

  AdmissionController big(bucket_only(1000, 0), nullptr);  // -> burst 10
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(big.admit(1, 0), Admit::kAdmit) << "token " << i;
  }
  EXPECT_EQ(big.admit(1, 0), Admit::kThrottled);
}

TEST(TokenBucket, ClientsHaveIndependentBuckets) {
  // One aggressive client draining its bucket must not starve another.
  AdmissionController ctl(bucket_only(100, 1), nullptr);
  EXPECT_EQ(ctl.admit(1, 0), Admit::kAdmit);
  EXPECT_EQ(ctl.admit(1, 0), Admit::kThrottled);
  EXPECT_EQ(ctl.admit(2, 0), Admit::kAdmit);  // untouched bucket
  EXPECT_EQ(ctl.admit(2, 0), Admit::kThrottled);
}

TEST(OccupancyShed, HysteresisEntersHighExitsLow) {
  // Synthetic occupancy source: in-ring backlog = submit - decided.
  paxos::CoordinatorStats stats;
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.shed_enter_occupancy = 100;
  cfg.shed_exit_occupancy = 40;
  cfg.occupancy_refresh_us = 0;
  AdmissionController ctl(cfg, [&] { return stats; });

  auto at_backlog = [&](std::uint64_t backlog, std::int64_t t) {
    stats.submit_commands = 1000 + backlog;
    stats.decided_commands = 1000;
    return ctl.admit(1, t);
  };

  EXPECT_EQ(at_backlog(99, 1), Admit::kAdmit);   // below enter
  EXPECT_EQ(at_backlog(100, 2), Admit::kShedOverload);  // enter
  // Between exit and enter: hysteresis holds the valve closed.
  EXPECT_EQ(at_backlog(41, 3), Admit::kShedOverload);
  EXPECT_EQ(at_backlog(40, 4), Admit::kAdmit);   // exit
  // Between the thresholds again, now from below: stays open.
  EXPECT_EQ(at_backlog(99, 5), Admit::kAdmit);

  auto s = ctl.stats();
  EXPECT_EQ(s.shed_overload, 2u);
  EXPECT_EQ(s.shed_entries, 1u);  // one transition into shedding
  EXPECT_FALSE(s.shedding);
  EXPECT_EQ(s.last_occupancy, 99u);
}

TEST(OccupancyShed, RefreshCadenceLimitsSampling) {
  // With a 1ms cadence the source is consulted once per window, so a
  // backlog spike between samples is only seen at the next refresh.
  paxos::CoordinatorStats stats;
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.shed_enter_occupancy = 10;
  cfg.shed_exit_occupancy = 5;
  cfg.occupancy_refresh_us = 1000;
  AdmissionController ctl(cfg, [&] { return stats; });

  EXPECT_EQ(ctl.admit(1, 0), Admit::kAdmit);  // sample #1: backlog 0
  stats.submit_commands = 50;                 // spike
  EXPECT_EQ(ctl.admit(1, 500), Admit::kAdmit);  // inside cadence: stale 0
  EXPECT_EQ(ctl.admit(1, 1000), Admit::kShedOverload);  // refreshed
  EXPECT_EQ(ctl.stats().occupancy_samples, 2u);
}

TEST(OccupancyShed, LostCommandsNeverUnderflow) {
  paxos::CoordinatorStats s;
  s.submit_commands = 10;
  s.decided_commands = 25;  // decided > submitted (duplicate deliveries)
  EXPECT_EQ(AdmissionController::occupancy_of(s), 0u);
}

// --- kSmrRejected round trip through a real deployment -------------------

TEST(AdmissionRoundTrip, ThrottledCommandCompletesAsRejected) {
  // burst 2, negligible refill: commands 1-2 execute, 3 completes through
  // poll() with Completion::rejected and the kThrottled verdict byte, and
  // the pipeline is empty afterwards (no wedged pending entry).
  auto cfg = test_support::kv_config(smr::Mode::kPsmr, 2, /*initial_keys=*/64);
  cfg.admission.enabled = true;
  cfg.admission.client_rate_cps = 0.001;  // ~no refill inside the test
  cfg.admission.client_burst = 2;
  test_support::Cluster cluster(std::move(cfg));
  auto proxy = cluster->make_client();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        proxy->submit(kvstore::kKvRead, kvstore::encode_key(1)).has_value());
  }
  int executed = 0;
  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    auto done = proxy->poll(std::chrono::seconds(10));
    ASSERT_TRUE(done.has_value()) << "completion " << i << " never arrived";
    if (done->rejected) {
      ++rejected;
      EXPECT_EQ(ClientProxy::rejection_verdict(*done), Admit::kThrottled);
    } else {
      ++executed;
    }
  }
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(rejected, 1);
  EXPECT_EQ(proxy->outstanding(), 0u);

  auto s = cluster->admission_stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.throttled, 1u);
}

TEST(AdmissionRoundTrip, CallFailsFastOnShedCommand) {
  // call() on a shed command returns nullopt quickly (one loopback hop)
  // instead of burning its 10s timeout.
  auto cfg = test_support::kv_config(smr::Mode::kSpsmr, 2, /*initial_keys=*/64);
  cfg.admission.enabled = true;
  cfg.admission.client_rate_cps = 0.001;
  cfg.admission.client_burst = 1;
  test_support::Cluster cluster(std::move(cfg));
  auto proxy = cluster->make_client();

  EXPECT_TRUE(proxy->call(kvstore::kKvRead, kvstore::encode_key(1))
                  .has_value());  // burst token
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      proxy->call(kvstore::kKvRead, kvstore::encode_key(1)).has_value());
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "shed call did not fail fast";
  EXPECT_EQ(proxy->outstanding(), 0u);
}

TEST(AdmissionRoundTrip, DisabledConfigNeverSheds) {
  // Deployment with admission disabled builds no controller at all.
  KvCluster cluster(smr::Mode::kPsmr, 2, /*initial_keys=*/64);
  EXPECT_EQ(cluster->admission(), nullptr);
  auto s = cluster->admission_stats();
  EXPECT_EQ(s.admitted, 0u);
  EXPECT_EQ(s.rejected(), 0u);
}

// --- Dispatch-failure regression ------------------------------------------
// src/smr/client.cc used to ignore dispatch()'s return: a send the
// transport rejected (shutdown, disconnected peer) still went into
// pending_, wedging outstanding() forever.  submit() now surfaces the
// failure as nullopt and pends nothing.

TEST(DispatchFailure, DirectModeSubmitSurfacesDisconnectedServer) {
  transport::Network net;
  auto [server, serverbox] = net.register_node();
  ClientProxy proxy(net, server, /*id=*/1);
  net.disconnect(server);

  EXPECT_FALSE(proxy.submit(1, util::Buffer{1}).has_value());
  EXPECT_EQ(proxy.outstanding(), 0u);  // nothing pends, nothing to wedge

  // The proxy recovers once the server is reachable again.
  net.reconnect(server);
  EXPECT_TRUE(proxy.submit(1, util::Buffer{1}).has_value());
  EXPECT_EQ(proxy.outstanding(), 1u);
}

TEST(DispatchFailure, SubmitAfterShutdownPendsNothing) {
  auto cfg = test_support::kv_config(smr::Mode::kPsmr, 2, /*initial_keys=*/8);
  cfg.admission.enabled = true;  // also cover the rejection-loopback branch
  cfg.admission.client_rate_cps = 0.001;
  cfg.admission.client_burst = 1;
  test_support::Cluster cluster(std::move(cfg));
  auto proxy = cluster->make_client();
  cluster->stop();  // network shut down under the live proxy

  // Admitted path: dispatch fails -> nullopt, nothing pending.
  EXPECT_FALSE(
      proxy->submit(kvstore::kKvRead, kvstore::encode_key(1)).has_value());
  // Shed path: the rejection loopback cannot be delivered either -> the
  // provisional pending entry must be rolled back, not leaked.
  EXPECT_FALSE(
      proxy->submit(kvstore::kKvRead, kvstore::encode_key(1)).has_value());
  EXPECT_EQ(proxy->outstanding(), 0u);
}

}  // namespace
}  // namespace psmr::smr
