// Unit and stress coverage for the zero-copy pooled message buffers
// (util/buffer_pool.h) and the client-side submit spooler
// (smr/submit_spooler.h): refcount/recycle invariants, size-class and
// free-list bounds, PayloadWriter wire-compatibility with util::Writer,
// steady-state allocation-freedom (via the util/alloc_hook counting
// allocator test_support defines), a concurrent acquire–share–release
// stress with digest-vs-oracle checking, a seeded interleaving fuzz, and
// spooler flush-trigger/ordering/failure semantics over a real Bus.
#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "multicast/amcast.h"
#include "smr/command.h"
#include "smr/submit_spooler.h"
#include "test_support.h"
#include "transport/network.h"
#include "util/alloc_hook.h"
#include "util/hash.h"
#include "util/rng.h"

namespace psmr::util {
namespace {

// ---------------------------------------------------------------------------
// BufferPool / PooledBuf units.
// ---------------------------------------------------------------------------

TEST(BufferPool, AcquireRoundsUpToClass) {
  BufferPool pool;
  EXPECT_EQ(pool.acquire(1).capacity(), 64u);
  EXPECT_EQ(pool.acquire(64).capacity(), 64u);
  EXPECT_EQ(pool.acquire(65).capacity(), 256u);
  EXPECT_EQ(pool.acquire(8192).capacity(), 16384u);
  EXPECT_EQ(pool.acquire(65536).capacity(), 65536u);
}

TEST(BufferPool, OversizeFallsBackToHeap) {
  BufferPool pool;
  {
    PooledBuf big = pool.acquire(65537);
    EXPECT_GE(big.capacity(), 65537u);
    EXPECT_EQ(pool.stats().oversize, 1u);
    EXPECT_EQ(pool.stats().outstanding, 1);
  }
  // Released straight to the heap: nothing recycled, nothing outstanding.
  EXPECT_EQ(pool.stats().recycled, 0u);
  EXPECT_EQ(pool.stats().outstanding, 0);
}

TEST(BufferPool, ReleaseRecyclesIntoFreeList) {
  BufferPool pool;
  const std::uint8_t* first_data = nullptr;
  {
    PooledBuf b = pool.acquire(100);
    first_data = b.data();
    EXPECT_EQ(b.ref_count(), 1u);
  }
  PoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.recycled, 1u);
  EXPECT_EQ(s.outstanding, 0);

  // Same class again: served from the free list — the very same block.
  PooledBuf again = pool.acquire(200);
  EXPECT_EQ(again.data(), first_data);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().outstanding, 1);
}

TEST(BufferPool, CopySharesOneBlock) {
  BufferPool pool;
  PooledBuf a = pool.acquire(32);
  PooledBuf b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(pool.stats().outstanding, 1);  // one block, two handles
  b.reset();
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_EQ(pool.stats().recycled, 0u);  // a still holds the block
  a.reset();
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0);
}

TEST(BufferPool, FreeListIsBounded) {
  BufferPool::Options opt;
  opt.max_free_per_class = 2;
  BufferPool pool(opt);
  {
    std::vector<PooledBuf> held;
    for (int i = 0; i < 5; ++i) held.push_back(pool.acquire(64));
  }
  PoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 5u);
  EXPECT_EQ(s.recycled, 2u);  // list capacity
  EXPECT_EQ(s.dropped, 3u);   // overflow back to the heap
  EXPECT_EQ(s.outstanding, 0);
}

TEST(BufferPool, TrimFreesRetainedBlocks) {
  BufferPool pool;
  { PooledBuf b = pool.acquire(64); }
  EXPECT_EQ(pool.stats().recycled, 1u);
  pool.trim();
  // The next acquire is a miss again: the free list is empty.
  PooledBuf b = pool.acquire(64);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// Payload semantics.
// ---------------------------------------------------------------------------

TEST(Payload, RoundTripsThroughBuffer) {
  Buffer src = {1, 2, 3, 4, 5};
  Payload p = src;  // implicit: one copy into a pooled block
  EXPECT_EQ(p.size(), 5u);
  EXPECT_TRUE(p == src);
  EXPECT_EQ(p.to_buffer(), src);
  EXPECT_EQ(p[3], 4u);
}

TEST(Payload, SubviewSharesTheBlock) {
  Buffer src;
  for (int i = 0; i < 100; ++i) src.push_back(static_cast<std::uint8_t>(i));
  Payload whole = src;
  EXPECT_EQ(whole.ref_count(), 1u);
  Payload slice = whole.subview(10, 20);
  EXPECT_EQ(whole.ref_count(), 2u);  // same block, two owners
  EXPECT_EQ(slice.size(), 20u);
  EXPECT_EQ(slice[0], 10u);
  EXPECT_EQ(slice.data(), whole.data() + 10);  // zero-copy: same bytes

  // The slice keeps the block alive after the whole goes away.
  whole = Payload();
  EXPECT_EQ(slice.ref_count(), 1u);
  EXPECT_EQ(slice[19], 29u);
}

TEST(Payload, SubviewOfReaderSpan) {
  Writer w;
  w.bytes(Buffer{9, 8, 7});
  w.bytes(Buffer{6, 5});
  Payload frame = w.take();
  Reader r(frame);
  Payload first = frame.subview_of(r.bytes_view());
  Payload second = frame.subview_of(r.bytes_view());
  EXPECT_TRUE(first == Buffer({9, 8, 7}));
  EXPECT_TRUE(second == Buffer({6, 5}));
  EXPECT_EQ(frame.ref_count(), 3u);
}

// ---------------------------------------------------------------------------
// PayloadWriter: byte-identical wire encoding to util::Writer.
// ---------------------------------------------------------------------------

TEST(PayloadWriter, MatchesWriterByteForByte) {
  Writer w;
  PayloadWriter pw(8);  // deliberately small: forces grow() mid-encode
  auto both = [&](auto&& f) {
    f(w);
    f(pw);
  };
  both([](auto& x) { x.u8(0xab); });
  both([](auto& x) { x.u16(0x1234); });
  both([](auto& x) { x.u32(0xdeadbeef); });
  both([](auto& x) { x.u64(0x0123456789abcdefULL); });
  both([](auto& x) { x.i64(-42); });
  both([](auto& x) { x.boolean(true); });
  both([](auto& x) { x.bytes(Buffer{1, 2, 3}); });
  both([](auto& x) { x.str("hello"); });
  both([](auto& x) { x.raw(Buffer{7, 7, 7}); });

  Buffer expect = w.take();
  Payload got = pw.take();
  EXPECT_TRUE(got == expect);
}

TEST(PayloadWriter, PatchU32RewritesInPlace) {
  PayloadWriter pw(64);
  pw.u32(0);  // count slot
  pw.u64(11);
  pw.u64(22);
  pw.patch_u32(0, 2);
  Payload p = pw.take();
  Reader r(p);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_EQ(r.u64(), 11u);
  EXPECT_EQ(r.u64(), 22u);
}

TEST(PayloadWriter, WarmSteadyStateIsAllocationFree) {
  if (!allochook::kAllocHookActive) {
    GTEST_SKIP() << "allocation hook inert (sanitizer build)";
  }
  BufferPool pool;
  // Warm-up: populate the 256-byte class free list.
  { PayloadWriter w(200, pool); w.u64(1); auto p = w.take(); }

  allochook::AllocWindow window;
  for (int i = 0; i < 1000; ++i) {
    PayloadWriter w(200, pool);
    for (int j = 0; j < 20; ++j) w.u64(static_cast<std::uint64_t>(j));
    Payload p = w.take();
    Payload sub = p.subview(8, 8);
    Reader r(sub);
    ASSERT_EQ(r.u64(), 1u);
  }  // p and sub drop here: block recycles, next iteration hits
  EXPECT_EQ(window.count(), 0u) << "warm pooled encode/decode hit the heap";
  EXPECT_EQ(pool.stats().hits, 1000u);
}

// ---------------------------------------------------------------------------
// Concurrency: share/release races and content integrity.
// ---------------------------------------------------------------------------

TEST(BufferPoolStress, ConcurrentAcquireShareRelease) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  constexpr int kWordsPerBlock = 8;
  BufferPool pool;
  std::atomic<std::uint64_t> digest{0};

  // Oracle: each (thread, iteration) writes value v into every word of its
  // block, then reads it back through three shared handles — full copy,
  // full subview, half subview — so the digest must come out to exactly
  // (2 * kWordsPerBlock + kWordsPerBlock/2) * v per iteration if no block
  // was corrupted or recycled while still referenced.
  std::uint64_t oracle = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIters; ++i) {
      std::uint64_t v = static_cast<std::uint64_t>(t) * 1000003u +
                        static_cast<std::uint64_t>(i);
      oracle += v * (2 * kWordsPerBlock + kWordsPerBlock / 2);
    }
  }

  test_support::run_threads(kThreads, [&](int t) {
    SplitMix64 rng(static_cast<std::uint64_t>(t) + 99);
    std::uint64_t local = 0;
    for (int i = 0; i < kIters; ++i) {
      std::uint64_t v = static_cast<std::uint64_t>(t) * 1000003u +
                        static_cast<std::uint64_t>(i);
      // Varying capacity requests churn several size classes at once.
      PayloadWriter w(rng.next() % 500 + 64, pool);
      for (int j = 0; j < kWordsPerBlock; ++j) w.u64(v);
      Payload p = w.take();
      Payload copy = p;
      Payload full = p.subview(0, p.size());
      Payload half = p.subview(0, p.size() / 2);
      p = Payload();  // the original drops first; the views keep the block
      for (const Payload* h : {&copy, &full, &half}) {
        Reader r(*h);
        while (r.remaining() >= 8) local += r.u64();
      }
    }
    digest.fetch_add(local, std::memory_order_relaxed);
  });

  EXPECT_EQ(digest.load(), oracle);
  EXPECT_EQ(pool.stats().outstanding, 0) << "stress leaked pool blocks";
}

TEST(BufferPoolStress, SeededShareReleaseFuzz) {
  const std::uint64_t seed = test_support::logged_seed(1234);
  SplitMix64 rng(seed);
  BufferPool pool;

  // Slots hold (payload, oracle bytes).  Random ops: create, copy, subview,
  // drop — after every op each live slot must still read back its oracle.
  std::vector<Payload> slots;
  std::vector<Buffer> oracles;
  for (int op = 0; op < 3000; ++op) {
    std::uint64_t pick = rng.next();
    if (slots.empty() || pick % 4 == 0) {
      std::size_t n = pick % 3000 + 1;
      Buffer bytes;
      bytes.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      PayloadWriter w(n, pool);
      w.raw(bytes);
      slots.push_back(w.take());
      oracles.push_back(std::move(bytes));
    } else if (pick % 4 == 1) {
      std::size_t i = pick / 7 % slots.size();
      slots.push_back(slots[i]);  // share
      oracles.push_back(oracles[i]);
    } else if (pick % 4 == 2) {
      std::size_t i = pick / 7 % slots.size();
      std::size_t off = slots[i].empty() ? 0 : pick / 13 % slots[i].size();
      std::size_t len = slots[i].size() - off == 0
                            ? 0
                            : pick / 17 % (slots[i].size() - off);
      slots.push_back(slots[i].subview(off, len));
      oracles.emplace_back(oracles[i].begin() + static_cast<std::ptrdiff_t>(off),
                           oracles[i].begin() +
                               static_cast<std::ptrdiff_t>(off + len));
    } else {
      std::size_t i = pick / 7 % slots.size();
      slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
      oracles.erase(oracles.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // Spot-check a random live slot (checking all 3000 times is O(n^2)).
    if (!slots.empty()) {
      std::size_t i = rng.next() % slots.size();
      ASSERT_TRUE(slots[i] == oracles[i])
          << "slot " << i << " diverged from oracle at op " << op
          << " (seed " << seed << ")";
    }
  }
  // Full final sweep, then teardown must return every block.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_TRUE(slots[i] == oracles[i]) << "slot " << i << " (seed " << seed
                                        << ")";
  }
  slots.clear();
  EXPECT_EQ(pool.stats().outstanding, 0) << "fuzz leaked pool blocks";
}

}  // namespace
}  // namespace psmr::util

// ---------------------------------------------------------------------------
// SubmitSpooler: flush triggers, per-ring bucketing, ordering, failure.
// ---------------------------------------------------------------------------

namespace psmr::smr {
namespace {

using multicast::Bus;
using multicast::BusConfig;
using multicast::GroupSet;
using transport::Network;

BusConfig fast_bus(std::size_t k) {
  BusConfig cfg;
  cfg.num_groups = k;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  cfg.ring.skip_interval = std::chrono::microseconds(300);
  return cfg;
}

Command cmd(std::uint64_t seq, GroupSet groups,
            std::size_t param_bytes = 8) {
  Command c;
  c.cmd = 1;
  c.client = 9;
  c.seq = seq;
  c.reply_to = 5;
  c.groups = groups;
  util::Writer w;
  w.u64(seq);
  for (std::size_t i = 8; i < param_bytes; ++i) w.u8(0);
  c.params = w.take();
  return c;
}

std::vector<std::uint64_t> drain_seqs(multicast::MergeDeliverer& d,
                                      std::size_t count) {
  std::vector<std::uint64_t> out;
  while (out.size() < count) {
    auto m = d.next();
    if (!m) break;
    auto c = Command::decode(m->message);
    if (c) out.push_back(c->seq);
  }
  return out;
}

TEST(SubmitSpooler, FlushOnCountDeliversInOrder) {
  Network net;
  Bus bus(net, fast_bus(1));
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  SubmitSpoolerOptions opt;
  opt.max_commands = 4;
  SubmitSpooler spooler(bus, opt);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(spooler.spool(me, cmd(i, GroupSet::single(0))));
  }
  SpoolStats s = spooler.stats();
  EXPECT_EQ(s.spooled_commands, 8u);
  EXPECT_EQ(s.flushes, 2u);
  EXPECT_EQ(s.flush_on_count, 2u);
  EXPECT_EQ(s.flushed_commands, 8u);
  EXPECT_DOUBLE_EQ(s.mean_commands_per_flush(), 4.0);

  auto seqs = drain_seqs(*sub, 8);
  ASSERT_EQ(seqs.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(seqs[i], i);
  bus.stop();
}

TEST(SubmitSpooler, FlushOnBytes) {
  Network net;
  Bus bus(net, fast_bus(1));
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  SubmitSpoolerOptions opt;
  opt.max_commands = 1000;
  opt.max_bytes = 512;
  SubmitSpooler spooler(bus, opt);
  std::uint64_t n = 0;
  while (spooler.stats().flush_on_bytes == 0) {
    ASSERT_TRUE(spooler.spool(me, cmd(n++, GroupSet::single(0),
                                      /*param_bytes=*/100)));
    ASSERT_LT(n, 100u) << "byte cap never triggered";
  }
  SpoolStats s = spooler.stats();
  EXPECT_EQ(s.flush_on_count, 0u);
  EXPECT_GE(s.flushed_bytes, 512u);
  auto seqs = drain_seqs(*sub, s.flushed_commands);
  EXPECT_EQ(seqs.size(), s.flushed_commands);
  bus.stop();
}

TEST(SubmitSpooler, FlushAllDrainsEveryRing) {
  Network net;
  Bus bus(net, fast_bus(2));  // 2 worker rings + shared g_all ring
  auto s0 = bus.subscribe(0);
  auto s1 = bus.subscribe(1);
  bus.start();
  auto [me, mybox] = net.register_node();

  SubmitSpooler spooler(bus, SubmitSpoolerOptions{});
  ASSERT_TRUE(spooler.spool(me, cmd(1, GroupSet::single(0))));
  ASSERT_TRUE(spooler.spool(me, cmd(2, GroupSet::single(1))));
  ASSERT_TRUE(spooler.spool(me, cmd(3, GroupSet::all(2))));  // shared ring
  EXPECT_EQ(spooler.stats().flushes, 0u);  // nothing hit a cap

  spooler.flush_all(me);
  SpoolStats s = spooler.stats();
  EXPECT_EQ(s.flushes, 3u);  // one per non-empty spool
  EXPECT_EQ(s.flush_on_poll, 3u);
  EXPECT_EQ(s.flushed_commands, 3u);

  // Group 0 sees its singleton plus the g_all command; group 1 likewise.
  // The merge order between a worker ring and the shared ring depends on
  // batch timing, so compare as sets — per-ring FIFO is covered by
  // FlushOnCountDeliversInOrder.
  auto g0 = drain_seqs(*s0, 2);
  auto g1 = drain_seqs(*s1, 2);
  std::sort(g0.begin(), g0.end());
  std::sort(g1.begin(), g1.end());
  EXPECT_EQ(g0, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(g1, (std::vector<std::uint64_t>{2, 3}));

  // Idempotent: empty spools don't flush again.
  spooler.flush_all(me);
  EXPECT_EQ(spooler.stats().flushes, 3u);
  bus.stop();
}

TEST(SubmitSpooler, RejectedFlushIsCountedAndReported) {
  Network net;
  Bus bus(net, fast_bus(1));
  auto [me, mybox] = net.register_node();

  SubmitSpoolerOptions opt;
  opt.max_commands = 2;
  SubmitSpooler spooler(bus, opt);
  ASSERT_TRUE(spooler.spool(me, cmd(1, GroupSet::single(0))));
  net.shutdown();
  // The second command trips the cap; the flush hits the dead transport.
  EXPECT_FALSE(spooler.spool(me, cmd(2, GroupSet::single(0))));
  EXPECT_EQ(spooler.stats().failed_flush_commands, 2u);
}

TEST(SubmitSpooler, DeploymentPipelinesAndConverges) {
  // End-to-end: the default deployment wires the spooler in, the disjoint
  // workload converges to identical replica digests, and every spooled
  // command was flushed (poll-entry leaves nothing stranded).
  auto cfg = test_support::kv_config(Mode::kPsmr, 2, /*initial_keys=*/400);
  ASSERT_TRUE(cfg.pipeline_submits.enabled);
  test_support::Cluster cluster(std::move(cfg));
  test_support::run_disjoint_kv_workload(*cluster, /*clients=*/4,
                                         /*ops=*/150);
  SpoolStats s = cluster->spool_stats();
  EXPECT_GT(s.spooled_commands, 0u);
  EXPECT_EQ(s.flushed_commands + s.failed_flush_commands,
            s.spooled_commands);
  EXPECT_GT(s.mean_commands_per_flush(), 1.0)
      << "pipelining never grouped two commands into one burst";
}

TEST(SubmitSpooler, DisabledSpoolingStillConverges) {
  auto cfg = test_support::kv_config(Mode::kPsmr, 2, /*initial_keys=*/400);
  cfg.pipeline_submits.enabled = false;
  test_support::Cluster cluster(std::move(cfg));
  test_support::run_disjoint_kv_workload(*cluster, /*clients=*/2,
                                         /*ops=*/100);
  EXPECT_EQ(cluster->spool_stats().spooled_commands, 0u);
}

}  // namespace
}  // namespace psmr::smr
