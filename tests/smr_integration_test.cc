// End-to-end tests: clients → (multicast) → replicas for every deployment
// mode, exercising the paper's correctness claims — replica convergence,
// dependent-command serialization, first-response semantics, failover.
#include <gtest/gtest.h>

#include <thread>

#include "kvstore/kv_client.h"
#include "smr/runtime.h"
#include "test_support.h"
#include "util/rng.h"

namespace psmr::smr {
namespace {

using kvstore::KvClient;
using kvstore::kKvOk;
using test_support::kv_config;
using test_support::wait_executed;

class AllModes : public ::testing::TestWithParam<Mode> {};

TEST_P(AllModes, BasicOperationsRoundTrip) {
  Deployment d(kv_config(GetParam(), 4));
  d.start();
  KvClient client(d.make_client());

  EXPECT_EQ(client.insert(1, 100), kKvOk);
  EXPECT_EQ(client.insert(2, 200), kKvOk);
  EXPECT_EQ(client.read(1).value(), 100u);
  EXPECT_EQ(client.update(1, 101), kKvOk);
  EXPECT_EQ(client.read(1).value(), 101u);
  EXPECT_EQ(client.erase(2), kKvOk);
  EXPECT_FALSE(client.read(2).has_value());
  EXPECT_EQ(client.insert(1, 1), kvstore::kKvExists);
  EXPECT_EQ(client.erase(42), kvstore::kKvNotFound);
  d.stop();
}

TEST_P(AllModes, ManyClientsMixedWorkloadConverges) {
  Deployment d(kv_config(GetParam(), 4, /*initial_keys=*/256));
  d.start();

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 150;
  const std::uint64_t seed = test_support::logged_seed(100);
  std::atomic<int> failures{0};
  test_support::Barrier start(kClients);
  test_support::run_threads(kClients, [&](int c) {
    start.arrive_and_wait();  // all clients drive the mixed load together
    KvClient client(d.make_client());
    util::SplitMix64 rng(seed + static_cast<std::uint64_t>(c));
    for (int i = 0; i < kOpsPerClient; ++i) {
      std::uint64_t k = rng.next_below(256);
      switch (rng.next_below(10)) {
        case 0:
          client.insert(256 + rng.next_below(64), k);
          break;
        case 1:
          client.erase(256 + rng.next_below(64));
          break;
        case 2:
        case 3:
        case 4:
          if (client.update(k, rng.next()) != kKvOk) failures++;
          break;
        default:
          client.read(k);
          break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);  // preloaded keys always updatable

  // All replicas must converge to identical state.
  std::uint64_t total = kClients * kOpsPerClient;
  wait_executed(d, total);
  auto digest0 = d.state_digest(0);
  for (std::size_t i = 1; i < d.num_services(); ++i) {
    EXPECT_EQ(d.state_digest(i), digest0) << "replica " << i << " diverged";
  }
  d.stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModes,
                         ::testing::Values(Mode::kSmr, Mode::kSpsmr,
                                           Mode::kPsmr, Mode::kNoRep,
                                           Mode::kLockServer),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::kSmr: return "SMR";
                             case Mode::kSpsmr: return "sPSMR";
                             case Mode::kPsmr: return "PSMR";
                             case Mode::kNoRep: return "NoRep";
                             case Mode::kLockServer: return "Lock";
                           }
                           return "unknown";
                         });

TEST(Psmr, ReplicasConvergeUnderStructuralChurn) {
  // Heavy insert/delete (synchronous mode) interleaved with reads/updates
  // (parallel mode) — the full Algorithm 1 machinery under load.
  Deployment d(kv_config(Mode::kPsmr, 8, /*initial_keys=*/512));
  d.start();
  constexpr int kClients = 6;
  const std::uint64_t seed = test_support::logged_seed(7);
  test_support::run_threads(kClients, [&](int c) {
    KvClient client(d.make_client());
    util::SplitMix64 rng(seed + static_cast<std::uint64_t>(c));
    for (int i = 0; i < 120; ++i) {
      std::uint64_t k = rng.next_below(700);
      switch (rng.next_below(4)) {
        case 0: client.insert(k, k); break;
        case 1: client.erase(k); break;
        case 2: client.update(k % 512, i); break;
        default: client.read(k); break;
      }
    }
  });
  wait_executed(d, kClients * 120);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

TEST(Psmr, SameKeyOrderingIsLinear) {
  // Same-key updates from one client must apply in submission order; the
  // final read must observe the last write even though everything ran on an
  // 8-worker replica.
  Deployment d(kv_config(Mode::kPsmr, 8, /*initial_keys=*/16));
  d.start();
  KvClient client(d.make_client());
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_EQ(client.update(5, i), kKvOk);
  }
  EXPECT_EQ(client.read(5).value(), 100u);
  d.stop();
}

TEST(Psmr, WindowedPipelineCompletesEverything) {
  // Drive a client with a 50-deep window (paper Section VI-B) and verify
  // every submission completes exactly once.
  Deployment d(kv_config(Mode::kPsmr, 4, /*initial_keys=*/1024));
  d.start();
  auto proxy = d.make_client();
  util::SplitMix64 rng(2);
  constexpr int kTotal = 2000;
  constexpr std::size_t kWindow = 50;
  int submitted = 0;
  int completed = 0;
  std::set<Seq> seen;
  while (completed < kTotal) {
    while (submitted < kTotal && proxy->outstanding() < kWindow) {
      ASSERT_TRUE(proxy->submit(kvstore::kKvRead,
                                kvstore::encode_key(rng.next_below(1024)))
                      .has_value());
      ++submitted;
    }
    auto done = proxy->poll(std::chrono::seconds(10));
    ASSERT_TRUE(done.has_value()) << "pipeline stalled at " << completed;
    EXPECT_TRUE(seen.insert(done->seq).second) << "duplicate completion";
    ++completed;
  }
  EXPECT_EQ(proxy->outstanding(), 0u);
  d.stop();
}

TEST(Psmr, SurvivesCoordinatorFailover) {
  auto cfg = kv_config(Mode::kPsmr, 4, /*initial_keys=*/64);
  Deployment d(std::move(cfg));
  d.start();
  KvClient client(d.make_client());
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(client.update(i % 64, i), kKvOk);
  }
  // Kill the coordinator of one worker ring and of the shared ring.
  d.bus()->group_ring(1).fail_coordinator();
  d.bus()->shared_ring().fail_coordinator();
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(client.update(i % 64, 1000 + i), kKvOk) << "post-failover " << i;
  }
  ASSERT_EQ(client.insert(4096, 1), kKvOk);  // synchronous mode still works
  EXPECT_EQ(client.read(4096).value(), 1u);
  d.stop();
}

TEST(Smr, SingleThreadedReplicaExecutesEverythingInOrder) {
  Deployment d(kv_config(Mode::kSmr, 1, /*initial_keys=*/8));
  d.start();
  KvClient client(d.make_client());
  for (std::uint64_t i = 1; i <= 50; ++i) {
    ASSERT_EQ(client.update(3, i), kKvOk);
  }
  EXPECT_EQ(client.read(3).value(), 50u);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

TEST(Spsmr, SchedulerSerializesStructuralCommands) {
  Deployment d(kv_config(Mode::kSpsmr, 4, /*initial_keys=*/128));
  d.start();
  KvClient client(d.make_client());
  // Alternate structural and keyed commands; any internal race would break
  // the final state or crash the unsynchronized tree.
  for (std::uint64_t i = 0; i < 60; ++i) {
    ASSERT_EQ(client.insert(1000 + i, i), kKvOk);
    ASSERT_EQ(client.update(i % 128, i), kKvOk);
    ASSERT_EQ(client.erase(1000 + i), kKvOk);
  }
  wait_executed(d, 180);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

TEST(Deployment, MakeClientAssignsDistinctIds) {
  Deployment d(kv_config(Mode::kPsmr, 2));
  d.start();
  auto c1 = d.make_client();
  auto c2 = d.make_client();
  EXPECT_NE(c1->id(), c2->id());
  EXPECT_NE(c1->node(), c2->node());
  d.stop();
}

TEST(Deployment, StopIsIdempotentAndJoinsEverything) {
  Deployment d(kv_config(Mode::kPsmr, 4));
  d.start();
  KvClient client(d.make_client());
  EXPECT_EQ(client.insert(1, 1), kKvOk);
  d.stop();
  d.stop();  // must not hang or crash
}

}  // namespace
}  // namespace psmr::smr
