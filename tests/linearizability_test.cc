// Linearizability check over the real P-SMR stack (paper Section IV-E
// claims P-SMR is linearizable; this test checks the register case
// empirically on recorded histories).
//
// Setup: one writer performs sequential updates 1..N on a key; concurrent
// reader clients time-stamp their invocations and responses.  For an atomic
// register with a sequential writer, linearizability is exactly:
//   (1) every read returns a value some update actually wrote (or the
//       initial value);
//   (2) a read invoked after update_i completed returns a value >= i
//       (reads never travel back past a completed write);
//   (3) a read that responded before update_j was invoked returns < j
//       (reads never see the future);
//   (4) per reader, returned values are monotonically non-decreasing
//       (session order respects the register's total write order).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>

#include "kvstore/kv_client.h"
#include "smr/runtime.h"
#include "test_support.h"
#include "util/clock.h"

namespace psmr::smr {
namespace {

using kvstore::KvClient;

struct ReadRecord {
  std::int64_t invoked_us;
  std::int64_t responded_us;
  std::uint64_t value;
};

// (mpl, batching profile, execution run length, reply coalescing):
// "default" is the tuned test ring; the aggressive profiles re-run the same
// history check under multicast-batching extremes (near-zero timeout /
// cap-driven sealing), which is where a batcher bug would first corrupt
// ordering.  run_length forces replica-side execution batching fully on (8)
// or off (1) — a batch accumulator that ever groups a dependent read/update
// pair shows up here as a stale or futuristic read.  coalesce_responses
// re-runs the check with reply batching forced off (it defaults on): a
// demux or flush bug shows up as a lost, duplicated or reordered-per-seq
// completion.
struct LinParam {
  int mpl;
  const char* profile;
  std::size_t run_length = 16;
  bool coalesce_responses = true;
};

paxos::RingConfig ring_for(const char* profile) {
  if (std::string_view(profile) == "default") {
    return test_support::fast_ring();
  }
  for (const auto& named : test_support::aggressive_batching_rings()) {
    if (std::string_view(named.name) == profile) return named.ring;
  }
  ADD_FAILURE() << "unknown batching profile " << profile;
  return test_support::fast_ring();
}

class PsmrLinearizability : public ::testing::TestWithParam<LinParam> {};

TEST_P(PsmrLinearizability, SequentialWriterConcurrentReaders) {
  const int mpl = GetParam().mpl;
  auto cfg = test_support::kv_config_with_ring(
      Mode::kPsmr, static_cast<std::size_t>(mpl),
      ring_for(GetParam().profile), /*initial_keys=*/16);
  cfg.exec_run_length = GetParam().run_length;
  cfg.coalesce_responses = GetParam().coalesce_responses;
  // fast_ring() is tuned for ~9 rings; stretch the idle-skip cadence at 16
  // groups the same way sharded_kv_config does, to hold aggregate skip load
  // roughly constant on this small host.
  if (mpl > 8) cfg.ring.skip_interval *= mpl / 8;
  test_support::Cluster cluster(std::move(cfg));
  Deployment& d = cluster.deployment();

  constexpr std::uint64_t kKey = 5;
  constexpr std::uint64_t kWrites = 60;
  constexpr std::uint64_t kValueBase = 1'000'000;
  // update_done[i] = wall time when update with value i completed (0 = not
  // yet).  Value 0 is the preloaded initial value.
  std::vector<std::atomic<std::int64_t>> update_done(kWrites + 1);
  std::vector<std::atomic<std::int64_t>> update_invoked(kWrites + 1);
  for (auto& t : update_done) t = 0;
  for (auto& t : update_invoked) t = 0;
  update_done[0] = 1;  // initial value "completed" at the beginning

  std::atomic<bool> writer_finished{false};
  std::thread writer([&] {
    KvClient kv(d.make_client());
    for (std::uint64_t v = 1; v <= kWrites; ++v) {
      update_invoked[v] = util::now_us();
      // Offset distinguishes written values from the preloaded one.
      ASSERT_EQ(kv.update(kKey, kValueBase + v), kvstore::kKvOk);
      update_done[v] = util::now_us();
    }
    writer_finished = true;
  });

  constexpr int kReaders = 3;
  std::vector<std::vector<ReadRecord>> histories(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      KvClient kv(d.make_client());
      while (!writer_finished.load(std::memory_order_relaxed)) {
        ReadRecord rec;
        rec.invoked_us = util::now_us();
        auto v = kv.read(kKey);
        rec.responded_us = util::now_us();
        ASSERT_TRUE(v.has_value());
        // Preloaded value (the key itself) maps to write index 0.
        rec.value = *v == kKey ? 0 : *v - kValueBase;
        histories[static_cast<std::size_t>(r)].push_back(rec);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  for (const auto& history : histories) {
    ASSERT_FALSE(history.empty());
    std::uint64_t prev = 0;
    for (const auto& rec : history) {
      // (1) only written values.
      ASSERT_LE(rec.value, kWrites);
      // (2) no stale reads: every update completed before this read was
      // invoked must be visible.
      for (std::uint64_t v = kWrites; v > rec.value; --v) {
        std::int64_t done = update_done[v].load();
        ASSERT_FALSE(done != 0 && done < rec.invoked_us)
            << "read returned " << rec.value << " but update " << v
            << " completed " << rec.invoked_us - done << "us earlier";
      }
      // (3) no futuristic reads: the returned value's update must have been
      // invoked before the read responded.
      if (rec.value > 0) {
        ASSERT_LE(update_invoked[rec.value].load(), rec.responded_us);
      }
      // (4) per-session monotonicity.
      ASSERT_GE(rec.value, prev) << "read values went backwards";
      prev = rec.value;
    }
  }
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
}

INSTANTIATE_TEST_SUITE_P(
    Mpl, PsmrLinearizability,
    ::testing::Values(LinParam{1, "default"}, LinParam{4, "default"},
                      LinParam{8, "default"},
                      // 17 rings (16 worker groups + shared): the
                      // many-shard merge rotation must stay linearizable.
                      LinParam{16, "default"},
                      LinParam{4, "tiny-timeout"}, LinParam{4, "tiny-cap"},
                      LinParam{4, "default", /*run_length=*/8},
                      LinParam{4, "default", /*run_length=*/1},
                      // One coalescing-off pass on the tuned ring; the
                      // response_batching_test convergence suite covers
                      // on/off on both replica modes.
                      LinParam{4, "default", /*run_length=*/16,
                               /*coalesce_responses=*/false}),
    [](const auto& info) {
      std::string name =
          "mpl" + std::to_string(info.param.mpl) + "_" + info.param.profile +
          "_rl" + std::to_string(info.param.run_length);
      if (!info.param.coalesce_responses) name += "_nocoalesce";
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace psmr::smr
