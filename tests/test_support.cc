#include "test_support.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>

#include "kvstore/kv_service.h"
#include "util/alloc_hook.h"

// Every test binary links test_support, so every test can meter heap
// traffic through util::allochook (buffer_pool_test asserts the pooled hot
// path stays allocation-free once warm).  Inert under ASan/TSan.
PSMR_DEFINE_ALLOC_HOOK();

namespace psmr::test_support {

std::uint64_t test_seed(std::uint64_t base) {
  if (const char* env = std::getenv("PSMR_TEST_SEED")) {
    char* end = nullptr;
    std::uint64_t v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return v;
  }
  return base;
}

std::uint64_t logged_seed(std::uint64_t base) {
  std::uint64_t seed = test_seed(base);
  ::testing::Test::RecordProperty("psmr_seed", std::to_string(seed));
  std::fprintf(stderr, "[ seed     ] PSMR_TEST_SEED=%llu\n",
               static_cast<unsigned long long>(seed));
  return seed;
}

paxos::RingConfig fast_ring(std::size_t num_acceptors) {
  paxos::RingConfig ring;
  ring.num_acceptors = num_acceptors;
  ring.batch_timeout = std::chrono::microseconds(500);
  ring.skip_interval = std::chrono::microseconds(1500);
  ring.rto = std::chrono::microseconds(10000);
  return ring;
}

paxos::RingConfig fault_ring(std::size_t num_acceptors) {
  paxos::RingConfig ring;
  ring.num_acceptors = num_acceptors;
  ring.batch_timeout = std::chrono::microseconds(300);
  ring.rto = std::chrono::microseconds(3000);
  return ring;
}

paxos::RingConfig batching_ring(std::size_t num_acceptors) {
  paxos::RingConfig ring = fast_ring(num_acceptors);
  ring.adaptive_batching = true;
  ring.batch_timeout = std::chrono::microseconds(300);
  ring.min_batch_timeout = std::chrono::microseconds(100);
  ring.max_batch_timeout = std::chrono::microseconds(8000);
  return ring;
}

std::vector<NamedRing> aggressive_batching_rings() {
  // Tiny timeout, huge caps: nearly every command decides alone, maximal
  // consensus-instance pressure.
  paxos::RingConfig tiny_timeout = fast_ring();
  tiny_timeout.batch_timeout = std::chrono::microseconds(50);
  tiny_timeout.max_batch_bytes = 1 << 20;
  tiny_timeout.max_batch_commands = 100000;

  // Long timeout, tiny cap: sealing is purely cap-driven and commands queue
  // behind full batches.
  paxos::RingConfig tiny_cap = fast_ring();
  tiny_cap.batch_timeout = std::chrono::microseconds(5000);
  tiny_cap.max_batch_commands = 2;

  return {{"tiny-timeout", tiny_timeout}, {"tiny-cap", tiny_cap}};
}

smr::DeploymentConfig kv_config(smr::Mode mode, std::size_t mpl,
                                std::uint64_t initial_keys,
                                std::size_t replicas) {
  return kv_config_with_ring(mode, mpl, fast_ring(), initial_keys, replicas);
}

smr::DeploymentConfig kv_config_with_ring(smr::Mode mode, std::size_t mpl,
                                          const paxos::RingConfig& ring,
                                          std::uint64_t initial_keys,
                                          std::size_t replicas) {
  smr::DeploymentConfig cfg;
  cfg.mode = mode;
  cfg.mpl = mpl;
  cfg.replicas = replicas;
  cfg.ring = ring;
  cfg.service_factory = [initial_keys] {
    return std::make_unique<kvstore::KvService>(initial_keys);
  };
  cfg.shared_service_factory =
      [initial_keys]() -> std::shared_ptr<smr::Service> {
    return std::make_shared<kvstore::ConcurrentKvService>(initial_keys);
  };
  cfg.cg_factory = [](std::size_t k) { return kvstore::kv_keyed_cg(k); };
  return cfg;
}

smr::DeploymentConfig sharded_kv_config(const smr::ShardSpec& spec,
                                        std::uint64_t initial_keys) {
  smr::DeploymentConfig cfg = smr::shard_deployment_config(spec);
  cfg.ring = fast_ring();
  // fast_ring() is tuned for ~9 rings; a many-shard deployment multiplies
  // the idle-skip rate by its ring count, so stretch the interval to keep
  // the aggregate skip load (and this small host) roughly constant.
  if (spec.num_groups() > 8) {
    cfg.ring.skip_interval *= static_cast<int>(spec.num_groups() / 8);
  }
  cfg.service_factory = [initial_keys] {
    return std::make_unique<kvstore::KvService>(initial_keys);
  };
  auto map = spec.map();
  cfg.cg_factory = [map](std::size_t k) {
    // The deployment always asks for k == num shards (mpl); a mismatch
    // means the spec and the deployment drifted apart.
    if (k != map.num_shards()) {
      throw std::invalid_argument("sharded_kv_config: mpl != shard count");
    }
    return kvstore::kv_sharded_cg(map);
  };
  return cfg;
}

smr::DeploymentConfig checkpointed_kv_config(smr::Mode mode, std::size_t mpl,
                                             std::uint64_t interval_commands,
                                             std::uint64_t initial_keys,
                                             std::size_t replicas) {
  smr::DeploymentConfig cfg = kv_config(mode, mpl, initial_keys, replicas);
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.interval_commands = interval_commands;
  return cfg;
}

void wait_executed(smr::Deployment& d, std::uint64_t n,
                   std::chrono::seconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (std::size_t i = 0; i < d.num_services(); ++i) {
      if (d.executed(i) < n) all = false;
    }
    if (all) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void wait_replica_executed(smr::Deployment& d, std::size_t i, std::uint64_t n,
                           std::chrono::seconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (d.executed(i) < n && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void wait_checkpoints(smr::Deployment& d, std::uint64_t n,
                      std::chrono::seconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (std::size_t i = 0; i < d.num_services(); ++i) {
      if (d.psmr_replica(i) != nullptr && d.checkpoints_taken(i) < n) {
        all = false;
      }
    }
    if (all) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool wait_converged(smr::Deployment& d, std::size_t i, std::size_t ref,
                    std::chrono::seconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (d.executed(i) == d.executed(ref) && d.executed(i) > 0 &&
        d.state_digest(i) == d.state_digest(ref)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

void run_threads(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] {
      try {
        fn(i);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "driver thread " << i << " threw: " << e.what();
      } catch (...) {
        ADD_FAILURE() << "driver thread " << i << " threw a non-std exception";
      }
    });
  }
  for (auto& t : threads) t.join();
}

std::uint64_t run_disjoint_kv_workload(smr::Deployment& d, int clients,
                                       int ops) {
  run_threads(clients, [&](int t) {
    auto proxy = d.make_client();
    constexpr int kWindow = 32;
    int submitted = 0;
    int completed = 0;
    auto submit_one = [&](int i) {
      std::uint64_t own = static_cast<std::uint64_t>(t) * 100 +
                          static_cast<std::uint64_t>(i % 100);
      if (i % 4 == 3) {
        EXPECT_TRUE(proxy
                        ->submit(kvstore::kKvUpdate,
                                 kvstore::encode_key_value(
                                     own, static_cast<std::uint64_t>(i) * 1000 +
                                              static_cast<std::uint64_t>(t)))
                        .has_value());
      } else {
        std::uint64_t any = static_cast<std::uint64_t>((i * 37 + t * 11) %
                                                       (clients * 100));
        EXPECT_TRUE(proxy->submit(kvstore::kKvRead, kvstore::encode_key(any))
                        .has_value());
      }
    };
    while (completed < ops) {
      while (submitted < ops && proxy->outstanding() < kWindow) {
        submit_one(submitted++);
      }
      if (proxy->poll(std::chrono::milliseconds(200))) ++completed;
    }
  });
  // Every client saw every response, but only from the fastest replica;
  // wait for the laggard before comparing digests.
  wait_executed(d, static_cast<std::uint64_t>(clients) *
                       static_cast<std::uint64_t>(ops));
  std::uint64_t digest = d.state_digest(0);
  for (std::size_t i = 1; i < d.num_services(); ++i) {
    EXPECT_EQ(d.state_digest(i), digest) << "replica " << i << " diverged";
  }
  return digest;
}

}  // namespace psmr::test_support
