// Batching-focused unit suite: seal triggers (byte cap, command cap,
// timeout), the adaptive-timeout controller's grow/shrink behavior and
// bounds, SUBMIT_MANY wire coalescing, and the Bus submit coalescer.
//
// Everything here asserts on CoordinatorStats / SubmitCoalescer::Stats
// rather than throughput, so the tests stay meaningful on a loaded host.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "multicast/amcast.h"
#include "paxos/ring.h"
#include "test_support.h"
#include "transport/network.h"
#include "util/sync.h"

namespace psmr::paxos {
namespace {

using transport::Network;

util::Buffer cmd(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

std::uint64_t cmd_id(std::span<const std::uint8_t> b) {
  util::Reader r(b);
  return r.u64();
}

// Drains exactly `want` commands from the learner, checking contiguous ids.
void drain_ordered(LearnerLog& log, std::uint64_t want) {
  std::uint64_t expect = 0;
  while (expect < want) {
    auto d = log.next_for(std::chrono::seconds(5));
    ASSERT_TRUE(d.has_value()) << "delivery stalled at " << expect;
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      EXPECT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }
}

RingConfig quiet_ring() {
  // Long timeout so only the explicit caps under test can seal.
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::milliseconds(50);
  return cfg;
}

TEST(BatchSeal, ByteCapSealsExactly) {
  Network net;
  RingConfig cfg = quiet_ring();
  // Long enough that a descheduled submitter cannot sneak in a timeout
  // seal mid-flood; every batch seals on the byte cap (64 = 8 * 8 exactly,
  // so there is no trailing partial to wait out either).
  cfg.batch_timeout = std::chrono::milliseconds(500);
  cfg.max_batch_bytes = 64;  // 8 commands of 8 bytes
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 64; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 64);

  auto s = ring.stats();
  EXPECT_EQ(s.sealed_on_bytes, 8u);
  EXPECT_EQ(s.sealed_on_count, 0u);
  EXPECT_EQ(s.sealed_on_timeout, 0u);
  EXPECT_EQ(s.sealed_batches, 8u);
  EXPECT_EQ(s.sealed_commands, 64u);
  EXPECT_EQ(s.sealed_bytes, 64u * 8u);
  EXPECT_DOUBLE_EQ(s.mean_commands_per_batch(), 8.0);
  EXPECT_DOUBLE_EQ(s.mean_bytes_per_batch(), 64.0);
}

TEST(BatchSeal, CommandCapSealsExactly) {
  Network net;
  RingConfig cfg = quiet_ring();
  cfg.batch_timeout = std::chrono::milliseconds(500);
  cfg.max_batch_commands = 5;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 40; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 40);

  auto s = ring.stats();
  EXPECT_EQ(s.sealed_on_count, 8u);
  EXPECT_EQ(s.sealed_on_bytes, 0u);
  EXPECT_EQ(s.sealed_on_timeout, 0u);
  EXPECT_DOUBLE_EQ(s.mean_commands_per_batch(), 5.0);
}

TEST(BatchSeal, TimeoutSealsPartialBatch) {
  Network net;
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(300);
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 3; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 3);

  auto s = ring.stats();
  // >= rather than ==: a descheduled submitter can split the trio into two
  // timeout-sealed batches on a loaded host.
  EXPECT_GE(s.sealed_on_timeout, 1u);
  EXPECT_EQ(s.sealed_on_bytes, 0u);
  EXPECT_EQ(s.sealed_on_count, 0u);
  EXPECT_EQ(s.sealed_commands, 3u);
}

TEST(BatchSeal, FixedTimeoutReportedInStats) {
  Network net;
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(700);
  Ring ring(net, 0, cfg);
  EXPECT_EQ(ring.stats().batch_timeout_us, 700u);
}

TEST(AdaptiveBatching, TimeoutGrowsOnSparseTraffic) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(200);
  cfg.min_batch_timeout = std::chrono::microseconds(100);
  cfg.max_batch_timeout = std::chrono::microseconds(1600);
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  // A trickle: each command sits alone until the timeout seals it, so every
  // seal is a sparse timeout seal and the timeout doubles 200 -> 1600.
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ring.submit(me, cmd(i));
    // Wait for delivery so the next command definitely opens a new batch.
    while (delivered <= i) {
      auto d = learner->next_for(std::chrono::seconds(5));
      ASSERT_TRUE(d.has_value());
      if (!d->batch.skip) delivered += d->batch.commands.size();
    }
  }

  auto s = ring.stats();
  EXPECT_GE(s.timeout_grows, 3u);
  EXPECT_EQ(s.batch_timeout_us, 1600u);  // clamped at max
  EXPECT_EQ(s.timeout_shrinks, 0u);
}

TEST(AdaptiveBatching, TimeoutShrinksUnderLoad) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(1600);
  cfg.min_batch_timeout = std::chrono::microseconds(100);
  cfg.max_batch_timeout = std::chrono::microseconds(3200);
  cfg.max_batch_commands = 8;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  // A flood: batches seal on the command cap, so every seal shrinks the
  // timeout 1600 -> 100 (clamped at min after 4 halvings).  Bounds are >=
  // / <= because a descheduled submitter can sneak in a timeout seal.
  for (std::uint64_t i = 0; i < 64; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 64);

  auto s = ring.stats();
  EXPECT_GE(s.timeout_shrinks, 3u);
  EXPECT_GE(s.batch_timeout_us, 100u);
  EXPECT_LE(s.batch_timeout_us, 400u);
  EXPECT_GE(s.sealed_on_count, 6u);
}

TEST(AdaptiveBatching, TimeoutStaysWithinBounds) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(400);
  cfg.min_batch_timeout = std::chrono::microseconds(200);
  cfg.max_batch_timeout = std::chrono::microseconds(800);
  cfg.max_batch_commands = 4;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  // Alternate floods (shrink pressure) and trickles (grow pressure),
  // sampling the bound invariant throughout.
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  auto drain_to = [&](std::uint64_t n) {
    while (delivered < n) {
      auto d = learner->next_for(std::chrono::seconds(5));
      ASSERT_TRUE(d.has_value());
      if (!d->batch.skip) delivered += d->batch.commands.size();
    }
  };
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) ring.submit(me, cmd(sent++));
    drain_to(sent);
    auto s = ring.stats();
    EXPECT_GE(s.batch_timeout_us, 200u);
    EXPECT_LE(s.batch_timeout_us, 800u);
    ring.submit(me, cmd(sent++));
    drain_to(sent);
    s = ring.stats();
    EXPECT_GE(s.batch_timeout_us, 200u);
    EXPECT_LE(s.batch_timeout_us, 800u);
  }
}

TEST(AdaptiveBatching, StartingTimeoutClampedIntoBounds) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(50);  // below min
  cfg.min_batch_timeout = std::chrono::microseconds(300);
  cfg.max_batch_timeout = std::chrono::microseconds(900);
  Ring ring(net, 0, cfg);
  EXPECT_EQ(ring.stats().batch_timeout_us, 300u);
}

TEST(SubmitMany, BurstArrivesInOneMessage) {
  Network net;
  Ring ring(net, 0, quiet_ring());
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  std::vector<util::Payload> burst;
  for (std::uint64_t i = 0; i < 10; ++i) burst.push_back(cmd(i));
  ASSERT_TRUE(ring.submit_many(me, std::move(burst)));
  drain_ordered(*learner, 10);

  auto s = ring.stats();
  EXPECT_EQ(s.submit_msgs, 1u);
  EXPECT_EQ(s.submit_commands, 10u);
}

TEST(SubmitMany, SingleCommandFallsBackToPlainSubmit) {
  Network net;
  Ring ring(net, 0, quiet_ring());
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  std::vector<util::Payload> one;
  one.push_back(cmd(0));
  ASSERT_TRUE(ring.submit_many(me, std::move(one)));
  EXPECT_TRUE(ring.submit_many(me, {}));  // empty burst is a no-op
  drain_ordered(*learner, 1);

  auto s = ring.stats();
  EXPECT_EQ(s.submit_msgs, 1u);
  EXPECT_EQ(s.submit_commands, 1u);
}

TEST(SubmitMany, BurstRespectsBatchCapsMidMessage) {
  Network net;
  RingConfig cfg = quiet_ring();
  cfg.max_batch_commands = 4;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  std::vector<util::Payload> burst;
  for (std::uint64_t i = 0; i < 10; ++i) burst.push_back(cmd(i));
  ASSERT_TRUE(ring.submit_many(me, std::move(burst)));
  drain_ordered(*learner, 10);

  auto s = ring.stats();
  // 10 commands through a cap of 4: two full batches sealed on the cap,
  // the trailing 2 sealed by the (long) timeout.
  EXPECT_EQ(s.sealed_on_count, 2u);
  EXPECT_EQ(s.sealed_commands, 10u);
}

}  // namespace
}  // namespace psmr::paxos

namespace psmr::multicast {
namespace {

using transport::Network;

util::Buffer msg(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

TEST(Coalescer, SingleThreadFlushesEverySubmit) {
  Network net;
  BusConfig cfg;
  cfg.num_groups = 1;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), msg(i)));
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    auto d = sub->next();
    ASSERT_TRUE(d.has_value());
  }

  // With no contention every submit flushes itself: nothing piggybacks.
  auto cs = bus.coalesce_stats();
  EXPECT_EQ(cs.flushes, 20u);
  EXPECT_EQ(cs.flushed_commands, 20u);
  EXPECT_EQ(cs.piggybacked, 0u);
}

TEST(Coalescer, DisabledBusSubmitsDirectly) {
  Network net;
  BusConfig cfg;
  cfg.num_groups = 1;
  cfg.coalesce_submits = false;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), msg(i)));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto d = sub->next();
    ASSERT_TRUE(d.has_value());
  }
  auto cs = bus.coalesce_stats();
  EXPECT_EQ(cs.flushes, 0u);
  EXPECT_EQ(cs.flushed_commands, 0u);
}

TEST(Coalescer, ConcurrentSharedRingSubmitsPiggyback) {
  // Deterministic rendezvous instead of timing: thread A's submit to the
  // shared g_all ring becomes the active flusher; the flush-pause hook
  // (which runs while A holds flushing_ but not the lock) wakes the main
  // thread, whose submit must take the piggyback path; only then is A
  // released to drain the piggybacked command in a second flush wave.
  // This pins the exact interleaving the flat-combining funnel exists for,
  // on any host, in one round.
  Network net;
  BusConfig cfg;
  cfg.num_groups = 2;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  cfg.ring.skip_interval = std::chrono::microseconds(500);
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto* coalescer = bus.shared_coalescer();
  ASSERT_NE(coalescer, nullptr);

  util::Signal flusher_paused;
  util::Signal piggyback_done;
  std::atomic<int> waves{0};
  coalescer->set_flush_pause([&] {
    // Pause only the first wave; the drain wave for the piggybacked
    // command must run through.
    if (waves.fetch_add(1) == 0) {
      flusher_paused.notify();
      piggyback_done.wait();
    }
  });

  auto [a_node, a_box] = net.register_node();
  std::thread flusher([&] {
    EXPECT_TRUE(bus.multicast(a_node, GroupSet::all(2), msg(1)));
  });
  // Bounded wait so a broken flusher fails the test instead of deadlocking
  // it against the suite timeout.
  if (!flusher_paused.wait_for(std::chrono::seconds(5))) {
    piggyback_done.notify();  // unblock the hook if it fires late
    flusher.join();
    FAIL() << "flusher never reached the flush-pause rendezvous";
  }
  // The flusher is parked mid-flush: this submit piggybacks by construction.
  auto [b_node, b_box] = net.register_node();
  ASSERT_TRUE(bus.multicast(b_node, GroupSet::all(2), msg(2)));
  EXPECT_EQ(coalescer->stats().piggybacked, 1u);
  piggyback_done.notify();
  flusher.join();
  coalescer->set_flush_pause({});

  // Both commands reach every subscriber of the shared ring.
  for (int i = 0; i < 2; ++i) {
    auto d = sub->next();
    ASSERT_TRUE(d.has_value());
  }

  auto cs = bus.coalesce_stats();
  EXPECT_EQ(cs.piggybacked, 1u);
  EXPECT_EQ(cs.flushed_commands, 2u);
  // Both wire messages came from the flusher thread — the piggybacked
  // submit returned without ever touching the ring.
  EXPECT_EQ(cs.flushes, 2u);
  auto shared = bus.shared_ring_stats();
  EXPECT_EQ(shared.submit_commands, 2u);
}

}  // namespace
}  // namespace psmr::multicast
