// Batching-focused unit suite: seal triggers (byte cap, command cap,
// timeout), the adaptive-timeout controller's grow/shrink behavior and
// bounds, SUBMIT_MANY wire coalescing, and the Bus submit coalescer.
//
// Everything here asserts on CoordinatorStats / SubmitCoalescer::Stats
// rather than throughput, so the tests stay meaningful on a loaded host.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "multicast/amcast.h"
#include "paxos/ring.h"
#include "test_support.h"
#include "transport/network.h"

namespace psmr::paxos {
namespace {

using transport::Network;

util::Buffer cmd(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

std::uint64_t cmd_id(const util::Buffer& b) {
  util::Reader r(b);
  return r.u64();
}

// Drains exactly `want` commands from the learner, checking contiguous ids.
void drain_ordered(LearnerLog& log, std::uint64_t want) {
  std::uint64_t expect = 0;
  while (expect < want) {
    auto d = log.next_for(std::chrono::seconds(5));
    ASSERT_TRUE(d.has_value()) << "delivery stalled at " << expect;
    if (d->batch.skip) continue;
    for (const auto& c : d->batch.commands) {
      EXPECT_EQ(cmd_id(c), expect);
      ++expect;
    }
  }
}

RingConfig quiet_ring() {
  // Long timeout so only the explicit caps under test can seal.
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::milliseconds(50);
  return cfg;
}

TEST(BatchSeal, ByteCapSealsExactly) {
  Network net;
  RingConfig cfg = quiet_ring();
  // Long enough that a descheduled submitter cannot sneak in a timeout
  // seal mid-flood; every batch seals on the byte cap (64 = 8 * 8 exactly,
  // so there is no trailing partial to wait out either).
  cfg.batch_timeout = std::chrono::milliseconds(500);
  cfg.max_batch_bytes = 64;  // 8 commands of 8 bytes
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 64; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 64);

  auto s = ring.stats();
  EXPECT_EQ(s.sealed_on_bytes, 8u);
  EXPECT_EQ(s.sealed_on_count, 0u);
  EXPECT_EQ(s.sealed_on_timeout, 0u);
  EXPECT_EQ(s.sealed_batches, 8u);
  EXPECT_EQ(s.sealed_commands, 64u);
  EXPECT_EQ(s.sealed_bytes, 64u * 8u);
  EXPECT_DOUBLE_EQ(s.mean_commands_per_batch(), 8.0);
  EXPECT_DOUBLE_EQ(s.mean_bytes_per_batch(), 64.0);
}

TEST(BatchSeal, CommandCapSealsExactly) {
  Network net;
  RingConfig cfg = quiet_ring();
  cfg.batch_timeout = std::chrono::milliseconds(500);
  cfg.max_batch_commands = 5;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 40; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 40);

  auto s = ring.stats();
  EXPECT_EQ(s.sealed_on_count, 8u);
  EXPECT_EQ(s.sealed_on_bytes, 0u);
  EXPECT_EQ(s.sealed_on_timeout, 0u);
  EXPECT_DOUBLE_EQ(s.mean_commands_per_batch(), 5.0);
}

TEST(BatchSeal, TimeoutSealsPartialBatch) {
  Network net;
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(300);
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 3; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 3);

  auto s = ring.stats();
  // >= rather than ==: a descheduled submitter can split the trio into two
  // timeout-sealed batches on a loaded host.
  EXPECT_GE(s.sealed_on_timeout, 1u);
  EXPECT_EQ(s.sealed_on_bytes, 0u);
  EXPECT_EQ(s.sealed_on_count, 0u);
  EXPECT_EQ(s.sealed_commands, 3u);
}

TEST(BatchSeal, FixedTimeoutReportedInStats) {
  Network net;
  RingConfig cfg;
  cfg.batch_timeout = std::chrono::microseconds(700);
  Ring ring(net, 0, cfg);
  EXPECT_EQ(ring.stats().batch_timeout_us, 700u);
}

TEST(AdaptiveBatching, TimeoutGrowsOnSparseTraffic) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(200);
  cfg.min_batch_timeout = std::chrono::microseconds(100);
  cfg.max_batch_timeout = std::chrono::microseconds(1600);
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  // A trickle: each command sits alone until the timeout seals it, so every
  // seal is a sparse timeout seal and the timeout doubles 200 -> 1600.
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ring.submit(me, cmd(i));
    // Wait for delivery so the next command definitely opens a new batch.
    while (delivered <= i) {
      auto d = learner->next_for(std::chrono::seconds(5));
      ASSERT_TRUE(d.has_value());
      if (!d->batch.skip) delivered += d->batch.commands.size();
    }
  }

  auto s = ring.stats();
  EXPECT_GE(s.timeout_grows, 3u);
  EXPECT_EQ(s.batch_timeout_us, 1600u);  // clamped at max
  EXPECT_EQ(s.timeout_shrinks, 0u);
}

TEST(AdaptiveBatching, TimeoutShrinksUnderLoad) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(1600);
  cfg.min_batch_timeout = std::chrono::microseconds(100);
  cfg.max_batch_timeout = std::chrono::microseconds(3200);
  cfg.max_batch_commands = 8;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  // A flood: batches seal on the command cap, so every seal shrinks the
  // timeout 1600 -> 100 (clamped at min after 4 halvings).  Bounds are >=
  // / <= because a descheduled submitter can sneak in a timeout seal.
  for (std::uint64_t i = 0; i < 64; ++i) ring.submit(me, cmd(i));
  drain_ordered(*learner, 64);

  auto s = ring.stats();
  EXPECT_GE(s.timeout_shrinks, 3u);
  EXPECT_GE(s.batch_timeout_us, 100u);
  EXPECT_LE(s.batch_timeout_us, 400u);
  EXPECT_GE(s.sealed_on_count, 6u);
}

TEST(AdaptiveBatching, TimeoutStaysWithinBounds) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(400);
  cfg.min_batch_timeout = std::chrono::microseconds(200);
  cfg.max_batch_timeout = std::chrono::microseconds(800);
  cfg.max_batch_commands = 4;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  // Alternate floods (shrink pressure) and trickles (grow pressure),
  // sampling the bound invariant throughout.
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  auto drain_to = [&](std::uint64_t n) {
    while (delivered < n) {
      auto d = learner->next_for(std::chrono::seconds(5));
      ASSERT_TRUE(d.has_value());
      if (!d->batch.skip) delivered += d->batch.commands.size();
    }
  };
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) ring.submit(me, cmd(sent++));
    drain_to(sent);
    auto s = ring.stats();
    EXPECT_GE(s.batch_timeout_us, 200u);
    EXPECT_LE(s.batch_timeout_us, 800u);
    ring.submit(me, cmd(sent++));
    drain_to(sent);
    s = ring.stats();
    EXPECT_GE(s.batch_timeout_us, 200u);
    EXPECT_LE(s.batch_timeout_us, 800u);
  }
}

TEST(AdaptiveBatching, StartingTimeoutClampedIntoBounds) {
  Network net;
  RingConfig cfg;
  cfg.adaptive_batching = true;
  cfg.batch_timeout = std::chrono::microseconds(50);  // below min
  cfg.min_batch_timeout = std::chrono::microseconds(300);
  cfg.max_batch_timeout = std::chrono::microseconds(900);
  Ring ring(net, 0, cfg);
  EXPECT_EQ(ring.stats().batch_timeout_us, 300u);
}

TEST(SubmitMany, BurstArrivesInOneMessage) {
  Network net;
  Ring ring(net, 0, quiet_ring());
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  std::vector<util::Buffer> burst;
  for (std::uint64_t i = 0; i < 10; ++i) burst.push_back(cmd(i));
  ASSERT_TRUE(ring.submit_many(me, std::move(burst)));
  drain_ordered(*learner, 10);

  auto s = ring.stats();
  EXPECT_EQ(s.submit_msgs, 1u);
  EXPECT_EQ(s.submit_commands, 10u);
}

TEST(SubmitMany, SingleCommandFallsBackToPlainSubmit) {
  Network net;
  Ring ring(net, 0, quiet_ring());
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  std::vector<util::Buffer> one;
  one.push_back(cmd(0));
  ASSERT_TRUE(ring.submit_many(me, std::move(one)));
  EXPECT_TRUE(ring.submit_many(me, {}));  // empty burst is a no-op
  drain_ordered(*learner, 1);

  auto s = ring.stats();
  EXPECT_EQ(s.submit_msgs, 1u);
  EXPECT_EQ(s.submit_commands, 1u);
}

TEST(SubmitMany, BurstRespectsBatchCapsMidMessage) {
  Network net;
  RingConfig cfg = quiet_ring();
  cfg.max_batch_commands = 4;
  Ring ring(net, 0, cfg);
  auto learner = ring.subscribe();
  ring.start();
  auto [me, mybox] = net.register_node();

  std::vector<util::Buffer> burst;
  for (std::uint64_t i = 0; i < 10; ++i) burst.push_back(cmd(i));
  ASSERT_TRUE(ring.submit_many(me, std::move(burst)));
  drain_ordered(*learner, 10);

  auto s = ring.stats();
  // 10 commands through a cap of 4: two full batches sealed on the cap,
  // the trailing 2 sealed by the (long) timeout.
  EXPECT_EQ(s.sealed_on_count, 2u);
  EXPECT_EQ(s.sealed_commands, 10u);
}

}  // namespace
}  // namespace psmr::paxos

namespace psmr::multicast {
namespace {

using transport::Network;

util::Buffer msg(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

TEST(Coalescer, SingleThreadFlushesEverySubmit) {
  Network net;
  BusConfig cfg;
  cfg.num_groups = 1;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), msg(i)));
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    auto d = sub->next();
    ASSERT_TRUE(d.has_value());
  }

  // With no contention every submit flushes itself: nothing piggybacks.
  auto cs = bus.coalesce_stats();
  EXPECT_EQ(cs.flushes, 20u);
  EXPECT_EQ(cs.flushed_commands, 20u);
  EXPECT_EQ(cs.piggybacked, 0u);
}

TEST(Coalescer, DisabledBusSubmitsDirectly) {
  Network net;
  BusConfig cfg;
  cfg.num_groups = 1;
  cfg.coalesce_submits = false;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), msg(i)));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto d = sub->next();
    ASSERT_TRUE(d.has_value());
  }
  auto cs = bus.coalesce_stats();
  EXPECT_EQ(cs.flushes, 0u);
  EXPECT_EQ(cs.flushed_commands, 0u);
}

TEST(Coalescer, ConcurrentSharedRingSubmitsPiggyback) {
  // Hammer the shared g_all ring from several threads until the coalescer
  // observably merges concurrent submits into one wire message.  Each round
  // is checked for full delivery, so the loop also re-verifies correctness;
  // the piggyback race is overwhelmingly likely per round and the retry cap
  // makes a flaky miss effectively impossible.
  Network net;
  BusConfig cfg;
  cfg.num_groups = 2;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  cfg.ring.skip_interval = std::chrono::microseconds(500);
  Bus bus(net, cfg);
  auto sub = bus.subscribe(0);
  bus.start();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::uint64_t total_delivered = 0;
  for (int round = 0; round < 20 && bus.coalesce_stats().piggybacked == 0;
       ++round) {
    test_support::run_threads(kThreads, [&](int t) {
      auto [node, box] = net.register_node();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(bus.multicast(
            node, GroupSet::all(2),
            msg(static_cast<std::uint64_t>(t) * kPerThread + i)));
      }
    });
    total_delivered += kThreads * kPerThread;
    std::uint64_t got = 0;
    while (got < kThreads * kPerThread) {
      auto d = sub->next();
      ASSERT_TRUE(d.has_value());
      ++got;
    }
  }

  auto cs = bus.coalesce_stats();
  EXPECT_GT(cs.piggybacked, 0u);
  EXPECT_EQ(cs.flushed_commands, total_delivered);
  // Piggybacking means fewer wire messages than commands.
  EXPECT_LT(cs.flushes, cs.flushed_commands);
  // The shared ring's coordinator saw multi-command submit messages.
  auto shared = bus.shared_ring_stats();
  EXPECT_EQ(shared.submit_commands, total_delivered);
  EXPECT_LT(shared.submit_msgs, shared.submit_commands);
}

}  // namespace
}  // namespace psmr::multicast
