// NetFS over the replicated deployments: the paper's second service
// (Sections V-B, VI-C, VII-H) running end-to-end through atomic multicast,
// path-partitioned delivery, and the compression pipeline.
#include <gtest/gtest.h>

#include <thread>

#include "netfs/fs_client.h"
#include "smr/runtime.h"
#include "util/rng.h"

namespace psmr::netfs {
namespace {

smr::DeploymentConfig fs_config(smr::Mode mode, std::size_t mpl) {
  smr::DeploymentConfig cfg;
  cfg.mode = mode;
  cfg.mpl = mpl;
  cfg.replicas = 2;
  cfg.ring.batch_timeout = std::chrono::microseconds(500);
  cfg.ring.skip_interval = std::chrono::microseconds(1500);
  cfg.ring.rto = std::chrono::microseconds(10000);
  cfg.service_factory = [] {
    return smr::make_batched(std::make_unique<FsService>());
  };
  cfg.cg_factory = [](std::size_t k) { return fs_cg(k); };
  return cfg;
}

void wait_executed(smr::Deployment& d, std::uint64_t n) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (std::size_t i = 0; i < d.num_services(); ++i) {
      if (d.executed(i) < n) all = false;
    }
    if (all) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

class FsModes : public ::testing::TestWithParam<smr::Mode> {};

TEST_P(FsModes, FullCommandSurface) {
  smr::Deployment d(fs_config(GetParam(), 4));
  d.start();
  FsClient fs(d.make_client());

  EXPECT_EQ(fs.mkdir("/home"), 0);
  EXPECT_EQ(fs.mkdir("/home/user"), 0);
  EXPECT_EQ(fs.create("/home/user/notes.txt"), 0);
  EXPECT_EQ(fs.create("/home/user/notes.txt"), -EEXIST);

  util::Buffer content;
  for (int i = 0; i < 1024; ++i) {
    content.push_back(static_cast<std::uint8_t>('a' + i % 26));
  }
  EXPECT_EQ(fs.write("/home/user/notes.txt", 0, content), 0);
  util::Buffer readback;
  EXPECT_EQ(fs.read("/home/user/notes.txt", 0, 1024, readback), 0);
  EXPECT_EQ(readback, content);

  std::uint64_t fh = 0;
  EXPECT_EQ(fs.open("/home/user/notes.txt", fh), 0);
  EXPECT_EQ(fs.release(fh), 0);

  FsStat st;
  EXPECT_EQ(fs.lstat("/home/user/notes.txt", st), 0);
  EXPECT_EQ(st.size, 1024u);
  EXPECT_EQ(fs.utimens("/home/user/notes.txt", 1, 2), 0);
  EXPECT_EQ(fs.access("/home/user/notes.txt", 4), 0);

  std::vector<std::string> names;
  EXPECT_EQ(fs.readdir("/home/user", names), 0);
  EXPECT_EQ(names, std::vector<std::string>{"notes.txt"});

  EXPECT_EQ(fs.unlink("/home/user/notes.txt"), 0);
  EXPECT_EQ(fs.rmdir("/home/user"), 0);
  EXPECT_EQ(fs.rmdir("/home"), 0);
  d.stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, FsModes,
                         ::testing::Values(smr::Mode::kSmr, smr::Mode::kSpsmr,
                                           smr::Mode::kPsmr),
                         [](const auto& info) {
                           switch (info.param) {
                             case smr::Mode::kSmr: return "SMR";
                             case smr::Mode::kSpsmr: return "sPSMR";
                             case smr::Mode::kPsmr: return "PSMR";
                             default: return "other";
                           }
                         });

TEST(NetFsPsmr, ConcurrentClientsOnDisjointFilesConverge) {
  smr::Deployment d(fs_config(smr::Mode::kPsmr, 8));
  d.start();
  {
    FsClient setup(d.make_client());
    ASSERT_EQ(setup.mkdir("/data"), 0);
    for (int f = 0; f < 8; ++f) {
      ASSERT_EQ(setup.create("/data/f" + std::to_string(f)), 0);
    }
  }
  constexpr int kClients = 4;
  constexpr int kOps = 60;
  std::vector<std::thread> drivers;
  for (int c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      FsClient fs(d.make_client());
      util::SplitMix64 rng(c + 1);
      util::Buffer block(1024, static_cast<std::uint8_t>(c));
      for (int i = 0; i < kOps; ++i) {
        std::string path = "/data/f" + std::to_string(rng.next_below(8));
        if (rng.chance(0.5)) {
          EXPECT_EQ(fs.write(path, rng.next_below(4096), block), 0);
        } else {
          util::Buffer out;
          EXPECT_EQ(fs.read(path, 0, 1024, out), 0);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  wait_executed(d, 9 + kClients * kOps);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

TEST(NetFsPsmr, StructuralChurnWithConcurrentData) {
  // Directory create/remove (synchronous mode) racing data ops (parallel
  // mode): exercises the barrier path with the compression pipeline.
  smr::Deployment d(fs_config(smr::Mode::kPsmr, 4));
  d.start();
  {
    FsClient setup(d.make_client());
    ASSERT_EQ(setup.create("/stable"), 0);
  }
  std::thread churn([&] {
    FsClient fs(d.make_client());
    for (int i = 0; i < 40; ++i) {
      std::string dir = "/tmp" + std::to_string(i);
      EXPECT_EQ(fs.mkdir(dir), 0);
      EXPECT_EQ(fs.create(dir + "/x"), 0);
      EXPECT_EQ(fs.unlink(dir + "/x"), 0);
      EXPECT_EQ(fs.rmdir(dir), 0);
    }
  });
  std::thread data([&] {
    FsClient fs(d.make_client());
    util::Buffer block(512, 0x7e);
    for (int i = 0; i < 80; ++i) {
      EXPECT_EQ(fs.write("/stable", (i % 8) * 512, block), 0);
      util::Buffer out;
      EXPECT_EQ(fs.read("/stable", 0, 512, out), 0);
    }
  });
  churn.join();
  data.join();
  wait_executed(d, 1 + 160 + 160);
  EXPECT_EQ(d.state_digest(0), d.state_digest(1));
  d.stop();
}

}  // namespace
}  // namespace psmr::netfs
