#include "multicast/amcast.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "multicast/group.h"
#include "transport/network.h"

namespace psmr::multicast {
namespace {

using transport::Network;

TEST(GroupSet, SingletonBasics) {
  auto g = GroupSet::single(3);
  EXPECT_TRUE(g.singleton());
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.contains(3));
  EXPECT_FALSE(g.contains(2));
  EXPECT_EQ(g.min(), 3u);
}

TEST(GroupSet, AllOfK) {
  auto g = GroupSet::all(8);
  EXPECT_EQ(g.size(), 8u);
  for (GroupId i = 0; i < 8; ++i) EXPECT_TRUE(g.contains(i));
  EXPECT_FALSE(g.contains(8));
  EXPECT_EQ(g.min(), 0u);
}

TEST(GroupSet, IntersectionAndUnion) {
  auto a = GroupSet::single(1) | GroupSet::single(4);
  auto b = GroupSet::single(4) | GroupSet::single(5);
  EXPECT_EQ((a & b), GroupSet::single(4));
  EXPECT_EQ((a | b).size(), 3u);
  EXPECT_TRUE((a & GroupSet::single(0)).empty());
}

TEST(GroupSet, ForEachAscending) {
  auto g = GroupSet::single(7) | GroupSet::single(2) | GroupSet::single(63);
  std::vector<GroupId> seen;
  g.for_each([&](GroupId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<GroupId>{2, 7, 63}));
  EXPECT_EQ(g.str(), "{2,7,63}");
}

util::Buffer msg(std::uint64_t id) {
  util::Writer w;
  w.u64(id);
  return w.take();
}

std::uint64_t msg_id(std::span<const std::uint8_t> b) {
  util::Reader r(b);
  return r.u64();
}

BusConfig fast_bus(std::size_t k) {
  BusConfig cfg;
  cfg.num_groups = k;
  cfg.ring.batch_timeout = std::chrono::microseconds(200);
  cfg.ring.skip_interval = std::chrono::microseconds(300);
  return cfg;
}

// Drains `count` messages from a deliverer (blocking with a generous cap).
std::vector<Delivery> drain(MergeDeliverer& d, std::size_t count) {
  std::vector<Delivery> out;
  while (out.size() < count) {
    auto m = d.next();
    if (!m) break;
    out.push_back(std::move(*m));
  }
  return out;
}

TEST(Bus, SingleGroupDelivery) {
  Network net;
  Bus bus(net, fast_bus(1));
  auto sub = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), msg(i)));
  }
  auto got = drain(*sub, 100);
  ASSERT_EQ(got.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(msg_id(got[i].message), i);
}

TEST(Bus, SingletonTrafficIsolatedPerGroup) {
  Network net;
  Bus bus(net, fast_bus(3));
  auto s0 = bus.subscribe(0);
  auto s1 = bus.subscribe(1);
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 50; ++i) {
    bus.multicast(me, GroupSet::single(0), msg(i));
    bus.multicast(me, GroupSet::single(1), msg(1000 + i));
  }
  auto g0 = drain(*s0, 50);
  auto g1 = drain(*s1, 50);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(msg_id(g0[i].message), i);
    EXPECT_EQ(msg_id(g1[i].message), 1000 + i);
  }
}

TEST(Bus, MultiGroupReachesAllSubscribers) {
  Network net;
  Bus bus(net, fast_bus(4));
  std::vector<std::unique_ptr<MergeDeliverer>> subs;
  for (GroupId g = 0; g < 4; ++g) subs.push_back(bus.subscribe(g));
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 30; ++i) {
    bus.multicast(me, GroupSet::all(4), msg(i));
  }
  for (auto& sub : subs) {
    auto got = drain(*sub, 30);
    ASSERT_EQ(got.size(), 30u);
    for (std::uint64_t i = 0; i < 30; ++i) {
      EXPECT_EQ(msg_id(got[i].message), i);
      // Multi-group traffic arrives on the shared stream (last index).
      EXPECT_EQ(got[i].stream, sub->num_streams() - 1);
    }
  }
}

TEST(Bus, SameGroupSubscribersSeeIdenticalMergedStream) {
  // The determinism property that replica consistency rests on: two
  // subscribers of group g (think: thread t_g on replica 0 and replica 1)
  // must deliver singleton and shared commands in the same interleaved
  // order, regardless of timing.
  Network net;
  Bus bus(net, fast_bus(2));
  auto r0_t0 = bus.subscribe(0);
  auto r1_t0 = bus.subscribe(0);
  bus.start();
  auto [me, mybox] = net.register_node();

  // Interleave singleton and all-group traffic.
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (i % 3 == 0) {
      bus.multicast(me, GroupSet::all(2), msg(i));
    } else {
      bus.multicast(me, GroupSet::single(0), msg(i));
    }
  }
  std::size_t expect = 200 - 200 / 3;  // singletons to group 0 + all-group
  expect += 200 / 3 + 1;
  // total = number of i with i%3==0 (67) + others (133) = 200
  auto a = drain(*r0_t0, 200);
  auto b = drain(*r1_t0, 200);
  ASSERT_EQ(a.size(), 200u);
  ASSERT_EQ(b.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(msg_id(a[i].message), msg_id(b[i].message))
        << "divergence at position " << i;
    EXPECT_EQ(a[i].stream, b[i].stream);
  }
}

TEST(Bus, CrossGroupSharedOrderConsistent) {
  // Shared (multi-group) messages must appear in the same relative order at
  // subscribers of *different* groups — that is what serializes dependent
  // commands across worker threads.
  Network net;
  Bus bus(net, fast_bus(3));
  auto s0 = bus.subscribe(0);
  auto s2 = bus.subscribe(2);
  bus.start();
  auto [me, mybox] = net.register_node();

  for (std::uint64_t i = 0; i < 100; ++i) {
    bus.multicast(me, GroupSet::all(3), msg(i));
    bus.multicast(me, GroupSet::single(0), msg(10000 + i));
    bus.multicast(me, GroupSet::single(2), msg(20000 + i));
  }
  auto a = drain(*s0, 200);
  auto b = drain(*s2, 200);
  std::vector<std::uint64_t> shared_a, shared_b;
  for (auto& d : a) {
    if (msg_id(d.message) < 10000) shared_a.push_back(msg_id(d.message));
  }
  for (auto& d : b) {
    if (msg_id(d.message) < 10000) shared_b.push_back(msg_id(d.message));
  }
  auto n = std::min(shared_a.size(), shared_b.size());
  shared_a.resize(n);
  shared_b.resize(n);
  EXPECT_EQ(shared_a, shared_b);
}

TEST(Bus, EmptyGroupSetRejected) {
  Network net;
  Bus bus(net, fast_bus(2));
  bus.start();
  auto [me, mybox] = net.register_node();
  EXPECT_FALSE(bus.multicast(me, GroupSet{}, msg(1)));
}

TEST(Bus, SkipAccountingExposed) {
  Network net;
  Bus bus(net, fast_bus(2));
  auto sub = bus.subscribe(0);
  bus.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Idle bus with merging: rings decide skips to keep merges live.
  EXPECT_GT(bus.decided_skips(), 0u);
  EXPECT_EQ(bus.decided_commands(), 0u);
}

TEST(MergeDeliverer, TryNextSeparatesDryFromClosed) {
  Network net;
  Bus bus(net, fast_bus(1));
  auto sub = bus.subscribe(0);
  bus.start();

  Delivery d;
  EXPECT_EQ(sub->try_next(d), MergeDeliverer::Poll::kDry)
      << "nothing decided yet is dry, not closed";
  EXPECT_FALSE(sub->closed());

  auto [me, mybox] = net.register_node();
  ASSERT_TRUE(bus.multicast(me, GroupSet::single(0), msg(42)));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  MergeDeliverer::Poll p = MergeDeliverer::Poll::kDry;
  while (p == MergeDeliverer::Poll::kDry &&
         std::chrono::steady_clock::now() < deadline) {
    p = sub->try_next(d);
  }
  ASSERT_EQ(p, MergeDeliverer::Poll::kDelivered);
  EXPECT_EQ(msg_id(d.message), 42u);

  sub->close();
  EXPECT_TRUE(sub->closed());
  EXPECT_EQ(sub->try_next(d), MergeDeliverer::Poll::kClosed);
  EXPECT_EQ(sub->try_next(d), MergeDeliverer::Poll::kClosed)
      << "kClosed is terminal";
  EXPECT_FALSE(sub->next().has_value())
      << "blocking next() must agree with a kClosed poll";
}

// The race the tri-state result exists for: a poller that sees only
// std::nullopt cannot tell a dry stream from one closed underneath it, and
// falling back to a blocking next() after shutdown would hang forever.
TEST(MergeDeliverer, CloseWhilePollingTurnsTerminalNotDry) {
  Network net;
  Bus bus(net, fast_bus(2));
  auto sub = bus.subscribe(0);
  bus.start();

  std::atomic<bool> saw_closed{false};
  std::thread poller([&] {
    Delivery d;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (sub->try_next(d) == MergeDeliverer::Poll::kClosed) {
        saw_closed = true;
        return;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sub->close();
  poller.join();
  EXPECT_TRUE(saw_closed)
      << "poller kept reading kDry after close(): shutdown is invisible";
  EXPECT_FALSE(sub->next().has_value());
}

}  // namespace
}  // namespace psmr::multicast
